// Interactive MSQL shell over the paper's example federation.
//
//   $ msql_shell            — REPL on stdin
//   $ msql_shell script.msql — run a file of ';'-separated MSQL inputs
//
// Inputs end at a ';' on its own or at end of line; multitransactions
// end at END MULTITRANSACTION. Meta commands: \gdd (dump dictionary),
// \dol (toggle printing generated DOL programs), \plan (toggle printing
// each SELECT task's local physical plan — pushdown, index probes, join
// order), \trace (toggle span tracing; each input then prints its span
// tree), \trace FILE (write the accumulated trace as Chrome trace-event
// JSON, loadable in Perfetto), \metrics (dump federation
// counters/histograms), \metrics on|off (toggle counter collection
// independently of tracing), \profile (toggle per-input EXPLAIN ANALYZE
// profiles — phase breakdown, per-site attribution, critical path),
// \health (per-site health table; \health --json for the same snapshot
// as JSON), \watch (federation monitor dashboard — SLO budgets, shed
// state, recent windows, alert tail; \watch --json for JSON), \slo
// (SLO budget table), \alerts (alert stream as JSON Lines), \qlog FILE
// (append a JSONL audit record per executed input to FILE; \qlog off
// stops), \cost (toggle
// printing the distributed optimizer's cost breakdown — movement
// strategy and estimated transfer micros per subquery), \cost on|off
// (switch between the cost-based optimizer and the paper-heuristic
// fallback), \quit.
// Prefixing an input with \check statically analyzes it instead of
// executing it; \explain additionally prints the DOL program it would
// run; \conflicts additionally prints the plan's predicted access
// summary (per-site read/write sets, lock modes, acquisition order,
// 2PC holds — the DL3xx conflict analyzer's view).
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/string_util.h"
#include "core/fixtures.h"
#include "core/mdbs_system.h"
#include "obs/monitor.h"
#include "obs/query_log.h"
#include "obs/trace.h"

namespace {

using msql::core::ExecutionReport;
using msql::core::GlobalOutcome;
using msql::core::GlobalOutcomeName;
using msql::core::MultidatabaseSystem;

void PrintReport(const ExecutionReport& report, bool show_dol,
                 bool show_cost) {
  std::printf("-- %s (DOLSTATUS=%d",
              std::string(GlobalOutcomeName(report.outcome)).c_str(),
              report.dol_status);
  if (!report.detail.ok()) {
    std::printf("; %s", report.detail.ToString().c_str());
  }
  std::printf(")\n");
  if (report.is_join) {
    std::printf("%s", report.join_result.ToString().c_str());
  } else if (!report.multitable.empty()) {
    std::printf("%s", report.multitable.ToString().c_str());
  }
  if (report.rows_transferred > 0) {
    std::printf("(%lld rows transferred)\n",
                static_cast<long long>(report.rows_transferred));
  }
  for (const auto& name : report.fired_triggers) {
    std::printf("(trigger %s fired)\n", name.c_str());
  }
  if (!report.non_pertinent.empty()) {
    std::printf("(non-pertinent:");
    for (const auto& db : report.non_pertinent) {
      std::printf(" %s", db.c_str());
    }
    std::printf(")\n");
  }
  if (show_dol && !report.dol_text.empty()) {
    std::printf("%s", report.dol_text.c_str());
  }
  if (!report.plan_text.empty()) {
    std::printf("-- local plans --\n%s", report.plan_text.c_str());
  }
  if (show_cost && !report.cost_text.empty()) {
    std::printf("-- distributed cost --\n%s", report.cost_text.c_str());
  }
  if (!report.trace_text.empty()) {
    std::printf("-- trace --\n%s", report.trace_text.c_str());
  }
  if (!report.profile_text.empty()) {
    std::printf("-- profile --\n%s", report.profile_text.c_str());
  }
}

void PrintAnalysis(const msql::core::AnalysisReport& report,
                   const std::string& source, bool show_dol,
                   bool show_conflicts) {
  for (const auto& d : report.diagnostics.items()) {
    std::printf("%s\n", d.RenderPretty(source).c_str());
  }
  if (report.refused && report.diagnostics.empty()) {
    std::printf("-- would be REFUSED: %s\n",
                report.refusal.ToString().c_str());
  } else if (report.refused) {
    std::printf("-- would be REFUSED\n");
  } else if (!report.error.ok()) {
    std::printf("-- would fail: %s\n", report.error.ToString().c_str());
  } else if (report.diagnostics.has_errors()) {
    std::printf("-- does not check (%zu error(s))\n",
                report.diagnostics.error_count());
  } else {
    std::printf("-- checks out (%s; %zu warning(s))\n",
                report.kind.c_str(),
                report.diagnostics.warning_count());
  }
  if (show_dol && report.translated) {
    std::printf("%s", report.dol_text.c_str());
  }
  if (show_conflicts && report.summary.has_value()) {
    std::printf("%s", report.summary->Render().c_str());
  }
}

/// True when `buffer` holds a complete input (a ';' outside a pending
/// BEGIN MULTITRANSACTION, or the END MULTITRANSACTION keyword pair).
bool InputComplete(const std::string& buffer) {
  std::string lower = msql::ToLower(buffer);
  bool in_mt = lower.find("begin multitransaction") != std::string::npos;
  if (in_mt) {
    return lower.find("end multitransaction") != std::string::npos;
  }
  return buffer.find(';') != std::string::npos;
}

int RunStream(MultidatabaseSystem* sys, std::istream& in, bool echo) {
  bool show_dol = false;
  bool show_cost = false;
  std::string qlog_file;  // "" = query log not writing to a file
  // Always-on federation monitor behind \watch/\slo/\alerts. The shell
  // is serial, so each executed input is one "session"; inputs advance
  // a cumulative simulated cursor (the shell has no batch clock of its
  // own) and land in 1s monitor windows.
  msql::obs::MonitorConfig mon_config;
  mon_config.slo_max_error_rate = 0.5;
  msql::obs::Monitor monitor(mon_config, &sys->environment().metrics(),
                             &sys->environment().health());
  monitor.set_query_log(&sys->query_log());
  int64_t sim_cursor = 0;
  std::string buffer;
  std::string line;
  // "" — execute; "check" — analyze only; "explain" — analyze + DOL;
  // "conflicts" — analyze + access summary.
  std::string analyze_mode;
  if (echo) std::printf("msql> ");
  while (std::getline(in, line)) {
    std::string trimmed(msql::Trim(line));
    if (trimmed == "\\quit" || trimmed == "\\q") break;
    if (trimmed == "\\gdd") {
      std::printf("%s", sys->gdd().ToString().c_str());
      if (echo) std::printf("msql> ");
      continue;
    }
    if (trimmed == "\\dol") {
      show_dol = !show_dol;
      std::printf("(DOL printing %s)\n", show_dol ? "on" : "off");
      if (echo) std::printf("msql> ");
      continue;
    }
    if (trimmed == "\\plan") {
      bool on = !sys->collect_plans();
      sys->set_collect_plans(on);
      std::printf("(local plan printing %s)\n", on ? "on" : "off");
      if (echo) std::printf("msql> ");
      continue;
    }
    if (trimmed == "\\cost" || trimmed.rfind("\\cost ", 0) == 0) {
      std::string arg(msql::Trim(trimmed.substr(std::strlen("\\cost"))));
      if (arg == "on" || arg == "off") {
        sys->set_cost_based_optimizer(arg == "on");
        std::printf("(optimizer: %s)\n",
                    arg == "on" ? "cost-based (run ANALYZE for stats)"
                                : "paper heuristics");
      } else {
        show_cost = !show_cost;
        std::printf("(cost breakdown printing %s)\n",
                    show_cost ? "on" : "off");
      }
      if (echo) std::printf("msql> ");
      continue;
    }
    if (trimmed == "\\trace" || trimmed.rfind("\\trace ", 0) == 0) {
      auto& tracer = sys->environment().tracer();
      std::string arg(msql::Trim(trimmed.substr(std::strlen("\\trace"))));
      if (!arg.empty()) {
        std::ofstream out(arg);
        if (!out) {
          std::printf("cannot open %s\n", arg.c_str());
        } else {
          msql::obs::ChromeTraceOptions options;
          options.counter_tracks = monitor.CounterTracks();
          out << msql::obs::ExportChromeTrace(tracer, options);
          std::printf("(%zu spans written to %s — load in Perfetto)\n",
                      tracer.spans().size(), arg.c_str());
        }
      } else {
        // Tracing no longer drags the metrics registry along: counters
        // have their own \metrics on|off toggle.
        bool on = !tracer.enabled();
        if (on) tracer.Clear();  // fresh session timeline
        tracer.set_enabled(on);
        std::printf("(tracing %s)\n", on ? "on" : "off");
      }
      if (echo) std::printf("msql> ");
      continue;
    }
    if (trimmed == "\\metrics" || trimmed.rfind("\\metrics ", 0) == 0) {
      auto& metrics = sys->environment().metrics();
      std::string arg(msql::Trim(trimmed.substr(std::strlen("\\metrics"))));
      if (arg == "on" || arg == "off") {
        metrics.set_enabled(arg == "on");
        std::printf("(metrics collection %s)\n", arg.c_str());
      } else {
        std::string dump = metrics.Dump();
        if (dump.empty()) {
          std::printf("(no metrics collected%s)\n",
                      metrics.enabled() ? "" : "; enable with \\metrics on");
        } else {
          std::printf("%s", dump.c_str());
        }
      }
      if (echo) std::printf("msql> ");
      continue;
    }
    if (trimmed == "\\profile") {
      bool on = !sys->collect_profiles();
      sys->set_collect_profiles(on);
      if (on) {
        // The profiler reads the input's span subtree and diffs counter
        // snapshots, so it needs both collectors live.
        auto& tracer = sys->environment().tracer();
        if (!tracer.enabled()) {
          tracer.Clear();
          tracer.set_enabled(true);
        }
        sys->environment().metrics().set_enabled(true);
      }
      std::printf("(profiling %s)\n", on ? "on" : "off");
      if (echo) std::printf("msql> ");
      continue;
    }
    if (trimmed == "\\health" || trimmed.rfind("\\health ", 0) == 0) {
      std::string arg(msql::Trim(trimmed.substr(std::strlen("\\health"))));
      if (arg == "--json" || arg == "json") {
        std::printf("%s\n", sys->environment().health().RenderJson().c_str());
      } else {
        std::printf("%s", sys->environment().health().RenderText().c_str());
      }
      if (echo) std::printf("msql> ");
      continue;
    }
    if (trimmed == "\\watch" || trimmed.rfind("\\watch ", 0) == 0) {
      std::string arg(msql::Trim(trimmed.substr(std::strlen("\\watch"))));
      monitor.Flush(sim_cursor);
      if (arg == "--json" || arg == "json") {
        std::printf("%s\n", monitor.RenderDashboardJson().c_str());
      } else {
        std::printf("%s", monitor.RenderDashboardText().c_str());
      }
      if (echo) std::printf("msql> ");
      continue;
    }
    if (trimmed == "\\slo") {
      monitor.Flush(sim_cursor);
      for (const auto& slo : monitor.SloStatuses()) {
        if (!slo.enabled) continue;
        std::printf("%-16s limit=%g last=%g budget=%d/%d state=%s\n",
                    slo.name.c_str(), slo.limit, slo.last_value,
                    slo.violations_in_horizon, slo.allowed_in_horizon,
                    slo.state.c_str());
      }
      if (echo) std::printf("msql> ");
      continue;
    }
    if (trimmed == "\\alerts") {
      monitor.Flush(sim_cursor);
      std::string jsonl = monitor.AlertsJsonl();
      if (jsonl.empty()) {
        std::printf("(no alerts)\n");
      } else {
        std::printf("%s", jsonl.c_str());
      }
      if (echo) std::printf("msql> ");
      continue;
    }
    if (trimmed == "\\qlog" || trimmed.rfind("\\qlog ", 0) == 0) {
      auto& qlog = sys->query_log();
      std::string arg(msql::Trim(trimmed.substr(std::strlen("\\qlog"))));
      if (arg.empty()) {
        std::printf("(query log %s; %zu record(s)%s%s)\n",
                    qlog.enabled() ? "on" : "off", qlog.records().size(),
                    qlog_file.empty() ? "" : " -> ",
                    qlog_file.c_str());
      } else if (arg == "off") {
        qlog.set_enabled(false);
        qlog_file.clear();
        std::printf("(query log off)\n");
      } else {
        std::ofstream out(arg, std::ios::trunc);
        if (!out) {
          std::printf("cannot open %s\n", arg.c_str());
        } else {
          qlog_file = arg;
          qlog.set_enabled(true);
          qlog.Clear();
          std::printf("(query log -> %s)\n", arg.c_str());
        }
      }
      if (echo) std::printf("msql> ");
      continue;
    }
    // \check / \explain / \conflicts prefix an input: strip the command
    // and keep accumulating the MSQL text as usual; on completion the
    // input is analyzed instead of executed.
    if (buffer.empty()) {
      for (const char* cmd : {"\\check", "\\explain", "\\conflicts"}) {
        if (trimmed.rfind(cmd, 0) == 0 &&
            (trimmed.size() == std::strlen(cmd) ||
             std::isspace(static_cast<unsigned char>(
                 trimmed[std::strlen(cmd)])))) {
          analyze_mode = cmd + 1;
          line = trimmed.substr(std::strlen(cmd));
          break;
        }
      }
    }
    buffer += line;
    buffer += "\n";
    if (!InputComplete(buffer)) {
      if (echo) std::printf("  ... ");
      continue;
    }
    std::string input = buffer;
    std::string mode = analyze_mode;
    buffer.clear();
    analyze_mode.clear();
    if (msql::Trim(input).empty() || msql::Trim(input) == ";") {
      if (echo) std::printf("msql> ");
      continue;
    }
    if (!mode.empty()) {
      auto analysis = sys->Analyze(input);
      if (!analysis.ok()) {
        std::printf("error: %s\n", analysis.status().ToString().c_str());
      } else {
        PrintAnalysis(*analysis, input, show_dol || mode == "explain",
                      mode == "conflicts");
      }
      if (echo) std::printf("msql> ");
      continue;
    }
    auto report = sys->Execute(input);
    if (!report.ok()) {
      std::printf("error: %s\n", report.status().ToString().c_str());
    } else {
      PrintReport(*report, show_dol, show_cost);
      // Feed the monitor: one input = one session on the cumulative
      // simulated cursor (each input's run starts its own sim timeline,
      // so the shell strings them end to end).
      sim_cursor += std::max<int64_t>(report->run.makespan_micros, 1);
      msql::obs::Monitor::SessionSample sample;
      sample.finish_micros = sim_cursor;
      sample.makespan_micros = report->run.makespan_micros;
      sample.ok = report->outcome == GlobalOutcome::kSuccess;
      monitor.RecordSession(sample);
      if (monitor.NeedsSample(sim_cursor)) monitor.AdvanceTo(sim_cursor);
    }
    if (!qlog_file.empty() && sys->query_log().enabled()) {
      // Rewrite the whole JSONL file: records are small and the final
      // content is then always the complete session log.
      std::ofstream out(qlog_file, std::ios::trunc);
      if (out) out << sys->query_log().ToJsonl();
    }
    if (echo) std::printf("msql> ");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto sys_or = msql::core::BuildPaperFederation();
  if (!sys_or.ok()) {
    std::fprintf(stderr, "bootstrap failed: %s\n",
                 sys_or.status().ToString().c_str());
    return 1;
  }
  auto sys = std::move(sys_or).value();
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    return RunStream(sys.get(), file, /*echo=*/false);
  }
  std::printf(
      "Extended MSQL shell — federation: continental delta united avis "
      "national\nmeta: \\gdd \\dol \\plan \\cost [on|off] \\trace [file] "
      "\\metrics [on|off] \\profile \\health [--json] \\watch [--json] "
      "\\slo \\alerts \\qlog [file|off] \\check "
      "\\explain \\conflicts \\quit; end inputs with ';'\n");
  return RunStream(sys.get(), std::cin, /*echo=*/true);
}
