// Quickstart: build the paper's example federation and run the §2
// multiple query that resolves naming and schema heterogeneity across
// two car-rental databases — with tracing on, so the run also emits a
// Perfetto-loadable trace (quickstart_trace.json, or argv[1]).
#include <cstdio>
#include <fstream>
#include <string>

#include "core/fixtures.h"
#include "core/mdbs_system.h"
#include "obs/trace.h"

int main(int argc, char** argv) {
  // 1. Build the five-database federation of the paper's Appendix
  //    (continental / delta / united airlines, avis / national rentals),
  //    each on its own simulated service, already INCORPORATEd and
  //    IMPORTed.
  auto sys_or = msql::core::BuildPaperFederation();
  if (!sys_or.ok()) {
    std::fprintf(stderr, "federation bootstrap failed: %s\n",
                 sys_or.status().ToString().c_str());
    return 1;
  }
  auto sys = std::move(sys_or).value();
  sys->environment().tracer().set_enabled(true);
  sys->environment().metrics().set_enabled(true);

  // 2. The multiple query of §2: one compact MSQL statement retrieves
  //    cars from both companies although they use different table names
  //    (cars vs vehicle), column names (code vs vcode — the implicit
  //    semantic variable %code) and schemas (~rate is optional: only
  //    avis prices cars).
  const std::string query =
      "USE avis national\n"
      "LET car.type.status BE cars.cartype.carst vehicle.vty.vstat\n"
      "SELECT %code, type, ~rate\n"
      "FROM car\n"
      "WHERE status = 'available'";

  std::printf("MSQL query:\n%s\n\n", query.c_str());
  auto report_or = sys->Execute(query);
  if (!report_or.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 report_or.status().ToString().c_str());
    return 1;
  }
  const auto& report = *report_or;

  // 3. The result is a *multitable*: one table per database, kept
  //    separate because the databases are mutually non-integrated.
  std::printf("outcome: %s (DOLSTATUS=%d)\n\n",
              std::string(msql::core::GlobalOutcomeName(report.outcome))
                  .c_str(),
              report.dol_status);
  std::printf("%s\n", report.multitable.ToString().c_str());

  // 4. Under the hood the query was translated to a DOL program and run
  //    by the engine against the two LAMs — this is the program:
  std::printf("generated DOL program:\n%s\n", report.dol_text.c_str());
  std::printf("simulated makespan: %lld us, %lld messages\n",
              static_cast<long long>(report.run.makespan_micros),
              static_cast<long long>(report.run.messages));

  // 5. Every stage of the pipeline — parse, expand, translate, verify,
  //    the DOL run, each task, each RPC and message — was traced
  //    (DESIGN.md §9). The span tree prints directly; the Chrome
  //    trace-event export loads in Perfetto (https://ui.perfetto.dev).
  std::printf("\nspan tree:\n%s", report.trace_text.c_str());
  const std::string trace_path =
      argc > 1 ? argv[1] : "quickstart_trace.json";
  std::ofstream trace_file(trace_path);
  if (trace_file) {
    trace_file << msql::obs::ExportChromeTrace(sys->environment().tracer());
    std::printf("\n%zu spans written to %s — load in Perfetto\n",
                sys->environment().tracer().spans().size(),
                trace_path.c_str());
  }
  return report.outcome == msql::core::GlobalOutcome::kSuccess ? 0 : 1;
}
