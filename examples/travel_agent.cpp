// The travel-agent scenario of §3.4: an MSQL multitransaction exploiting
// function replication (either airline, either rental company) with
// preference-ordered acceptable termination states.
#include <cstdio>
#include <memory>
#include <string>

#include "core/fixtures.h"
#include "core/mdbs_system.h"

namespace {

using msql::core::GlobalOutcomeName;
using msql::core::MultidatabaseSystem;
using msql::core::PaperServiceOf;
using msql::relational::FailPoint;

// Who holds reservations where?
void PrintReservations(MultidatabaseSystem* sys) {
  struct Probe {
    const char* db;
    const char* sql;
  };
  const Probe probes[] = {
      {"continental",
       "SELECT COUNT(*) FROM f838 WHERE clientname = 'wenders'"},
      {"delta", "SELECT COUNT(*) FROM fnu747 WHERE passname = 'wenders'"},
      {"avis", "SELECT COUNT(*) FROM cars WHERE client = 'wenders'"},
      {"national", "SELECT COUNT(*) FROM vehicle WHERE client = 'wenders'"},
  };
  for (const auto& probe : probes) {
    auto engine = *sys->GetEngine(PaperServiceOf(probe.db));
    auto s = *engine->OpenSession(probe.db);
    auto rs = engine->Execute(s, probe.sql);
    std::printf("  %-12s %lld reservation(s) for wenders\n", probe.db,
                rs.ok() ? static_cast<long long>(rs->rows[0][0].AsInteger())
                        : -1LL);
    (void)engine->CloseSession(s);
  }
}

constexpr const char* kTrip =
    "BEGIN MULTITRANSACTION\n"
    "USE continental delta\n"
    "LET fitab.snu.sstat.clname BE\n"
    "  f838.seatnu.seatstatus.clientname\n"
    "  fnu747.snu.sstat.passname\n"
    "UPDATE fitab SET sstat = 'TAKEN', clname = 'wenders'\n"
    "WHERE snu = (SELECT MIN(snu) FROM fitab WHERE sstat = 'FREE');\n"
    "USE avis national\n"
    "LET cartab.ccode.cstat BE cars.code.carst vehicle.vcode.vstat\n"
    "UPDATE cartab SET cstat = 'TAKEN', cfrom = '07-04-92',\n"
    "  cto = '04-16-93', client = 'wenders'\n"
    "WHERE ccode = (SELECT MIN(ccode) FROM cartab WHERE "
    "cstat = 'available');\n"
    "COMMIT\n"
    "  continental AND national\n"
    "  delta AND avis\n"
    "END MULTITRANSACTION";

}  // namespace

int main() {
  std::printf(
      "Travel agent: book a flight (Continental preferred, Delta "
      "acceptable)\nand a car (National preferred, Avis acceptable); "
      "never two of either.\n\nMSQL multitransaction:\n%s\n\n", kTrip);

  // Run 1: everything up → the preferred state continental AND national.
  {
    auto sys = std::move(msql::core::BuildPaperFederation()).value();
    auto report = sys->Execute(kTrip);
    if (!report.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("run 1 (all services healthy): %s\n",
                std::string(GlobalOutcomeName(report->outcome)).c_str());
    PrintReservations(sys.get());
    std::printf("  -> preferred state continental AND national chosen;\n"
                "     delta/avis subqueries rolled back.\n\n");
  }

  // Run 2: Continental's reservation fails → fall back to delta AND avis.
  {
    auto sys = std::move(msql::core::BuildPaperFederation()).value();
    (*sys->GetEngine(PaperServiceOf("continental")))
        ->InjectFailure(FailPoint::kNextStatement);
    auto report = sys->Execute(kTrip);
    if (!report.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("run 2 (Continental fails): %s\n",
                std::string(GlobalOutcomeName(report->outcome)).c_str());
    PrintReservations(sys.get());
    std::printf("  -> acceptable state delta AND avis reached instead.\n\n");
  }

  // Run 3: both a flight and a car source fail → total abort.
  {
    auto sys = std::move(msql::core::BuildPaperFederation()).value();
    (*sys->GetEngine(PaperServiceOf("continental")))
        ->InjectFailure(FailPoint::kNextStatement);
    (*sys->GetEngine(PaperServiceOf("avis")))
        ->InjectFailure(FailPoint::kNextStatement);
    auto report = sys->Execute(kTrip);
    if (!report.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("run 3 (Continental AND Avis fail): %s\n",
                std::string(GlobalOutcomeName(report->outcome)).c_str());
    PrintReservations(sys.get());
    std::printf("  -> no acceptable state reachable: every subquery was\n"
                "     rolled back; the trip is not half-booked.\n");
  }
  return 0;
}
