// Federation administration: the §2 feature set beyond plain queries —
// virtual databases, multidatabase views, interdatabase triggers and
// cross-database data transfer, all driven through MSQL text.
#include <cstdio>
#include <memory>
#include <string>

#include "core/fixtures.h"
#include "core/mdbs_system.h"

namespace {

using msql::core::GlobalOutcomeName;
using msql::core::MultidatabaseSystem;

int Fail(const msql::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

msql::Result<msql::core::ExecutionReport> Run(MultidatabaseSystem* sys,
                                              const char* label,
                                              const std::string& msql) {
  std::printf("== %s ==\n%s;\n", label, msql.c_str());
  auto report = sys->Execute(msql);
  if (report.ok()) {
    std::printf("-> %s\n\n",
                std::string(GlobalOutcomeName(report->outcome)).c_str());
  }
  return report;
}

}  // namespace

int main() {
  auto sys_or = msql::core::BuildPaperFederation();
  if (!sys_or.ok()) return Fail(sys_or.status());
  auto sys = std::move(sys_or).value();

  // 1. A virtual database groups the two rental companies; USE rentals
  //    then means "avis and national".
  auto vd = Run(sys.get(), "virtual database",
                "CREATE MULTIDATABASE rentals (avis national)");
  if (!vd.ok()) return Fail(vd.status());

  // 2. A multidatabase view stores the §2 heterogeneity-resolving query.
  auto view = Run(sys.get(), "multidatabase view",
                  "CREATE MULTIVIEW available_cars AS\n"
                  "USE rentals\n"
                  "LET car.type.status BE cars.cartype.carst "
                  "vehicle.vty.vstat\n"
                  "SELECT %code, type, ~rate FROM car "
                  "WHERE status = 'available'");
  if (!view.ok()) return Fail(view.status());

  auto through_view =
      Run(sys.get(), "query through the view",
          "USE avis SELECT code, type FROM available_cars "
          "WHERE type = 'suv'");
  if (!through_view.ok()) return Fail(through_view.status());
  std::printf("%s\n", through_view->multitable.ToString().c_str());

  // 3. An interdatabase trigger mirrors avis price changes into an
  //    audit table at national.
  auto mk_audit = Run(sys.get(), "audit table",
                      "USE national CREATE TABLE audit (what TEXT)");
  if (!mk_audit.ok()) return Fail(mk_audit.status());
  auto trig = Run(sys.get(), "interdatabase trigger",
                  "CREATE TRIGGER price_watch ON avis.cars AFTER UPDATE "
                  "DO USE national INSERT INTO audit VALUES "
                  "('avis prices changed')");
  if (!trig.ok()) return Fail(trig.status());
  auto update = Run(sys.get(), "price update fires it",
                    "USE avis UPDATE cars SET rate = rate * 1.02");
  if (!update.ok()) return Fail(update.status());
  for (const auto& fired : update->fired_triggers) {
    std::printf("   trigger fired: %s\n", fired.c_str());
  }

  // 4. Cross-database data transfer fills a national table from
  //    continental's flights.
  auto mk_fares = Run(sys.get(), "target table",
                      "USE national CREATE TABLE fares "
                      "(orig TEXT, dst TEXT, amount REAL)");
  if (!mk_fares.ok()) return Fail(mk_fares.status());
  auto moved = Run(sys.get(), "data transfer",
                   "USE national continental\n"
                   "INSERT INTO national.fares "
                   "SELECT source, destination, rate "
                   "FROM continental.flights WHERE rate > 150");
  if (!moved.ok()) return Fail(moved.status());
  std::printf("   rows transferred: %lld\n\n",
              static_cast<long long>(moved->rows_transferred));

  // 5. The merged view of a multitable (aligned columns).
  auto codes = sys->Execute(
      "USE rentals\n"
      "LET car.code BE cars.code vehicle.vcode\n"
      "SELECT code FROM car");
  if (!codes.ok()) return Fail(codes.status());
  auto merged = codes->multitable.Merge();
  if (!merged.ok()) return Fail(merged.status());
  std::printf("== merged multitable (first rows) ==\n");
  merged->rows.resize(std::min<size_t>(merged->rows.size(), 4));
  std::printf("%s", merged->ToString().c_str());
  return 0;
}
