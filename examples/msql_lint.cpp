// msqlcheck front end: static analysis of MSQL programs without
// executing them.
//
//   $ msql_lint program.msql ...     — lint files
//   $ msql_lint --explain prog.msql  — also print the generated DOL
//   $ msql_lint --conflicts ...      — print each plan's access summary
//                                      and the pairwise conflict matrix
//   $ msql_lint --trace-out FILE ... — write the analysis span trace as
//                                      Chrome trace-event JSON (Perfetto)
//   $ msql_lint --profile ...        — print a front-end phase summary
//                                      (per-phase counts + host time)
//   $ msql_lint -                    — lint stdin
//
// Programs are checked against the paper federation's catalogs (the
// same GDD/AD msql_shell boots with), so a program that lints clean
// here runs unmodified in the shell. Shell meta lines ('\gdd', ...)
// are ignored. Exit status: 0 clean, 1 warnings only, 2 when any
// MS1xx/DL2xx/DL3xx error or refusal is reported or the input does not
// parse / the federation cannot be built (see --help).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/conflict_analyzer.h"
#include "core/fixtures.h"
#include "core/mdbs_system.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace {

using msql::core::AnalysisReport;
using msql::core::MultidatabaseSystem;

constexpr const char* kUsage =
    "usage: msql_lint [options] <program.msql>... (or '-' for stdin)\n";

void PrintHelp() {
  std::printf(
      "%s"
      "\n"
      "Statically analyzes MSQL programs against the paper federation's\n"
      "catalogs without executing them: MS1xx semantic checks, DL2xx plan\n"
      "verification and DL3xx conflict/deadlock analysis.\n"
      "\n"
      "options:\n"
      "  --explain          print the generated DOL program per input\n"
      "                     (plus the optimizer's cost breakdown for\n"
      "                     decomposed multidatabase joins)\n"
      "  --conflicts        print each plan's predicted access summary\n"
      "                     (per-site read/write sets, lock modes,\n"
      "                     acquisition order, 2PC holds) and the pairwise\n"
      "                     conflict matrix across the script's inputs\n"
      "  --profile          print a front-end phase summary\n"
      "  --trace-out FILE   write the analysis span trace as Chrome\n"
      "                     trace-event JSON (Perfetto)\n"
      "  --help             show this help\n"
      "\n"
      "exit status:\n"
      "  0  clean: no diagnostics above note severity\n"
      "  1  warnings only: findings worth reading, but every input is\n"
      "     executable\n"
      "  2  errors: MS/DL error diagnostics, refused plans, hard\n"
      "     analysis failures, unparseable input, or bootstrap failure\n",
      kUsage);
}

/// Blanks out shell meta lines ('\'-prefixed) in place of removing
/// them, so diagnostic line numbers keep pointing into the real file.
/// \check, \explain and \conflicts prefix an input in the shell — for
/// those only the command itself is blanked and the MSQL text after it
/// is kept (every input is analyzed here anyway).
std::string StripMetaLines(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] != '\\') {
      out += line;
    } else {
      for (const char* cmd : {"\\check ", "\\explain ", "\\conflicts "}) {
        if (line.compare(first, std::strlen(cmd), cmd) == 0) {
          out += std::string(first + std::strlen(cmd), ' ');
          out += line.substr(first + std::strlen(cmd));
          break;
        }
      }
    }
    out += '\n';
  }
  return out;
}

/// Lints one source text; returns the worst exit status seen
/// (0 clean / 1 warnings / 2 errors).
int LintText(MultidatabaseSystem* sys, const std::string& name,
             const std::string& raw, bool explain, bool conflicts) {
  std::string source = StripMetaLines(raw);
  auto reports = sys->AnalyzeScript(source);
  if (!reports.ok()) {
    std::printf("%s: %s\n", name.c_str(),
                reports.status().ToString().c_str());
    return 2;
  }
  int status = 0;
  auto raise = [&status](int s) { status = std::max(status, s); };
  size_t input_index = 0;
  for (const AnalysisReport& report : *reports) {
    ++input_index;
    for (const auto& d : report.diagnostics.items()) {
      std::printf("%s:%s\n", name.c_str(), d.RenderPretty(source).c_str());
    }
    if (report.diagnostics.warning_count() > 0) raise(1);
    if (report.diagnostics.has_errors()) raise(2);
    if (report.refused) {
      // MS111-style refusals already printed themselves above as error
      // diagnostics; translator-level refusals (vital non-pertinent
      // etc.) have no diagnostic and need the status line.
      if (!report.diagnostics.has_errors()) {
        std::printf("%s: input %zu refused: %s\n", name.c_str(), input_index,
                    report.refusal.ToString().c_str());
      }
      raise(2);
    }
    if (!report.error.ok()) {
      std::printf("%s: input %zu (%s): %s\n", name.c_str(), input_index,
                  report.kind.c_str(), report.error.ToString().c_str());
      raise(2);
    }
    if (explain && report.translated) {
      std::printf("-- input %zu (%s) translates to:\n%s", input_index,
                  report.kind.c_str(), report.dol_text.c_str());
      if (!report.cost_text.empty()) {
        std::printf("-- input %zu %s", input_index,
                    report.cost_text.c_str());
      }
    }
    if (conflicts && report.summary.has_value()) {
      std::printf("-- input %zu (%s) %s", input_index, report.kind.c_str(),
                  report.summary->Render().c_str());
    }
  }
  if (conflicts) {
    std::vector<const msql::analysis::AccessSummary*> summaries;
    for (const auto& report : *reports) {
      summaries.push_back(report.summary.has_value() ? &*report.summary
                                                     : nullptr);
    }
    std::printf("%s", msql::analysis::RenderConflictMatrix(summaries).c_str());
  }
  if (status <= 1) {
    std::printf("%s: %zu input(s), %zu warning(s), no errors\n",
                name.c_str(), reports->size(),
                [&] {
                  size_t w = 0;
                  for (const auto& r : *reports) {
                    w += r.diagnostics.warning_count();
                  }
                  return w;
                }());
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  bool explain = false;
  bool profile = false;
  bool conflicts = false;
  std::string trace_out;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (std::strcmp(argv[i], "--conflicts") == 0) {
      conflicts = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      PrintHelp();
      return 0;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "%s(see --help)\n", kUsage);
    return 2;
  }
  auto sys_or = msql::core::BuildPaperFederation();
  if (!sys_or.ok()) {
    std::fprintf(stderr, "bootstrap failed: %s\n",
                 sys_or.status().ToString().c_str());
    return 2;
  }
  auto sys = std::move(sys_or).value();
  if (!trace_out.empty() || profile) {
    sys->environment().tracer().set_enabled(true);
    sys->environment().metrics().set_enabled(true);
  }

  int status = 0;
  for (const std::string& file : files) {
    std::string text;
    if (file == "-") {
      std::ostringstream buf;
      buf << std::cin.rdbuf();
      text = buf.str();
    } else {
      std::ifstream in(file);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", file.c_str());
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      text = buf.str();
    }
    int s = LintText(sys.get(), file == "-" ? "<stdin>" : file, text,
                     explain, conflicts);
    if (s > status) status = s;
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", trace_out.c_str());
      return 2;
    }
    out << msql::obs::ExportChromeTrace(sys->environment().tracer());
    std::fprintf(stderr, "%zu spans written to %s\n",
                 sys->environment().tracer().spans().size(),
                 trace_out.c_str());
  }
  if (profile) {
    // Whole-session front-end rollup: which phases ran how often and
    // what they cost on the host clock (analysis does not touch the
    // simulated network, so sim time would be all zeros here).
    std::printf("-- front-end profile --\n%s",
                msql::obs::RenderFrontendSummary(
                    sys->environment().tracer(), /*include_host_time=*/true)
                    .c_str());
  }
  return status;
}
