// Car-rental scenario: the full §2 walkthrough — catalog bootstrap with
// INCORPORATE/IMPORT, the heterogeneity-resolving multiple query, a
// multidatabase UPDATE, and a cross-database join evaluated at a
// coordinator LDBS (§4.3 decomposition).
#include <cstdio>
#include <memory>
#include <string>

#include "core/fixtures.h"
#include "core/mdbs_system.h"

namespace {

using msql::core::GlobalOutcomeName;
using msql::core::PaperFederationOptions;

int Fail(const msql::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  // Build the federation WITHOUT the automatic catalog bootstrap, so the
  // INCORPORATE / IMPORT phase is visible here.
  PaperFederationOptions options;
  options.incorporate_and_import = false;
  auto sys_or = msql::core::BuildPaperFederation(options);
  if (!sys_or.ok()) return Fail(sys_or.status());
  auto sys = std::move(sys_or).value();

  std::printf("== 1. Incorporate services and import schemas (3.1) ==\n\n");
  const char* bootstrap[] = {
      "INCORPORATE SERVICE avis_svc SITE site_avis CONNECTMODE CONNECT "
      "COMMITMODE NOCOMMIT CREATE NOCOMMIT INSERT NOCOMMIT DROP NOCOMMIT",
      "INCORPORATE SERVICE national_svc SITE site_national CONNECTMODE "
      "CONNECT COMMITMODE NOCOMMIT CREATE NOCOMMIT INSERT NOCOMMIT "
      "DROP NOCOMMIT",
      "INCORPORATE SERVICE continental_svc SITE site_continental "
      "CONNECTMODE CONNECT COMMITMODE NOCOMMIT CREATE NOCOMMIT "
      "INSERT NOCOMMIT DROP NOCOMMIT",
      "IMPORT DATABASE avis FROM SERVICE avis_svc",
      "IMPORT DATABASE national FROM SERVICE national_svc",
      "IMPORT DATABASE continental FROM SERVICE continental_svc",
  };
  for (const char* stmt : bootstrap) {
    std::printf("  %s;\n", stmt);
    auto report = sys->Execute(stmt);
    if (!report.ok()) return Fail(report.status());
  }
  std::printf("\nGlobal Data Dictionary now holds:\n%s\n",
              sys->gdd().ToString().c_str());

  std::printf("== 2. The 2 multiple query ==\n\n");
  const std::string retrieval =
      "USE avis national\n"
      "LET car.type.status BE cars.cartype.carst vehicle.vty.vstat\n"
      "SELECT %code, type, ~rate\n"
      "FROM car\n"
      "WHERE status = 'available'";
  std::printf("%s\n\n", retrieval.c_str());
  auto multitable = sys->Execute(retrieval);
  if (!multitable.ok()) return Fail(multitable.status());
  std::printf("%s\n", multitable->multitable.ToString().c_str());

  std::printf("== 3. A multiple update over both companies ==\n\n");
  // Raise the daily rate of every available avis car by 5% and mark
  // national's cheapest car as reserved — note the update only binds
  // databases where it is pertinent ('rate' exists only at avis).
  const std::string update =
      "USE avis national\n"
      "UPDATE cars SET rate = rate * 1.05 WHERE carst = 'available'";
  std::printf("%s\n", update.c_str());
  auto updated = sys->Execute(update);
  if (!updated.ok()) return Fail(updated.status());
  std::printf("-> outcome %s; national discarded as non-pertinent (%zu "
              "database(s) skipped)\n\n",
              std::string(GlobalOutcomeName(updated->outcome)).c_str(),
              updated->non_pertinent.size());

  std::printf("== 4. Cross-database join via a coordinator (4.3) ==\n\n");
  const std::string join =
      "USE avis continental\n"
      "SELECT cars.code, cars.rate, flights.flnu\n"
      "FROM avis.cars, continental.flights\n"
      "WHERE cars.carst = 'available' AND cars.rate * 3 < flights.rate\n"
      "ORDER BY cars.code";
  std::printf("%s\n\n", join.c_str());
  auto joined = sys->Execute(join);
  if (!joined.ok()) return Fail(joined.status());
  std::printf("decomposed plan (subqueries -> TRANSFER -> Q' at "
              "coordinator):\n%s\n", joined->dol_text.c_str());
  std::printf("join result (%zu rows):\n%s\n",
              joined->join_result.rows.size(),
              joined->join_result.ToString().c_str());
  return 0;
}
