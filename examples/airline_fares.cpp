// Airline-fares scenario (§3.2 and §3.3 of the paper): multidatabase
// updates with VITAL designators, 2PC coordination, failure injection
// and user-specified compensation. Prints the generated DOL programs
// and walks the four execution paths of the §3.3 outcome matrix.
#include <cstdio>
#include <memory>
#include <string>

#include "core/fixtures.h"
#include "core/mdbs_system.h"

namespace {

using msql::core::GlobalOutcome;
using msql::core::GlobalOutcomeName;
using msql::core::MultidatabaseSystem;
using msql::core::PaperFederationOptions;
using msql::core::PaperServiceOf;
using msql::relational::FailPoint;

double HoustonFares(MultidatabaseSystem* sys, const std::string& db,
                    const std::string& sql) {
  auto engine = *sys->GetEngine(PaperServiceOf(db));
  auto s = *engine->OpenSession(db);
  auto rs = engine->Execute(s, sql);
  double out = rs.ok() && !rs->rows.empty() && !rs->rows[0][0].is_null()
                   ? rs->rows[0][0].NumericAsReal()
                   : 0.0;
  (void)engine->CloseSession(s);
  return out;
}

void PrintFares(MultidatabaseSystem* sys, const char* label) {
  std::printf("%-28s continental=%.2f delta=%.2f united=%.2f\n", label,
              HoustonFares(sys, "continental",
                           "SELECT SUM(rate) FROM flights WHERE source = "
                           "'Houston' AND destination = 'San Antonio'"),
              HoustonFares(sys, "delta",
                           "SELECT SUM(rate) FROM flight WHERE source = "
                           "'Houston' AND dest = 'San Antonio'"),
              HoustonFares(sys, "united",
                           "SELECT SUM(rates) FROM flight WHERE sour = "
                           "'Houston' AND dest = 'San Antonio'"));
}

int Fail(const msql::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  // ---- Part 1: the §3.2 vital update on an all-2PC federation --------
  std::printf("== Part 1: VITAL update, all services provide 2PC ==\n\n");
  auto sys_or = msql::core::BuildPaperFederation();
  if (!sys_or.ok()) return Fail(sys_or.status());
  auto sys = std::move(sys_or).value();

  const std::string raise =
      "USE continental VITAL delta united VITAL\n"
      "UPDATE flight% SET rate% = rate% * 1.1\n"
      "WHERE sour% = 'Houston' AND dest% = 'San Antonio'";
  std::printf("MSQL:\n%s\n\n", raise.c_str());
  PrintFares(sys.get(), "before:");

  auto clean = sys->Execute(raise);
  if (!clean.ok()) return Fail(clean.status());
  std::printf("clean run outcome: %s\n\n",
              std::string(GlobalOutcomeName(clean->outcome)).c_str());
  PrintFares(sys.get(), "after +10%:");
  std::printf("\ngenerated DOL program (cf. the paper's 4.3 listing):\n%s\n",
              clean->dol_text.c_str());

  // Now inject a failure into United: both VITAL updates must roll back
  // while NON-VITAL Delta keeps its (autocommitted) change.
  (*sys->GetEngine(PaperServiceOf("united")))
      ->InjectFailure(FailPoint::kNextStatement);
  auto aborted = sys->Execute(raise);
  if (!aborted.ok()) return Fail(aborted.status());
  std::printf("with United failing, outcome: %s\n",
              std::string(GlobalOutcomeName(aborted->outcome)).c_str());
  PrintFares(sys.get(), "after aborted run:");
  std::printf("  (note: NON-VITAL delta kept its +10%% — §3.2.1)\n\n");

  // ---- Part 2: §3.3 — Continental without 2PC, COMP clause -----------
  std::printf("== Part 2: Continental lacks 2PC; COMP supplies undo ==\n\n");
  PaperFederationOptions no2pc;
  no2pc.continental_autocommit_only = true;
  auto sys2_or = msql::core::BuildPaperFederation(no2pc);
  if (!sys2_or.ok()) return Fail(sys2_or.status());
  auto sys2 = std::move(sys2_or).value();

  const std::string compensated =
      "USE continental VITAL delta united VITAL\n"
      "UPDATE flight% SET rate% = rate% * 1.1\n"
      "WHERE sour% = 'Houston' AND dest% = 'San Antonio'\n"
      "COMP continental\n"
      "UPDATE flights SET rate = rate / 1.1\n"
      "WHERE source = 'Houston' AND destination = 'San Antonio'";
  std::printf("MSQL:\n%s\n\n", compensated.c_str());

  PrintFares(sys2.get(), "before:");
  // Path: United aborts -> Continental (already committed) compensates.
  (*sys2->GetEngine(PaperServiceOf("united")))
      ->InjectFailure(FailPoint::kNextStatement);
  auto comp_run = sys2->Execute(compensated);
  if (!comp_run.ok()) return Fail(comp_run.status());
  std::printf("United aborted -> outcome: %s\n",
              std::string(GlobalOutcomeName(comp_run->outcome)).c_str());
  std::printf("continental task state: %s (semantically undone)\n",
              std::string(msql::dol::DolTaskStateName(
                  comp_run->run.FindTask("t_continental")->state))
                  .c_str());
  PrintFares(sys2.get(), "after compensation:");

  // ---- Part 3: refusal when the vital set is unenforceable -----------
  std::printf("\n== Part 3: refusal (two no-2PC VITALs, no COMP) ==\n\n");
  auto incorporate = sys2->Execute(
      "INCORPORATE SERVICE united_svc SITE site_united CONNECTMODE "
      "CONNECT COMMITMODE COMMIT CREATE COMMIT INSERT COMMIT DROP COMMIT");
  if (!incorporate.ok()) return Fail(incorporate.status());
  auto refused = sys2->Execute(
      "USE continental VITAL united VITAL\n"
      "UPDATE flight% SET rate% = rate% * 1.1");
  if (!refused.ok()) return Fail(refused.status());
  std::printf("outcome: %s\nreason: %s\n",
              std::string(GlobalOutcomeName(refused->outcome)).c_str(),
              refused->detail.message().c_str());
  return 0;
}
