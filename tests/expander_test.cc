// Multiple-identifier substitution and disambiguation (§4.3 phases,
// experiment E3).
#include <gtest/gtest.h>

#include "mdbs/global_data_dictionary.h"
#include "msql/expander.h"
#include "msql/parser.h"

namespace msql::lang {
namespace {

using mdbs::GlobalDataDictionary;
using relational::TableSchema;
using relational::Type;

class ExpanderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto add = [&](const std::string& db, const std::string& table,
                   std::vector<relational::ColumnDef> cols) {
      ASSERT_TRUE(gdd_.RegisterDatabase(db, db + "_svc").ok());
      ASSERT_TRUE(
          gdd_.PutTable(db, *TableSchema::Create(table, std::move(cols)))
              .ok());
    };
    add("avis", "cars",
        {{"code", Type::kInteger, 0}, {"cartype", Type::kText, 0},
         {"rate", Type::kReal, 0}, {"carst", Type::kText, 0}});
    add("national", "vehicle",
        {{"vcode", Type::kInteger, 0}, {"vty", Type::kText, 0},
         {"vstat", Type::kText, 0}});
    add("continental", "flights",
        {{"flnu", Type::kInteger, 0}, {"source", Type::kText, 0},
         {"destination", Type::kText, 0}, {"rate", Type::kReal, 0}});
    add("delta", "flight",
        {{"fnu", Type::kInteger, 0}, {"source", Type::kText, 0},
         {"dest", Type::kText, 0}, {"rate", Type::kReal, 0}});
    add("united", "flight",
        {{"fn", Type::kInteger, 0}, {"sour", Type::kText, 0},
         {"dest", Type::kText, 0}, {"rates", Type::kReal, 0}});
  }

  Result<ExpansionResult> Expand(std::string_view msql) {
    auto input = MsqlParser::ParseOne(msql);
    if (!input.ok()) return input.status();
    Expander expander(&gdd_);
    return expander.Expand(*input->query);
  }

  /// SQL of the elementary query for `database` ("" if absent).
  static std::string SqlFor(const ExpansionResult& result,
                            const std::string& database) {
    for (const auto& eq : result.queries) {
      if (eq.effective_name == database) return eq.statement->ToSql();
    }
    return "";
  }

  GlobalDataDictionary gdd_;
};

TEST_F(ExpanderTest, Section2LetWildcardAndOptional) {
  auto result = Expand(
      "USE avis national\n"
      "LET car.type.status BE cars.cartype.carst vehicle.vty.vstat\n"
      "SELECT %code, type, ~rate FROM car WHERE status = 'available'");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->queries.size(), 2u);
  EXPECT_TRUE(result->non_pertinent.empty());
  // avis: everything resolves, rate kept.
  EXPECT_EQ(SqlFor(*result, "avis"),
            "SELECT code AS code, cartype AS type, rate AS rate "
            "FROM cars WHERE carst = 'available'");
  // national: vcode matches %code, rate dropped as optional.
  EXPECT_EQ(SqlFor(*result, "national"),
            "SELECT vcode AS code, vty AS type "
            "FROM vehicle WHERE vstat = 'available'");
}

TEST_F(ExpanderTest, Section32WildcardsAcrossThreeAirlines) {
  auto result = Expand(
      "USE continental VITAL delta united VITAL\n"
      "UPDATE flight% SET rate% = rate% * 1.1\n"
      "WHERE sour% = 'Houston' AND dest% = 'San Antonio'");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->queries.size(), 3u);
  EXPECT_EQ(SqlFor(*result, "continental"),
            "UPDATE flights SET rate = rate * 1.1 WHERE source = 'Houston' "
            "AND destination = 'San Antonio'");
  EXPECT_EQ(SqlFor(*result, "delta"),
            "UPDATE flight SET rate = rate * 1.1 WHERE source = 'Houston' "
            "AND dest = 'San Antonio'");
  EXPECT_EQ(SqlFor(*result, "united"),
            "UPDATE flight SET rates = rates * 1.1 WHERE sour = 'Houston' "
            "AND dest = 'San Antonio'");
  // VITAL designators carried through.
  EXPECT_TRUE(result->queries[0].vital);
  EXPECT_FALSE(result->queries[1].vital);
  EXPECT_TRUE(result->queries[2].vital);
}

TEST_F(ExpanderTest, CompClauseAttachesToDatabase) {
  auto result = Expand(
      "USE continental VITAL united VITAL\n"
      "UPDATE flight% SET rate% = rate% * 1.1\n"
      "COMP continental UPDATE flights SET rate = rate / 1.1");
  ASSERT_TRUE(result.ok()) << result.status();
  const ElementaryQuery* continental = nullptr;
  for (const auto& eq : result->queries) {
    if (eq.database == "continental") continental = &eq;
  }
  ASSERT_NE(continental, nullptr);
  ASSERT_NE(continental->compensation, nullptr);
  EXPECT_EQ(continental->compensation->ToSql(),
            "UPDATE flights SET rate = rate / 1.1");
}

TEST_F(ExpanderTest, CompForUnknownDatabaseRejected) {
  auto result = Expand(
      "USE avis\n"
      "UPDATE cars SET rate = 1.0\n"
      "COMP national UPDATE vehicle SET vstat = 'x'");
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ExpanderTest, NonPertinentDatabaseDiscarded) {
  // avis has no flight-like table: it is discarded, airlines remain.
  auto result = Expand(
      "USE continental avis\n"
      "SELECT rate FROM flight%");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->queries.size(), 1u);
  EXPECT_EQ(result->queries[0].database, "continental");
  EXPECT_EQ(result->non_pertinent, (std::vector<std::string>{"avis"}));
}

TEST_F(ExpanderTest, MissingMandatoryColumnDiscardsDatabase) {
  // 'rates' exists only in united; continental/delta are non-pertinent.
  auto result = Expand("USE continental delta united\n"
                       "SELECT rates FROM flight%");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->queries.size(), 1u);
  EXPECT_EQ(result->queries[0].database, "united");
  EXPECT_EQ(result->non_pertinent.size(), 2u);
}

TEST_F(ExpanderTest, AmbiguousSubstitutionRejected) {
  // In avis, 'car%' matches both cartype and carst: two pertinent
  // substitutions survive disambiguation.
  auto result = Expand("USE avis SELECT car% FROM cars");
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("ambiguous"),
            std::string::npos);
}

TEST_F(ExpanderTest, ConsistentSubstitutionForRepeatedIdentifier) {
  // rate% appears twice; both occurrences must resolve to the same
  // column within each elementary query (rates in united).
  auto result = Expand(
      "USE united UPDATE flight SET rate% = rate% + 1");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(SqlFor(*result, "united"),
            "UPDATE flight SET rates = rates + 1");
}

TEST_F(ExpanderTest, OptionalColumnOutsideSelectListRejected) {
  auto result = Expand(
      "USE national SELECT vcode, ~rate FROM vehicle WHERE rate > 1");
  // 'rate' in WHERE is mandatory and missing → national non-pertinent →
  // the whole query is pertinent nowhere.
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->queries.empty());
  EXPECT_EQ(result->non_pertinent,
            (std::vector<std::string>{"national"}));
}

TEST_F(ExpanderTest, AllSelectItemsDroppedMakesNonPertinent) {
  auto result = Expand("USE national SELECT ~rate FROM vehicle");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->queries.empty());
}

TEST_F(ExpanderTest, SubqueryIdentifiersExpandToo) {
  auto result = Expand(
      "USE delta\n"
      "UPDATE flight SET rate = rate * 2 WHERE fnu = "
      "(SELECT MIN(fnu) FROM flight WHERE source = 'Houston')");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(SqlFor(*result, "delta").find("SELECT MIN(fnu) FROM flight"),
            std::string::npos);
}

TEST_F(ExpanderTest, LetTableVariableInSubquery) {
  // The §3.4 reservation pattern: the LET table variable appears both as
  // update target and inside the scalar subquery.
  auto result = Expand(
      "USE continental delta\n"
      "LET ftab.num.src BE flights.flnu.source flight.fnu.source\n"
      "UPDATE ftab SET rate = 0 WHERE num = "
      "(SELECT MIN(num) FROM ftab WHERE src = 'Houston')");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->queries.size(), 2u);
  EXPECT_EQ(SqlFor(*result, "continental"),
            "UPDATE flights SET rate = 0 WHERE flnu = "
            "(SELECT MIN(flnu) FROM flights WHERE source = 'Houston')");
  EXPECT_EQ(SqlFor(*result, "delta"),
            "UPDATE flight SET rate = 0 WHERE fnu = "
            "(SELECT MIN(fnu) FROM flight WHERE source = 'Houston')");
}

TEST_F(ExpanderTest, DuplicateScopeNamesRejected) {
  EXPECT_EQ(Expand("USE avis avis SELECT code FROM cars").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ExpanderTest, AliasesMakeDuplicatesLegal) {
  auto result = Expand(
      "USE (avis a1) (avis a2) SELECT code FROM cars");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->queries.size(), 2u);
  EXPECT_EQ(result->queries[0].effective_name, "a1");
  EXPECT_EQ(result->queries[1].effective_name, "a2");
  EXPECT_EQ(result->queries[0].database, "avis");
}

TEST_F(ExpanderTest, UnknownDatabaseFails) {
  EXPECT_EQ(Expand("USE ghost SELECT a FROM t").status().code(),
            StatusCode::kNotFound);
}

TEST_F(ExpanderTest, DdlReplicatedVerbatim) {
  auto create = Expand(
      "USE avis national CREATE TABLE bookings (bid INTEGER, who TEXT)");
  ASSERT_TRUE(create.ok()) << create.status();
  ASSERT_EQ(create->queries.size(), 2u);
  EXPECT_EQ(create->queries[0].statement->ToSql(),
            "CREATE TABLE bookings (bid INTEGER, who TEXT)");

  // DROP is pertinent only where the GDD knows the table.
  auto drop = Expand("USE avis national DROP TABLE cars");
  ASSERT_TRUE(drop.ok());
  ASSERT_EQ(drop->queries.size(), 1u);
  EXPECT_EQ(drop->queries[0].database, "avis");
  EXPECT_EQ(drop->non_pertinent, (std::vector<std::string>{"national"}));
}

TEST_F(ExpanderTest, SemanticAliasRules) {
  EXPECT_EQ(SemanticAlias("%code"), "code");
  EXPECT_EQ(SemanticAlias("flight%"), "flight");
  EXPECT_EQ(SemanticAlias("%"), "col");
  EXPECT_EQ(SemanticAlias("plain"), "plain");
}

TEST_F(ExpanderTest, CollectIdentifiersSeesAllDepths) {
  auto input = MsqlParser::ParseOne(
      "USE delta UPDATE flight SET rate = rate + 1 WHERE fnu = "
      "(SELECT MIN(fnu) FROM flight2 WHERE x = 1)");
  ASSERT_TRUE(input.ok());
  std::set<std::string> tables;
  std::map<std::string, bool> columns;
  CollectIdentifiers(*input->query->body, &tables, &columns);
  EXPECT_TRUE(tables.count("flight"));
  EXPECT_TRUE(tables.count("flight2"));
  EXPECT_TRUE(columns.count("rate"));
  EXPECT_TRUE(columns.count("fnu"));
  EXPECT_TRUE(columns.count("x"));
}

}  // namespace
}  // namespace msql::lang
