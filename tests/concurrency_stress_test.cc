// E16 stress: randomized mixed workloads of 100+ concurrent sessions
// (seat-booking multitransactions, deadlock-prone opposite-order
// multitransactions, read queries) driven through the federation
// server under fixed seeds, plus a chaos variant with local-engine
// failure injection. Checks global invariants rather than goldens:
// every session terminates, committed effects are exactly-once (no
// lost updates), aborts leave no residue (no orphaned locks), and the
// federation stays serviceable afterwards. Runs under ASan/UBSan via
// the asan-ubsan preset.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/fixtures.h"
#include "core/mdbs_system.h"
#include "core/session_scheduler.h"

namespace msql::core {
namespace {

std::string SeatMt(const std::string& client) {
  return "BEGIN MULTITRANSACTION\n"
         "USE continental delta\n"
         "LET fitab.snu.sstat.clname BE\n"
         "  f838.seatnu.seatstatus.clientname\n"
         "  fnu747.snu.sstat.passname\n"
         "UPDATE fitab SET sstat = 'TAKEN', clname = '" +
         client +
         "'\n"
         "WHERE snu = (SELECT MIN(snu) FROM fitab WHERE sstat = 'FREE');\n"
         "COMMIT\n"
         "  continental AND delta\n"
         "END MULTITRANSACTION";
}

std::string OrderedSeatMt(bool continental_first,
                          const std::string& client) {
  std::string continental =
      "USE continental\n"
      "UPDATE f838 SET seatstatus = 'TAKEN', clientname = '" +
      client +
      "'\n"
      "WHERE seatnu = (SELECT MIN(seatnu) FROM f838 "
      "WHERE seatstatus = 'FREE');\n";
  std::string delta =
      "USE delta\n"
      "UPDATE fnu747 SET sstat = 'TAKEN', passname = '" + client +
      "'\n"
      "WHERE snu = (SELECT MIN(snu) FROM fnu747 WHERE sstat = 'FREE');\n";
  return "BEGIN MULTITRANSACTION\n" +
         (continental_first ? continental + delta : delta + continental) +
         "COMMIT\n"
         "  continental AND delta\n"
         "END MULTITRANSACTION";
}

int64_t Count(MultidatabaseSystem& sys, const std::string& db,
              const std::string& sql) {
  auto engine = *sys.GetEngine(PaperServiceOf(db));
  auto session = *engine->OpenSession(db);
  auto rs = engine->Execute(session, sql);
  EXPECT_TRUE(rs.ok()) << rs.status();
  int64_t out = rs.ok() ? rs->rows[0][0].AsInteger() : 0;
  EXPECT_TRUE(engine->CloseSession(session).ok());
  return out;
}

int64_t TakenOn(MultidatabaseSystem& sys) {
  return Count(sys, "continental",
               "SELECT COUNT(*) FROM f838 WHERE seatstatus = 'TAKEN'");
}

int64_t TakenDelta(MultidatabaseSystem& sys) {
  return Count(sys, "delta",
               "SELECT COUNT(*) FROM fnu747 WHERE sstat = 'TAKEN'");
}

void ExpectNoHeldLocks(MultidatabaseSystem& sys) {
  for (const auto& name : sys.environment().ServiceNames()) {
    auto lam = sys.environment().GetLam(name);
    ASSERT_TRUE(lam.ok());
    EXPECT_EQ((*lam)->engine()->lock_manager().locked_resource_count(), 0)
        << "service " << name << " still holds locks";
  }
}

struct Mix {
  int sessions = 120;
  double seat_fraction = 0.6;
  double ordered_fraction = 0.2;  // remainder are read queries
  double engine_failure_p = 0.0;
};

void RunMixedWorkload(uint64_t seed, const Mix& mix) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  PaperFederationOptions options;
  options.seats_per_airline = 2 * mix.sessions;
  auto built = BuildPaperFederation(options);
  ASSERT_TRUE(built.ok()) << built.status();
  auto sys = std::move(*built);
  // Baselines before arming chaos: a failing engine also fails the
  // bookkeeping SELECTs.
  const int64_t base_cont = TakenOn(*sys);
  const int64_t base_delta = TakenDelta(*sys);
  if (mix.engine_failure_p > 0.0) {
    auto lam = *sys->environment().GetLam(PaperServiceOf("delta"));
    lam->engine()->SetFailureProbability(mix.engine_failure_p, seed);
  }

  Rng rng(seed);
  FederationServer server(sys.get());
  std::vector<bool> is_seat_mt;  // by session index
  for (int i = 0; i < mix.sessions; ++i) {
    const std::string client =
        "s" + std::to_string(seed) + "_" + std::to_string(i);
    const double roll = rng.NextDouble();
    if (roll < mix.seat_fraction) {
      server.Submit(SeatMt(client));
      is_seat_mt.push_back(true);
    } else if (roll < mix.seat_fraction + mix.ordered_fraction) {
      server.Submit(OrderedSeatMt(rng.NextBool(0.5), client));
      is_seat_mt.push_back(true);
    } else {
      server.Submit("USE continental\nSELECT flnu FROM flights");
      is_seat_mt.push_back(false);
    }
  }

  auto results = server.RunAll();
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), static_cast<size_t>(mix.sessions));

  int64_t committed_mts = 0;
  int64_t partial_mts = 0;  // INCORRECT: committed at one site only
  int64_t aborted = 0;
  int64_t lock_waits = 0;
  for (int i = 0; i < mix.sessions; ++i) {
    const SessionResult& r = (*results)[i];
    // Terminates: every session ends with a report or a hard status —
    // never silently hangs or disappears.
    ASSERT_TRUE(r.report.has_value() || !r.status.ok())
        << "session " << r.session_id << " has neither report nor error";
    lock_waits += r.lock_waits;
    if (!r.report.has_value()) continue;
    if (r.report->outcome == GlobalOutcome::kAborted) ++aborted;
    if (!is_seat_mt[i]) {
      EXPECT_EQ(r.report->outcome, GlobalOutcome::kSuccess)
          << "read query " << r.session_id << " should never conflict";
      continue;
    }
    if (r.report->outcome == GlobalOutcome::kSuccess) ++committed_mts;
    if (r.report->outcome == GlobalOutcome::kIncorrect) ++partial_mts;
  }
  // Disarm chaos before the bookkeeping SELECTs below.
  if (mix.engine_failure_p > 0.0) {
    auto lam = *sys->environment().GetLam(PaperServiceOf("delta"));
    lam->engine()->SetFailureProbability(0.0, seed);
  }
  // Exactly-once accounting: each committed multitransaction took one
  // seat on each airline and aborted ones took none (atomicity of the
  // vital-vital commit groups). An INCORRECT outcome is the paper's
  // post-decision partial commit: with faults injected only at delta,
  // such a session committed its continental seat and lost its delta
  // one — and the report says so.
  EXPECT_EQ(TakenOn(*sys) - base_cont, committed_mts + partial_mts);
  EXPECT_EQ(TakenDelta(*sys) - base_delta, committed_mts);
  if (mix.engine_failure_p == 0.0) EXPECT_EQ(partial_mts, 0);
  // The workload actually contended.
  EXPECT_GT(lock_waits, 0);
  if (mix.engine_failure_p == 0.0) {
    // Without injected faults the only abort source is deadlock
    // victimhood / lock timeouts, and most sessions must commit.
    EXPECT_GT(committed_mts, mix.sessions / 2);
    for (const SessionResult& r : *results) {
      if (r.report.has_value() &&
          r.report->outcome == GlobalOutcome::kAborted) {
        EXPECT_TRUE(r.deadlock_victim || r.lock_timeout)
            << "session " << r.session_id
            << " aborted without a concurrency cause: "
            << r.report->detail.ToString();
      }
    }
  }
  // No residue: every lock released, every engine back to serial duty.
  ExpectNoHeldLocks(*sys);
  auto after = sys->Execute(SeatMt("post_" + std::to_string(seed)));
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->outcome, GlobalOutcome::kSuccess);
}

class ConcurrencyStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConcurrencyStressTest, MixedWorkloadHoldsInvariants) {
  RunMixedWorkload(GetParam(), Mix{});
}

TEST_P(ConcurrencyStressTest, ChaosFaultsLeaveNoResidue) {
  Mix mix;
  mix.sessions = 100;
  mix.engine_failure_p = 0.05;
  RunMixedWorkload(GetParam(), mix);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcurrencyStressTest,
                         ::testing::Values(7u, 21u, 1993u));

}  // namespace
}  // namespace msql::core
