// Crash-recovery tests of the persistent LocalEngine: WAL replay after
// simulated power cuts, durability across engine restarts, 2PC prepared
// state surviving a crash, and a seeded chaos matrix over crash points.

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "obs/metrics.h"
#include "relational/engine.h"

namespace msql::relational {
namespace {

class StorageRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("msql_recovery_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  StorageConfig Config(size_t pool_pages = 64) const {
    StorageConfig config;
    config.root_dir = root_.string();
    config.buffer_pool_pages = pool_pages;
    return config;
  }

  /// SELECT id,name ordered by id, rendered "id:name,id:name,...".
  static std::string Snapshot(LocalEngine& engine, SessionId s) {
    auto rs = engine.Execute(s, "SELECT id, name FROM t ORDER BY id;");
    if (!rs.ok()) return "<error: " + rs.status().message() + ">";
    std::string out;
    for (const Row& row : rs->rows) {
      if (!out.empty()) out += ",";
      out += row[0].ToDisplayString() + ":" + row[1].ToDisplayString();
    }
    return out;
  }

  std::filesystem::path root_;
};

TEST_F(StorageRecoveryTest, CommittedWorkSurvivesEngineRestart) {
  {
    LocalEngine engine("srv", CapabilityProfile::IngresLike());
    ASSERT_TRUE(engine.AttachStorage(Config()).ok());
    ASSERT_TRUE(engine.CreateDatabase("d").ok());
    auto s = engine.OpenSession("d");
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(engine
                    .Execute(*s,
                             "CREATE TABLE t (id INTEGER, name CHAR(16));")
                    .ok());
    ASSERT_TRUE(engine.Execute(*s, "CREATE INDEX t_id ON t (id);").ok());
    ASSERT_TRUE(
        engine.Execute(*s, "INSERT INTO t VALUES (1, 'ada');").ok());
    ASSERT_TRUE(
        engine.Execute(*s, "INSERT INTO t VALUES (2, 'bob');").ok());
    ASSERT_TRUE(engine
                    .Execute(*s,
                             "CREATE VIEW v AS SELECT name FROM t "
                             "WHERE id = 2;")
                    .ok());
    // No checkpoint: data pages may never have been written; the WAL
    // alone must reconstruct everything.
  }
  LocalEngine engine("srv", CapabilityProfile::IngresLike());
  ASSERT_TRUE(engine.AttachStorage(Config()).ok());
  { Status rec = engine.Recover(); ASSERT_TRUE(rec.ok()) << rec; }
  auto s = engine.OpenSession("d");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(Snapshot(engine, *s), "1:ada,2:bob");
  // The index was rebuilt and probes work.
  auto probed = engine.Execute(*s, "SELECT name FROM t WHERE id = 2;");
  ASSERT_TRUE(probed.ok());
  ASSERT_EQ(probed->rows.size(), 1u);
  EXPECT_EQ(probed->rows[0][0].ToDisplayString(), "bob");
  // The view came back too.
  auto viewed = engine.Execute(*s, "SELECT * FROM v;");
  ASSERT_TRUE(viewed.ok());
  ASSERT_EQ(viewed->rows.size(), 1u);
  EXPECT_EQ(viewed->rows[0][0].ToDisplayString(), "bob");
  // The recovered table stays a live, writable paged table.
  ASSERT_TRUE(engine.Execute(*s, "INSERT INTO t VALUES (3, 'cyd');").ok());
  EXPECT_EQ(Snapshot(engine, *s), "1:ada,2:bob,3:cyd");
}

TEST_F(StorageRecoveryTest, UncommittedWorkVanishesAtCrash) {
  LocalEngine engine("srv", CapabilityProfile::IngresLike());
  ASSERT_TRUE(engine.AttachStorage(Config()).ok());
  ASSERT_TRUE(engine.CreateDatabase("d").ok());
  auto s = engine.OpenSession("d");
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(
      engine.Execute(*s, "CREATE TABLE t (id INTEGER, name CHAR(16));")
          .ok());
  ASSERT_TRUE(engine.Execute(*s, "INSERT INTO t VALUES (1, 'ada');").ok());
  // Open transaction: its inserts are in the WAL tail / pool only.
  ASSERT_TRUE(engine.Execute(*s, "BEGIN;").ok());
  ASSERT_TRUE(engine.Execute(*s, "INSERT INTO t VALUES (2, 'bob');").ok());
  ASSERT_TRUE(
      engine.Execute(*s, "UPDATE t SET name = 'eve' WHERE id = 1;").ok());

  engine.SimulateCrash();
  { Status rec = engine.Recover(); ASSERT_TRUE(rec.ok()) << rec; }
  auto s2 = engine.OpenSession("d");
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(Snapshot(engine, *s2), "1:ada");
}

TEST_F(StorageRecoveryTest, CrashMidCheckpointStaysConsistent) {
  LocalEngine engine("srv", CapabilityProfile::IngresLike());
  ASSERT_TRUE(engine.AttachStorage(Config(16)).ok());
  ASSERT_TRUE(engine.CreateDatabase("d").ok());
  auto s = engine.OpenSession("d");
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(
      engine.Execute(*s, "CREATE TABLE t (id INTEGER, name CHAR(16));")
          .ok());
  std::string expect;
  for (int i = 0; i < 40; ++i) {
    std::string sql = "INSERT INTO t VALUES (" + std::to_string(i) +
                      ", 'n" + std::to_string(i) + "');";
    ASSERT_TRUE(engine.Execute(*s, sql).ok());
    if (!expect.empty()) expect += ",";
    expect += std::to_string(i) + ":n" + std::to_string(i);
  }
  // Die after only two pages of the checkpoint writeback reached disk.
  ASSERT_TRUE(engine.Checkpoint(/*max_pages=*/2).ok());
  engine.SimulateCrash();
  { Status rec = engine.Recover(); ASSERT_TRUE(rec.ok()) << rec; }
  auto s2 = engine.OpenSession("d");
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(Snapshot(engine, *s2), expect);
}

TEST_F(StorageRecoveryTest, PreparedTransactionSurvivesCrash) {
  LocalEngine engine("srv", CapabilityProfile::IngresLike());
  ASSERT_TRUE(engine.AttachStorage(Config()).ok());
  ASSERT_TRUE(engine.CreateDatabase("d").ok());
  auto s = engine.OpenSession("d");
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(
      engine.Execute(*s, "CREATE TABLE t (id INTEGER, name CHAR(16));")
          .ok());
  ASSERT_TRUE(engine.Execute(*s, "INSERT INTO t VALUES (1, 'ada');").ok());

  ASSERT_TRUE(engine.Execute(*s, "BEGIN;").ok());
  ASSERT_TRUE(engine.Execute(*s, "INSERT INTO t VALUES (2, 'bob');").ok());
  ASSERT_TRUE(engine.Prepare(*s).ok());

  engine.SimulateCrash();
  { Status rec = engine.Recover(); ASSERT_TRUE(rec.ok()) << rec; }

  // The prepared session is back, still prepared.
  auto state = engine.GetTxnState(*s);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, TxnState::kPrepared);

  // Its exclusive lock still excludes other writers.
  auto other = engine.OpenSession("d");
  ASSERT_TRUE(other.ok());
  auto blocked = engine.Execute(*other, "INSERT INTO t VALUES (9, 'x');");
  EXPECT_FALSE(blocked.ok());

  // The coordinator commits: the prepared insert becomes visible.
  ASSERT_TRUE(engine.Commit(*s).ok());
  EXPECT_EQ(Snapshot(engine, *other), "1:ada,2:bob");
}

TEST_F(StorageRecoveryTest, PreparedTransactionRollsBackAfterCrash) {
  LocalEngine engine("srv", CapabilityProfile::IngresLike());
  ASSERT_TRUE(engine.AttachStorage(Config()).ok());
  ASSERT_TRUE(engine.CreateDatabase("d").ok());
  auto s = engine.OpenSession("d");
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(
      engine.Execute(*s, "CREATE TABLE t (id INTEGER, name CHAR(16));")
          .ok());
  ASSERT_TRUE(engine.Execute(*s, "INSERT INTO t VALUES (1, 'ada');").ok());

  ASSERT_TRUE(engine.Execute(*s, "BEGIN;").ok());
  ASSERT_TRUE(
      engine.Execute(*s, "UPDATE t SET name = 'eve' WHERE id = 1;").ok());
  ASSERT_TRUE(engine.Execute(*s, "DELETE FROM t WHERE id = 1;").ok());
  ASSERT_TRUE(engine.Execute(*s, "INSERT INTO t VALUES (2, 'bob');").ok());
  ASSERT_TRUE(engine.Prepare(*s).ok());

  engine.SimulateCrash();
  { Status rec = engine.Recover(); ASSERT_TRUE(rec.ok()) << rec; }

  // The coordinator aborts: before-images restore the original row.
  ASSERT_TRUE(engine.Rollback(*s).ok());
  auto s2 = engine.OpenSession("d");
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(Snapshot(engine, *s2), "1:ada");

  // And the rollback's compensations are themselves durable.
  engine.SimulateCrash();
  { Status rec = engine.Recover(); ASSERT_TRUE(rec.ok()) << rec; }
  auto s3 = engine.OpenSession("d");
  ASSERT_TRUE(s3.ok());
  EXPECT_EQ(Snapshot(engine, *s3), "1:ada");
}

TEST_F(StorageRecoveryTest, DdlInAbortedTransactionLeavesOldIncarnation) {
  LocalEngine engine("srv", CapabilityProfile::IngresLike());
  ASSERT_TRUE(engine.AttachStorage(Config()).ok());
  ASSERT_TRUE(engine.CreateDatabase("d").ok());
  auto s = engine.OpenSession("d");
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(
      engine.Execute(*s, "CREATE TABLE t (id INTEGER, name CHAR(16));")
          .ok());
  ASSERT_TRUE(engine.Execute(*s, "INSERT INTO t VALUES (1, 'ada');").ok());

  // Drop and re-create the table inside a transaction, then abort: the
  // original incarnation (and its rows) must come back untouched.
  ASSERT_TRUE(engine.Execute(*s, "BEGIN;").ok());
  ASSERT_TRUE(engine.Execute(*s, "DROP TABLE t;").ok());
  ASSERT_TRUE(
      engine.Execute(*s, "CREATE TABLE t (id INTEGER, name CHAR(16));")
          .ok());
  ASSERT_TRUE(engine.Execute(*s, "INSERT INTO t VALUES (7, 'imp');").ok());
  ASSERT_TRUE(engine.Execute(*s, "ROLLBACK;").ok());
  EXPECT_EQ(Snapshot(engine, *s), "1:ada");

  // The same holds across a crash after the abort.
  engine.SimulateCrash();
  { Status rec = engine.Recover(); ASSERT_TRUE(rec.ok()) << rec; }
  auto s2 = engine.OpenSession("d");
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(Snapshot(engine, *s2), "1:ada");
}

TEST_F(StorageRecoveryTest, FailedRollbackIsRepairedByRecovery) {
  LocalEngine engine("srv", CapabilityProfile::IngresLike());
  ASSERT_TRUE(engine.AttachStorage(Config()).ok());
  ASSERT_TRUE(engine.CreateDatabase("d").ok());
  auto s = engine.OpenSession("d");
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(
      engine.Execute(*s, "CREATE TABLE t (id INTEGER, name CHAR(16));")
          .ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(engine
                    .Execute(*s, "INSERT INTO t VALUES (" +
                                     std::to_string(i) + ", 'n" +
                                     std::to_string(i) + "');")
                    .ok());
  }
  std::string before = Snapshot(engine, *s);

  ASSERT_TRUE(engine.Execute(*s, "BEGIN;").ok());
  ASSERT_TRUE(engine.Execute(*s, "DELETE FROM t WHERE id < 4;").ok());
  engine.InjectFailure(FailPoint::kNextUndo);
  auto rolled = engine.Execute(*s, "ROLLBACK;");
  ASSERT_FALSE(rolled.ok());
  EXPECT_EQ(rolled.status().code(), StatusCode::kCorrupted);
  EXPECT_TRUE(engine.IsCorrupted("d"));
  // The half-rolled-back database refuses statements...
  auto refused = engine.Execute(*s, "SELECT id, name FROM t;");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kCorrupted);

  // ...until crash recovery discards the unresolved transaction
  // wholesale, which completes the rollback.
  engine.SimulateCrash();
  { Status rec = engine.Recover(); ASSERT_TRUE(rec.ok()) << rec; }
  EXPECT_FALSE(engine.IsCorrupted("d"));
  auto s2 = engine.OpenSession("d");
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(Snapshot(engine, *s2), before);
}

TEST_F(StorageRecoveryTest, StorageCountersFlowIntoMetricsRegistry) {
  obs::MetricsRegistry metrics;
  metrics.set_enabled(true);
  LocalEngine engine("srv", CapabilityProfile::IngresLike());
  ASSERT_TRUE(engine.AttachStorage(Config(8)).ok());
  engine.SetObservability(nullptr, &metrics);
  ASSERT_TRUE(engine.CreateDatabase("d").ok());
  auto s = engine.OpenSession("d");
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(
      engine.Execute(*s, "CREATE TABLE t (id INTEGER, name CHAR(160));")
          .ok());
  // ~200 rows x ~170 bytes is ~9 pages of heap -- past the 8-frame pool,
  // so the pool must evict while the counters stream into the registry.
  const std::string pad(140, 'x');
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(engine
                    .Execute(*s, "INSERT INTO t VALUES (" +
                                     std::to_string(i) + ", 'n" + pad +
                                     std::to_string(i) + "');")
                    .ok());
  }
  ASSERT_TRUE(engine.Checkpoint().ok());
  EXPECT_GT(metrics.Get("storage.wal_appends"), 0);
  EXPECT_GT(metrics.Get("storage.wal_flushes"), 0);
  EXPECT_GT(metrics.Get("storage.page_writes"), 0);
  EXPECT_GT(metrics.Get("storage.pin_hits"), 0);
  // An 8-frame pool under 200 rows of table + scans must evict.
  EXPECT_GT(metrics.Get("storage.evictions"), 0);
}

// -- Chaos matrix ------------------------------------------------------------

enum class CrashPoint {
  kBeforeWalFlush,   // crash with an open (never flushed) transaction
  kAfterFlush,       // crash right after a commit, before any writeback
  kMidCheckpoint,    // crash partway through checkpoint page writeback
  kHoldingPrepared,  // crash with a 2PC transaction in prepared state
};

/// Runs a seeded committed workload, injects a crash at `point`, then
/// recovers and compares the table against the committed shadow state.
void RunChaosCase(const std::string& root, CrashPoint point,
                  uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  std::filesystem::remove_all(root);
  StorageConfig config;
  config.root_dir = root;
  config.buffer_pool_pages = 24;

  LocalEngine engine("srv", CapabilityProfile::IngresLike());
  ASSERT_TRUE(engine.AttachStorage(config).ok());
  ASSERT_TRUE(engine.CreateDatabase("d").ok());
  auto s = engine.OpenSession("d");
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(
      engine.Execute(*s, "CREATE TABLE t (id INTEGER, name CHAR(16));")
          .ok());

  // Committed shadow state: id → name.
  std::map<int, std::string> shadow;
  Rng rng(seed);
  int next_id = 0;
  const int kBatches = 8;
  for (int batch = 0; batch < kBatches; ++batch) {
    ASSERT_TRUE(engine.Execute(*s, "BEGIN;").ok());
    std::map<int, std::string> pending = shadow;
    int ops = static_cast<int>(rng.NextInRange(3, 8));
    for (int i = 0; i < ops; ++i) {
      uint64_t kind = rng.NextBelow(10);
      if (kind < 6 || pending.empty()) {
        int id = next_id++;
        std::string name = "v" + std::to_string(rng.NextBelow(1000));
        ASSERT_TRUE(engine
                        .Execute(*s, "INSERT INTO t VALUES (" +
                                         std::to_string(id) + ", '" + name +
                                         "');")
                        .ok());
        pending[id] = name;
      } else if (kind < 8) {
        auto it = pending.begin();
        std::advance(it, rng.NextBelow(pending.size()));
        std::string name = "u" + std::to_string(rng.NextBelow(1000));
        ASSERT_TRUE(engine
                        .Execute(*s, "UPDATE t SET name = '" + name +
                                         "' WHERE id = " +
                                         std::to_string(it->first) + ";")
                        .ok());
        it->second = name;
      } else {
        auto it = pending.begin();
        std::advance(it, rng.NextBelow(pending.size()));
        ASSERT_TRUE(engine
                        .Execute(*s, "DELETE FROM t WHERE id = " +
                                         std::to_string(it->first) + ";")
                        .ok());
        pending.erase(it);
      }
    }
    if (batch + 1 == kBatches) {
      // Final batch: leave it unresolved per the crash point.
      switch (point) {
        case CrashPoint::kBeforeWalFlush:
          // Neither commit nor prepare: the whole batch must vanish.
          break;
        case CrashPoint::kAfterFlush:
          ASSERT_TRUE(engine.Commit(*s).ok());
          shadow = pending;
          break;
        case CrashPoint::kMidCheckpoint:
          ASSERT_TRUE(engine.Commit(*s).ok());
          shadow = pending;
          ASSERT_TRUE(engine.Checkpoint(/*max_pages=*/3).ok());
          break;
        case CrashPoint::kHoldingPrepared:
          ASSERT_TRUE(engine.Prepare(*s).ok());
          // Not in shadow: resolved below, after recovery.
          break;
      }
    } else {
      ASSERT_TRUE(engine.Commit(*s).ok());
      shadow = pending;
      if (batch % 3 == 1) {
        ASSERT_TRUE(engine.Checkpoint().ok());
      }
    }
  }

  engine.SimulateCrash();
  { Status rec = engine.Recover(); ASSERT_TRUE(rec.ok()) << rec; }

  if (point == CrashPoint::kHoldingPrepared) {
    // The prepared batch survived; commit on even seeds, abort on odd.
    auto state = engine.GetTxnState(*s);
    ASSERT_TRUE(state.ok());
    ASSERT_EQ(*state, TxnState::kPrepared);
    if (seed % 2 == 0) {
      ASSERT_TRUE(engine.Commit(*s).ok());
      // Re-derive the committed view by querying; just check the
      // prepared rows landed on top of the shadow (superset check
      // below uses the engine as source of truth for this case).
    } else {
      ASSERT_TRUE(engine.Rollback(*s).ok());
    }
  }

  auto s2 = engine.OpenSession("d");
  ASSERT_TRUE(s2.ok());
  auto rs = engine.Execute(*s2, "SELECT id, name FROM t ORDER BY id;");
  ASSERT_TRUE(rs.ok());
  if (point == CrashPoint::kHoldingPrepared && seed % 2 == 0) {
    // Committed-after-recovery: at least every previously committed
    // row that the final batch did not touch must be present.
    std::map<int, std::string> got;
    for (const Row& row : rs->rows) {
      got[static_cast<int>(row[0].AsInteger())] = row[1].ToDisplayString();
    }
    for (const auto& [id, name] : shadow) {
      auto it = got.find(id);
      if (it != got.end()) {
        // Touched by the prepared batch or unchanged — either way the
        // value must be a well-formed workload value.
        EXPECT_FALSE(it->second.empty());
      }
    }
    // And a double crash after the commit keeps that exact state.
    std::string after_commit;
    for (const Row& row : rs->rows) {
      after_commit += row[0].ToDisplayString() + ":" +
                      row[1].ToDisplayString() + ",";
    }
    engine.SimulateCrash();
    { Status rec = engine.Recover(); ASSERT_TRUE(rec.ok()) << rec; }
    auto s3 = engine.OpenSession("d");
    ASSERT_TRUE(s3.ok());
    auto rs3 = engine.Execute(*s3, "SELECT id, name FROM t ORDER BY id;");
    ASSERT_TRUE(rs3.ok());
    std::string again;
    for (const Row& row : rs3->rows) {
      again += row[0].ToDisplayString() + ":" + row[1].ToDisplayString() +
               ",";
    }
    EXPECT_EQ(after_commit, again);
    return;
  }

  std::map<int, std::string> got;
  for (const Row& row : rs->rows) {
    got[static_cast<int>(row[0].AsInteger())] = row[1].ToDisplayString();
  }
  std::map<int, std::string> want(shadow.begin(), shadow.end());
  EXPECT_EQ(got, want);

  // Double crash: recovery must be idempotent.
  engine.SimulateCrash();
  { Status rec = engine.Recover(); ASSERT_TRUE(rec.ok()) << rec; }
  auto s3 = engine.OpenSession("d");
  ASSERT_TRUE(s3.ok());
  auto rs3 = engine.Execute(*s3, "SELECT id, name FROM t ORDER BY id;");
  ASSERT_TRUE(rs3.ok());
  got.clear();
  for (const Row& row : rs3->rows) {
    got[static_cast<int>(row[0].AsInteger())] = row[1].ToDisplayString();
  }
  EXPECT_EQ(got, want);
}

class ChaosMatrix : public StorageRecoveryTest {};

TEST_F(ChaosMatrix, BeforeWalFlush) {
  for (uint64_t seed : {7u, 21u, 1993u}) {
    RunChaosCase(root_.string(), CrashPoint::kBeforeWalFlush, seed);
  }
}

TEST_F(ChaosMatrix, AfterFlushBeforeApply) {
  for (uint64_t seed : {7u, 21u, 1993u}) {
    RunChaosCase(root_.string(), CrashPoint::kAfterFlush, seed);
  }
}

TEST_F(ChaosMatrix, MidCheckpoint) {
  for (uint64_t seed : {7u, 21u, 1993u}) {
    RunChaosCase(root_.string(), CrashPoint::kMidCheckpoint, seed);
  }
}

TEST_F(ChaosMatrix, HoldingPrepared) {
  for (uint64_t seed : {7u, 21u, 1993u}) {
    RunChaosCase(root_.string(), CrashPoint::kHoldingPrepared, seed);
  }
}

}  // namespace
}  // namespace msql::relational
