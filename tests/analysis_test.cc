// Static analysis (DESIGN.md §8): one failing-input golden test per
// MS1xx checker code and DL2xx verifier code, the Analyze API contract
// (no execution, no scope drift), and the verifier-accepts-translator
// property over randomized valid scopes.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/conflict_analyzer.h"
#include "analysis/diagnostics.h"
#include "analysis/dol_verifier.h"
#include "analysis/msql_checker.h"
#include "common/rng.h"
#include "core/fixtures.h"
#include "core/mdbs_system.h"
#include "dol/parser.h"
#include "msql/parser.h"

namespace msql::analysis {
namespace {

using core::BuildPaperFederation;
using core::BuildSyntheticFederation;
using core::MultidatabaseSystem;
using core::PaperFederationOptions;
using core::SyntheticFederationOptions;

// ---------------------------------------------------------------------------
// Diagnostics framework
// ---------------------------------------------------------------------------

TEST(DiagnosticsTest, RenderForms) {
  Diagnostic d;
  d.code = "MS103";
  d.severity = Severity::kError;
  d.span = SourceSpan::At(2, 8, 9);
  d.message = "column 'nosuchcol' resolves in no scope database";
  d.fix_hint = "check the spelling";
  EXPECT_EQ(d.Render(),
            "error[MS103] line 2 col 8: column 'nosuchcol' resolves in no "
            "scope database");
  std::string pretty =
      d.RenderPretty("USE avis\nSELECT nosuchcol FROM cars;\n");
  EXPECT_NE(pretty.find("2 | SELECT nosuchcol FROM cars;"),
            std::string::npos)
      << pretty;
  EXPECT_NE(pretty.find("^~~~~~~~~"), std::string::npos) << pretty;
  EXPECT_NE(pretty.find("help: check the spelling"), std::string::npos)
      << pretty;
}

TEST(DiagnosticsTest, RenderPrettyExpandsTabs) {
  // The excerpt expands tabs to 4-column stops and the caret column is
  // remapped accordingly: raw column 9 ('nosuchcol' after a leading
  // tab) lands on expanded column 12, not under the wrong character.
  Diagnostic d;
  d.code = "MS103";
  d.severity = Severity::kError;
  d.span = SourceSpan::At(2, 9, 9);
  d.message = "column 'nosuchcol' resolves in no scope database";
  std::string pretty =
      d.RenderPretty("USE avis\n\tSELECT nosuchcol FROM cars;\n");
  EXPECT_NE(pretty.find("2 |     SELECT nosuchcol FROM cars;"),
            std::string::npos)
      << pretty;
  std::string caret_line = "| " + std::string(11, ' ') + "^~~~~~~~";
  EXPECT_NE(pretty.find(caret_line), std::string::npos) << pretty;
}

TEST(DiagnosticsTest, ListAccountingAndStatus) {
  DiagnosticList list;
  EXPECT_TRUE(list.ToStatus().ok());
  list.Add("MS106", Severity::kWarning, SourceSpan{}, "w");
  EXPECT_TRUE(list.ToStatus().ok());
  list.Add("MS102", Severity::kError, SourceSpan::At(1, 1), "e");
  EXPECT_EQ(list.error_count(), 1u);
  EXPECT_EQ(list.warning_count(), 1u);
  Status status = list.ToStatus();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("error[MS102]"), std::string::npos);
  // Warnings do not leak into the error status.
  EXPECT_EQ(status.message().find("MS106"), std::string::npos);
  ASSERT_NE(list.Find("MS106"), nullptr);
  EXPECT_EQ(list.Find("MS199"), nullptr);
}

// ---------------------------------------------------------------------------
// MSQL checker (MS1xx) — one golden test per code
// ---------------------------------------------------------------------------

class CheckerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto sys = BuildPaperFederation();
    ASSERT_TRUE(sys.ok()) << sys.status();
    sys_ = std::move(*sys);
  }

  DiagnosticList Check(const std::string& text) {
    auto input = lang::MsqlParser::ParseOne(text);
    EXPECT_TRUE(input.ok()) << input.status();
    if (!input.ok()) return DiagnosticList{};
    EXPECT_EQ(input->kind, lang::MsqlInput::Kind::kQuery);
    return CheckQuery(*input->query, sys_->gdd(),
                      sys_->auxiliary_directory());
  }

  /// The single diagnostic carrying `code`, with severity asserted.
  const Diagnostic* Expect(const DiagnosticList& list, std::string_view code,
                           Severity severity) {
    const Diagnostic* d = list.Find(code);
    EXPECT_NE(d, nullptr) << "no " << code << " in:\n" << list.RenderAll();
    if (d != nullptr) EXPECT_EQ(d->severity, severity) << d->Render();
    return d;
  }

  std::unique_ptr<MultidatabaseSystem> sys_;
};

TEST_F(CheckerTest, Ms101UnknownDatabase) {
  auto diags = Check("USE ghostdb\nSELECT code FROM cars;");
  const Diagnostic* d = Expect(diags, diag::kUnknownDatabase,
                               Severity::kError);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->Render(),
            "error[MS101] line 1 col 5: database 'ghostdb' is not in the "
            "GDD (IMPORT it first)");
  EXPECT_EQ(d->span.length, 7);
}

TEST_F(CheckerTest, Ms102UnknownTable) {
  auto diags = Check("USE avis\nSELECT code FROM nosuchtab;");
  const Diagnostic* d = Expect(diags, diag::kUnknownTable, Severity::kError);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->Render(),
            "error[MS102] line 2 col 18: table 'nosuchtab' resolves in no "
            "scope database");
}

TEST_F(CheckerTest, Ms103UnknownColumn) {
  auto diags = Check("USE avis\nSELECT nosuchcol FROM cars;");
  const Diagnostic* d = Expect(diags, diag::kUnknownColumn, Severity::kError);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->Render(),
            "error[MS103] line 2 col 8: column 'nosuchcol' resolves in no "
            "scope database");
}

TEST_F(CheckerTest, Ms104LetTypeMismatch) {
  // avis cars.rate is REAL, national vehicle.vstat is TEXT.
  auto diags = Check(
      "USE avis national\n"
      "LET car.fare BE cars.rate vehicle.vstat\n"
      "SELECT fare FROM car;");
  const Diagnostic* d = Expect(diags, diag::kLetTypeMismatch,
                               Severity::kWarning);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->span.line, 2);
  EXPECT_NE(d->message.find("'fare' binds columns of incompatible types"),
            std::string::npos)
      << d->Render();
  EXPECT_FALSE(diags.has_errors()) << diags.RenderAll();
}

TEST_F(CheckerTest, Ms105EmptyWildcard) {
  auto diags = Check("USE avis\nSELECT code FROM zz%;");
  const Diagnostic* d = Expect(diags, diag::kEmptyWildcard, Severity::kError);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->Render(),
            "error[MS105] line 2 col 18: implicit variable 'zz%' matches "
            "no table in any scope database");
}

TEST_F(CheckerTest, Ms106OptionalColumnNowhere) {
  auto diags = Check("USE avis\nSELECT code, ~nosuch FROM cars;");
  const Diagnostic* d = Expect(diags, diag::kOptionalNowhere,
                               Severity::kWarning);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->span.line, 2);
  EXPECT_EQ(d->span.column, 15);
  EXPECT_NE(d->message.find("'~nosuch' exists in no scope database"),
            std::string::npos)
      << d->Render();
  EXPECT_FALSE(diags.has_errors()) << diags.RenderAll();
}

TEST_F(CheckerTest, Ms107OptionalColumnEverywhere) {
  // cfrom exists in both avis.cars and national.vehicle, so '~' is
  // redundant.
  auto diags = Check(
      "USE avis national\n"
      "LET car BE cars vehicle\n"
      "SELECT ~cfrom FROM car;");
  const Diagnostic* d = Expect(diags, diag::kOptionalEverywhere,
                               Severity::kWarning);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("'~cfrom' exists in every scope database"),
            std::string::npos)
      << d->Render();
  EXPECT_FALSE(diags.has_errors()) << diags.RenderAll();
}

TEST_F(CheckerTest, Ms108DuplicateEffectiveNameInParser) {
  // The parser rejects the duplicate before the checker ever runs.
  auto input =
      lang::MsqlParser::ParseOne("USE avis avis SELECT code FROM cars;");
  ASSERT_FALSE(input.ok());
  EXPECT_EQ(input.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(input.status().message().find("error[MS108] line 1 col 10"),
            std::string::npos)
      << input.status().message();
  // An alias makes the scope legal again.
  EXPECT_TRUE(lang::MsqlParser::ParseOne(
                  "USE avis (avis a2) SELECT code FROM cars;")
                  .ok());
}

TEST_F(CheckerTest, Ms109CompOnNonVital) {
  auto diags = Check(
      "USE avis VITAL national\n"
      "LET cartab.cstat BE cars.carst vehicle.vstat\n"
      "UPDATE cartab SET cstat = 'TAKEN'\n"
      "COMP national DELETE FROM vehicle WHERE vstat = 'TAKEN';");
  const Diagnostic* d = Expect(diags, diag::kCompOnNonVital,
                               Severity::kWarning);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->span.line, 4);
  EXPECT_EQ(d->span.column, 6);
  EXPECT_FALSE(diags.has_errors()) << diags.RenderAll();
}

TEST_F(CheckerTest, Ms110CompUnknownDatabase) {
  auto diags = Check(
      "USE avis\n"
      "UPDATE cars SET carst = 'TAKEN'\n"
      "COMP hertz DELETE FROM cars WHERE carst = 'TAKEN';");
  const Diagnostic* d = Expect(diags, diag::kCompUnknownDatabase,
                               Severity::kError);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->Render(),
            "error[MS110] line 3 col 6: COMP clause names 'hertz', which "
            "is not in the USE scope");
}

TEST_F(CheckerTest, Ms111VitalSetUnenforceable) {
  // §3.3 downgrade: both airlines autocommit-only, both VITAL, no COMP.
  PaperFederationOptions options;
  options.continental_autocommit_only = true;
  auto sys = BuildPaperFederation(options);
  ASSERT_TRUE(sys.ok()) << sys.status();
  sys_ = std::move(*sys);
  ASSERT_TRUE(sys_->Execute(
                      "INCORPORATE SERVICE united_svc SITE site_united "
                      "CONNECTMODE CONNECT COMMITMODE COMMIT CREATE COMMIT "
                      "INSERT COMMIT DROP COMMIT")
                  .ok());
  auto diags = Check(
      "USE continental VITAL united VITAL\n"
      "UPDATE flight% SET rate% = rate% * 1.1;");
  const Diagnostic* d = Expect(diags, diag::kVitalSetUnenforceable,
                               Severity::kError);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->span.line, 1);
  EXPECT_EQ(d->span.column, 23);  // points at 'united'
  EXPECT_NE(d->message.find(
                "databases {continental, united} neither support 2PC nor "
                "provide COMP clauses"),
            std::string::npos)
      << d->Render();

  // End to end the same program is *refused*, not errored (§3.3).
  auto report = sys_->Execute(
      "USE continental VITAL united VITAL\n"
      "UPDATE flight% SET rate% = rate% * 1.1");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, core::GlobalOutcome::kRefused);
  EXPECT_EQ(report->detail.code(), StatusCode::kRefused);
  EXPECT_NE(report->detail.message().find("MS111"), std::string::npos);
}

TEST_F(CheckerTest, Ms112LetTargetMissing) {
  auto diags = Check(
      "USE avis national\n"
      "LET car BE cars nosuchtab\n"
      "SELECT code FROM car;");
  const Diagnostic* d = Expect(diags, diag::kLetTargetMissing,
                               Severity::kWarning);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("'nosuchtab' does not exist in 'national'"),
            std::string::npos)
      << d->Render();
  EXPECT_FALSE(diags.has_errors()) << diags.RenderAll();
  // When the table is missing *everywhere* the variable dangles: MS102.
  auto dangling = Check(
      "USE avis national\n"
      "LET car BE nosuch1 nosuch2\n"
      "SELECT code FROM car;");
  EXPECT_NE(dangling.Find(diag::kUnknownTable), nullptr)
      << dangling.RenderAll();
}

TEST_F(CheckerTest, Ms113LetArityMismatch) {
  auto diags = Check(
      "USE avis\n"
      "LET car BE cars vehicle\n"
      "SELECT code FROM car;");
  const Diagnostic* d = Expect(diags, diag::kLetArityMismatch,
                               Severity::kError);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->Render(),
            "error[MS113] line 2 col 5: LET car provides 2 targets for 1 "
            "scope databases");
}

TEST_F(CheckerTest, Ms114ServiceNotIncorporated) {
  // A database can be in the GDD while its service has dropped out of
  // the AD (e.g. the INCORPORATE was revoked).
  ASSERT_TRUE(sys_->gdd().RegisterDatabase("orphan", "orphan_svc").ok());
  auto diags = Check("USE orphan\nSELECT x FROM t;");
  const Diagnostic* d = Expect(diags, diag::kServiceNotIncorporated,
                               Severity::kError);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->Render(),
            "error[MS114] line 1 col 5: database 'orphan' is served by "
            "'orphan_svc', which is not incorporated in the AD");
}

// ---------------------------------------------------------------------------
// DOL verifier (DL2xx) — one golden test per code
// ---------------------------------------------------------------------------

DiagnosticList Verify(const std::string& text) {
  auto program = dol::ParseDol(text);
  EXPECT_TRUE(program.ok()) << program.status();
  if (!program.ok()) return DiagnosticList{};
  return VerifyProgram(*program);
}

TEST(VerifierTest, CleanProgramHasNoFindings) {
  auto diags = Verify(R"(
DOLBEGIN
  OPEN avis AT avis_svc AS a;
  TASK t NOCOMMIT FOR a { UPDATE cars SET carst = 'TAKEN' }
  ENDTASK;
  IF (t=P) THEN
  BEGIN
    COMMIT t;
    DOLSTATUS = 0;
  END;
  ELSE
  BEGIN
    ABORT t;
    DOLSTATUS = 1;
  END;
  CLOSE a;
DOLEND
)");
  EXPECT_TRUE(diags.empty()) << diags.RenderAll();
}

TEST(VerifierTest, Dl201StateTestOnUndefinedTask) {
  auto diags = Verify(R"(
DOLBEGIN
  OPEN avis AT avis_svc AS a;
  TASK t FOR a { SELECT code FROM cars }
  ENDTASK;
  IF (ghost=C) THEN
  BEGIN
    DOLSTATUS = 0;
  END;
  CLOSE a;
DOLEND
)");
  const Diagnostic* d = diags.Find(diag::kStateTestUndefinedTask);
  ASSERT_NE(d, nullptr) << diags.RenderAll();
  EXPECT_NE(d->message.find("tests task 'ghost'"), std::string::npos);
  EXPECT_EQ(diags.Find(diag::kUnsatisfiableStateTest), nullptr)
      << diags.RenderAll();
}

TEST(VerifierTest, Dl202UnsatisfiableStateTest) {
  // t runs in autocommit: it can never sit in the prepared state.
  auto diags = Verify(R"(
DOLBEGIN
  OPEN avis AT avis_svc AS a;
  TASK t FOR a { UPDATE cars SET carst = 'TAKEN' }
  ENDTASK;
  IF (t=P) THEN
  BEGIN
    DOLSTATUS = 0;
  END;
  CLOSE a;
DOLEND
)");
  const Diagnostic* d = diags.Find(diag::kUnsatisfiableStateTest);
  ASSERT_NE(d, nullptr) << diags.RenderAll();
  EXPECT_NE(d->message.find("(t=P)"), std::string::npos) << d->Render();
  // DL203 is suppressed when DL202 already explains the dead branch.
  EXPECT_EQ(diags.Find(diag::kUnreachableBranch), nullptr)
      << diags.RenderAll();
}

TEST(VerifierTest, Dl203UnreachableBranch) {
  // (t=C) is satisfiable (a COMMIT exists), but not before the COMMIT
  // ran: at the test point the flow state is {P, A}.
  auto diags = Verify(R"(
DOLBEGIN
  OPEN avis AT avis_svc AS a;
  TASK t NOCOMMIT FOR a { UPDATE cars SET carst = 'TAKEN' }
  ENDTASK;
  IF (t=C) THEN
  BEGIN
    DOLSTATUS = 0;
  END;
  COMMIT t;
  CLOSE a;
DOLEND
)");
  const Diagnostic* d = diags.Find(diag::kUnreachableBranch);
  ASSERT_NE(d, nullptr) << diags.RenderAll();
  EXPECT_NE(d->message.find("the THEN branch is unreachable"),
            std::string::npos)
      << d->Render();
  EXPECT_EQ(diags.Find(diag::kUnsatisfiableStateTest), nullptr)
      << diags.RenderAll();
}

TEST(VerifierTest, Dl204ChannelOpenedNeverUsed) {
  auto diags = Verify(R"(
DOLBEGIN
  OPEN avis AT avis_svc AS a;
  OPEN national AT national_svc AS n;
  TASK t FOR a { SELECT code FROM cars }
  ENDTASK;
  CLOSE a n;
DOLEND
)");
  const Diagnostic* d = diags.Find(diag::kChannelNeverUsed);
  ASSERT_NE(d, nullptr) << diags.RenderAll();
  EXPECT_NE(d->message.find("channel 'n'"), std::string::npos)
      << d->Render();
}

TEST(VerifierTest, Dl205ChannelNeverClosed) {
  auto diags = Verify(R"(
DOLBEGIN
  OPEN avis AT avis_svc AS a;
  TASK t FOR a { SELECT code FROM cars }
  ENDTASK;
DOLEND
)");
  const Diagnostic* d = diags.Find(diag::kChannelNeverClosed);
  ASSERT_NE(d, nullptr) << diags.RenderAll();
  EXPECT_NE(d->message.find("channel 'a' is never closed"),
            std::string::npos)
      << d->Render();
}

TEST(VerifierTest, Dl206UndefinedChannel) {
  auto diags = Verify(R"(
DOLBEGIN
  OPEN avis AT avis_svc AS a;
  TASK t FOR ghost { SELECT code FROM cars }
  ENDTASK;
  CLOSE a;
DOLEND
)");
  const Diagnostic* d = diags.Find(diag::kUndefinedChannel);
  ASSERT_NE(d, nullptr) << diags.RenderAll();
  EXPECT_NE(d->message.find("TASK t FOR ghost references channel 'ghost'"),
            std::string::npos)
      << d->Render();
  // The opened-but-unused 'a' is flagged alongside.
  EXPECT_NE(diags.Find(diag::kChannelNeverUsed), nullptr)
      << diags.RenderAll();
}

TEST(VerifierTest, Dl207CommitOfAutocommitTask) {
  auto diags = Verify(R"(
DOLBEGIN
  OPEN avis AT avis_svc AS a;
  TASK t FOR a { UPDATE cars SET carst = 'TAKEN' }
  ENDTASK;
  COMMIT t;
  CLOSE a;
DOLEND
)");
  const Diagnostic* d = diags.Find(diag::kDecisionOnUnpreparedTask);
  ASSERT_NE(d, nullptr) << diags.RenderAll();
  EXPECT_NE(d->message.find(
                "COMMIT names task 't', which runs in autocommit"),
            std::string::npos)
      << d->Render();
}

TEST(VerifierTest, Dl208CompensateWithoutBlock) {
  auto diags = Verify(R"(
DOLBEGIN
  OPEN avis AT avis_svc AS a;
  TASK t FOR a { UPDATE cars SET carst = 'TAKEN' }
  ENDTASK;
  COMPENSATE t;
  CLOSE a;
DOLEND
)");
  const Diagnostic* d = diags.Find(diag::kCompensateWithoutBlock);
  ASSERT_NE(d, nullptr) << diags.RenderAll();
  EXPECT_NE(d->message.find("no COMPENSATION block"), std::string::npos)
      << d->Render();
}

TEST(VerifierTest, Dl209VitalTaskUncovered) {
  // A hand-made "plan" whose vital 2PC task has no decisions at all:
  // this is exactly the translator bug VerifyPlan exists to catch.
  auto program = dol::ParseDol(R"(
DOLBEGIN
  OPEN avis AT avis_svc AS a;
  TASK t_a NOCOMMIT FOR a { UPDATE cars SET carst = 'TAKEN' }
  ENDTASK;
  CLOSE a;
DOLEND
)");
  ASSERT_TRUE(program.ok()) << program.status();
  translator::Plan plan;
  plan.program = std::move(*program);
  translator::PlanTask task;
  task.task = "t_a";
  task.vital = true;
  task.retrieval = false;
  task.mode = translator::TaskMode::kTwoPhase;
  plan.tasks.push_back(task);
  auto diags = VerifyPlan(plan);
  const Diagnostic* d = diags.Find(diag::kVitalTaskUncovered);
  ASSERT_NE(d, nullptr) << diags.RenderAll();
  EXPECT_NE(d->message.find("vital 2PC task 't_a'"), std::string::npos)
      << d->Render();
}

TEST(VerifierTest, Dl210DuplicateTaskName) {
  auto diags = Verify(R"(
DOLBEGIN
  OPEN avis AT avis_svc AS a;
  TASK t FOR a { SELECT code FROM cars }
  ENDTASK;
  TASK t FOR a { SELECT code FROM cars }
  ENDTASK;
  CLOSE a;
DOLEND
)");
  const Diagnostic* d = diags.Find(diag::kDuplicateTaskName);
  ASSERT_NE(d, nullptr) << diags.RenderAll();
  EXPECT_NE(d->message.find("task 't' is defined twice"), std::string::npos)
      << d->Render();
}

// ---------------------------------------------------------------------------
// Conflict analyzer (DL3xx) — one golden test per code
// ---------------------------------------------------------------------------

translator::Plan PlanOf(const std::string& text) {
  auto program = dol::ParseDol(text);
  EXPECT_TRUE(program.ok()) << program.status();
  translator::Plan plan;
  if (program.ok()) plan.program = std::move(*program);
  return plan;
}

DiagnosticList ConflictDiags(const translator::Plan& plan) {
  return AnalyzeConflicts(plan, SummarizePlan(plan));
}

const Diagnostic* ExpectDiag(const DiagnosticList& list,
                             std::string_view code, Severity severity) {
  const Diagnostic* d = list.Find(code);
  EXPECT_NE(d, nullptr) << "no " << code << " in:\n" << list.RenderAll();
  if (d != nullptr) EXPECT_EQ(d->severity, severity) << d->Render();
  return d;
}

TEST(ConflictAnalyzerTest, SummaryPredictsSitesModesAndOrder) {
  auto plan = PlanOf(R"(
DOLBEGIN
  OPEN avis AT avis_svc AS a;
  OPEN national AT national_svc AS n;
  TASK t1 NOCOMMIT FOR a { UPDATE cars SET carst = 'TAKEN'
                           WHERE code = (SELECT MIN(code) FROM cars) }
  ENDTASK;
  TASK t2 FOR n { SELECT vnum FROM vehicle }
  ENDTASK;
  CLOSE a n;
DOLEND
)");
  AccessSummary summary = SummarizePlan(plan);
  const TaskAccess* cars = summary.Find("avis_svc", "avis.cars");
  ASSERT_NE(cars, nullptr);
  EXPECT_EQ(cars->mode, PredictedMode::kExclusive);
  EXPECT_EQ(cars->step, 1);
  EXPECT_TRUE(cars->held_across_2pc);
  const TaskAccess* vehicle = summary.Find("national_svc",
                                           "national.vehicle");
  ASSERT_NE(vehicle, nullptr);
  EXPECT_EQ(vehicle->mode, PredictedMode::kShared);
  EXPECT_EQ(vehicle->step, 2);
  EXPECT_FALSE(vehicle->held_across_2pc);
  EXPECT_EQ(summary.two_pc_sites, 1);
  std::string render = summary.Render();
  EXPECT_NE(render.find("X avis.cars  step 1  [held across 2PC]"),
            std::string::npos)
      << render;
  EXPECT_NE(render.find("acquisition order: avis_svc -> national_svc"),
            std::string::npos)
      << render;
}

TEST(ConflictAnalyzerTest, Dl301LockOrderInversionAcrossInputs) {
  auto first = PlanOf(R"(
DOLBEGIN
  OPEN avis AT avis_svc AS a;
  OPEN national AT national_svc AS n;
  TASK ta NOCOMMIT FOR a { UPDATE cars SET carst = 'TAKEN' }
  ENDTASK;
  TASK tb NOCOMMIT FOR n { UPDATE vehicle SET vstat = 'TAKEN' }
  ENDTASK;
  CLOSE a n;
DOLEND
)");
  auto second = PlanOf(R"(
DOLBEGIN
  OPEN avis AT avis_svc AS a;
  OPEN national AT national_svc AS n;
  TASK tb NOCOMMIT FOR n { UPDATE vehicle SET vstat = 'TAKEN' }
  ENDTASK;
  TASK ta NOCOMMIT FOR a { UPDATE cars SET carst = 'TAKEN' }
  ENDTASK;
  CLOSE a n;
DOLEND
)");
  AccessSummary sa = SummarizePlan(first);
  AccessSummary sb = SummarizePlan(second);
  PairwiseConflict conflict = Classify(sa, sb);
  EXPECT_EQ(conflict.kind, ConflictKind::kWriteWrite);
  EXPECT_TRUE(conflict.deadlock_risk);
  auto diags = CheckPlanPair(sa, sb, 1, 2);
  const Diagnostic* d = ExpectDiag(diags, diag::kLockOrderInversion,
                                   Severity::kWarning);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("inputs 1 and 2 may first-acquire contended "
                            "resources in opposite orders"),
            std::string::npos)
      << d->Render();
  // Same acquisition order on both sides: contention but no inversion.
  EXPECT_FALSE(Classify(sa, sa).deadlock_risk);
  EXPECT_TRUE(CheckPlanPair(sa, sa, 1, 2).empty());
  std::string matrix = RenderConflictMatrix({&sa, &sb});
  EXPECT_NE(matrix.find("!W"), std::string::npos) << matrix;
}

TEST(ConflictAnalyzerTest, Dl302SelfDeadlockViaAliasedSessions) {
  auto plan = PlanOf(R"(
DOLBEGIN
  OPEN avis AT avis_svc AS a1;
  OPEN avis AT avis_svc AS a2;
  TASK t1 NOCOMMIT FOR a1 { UPDATE cars SET carst = 'TAKEN' }
  ENDTASK;
  TASK t2 FOR a2 { SELECT code FROM cars }
  ENDTASK;
  COMMIT t1;
  CLOSE a1 a2;
DOLEND
)");
  auto diags = ConflictDiags(plan);
  const Diagnostic* d = ExpectDiag(diags, diag::kSelfDeadlock,
                                   Severity::kError);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("task 't2' needs avis.cars"),
            std::string::npos)
      << d->Render();
  EXPECT_NE(d->message.find("holds it in X across the 2PC bracket"),
            std::string::npos)
      << d->Render();
  EXPECT_TRUE(diags.has_errors());
}

TEST(ConflictAnalyzerTest, Dl303ExclusiveHeldAcrossRetryableVital) {
  auto plan = PlanOf(R"(
DOLBEGIN
  OPEN avis AT avis_svc AS a;
  OPEN national AT national_svc AS n;
  TASK t1 NOCOMMIT FOR a { UPDATE cars SET carst = 'TAKEN' }
  ENDTASK;
  TASK t2 NOCOMMIT FOR n { UPDATE vehicle SET vstat = 'TAKEN' }
  ENDTASK;
  CLOSE a n;
DOLEND
)");
  translator::PlanTask vital_task;
  vital_task.task = "t2";
  vital_task.database = "national";
  vital_task.service = "national_svc";
  vital_task.vital = true;
  vital_task.retrieval = false;
  vital_task.mode = translator::TaskMode::kTwoPhase;
  plan.tasks.push_back(vital_task);
  auto diags = ConflictDiags(plan);
  const Diagnostic* d = ExpectDiag(diags, diag::kExclusiveHeldAcrossRetry,
                                   Severity::kNote);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("task 't1' holds avis.cars exclusively"),
            std::string::npos)
      << d->Render();
  EXPECT_NE(d->message.find("vital task 't2' at national_svc"),
            std::string::npos)
      << d->Render();
}

TEST(ConflictAnalyzerTest, Dl304UncommittedIntraMtRead) {
  auto plan = PlanOf(R"(
DOLBEGIN
  OPEN avis AT avis_svc AS a;
  TASK t1 FOR a { UPDATE cars SET carst = 'TAKEN' }
  ENDTASK;
  TASK t2 FOR a { SELECT code FROM cars }
  ENDTASK;
  CLOSE a;
DOLEND
)");
  auto diags = ConflictDiags(plan);
  const Diagnostic* d = ExpectDiag(diags, diag::kUncommittedIntraRead,
                                   Severity::kWarning);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("task 't2' reads avis.cars after sibling "
                            "task 't1' wrote it in autocommit"),
            std::string::npos)
      << d->Render();
  EXPECT_NE(d->fix_hint.find("make 't1' NOCOMMIT"), std::string::npos)
      << d->Render();
  EXPECT_FALSE(diags.has_errors()) << diags.RenderAll();
}

TEST(ConflictAnalyzerTest, Dl305WideTwoPcBracket) {
  auto plan = PlanOf(R"(
DOLBEGIN
  OPEN avis AT avis_svc AS a;
  OPEN national AT national_svc AS n;
  TASK t1 NOCOMMIT FOR a { UPDATE cars SET carst = 'TAKEN' }
  ENDTASK;
  TASK t2 NOCOMMIT FOR n { UPDATE vehicle SET vstat = 'TAKEN' }
  ENDTASK;
  CLOSE a n;
DOLEND
)");
  AccessSummary summary = SummarizePlan(plan);
  EXPECT_EQ(summary.two_pc_sites, 2);
  auto diags = AnalyzeConflicts(plan, summary);
  const Diagnostic* d = ExpectDiag(diags, diag::kWideTwoPcBracket,
                                   Severity::kNote);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("2PC bracket holds locks at 2 sites"),
            std::string::npos)
      << d->Render();
  // No vital tasks registered, so the retry-window note stays silent.
  EXPECT_EQ(diags.Find(diag::kExclusiveHeldAcrossRetry), nullptr)
      << diags.RenderAll();
}

TEST(ConflictAnalyzerTest, Dl306OpaqueTaskSqlWidensToWildcard) {
  auto plan = PlanOf(R"(
DOLBEGIN
  OPEN avis AT avis_svc AS a;
  TASK t1 FOR a { FROB THE KNOB }
  ENDTASK;
  CLOSE a;
DOLEND
)");
  AccessSummary summary = SummarizePlan(plan);
  EXPECT_EQ(summary.opaque_services.count("avis_svc"), 1u);
  const TaskAccess* wildcard = summary.Find("avis_svc", "avis.*");
  ASSERT_NE(wildcard, nullptr);
  EXPECT_EQ(wildcard->mode, PredictedMode::kExclusive);
  auto diags = AnalyzeConflicts(plan, summary);
  const Diagnostic* d = ExpectDiag(diags, diag::kOpaqueTaskSql,
                                   Severity::kWarning);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("task 't1' has SQL the analyzer cannot parse"),
            std::string::npos)
      << d->Render();
  // The wildcard overlaps every table of avis, and nothing elsewhere.
  EXPECT_TRUE(ResourcesOverlap("avis.*", "avis.cars"));
  EXPECT_FALSE(ResourcesOverlap("avis.*", "national.vehicle"));
}

TEST(ConflictAnalyzerTest, Dl307ParallelSiblingWrites) {
  auto plan = PlanOf(R"(
DOLBEGIN
  OPEN avis AT avis_svc AS a;
  PARBEGIN
    TASK p1 FOR a { UPDATE cars SET carst = 'A' }
    ENDTASK;
    TASK p2 FOR a { UPDATE cars SET carst = 'B' }
    ENDTASK;
  PAREND;
  CLOSE a;
DOLEND
)");
  auto diags = ConflictDiags(plan);
  const Diagnostic* d = ExpectDiag(diags, diag::kParallelSiblingWrites,
                                   Severity::kWarning);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("parallel tasks 'p1' and 'p2' both write "
                            "avis.cars"),
            std::string::npos)
      << d->Render();
}

TEST(ConflictAnalyzerTest, Dl308DdlOnSharedTable) {
  auto plan = PlanOf(R"(
DOLBEGIN
  OPEN avis AT avis_svc AS a;
  TASK t1 FOR a { DROP TABLE cars }
  ENDTASK;
  TASK t2 FOR a { SELECT code FROM cars }
  ENDTASK;
  CLOSE a;
DOLEND
)");
  auto diags = ConflictDiags(plan);
  const Diagnostic* d = ExpectDiag(diags, diag::kDdlOnSharedTable,
                                   Severity::kNote);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("task 't1' runs DDL on avis.cars"),
            std::string::npos)
      << d->Render();
}

// ---------------------------------------------------------------------------
// Analyze API contract
// ---------------------------------------------------------------------------

class AnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto sys = BuildPaperFederation();
    ASSERT_TRUE(sys.ok()) << sys.status();
    sys_ = std::move(*sys);
  }

  std::unique_ptr<MultidatabaseSystem> sys_;
};

TEST_F(AnalyzeTest, AnalyzeDoesNotExecute) {
  auto report = sys_->Analyze(
      "USE avis\nUPDATE cars SET carst = 'VAPOR' WHERE code >= 0;");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->translated);
  EXPECT_FALSE(report->diagnostics.has_errors())
      << report->diagnostics.RenderAll();
  EXPECT_NE(report->dol_text.find("DOLBEGIN"), std::string::npos);
  // No row was touched.
  auto check = sys_->Execute(
      "USE avis\nSELECT code FROM cars WHERE carst = 'VAPOR';");
  ASSERT_TRUE(check.ok()) << check.status();
  ASSERT_EQ(check->multitable.elements.size(), 1u);
  EXPECT_TRUE(check->multitable.elements[0].table.rows.empty());
}

TEST_F(AnalyzeTest, AnalyzeLeavesSessionScopeUntouched) {
  ASSERT_TRUE(sys_->Execute("USE avis\nSELECT code FROM cars;").ok());
  ASSERT_EQ(sys_->current_scope().entries.size(), 1u);
  ASSERT_TRUE(
      sys_->Analyze("USE continental delta\nSELECT day FROM flight%;")
          .ok());
  ASSERT_EQ(sys_->current_scope().entries.size(), 1u);
  EXPECT_EQ(sys_->current_scope().entries[0].database, "avis");
}

TEST_F(AnalyzeTest, AnalyzeReportsRefusalWithoutExecuting) {
  // fn% misses continental's flnu column: the VITAL database has no
  // pertinent subquery, so execution would refuse — and analysis says so.
  auto report = sys_->Analyze(
      "USE continental VITAL delta\nSELECT fn%, day FROM flight%;");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->refused);
  EXPECT_EQ(report->refusal.code(), StatusCode::kRefused);
  EXPECT_FALSE(report->translated);
}

TEST_F(AnalyzeTest, AnalyzeScriptThreadsCatalogChanges) {
  auto reports = sys_->AnalyzeScript(
      "CREATE MULTIDATABASE airlines (continental, delta, united);\n"
      "USE airlines\nSELECT day FROM flight%;");
  ASSERT_TRUE(reports.ok()) << reports.status();
  ASSERT_EQ(reports->size(), 2u);
  EXPECT_EQ((*reports)[0].kind, "create multidatabase");
  EXPECT_TRUE((*reports)[1].translated)
      << (*reports)[1].diagnostics.RenderAll();
  EXPECT_FALSE((*reports)[1].diagnostics.has_errors());
}

TEST_F(AnalyzeTest, AnalyzeMultiTransaction) {
  auto report = sys_->Analyze(
      "BEGIN MULTITRANSACTION\n"
      "USE continental delta\n"
      "LET fitab.snu.sstat.clname BE\n"
      "  f838.seatnu.seatstatus.clientname\n"
      "  fnu747.snu.sstat.passname\n"
      "UPDATE fitab SET sstat = 'TAKEN', clname = 'wenders'\n"
      "WHERE snu = (SELECT MIN(snu) FROM fitab WHERE sstat = 'FREE');\n"
      "COMMIT\n"
      "  continental\n"
      "  delta\n"
      "END MULTITRANSACTION");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->kind, "multitransaction");
  EXPECT_TRUE(report->translated) << report->diagnostics.RenderAll();
  EXPECT_FALSE(report->diagnostics.has_errors())
      << report->diagnostics.RenderAll();
  EXPECT_NE(report->dol_text.find("PARBEGIN"), std::string::npos);
}

TEST_F(AnalyzeTest, AnalyzeAttachesAccessSummary) {
  auto report = sys_->Analyze(
      "BEGIN MULTITRANSACTION\n"
      "USE continental delta\n"
      "LET fitab.snu.sstat.clname BE\n"
      "  f838.seatnu.seatstatus.clientname\n"
      "  fnu747.snu.sstat.passname\n"
      "UPDATE fitab SET sstat = 'TAKEN', clname = 'wenders'\n"
      "WHERE snu = (SELECT MIN(snu) FROM fitab WHERE sstat = 'FREE');\n"
      "COMMIT\n"
      "  continental\n"
      "  delta\n"
      "END MULTITRANSACTION");
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->summary.has_value());
  // Both airline updates run NOCOMMIT inside the commit bracket, so the
  // predicted 2PC footprint spans both sites and DL305 says so.
  EXPECT_EQ(report->summary->two_pc_sites, 2);
  EXPECT_NE(report->diagnostics.Find(diag::kWideTwoPcBracket), nullptr)
      << report->diagnostics.RenderAll();
  EXPECT_FALSE(report->diagnostics.has_errors())
      << report->diagnostics.RenderAll();
}

TEST_F(AnalyzeTest, AnalyzeScriptFlagsCrossInputInversion) {
  auto mt = [](bool continental_first) {
    std::string continental =
        "USE continental\n"
        "UPDATE f838 SET seatstatus = 'TAKEN', clientname = 'w'\n"
        "WHERE seatnu = (SELECT MIN(seatnu) FROM f838 "
        "WHERE seatstatus = 'FREE');\n";
    std::string delta =
        "USE delta\n"
        "UPDATE fnu747 SET sstat = 'TAKEN', passname = 'w'\n"
        "WHERE snu = (SELECT MIN(snu) FROM fnu747 WHERE sstat = 'FREE');\n";
    return "BEGIN MULTITRANSACTION\n" +
           (continental_first ? continental + delta
                              : delta + continental) +
           "COMMIT\n  continental AND delta\nEND MULTITRANSACTION";
  };
  auto reports =
      sys_->AnalyzeScript(mt(true) + "\n" + mt(false) + "\n");
  ASSERT_TRUE(reports.ok()) << reports.status();
  ASSERT_EQ(reports->size(), 2u);
  ASSERT_TRUE((*reports)[0].summary.has_value());
  ASSERT_TRUE((*reports)[1].summary.has_value());
  // Opposite site orders across the two inputs: the second report
  // carries the cross-input DL301.
  EXPECT_EQ((*reports)[0].diagnostics.Find(diag::kLockOrderInversion),
            nullptr)
      << (*reports)[0].diagnostics.RenderAll();
  const Diagnostic* d =
      (*reports)[1].diagnostics.Find(diag::kLockOrderInversion);
  ASSERT_NE(d, nullptr) << (*reports)[1].diagnostics.RenderAll();
  EXPECT_EQ(d->severity, Severity::kWarning) << d->Render();
}

// ---------------------------------------------------------------------------
// Property: the verifier accepts every translator-emitted plan
// ---------------------------------------------------------------------------

TEST(VerifierPropertyTest, AcceptsTranslatorPlansOverRandomPaperScopes) {
  auto sys_or = BuildPaperFederation();
  ASSERT_TRUE(sys_or.ok()) << sys_or.status();
  auto sys = std::move(*sys_or);
  // Bodies whose identifiers resolve in every airline database.
  const std::vector<std::string> bodies = {
      "SELECT day, rate% FROM flight% WHERE sour% = 'Houston'",
      "SELECT day FROM flight%",
      "UPDATE flight% SET rate% = rate% * 1.01 WHERE day = 'MO'",
      "DELETE FROM flight% WHERE rate% < 0",
  };
  const std::vector<std::string> airlines = {"continental", "delta",
                                             "united"};
  Rng rng(0xA11A11);
  for (int iter = 0; iter < 80; ++iter) {
    std::string use = "USE";
    int members = 0;
    for (const auto& db : airlines) {
      if (rng.NextBelow(2) == 0) continue;
      use += " " + db;
      if (rng.NextBelow(2) == 0) use += " VITAL";
      ++members;
    }
    if (members == 0) use += " delta";
    std::string text =
        use + "\n" + bodies[rng.NextBelow(bodies.size())] + ";";
    auto report = sys->Analyze(text);
    ASSERT_TRUE(report.ok()) << text << "\n" << report.status();
    EXPECT_TRUE(report->error.ok())
        << text << "\n" << report->error.ToString();
    ASSERT_TRUE(report->translated) << text << "\n"
                                    << report->diagnostics.RenderAll();
    for (const auto& d : report->diagnostics.items()) {
      // DL3xx conflict notes are legitimate on translator plans; the
      // property is that the *verifier* (DL2xx) accepts them.
      EXPECT_NE(d.code.substr(0, 3), "DL2")
          << text << "\nverifier rejected a translator plan:\n"
          << d.Render() << "\n"
          << report->dol_text;
    }
    EXPECT_FALSE(report->diagnostics.has_errors())
        << text << "\n" << report->diagnostics.RenderAll();
  }
}

TEST(VerifierPropertyTest, AcceptsTranslatorPlansOverMixedCommitModes) {
  // Half the synthetic services are autocommit-only, so random vital
  // sets exercise two-phase, compensable, and last-resource plan
  // shapes; scopes the checker refuses (MS111) are accepted as refusals.
  SyntheticFederationOptions options;
  options.n_databases = 4;
  options.rows_per_table = 8;
  options.autocommit_fraction = 0.5;
  auto sys_or = BuildSyntheticFederation(options);
  ASSERT_TRUE(sys_or.ok()) << sys_or.status();
  auto sys = std::move(*sys_or);
  Rng rng(0xD01D01);
  for (int iter = 0; iter < 80; ++iter) {
    std::vector<std::string> chosen;
    std::string use = "USE";
    for (int i = 0; i < options.n_databases; ++i) {
      if (rng.NextBelow(2) == 0) continue;
      std::string db = "db" + std::to_string(i);
      use += " " + db;
      if (rng.NextBelow(2) == 0) use += " VITAL";
      chosen.push_back(db);
    }
    if (chosen.empty()) {
      use += " db0";
      chosen.push_back("db0");
    }
    std::string text =
        use + "\nUPDATE flight% SET rate = rate * 1.01 WHERE fno >= 0";
    if (rng.NextBelow(3) == 0) {
      const std::string& db = chosen[rng.NextBelow(chosen.size())];
      std::string table = "flight" + db.substr(2);
      text += "\nCOMP " + db + " UPDATE " + table +
              " SET rate = rate / 1.01 WHERE fno >= 0";
    }
    text += ";";
    auto report = sys->Analyze(text);
    ASSERT_TRUE(report.ok()) << text << "\n" << report.status();
    EXPECT_TRUE(report->error.ok())
        << text << "\n" << report->error.ToString();
    if (report->refused) {
      // Unenforceable vital set: a correct refusal, not a plan.
      EXPECT_EQ(report->refusal.code(), StatusCode::kRefused) << text;
      continue;
    }
    ASSERT_TRUE(report->translated) << text << "\n"
                                    << report->diagnostics.RenderAll();
    for (const auto& d : report->diagnostics.items()) {
      // DL3xx conflict notes are legitimate on translator plans; the
      // property is that the *verifier* (DL2xx) accepts them.
      EXPECT_NE(d.code.substr(0, 3), "DL2")
          << text << "\nverifier rejected a translator plan:\n"
          << d.Render() << "\n"
          << report->dol_text;
    }
    EXPECT_FALSE(report->diagnostics.has_errors())
        << text << "\n" << report->diagnostics.RenderAll();
  }
}

}  // namespace
}  // namespace msql::analysis
