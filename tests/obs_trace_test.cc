// Observability layer (DESIGN.md §9): span tracer, metrics registry,
// exporter determinism (golden traces), and the invariants tying trace
// annotations to the DOL engine's retry/re-probe counters.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/fixtures.h"
#include "core/mdbs_system.h"
#include "dol/engine.h"
#include "netsim/fault_injector.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace msql::core {
namespace {

using dol::RetryPolicy;
using netsim::FaultAction;
using netsim::FaultPlan;
using netsim::FaultRule;
using netsim::LamRequestType;
using obs::Span;

constexpr const char* kMultipleQuery =
    "USE avis national\n"
    "LET car.type.status BE cars.cartype.carst vehicle.vty.vstat\n"
    "SELECT %code, type, ~rate\n"
    "FROM car\n"
    "WHERE status = 'available'";

constexpr const char* kFareRaise =
    "USE continental VITAL delta united VITAL\n"
    "UPDATE flight% SET rate% = rate% * 1.1\n"
    "WHERE sour% = 'Houston' AND dest% = 'San Antonio'";

std::unique_ptr<MultidatabaseSystem> TracedFederation() {
  auto sys = BuildPaperFederation();
  EXPECT_TRUE(sys.ok()) << sys.status();
  (*sys)->environment().tracer().set_enabled(true);
  (*sys)->environment().metrics().set_enabled(true);
  return std::move(*sys);
}

int CountSpans(MultidatabaseSystem& sys, const std::string& name) {
  int n = 0;
  for (const Span& span : sys.environment().tracer().spans()) {
    if (span.name == name) ++n;
  }
  return n;
}

int CountCategory(MultidatabaseSystem& sys, const std::string& cat) {
  int n = 0;
  for (const Span& span : sys.environment().tracer().spans()) {
    if (span.category == cat) ++n;
  }
  return n;
}

// The acceptance bar of the tracing layer: one traced execution covers
// every pipeline stage — frontend phases, the DOL run, every task,
// every RPC (attempt-annotated), every message.
TEST(ObsTraceTest, PipelinePhasesTasksAndRpcsAreAllSpanned) {
  auto sys = TracedFederation();
  auto report = sys->Execute(kMultipleQuery);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->outcome, GlobalOutcome::kSuccess);

  for (const char* phase :
       {"msql.execute", "msql.parse", "msql.check", "msql.expand",
        "msql.translate", "msql.verify", "dol.run"}) {
    EXPECT_EQ(CountSpans(*sys, phase), 1) << phase;
  }
  // One task span per task the run reports, lying inside the dol.run
  // interval and carrying its final state.
  EXPECT_EQ(CountCategory(*sys, "dol.task"),
            static_cast<int>(report->run.tasks.size()));
  for (const auto& [name, outcome] : report->run.tasks) {
    EXPECT_EQ(CountSpans(*sys, "task:" + name), 1) << name;
  }
  // Channel lifecycle spans for both rental databases.
  EXPECT_GE(CountCategory(*sys, "channel"), 2);
  // Every RPC span carries an attempt number; a clean run is all 1s.
  int rpc_spans = 0;
  for (const Span& span : sys->environment().tracer().spans()) {
    if (span.category != "rpc") continue;
    ++rpc_spans;
    EXPECT_EQ(span.Find("attempt"), "1") << span.name;
  }
  EXPECT_GT(rpc_spans, 0);
  // One net.send span per accounted message.
  EXPECT_EQ(CountSpans(*sys, "net.send"),
            static_cast<int>(report->run.messages));
  // The report carries the per-input text tree.
  EXPECT_NE(report->trace_text.find("msql.execute"), std::string::npos);
  EXPECT_NE(report->trace_text.find("dol.run"), std::string::npos);
}

// Golden trace: under a fixed seed, two fresh federations executing the
// same input emit byte-identical Chrome trace JSON (host time excluded
// by default — it is the only nondeterministic field).
TEST(ObsTraceTest, ChromeTraceIsByteIdenticalUnderFixedSeed) {
  std::string first, second;
  for (std::string* out : {&first, &second}) {
    auto sys = TracedFederation();
    auto report = sys->Execute(kFareRaise);
    ASSERT_TRUE(report.ok()) << report.status();
    ASSERT_EQ(report->outcome, GlobalOutcome::kSuccess);
    *out = obs::ExportChromeTrace(sys->environment().tracer());
  }
  EXPECT_GT(first.size(), 1000u);
  EXPECT_EQ(first, second);
  // Structural smoke check of the trace-event format.
  EXPECT_EQ(first.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(first.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(first.find("\"thread_name\""), std::string::npos);
  EXPECT_EQ(first.find("host_us"), std::string::npos);
}

// Chaos spot check: the rpc spans' attempt annotations are the ground
// truth the retry counter summarizes — retries == spans re-sent
// (attempt > 1), reprobes == "reprobe" spans.
TEST(ObsTraceTest, RetryAndReprobeCountersMatchTheirSpans) {
  auto sys = TracedFederation();
  sys->set_retry_policy(RetryPolicy::WithAttempts(3));
  FaultPlan plan;
  plan.rules.push_back(FaultRule::Transient("united_svc",
                                            LamRequestType::kExecute,
                                            /*k=*/2));
  plan.rules.push_back(FaultRule::NthCall("continental_svc",
                                          LamRequestType::kCommit, 1,
                                          FaultAction::kLostResponse));
  sys->environment().fault_injector().SetPlan(plan);
  auto report = sys->Execute(kFareRaise);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kSuccess);
  ASSERT_GE(report->retries_performed, 2);
  ASSERT_GE(report->reprobes_performed, 1);

  int resent = 0;
  int faulted = 0;
  for (const Span& span : sys->environment().tracer().spans()) {
    if (span.category != "rpc") continue;
    if (!span.Find("attempt").empty() && span.Find("attempt") != "1") {
      ++resent;
    }
    if (!span.Find("fault").empty()) ++faulted;
  }
  EXPECT_EQ(resent, report->retries_performed);
  EXPECT_EQ(CountSpans(*sys, "reprobe"), report->reprobes_performed);
  // Both injected faults are visible on their rpc spans.
  EXPECT_GE(faulted, 3);  // two rejects + one lost response
  // The metrics registry agrees with the engine's counters.
  const auto& metrics = sys->environment().metrics();
  EXPECT_EQ(metrics.Get("dol.retries"), report->retries_performed);
  EXPECT_EQ(metrics.Get("dol.reprobes"), report->reprobes_performed);
}

// Consecutive inputs of one session lay out sequentially on the
// simulated timeline instead of piling up at t=0.
TEST(ObsTraceTest, ConsecutiveInputsAdvanceTheSimOffset) {
  auto sys = TracedFederation();
  auto first = sys->Execute(kMultipleQuery);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_GT(first->run.makespan_micros, 0);
  auto second = sys->Execute(kMultipleQuery);
  ASSERT_TRUE(second.ok()) << second.status();

  int64_t second_run_start = -1;
  int runs = 0;
  for (const Span& span : sys->environment().tracer().spans()) {
    if (span.name != "dol.run") continue;
    if (++runs == 2) second_run_start = span.sim_start_micros;
  }
  ASSERT_EQ(runs, 2);
  EXPECT_EQ(second_run_start, first->run.makespan_micros);
  // Each report's text tree covers its own input only.
  EXPECT_EQ(first->trace_text.find("msql.execute"),
            first->trace_text.rfind("msql.execute"));
}

// Off by default: no spans, no metrics, no trace text, no offsets.
TEST(ObsTraceTest, DisabledTracerIsANullSink) {
  auto sys_or = BuildPaperFederation();
  ASSERT_TRUE(sys_or.ok()) << sys_or.status();
  auto sys = std::move(*sys_or);
  auto report = sys->Execute(kMultipleQuery);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kSuccess);
  EXPECT_TRUE(sys->environment().tracer().spans().empty());
  EXPECT_TRUE(report->trace_text.empty());
  EXPECT_TRUE(sys->environment().metrics().Dump().empty());
}

// Per-run traffic accounting feeds the metrics: with nothing else on
// the environment, the global counters equal the run's own.
TEST(ObsTraceTest, MetricsMirrorTheRunAccounting) {
  auto sys = TracedFederation();
  auto report = sys->Execute(kMultipleQuery);
  ASSERT_TRUE(report.ok()) << report.status();
  const auto& metrics = sys->environment().metrics();
  EXPECT_EQ(metrics.Get("dol.runs"), 1);
  EXPECT_EQ(metrics.Get("net.messages"), report->run.messages);
  EXPECT_EQ(metrics.Get("net.bytes"), report->run.bytes);
  EXPECT_EQ(metrics.Get("dol.tasks"),
            static_cast<int64_t>(report->run.tasks.size()));
  const obs::Histogram* rpc = metrics.GetHistogram("rpc.sim_micros");
  ASSERT_NE(rpc, nullptr);
  EXPECT_GT(rpc->count(), 0);
  EXPECT_GT(rpc->Quantile(0.5), 0);
  // The dump is deterministic and names every family we rely on.
  std::string dump = metrics.Dump();
  for (const char* key : {"dol.runs", "net.messages", "rpc.calls",
                          "rpc.sim_micros", "lam.service_micros"}) {
    EXPECT_NE(dump.find(key), std::string::npos) << key;
  }
}

// The parent stack works across module boundaries: every task span
// descends from the run (directly or via a dol.parbegin fork), and
// every rpc span nests under some other span, never as a root.
TEST(ObsTraceTest, SpansNestTasksUnderRunAndRpcsUnderTasks) {
  auto sys = TracedFederation();
  auto report = sys->Execute(kMultipleQuery);
  ASSERT_TRUE(report.ok()) << report.status();
  const auto& tracer = sys->environment().tracer();
  uint64_t run_id = 0;
  for (const Span& span : tracer.spans()) {
    if (span.name == "dol.run") run_id = span.id;
  }
  ASSERT_NE(run_id, 0u);
  auto descends_from_run = [&](const Span& span) {
    for (uint64_t id = span.parent; id != 0;) {
      if (id == run_id) return true;
      const Span* parent = tracer.FindSpan(id);
      if (parent == nullptr) return false;
      id = parent->parent;
    }
    return false;
  };
  for (const Span& span : tracer.spans()) {
    if (span.category == "dol.task" || span.category == "rpc") {
      EXPECT_TRUE(descends_from_run(span)) << span.name;
    }
    if (span.category == "rpc") {
      EXPECT_NE(span.parent, 0u) << span.name;
    }
  }
}

}  // namespace
}  // namespace msql::core
