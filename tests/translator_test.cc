// MSQL → DOL plan generation: vital-set classification, refusal rules,
// and the §4.3 program shape (experiment E7).
#include <gtest/gtest.h>

#include "dol/parser.h"
#include "mdbs/auxiliary_directory.h"
#include "mdbs/global_data_dictionary.h"
#include "msql/expander.h"
#include "msql/parser.h"
#include "translator/translator.h"

namespace msql::translator {
namespace {

using lang::ExpansionResult;
using lang::MsqlParser;
using relational::TableSchema;
using relational::Type;

class TranslatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AddAirline("continental", "flights", /*two_phase=*/true);
    AddAirline("delta", "flight", /*two_phase=*/true);
    AddAirline("united", "flight", /*two_phase=*/true);
  }

  void AddAirline(const std::string& db, const std::string& table,
                  bool two_phase) {
    mdbs::ServiceDescriptor svc;
    svc.name = db + "_svc";
    svc.site = "site_" + db;
    svc.autocommit_only = !two_phase;
    ad_.Incorporate(svc);
    ASSERT_TRUE(gdd_.RegisterDatabase(db, svc.name).ok());
    ASSERT_TRUE(gdd_.PutTable(db, *TableSchema::Create(
                                      table,
                                      {{"fno", Type::kInteger, 0},
                                       {"source", Type::kText, 0},
                                       {"dest", Type::kText, 0},
                                       {"rate", Type::kReal, 0}}))
                    .ok());
  }

  /// Reincorporates a service as autocommit-only.
  void MakeAutocommitOnly(const std::string& db) {
    mdbs::ServiceDescriptor svc;
    svc.name = db + "_svc";
    svc.site = "site_" + db;
    svc.autocommit_only = true;
    ad_.Incorporate(svc);
  }

  Result<ExpansionResult> Expand(std::string_view msql) {
    auto input = MsqlParser::ParseOne(msql);
    if (!input.ok()) return input.status();
    lang::Expander expander(&gdd_);
    return expander.Expand(*input->query);
  }

  Result<Plan> PlanFor(std::string_view msql) {
    MSQL_ASSIGN_OR_RETURN(auto expansion, Expand(msql));
    Translator translator(&ad_, &gdd_);
    return translator.TranslateQuery(expansion);
  }

  mdbs::AuxiliaryDirectory ad_;
  mdbs::GlobalDataDictionary gdd_;
};

TEST_F(TranslatorTest, Section43ProgramShape) {
  auto plan = PlanFor(
      "USE continental VITAL delta united VITAL\n"
      "UPDATE flight% SET rate = rate * 1.1 WHERE source = 'Houston'");
  ASSERT_TRUE(plan.ok()) << plan.status();
  std::string dol = plan->program.ToDol();
  // The shape of the paper's listing: three OPENs, NOCOMMIT on the two
  // VITAL tasks only, a commit/abort decision over (t1=P) AND (t3=P).
  EXPECT_NE(dol.find("OPEN continental AT continental_svc AS continental"),
            std::string::npos)
      << dol;
  EXPECT_NE(dol.find("TASK t_continental NOCOMMIT"), std::string::npos);
  EXPECT_NE(dol.find("TASK t_united NOCOMMIT"), std::string::npos);
  // Delta is NON VITAL: plain autocommit task.
  EXPECT_NE(dol.find("TASK t_delta FOR delta"), std::string::npos);
  EXPECT_EQ(dol.find("TASK t_delta NOCOMMIT"), std::string::npos);
  EXPECT_NE(dol.find("((t_continental=P) AND (t_united=P))"),
            std::string::npos)
      << dol;
  EXPECT_NE(dol.find("COMMIT t_continental, t_united;"), std::string::npos);
  EXPECT_NE(dol.find("DOLSTATUS = 1;"), std::string::npos);
  EXPECT_NE(dol.find("CLOSE continental delta united;"),
            std::string::npos);

  // Task metadata matches.
  ASSERT_EQ(plan->tasks.size(), 3u);
  EXPECT_EQ(plan->FindTask("t_continental")->mode, TaskMode::kTwoPhase);
  EXPECT_EQ(plan->FindTask("t_delta")->mode, TaskMode::kAutocommit);
  EXPECT_FALSE(plan->retrieval);
}

TEST_F(TranslatorTest, GeneratedProgramParsesBack) {
  auto plan = PlanFor(
      "USE continental VITAL delta united VITAL\n"
      "UPDATE flight% SET rate = rate * 1.1 WHERE source = 'Houston'");
  ASSERT_TRUE(plan.ok());
  auto reparsed = dol::ParseDol(plan->program.ToDol());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->ToDol(), plan->program.ToDol());
}

TEST_F(TranslatorTest, RetrievalPlanIsAllAutocommit) {
  auto plan = PlanFor("USE continental delta SELECT rate FROM flight%");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->retrieval);
  std::string dol = plan->program.ToDol();
  EXPECT_EQ(dol.find("NOCOMMIT"), std::string::npos);
  EXPECT_NE(dol.find("PARBEGIN"), std::string::npos);
  // No vital retrievals → unconditional success.
  EXPECT_NE(dol.find("DOLSTATUS = 0;"), std::string::npos);
  EXPECT_EQ(dol.find("DOLSTATUS = 1;"), std::string::npos);
}

TEST_F(TranslatorTest, VitalRetrievalGetsDecision) {
  auto plan = PlanFor(
      "USE continental VITAL delta SELECT rate FROM flight%");
  ASSERT_TRUE(plan.ok());
  std::string dol = plan->program.ToDol();
  EXPECT_NE(dol.find("IF (t_continental=C) THEN"), std::string::npos)
      << dol;
  EXPECT_NE(dol.find("DOLSTATUS = 1;"), std::string::npos);
}

TEST_F(TranslatorTest, AllNonVitalDmlAlwaysSucceeds) {
  auto plan = PlanFor(
      "USE continental delta UPDATE flight% SET rate = 0");
  ASSERT_TRUE(plan.ok());
  std::string dol = plan->program.ToDol();
  // No decision IF at all — the query cannot fail globally (§3.2.1).
  EXPECT_EQ(dol.find("IF"), std::string::npos);
  EXPECT_NE(dol.find("DOLSTATUS = 0;"), std::string::npos);
}

TEST_F(TranslatorTest, TwoNo2pcVitalsWithoutCompRefused) {
  MakeAutocommitOnly("continental");
  MakeAutocommitOnly("united");
  auto plan = PlanFor(
      "USE continental VITAL delta united VITAL\n"
      "UPDATE flight% SET rate = rate * 1.1");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kRefused);
}

TEST_F(TranslatorTest, SingleNo2pcVitalBecomesLastResource) {
  MakeAutocommitOnly("continental");
  auto plan = PlanFor(
      "USE continental VITAL delta united VITAL\n"
      "UPDATE flight% SET rate = rate * 1.1");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->FindTask("t_continental")->mode,
            TaskMode::kLastResource);
  std::string dol = plan->program.ToDol();
  // The last-resource task runs in a guarded second wave.
  EXPECT_NE(dol.find("IF (t_united=P) THEN"), std::string::npos) << dol;
  // And the final decision requires it committed.
  EXPECT_NE(dol.find("(t_continental=C)"), std::string::npos);
}

TEST_F(TranslatorTest, CompClauseMakesNo2pcVitalCompensable) {
  MakeAutocommitOnly("continental");
  auto plan = PlanFor(
      "USE continental VITAL delta united VITAL\n"
      "UPDATE flight% SET rate = rate * 1.1\n"
      "COMP continental UPDATE flights SET rate = rate / 1.1");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->FindTask("t_continental")->mode,
            TaskMode::kCompensable);
  std::string dol = plan->program.ToDol();
  EXPECT_NE(dol.find("COMPENSATION { UPDATE flights SET rate = rate / 1.1 }"),
            std::string::npos)
      << dol;
  // Failure branch compensates continental if it committed.
  EXPECT_NE(dol.find("IF (t_continental=C) THEN"), std::string::npos);
  EXPECT_NE(dol.find("COMPENSATE t_continental;"), std::string::npos);
}

TEST_F(TranslatorTest, CommitVerificationGuardsIncorrectState) {
  auto plan = PlanFor(
      "USE continental VITAL united VITAL\n"
      "UPDATE flight% SET rate = rate * 1.1");
  ASSERT_TRUE(plan.ok());
  std::string dol = plan->program.ToDol();
  EXPECT_NE(dol.find("DOLSTATUS = 2;"), std::string::npos) << dol;
}

TEST_F(TranslatorTest, DdlVerbModesDisableTwoPhasePerStatement) {
  // The AD records that CREATE auto-commits on continental's service:
  // a VITAL CREATE there cannot be prepared.
  mdbs::ServiceDescriptor svc = **ad_.GetService("continental_svc");
  svc.ddl_modes.create_autocommits = true;
  ad_.Incorporate(svc);
  auto plan = PlanFor(
      "USE continental VITAL CREATE TABLE extra (x INTEGER)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->FindTask("t_continental")->mode,
            TaskMode::kLastResource);
  // But an UPDATE on the same service still runs two-phase.
  auto update_plan = PlanFor(
      "USE continental VITAL UPDATE flights SET rate = 1.0");
  ASSERT_TRUE(update_plan.ok());
  EXPECT_EQ(update_plan->FindTask("t_continental")->mode,
            TaskMode::kTwoPhase);
}

TEST_F(TranslatorTest, MultiTransactionPlanShape) {
  auto mt_input = MsqlParser::ParseOne(
      "BEGIN MULTITRANSACTION\n"
      "USE continental delta UPDATE flight% SET rate = 1.0;\n"
      "COMMIT continental delta END MULTITRANSACTION");
  ASSERT_TRUE(mt_input.ok()) << mt_input.status();
  lang::Expander expander(&gdd_);
  std::vector<ExpansionResult> expansions;
  for (const auto& q : mt_input->multitransaction->queries) {
    auto e = expander.Expand(q);
    ASSERT_TRUE(e.ok()) << e.status();
    expansions.push_back(std::move(*e));
  }
  Translator translator(&ad_, &gdd_);
  auto plan = translator.TranslateMultiTransaction(
      expansions, mt_input->multitransaction->acceptable_states);
  ASSERT_TRUE(plan.ok()) << plan.status();
  std::string dol = plan->program.ToDol();
  // All members run NOCOMMIT (both services have 2PC).
  EXPECT_NE(dol.find("TASK t_continental NOCOMMIT"), std::string::npos);
  EXPECT_NE(dol.find("TASK t_delta NOCOMMIT"), std::string::npos);
  // State 1 = continental: reachable when prepared or committed.
  EXPECT_NE(dol.find("((t_continental=P) OR (t_continental=C))"),
            std::string::npos)
      << dol;
  // The generated plan still parses as DOL.
  auto reparsed = dol::ParseDol(dol);
  EXPECT_TRUE(reparsed.ok()) << reparsed.status();
}

TEST_F(TranslatorTest, MultiTransactionNo2pcWithoutCompRefused) {
  MakeAutocommitOnly("delta");
  auto mt_input = MsqlParser::ParseOne(
      "BEGIN MULTITRANSACTION\n"
      "USE continental delta UPDATE flight% SET rate = 1.0;\n"
      "COMMIT continental END MULTITRANSACTION");
  ASSERT_TRUE(mt_input.ok());
  lang::Expander expander(&gdd_);
  auto e = expander.Expand(mt_input->multitransaction->queries[0]);
  ASSERT_TRUE(e.ok());
  std::vector<ExpansionResult> expansions;
  expansions.push_back(std::move(*e));
  Translator translator(&ad_, &gdd_);
  auto plan = translator.TranslateMultiTransaction(
      expansions, mt_input->multitransaction->acceptable_states);
  EXPECT_EQ(plan.status().code(), StatusCode::kRefused);
}

TEST_F(TranslatorTest, MultiTransactionDuplicateNamesRejected) {
  auto mt_input = MsqlParser::ParseOne(
      "BEGIN MULTITRANSACTION\n"
      "USE continental UPDATE flights SET rate = 1.0;\n"
      "USE continental UPDATE flights SET rate = 2.0;\n"
      "COMMIT continental END MULTITRANSACTION");
  ASSERT_TRUE(mt_input.ok());
  lang::Expander expander(&gdd_);
  std::vector<ExpansionResult> expansions;
  for (const auto& q : mt_input->multitransaction->queries) {
    auto e = expander.Expand(q);
    ASSERT_TRUE(e.ok());
    expansions.push_back(std::move(*e));
  }
  Translator translator(&ad_, &gdd_);
  auto plan = translator.TranslateMultiTransaction(
      expansions, mt_input->multitransaction->acceptable_states);
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TranslatorTest, UnknownStateNameRejected) {
  auto mt_input = MsqlParser::ParseOne(
      "BEGIN MULTITRANSACTION\n"
      "USE continental UPDATE flights SET rate = 1.0;\n"
      "COMMIT ghost END MULTITRANSACTION");
  ASSERT_TRUE(mt_input.ok());
  lang::Expander expander(&gdd_);
  std::vector<ExpansionResult> expansions;
  auto e = expander.Expand(mt_input->multitransaction->queries[0]);
  ASSERT_TRUE(e.ok());
  expansions.push_back(std::move(*e));
  Translator translator(&ad_, &gdd_);
  auto plan = translator.TranslateMultiTransaction(
      expansions, mt_input->multitransaction->acceptable_states);
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace msql::translator
