// Invariants of the shipped federations (the fixtures every example,
// test and bench builds on).
#include <gtest/gtest.h>

#include <memory>

#include "core/fixtures.h"
#include "core/mdbs_system.h"

namespace msql::core {
namespace {

TEST(PaperFederationTest, AllFiveDatabasesImported) {
  auto sys = std::move(BuildPaperFederation()).value();
  EXPECT_EQ(sys->gdd().DatabaseNames(),
            (std::vector<std::string>{"avis", "continental", "delta",
                                      "national", "united"}));
  // The Appendix table set, per database.
  EXPECT_TRUE(sys->gdd().HasTable("continental", "flights"));
  EXPECT_TRUE(sys->gdd().HasTable("continental", "f838"));
  EXPECT_TRUE(sys->gdd().HasTable("delta", "flight"));
  EXPECT_TRUE(sys->gdd().HasTable("delta", "fnu747"));
  EXPECT_TRUE(sys->gdd().HasTable("united", "flight"));
  EXPECT_TRUE(sys->gdd().HasTable("united", "fn727"));
  EXPECT_TRUE(sys->gdd().HasTable("avis", "cars"));
  EXPECT_TRUE(sys->gdd().HasTable("national", "vehicle"));
}

TEST(PaperFederationTest, CapabilityHeterogeneityAsDocumented) {
  auto sys = std::move(BuildPaperFederation()).value();
  auto profile = [&](const char* db) {
    return (*sys->GetEngine(PaperServiceOf(db)))->profile();
  };
  EXPECT_EQ(profile("continental").dbms_family, "oracle");
  EXPECT_TRUE(profile("continental").ddl_commits_prior_work);
  EXPECT_EQ(profile("delta").dbms_family, "ingres");
  EXPECT_TRUE(profile("delta").ddl_rollbackable);
  EXPECT_TRUE(profile("united").supports_two_phase_commit);
  // AD declarations match the engines.
  auto svc = sys->auxiliary_directory().GetService("continental_svc");
  ASSERT_TRUE(svc.ok());
  EXPECT_TRUE((*svc)->SupportsTwoPhaseCommit());
}

TEST(PaperFederationTest, No2pcVariantDowngradesContinental) {
  PaperFederationOptions options;
  options.continental_autocommit_only = true;
  auto sys = std::move(BuildPaperFederation(options)).value();
  EXPECT_FALSE((*sys->GetEngine(PaperServiceOf("continental")))
                   ->profile()
                   .supports_two_phase_commit);
  auto svc = sys->auxiliary_directory().GetService("continental_svc");
  ASSERT_TRUE(svc.ok());
  EXPECT_FALSE((*svc)->SupportsTwoPhaseCommit());
  // The other airlines are unaffected.
  EXPECT_TRUE((*sys->GetEngine(PaperServiceOf("united")))
                  ->profile()
                  .supports_two_phase_commit);
}

TEST(PaperFederationTest, EveryAirlineHasTheUpdateTarget) {
  // The §3.2 example needs Houston → San Antonio flights everywhere.
  auto sys = std::move(BuildPaperFederation()).value();
  struct Probe {
    const char* db;
    const char* sql;
  };
  const Probe probes[] = {
      {"continental",
       "SELECT COUNT(*) FROM flights WHERE source = 'Houston' AND "
       "destination = 'San Antonio'"},
      {"delta",
       "SELECT COUNT(*) FROM flight WHERE source = 'Houston' AND "
       "dest = 'San Antonio'"},
      {"united",
       "SELECT COUNT(*) FROM flight WHERE sour = 'Houston' AND "
       "dest = 'San Antonio'"},
  };
  for (const auto& probe : probes) {
    auto engine = *sys->GetEngine(PaperServiceOf(probe.db));
    auto s = *engine->OpenSession(probe.db);
    auto rs = engine->Execute(s, probe.sql);
    ASSERT_TRUE(rs.ok()) << probe.db;
    EXPECT_GE(rs->rows[0][0].AsInteger(), 2) << probe.db;
  }
}

TEST(PaperFederationTest, ReservationInventoryExists) {
  auto sys = std::move(BuildPaperFederation()).value();
  auto count = [&](const char* db, const char* sql) {
    auto engine = *sys->GetEngine(PaperServiceOf(db));
    auto s = *engine->OpenSession(db);
    auto rs = engine->Execute(s, sql);
    EXPECT_TRUE(rs.ok());
    return rs->rows[0][0].AsInteger();
  };
  EXPECT_GT(count("continental",
                  "SELECT COUNT(*) FROM f838 WHERE seatstatus = 'FREE'"),
            0);
  EXPECT_GT(count("delta",
                  "SELECT COUNT(*) FROM fnu747 WHERE sstat = 'FREE'"),
            0);
  EXPECT_GT(count("avis",
                  "SELECT COUNT(*) FROM cars WHERE carst = 'available'"),
            0);
  EXPECT_GT(count("national",
                  "SELECT COUNT(*) FROM vehicle WHERE vstat = "
                  "'available'"),
            0);
}

TEST(PaperFederationTest, DeterministicAcrossBuildsForSameSeed) {
  auto a = std::move(BuildPaperFederation()).value();
  auto b = std::move(BuildPaperFederation()).value();
  auto dump = [](MultidatabaseSystem* sys) {
    auto engine = *sys->GetEngine(PaperServiceOf("continental"));
    auto s = *engine->OpenSession("continental");
    auto rs = engine->Execute(
        s, "SELECT flnu, source, destination, rate FROM flights "
           "ORDER BY flnu");
    EXPECT_TRUE(rs.ok());
    return rs->ToString();
  };
  EXPECT_EQ(dump(a.get()), dump(b.get()));
  PaperFederationOptions other_seed;
  other_seed.seed = 99;
  auto c = std::move(BuildPaperFederation(other_seed)).value();
  EXPECT_NE(dump(a.get()), dump(c.get()));
}

TEST(PaperFederationTest, SkippingBootstrapLeavesCatalogEmpty) {
  PaperFederationOptions options;
  options.incorporate_and_import = false;
  auto sys = std::move(BuildPaperFederation(options)).value();
  EXPECT_EQ(sys->auxiliary_directory().size(), 0u);
  EXPECT_TRUE(sys->gdd().DatabaseNames().empty());
  // Queries are impossible until the catalog is built.
  auto report = sys->Execute("USE avis SELECT code FROM cars");
  EXPECT_FALSE(report.ok());
}

TEST(SyntheticFederationTest, ShapeMatchesOptions) {
  SyntheticFederationOptions options;
  options.n_databases = 5;
  options.rows_per_table = 12;
  options.autocommit_fraction = 0.4;  // stride 2 → db0, db2, db4
  auto sys = std::move(BuildSyntheticFederation(options)).value();
  EXPECT_EQ(sys->gdd().DatabaseNames().size(), 5u);
  for (int i = 0; i < 5; ++i) {
    std::string db = "db" + std::to_string(i);
    EXPECT_TRUE(sys->gdd().HasTable(db, "flight" + std::to_string(i)));
    auto engine = *sys->GetEngine(db + "_svc");
    bool expect_autocommit = (i % 2) == 0;
    EXPECT_EQ(engine->profile().supports_two_phase_commit,
              !expect_autocommit)
        << db;
    auto s = *engine->OpenSession(db);
    auto rs = engine->Execute(
        s, "SELECT COUNT(*) FROM flight" + std::to_string(i));
    ASSERT_TRUE(rs.ok());
    EXPECT_EQ(rs->rows[0][0].AsInteger(), 12);
  }
}

TEST(SyntheticFederationTest, WildcardSpansTheWholeFederation) {
  SyntheticFederationOptions options;
  options.n_databases = 3;
  auto sys = std::move(BuildSyntheticFederation(options)).value();
  auto report = sys->Execute(
      "USE db0 db1 db2 SELECT fno FROM flight% WHERE source = 'Houston'");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kSuccess);
  EXPECT_EQ(report->multitable.size(), 3u);
}

}  // namespace
}  // namespace msql::core
