// Federation monitor: window accounting, SLO budgets, deterministic
// alerting, EWMA drift, dashboard determinism, and the adaptive
// admission feedback loop under chaos (DESIGN.md §16).
#include "obs/monitor.h"

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/fixtures.h"
#include "core/mdbs_system.h"
#include "core/session_scheduler.h"
#include "gtest/gtest.h"
#include "netsim/fault_injector.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/query_log.h"

namespace msql::obs {
namespace {

MonitorConfig SmallConfig() {
  MonitorConfig config;
  config.window_micros = 100;
  config.budget_horizon_windows = 10;
  config.slo_budget_fraction = 0.2;  // allowed = 2
  config.recover_after_clean_windows = 2;
  return config;
}

Monitor::SessionSample Sample(int64_t finish, int64_t makespan, bool ok) {
  Monitor::SessionSample s;
  s.finish_micros = finish;
  s.makespan_micros = makespan;
  s.ok = ok;
  return s;
}

// -- Window accounting ------------------------------------------------------

TEST(MonitorWindows, EmptyWindowsSkipLatencyAndErrorRules) {
  MonitorConfig config = SmallConfig();
  config.slo_p99_latency_micros = 50;
  config.slo_max_error_rate = 0.0;
  config.slo_sites_reachable = false;
  Monitor monitor(config, nullptr, nullptr);

  monitor.AdvanceTo(1000);  // ten empty windows
  EXPECT_EQ(monitor.windows_closed(), 10);
  EXPECT_TRUE(monitor.alerts().empty());
  for (const SloStatus& slo : monitor.SloStatuses()) {
    EXPECT_EQ(slo.state, "ok") << slo.name;
    EXPECT_EQ(slo.violations_in_horizon, 0) << slo.name;
  }
  EXPECT_FALSE(monitor.shedding());
}

TEST(MonitorWindows, SessionsLandInTheRightWindow) {
  Monitor monitor(SmallConfig(), nullptr, nullptr);
  monitor.RecordSession(Sample(10, 40, true));
  monitor.RecordSession(Sample(150, 60, false));  // closes window 1
  monitor.AdvanceTo(200);                          // closes window 2
  ASSERT_EQ(monitor.windows().size(), 2u);
  const MonitorWindow& w1 = monitor.windows()[0];
  EXPECT_EQ(w1.seq, 1);
  EXPECT_EQ(w1.sessions_finished, 1);
  EXPECT_EQ(w1.sessions_ok, 1);
  EXPECT_EQ(w1.error_rate, 0.0);
  const MonitorWindow& w2 = monitor.windows()[1];
  EXPECT_EQ(w2.sessions_finished, 1);
  EXPECT_EQ(w2.sessions_error, 1);
  EXPECT_EQ(w2.error_rate, 1.0);
}

TEST(MonitorWindows, FlushClosesOnlyNonEmptyPartialWindows) {
  Monitor monitor(SmallConfig(), nullptr, nullptr);
  monitor.Flush(50);  // partial, no sessions — nothing to keep
  EXPECT_EQ(monitor.windows_closed(), 0);
  monitor.RecordSession(Sample(10, 5, true));
  monitor.Flush(50);  // partial with a session — closed early at 50
  ASSERT_EQ(monitor.windows_closed(), 1);
  EXPECT_EQ(monitor.windows().back().end_micros, 50);
}

TEST(MonitorWindows, RingEvictsBeyondCapacity) {
  MonitorConfig config = SmallConfig();
  config.capacity = 4;
  Monitor monitor(config, nullptr, nullptr);
  monitor.AdvanceTo(100 * 10);
  EXPECT_EQ(monitor.windows_closed(), 10);
  ASSERT_EQ(monitor.windows().size(), 4u);
  EXPECT_EQ(monitor.windows().front().seq, 7);  // oldest surviving
  EXPECT_EQ(monitor.windows().back().seq, 10);
}

// -- Budget accounting ------------------------------------------------------

TEST(MonitorBudget, ExactlyAllowedViolationsBurnsWithoutExhausting) {
  MonitorConfig config = SmallConfig();  // allowed = 2
  config.slo_max_error_rate = 0.4;
  Monitor monitor(config, nullptr, nullptr);

  // Two violating windows: exactly the allowed budget.
  monitor.RecordSession(Sample(10, 5, false));
  monitor.RecordSession(Sample(110, 5, false));
  monitor.AdvanceTo(200);
  const SloStatus error_rate = monitor.SloStatuses()[1];
  EXPECT_EQ(error_rate.name, "error_rate");
  EXPECT_EQ(error_rate.violations_in_horizon, 2);
  EXPECT_EQ(error_rate.allowed_in_horizon, 2);
  EXPECT_EQ(error_rate.state, "burning");
  EXPECT_FALSE(monitor.shedding());
}

TEST(MonitorBudget, OneBeyondAllowedExhaustsAndSheds) {
  MonitorConfig config = SmallConfig();
  config.slo_max_error_rate = 0.4;
  Monitor monitor(config, nullptr, nullptr);

  for (int w = 0; w < 3; ++w) {
    monitor.RecordSession(Sample(10 + 100 * w, 5, false));
  }
  monitor.AdvanceTo(300);
  const SloStatus error_rate = monitor.SloStatuses()[1];
  EXPECT_EQ(error_rate.violations_in_horizon, 3);
  EXPECT_EQ(error_rate.state, "exhausted");
  EXPECT_TRUE(monitor.shedding());
  EXPECT_EQ(monitor.shed_engagements(), 1);

  // The alert stream brackets: threshold raise, budget burning, budget
  // exhausted, admission shed — in that order.
  std::vector<std::string> rules;
  for (const AlertEvent& alert : monitor.alerts()) rules.push_back(alert.rule);
  ASSERT_EQ(rules.size(), 4u);
  EXPECT_EQ(rules[0], "slo.error_rate");
  EXPECT_EQ(rules[1], "budget.error_rate");
  EXPECT_EQ(rules[2], "budget.error_rate");
  EXPECT_EQ(rules[3], "admission.shed");
  EXPECT_EQ(monitor.alerts()[2].severity, "critical");
}

TEST(MonitorBudget, ShedReleasesAfterCleanWindowsOnceBudgetRecovers) {
  MonitorConfig config = SmallConfig();
  config.budget_horizon_windows = 4;  // allowed = max(1, 0.8) = 1
  config.slo_max_error_rate = 0.4;
  Monitor monitor(config, nullptr, nullptr);

  monitor.RecordSession(Sample(10, 5, false));
  monitor.RecordSession(Sample(110, 5, false));
  monitor.AdvanceTo(200);
  ASSERT_TRUE(monitor.shedding());  // 2 violations > 1 allowed

  // Clean windows age the violations out of the 4-window horizon; once
  // the budget is no longer exhausted and the clean streak is long
  // enough, shedding releases.
  for (int w = 2; w < 8; ++w) {
    monitor.RecordSession(Sample(10 + 100 * w, 5, true));
  }
  monitor.AdvanceTo(800);
  EXPECT_FALSE(monitor.shedding());
  bool released = false;
  for (const AlertEvent& alert : monitor.alerts()) {
    if (alert.rule == "admission.shed" && !alert.fired) released = true;
  }
  EXPECT_TRUE(released);
}

// -- Threshold alerts -------------------------------------------------------

TEST(MonitorAlerts, ThresholdRaisesOnceAndResolves) {
  MonitorConfig config = SmallConfig();
  config.slo_p99_latency_micros = 50;
  Monitor monitor(config, nullptr, nullptr);

  monitor.RecordSession(Sample(10, 500, true));   // violates
  monitor.RecordSession(Sample(110, 600, true));  // still violating: no dup
  monitor.RecordSession(Sample(210, 10, true));   // resolves
  monitor.AdvanceTo(300);

  int raises = 0, resolves = 0;
  for (const AlertEvent& alert : monitor.alerts()) {
    if (alert.rule != "slo.p99_latency_us") continue;
    if (alert.fired) {
      ++raises;
    } else {
      ++resolves;
    }
  }
  EXPECT_EQ(raises, 1);
  EXPECT_EQ(resolves, 1);
}

TEST(MonitorAlerts, AlertJsonIsPinnedByteForByte) {
  MonitorConfig config = SmallConfig();
  config.slo_max_error_rate = 0.2;
  Monitor monitor(config, nullptr, nullptr);
  monitor.RecordSession(Sample(10, 5, false));
  monitor.AdvanceTo(100);
  ASSERT_FALSE(monitor.alerts().empty());
  EXPECT_EQ(monitor.alerts()[0].ToJson(),
            "{\"event\":\"alert\",\"at_micros\":100,\"window\":1,"
            "\"rule\":\"slo.error_rate\",\"kind\":\"threshold\","
            "\"severity\":\"warn\",\"fired\":true,\"value\":1,"
            "\"limit\":0.2000,"
            "\"detail\":\"error_rate above 0.2000 in window 1\"}");
}

TEST(MonitorAlerts, AlertsFlowIntoTheQueryLogEventStream) {
  QueryLog log;
  log.set_enabled(true);
  MonitorConfig config = SmallConfig();
  config.slo_max_error_rate = 0.2;
  Monitor monitor(config, nullptr, nullptr);
  monitor.set_query_log(&log);
  monitor.RecordSession(Sample(10, 5, false));
  monitor.AdvanceTo(100);
  const std::string jsonl = log.ToJsonl();
  EXPECT_NE(jsonl.find("\"event\":\"alert\""), std::string::npos);
  EXPECT_NE(jsonl.find("slo.error_rate"), std::string::npos);
}

// -- EWMA drift -------------------------------------------------------------

TEST(MonitorEwma, FirstSampleSeedsWithoutFiring) {
  MonitorConfig config = SmallConfig();
  config.ewma_min_windows = 1;
  Monitor monitor(config, nullptr, nullptr);
  monitor.RecordSession(Sample(10, 1'000'000, true));  // huge first sample
  monitor.AdvanceTo(100);
  for (const AlertEvent& alert : monitor.alerts()) {
    EXPECT_NE(alert.kind, "ewma") << alert.rule;
  }
}

TEST(MonitorEwma, DriftFiresAfterWarmupAndResolvesOnReturn) {
  MonitorConfig config = SmallConfig();
  config.ewma_min_windows = 3;
  config.ewma_drift_factor = 3.0;
  Monitor monitor(config, nullptr, nullptr);

  // Warmup: five flat windows at ~1000us.
  for (int w = 0; w < 5; ++w) {
    monitor.RecordSession(Sample(10 + 100 * w, 1000, true));
  }
  monitor.AdvanceTo(500);
  for (const AlertEvent& alert : monitor.alerts()) {
    EXPECT_NE(alert.kind, "ewma");
  }

  // 100x spike: way beyond 3 * max(deviation, 5% of mean).
  monitor.RecordSession(Sample(510, 100'000, true));
  monitor.AdvanceTo(600);
  bool raised = false;
  for (const AlertEvent& alert : monitor.alerts()) {
    if (alert.rule == "ewma.p99_latency_us" && alert.fired) raised = true;
  }
  EXPECT_TRUE(raised);

  // Settle back near the (now pulled-up) mean: eventually resolves.
  bool resolved = false;
  for (int w = 6; w < 16; ++w) {
    monitor.RecordSession(Sample(10 + 100 * w, 1000, true));
  }
  monitor.AdvanceTo(1600);
  for (const AlertEvent& alert : monitor.alerts()) {
    if (alert.rule == "ewma.p99_latency_us" && !alert.fired) resolved = true;
  }
  EXPECT_TRUE(resolved);
}

// -- Golden determinism -----------------------------------------------------

/// Feeds one deterministic session pattern into a monitor.
void FeedPattern(Monitor* monitor) {
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    Monitor::SessionSample s;
    s.finish_micros = 5 + i * 17;
    s.makespan_micros = 50 + static_cast<int64_t>(rng.NextDouble() * 400);
    s.ok = !rng.NextBool(0.3);
    s.deadlock_victim = rng.NextBool(0.05);
    monitor->RecordSession(s);
  }
  monitor->SetGauge("sessions.active", 7);
  monitor->Flush(4000);
}

TEST(MonitorGolden, DashboardAndAlertsAreByteIdenticalAcrossRuns) {
  MonitorConfig config = SmallConfig();
  config.slo_p99_latency_micros = 400;
  config.slo_max_error_rate = 0.35;
  config.slo_max_deadlock_victims = 0;
  Monitor a(config, nullptr, nullptr);
  Monitor b(config, nullptr, nullptr);
  FeedPattern(&a);
  FeedPattern(&b);
  ASSERT_GT(a.alerts().size(), 0u);
  EXPECT_EQ(a.RenderDashboardText(), b.RenderDashboardText());
  EXPECT_EQ(a.RenderDashboardJson(), b.RenderDashboardJson());
  EXPECT_EQ(a.AlertsJsonl(), b.AlertsJsonl());

  // And the dashboard header itself is pinned.
  const std::string text = a.RenderDashboardText();
  EXPECT_NE(text.find("federation monitor  window=100us  horizon=10  "
                      "budget=2/10"),
            std::string::npos);
  EXPECT_NE(text.find("slo                  state      last        limit"
                      "  budget(viol/allow)  total"),
            std::string::npos);
}

TEST(MonitorGolden, CounterTracksMirrorTheWindowSeries) {
  Monitor monitor(SmallConfig(), nullptr, nullptr);
  FeedPattern(&monitor);
  const auto tracks = monitor.CounterTracks();
  ASSERT_EQ(tracks.size(), 6u);
  EXPECT_EQ(tracks[0].name, "monitor.sessions_finished");
  EXPECT_EQ(tracks[0].points.size(), monitor.windows().size());
  int64_t total = 0;
  for (const auto& [ts, value] : tracks[0].points) {
    total += static_cast<int64_t>(value);
  }
  EXPECT_EQ(total, 200);
}

// -- Health snapshot / JSON (satellite wiring) ------------------------------

TEST(MonitorHealth, RenderJsonAgreesWithSnapshot) {
  HealthRegistry health;
  health.Record("alpha_svc", "site_a", true, false, false, 120);
  health.Record("alpha_svc", "site_a", false, true, false, 90'000);
  health.Record("beta_svc", "site_b", true, false, false, 200);
  const HealthSnapshot snapshot = health.Snapshot();
  ASSERT_EQ(snapshot.services.size(), 2u);
  EXPECT_EQ(snapshot.services[0].service, "alpha_svc");
  EXPECT_EQ(snapshot.degraded, 1);

  const std::string json = health.RenderJson();
  EXPECT_NE(json.find("\"service\":\"alpha_svc\""), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"degraded\""), std::string::npos);
  EXPECT_NE(json.find("\"degraded\":1,\"unreachable\":0}"),
            std::string::npos);
}

TEST(MonitorHealth, UnreachableSiteViolatesTheSitesSlo) {
  HealthRegistry health;
  for (int i = 0; i < 4; ++i) {
    health.Record("down_svc", "site_d", false, false, true, 0);
  }
  MonitorConfig config = SmallConfig();
  Monitor monitor(config, nullptr, &health);
  monitor.AdvanceTo(100);
  const SloStatus sites = monitor.SloStatuses()[4];
  EXPECT_EQ(sites.name, "sites_unreachable");
  EXPECT_EQ(sites.violations_in_horizon, 1);
  bool raised = false;
  for (const AlertEvent& alert : monitor.alerts()) {
    if (alert.rule == "slo.sites_unreachable" && alert.fired) raised = true;
  }
  EXPECT_TRUE(raised);
}

// -- Adaptive admission under chaos -----------------------------------------

std::string BookingMt(bool continental_first, const std::string& client) {
  std::string continental =
      "USE continental\n"
      "UPDATE f838 SET seatstatus = 'TAKEN', clientname = '" + client +
      "'\n"
      "WHERE seatnu = (SELECT MIN(seatnu) FROM f838 "
      "WHERE seatstatus = 'FREE');\n";
  std::string delta =
      "USE delta\n"
      "UPDATE fnu747 SET sstat = 'TAKEN', passname = '" + client +
      "'\n"
      "WHERE snu = (SELECT MIN(snu) FROM fnu747 WHERE sstat = 'FREE');\n";
  return "BEGIN MULTITRANSACTION\n" +
         (continental_first ? continental + delta : delta + continental) +
         "COMMIT\n"
         "  continental AND delta\n"
         "END MULTITRANSACTION";
}

class MonitorChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MonitorChaosTest, EveryShedSessionTerminatesWithAWellFormedReport) {
  const uint64_t seed = GetParam();
  msql::core::PaperFederationOptions options;
  options.seats_per_airline = 64;
  auto built = msql::core::BuildPaperFederation(options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto sys = std::move(*built);

  // Degraded site + random rejections: both chaos modes at once.
  msql::netsim::FaultPlan plan;
  plan.seed = seed;
  plan.rules.push_back(
      msql::netsim::FaultRule::Spike("continental_svc", 15'000));
  plan.rules.push_back(msql::netsim::FaultRule::Random(
      "delta_svc", std::nullopt, 0.05, msql::netsim::FaultAction::kReject));
  sys->environment().fault_injector().SetPlan(plan);

  msql::core::ServerConfig config;
  config.max_admitted = 8;
  config.adaptive_admission = true;
  msql::core::FederationServer server(sys.get(), config);

  MonitorConfig mon_config;
  mon_config.window_micros = 50'000;
  mon_config.slo_max_deadlock_victims = 0;
  mon_config.slo_max_error_rate = 0.5;
  mon_config.budget_horizon_windows = 8;
  mon_config.slo_budget_fraction = 0.1;
  Monitor monitor(mon_config, &sys->environment().metrics(),
                  &sys->environment().health());
  server.set_monitor(&monitor);

  Rng rng(seed);
  const int kSessions = 24;
  for (int i = 0; i < kSessions; ++i) {
    server.Submit(BookingMt(rng.NextBool(0.5), "c" + std::to_string(i)));
  }
  auto results = server.RunAll();
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), static_cast<size_t>(kSessions));

  int64_t shed = 0;
  for (size_t i = 0; i < results->size(); ++i) {
    const msql::core::SessionResult& r = (*results)[i];
    // Well-formed: every session either carries a full report or a
    // non-OK status explaining why it never produced one.
    EXPECT_TRUE(r.report.has_value() || !r.status.ok())
        << "session " << i << " has neither report nor error";
    if (r.admission_shed) {
      ++shed;
      // The decision trail: a shed session records how long admission
      // held it back, and still ran to a terminal outcome.
      EXPECT_GE(r.shed_wait_micros, 0);
      EXPECT_TRUE(r.report.has_value() || !r.status.ok());
    }
    EXPECT_GE(r.makespan_micros, 0);
  }
  // The monitor saw every finished session.
  monitor.Flush(server.virtual_now());
  int64_t seen = 0;
  for (const MonitorWindow& w : monitor.windows()) {
    seen += w.sessions_finished;
  }
  EXPECT_EQ(seen, kSessions);
  // Consistency: shed sessions exist iff shedding ever engaged.
  if (shed > 0) EXPECT_GT(monitor.shed_engagements(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonitorChaosTest,
                         ::testing::Values(7u, 21u, 1993u));

TEST(MonitorAdaptive, MonitorDoesNotPerturbTheSimulationWhenNotShedding) {
  // Same batch with and without an attached monitor (adaptive off):
  // virtual makespans must be identical — observation is free on the
  // simulated clock.
  int64_t makespans[2] = {0, 0};
  for (int pass = 0; pass < 2; ++pass) {
    msql::core::SyntheticFederationOptions options;
    options.n_databases = 4;
    options.rows_per_table = 16;
    auto built = msql::core::BuildSyntheticFederation(options);
    ASSERT_TRUE(built.ok());
    auto sys = std::move(*built);
    msql::core::FederationServer server(sys.get(), {});
    MonitorConfig mon_config;
    mon_config.window_micros = 10'000;
    Monitor monitor(mon_config, &sys->environment().metrics(),
                    &sys->environment().health());
    if (pass == 1) server.set_monitor(&monitor);
    for (int i = 0; i < 40; ++i) {
      const int db = i % options.n_databases;
      server.Submit("USE db" + std::to_string(db) +
                    "\nSELECT fno FROM flight" + std::to_string(db));
    }
    auto results = server.RunAll();
    ASSERT_TRUE(results.ok());
    makespans[pass] = server.virtual_now();
  }
  EXPECT_EQ(makespans[0], makespans[1]);
}

}  // namespace
}  // namespace msql::obs
