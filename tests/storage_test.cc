// Unit tests of the paged-storage primitives: disk manager, buffer
// pool (LRU + no-steal), heap file (directory + redo guards), B+-tree
// and the write-ahead log's durability boundary.

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/btree.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "storage/page.h"
#include "storage/wal.h"

namespace msql::storage {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("msql_storage_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string Path(const std::string& name) const {
    return (root_ / name).string();
  }

  std::filesystem::path root_;
};

TEST_F(StorageTest, DiskManagerRoundTripsPages) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(Path("a.db")).ok());
  auto p0 = disk.AllocatePage();
  ASSERT_TRUE(p0.ok());
  auto p1 = disk.AllocatePage();
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(*p0, 0u);
  EXPECT_EQ(*p1, 1u);
  char page[kPageSize];
  std::fill(page, page + kPageSize, 'x');
  ASSERT_TRUE(disk.WritePage(*p1, page).ok());
  ASSERT_TRUE(disk.Flush().ok());
  disk.Close();

  DiskManager again;
  ASSERT_TRUE(again.Open(Path("a.db")).ok());
  EXPECT_EQ(again.page_count(), 2u);
  char read[kPageSize];
  ASSERT_TRUE(again.ReadPage(1, read).ok());
  EXPECT_EQ(read[0], 'x');
  EXPECT_EQ(read[kPageSize - 1], 'x');
  again.Close();
}

TEST_F(StorageTest, BufferManagerEvictsLruAndCountsHits) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(Path("b.db")).ok());
  BufferManager pool(2);
  uint32_t fid = pool.RegisterFile(&disk);

  // Three pages through a two-frame pool forces an eviction.
  for (int i = 0; i < 3; ++i) {
    auto frame = pool.NewPage(fid);
    ASSERT_TRUE(frame.ok());
    (*frame)->data[0] = static_cast<char>('a' + i);
    pool.MarkDirty(*frame, 0);
    pool.Unpin(*frame);
  }
  EXPECT_GE(pool.evictions(), 1);

  // Re-pinning an evicted page reads its (written-back) content.
  auto frame = pool.Pin(fid, 0);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ((*frame)->data[0], 'a');
  pool.Unpin(*frame);
  int64_t hits = pool.pin_hits();
  auto frame2 = pool.Pin(fid, 0);
  ASSERT_TRUE(frame2.ok());
  pool.Unpin(*frame2);
  EXPECT_EQ(pool.pin_hits(), hits + 1);
  disk.Close();
}

TEST_F(StorageTest, BufferManagerRefusesWhenAllFramesPinned) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(Path("c.db")).ok());
  BufferManager pool(2);
  uint32_t fid = pool.RegisterFile(&disk);
  auto f0 = pool.NewPage(fid);
  auto f1 = pool.NewPage(fid);
  ASSERT_TRUE(f0.ok() && f1.ok());
  EXPECT_FALSE(pool.NewPage(fid).ok());  // both frames pinned
  pool.Unpin(*f0);
  EXPECT_TRUE(pool.NewPage(fid).ok());
  disk.Close();
}

TEST_F(StorageTest, NoStealHoldsDirtyPagesUntilRelease) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(Path("d.db")).ok());
  BufferManager pool(4);
  uint32_t fid = pool.RegisterFile(&disk);
  auto frame = pool.NewPage(fid);
  ASSERT_TRUE(frame.ok());
  (*frame)->data[0] = 'z';
  pool.MarkDirty(*frame, /*txn_id=*/42);
  pool.Unpin(*frame);

  // Transaction 42 is active: the page is not eligible for writeback.
  int64_t writes = pool.page_writes();
  ASSERT_TRUE(pool.FlushEligible().ok());
  EXPECT_EQ(pool.page_writes(), writes);

  pool.ReleaseTxn(42);
  ASSERT_TRUE(pool.FlushEligible().ok());
  EXPECT_EQ(pool.page_writes(), writes + 1);
  disk.Close();
}

TEST_F(StorageTest, FlushEligibleHonorsPageCap) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(Path("e.db")).ok());
  BufferManager pool(8);
  uint32_t fid = pool.RegisterFile(&disk);
  for (int i = 0; i < 4; ++i) {
    auto frame = pool.NewPage(fid);
    ASSERT_TRUE(frame.ok());
    pool.MarkDirty(*frame, 0);
    pool.Unpin(*frame);
  }
  int64_t writes = pool.page_writes();
  ASSERT_TRUE(pool.FlushEligible(/*max_pages=*/2).ok());
  EXPECT_EQ(pool.page_writes(), writes + 2);
  ASSERT_TRUE(pool.FlushEligible().ok());
  EXPECT_EQ(pool.page_writes(), writes + 4);
  disk.Close();
}

TEST_F(StorageTest, DiscardFileDropsResidentPagesWithoutWriting) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(Path("f.db")).ok());
  BufferManager pool(4);
  uint32_t fid = pool.RegisterFile(&disk);
  auto frame = pool.NewPage(fid);
  ASSERT_TRUE(frame.ok());
  pool.MarkDirty(*frame, 0);
  pool.Unpin(*frame);
  int64_t writes = pool.page_writes();
  pool.DiscardFile(fid);
  EXPECT_EQ(pool.page_writes(), writes);
  EXPECT_EQ(pool.file_size_pages(fid), 0u);
  ASSERT_TRUE(pool.FlushEligible().ok());  // nothing left to flush
  EXPECT_EQ(pool.page_writes(), writes);
  disk.Close();
}

TEST_F(StorageTest, HeapFilePutGetDeleteAndFreeFlags) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(Path("g.db")).ok());
  BufferManager pool(16);
  uint32_t fid = pool.RegisterFile(&disk);
  HeapFile heap(&pool, fid);
  ASSERT_TRUE(heap.Create().ok());

  ASSERT_TRUE(heap.Put(0, 1, 0, "alpha").ok());
  ASSERT_TRUE(heap.Put(7, 2, 0, "beta").ok());
  auto a = heap.Get(0);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, "alpha");
  EXPECT_EQ(*heap.EntryFlags(7), 1u);
  EXPECT_EQ(*heap.EntryFlags(3), 0u);  // never written

  ASSERT_TRUE(heap.Delete(0, 3, 0).ok());
  EXPECT_EQ(*heap.EntryFlags(0), 2u);
  EXPECT_FALSE(heap.Get(0).ok());
  EXPECT_EQ(*heap.MaxRowId(), 7);

  // Updates repoint the directory at a fresh record.
  ASSERT_TRUE(heap.Put(7, 4, 0, "beta2").ok());
  EXPECT_EQ(*heap.Get(7), "beta2");
  EXPECT_EQ(*heap.EntryLsn(7), 4u);
  disk.Close();
}

TEST_F(StorageTest, HeapRedoIsLsnGuarded) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(Path("h.db")).ok());
  BufferManager pool(16);
  uint32_t fid = pool.RegisterFile(&disk);
  HeapFile heap(&pool, fid);
  ASSERT_TRUE(heap.Create().ok());

  ASSERT_TRUE(heap.Put(1, 10, 0, "v10").ok());
  // Older redo is a no-op; newer redo applies.
  ASSERT_TRUE(heap.RedoPut(1, 5, "v5").ok());
  EXPECT_EQ(*heap.Get(1), "v10");
  ASSERT_TRUE(heap.RedoPut(1, 11, "v11").ok());
  EXPECT_EQ(*heap.Get(1), "v11");
  ASSERT_TRUE(heap.RedoDelete(1, 12).ok());
  EXPECT_EQ(*heap.EntryFlags(1), 2u);
  // RedoDelete of a never-seen rowid creates a tombstone (compensation
  // records can reference rows whose insert was discarded).
  ASSERT_TRUE(heap.RedoDelete(99, 13).ok());
  EXPECT_EQ(*heap.EntryFlags(99), 2u);
  disk.Close();
}

TEST_F(StorageTest, BtreeInsertSplitEraseAndRangeScan) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(Path("i.db")).ok());
  BufferManager pool(64);
  uint32_t fid = pool.RegisterFile(&disk);
  BTree tree(&pool, fid);
  ASSERT_TRUE(tree.Create().ok());

  // Enough wide keys to force leaf and internal splits.
  const int kKeys = 500;
  for (int i = 0; i < kKeys; ++i) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "key-%06d-%032d", (i * 7919) % kKeys, i);
    ASSERT_TRUE(tree.Insert(buf).ok()) << i;
  }
  EXPECT_EQ(*tree.CountKeys(), kKeys);

  auto c = tree.Contains("key-000007-" + std::string(30, '0') + "93");
  ASSERT_TRUE(c.ok());

  std::vector<std::string> in_range;
  ASSERT_TRUE(tree.ScanRange("key-000100", "key-000199\xff",
                             [&](std::string_view key) {
                               in_range.emplace_back(key);
                               return true;
                             })
                  .ok());
  EXPECT_EQ(in_range.size(), 100u);
  for (size_t i = 1; i < in_range.size(); ++i) {
    EXPECT_LT(in_range[i - 1], in_range[i]);
  }

  for (int i = 0; i < kKeys; i += 2) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "key-%06d-%032d", (i * 7919) % kKeys, i);
    ASSERT_TRUE(tree.Erase(buf).ok());
  }
  EXPECT_EQ(*tree.CountKeys(), kKeys / 2);
  disk.Close();
}

TEST_F(StorageTest, BtreeResetEmptiesReusedFile) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(Path("j.db")).ok());
  BufferManager pool(32);
  uint32_t fid = pool.RegisterFile(&disk);
  BTree tree(&pool, fid);
  ASSERT_TRUE(tree.Reset().ok());  // fresh file → Create
  ASSERT_TRUE(tree.Insert("one").ok());
  ASSERT_TRUE(tree.Insert("two").ok());
  ASSERT_TRUE(tree.Reset().ok());  // non-empty file → new empty root
  EXPECT_EQ(*tree.CountKeys(), 0);
  ASSERT_TRUE(tree.Insert("three").ok());
  EXPECT_TRUE(*tree.Contains("three"));
  EXPECT_FALSE(*tree.Contains("one"));
  disk.Close();
}

TEST_F(StorageTest, WalFlushIsTheDurabilityBoundary) {
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(Path("wal.log")).ok());
  auto l1 = wal.Append(WalRecordType::kBegin, "p1");
  ASSERT_TRUE(l1.ok());
  ASSERT_TRUE(wal.Flush().ok());
  auto l2 = wal.Append(WalRecordType::kInsert, "p2");
  ASSERT_TRUE(l2.ok());
  EXPECT_GT(*l2, *l1);

  // Unflushed tail vanishes in a crash.
  wal.DropUnflushed();
  auto records = wal.ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].payload, "p1");
  EXPECT_EQ((*records)[0].type, WalRecordType::kBegin);
  wal.Close();

  // Reopening restores the LSN counter past the durable prefix.
  WriteAheadLog again;
  ASSERT_TRUE(again.Open(Path("wal.log")).ok());
  auto l3 = again.Append(WalRecordType::kCommit, "p3");
  ASSERT_TRUE(l3.ok());
  EXPECT_GT(*l3, *l1);
  ASSERT_TRUE(again.Flush().ok());
  auto all = again.ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 2u);
  again.Close();
}

TEST_F(StorageTest, WalToleratesTornTail) {
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(Path("torn.log")).ok());
  ASSERT_TRUE(wal.Append(WalRecordType::kBegin, "keep").ok());
  ASSERT_TRUE(wal.Flush().ok());
  wal.Close();

  // Simulate a torn final record: append garbage shorter than a frame.
  {
    std::FILE* f = std::fopen(Path("torn.log").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char junk[] = {0x40, 0x00, 0x00, 0x00, 0x02};
    std::fwrite(junk, 1, sizeof junk, f);
    std::fclose(f);
  }

  WriteAheadLog again;
  ASSERT_TRUE(again.Open(Path("torn.log")).ok());
  auto records = again.ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].payload, "keep");
  again.Close();
}

}  // namespace
}  // namespace msql::storage
