// §2 extension features: virtual databases (CREATE MULTIDATABASE),
// multidatabase views, interdatabase triggers and cross-database data
// transfer.
#include <gtest/gtest.h>

#include <memory>

#include "core/fixtures.h"
#include "core/mdbs_system.h"
#include "dol/parser.h"
#include "msql/parser.h"

namespace msql::core {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto sys = BuildPaperFederation();
    ASSERT_TRUE(sys.ok()) << sys.status();
    sys_ = std::move(*sys);
  }

  ExecutionReport Exec(const std::string& msql) {
    auto report = sys_->Execute(msql);
    EXPECT_TRUE(report.ok()) << msql << " -> " << report.status();
    return report.ok() ? std::move(*report) : ExecutionReport{};
  }

  int64_t Count(const std::string& db, const std::string& sql) {
    auto engine = *sys_->GetEngine(PaperServiceOf(db));
    auto s = *engine->OpenSession(db);
    auto rs = engine->Execute(s, sql);
    EXPECT_TRUE(rs.ok()) << rs.status();
    int64_t out = rs->rows[0][0].AsInteger();
    EXPECT_TRUE(engine->CloseSession(s).ok());
    return out;
  }

  std::unique_ptr<MultidatabaseSystem> sys_;
};

// --- virtual databases -----------------------------------------------------

TEST_F(ExtensionsTest, MultidatabaseExpandsInUse) {
  ASSERT_EQ(Exec("CREATE MULTIDATABASE rentals (avis national)").outcome,
            GlobalOutcome::kSuccess);
  EXPECT_TRUE(sys_->gdd().HasMultidatabase("rentals"));
  auto report = Exec(
      "USE rentals\n"
      "LET car.code BE cars.code vehicle.vcode\n"
      "SELECT code FROM car");
  EXPECT_EQ(report.outcome, GlobalOutcome::kSuccess);
  ASSERT_EQ(report.multitable.size(), 2u);
  EXPECT_EQ(report.multitable.elements[0].database, "avis");
  EXPECT_EQ(report.multitable.elements[1].database, "national");
}

TEST_F(ExtensionsTest, MultidatabaseVitalDistributes) {
  ASSERT_EQ(
      Exec("CREATE MULTIDATABASE airlines (continental delta united)")
          .outcome,
      GlobalOutcome::kSuccess);
  // VITAL on the virtual database makes all members vital.
  (*sys_->GetEngine(PaperServiceOf("delta")))
      ->InjectFailure(msql::relational::FailPoint::kNextStatement);
  auto report = Exec(
      "USE airlines VITAL\n"
      "UPDATE flight% SET rate% = rate% * 1.1");
  EXPECT_EQ(report.outcome, GlobalOutcome::kAborted);
}

TEST_F(ExtensionsTest, MultidatabaseValidation) {
  auto ghost =
      sys_->Execute("CREATE MULTIDATABASE md (avis ghost)");
  EXPECT_FALSE(ghost.ok());
  EXPECT_EQ(ghost.status().code(), StatusCode::kNotFound);
  // Name collision with an existing database.
  EXPECT_FALSE(sys_->Execute("CREATE MULTIDATABASE avis (national)").ok());
  // Aliasing a multidatabase in USE is rejected.
  ASSERT_TRUE(
      sys_->Execute("CREATE MULTIDATABASE rentals (avis national)").ok());
  EXPECT_FALSE(
      sys_->Execute("USE (rentals r) SELECT vcode FROM vehicle").ok());
  // DROP removes it.
  ASSERT_TRUE(sys_->Execute("DROP MULTIDATABASE rentals").ok());
  EXPECT_FALSE(sys_->gdd().HasMultidatabase("rentals"));
  EXPECT_FALSE(sys_->Execute("DROP MULTIDATABASE rentals").ok());
}

// --- multidatabase views ----------------------------------------------------

TEST_F(ExtensionsTest, ViewDefinitionAndQuery) {
  ASSERT_EQ(Exec("CREATE MULTIVIEW available_cars AS\n"
                 "USE avis national\n"
                 "LET car.type.status BE cars.cartype.carst "
                 "vehicle.vty.vstat\n"
                 "SELECT %code, type, ~rate FROM car "
                 "WHERE status = 'available'")
                .outcome,
            GlobalOutcome::kSuccess);
  EXPECT_TRUE(sys_->HasView("available_cars"));

  // Query the view with further filtering and projection.
  auto report = Exec(
      "USE avis SELECT code FROM available_cars WHERE type = 'sedan'");
  EXPECT_EQ(report.outcome, GlobalOutcome::kSuccess);
  ASSERT_EQ(report.multitable.size(), 2u);
  for (const auto& element : report.multitable.elements) {
    EXPECT_EQ(element.table.columns, (std::vector<std::string>{"code"}));
  }
}

TEST_F(ExtensionsTest, ViewAggregationPerElement) {
  ASSERT_TRUE(sys_->Execute("CREATE MULTIVIEW all_cars AS\n"
                            "USE avis national\n"
                            "LET car.code BE cars.code vehicle.vcode\n"
                            "SELECT code FROM car")
                  .ok());
  auto report = Exec("USE avis SELECT COUNT(*) FROM all_cars");
  ASSERT_EQ(report.multitable.size(), 2u);
  // Per-element counts match direct local counts.
  EXPECT_EQ(report.multitable.elements[0].table.rows[0][0].AsInteger(),
            Count("avis", "SELECT COUNT(*) FROM cars"));
  EXPECT_EQ(report.multitable.elements[1].table.rows[0][0].AsInteger(),
            Count("national", "SELECT COUNT(*) FROM vehicle"));
}

TEST_F(ExtensionsTest, ViewValidation) {
  // Views must be SELECTs with their own scope.
  EXPECT_FALSE(sys_->Execute("CREATE MULTIVIEW v AS\n"
                             "USE avis UPDATE cars SET rate = 1")
                   .ok());
  // Name collisions.
  ASSERT_TRUE(sys_->Execute("CREATE MULTIVIEW v AS USE avis "
                            "SELECT code FROM cars")
                  .ok());
  EXPECT_FALSE(sys_->Execute("CREATE MULTIVIEW v AS USE avis "
                             "SELECT code FROM cars")
                   .ok());
  EXPECT_FALSE(sys_->Execute("CREATE MULTIVIEW avis AS USE avis "
                             "SELECT code FROM cars")
                   .ok());
  // Drop works once.
  EXPECT_TRUE(sys_->Execute("DROP MULTIVIEW v").ok());
  EXPECT_FALSE(sys_->Execute("DROP MULTIVIEW v").ok());
}

// --- cross-database data transfer -------------------------------------------

TEST_F(ExtensionsTest, InsertSelectAcrossDatabases) {
  // Give national a fares table, then fill it from continental.
  ASSERT_EQ(Exec("USE national CREATE TABLE fares "
                 "(orig TEXT, dst TEXT, amount REAL)")
                .outcome,
            GlobalOutcome::kSuccess);
  auto report = Exec(
      "USE national continental\n"
      "INSERT INTO national.fares "
      "SELECT source, destination, rate FROM continental.flights "
      "WHERE rate > 150");
  EXPECT_EQ(report.outcome, GlobalOutcome::kSuccess);
  int64_t expected = Count(
      "continental", "SELECT COUNT(*) FROM flights WHERE rate > 150");
  EXPECT_EQ(report.rows_transferred, expected);
  EXPECT_EQ(Count("national", "SELECT COUNT(*) FROM fares"), expected);
  // Values actually arrived.
  EXPECT_EQ(Count("national",
                  "SELECT COUNT(*) FROM fares WHERE amount > 150"),
            expected);
}

TEST_F(ExtensionsTest, InsertSelectWithColumnList) {
  ASSERT_TRUE(sys_->Execute("USE national CREATE TABLE fares "
                            "(orig TEXT, dst TEXT, amount REAL)")
                  .ok());
  auto report = Exec(
      "USE national continental\n"
      "INSERT INTO national.fares (orig, amount) "
      "SELECT source, rate FROM continental.flights");
  EXPECT_EQ(report.outcome, GlobalOutcome::kSuccess);
  // dst was not named: it is NULL everywhere.
  EXPECT_EQ(Count("national",
                  "SELECT COUNT(*) FROM fares WHERE dst IS NULL"),
            report.rows_transferred);
}

TEST_F(ExtensionsTest, DataTransferValidation) {
  // Unknown target table.
  EXPECT_FALSE(sys_->Execute(
                       "USE national continental\n"
                       "INSERT INTO national.ghost "
                       "SELECT source FROM continental.flights")
                   .ok());
  // Same-database transfer is just a local statement: rejected by the
  // transfer path with a clear message.
  ASSERT_TRUE(sys_->Execute("USE continental CREATE TABLE copy2 "
                            "(src TEXT)")
                  .ok());
  auto same = sys_->Execute(
      "USE continental\n"
      "INSERT INTO continental.copy2 "
      "SELECT source FROM continental.flights");
  EXPECT_FALSE(same.ok());
}

TEST_F(ExtensionsTest, TransferAppendRoundTripsThroughDolText) {
  const char* text = R"(
DOLBEGIN
  OPEN a AT asvc AS a;
  TASK t FOR a { SELECT x FROM s } ENDTASK;
  TRANSFER t TO a TABLE dest APPEND (x, y);
  TRANSFER t TO a TABLE dest2 APPEND;
  CLOSE a;
DOLEND
)";
  auto first = dol::ParseDol(text);
  ASSERT_TRUE(first.ok()) << first.status();
  std::string rendered = first->ToDol();
  auto second = dol::ParseDol(rendered);
  ASSERT_TRUE(second.ok()) << rendered;
  EXPECT_EQ(second->ToDol(), rendered);
}

// --- interdatabase triggers -------------------------------------------------

TEST_F(ExtensionsTest, TriggerFiresOnMatchingCommit) {
  // Keep a mirror of avis price changes in national: when avis.cars is
  // updated, bump a counter table there.
  ASSERT_TRUE(sys_->Execute("USE national CREATE TABLE audit "
                            "(what TEXT)")
                  .ok());
  ASSERT_EQ(Exec("CREATE TRIGGER avis_price_watch ON avis.cars "
                 "AFTER UPDATE DO\n"
                 "USE national INSERT INTO audit VALUES "
                 "('avis price change')")
                .outcome,
            GlobalOutcome::kSuccess);
  EXPECT_EQ(sys_->TriggerNames(),
            (std::vector<std::string>{"avis_price_watch"}));

  auto update = Exec("USE avis UPDATE cars SET rate = rate * 1.01");
  EXPECT_EQ(update.outcome, GlobalOutcome::kSuccess);
  EXPECT_EQ(update.fired_triggers,
            (std::vector<std::string>{"avis_price_watch"}));
  EXPECT_EQ(Count("national", "SELECT COUNT(*) FROM audit"), 1);

  // A DELETE on the same table does not fire the UPDATE trigger.
  auto del = Exec("USE avis DELETE FROM cars WHERE code = 1");
  EXPECT_TRUE(del.fired_triggers.empty());
  EXPECT_EQ(Count("national", "SELECT COUNT(*) FROM audit"), 1);
}

TEST_F(ExtensionsTest, TriggerDoesNotFireOnAbortedUpdate) {
  ASSERT_TRUE(sys_->Execute("USE national CREATE TABLE audit "
                            "(what TEXT)")
                  .ok());
  ASSERT_TRUE(sys_->Execute("CREATE TRIGGER w ON avis.cars AFTER UPDATE "
                            "DO USE national INSERT INTO audit VALUES "
                            "('x')")
                  .ok());
  (*sys_->GetEngine(PaperServiceOf("avis")))
      ->InjectFailure(msql::relational::FailPoint::kNextStatement);
  auto update = Exec(
      "USE avis VITAL UPDATE cars SET rate = rate * 1.01");
  EXPECT_EQ(update.outcome, GlobalOutcome::kAborted);
  EXPECT_TRUE(update.fired_triggers.empty());
  EXPECT_EQ(Count("national", "SELECT COUNT(*) FROM audit"), 0);
}

TEST_F(ExtensionsTest, TriggerCascadeDepthIsBounded) {
  // Two triggers that feed each other: avis updates fire a national
  // update, which fires an avis update, ... — the cascade must stop
  // with a depth error instead of looping forever.
  ASSERT_TRUE(sys_->Execute("CREATE TRIGGER a2n ON avis.cars AFTER UPDATE "
                            "DO USE national UPDATE vehicle SET "
                            "vty = vty")
                  .ok());
  ASSERT_TRUE(sys_->Execute("CREATE TRIGGER n2a ON national.vehicle "
                            "AFTER UPDATE DO USE avis UPDATE cars SET "
                            "cartype = cartype")
                  .ok());
  auto update = sys_->Execute("USE avis UPDATE cars SET rate = rate");
  EXPECT_FALSE(update.ok());
  EXPECT_EQ(update.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ExtensionsTest, TriggerActionMayDropItsOwnTrigger) {
  // One-shot trigger: its action removes it. The firing round must not
  // be perturbed by the registry mutation.
  ASSERT_TRUE(sys_->Execute("CREATE TRIGGER once ON avis.cars AFTER "
                            "UPDATE DO USE avis SELECT code FROM cars")
                  .ok());
  // Replace its action with a DROP via re-creation under another name
  // that drops 'once' when avis.cars updates.
  ASSERT_TRUE(sys_->Execute("DROP TRIGGER once").ok());
  ASSERT_TRUE(sys_->Execute("USE national CREATE TABLE audit (w TEXT)")
                  .ok());
  ASSERT_TRUE(sys_->Execute("CREATE TRIGGER a ON avis.cars AFTER UPDATE "
                            "DO USE national INSERT INTO audit VALUES "
                            "('a')")
                  .ok());
  ASSERT_TRUE(sys_->Execute("CREATE TRIGGER b ON avis.cars AFTER UPDATE "
                            "DO USE national INSERT INTO audit VALUES "
                            "('b')")
                  .ok());
  auto update = Exec("USE avis UPDATE cars SET rate = rate");
  EXPECT_EQ(update.fired_triggers.size(), 2u);
  EXPECT_EQ(Count("national", "SELECT COUNT(*) FROM audit"), 2);
}

TEST_F(ExtensionsTest, TriggerValidation) {
  EXPECT_FALSE(sys_->Execute("CREATE TRIGGER t ON ghost.tbl AFTER UPDATE "
                             "DO USE avis SELECT code FROM cars")
                   .ok());
  ASSERT_TRUE(sys_->Execute("CREATE TRIGGER t ON avis.cars AFTER INSERT "
                            "DO USE avis SELECT code FROM cars")
                  .ok());
  EXPECT_FALSE(sys_->Execute("CREATE TRIGGER t ON avis.cars AFTER INSERT "
                             "DO USE avis SELECT code FROM cars")
                   .ok());
  EXPECT_TRUE(sys_->Execute("DROP TRIGGER t").ok());
  EXPECT_FALSE(sys_->Execute("DROP TRIGGER t").ok());
  // Trigger actions must carry an explicit scope (parse-time check).
  EXPECT_FALSE(sys_->Execute("CREATE TRIGGER t2 ON avis.cars AFTER "
                             "UPDATE DO SELECT code FROM cars")
                   .ok());
}

TEST_F(ExtensionsTest, StatementRenderingRoundTrips) {
  auto md = lang::MsqlParser::ParseOne(
      "CREATE MULTIDATABASE rentals (avis national)");
  ASSERT_TRUE(md.ok());
  EXPECT_EQ(md->create_multidatabase->ToMsql(),
            "CREATE MULTIDATABASE rentals (avis national)");
  auto trig = lang::MsqlParser::ParseOne(
      "CREATE TRIGGER t ON avis.cars AFTER DELETE DO USE avis "
      "SELECT code FROM cars");
  ASSERT_TRUE(trig.ok());
  EXPECT_NE(trig->create_trigger->ToMsql().find("AFTER DELETE"),
            std::string::npos);
}

}  // namespace
}  // namespace msql::core
