// Secondary indexes of the local engines: maintenance under DML and
// transactions, the executor's access-path selection, and DDL undo.
#include <gtest/gtest.h>

#include <memory>

#include "relational/engine.h"
#include "relational/index.h"

namespace msql::relational {
namespace {

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<LocalEngine>(
        "svc", CapabilityProfile::IngresLike());
    ASSERT_TRUE(engine_->CreateDatabase("db").ok());
    session_ = *engine_->OpenSession("db");
    Exec("CREATE TABLE t (id INTEGER, grp TEXT, v REAL)");
    std::string insert = "INSERT INTO t VALUES ";
    for (int i = 0; i < 50; ++i) {
      if (i > 0) insert += ", ";
      insert += "(" + std::to_string(i) + ", 'g" +
                std::to_string(i % 5) + "', " + std::to_string(i) + ".5)";
    }
    Exec(insert);
  }

  ResultSet Exec(std::string_view sql) {
    auto result = engine_->Execute(session_, sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return result.ok() ? std::move(*result) : ResultSet{};
  }

  const Table* GetT() {
    auto db = engine_->GetDatabase("db");
    return *(*db)->GetTableConst("t");
  }

  std::unique_ptr<LocalEngine> engine_;
  SessionId session_ = 0;
};

TEST_F(IndexTest, CreateDropLifecycle) {
  Exec("CREATE INDEX idx_id ON t (id)");
  EXPECT_TRUE(GetT()->HasIndex("idx_id"));
  EXPECT_EQ(GetT()->IndexNames(), (std::vector<std::string>{"idx_id"}));
  // Duplicate name / unknown column rejected.
  EXPECT_FALSE(
      engine_->Execute(session_, "CREATE INDEX idx_id ON t (v)").ok());
  EXPECT_FALSE(
      engine_->Execute(session_, "CREATE INDEX idx2 ON t (ghost)").ok());
  Exec("DROP INDEX idx_id ON t");
  EXPECT_FALSE(GetT()->HasIndex("idx_id"));
  EXPECT_FALSE(
      engine_->Execute(session_, "DROP INDEX idx_id ON t").ok());
}

TEST_F(IndexTest, ProbeCutsScannedRows) {
  ResultSet scan = Exec("SELECT v FROM t WHERE id = 7");
  EXPECT_EQ(scan.rows_scanned, 50);
  Exec("CREATE INDEX idx_id ON t (id)");
  ResultSet probe = Exec("SELECT v FROM t WHERE id = 7");
  EXPECT_EQ(probe.rows_scanned, 1);
  // Identical answers either way.
  ASSERT_EQ(probe.rows.size(), 1u);
  EXPECT_EQ(probe.rows[0][0], scan.rows[0][0]);
}

TEST_F(IndexTest, ProbeWorksWithExtraConjunctsAndReversedOperands) {
  Exec("CREATE INDEX idx_grp ON t (grp)");
  ResultSet rs = Exec(
      "SELECT id FROM t WHERE v > 10 AND 'g3' = grp ORDER BY id");
  EXPECT_EQ(rs.rows_scanned, 10);  // one group out of five
  ASSERT_GT(rs.rows.size(), 0u);
  for (const auto& row : rs.rows) {
    EXPECT_EQ(row[0].AsInteger() % 5, 3);
  }
}

TEST_F(IndexTest, NonEqualityStillScansButJoinsProbe) {
  Exec("CREATE INDEX idx_id ON t (id)");
  EXPECT_EQ(Exec("SELECT id FROM t WHERE id > 47").rows_scanned, 50);
  // Multi-table FROM probes too since the planner pushes `col = literal`
  // conjuncts to their source (the old executor scanned 100 rows here).
  EXPECT_EQ(
      Exec("SELECT a.id FROM t a, t b WHERE a.id = 1 AND b.id = 1")
          .rows_scanned,
      2);
}

TEST_F(IndexTest, MaintainedAcrossDml) {
  Exec("CREATE INDEX idx_grp ON t (grp)");
  Exec("INSERT INTO t VALUES (100, 'g3', 1.0)");
  EXPECT_EQ(Exec("SELECT id FROM t WHERE grp = 'g3'").rows.size(), 11u);
  Exec("UPDATE t SET grp = 'g9' WHERE id = 100");
  EXPECT_EQ(Exec("SELECT id FROM t WHERE grp = 'g3'").rows.size(), 10u);
  EXPECT_EQ(Exec("SELECT id FROM t WHERE grp = 'g9'").rows.size(), 1u);
  Exec("DELETE FROM t WHERE grp = 'g9'");
  EXPECT_EQ(Exec("SELECT id FROM t WHERE grp = 'g9'").rows.size(), 0u);
}

TEST_F(IndexTest, MaintainedAcrossRollback) {
  Exec("CREATE INDEX idx_grp ON t (grp)");
  ASSERT_TRUE(engine_->Begin(session_).ok());
  Exec("UPDATE t SET grp = 'moved' WHERE grp = 'g0'");
  EXPECT_EQ(Exec("SELECT id FROM t WHERE grp = 'moved'").rows.size(), 10u);
  ASSERT_TRUE(engine_->Rollback(session_).ok());
  // Undo restored the before-images AND their index entries.
  EXPECT_EQ(Exec("SELECT id FROM t WHERE grp = 'moved'").rows.size(), 0u);
  EXPECT_EQ(Exec("SELECT id FROM t WHERE grp = 'g0'").rows.size(), 10u);
}

TEST_F(IndexTest, IndexDdlRollsBack) {
  ASSERT_TRUE(engine_->Begin(session_).ok());
  Exec("CREATE INDEX idx_id ON t (id)");
  ASSERT_TRUE(engine_->Rollback(session_).ok());
  EXPECT_FALSE(GetT()->HasIndex("idx_id"));

  Exec("CREATE INDEX idx_id ON t (id)");
  ASSERT_TRUE(engine_->Begin(session_).ok());
  Exec("DROP INDEX idx_id ON t");
  ASSERT_TRUE(engine_->Rollback(session_).ok());
  EXPECT_TRUE(GetT()->HasIndex("idx_id"));
  // And the rebuilt index still answers probes correctly.
  EXPECT_EQ(Exec("SELECT v FROM t WHERE id = 3").rows_scanned, 1);
}

TEST_F(IndexTest, NullProbeNeverMatches) {
  Exec("CREATE INDEX idx_grp ON t (grp)");
  Exec("INSERT INTO t (id, v) VALUES (200, 1.0)");  // grp NULL
  // `grp = NULL` is UNKNOWN for every row — including the NULL-keyed one.
  EXPECT_EQ(Exec("SELECT id FROM t WHERE grp = NULL").rows.size(), 0u);
  // IS NULL still finds it (via scan).
  EXPECT_EQ(Exec("SELECT id FROM t WHERE grp IS NULL").rows.size(), 1u);
}

TEST_F(IndexTest, IndexStructureDirectly) {
  Index index("i", 0);
  index.Insert(Value::Integer(1), 10);
  index.Insert(Value::Integer(1), 11);
  index.Insert(Value::Integer(2), 12);
  EXPECT_EQ(index.distinct_keys(), 2u);
  ASSERT_NE(index.Lookup(Value::Integer(1)), nullptr);
  EXPECT_EQ(index.Lookup(Value::Integer(1))->size(), 2u);
  index.Erase(Value::Integer(1), 10);
  EXPECT_EQ(index.Lookup(Value::Integer(1))->size(), 1u);
  index.Erase(Value::Integer(1), 11);
  EXPECT_EQ(index.Lookup(Value::Integer(1)), nullptr);
  EXPECT_EQ(index.Lookup(Value::Integer(9)), nullptr);
  // Cross-numeric keys compare like values: 2 == 2.0.
  EXPECT_NE(index.Lookup(Value::Real(2.0)), nullptr);
}

}  // namespace
}  // namespace msql::relational
