// Values, schemas, tables and result sets of the local engine substrate.
#include <gtest/gtest.h>

#include "relational/result_set.h"
#include "relational/schema.h"
#include "relational/table.h"
#include "relational/value.h"

namespace msql::relational {
namespace {

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value::Null_().is_null());
  EXPECT_TRUE(Value::Integer(1).is_integer());
  EXPECT_TRUE(Value::Real(1.5).is_real());
  EXPECT_TRUE(Value::Text("x").is_text());
  EXPECT_TRUE(Value::Boolean(true).is_boolean());
  EXPECT_TRUE(Value::Integer(1).is_numeric());
  EXPECT_TRUE(Value::Real(1.0).is_numeric());
  EXPECT_FALSE(Value::Text("1").is_numeric());
}

TEST(ValueTest, CrossNumericEquality) {
  EXPECT_EQ(Value::Integer(2), Value::Real(2.0));
  EXPECT_NE(Value::Integer(2), Value::Real(2.5));
  EXPECT_EQ(Value::Null_(), Value::Null_());  // strict equality for tests
  EXPECT_NE(Value::Null_(), Value::Integer(0));
}

TEST(ValueTest, CompareTotalOrder) {
  EXPECT_LT(Value::Null_().Compare(Value::Integer(-100)), 0);
  EXPECT_EQ(Value::Integer(3).Compare(Value::Real(3.0)), 0);
  EXPECT_GT(Value::Text("b").Compare(Value::Text("a")), 0);
  EXPECT_LT(Value::Boolean(false).Compare(Value::Boolean(true)), 0);
}

TEST(ValueTest, SqlLiterals) {
  EXPECT_EQ(Value::Null_().ToSqlLiteral(), "NULL");
  EXPECT_EQ(Value::Integer(-7).ToSqlLiteral(), "-7");
  EXPECT_EQ(Value::Real(2.0).ToSqlLiteral(), "2.0");
  EXPECT_EQ(Value::Text("o'hare").ToSqlLiteral(), "'o''hare'");
  EXPECT_EQ(Value::Boolean(true).ToSqlLiteral(), "TRUE");
}

TEST(ValueTest, CoerceWidensIntToReal) {
  auto v = Value::Integer(4).CoerceTo(Type::kReal);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_real());
  EXPECT_DOUBLE_EQ(v->AsReal(), 4.0);
}

TEST(ValueTest, CoerceExactRealToInt) {
  auto ok = Value::Real(5.0).CoerceTo(Type::kInteger);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->AsInteger(), 5);
  EXPECT_FALSE(Value::Real(5.5).CoerceTo(Type::kInteger).ok());
}

TEST(ValueTest, CoerceRejectsCrossFamilies) {
  EXPECT_FALSE(Value::Text("9").CoerceTo(Type::kInteger).ok());
  EXPECT_FALSE(Value::Integer(1).CoerceTo(Type::kText).ok());
  // NULL fits everywhere.
  EXPECT_TRUE(Value::Null_().CoerceTo(Type::kText).ok());
}

TEST(TypeTest, NamesRoundTrip) {
  EXPECT_EQ(*TypeFromName("integer"), Type::kInteger);
  EXPECT_EQ(*TypeFromName("INT"), Type::kInteger);
  EXPECT_EQ(*TypeFromName("REAL"), Type::kReal);
  EXPECT_EQ(*TypeFromName("varchar"), Type::kText);
  EXPECT_EQ(*TypeFromName("bool"), Type::kBoolean);
  EXPECT_FALSE(TypeFromName("blob").ok());
}

TableSchema MakeCarsSchema() {
  auto schema = TableSchema::Create(
      "Cars", {{"Code", Type::kInteger, 0},
               {"CarType", Type::kText, 16},
               {"Rate", Type::kReal, 0}});
  EXPECT_TRUE(schema.ok());
  return *schema;
}

TEST(SchemaTest, NamesCanonicalizedToLower) {
  TableSchema schema = MakeCarsSchema();
  EXPECT_EQ(schema.table_name(), "cars");
  EXPECT_EQ(schema.column(0).name, "code");
  EXPECT_TRUE(schema.HasColumn("CODE"));
  EXPECT_EQ(*schema.FindColumn("carTYPE"), 1u);
  EXPECT_FALSE(schema.FindColumn("nope").has_value());
}

TEST(SchemaTest, DuplicateColumnRejected) {
  auto bad = TableSchema::Create("t", {{"a", Type::kInteger, 0},
                                       {"A", Type::kText, 0}});
  EXPECT_FALSE(bad.ok());
}

TEST(SchemaTest, MatchColumnsWildcard) {
  TableSchema schema = MakeCarsSchema();
  EXPECT_EQ(schema.MatchColumns("%code"),
            (std::vector<std::string>{"code"}));
  EXPECT_EQ(schema.MatchColumns("c%"),
            (std::vector<std::string>{"code", "cartype"}));
  EXPECT_TRUE(schema.MatchColumns("z%").empty());
}

TEST(SchemaTest, ProjectPreservesOrder) {
  TableSchema schema = MakeCarsSchema();
  auto projected = schema.Project({"rate", "code"});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->column(0).name, "rate");
  EXPECT_EQ(projected->column(1).name, "code");
  EXPECT_FALSE(schema.Project({"ghost"}).ok());
}

TEST(TableTest, InsertCoercesAndCounts) {
  Table table(MakeCarsSchema());
  auto id = table.Insert({Value::Integer(1), Value::Text("suv"),
                          Value::Integer(40)});  // int→real coercion
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(table.live_row_count(), 1u);
  EXPECT_TRUE(table.GetRow(*id)[2].is_real());
}

TEST(TableTest, InsertRejectsBadArityAndType) {
  Table table(MakeCarsSchema());
  EXPECT_FALSE(table.Insert({Value::Integer(1)}).ok());
  EXPECT_FALSE(table.Insert({Value::Text("x"), Value::Text("y"),
                             Value::Real(1.0)}).ok());
  EXPECT_EQ(table.live_row_count(), 0u);
}

TEST(TableTest, DeleteAndResurrectRoundTrip) {
  Table table(MakeCarsSchema());
  RowId id = *table.Insert(
      {Value::Integer(7), Value::Text("van"), Value::Real(30.0)});
  auto removed = table.Delete(id);
  ASSERT_TRUE(removed.ok());
  EXPECT_FALSE(table.IsLive(id));
  EXPECT_EQ(table.live_row_count(), 0u);
  ASSERT_TRUE(table.ResurrectRow(id, *removed).ok());
  EXPECT_TRUE(table.IsLive(id));
  EXPECT_EQ(table.GetRow(id)[0], Value::Integer(7));
  // Double resurrect is an internal error.
  EXPECT_FALSE(table.ResurrectRow(id, *removed).ok());
}

TEST(TableTest, UpdateReturnsBeforeImage) {
  Table table(MakeCarsSchema());
  RowId id = *table.Insert(
      {Value::Integer(1), Value::Text("suv"), Value::Real(40.0)});
  auto before = table.Update(
      id, {Value::Integer(1), Value::Text("suv"), Value::Real(44.0)});
  ASSERT_TRUE(before.ok());
  EXPECT_EQ((*before)[2], Value::Real(40.0));
  EXPECT_EQ(table.GetRow(id)[2], Value::Real(44.0));
}

TEST(TableTest, ScanSkipsTombstones) {
  Table table(MakeCarsSchema());
  RowId a = *table.Insert(
      {Value::Integer(1), Value::Text("a"), Value::Real(1.0)});
  RowId b = *table.Insert(
      {Value::Integer(2), Value::Text("b"), Value::Real(2.0)});
  (void)b;
  ASSERT_TRUE(table.Delete(a).ok());
  auto ids = table.ScanRowIds();
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(table.GetRow(ids[0])[0], Value::Integer(2));
  EXPECT_EQ(table.ScanRows()->size(), 1u);
}

TEST(TableTest, InsertReusesTombstonedSlots) {
  Table table(MakeCarsSchema());
  std::vector<RowId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(*table.Insert(
        {Value::Integer(i), Value::Text("t"), Value::Real(1.0)}));
  }
  EXPECT_EQ(table.slot_count(), 4u);
  ASSERT_TRUE(table.Delete(ids[1]).ok());
  ASSERT_TRUE(table.Delete(ids[3]).ok());
  EXPECT_EQ(table.free_slot_count(), 2u);

  // The next insert takes the lowest tombstoned slot instead of growing
  // the slot array.
  RowId reused = *table.Insert(
      {Value::Integer(10), Value::Text("r"), Value::Real(2.0)});
  EXPECT_EQ(reused, ids[1]);
  EXPECT_EQ(table.slot_count(), 4u);
  EXPECT_EQ(table.free_slot_count(), 1u);
  RowId reused2 = *table.Insert(
      {Value::Integer(11), Value::Text("r"), Value::Real(2.0)});
  EXPECT_EQ(reused2, ids[3]);
  EXPECT_EQ(table.free_slot_count(), 0u);

  // Only once the free list drains does the table grow again.
  RowId grown = *table.Insert(
      {Value::Integer(12), Value::Text("g"), Value::Real(3.0)});
  EXPECT_EQ(grown, 4u);
  EXPECT_EQ(table.slot_count(), 5u);

  // Churning delete/insert in a loop must not leak slots.
  for (int i = 0; i < 100; ++i) {
    RowId id = *table.Insert(
        {Value::Integer(100 + i), Value::Text("x"), Value::Real(1.0)});
    ASSERT_TRUE(table.Delete(id).ok());
  }
  EXPECT_LE(table.slot_count(), 6u);
  EXPECT_EQ(table.live_row_count(), 5u);
}

TEST(ResultSetTest, ToStringRendersTable) {
  ResultSet rs;
  rs.columns = {"a", "longer"};
  rs.rows = {{Value::Integer(1), Value::Text("x")}};
  std::string rendered = rs.ToString();
  EXPECT_NE(rendered.find("| a | longer |"), std::string::npos);
  EXPECT_NE(rendered.find("(1 rows)"), std::string::npos);
}

TEST(ResultSetTest, DmlRendering) {
  ResultSet rs;
  rs.rows_affected = 3;
  EXPECT_EQ(rs.ToString(), "(3 rows affected)\n");
  EXPECT_FALSE(rs.IsQueryResult());
}

TEST(ResultSetTest, SortRowsIsDeterministic) {
  ResultSet rs;
  rs.columns = {"v"};
  rs.rows = {{Value::Integer(3)}, {Value::Integer(1)}, {Value::Integer(2)}};
  rs.SortRows();
  EXPECT_EQ(rs.rows[0][0], Value::Integer(1));
  EXPECT_EQ(rs.rows[2][0], Value::Integer(3));
}

}  // namespace
}  // namespace msql::relational
