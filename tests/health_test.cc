// Per-site health registry (DESIGN.md §11): rolling verdicts derived
// from the rpc instrumentation — healthy / degraded / unreachable —
// always on, independent of the tracer and metrics toggles.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/fixtures.h"
#include "core/mdbs_system.h"
#include "dol/engine.h"
#include "netsim/fault_injector.h"
#include "obs/health.h"

namespace msql::core {
namespace {

using dol::RetryPolicy;
using netsim::FaultAction;
using netsim::FaultPlan;
using netsim::FaultRule;
using netsim::LamRequestType;
using obs::HealthState;
using obs::SiteHealth;

constexpr const char* kMultipleQuery =
    "USE avis national\n"
    "LET car.type.status BE cars.cartype.carst vehicle.vty.vstat\n"
    "SELECT %code, type, ~rate\n"
    "FROM car\n"
    "WHERE status = 'available'";

constexpr const char* kFareRaise =
    "USE continental VITAL delta united VITAL\n"
    "UPDATE flight% SET rate% = rate% * 1.1\n"
    "WHERE sour% = 'Houston' AND dest% = 'San Antonio'";

// SiteHealth state machine: failures degrade, enough consecutive
// failures declare the site unreachable, a success re-opens it, and a
// full clean window restores healthy.
TEST(SiteHealthTest, StateTransitionsFollowTheWindow) {
  SiteHealth h;
  EXPECT_EQ(h.state(), HealthState::kHealthy);
  h.Record(true, false, false, 100);
  EXPECT_EQ(h.state(), HealthState::kHealthy);
  h.Record(false, false, true, 100);
  EXPECT_EQ(h.state(), HealthState::kDegraded);
  for (int i = 1; i < SiteHealth::kUnreachableAfter; ++i) {
    h.Record(false, true, false, 0);
  }
  EXPECT_EQ(h.state(), HealthState::kUnreachable);
  EXPECT_EQ(h.consecutive_failures(), SiteHealth::kUnreachableAfter);
  // One success: reachable again, but the window still remembers.
  h.Record(true, false, false, 100);
  EXPECT_EQ(h.state(), HealthState::kDegraded);
  EXPECT_EQ(h.consecutive_failures(), 0);
  // A full clean window flushes the failures out.
  for (int i = 0; i < SiteHealth::kWindow; ++i) {
    h.Record(true, false, false, 100);
  }
  EXPECT_EQ(h.state(), HealthState::kHealthy);
  EXPECT_EQ(h.window_failures(), 0);
  // Totals are cumulative, not windowed.
  EXPECT_EQ(h.failures(), SiteHealth::kUnreachableAfter);
  EXPECT_EQ(h.timeouts(), SiteHealth::kUnreachableAfter - 1);
  EXPECT_EQ(h.faults(), 1);
}

// The registry is always on: a plain federation (no tracer, no
// metrics) still knows which sites it talked to after one input.
TEST(HealthRegistryTest, AlwaysOnWithoutTracerOrMetrics) {
  auto sys_or = BuildPaperFederation();
  ASSERT_TRUE(sys_or.ok()) << sys_or.status();
  auto sys = std::move(*sys_or);
  ASSERT_FALSE(sys->environment().tracer().enabled());
  // Bootstrap (INCORPORATE/IMPORT) already talked to every site; start
  // the observation window at the query.
  sys->environment().health().Clear();
  auto report = sys->Execute(kMultipleQuery);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->outcome, GlobalOutcome::kSuccess);

  auto& health = sys->environment().health();
  for (const char* svc : {"avis_svc", "national_svc"}) {
    const SiteHealth* site = health.Get(svc);
    ASSERT_NE(site, nullptr) << svc;
    EXPECT_EQ(site->state(), HealthState::kHealthy) << svc;
    EXPECT_GT(site->attempts(), 0) << svc;
    EXPECT_EQ(site->failures(), 0) << svc;
    EXPECT_GT(site->latency().Quantile(0.5), 0) << svc;
  }
  EXPECT_EQ(health.SiteOf("avis_svc"), "site_avis");
  // Never-called services have no entry.
  EXPECT_EQ(health.Get("united_svc"), nullptr);
}

// Transient faults absorbed by retries still mark the site degraded:
// the input succeeded, but an operator can see the site misbehaved.
TEST(HealthRegistryTest, AbsorbedTransientFaultsDegradeTheSite) {
  auto sys_or = BuildPaperFederation();
  ASSERT_TRUE(sys_or.ok()) << sys_or.status();
  auto sys = std::move(*sys_or);
  sys->set_retry_policy(RetryPolicy::WithAttempts(3));
  FaultPlan plan;
  plan.rules.push_back(FaultRule::Transient(
      "united_svc", LamRequestType::kExecute, /*k=*/2));
  sys->environment().fault_injector().SetPlan(plan);
  auto report = sys->Execute(kFareRaise);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kSuccess);

  auto& health = sys->environment().health();
  const SiteHealth* united = health.Get("united_svc");
  ASSERT_NE(united, nullptr);
  EXPECT_EQ(united->state(), HealthState::kDegraded);
  EXPECT_EQ(united->failures(), 2);
  EXPECT_EQ(united->faults(), 2);
  // The healthy sites are unaffected by united's trouble.
  const SiteHealth* delta = health.Get("delta_svc");
  ASSERT_NE(delta, nullptr);
  EXPECT_EQ(delta->state(), HealthState::kHealthy);
}

// A site rejecting everything goes unreachable once the retry budget
// burns kUnreachableAfter consecutive failures into its history.
TEST(HealthRegistryTest, PersistentRejectionTurnsUnreachable) {
  auto sys_or = BuildPaperFederation();
  ASSERT_TRUE(sys_or.ok()) << sys_or.status();
  auto sys = std::move(*sys_or);
  sys->set_retry_policy(RetryPolicy::WithAttempts(5));
  FaultRule down;
  down.service = "united_svc";
  down.request_type = std::nullopt;  // every verb
  down.action = FaultAction::kReject;
  down.count = -1;  // forever
  FaultPlan plan;
  plan.rules.push_back(down);
  sys->environment().fault_injector().SetPlan(plan);
  sys->environment().health().Clear();  // drop the bootstrap history
  auto report = sys->Execute(kFareRaise);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kAborted);

  const SiteHealth* united = sys->environment().health().Get("united_svc");
  ASSERT_NE(united, nullptr);
  EXPECT_EQ(united->state(), HealthState::kUnreachable);
  EXPECT_GE(united->consecutive_failures(), SiteHealth::kUnreachableAfter);
  EXPECT_EQ(united->failures(), united->attempts());
}

// The rendered table is deterministic, sorted and complete.
TEST(HealthRegistryTest, RenderTextIsDeterministic) {
  auto sys_or = BuildPaperFederation();
  ASSERT_TRUE(sys_or.ok()) << sys_or.status();
  auto sys = std::move(*sys_or);
  auto& health = sys->environment().health();
  health.Clear();  // drop the bootstrap history
  EXPECT_NE(health.RenderText().find("(no calls recorded)"),
            std::string::npos);

  auto report = sys->Execute(kMultipleQuery);
  ASSERT_TRUE(report.ok()) << report.status();
  std::string first = health.RenderText();
  EXPECT_EQ(first, health.RenderText());
  for (const char* needle :
       {"service", "state", "p50_us", "p95_us", "p99_us", "avis_svc",
        "national_svc", "site_avis", "healthy"}) {
    EXPECT_NE(first.find(needle), std::string::npos) << needle;
  }
  // avis sorts before national.
  EXPECT_LT(first.find("avis_svc"), first.find("national_svc"));

  health.Clear();
  EXPECT_EQ(health.Get("avis_svc"), nullptr);
  EXPECT_NE(health.RenderText().find("(no calls recorded)"),
            std::string::npos);
}

}  // namespace
}  // namespace msql::core
