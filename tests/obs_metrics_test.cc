// Histogram / MetricsRegistry edge cases (DESIGN.md §9/§11): quantile
// semantics at the bucket boundaries, the p50/p95/p99 dump columns and
// the counter snapshot the profiler diffs.
#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"

namespace msql::obs {
namespace {

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Quantile(0.0), 0);
  EXPECT_EQ(h.Quantile(0.5), 0);
  EXPECT_EQ(h.Quantile(1.0), 0);
}

TEST(HistogramTest, AllZeroSamplesStayZeroAtEveryQuantile) {
  Histogram h;
  for (int i = 0; i < 5; ++i) h.Observe(0);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.Quantile(0.0), 0);
  EXPECT_EQ(h.Quantile(0.99), 0);
  EXPECT_EQ(h.Quantile(1.0), 0);
}

TEST(HistogramTest, SingleSampleAnswersEveryQuantileWithItself) {
  Histogram h;
  h.Observe(7);
  EXPECT_EQ(h.min(), 7);
  EXPECT_EQ(h.max(), 7);
  // A single sample has rank 0 for every q; the bucket upper bound (7
  // for bucket [4,8)) is clamped to the observed max.
  EXPECT_EQ(h.Quantile(0.0), 7);
  EXPECT_EQ(h.Quantile(0.5), 7);
  EXPECT_EQ(h.Quantile(1.0), 7);
}

TEST(HistogramTest, QuantileZeroAndOneHitTheExtremeBuckets) {
  Histogram h;
  // One sample per power-of-two bucket boundary: buckets 1..4.
  for (int64_t v : {1, 2, 4, 8}) h.Observe(v);
  // q=0 → rank 0 → first occupied bucket, upper bound 1.
  EXPECT_EQ(h.Quantile(0.0), 1);
  // q=1 → rank 3 → the bucket of 8 ([8,16), upper 15) clamped to max 8.
  EXPECT_EQ(h.Quantile(1.0), 8);
  // q=0.5 → rank 1 → bucket of 2 ([2,4)), upper bound 3: the factor-of-
  // two resolution the log2 bucketing promises, no better.
  EXPECT_EQ(h.Quantile(0.5), 3);
}

TEST(HistogramTest, ExactPowerOfTwoLandsInItsHalfOpenBucket) {
  Histogram h;
  h.Observe(8);  // bucket [8,16): upper bound 15, clamped to max
  EXPECT_EQ(h.Quantile(0.5), 8);
  h.Observe(9);
  // Same bucket; upper bound 15 now clamps to max 9.
  EXPECT_EQ(h.Quantile(1.0), 9);
}

TEST(HistogramTest, NegativeSamplesClampToZero) {
  Histogram h;
  h.Observe(-5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.Quantile(1.0), 0);
}

TEST(MetricsRegistryTest, DumpCarriesAllThreeQuantileColumns) {
  MetricsRegistry metrics;
  metrics.set_enabled(true);
  metrics.Inc("rpc.calls", 3);
  for (int64_t v : {100, 200, 400, 800}) {
    metrics.Observe("rpc.sim_micros", v);
  }
  std::string dump = metrics.Dump();
  EXPECT_NE(dump.find("rpc.calls = 3"), std::string::npos);
  EXPECT_NE(dump.find(" p50="), std::string::npos);
  EXPECT_NE(dump.find(" p95="), std::string::npos);
  EXPECT_NE(dump.find(" p99="), std::string::npos);
  // Rank truncation: p99 of four samples is rank floor(.99*3)=2 — the
  // 400 sample's bucket [256,512), upper bound 511.
  EXPECT_NE(dump.find(" p99=511 "), std::string::npos);
  EXPECT_NE(dump.find(" max=800"), std::string::npos);
}

TEST(MetricsRegistryTest, CounterSnapshotDiffsAttributeGrowth) {
  MetricsRegistry metrics;
  metrics.set_enabled(true);
  metrics.Inc("dol.runs");
  auto before = metrics.CounterSnapshot();
  metrics.Inc("dol.runs");
  metrics.Inc("dol.tasks", 4);
  auto after = metrics.CounterSnapshot();
  EXPECT_EQ(after["dol.runs"] - before["dol.runs"], 1);
  EXPECT_EQ(after["dol.tasks"] - before["dol.tasks"], 4);
  // The snapshot is a copy, not a view.
  metrics.Inc("dol.runs");
  EXPECT_EQ(after["dol.runs"], 2);
}

}  // namespace
}  // namespace msql::obs
