// Local transaction semantics: undo, prepared-to-commit, capability
// profiles (the §3.2.2 Ingres-vs-Oracle DDL heterogeneity) and failure
// injection (experiment E9).
#include <gtest/gtest.h>

#include <memory>

#include "relational/engine.h"

namespace msql::relational {
namespace {

std::unique_ptr<LocalEngine> MakeEngine(CapabilityProfile profile) {
  auto engine = std::make_unique<LocalEngine>("svc", std::move(profile));
  EXPECT_TRUE(engine->CreateDatabase("db").ok());
  SessionId boot = *engine->OpenSession("db");
  EXPECT_TRUE(engine
                  ->Execute(boot,
                            "CREATE TABLE t (id INTEGER, v TEXT)")
                  .ok());
  EXPECT_TRUE(engine
                  ->Execute(boot,
                            "INSERT INTO t VALUES (1, 'a'), (2, 'b')")
                  .ok());
  EXPECT_TRUE(engine->CloseSession(boot).ok());
  return engine;
}

int64_t CountRows(LocalEngine* engine, SessionId session) {
  auto rs = engine->Execute(session, "SELECT COUNT(*) FROM t");
  EXPECT_TRUE(rs.ok());
  return rs->rows[0][0].AsInteger();
}

TEST(TxnTest, AutocommitIsImmediatelyDurable) {
  auto engine = MakeEngine(CapabilityProfile::IngresLike());
  SessionId s = *engine->OpenSession("db");
  ASSERT_TRUE(engine->Execute(s, "INSERT INTO t VALUES (3, 'c')").ok());
  EXPECT_EQ(*engine->GetTxnState(s), TxnState::kCommitted);
  EXPECT_EQ(CountRows(engine.get(), s), 3);
}

TEST(TxnTest, RollbackUndoesDmlInReverse) {
  auto engine = MakeEngine(CapabilityProfile::IngresLike());
  SessionId s = *engine->OpenSession("db");
  ASSERT_TRUE(engine->Begin(s).ok());
  ASSERT_TRUE(engine->Execute(s, "INSERT INTO t VALUES (3, 'c')").ok());
  ASSERT_TRUE(
      engine->Execute(s, "UPDATE t SET v = 'zz' WHERE id = 1").ok());
  ASSERT_TRUE(engine->Execute(s, "DELETE FROM t WHERE id = 2").ok());
  EXPECT_EQ(CountRows(engine.get(), s), 2);  // own writes visible
  ASSERT_TRUE(engine->Rollback(s).ok());
  EXPECT_EQ(CountRows(engine.get(), s), 2);
  auto v = engine->Execute(s, "SELECT v FROM t WHERE id = 1");
  EXPECT_EQ((*v).rows[0][0], Value::Text("a"));  // update undone
  auto restored = engine->Execute(s, "SELECT v FROM t WHERE id = 2");
  EXPECT_EQ((*restored).rows.size(), 1u);  // delete undone
}

TEST(TxnTest, CommitMakesChangesPermanent) {
  auto engine = MakeEngine(CapabilityProfile::IngresLike());
  SessionId s = *engine->OpenSession("db");
  ASSERT_TRUE(engine->Begin(s).ok());
  ASSERT_TRUE(engine->Execute(s, "DELETE FROM t WHERE id = 1").ok());
  ASSERT_TRUE(engine->Commit(s).ok());
  EXPECT_EQ(CountRows(engine.get(), s), 1);
}

TEST(TxnTest, PreparedStateLifecycle) {
  auto engine = MakeEngine(CapabilityProfile::IngresLike());
  SessionId s = *engine->OpenSession("db");
  ASSERT_TRUE(engine->Begin(s).ok());
  ASSERT_TRUE(engine->Execute(s, "INSERT INTO t VALUES (9, 'p')").ok());
  ASSERT_TRUE(engine->Prepare(s).ok());
  EXPECT_EQ(*engine->GetTxnState(s), TxnState::kPrepared);
  // No statements while prepared.
  EXPECT_FALSE(engine->Execute(s, "SELECT * FROM t").ok());
  // But commit is allowed.
  ASSERT_TRUE(engine->Commit(s).ok());
  EXPECT_EQ(*engine->GetTxnState(s), TxnState::kCommitted);
  EXPECT_EQ(CountRows(engine.get(), s), 3);
}

TEST(TxnTest, PreparedThenRollback) {
  auto engine = MakeEngine(CapabilityProfile::IngresLike());
  SessionId s = *engine->OpenSession("db");
  ASSERT_TRUE(engine->Begin(s).ok());
  ASSERT_TRUE(engine->Execute(s, "INSERT INTO t VALUES (9, 'p')").ok());
  ASSERT_TRUE(engine->Prepare(s).ok());
  ASSERT_TRUE(engine->Rollback(s).ok());
  EXPECT_EQ(CountRows(engine.get(), s), 2);
}

TEST(TxnTest, AutocommitOnlyEngineRefusesPrepare) {
  auto engine = MakeEngine(CapabilityProfile::SybaseLike());
  SessionId s = *engine->OpenSession("db");
  ASSERT_TRUE(engine->Begin(s).ok());
  ASSERT_TRUE(engine->Execute(s, "INSERT INTO t VALUES (9, 'p')").ok());
  Status prep = engine->Prepare(s);
  EXPECT_EQ(prep.code(), StatusCode::kTransactionError);
  // The transaction itself is still usable and can be rolled back.
  ASSERT_TRUE(engine->Rollback(s).ok());
  EXPECT_EQ(CountRows(engine.get(), s), 2);
}

TEST(TxnTest, IngresLikeDdlRollsBack) {
  auto engine = MakeEngine(CapabilityProfile::IngresLike());
  SessionId s = *engine->OpenSession("db");
  ASSERT_TRUE(engine->Begin(s).ok());
  ASSERT_TRUE(engine->Execute(s, "CREATE TABLE t2 (x INTEGER)").ok());
  ASSERT_TRUE(engine->Execute(s, "INSERT INTO t2 VALUES (1)").ok());
  ASSERT_TRUE(engine->Rollback(s).ok());
  // The created table vanished with the rollback.
  EXPECT_FALSE(engine->Execute(s, "SELECT * FROM t2").ok());
}

TEST(TxnTest, IngresLikeDropRollsBackWithData) {
  auto engine = MakeEngine(CapabilityProfile::IngresLike());
  SessionId s = *engine->OpenSession("db");
  ASSERT_TRUE(engine->Begin(s).ok());
  ASSERT_TRUE(engine->Execute(s, "DROP TABLE t").ok());
  EXPECT_FALSE(engine->Execute(s, "SELECT * FROM t").ok());
  // Statement failure aborted the txn — t must be back, data intact.
  SessionId s2 = *engine->OpenSession("db");
  EXPECT_EQ(CountRows(engine.get(), s2), 2);
}

TEST(TxnTest, OracleLikeDdlCommitsPriorWork) {
  // "another automatically commits them together with all previously
  // issued uncommitted statements" (§3.2.2).
  auto engine = MakeEngine(CapabilityProfile::OracleLike());
  SessionId s = *engine->OpenSession("db");
  ASSERT_TRUE(engine->Begin(s).ok());
  ASSERT_TRUE(engine->Execute(s, "INSERT INTO t VALUES (3, 'c')").ok());
  ASSERT_TRUE(engine->Execute(s, "CREATE TABLE t2 (x INTEGER)").ok());
  // Rolling back now must NOT undo the insert: the DDL committed it.
  ASSERT_TRUE(engine->Rollback(s).ok());
  EXPECT_EQ(CountRows(engine.get(), s), 3);
  // And the created table survives too.
  EXPECT_TRUE(engine->Execute(s, "SELECT * FROM t2").ok());
}

TEST(TxnTest, LockConflictAbortsImmediately) {
  auto engine = MakeEngine(CapabilityProfile::IngresLike());
  SessionId writer = *engine->OpenSession("db");
  SessionId reader = *engine->OpenSession("db");
  ASSERT_TRUE(engine->Begin(writer).ok());
  ASSERT_TRUE(
      engine->Execute(writer, "UPDATE t SET v = 'w' WHERE id = 1").ok());
  // Reader needs a shared lock on t — conflicts with the exclusive one.
  auto read = engine->Execute(reader, "SELECT * FROM t");
  EXPECT_EQ(read.status().code(), StatusCode::kAborted);
  ASSERT_TRUE(engine->Commit(writer).ok());
  // After commit the lock is gone.
  EXPECT_TRUE(engine->Execute(reader, "SELECT * FROM t").ok());
}

TEST(TxnTest, SharedLocksCoexist) {
  auto engine = MakeEngine(CapabilityProfile::IngresLike());
  SessionId a = *engine->OpenSession("db");
  SessionId b = *engine->OpenSession("db");
  ASSERT_TRUE(engine->Begin(a).ok());
  ASSERT_TRUE(engine->Begin(b).ok());
  EXPECT_TRUE(engine->Execute(a, "SELECT * FROM t").ok());
  EXPECT_TRUE(engine->Execute(b, "SELECT * FROM t").ok());
  // But now an upgrade by a conflicts with b's shared lock.
  auto upgrade = engine->Execute(a, "DELETE FROM t");
  EXPECT_EQ(upgrade.status().code(), StatusCode::kAborted);
}

TEST(TxnTest, CloseSessionAbortsOpenTransaction) {
  auto engine = MakeEngine(CapabilityProfile::IngresLike());
  SessionId s = *engine->OpenSession("db");
  ASSERT_TRUE(engine->Begin(s).ok());
  ASSERT_TRUE(engine->Execute(s, "DELETE FROM t").ok());
  ASSERT_TRUE(engine->CloseSession(s).ok());
  SessionId s2 = *engine->OpenSession("db");
  EXPECT_EQ(CountRows(engine.get(), s2), 2);  // delete rolled back
}

TEST(TxnTest, InjectedStatementFailureAbortsTxn) {
  auto engine = MakeEngine(CapabilityProfile::IngresLike());
  SessionId s = *engine->OpenSession("db");
  ASSERT_TRUE(engine->Begin(s).ok());
  ASSERT_TRUE(engine->Execute(s, "DELETE FROM t WHERE id = 1").ok());
  engine->InjectFailure(FailPoint::kNextStatement);
  auto result = engine->Execute(s, "DELETE FROM t WHERE id = 2");
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  EXPECT_EQ(*engine->GetTxnState(s), TxnState::kAborted);
  EXPECT_EQ(CountRows(engine.get(), s), 2);  // first delete undone too
}

TEST(TxnTest, InjectedPrepareFailure) {
  auto engine = MakeEngine(CapabilityProfile::IngresLike());
  SessionId s = *engine->OpenSession("db");
  ASSERT_TRUE(engine->Begin(s).ok());
  ASSERT_TRUE(engine->Execute(s, "DELETE FROM t").ok());
  engine->InjectFailure(FailPoint::kNextPrepare);
  EXPECT_EQ(engine->Prepare(s).code(), StatusCode::kAborted);
  EXPECT_EQ(*engine->GetTxnState(s), TxnState::kAborted);
  EXPECT_EQ(CountRows(engine.get(), s), 2);
}

TEST(TxnTest, InjectedCommitFailure) {
  auto engine = MakeEngine(CapabilityProfile::IngresLike());
  SessionId s = *engine->OpenSession("db");
  ASSERT_TRUE(engine->Begin(s).ok());
  ASSERT_TRUE(engine->Execute(s, "DELETE FROM t").ok());
  ASSERT_TRUE(engine->Prepare(s).ok());
  engine->InjectFailure(FailPoint::kNextCommit);
  EXPECT_EQ(engine->Commit(s).code(), StatusCode::kAborted);
  EXPECT_EQ(CountRows(engine.get(), s), 2);
  EXPECT_EQ(engine->stats().injected_failures, 1);
}

TEST(TxnTest, StatsAccumulate) {
  auto engine = MakeEngine(CapabilityProfile::IngresLike());
  SessionId s = *engine->OpenSession("db");
  ASSERT_TRUE(engine->Execute(s, "SELECT * FROM t").ok());
  ASSERT_TRUE(engine->Execute(s, "DELETE FROM t WHERE id = 1").ok());
  EXPECT_GE(engine->stats().statements_executed, 2);
  EXPECT_EQ(engine->stats().rows_read, 2);
  // 2 rows from the bootstrap INSERT + 1 deleted here.
  EXPECT_EQ(engine->stats().rows_written, 3);
  EXPECT_GE(engine->stats().commits, 2);  // two autocommits
}

TEST(TxnTest, NoconnectServesSingleDefaultDatabase) {
  LocalEngine engine("svc", CapabilityProfile::SybaseLike());
  ASSERT_TRUE(engine.CreateDatabase("only").ok());
  // A second database is refused on NOCONNECT services.
  EXPECT_EQ(engine.CreateDatabase("more").code(),
            StatusCode::kInvalidArgument);
  // An empty name selects the default database.
  auto s = engine.OpenSession("");
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(engine.Execute(*s, "CREATE TABLE x (a INTEGER)").ok());
}

}  // namespace
}  // namespace msql::relational
