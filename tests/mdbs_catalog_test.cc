// Auxiliary Directory, Global Data Dictionary, INCORPORATE and IMPORT
// (experiment E2, Figure 2's schema architecture).
#include <gtest/gtest.h>

#include <memory>

#include "mdbs/auxiliary_directory.h"
#include "mdbs/catalog_ops.h"
#include "mdbs/global_data_dictionary.h"
#include "netsim/environment.h"
#include "relational/engine.h"

namespace msql::mdbs {
namespace {

using relational::CapabilityProfile;
using relational::LocalEngine;
using relational::Type;

TEST(AuxiliaryDirectoryTest, IncorporateReplaceLookup) {
  AuxiliaryDirectory ad;
  ServiceDescriptor svc;
  svc.name = "Oracle_Svc";
  svc.site = "Site1";
  svc.autocommit_only = false;
  ad.Incorporate(svc);
  ASSERT_TRUE(ad.HasService("oracle_svc"));
  auto got = ad.GetService("ORACLE_SVC");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->site, "site1");
  EXPECT_TRUE((*got)->SupportsTwoPhaseCommit());

  // Re-incorporation replaces the entry.
  svc.autocommit_only = true;
  ad.Incorporate(svc);
  EXPECT_FALSE((*ad.GetService("oracle_svc"))->SupportsTwoPhaseCommit());
  EXPECT_EQ(ad.size(), 1u);

  EXPECT_TRUE(ad.RemoveService("oracle_svc").ok());
  EXPECT_EQ(ad.GetService("oracle_svc").status().code(),
            StatusCode::kNotFound);
}

TEST(AuxiliaryDirectoryTest, IncorporateSqlRendering) {
  ServiceDescriptor svc;
  svc.name = "s";
  svc.site = "x";
  svc.connect_mode = false;
  svc.autocommit_only = true;
  svc.ddl_modes.create_autocommits = true;
  std::string sql = svc.ToIncorporateSql();
  EXPECT_NE(sql.find("CONNECTMODE NOCONNECT"), std::string::npos);
  EXPECT_NE(sql.find("COMMITMODE COMMIT"), std::string::npos);
  EXPECT_NE(sql.find("CREATE COMMIT"), std::string::npos);
  EXPECT_NE(sql.find("INSERT NOCOMMIT"), std::string::npos);
}

relational::TableSchema MakeSchema(const std::string& table) {
  return *relational::TableSchema::Create(
      table, {{"id", Type::kInteger, 0}, {"name", Type::kText, 20}});
}

TEST(GddTest, RegisterAndUniqueNames) {
  GlobalDataDictionary gdd;
  ASSERT_TRUE(gdd.RegisterDatabase("avis", "svc1").ok());
  // Idempotent for the same service.
  EXPECT_TRUE(gdd.RegisterDatabase("avis", "svc1").ok());
  // Conflicting service violates federation-unique database names.
  EXPECT_EQ(gdd.RegisterDatabase("avis", "svc2").code(),
            StatusCode::kAlreadyExists);
}

TEST(GddTest, TableLifecycleAndReplacement) {
  GlobalDataDictionary gdd;
  ASSERT_TRUE(gdd.RegisterDatabase("avis", "svc").ok());
  ASSERT_TRUE(gdd.PutTable("avis", MakeSchema("cars")).ok());
  EXPECT_TRUE(gdd.HasTable("avis", "CARS"));
  EXPECT_EQ(gdd.TotalTableCount(), 1u);

  // IMPORT replaces previous definitions.
  auto partial = *relational::TableSchema::Create(
      "cars", {{"id", Type::kInteger, 0}});
  ASSERT_TRUE(gdd.PutTable("avis", partial).ok());
  auto table = gdd.GetTable("avis", "cars");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_columns(), 1u);

  EXPECT_TRUE(gdd.RemoveTable("avis", "cars").ok());
  EXPECT_FALSE(gdd.HasTable("avis", "cars"));
  EXPECT_EQ(gdd.RemoveTable("avis", "cars").code(), StatusCode::kNotFound);
}

TEST(GddTest, WildcardMatching) {
  GlobalDataDictionary gdd;
  ASSERT_TRUE(gdd.RegisterDatabase("db", "svc").ok());
  ASSERT_TRUE(gdd.PutTable("db", MakeSchema("flight")).ok());
  ASSERT_TRUE(gdd.PutTable("db", MakeSchema("flights")).ok());
  ASSERT_TRUE(gdd.PutTable("db", MakeSchema("cars")).ok());
  auto tables = gdd.MatchTables("db", "flight%");
  ASSERT_TRUE(tables.ok());
  EXPECT_EQ(*tables, (std::vector<std::string>{"flight", "flights"}));
  auto cols = gdd.MatchColumns("db", "cars", "%id");
  ASSERT_TRUE(cols.ok());
  EXPECT_EQ(*cols, (std::vector<std::string>{"id"}));
  EXPECT_EQ(gdd.MatchTables("ghost", "%").status().code(),
            StatusCode::kNotFound);
}

TEST(GddTest, StatsRoundTripVersioningAndFreshness) {
  GlobalDataDictionary gdd;
  ASSERT_TRUE(gdd.RegisterDatabase("avis", "svc").ok());
  // ANALYZE before IMPORT is rejected: stats attach to a known table.
  TableStats stats;
  stats.row_count = 42;
  stats.avg_row_bytes = 16.0;
  stats.columns["id"] = ColumnStats{7, "1", "99", 8.0};
  EXPECT_EQ(gdd.PutTableStats("avis", "cars", stats).code(),
            StatusCode::kNotFound);

  ASSERT_TRUE(gdd.PutTable("avis", MakeSchema("cars")).ok());
  ASSERT_TRUE(gdd.PutTableStats("avis", "cars", stats).ok());
  auto got = gdd.GetTableStats("avis", "CARS");
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ((*got)->row_count, 42);
  EXPECT_EQ((*got)->version, 1);
  ASSERT_EQ((*got)->columns.count("id"), 1u);
  EXPECT_EQ((*got)->columns.at("id").distinct_values, 7);
  EXPECT_EQ((*got)->columns.at("id").min_value, "1");
  EXPECT_EQ((*got)->columns.at("id").max_value, "99");
  EXPECT_TRUE(gdd.TableStatsFresh("avis", "cars"));

  // Re-ANALYZE bumps the version, even via a caller-supplied snapshot.
  ASSERT_TRUE(gdd.PutTableStats("avis", "cars", stats).ok());
  EXPECT_EQ((*gdd.GetTableStats("avis", "cars"))->version, 2);

  // A re-IMPORT bumps the schema generation: the stats survive for
  // inspection but are no longer fresh until the next ANALYZE.
  ASSERT_TRUE(gdd.PutTable("avis", MakeSchema("cars")).ok());
  EXPECT_TRUE(gdd.GetTableStats("avis", "cars").ok());
  EXPECT_FALSE(gdd.TableStatsFresh("avis", "cars"));
  ASSERT_TRUE(gdd.PutTableStats("avis", "cars", stats).ok());
  EXPECT_TRUE(gdd.TableStatsFresh("avis", "cars"));
  EXPECT_EQ((*gdd.GetTableStats("avis", "cars"))->version, 3);

  // Unknown objects surface kNotFound; removal erases the stats too.
  EXPECT_EQ(gdd.GetTableStats("avis", "ghost").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(gdd.GetTableStats("ghost", "cars").status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(gdd.TableStatsFresh("avis", "ghost"));
  ASSERT_TRUE(gdd.RemoveTable("avis", "cars").ok());
  EXPECT_EQ(gdd.GetTableStats("avis", "cars").status().code(),
            StatusCode::kNotFound);
}

TEST(GddTest, WriteChurnStalesStatsPastThreshold) {
  GlobalDataDictionary gdd;
  ASSERT_TRUE(gdd.RegisterDatabase("avis", "svc").ok());
  ASSERT_TRUE(gdd.PutTable("avis", MakeSchema("cars")).ok());
  TableStats stats;
  stats.row_count = 100;
  ASSERT_TRUE(gdd.PutTableStats("avis", "cars", stats).ok());
  ASSERT_TRUE(gdd.TableStatsFresh("avis", "cars"));

  // Default threshold: max(64, 0.2 × 100) = 64 written rows.
  gdd.RecordWriteChurn("avis", "cars", 60);
  EXPECT_EQ(gdd.WriteChurn("avis", "cars"), 60);
  EXPECT_TRUE(gdd.TableStatsFresh("avis", "cars"));
  gdd.RecordWriteChurn("avis", "CARS", 5);  // case-insensitive
  EXPECT_EQ(gdd.WriteChurn("avis", "cars"), 65);
  EXPECT_FALSE(gdd.TableStatsFresh("avis", "cars"));

  // A fresh ANALYZE snapshot resets the counter.
  ASSERT_TRUE(gdd.PutTableStats("avis", "cars", stats).ok());
  EXPECT_EQ(gdd.WriteChurn("avis", "cars"), 0);
  EXPECT_TRUE(gdd.TableStatsFresh("avis", "cars"));

  // Tunable limit: with a low floor the fraction term dominates and
  // the boundary is inclusive (churn must exceed the allowance).
  gdd.set_stats_churn_limit(0.1, 5);
  gdd.RecordWriteChurn("avis", "cars", 10);
  EXPECT_TRUE(gdd.TableStatsFresh("avis", "cars"));  // 10 <= max(5, 10)
  gdd.RecordWriteChurn("avis", "cars", 1);
  EXPECT_FALSE(gdd.TableStatsFresh("avis", "cars"));

  // Writes through unknown objects stale nothing (and never throw).
  gdd.RecordWriteChurn("avis", "ghost", 1000);
  gdd.RecordWriteChurn("ghost", "cars", 1000);
  EXPECT_EQ(gdd.WriteChurn("avis", "ghost"), 0);
  // Non-positive deltas are ignored.
  gdd.RecordWriteChurn("avis", "cars", 0);
  gdd.RecordWriteChurn("avis", "cars", -5);
  EXPECT_EQ(gdd.WriteChurn("avis", "cars"), 11);
}

class CatalogOpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto engine = std::make_unique<LocalEngine>(
        "svc", CapabilityProfile::IngresLike());
    ASSERT_TRUE(engine->CreateDatabase("avis").ok());
    auto s = *engine->OpenSession("avis");
    ASSERT_TRUE(engine
                    ->Execute(s,
                              "CREATE TABLE cars (code INTEGER, "
                              "cartype TEXT(16), rate REAL)")
                    .ok());
    ASSERT_TRUE(engine
                    ->Execute(s,
                              "CREATE TABLE staff (sid INTEGER, "
                              "name TEXT(30))")
                    .ok());
    // A few rows (with NULLs and duplicates) so ANALYZE has something
    // to measure: code has 2 distinct non-NULL values over 4 rows.
    ASSERT_TRUE(engine
                    ->Execute(s,
                              "INSERT INTO cars VALUES "
                              "(1, 'economy', 10.0), (2, 'suv', 20.0), "
                              "(2, 'suv', NULL), (NULL, 'van', 30.0)")
                    .ok());
    ASSERT_TRUE(env_.AddService("svc", "site1", std::move(engine)).ok());
  }

  netsim::Environment env_;
  AuxiliaryDirectory ad_;
  GlobalDataDictionary gdd_;
};

TEST_F(CatalogOpsTest, IncorporateVerifiesReachability) {
  ServiceDescriptor svc;
  svc.name = "svc";
  svc.site = "site1";
  EXPECT_TRUE(IncorporateService(&env_, &ad_, svc).ok());
  EXPECT_TRUE(ad_.HasService("svc"));

  ServiceDescriptor ghost;
  ghost.name = "ghost";
  EXPECT_EQ(IncorporateService(&env_, &ad_, ghost).code(),
            StatusCode::kNotFound);

  ASSERT_TRUE(env_.network().SetSiteDown("site1", true).ok());
  ServiceDescriptor again = svc;
  EXPECT_EQ(IncorporateService(&env_, &ad_, again).code(),
            StatusCode::kUnavailable);
}

TEST_F(CatalogOpsTest, ImportWholeDatabase) {
  ServiceDescriptor svc;
  svc.name = "svc";
  ASSERT_TRUE(IncorporateService(&env_, &ad_, svc).ok());

  ImportSpec spec;
  spec.database = "avis";
  spec.service = "svc";
  auto imported = ImportDatabase(&env_, ad_, &gdd_, spec);
  ASSERT_TRUE(imported.ok()) << imported.status();
  EXPECT_EQ(*imported, (std::vector<std::string>{"cars", "staff"}));
  auto table = gdd_.GetTable("avis", "cars");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_columns(), 3u);
  // Types and widths came through the wire.
  EXPECT_EQ((*table)->column(1).type, Type::kText);
  EXPECT_EQ((*table)->column(1).width, 16);
}

TEST_F(CatalogOpsTest, ImportSingleTableAndPartialColumns) {
  ServiceDescriptor svc;
  svc.name = "svc";
  ASSERT_TRUE(IncorporateService(&env_, &ad_, svc).ok());

  ImportSpec one_table;
  one_table.database = "avis";
  one_table.service = "svc";
  one_table.table = "cars";
  ASSERT_TRUE(ImportDatabase(&env_, ad_, &gdd_, one_table).ok());
  EXPECT_TRUE(gdd_.HasTable("avis", "cars"));
  EXPECT_FALSE(gdd_.HasTable("avis", "staff"));

  // Partial column import replaces the previous full definition.
  ImportSpec partial = one_table;
  partial.columns = {"code"};
  ASSERT_TRUE(ImportDatabase(&env_, ad_, &gdd_, partial).ok());
  EXPECT_EQ((*gdd_.GetTable("avis", "cars"))->num_columns(), 1u);
}

TEST_F(CatalogOpsTest, ImportRequiresIncorporation) {
  ImportSpec spec;
  spec.database = "avis";
  spec.service = "svc";  // reachable but never incorporated
  EXPECT_EQ(ImportDatabase(&env_, ad_, &gdd_, spec).status().code(),
            StatusCode::kNotFound);
}

TEST_F(CatalogOpsTest, ImportUnknownObjectsFail) {
  ServiceDescriptor svc;
  svc.name = "svc";
  ASSERT_TRUE(IncorporateService(&env_, &ad_, svc).ok());

  ImportSpec bad_db;
  bad_db.database = "ghost";
  bad_db.service = "svc";
  EXPECT_FALSE(ImportDatabase(&env_, ad_, &gdd_, bad_db).ok());

  ImportSpec bad_table;
  bad_table.database = "avis";
  bad_table.service = "svc";
  bad_table.table = "ghost";
  EXPECT_FALSE(ImportDatabase(&env_, ad_, &gdd_, bad_table).ok());
}

TEST_F(CatalogOpsTest, AnalyzePopulatesMeasuredStats) {
  ServiceDescriptor svc;
  svc.name = "svc";
  ASSERT_TRUE(IncorporateService(&env_, &ad_, svc).ok());
  ImportSpec import;
  import.database = "avis";
  import.service = "svc";
  ASSERT_TRUE(ImportDatabase(&env_, ad_, &gdd_, import).ok());

  AnalyzeSpec spec;
  spec.database = "avis";
  auto analyzed = AnalyzeDatabase(&env_, ad_, &gdd_, spec);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();
  EXPECT_EQ(*analyzed, (std::vector<std::string>{"cars", "staff"}));

  auto stats = gdd_.GetTableStats("avis", "cars");
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ((*stats)->row_count, 4);
  EXPECT_EQ((*stats)->version, 1);
  EXPECT_TRUE(gdd_.TableStatsFresh("avis", "cars"));
  ASSERT_EQ((*stats)->columns.count("code"), 1u);
  // NULLs are excluded from distinct counts and extrema.
  EXPECT_EQ((*stats)->columns.at("code").distinct_values, 2);
  EXPECT_EQ((*stats)->columns.at("code").min_value, "1");
  EXPECT_EQ((*stats)->columns.at("code").max_value, "2");
  EXPECT_GT((*stats)->columns.at("code").avg_width_bytes, 0.0);
  EXPECT_GT((*stats)->avg_row_bytes, 0.0);
  // The empty table measures as empty, not as an error.
  auto staff = gdd_.GetTableStats("avis", "staff");
  ASSERT_TRUE(staff.ok());
  EXPECT_EQ((*staff)->row_count, 0);

  // Re-ANALYZE bumps versions; a re-IMPORT in between makes the stats
  // stale until then.
  ASSERT_TRUE(ImportDatabase(&env_, ad_, &gdd_, import).ok());
  EXPECT_FALSE(gdd_.TableStatsFresh("avis", "cars"));
  ASSERT_TRUE(AnalyzeDatabase(&env_, ad_, &gdd_, spec).ok());
  EXPECT_TRUE(gdd_.TableStatsFresh("avis", "cars"));
  EXPECT_EQ((*gdd_.GetTableStats("avis", "cars"))->version, 2);
}

TEST_F(CatalogOpsTest, AnalyzeUnknownObjectsFail) {
  ServiceDescriptor svc;
  svc.name = "svc";
  ASSERT_TRUE(IncorporateService(&env_, &ad_, svc).ok());
  ImportSpec import;
  import.database = "avis";
  import.service = "svc";
  import.table = "cars";
  ASSERT_TRUE(ImportDatabase(&env_, ad_, &gdd_, import).ok());

  AnalyzeSpec unknown_db;
  unknown_db.database = "ghost";
  EXPECT_EQ(AnalyzeDatabase(&env_, ad_, &gdd_, unknown_db).status().code(),
            StatusCode::kNotFound);

  // `staff` exists at the service but was never imported: ANALYZE only
  // measures what the GDD knows about.
  AnalyzeSpec unknown_table;
  unknown_table.database = "avis";
  unknown_table.table = "staff";
  EXPECT_EQ(
      AnalyzeDatabase(&env_, ad_, &gdd_, unknown_table).status().code(),
      StatusCode::kNotFound);

  AnalyzeSpec whole;
  whole.database = "avis";
  auto analyzed = AnalyzeDatabase(&env_, ad_, &gdd_, whole);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();
  EXPECT_EQ(*analyzed, (std::vector<std::string>{"cars"}));
  EXPECT_EQ(gdd_.GetTableStats("avis", "staff").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace msql::mdbs
