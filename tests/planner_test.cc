// Local query planner: predicate pushdown, index probes inside joins,
// hash equi-joins, plan rendering, and scan/evaluation accounting.
// The naive cross-product executor survives behind
// LocalEngine::set_use_planner(false) as the semantics oracle; several
// tests here run both paths and require identical answers.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "relational/engine.h"

namespace msql::relational {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<LocalEngine>(
        "svc", CapabilityProfile::IngresLike());
    ASSERT_TRUE(engine_->CreateDatabase("db").ok());
    session_ = *engine_->OpenSession("db");
  }

  ResultSet Exec(std::string_view sql) {
    auto result = engine_->Execute(session_, sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return result.ok() ? std::move(*result) : ResultSet{};
  }

  /// Runs `sql` on the naive cross-product path, restoring the planner.
  ResultSet ExecNaive(std::string_view sql) {
    engine_->set_use_planner(false);
    ResultSet rs = Exec(sql);
    engine_->set_use_planner(true);
    return rs;
  }

  std::string Explain(std::string_view sql) {
    auto text = engine_->ExplainSql(session_, sql);
    EXPECT_TRUE(text.ok()) << sql << " -> " << text.status();
    return text.ok() ? *text : "";
  }

  /// The paper's flights/seats shape: a small airline schema with an
  /// equi-join and per-source predicates.
  void SeedFlights() {
    Exec("CREATE TABLE flights (fno INTEGER, dep TEXT, price REAL)");
    Exec("CREATE TABLE seats (fno INTEGER, class TEXT, avail INTEGER)");
    Exec("INSERT INTO flights VALUES (1, 'jfk', 150.0), (2, 'lax', 90.0),"
         " (3, 'jfk', 210.0), (4, 'ord', 120.0), (5, 'jfk', 75.0),"
         " (6, 'lax', 60.0)");
    Exec("INSERT INTO seats VALUES (1, 'y', 4), (1, 'f', 0), (2, 'y', 9),"
         " (3, 'y', 2), (3, 'f', 1), (4, 'y', 0), (5, 'y', 7),"
         " (6, 'f', 3)");
  }

  std::unique_ptr<LocalEngine> engine_;
  SessionId session_ = 0;
};

TEST_F(PlannerTest, GoldenExplainForPaperStyleJoin) {
  SeedFlights();
  std::string text = Explain(
      "SELECT f.fno, s.class FROM flights f, seats s "
      "WHERE f.fno = s.fno AND f.dep = 'jfk' AND s.avail > 0");
  EXPECT_EQ(text,
            "plan: 2 source(s), 2 pushed conjunct(s), 1 equi-join key(s)\n"
            "  source 0 (f): scan; filter f.dep = 'jfk'; est 1 row(s)\n"
            "  source 1 (s): scan; filter s.avail > 0; est 3 row(s)\n"
            "join order:\n"
            "  [0] start source 0 (f)\n"
            "  [1] hash join source 1 (s) on f.fno = s.fno\n");
}

TEST_F(PlannerTest, GoldenExplainWithIndexProbeAndFallback) {
  SeedFlights();
  Exec("CREATE INDEX idx_fno ON flights (fno)");
  std::string probed = Explain(
      "SELECT f.price, s.class FROM flights f, seats s "
      "WHERE f.fno = 3 AND s.fno = 3");
  EXPECT_EQ(probed,
            "plan: 2 source(s), 1 pushed conjunct(s), 0 equi-join key(s)\n"
            "  source 0 (f): index probe idx_fno [fno = 3]; est 1 row(s)\n"
            "  source 1 (s): scan; filter s.fno = 3; est 1 row(s)\n"
            "join order:\n"
            // Both sources estimate 1 row; with no equi-join edges the
            // tie breaks on source name ("f" < "s"), never FROM position.
            "  [0] start source 0 (f)\n"
            "  [1] nested loop source 1 (s)\n");
  // A WHERE naming an unknown column declines to plan; the naive path
  // owns the error surfacing.
  std::string fallback =
      Explain("SELECT f.fno FROM flights f WHERE ghost = 1");
  EXPECT_EQ(fallback,
            "plan: naive cross-product fallback (unresolved column "
            "'ghost' in WHERE)\n");
}

TEST_F(PlannerTest, JoinOrderTieBreaksByNameNotFromPosition) {
  // Both sources estimate the same row count and no equi-join edge
  // favors either, so the starting source is decided by name alone.
  // Before the fix the planner kept whichever source appeared first in
  // the FROM clause, so `FROM beta, alpha` started on beta.
  Exec("CREATE TABLE beta (x INTEGER)");
  Exec("CREATE TABLE alpha (x INTEGER)");
  Exec("INSERT INTO beta VALUES (1), (2)");
  Exec("INSERT INTO alpha VALUES (3), (4)");
  EXPECT_EQ(Explain("SELECT beta.x, alpha.x FROM beta, alpha"),
            "plan: 2 source(s), 0 pushed conjunct(s), 0 equi-join key(s)\n"
            "  source 0 (beta): scan; est 2 row(s)\n"
            "  source 1 (alpha): scan; est 2 row(s)\n"
            "join order:\n"
            "  [0] start source 1 (alpha)\n"
            "  [1] nested loop source 0 (beta)\n");
  // Permuting the FROM clause must not change the chosen anchor.
  EXPECT_EQ(Explain("SELECT beta.x, alpha.x FROM alpha, beta"),
            "plan: 2 source(s), 0 pushed conjunct(s), 0 equi-join key(s)\n"
            "  source 0 (alpha): scan; est 2 row(s)\n"
            "  source 1 (beta): scan; est 2 row(s)\n"
            "join order:\n"
            "  [0] start source 0 (alpha)\n"
            "  [1] nested loop source 1 (beta)\n");
  const std::string sql = "SELECT beta.x, alpha.x FROM beta, alpha";
  ResultSet planned = Exec(sql);
  ResultSet naive = ExecNaive(sql);
  EXPECT_EQ(planned, naive);  // reordering never leaks into the answer
}

TEST_F(PlannerTest, EmptySourceEstimatesClampToOneRow) {
  // Regression: an empty table used to estimate 0 rows, making it look
  // cost-free and letting `est 0 row(s)` propagate through join steps
  // that still scan the other side. Estimates clamp to >= 1 post-filter.
  Exec("CREATE TABLE empty_t (id INTEGER)");
  Exec("CREATE TABLE full_t (id INTEGER)");
  Exec("INSERT INTO full_t VALUES (1), (2), (3)");
  EXPECT_EQ(Explain("SELECT empty_t.id, full_t.id FROM full_t, empty_t "
                    "WHERE empty_t.id = full_t.id"),
            "plan: 2 source(s), 0 pushed conjunct(s), 1 equi-join key(s)\n"
            "  source 0 (full_t): scan; est 3 row(s)\n"
            "  source 1 (empty_t): scan; est 1 row(s)\n"
            "join order:\n"
            "  [0] start source 1 (empty_t)\n"
            "  [1] hash join source 0 (full_t) on empty_t.id = full_t.id\n");
  ResultSet planned = Exec(
      "SELECT empty_t.id, full_t.id FROM full_t, empty_t "
      "WHERE empty_t.id = full_t.id");
  EXPECT_TRUE(planned.rows.empty());
}

TEST_F(PlannerTest, PlannedJoinMatchesNaiveAnswerAndOrder) {
  SeedFlights();
  const std::string sql =
      "SELECT f.fno, f.price, s.class FROM flights f, seats s "
      "WHERE f.fno = s.fno AND s.avail > 0 AND f.price < 200.0";
  ResultSet planned = Exec(sql);
  ResultSet naive = ExecNaive(sql);
  EXPECT_EQ(planned, naive);  // identical rows in identical order
  EXPECT_GT(naive.rows_evaluated, planned.rows_evaluated);
}

TEST_F(PlannerTest, DuplicateJoinKeysPreserveCrossProductOrder) {
  // Multiple matches on both sides: the hash join must reproduce the
  // odometer's FROM-major row order, not hash-bucket order.
  Exec("CREATE TABLE l (k INTEGER, tag TEXT)");
  Exec("CREATE TABLE r (k INTEGER, tag TEXT)");
  Exec("INSERT INTO l VALUES (1, 'l1'), (2, 'l2'), (1, 'l3'), (2, 'l4')");
  Exec("INSERT INTO r VALUES (2, 'r1'), (1, 'r2'), (1, 'r3')");
  const std::string sql =
      "SELECT l.tag, r.tag FROM l, r WHERE l.k = r.k";
  ResultSet planned = Exec(sql);
  ResultSet naive = ExecNaive(sql);
  ASSERT_EQ(planned.rows.size(), 6u);
  EXPECT_EQ(planned, naive);
}

TEST_F(PlannerTest, IndexProbeWorksInMultiTableSelect) {
  // Regression for the old `stmt.from.size() == 1` gate: creating an
  // index on the filtered table must cut rows_scanned even when the
  // SELECT joins another table.
  Exec("CREATE TABLE big (id INTEGER, v REAL)");
  std::string insert = "INSERT INTO big VALUES ";
  for (int i = 0; i < 100; ++i) {
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(i) + ", " + std::to_string(i) + ".5)";
  }
  Exec(insert);
  Exec("CREATE TABLE u (k INTEGER)");
  Exec("INSERT INTO u VALUES (7), (8), (9), (10)");

  const std::string sql =
      "SELECT big.v, u.k FROM big, u WHERE big.id = 7 AND big.id = u.k";
  ResultSet unindexed = Exec(sql);
  EXPECT_EQ(unindexed.rows_scanned, 104);
  Exec("CREATE INDEX idx_id ON big (id)");
  ResultSet indexed = Exec(sql);
  EXPECT_EQ(indexed.rows_scanned, 1 + 4);  // probe big, scan u
  EXPECT_LT(indexed.rows_scanned, unindexed.rows_scanned);
  EXPECT_EQ(indexed, unindexed);
  ASSERT_EQ(indexed.rows.size(), 1u);
}

TEST_F(PlannerTest, ViewScansIncludeRecursiveBaseTableCost) {
  Exec("CREATE TABLE t (id INTEGER, v REAL)");
  std::string insert = "INSERT INTO t VALUES ";
  for (int i = 0; i < 100; ++i) {
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(i) + ", 1.0)";
  }
  Exec(insert);
  Exec("CREATE VIEW allt AS SELECT id, v FROM t");
  // 100 base rows scanned to materialize the view + 100 view rows
  // scanned by the outer SELECT. The old accounting dropped the
  // recursive half and reported 100.
  EXPECT_EQ(Exec("SELECT id FROM allt").rows_scanned, 200);
  EXPECT_EQ(ExecNaive("SELECT id FROM allt").rows_scanned, 200);
}

TEST_F(PlannerTest, NullJoinKeysNeverMatch) {
  Exec("CREATE TABLE l (k INTEGER)");
  Exec("CREATE TABLE r (k INTEGER)");
  Exec("INSERT INTO l VALUES (1), (NULL), (2)");
  Exec("INSERT INTO r VALUES (NULL), (1), (1)");
  const std::string sql = "SELECT l.k, r.k FROM l, r WHERE l.k = r.k";
  ResultSet planned = Exec(sql);
  ResultSet naive = ExecNaive(sql);
  EXPECT_EQ(planned.rows.size(), 2u);  // 1 matches twice; NULLs never
  EXPECT_EQ(planned, naive);
}

TEST_F(PlannerTest, ThreeWayEquiChainCollapsesRowsEvaluated) {
  for (const char* name : {"t1", "t2", "t3"}) {
    Exec("CREATE TABLE " + std::string(name) + " (id INTEGER, v REAL)");
    std::string insert = "INSERT INTO " + std::string(name) + " VALUES ";
    for (int i = 0; i < 20; ++i) {
      if (i > 0) insert += ", ";
      insert += "(" + std::to_string(i) + ", " + std::to_string(i) + ".0)";
    }
    Exec(insert);
  }
  const std::string sql =
      "SELECT t1.id, t3.v FROM t1, t2, t3 "
      "WHERE t1.id = t2.id AND t2.id = t3.id";
  ResultSet planned = Exec(sql);
  ResultSet naive = ExecNaive(sql);
  ASSERT_EQ(planned.rows.size(), 20u);
  EXPECT_EQ(planned, naive);
  EXPECT_EQ(naive.rows_evaluated, 20 * 20 * 20);
  // Hash steps touch only genuine key matches: 20 candidates per step.
  EXPECT_LE(planned.rows_evaluated, 2 * 20);
  EXPECT_GE(naive.rows_evaluated, 10 * planned.rows_evaluated);
}

TEST_F(PlannerTest, AggregatesAndDistinctAgreeWithNaivePath) {
  SeedFlights();
  for (const char* sql :
       {"SELECT DISTINCT f.dep FROM flights f, seats s "
        "WHERE f.fno = s.fno ORDER BY f.dep",
        "SELECT f.dep, COUNT(*), MIN(s.avail) FROM flights f, seats s "
        "WHERE f.fno = s.fno GROUP BY f.dep ORDER BY f.dep",
        "SELECT COUNT(*) FROM flights f, seats s "
        "WHERE f.fno = s.fno AND s.avail > (SELECT MIN(avail) FROM "
        "seats)"}) {
    ResultSet planned = Exec(sql);
    ResultSet naive = ExecNaive(sql);
    EXPECT_EQ(planned, naive) << sql;
  }
}

TEST_F(PlannerTest, FallbackErrorsMatchNaiveErrors) {
  SeedFlights();
  const std::string sql =
      "SELECT f.fno FROM flights f, seats s WHERE ghost = 1";
  auto planned = engine_->Execute(session_, sql);
  engine_->set_use_planner(false);
  auto naive = engine_->Execute(session_, sql);
  engine_->set_use_planner(true);
  ASSERT_FALSE(planned.ok());
  ASSERT_FALSE(naive.ok());
  EXPECT_EQ(planned.status().ToString(), naive.status().ToString());
}

TEST_F(PlannerTest, ExplainRequiresSelect) {
  SeedFlights();
  auto text = engine_->ExplainSql(session_, "DELETE FROM flights");
  EXPECT_FALSE(text.ok());
  EXPECT_EQ(text.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PlannerTest, PlanTextTravelsWithResultWhenCollected) {
  SeedFlights();
  EXPECT_TRUE(Exec("SELECT fno FROM flights").plan_text.empty());
  engine_->set_collect_plan_text(true);
  ResultSet rs = Exec(
      "SELECT f.fno FROM flights f, seats s WHERE f.fno = s.fno");
  EXPECT_NE(rs.plan_text.find("hash join"), std::string::npos);
  // The wire format must not grow: plan text is diagnostics only.
  ResultSet bare = rs;
  bare.plan_text.clear();
  EXPECT_EQ(bare, rs);
}

}  // namespace
}  // namespace msql::relational
