// Deep SQL-semantics coverage of the local engines: three-valued logic
// corner cases, aggregate/NULL interactions, ordering, grouping and
// expression evaluation sweeps. These pin down behaviours the
// multidatabase layer silently depends on.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "relational/engine.h"

namespace msql::relational {
namespace {

class SqlSemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<LocalEngine>(
        "svc", CapabilityProfile::IngresLike());
    ASSERT_TRUE(engine_->CreateDatabase("db").ok());
    session_ = *engine_->OpenSession("db");
    Exec("CREATE TABLE t (i INTEGER, r REAL, s TEXT)");
    Exec("INSERT INTO t VALUES (1, 1.5, 'a'), (2, NULL, 'b'), "
         "(NULL, 2.5, 'c'), (4, 4.5, NULL), (5, 5.5, 'a')");
  }

  ResultSet Exec(std::string_view sql) {
    auto result = engine_->Execute(session_, sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return result.ok() ? std::move(*result) : ResultSet{};
  }

  int64_t CountWhere(const std::string& predicate) {
    return Exec("SELECT COUNT(*) FROM t WHERE " + predicate)
        .rows[0][0]
        .AsInteger();
  }

  std::unique_ptr<LocalEngine> engine_;
  SessionId session_ = 0;
};

// --- three-valued logic -----------------------------------------------------

TEST_F(SqlSemanticsTest, ComparisonWithNullIsUnknown) {
  EXPECT_EQ(CountWhere("i = NULL"), 0);
  EXPECT_EQ(CountWhere("i <> NULL"), 0);
  EXPECT_EQ(CountWhere("NULL = NULL"), 0);
  EXPECT_EQ(CountWhere("i IS NULL"), 1);
  EXPECT_EQ(CountWhere("i IS NOT NULL"), 4);
}

TEST_F(SqlSemanticsTest, NotOfUnknownIsUnknown) {
  // i > 3 is UNKNOWN for the NULL row; NOT keeps it UNKNOWN, so the
  // two complementary predicates never cover the NULL row.
  EXPECT_EQ(CountWhere("i > 3"), 2);
  EXPECT_EQ(CountWhere("NOT i > 3"), 2);
  EXPECT_EQ(CountWhere("i > 3 OR NOT i > 3"), 4);  // NULL row excluded
}

TEST_F(SqlSemanticsTest, AndOrShortCircuitSemantics) {
  // FALSE AND UNKNOWN = FALSE (not UNKNOWN), TRUE OR UNKNOWN = TRUE.
  EXPECT_EQ(CountWhere("i < 0 AND r > 0"), 0);
  EXPECT_EQ(CountWhere("i >= 1 OR r > 99"), 4);  // NULL-i row: r>99 false
  // UNKNOWN AND TRUE = UNKNOWN → filtered.
  EXPECT_EQ(CountWhere("r > 0 AND i >= 0"), 3);  // row 2 has NULL r
}

TEST_F(SqlSemanticsTest, InListWithNulls) {
  // 2 IN (...) with NULL member: TRUE if found, else UNKNOWN.
  EXPECT_EQ(CountWhere("i IN (1, NULL, 5)"), 2);
  EXPECT_EQ(CountWhere("i NOT IN (1, NULL, 5)"), 0);  // UNKNOWN everywhere
  EXPECT_EQ(CountWhere("i NOT IN (1, 5)"), 2);        // 2 and 4
}

TEST_F(SqlSemanticsTest, BetweenBounds) {
  EXPECT_EQ(CountWhere("i BETWEEN 2 AND 4"), 2);  // inclusive both ends
  EXPECT_EQ(CountWhere("i NOT BETWEEN 2 AND 4"), 2);
  EXPECT_EQ(CountWhere("s BETWEEN 'a' AND 'b'"), 3);  // text ranges
  EXPECT_EQ(CountWhere("r BETWEEN NULL AND 5"), 0);
}

TEST_F(SqlSemanticsTest, LikeIsCaseSensitiveWithUnderscore) {
  Exec("INSERT INTO t VALUES (9, 0.0, 'Abc')");
  EXPECT_EQ(CountWhere("s LIKE 'A%'"), 1);
  EXPECT_EQ(CountWhere("s LIKE 'a%'"), 2);
  EXPECT_EQ(CountWhere("s LIKE '_bc'"), 1);
  EXPECT_EQ(CountWhere("s LIKE '%'"), 5);  // NULL s stays out
  EXPECT_EQ(CountWhere("s NOT LIKE 'a'"), 3);
}

// --- aggregates & grouping ---------------------------------------------------

TEST_F(SqlSemanticsTest, AggregatesSkipNullsCountStarDoesNot) {
  ResultSet rs = Exec(
      "SELECT COUNT(*), COUNT(i), COUNT(r), COUNT(s), AVG(i) FROM t");
  EXPECT_EQ(rs.rows[0][0], Value::Integer(5));
  EXPECT_EQ(rs.rows[0][1], Value::Integer(4));
  EXPECT_EQ(rs.rows[0][2], Value::Integer(4));
  EXPECT_EQ(rs.rows[0][3], Value::Integer(4));
  EXPECT_NEAR(rs.rows[0][4].AsReal(), (1 + 2 + 4 + 5) / 4.0, 1e-9);
}

TEST_F(SqlSemanticsTest, AggregatesOverAllNullColumn) {
  Exec("CREATE TABLE n (x INTEGER)");
  Exec("INSERT INTO n VALUES (NULL), (NULL), (NULL)");
  ResultSet rs = Exec(
      "SELECT COUNT(*), COUNT(x), SUM(x), AVG(x), MIN(x), MAX(x) FROM n");
  EXPECT_EQ(rs.rows[0][0], Value::Integer(3));  // COUNT(*) counts NULL rows
  EXPECT_EQ(rs.rows[0][1], Value::Integer(0));  // COUNT(x) skips them all
  EXPECT_TRUE(rs.rows[0][2].is_null());
  EXPECT_TRUE(rs.rows[0][3].is_null());  // all-NULL AVG is NULL, not 0/0
  EXPECT_TRUE(rs.rows[0][4].is_null());
  EXPECT_TRUE(rs.rows[0][5].is_null());
}

TEST_F(SqlSemanticsTest, AggregatesOverEmptyInput) {
  // The global group exists even over zero rows: COUNTs are 0, every
  // other aggregate is NULL.
  ResultSet rs = Exec(
      "SELECT COUNT(*), COUNT(i), SUM(i), AVG(i), MAX(i) FROM t "
      "WHERE i = 99");
  EXPECT_EQ(rs.rows[0][0], Value::Integer(0));
  EXPECT_EQ(rs.rows[0][1], Value::Integer(0));
  EXPECT_TRUE(rs.rows[0][2].is_null());
  EXPECT_TRUE(rs.rows[0][3].is_null());
  EXPECT_TRUE(rs.rows[0][4].is_null());
}

TEST_F(SqlSemanticsTest, SumTypePreservation) {
  ResultSet rs = Exec("SELECT SUM(i), SUM(r) FROM t");
  EXPECT_TRUE(rs.rows[0][0].is_integer());  // all-integer input
  EXPECT_TRUE(rs.rows[0][1].is_real());
}

TEST_F(SqlSemanticsTest, GroupByNullFormsItsOwnGroup) {
  ResultSet rs = Exec(
      "SELECT s, COUNT(*) FROM t GROUP BY s ORDER BY s");
  // Groups: NULL, 'a' (×2), 'b', 'c' — NULL sorts first.
  ASSERT_EQ(rs.rows.size(), 4u);
  EXPECT_TRUE(rs.rows[0][0].is_null());
  EXPECT_EQ(rs.rows[0][1], Value::Integer(1));
  EXPECT_EQ(rs.rows[1][0], Value::Text("a"));
  EXPECT_EQ(rs.rows[1][1], Value::Integer(2));
}

TEST_F(SqlSemanticsTest, GroupByMultipleKeysAndHavingOnAggregate) {
  Exec("INSERT INTO t VALUES (1, 9.0, 'a')");
  ResultSet rs = Exec(
      "SELECT i, s, COUNT(*) AS n FROM t GROUP BY i, s "
      "HAVING COUNT(*) > 1");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Integer(1));
  EXPECT_EQ(rs.rows[0][1], Value::Text("a"));
  EXPECT_EQ(rs.rows[0][2], Value::Integer(2));
}

TEST_F(SqlSemanticsTest, AggregateInsideExpression) {
  ResultSet rs = Exec("SELECT MAX(i) - MIN(i), SUM(i) / COUNT(i) FROM t");
  EXPECT_EQ(rs.rows[0][0], Value::Integer(4));
  EXPECT_EQ(rs.rows[0][1], Value::Integer(3));  // integer division
}

// --- ordering -----------------------------------------------------------------

TEST_F(SqlSemanticsTest, OrderByNullsFirstThenValues) {
  ResultSet rs = Exec("SELECT i FROM t ORDER BY i");
  ASSERT_EQ(rs.rows.size(), 5u);
  EXPECT_TRUE(rs.rows[0][0].is_null());
  EXPECT_EQ(rs.rows[1][0], Value::Integer(1));
  EXPECT_EQ(rs.rows[4][0], Value::Integer(5));
}

TEST_F(SqlSemanticsTest, OrderByMixedDirectionsIsStable) {
  ResultSet rs = Exec("SELECT s, i FROM t ORDER BY s DESC, i ASC");
  // s: c, b, a, a, NULL; within 'a': i 1 then 5.
  ASSERT_EQ(rs.rows.size(), 5u);
  EXPECT_EQ(rs.rows[0][0], Value::Text("c"));
  EXPECT_EQ(rs.rows[2][0], Value::Text("a"));
  EXPECT_EQ(rs.rows[2][1], Value::Integer(1));
  EXPECT_EQ(rs.rows[3][1], Value::Integer(5));
  EXPECT_TRUE(rs.rows[4][0].is_null());
}

TEST_F(SqlSemanticsTest, OrderByOutputAliasAndExpression) {
  ResultSet by_alias = Exec(
      "SELECT i * 2 AS dbl FROM t WHERE i IS NOT NULL ORDER BY dbl DESC");
  EXPECT_EQ(by_alias.rows[0][0], Value::Integer(10));
  ResultSet by_expr = Exec(
      "SELECT i FROM t WHERE i IS NOT NULL ORDER BY 0 - i");
  EXPECT_EQ(by_expr.rows[0][0], Value::Integer(5));
}

TEST_F(SqlSemanticsTest, DistinctTreatsNullsAsEqual) {
  Exec("INSERT INTO t (i, r, s) VALUES (7, NULL, 'a')");
  ResultSet rs = Exec("SELECT DISTINCT r FROM t WHERE s = 'a' OR i = 2");
  // r values over those rows: 1.5, 5.5, NULL (x2 collapsed).
  EXPECT_EQ(rs.rows.size(), 3u);
}

// --- expression evaluation -----------------------------------------------------

TEST_F(SqlSemanticsTest, ArithmeticTypeRules) {
  ResultSet rs = Exec(
      "SELECT 7 / 2, 7.0 / 2, 7 * 2, 7.5 - 0.5, -i FROM t WHERE i = 1");
  EXPECT_EQ(rs.rows[0][0], Value::Integer(3));  // integer division
  EXPECT_EQ(rs.rows[0][1], Value::Real(3.5));
  EXPECT_EQ(rs.rows[0][2], Value::Integer(14));
  EXPECT_EQ(rs.rows[0][3], Value::Real(7.0));
  EXPECT_EQ(rs.rows[0][4], Value::Integer(-1));
}

TEST_F(SqlSemanticsTest, NullPropagationThroughArithmetic) {
  ResultSet rs = Exec("SELECT r + 1, r * 0 FROM t WHERE i = 2");
  EXPECT_TRUE(rs.rows[0][0].is_null());
  EXPECT_TRUE(rs.rows[0][1].is_null());  // NULL * 0 is NULL, not 0
}

TEST_F(SqlSemanticsTest, CrossTypeComparisonErrorsInsteadOfCoercing) {
  auto bad = engine_->Execute(session_, "SELECT i FROM t WHERE i = 'x'");
  EXPECT_FALSE(bad.ok());
  auto bad2 = engine_->Execute(session_, "SELECT i FROM t WHERE s > 1");
  EXPECT_FALSE(bad2.ok());
  // But INTEGER vs REAL compares numerically.
  EXPECT_EQ(CountWhere("i = 1.0"), 1);
}

TEST_F(SqlSemanticsTest, CorrelatedStyleSubqueryAgainstSameTable) {
  // Every row whose i equals the global minimum.
  ResultSet rs = Exec(
      "SELECT i FROM t WHERE i = (SELECT MIN(i) FROM t)");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Integer(1));
  // Nested two levels.
  ResultSet nested = Exec(
      "SELECT COUNT(*) FROM t WHERE i > (SELECT MIN(i) FROM t WHERE i > "
      "(SELECT MIN(i) FROM t))");
  EXPECT_EQ(nested.rows[0][0], Value::Integer(2));  // 4 and 5
}

TEST_F(SqlSemanticsTest, ScalarSubqueryCardinalityErrors) {
  EXPECT_FALSE(engine_
                   ->Execute(session_,
                             "SELECT i FROM t WHERE i = "
                             "(SELECT i FROM t)")  // 5 rows
                   .ok());
  EXPECT_FALSE(engine_
                   ->Execute(session_,
                             "SELECT i FROM t WHERE i = "
                             "(SELECT i, r FROM t WHERE i = 1)")  // 2 cols
                   .ok());
}

/// Parameterized sweep: WHERE predicates and their expected match
/// counts over the fixture rows.
class PredicateSweepTest
    : public SqlSemanticsTest,
      public ::testing::WithParamInterface<std::tuple<const char*, int>> {
 protected:
  void SetUp() override { SqlSemanticsTest::SetUp(); }
};

TEST_P(PredicateSweepTest, MatchesExpectedRowCount) {
  auto [predicate, expected] = GetParam();
  EXPECT_EQ(CountWhere(predicate), expected) << predicate;
}

INSTANTIATE_TEST_SUITE_P(
    Predicates, PredicateSweepTest,
    ::testing::Values(
        std::make_tuple("TRUE", 5), std::make_tuple("FALSE", 0),
        std::make_tuple("i + 1 = 2", 1),
        std::make_tuple("i * i > 10", 2),
        std::make_tuple("r / 2 < 1", 1),
        std::make_tuple("ABS(0 - i) = i", 4),
        std::make_tuple("LENGTH(s) = 1", 4),
        std::make_tuple("UPPER(s) = 'A'", 2),
        std::make_tuple("i IS NULL OR s IS NULL", 2),
        std::make_tuple("i IS NULL AND s IS NULL", 0),
        std::make_tuple("NOT (i IS NULL OR s IS NULL)", 3),
        std::make_tuple("i BETWEEN 1 AND 5 AND s LIKE '_'", 3),
        std::make_tuple("ROUND(r) = 2.0", 1),
        std::make_tuple("i IN (SELECT MAX(i) FROM t)", 1)));

}  // namespace
}  // namespace msql::relational
