// Query log (DESIGN.md §11): one JSONL audit record per executed input,
// covering all four global outcomes via the §3.3 chaos fixtures, with
// vital verdicts, compensations and a byte-identical golden rendering
// under a fixed seed.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/fixtures.h"
#include "core/mdbs_system.h"
#include "dol/engine.h"
#include "netsim/fault_injector.h"
#include "obs/query_log.h"

namespace msql::core {
namespace {

using dol::RetryPolicy;
using netsim::FaultAction;
using netsim::FaultPlan;
using netsim::FaultRule;
using netsim::LamRequestType;
using relational::FailPoint;

constexpr const char* kCompensatedRaise =
    "USE continental VITAL delta united VITAL\n"
    "UPDATE flight% SET rate% = rate% * 1.1\n"
    "WHERE sour% = 'Houston' AND dest% = 'San Antonio'\n"
    "COMP continental\n"
    "UPDATE flights SET rate = rate / 1.1\n"
    "WHERE source = 'Houston' AND destination = 'San Antonio'";

// Avis has no flight table, so its VITAL subquery is non-pertinent and
// the whole query must be refused (§3.1).
constexpr const char* kRefusedSelect =
    "USE avis VITAL continental\n"
    "SELECT rate FROM flight%";

class QueryLogTest : public ::testing::Test {
 protected:
  void SetUp() override { BuildSystem(&sys_); }

  static void BuildSystem(std::unique_ptr<MultidatabaseSystem>* out) {
    PaperFederationOptions options;
    options.continental_autocommit_only = true;  // the §3.3 premise
    auto sys = BuildPaperFederation(options);
    ASSERT_TRUE(sys.ok()) << sys.status();
    *out = std::move(*sys);
    (*out)->query_log().set_enabled(true);
  }

  /// Drives the four-outcome session: clean compensated raise
  /// (SUCCESS), united statement failure firing continental's COMP
  /// (ABORTED), lost commit ACK with retries off (INCORRECT), vital
  /// non-pertinent subquery (REFUSED).
  static void RunOutcomeMatrix(MultidatabaseSystem* sys) {
    auto success = sys->Execute(kCompensatedRaise);
    ASSERT_TRUE(success.ok()) << success.status();
    ASSERT_EQ(success->outcome, GlobalOutcome::kSuccess);

    (*sys->GetEngine(PaperServiceOf("united")))
        ->InjectFailure(FailPoint::kNextStatement);
    auto aborted = sys->Execute(kCompensatedRaise);
    ASSERT_TRUE(aborted.ok()) << aborted.status();
    ASSERT_EQ(aborted->outcome, GlobalOutcome::kAborted);

    sys->set_retry_policy(RetryPolicy::None());
    FaultPlan plan;
    plan.rules.push_back(FaultRule::NthCall("united_svc",
                                            LamRequestType::kCommit, 1,
                                            FaultAction::kLostResponse));
    sys->environment().fault_injector().SetPlan(plan);
    auto incorrect = sys->Execute(kCompensatedRaise);
    ASSERT_TRUE(incorrect.ok()) << incorrect.status();
    ASSERT_EQ(incorrect->outcome, GlobalOutcome::kIncorrect);

    sys->environment().fault_injector().SetPlan(FaultPlan());
    auto refused = sys->Execute(kRefusedSelect);
    ASSERT_TRUE(refused.ok()) << refused.status();
    ASSERT_EQ(refused->outcome, GlobalOutcome::kRefused);
  }

  std::unique_ptr<MultidatabaseSystem> sys_;
};

TEST_F(QueryLogTest, AllFourOutcomesAreLoggedInSequence) {
  RunOutcomeMatrix(sys_.get());
  const auto& records = sys_->query_log().records();
  ASSERT_EQ(records.size(), 4u);
  const char* expected[] = {"SUCCESS", "ABORTED", "INCORRECT", "REFUSED"};
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(records[i].seq, static_cast<int64_t>(i + 1));
    EXPECT_EQ(records[i].outcome, expected[i]) << "record " << i;
    EXPECT_EQ(records[i].kind, "query");
  }
  // Inputs lay out sequentially: each record starts where the previous
  // makespans end.
  int64_t cursor = 0;
  for (const auto& r : records) {
    EXPECT_EQ(r.sim_start_micros, cursor) << "seq " << r.seq;
    cursor += r.makespan_micros;
  }
  // Executed inputs cost simulated time and traffic; the refusal is
  // decided in the front end and costs neither.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_GT(records[i].makespan_micros, 0) << i;
    EXPECT_GT(records[i].messages, 0) << i;
    EXPECT_GT(records[i].bytes, 0) << i;
  }
  EXPECT_EQ(records[3].makespan_micros, 0);
  EXPECT_EQ(records[3].messages, 0);
}

TEST_F(QueryLogTest, VerdictsCarryVitalityAndCompensations) {
  RunOutcomeMatrix(sys_.get());
  const auto& records = sys_->query_log().records();
  ASSERT_EQ(records.size(), 4u);

  // The clean success: three verdicts, all committed, vital flags as
  // declared in the USE scope.
  const auto& success = records[0];
  ASSERT_EQ(success.verdicts.size(), 3u);
  for (const auto& v : success.verdicts) {
    EXPECT_EQ(v.state, "COMMITTED") << v.database;
    EXPECT_EQ(v.service, PaperServiceOf(v.database));
    if (v.database == "delta") {
      EXPECT_FALSE(v.vital);
    } else {
      EXPECT_TRUE(v.vital) << v.database;
    }
  }
  EXPECT_TRUE(success.compensations.empty());

  // The abort: united's statement failure aborted its task and fired
  // continental's COMP clause.
  const auto& aborted = records[1];
  bool united_aborted = false, continental_compensated = false;
  for (const auto& v : aborted.verdicts) {
    if (v.database == "united") {
      united_aborted = v.state == "ABORTED";
      EXPECT_EQ(v.task, "t_united");
    }
    if (v.database == "continental") {
      continental_compensated = v.state == "COMPENSATED";
    }
  }
  EXPECT_TRUE(united_aborted) << aborted.ToJson();
  EXPECT_TRUE(continental_compensated) << aborted.ToJson();
  ASSERT_EQ(aborted.compensations.size(), 1u);
  EXPECT_EQ(aborted.compensations[0], "t_continental");

  // The refusal names the non-pertinent database and has a detail line.
  const auto& refused = records[3];
  ASSERT_EQ(refused.non_pertinent.size(), 1u);
  EXPECT_EQ(refused.non_pertinent[0], "avis");
  EXPECT_FALSE(refused.detail.empty());

  // The incorrect run performed no retries (policy None) but records a
  // nonzero dol_status.
  EXPECT_EQ(records[2].retries, 0);
  EXPECT_NE(records[2].dol_status, 0);
}

// Golden log: two fresh federations replaying the same session under
// the same seed render byte-identical JSONL.
TEST_F(QueryLogTest, JsonlIsByteIdenticalUnderFixedSeed) {
  RunOutcomeMatrix(sys_.get());
  std::string first = sys_->query_log().ToJsonl();

  std::unique_ptr<MultidatabaseSystem> again;
  BuildSystem(&again);
  RunOutcomeMatrix(again.get());
  std::string second = again->query_log().ToJsonl();

  EXPECT_GT(first.size(), 500u);
  EXPECT_EQ(first, second);
  // JSONL shape: one object per line, four lines, fixed key order.
  size_t lines = 0;
  for (char c : first) lines += c == '\n';
  EXPECT_EQ(lines, 4u);
  EXPECT_EQ(first.rfind("{\"seq\":1,\"kind\":\"query\"", 0), 0u);
  EXPECT_NE(first.find("\"outcome\":\"INCORRECT\""), std::string::npos);
  EXPECT_NE(first.find("\"vital\":true"), std::string::npos);
  EXPECT_NE(first.find("\"compensations\":[\"t_continental\"]"),
            std::string::npos);
}

// Disabled by default: executing without enabling the log records
// nothing and Append returns nullptr.
TEST(QueryLogDisabledTest, NoRecordsWhenDisabled) {
  auto sys_or = BuildPaperFederation();
  ASSERT_TRUE(sys_or.ok()) << sys_or.status();
  auto sys = std::move(*sys_or);
  ASSERT_FALSE(sys->query_log().enabled());
  auto report = sys->Execute(kCompensatedRaise);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(sys->query_log().records().empty());
  EXPECT_TRUE(sys->query_log().ToJsonl().empty());

  obs::QueryLog log;
  obs::QueryLogRecord record;
  EXPECT_EQ(log.Append(record), nullptr);
}

// Clear resets the sequence and sim cursor, not just the records.
TEST_F(QueryLogTest, ClearRestartsTheSession) {
  auto first = sys_->Execute(kCompensatedRaise);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_EQ(sys_->query_log().records().size(), 1u);
  sys_->query_log().Clear();
  EXPECT_TRUE(sys_->query_log().records().empty());
  auto second = sys_->Execute(kRefusedSelect);
  ASSERT_TRUE(second.ok()) << second.status();
  const auto& records = sys_->query_log().records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, 1);
  EXPECT_EQ(records[0].sim_start_micros, 0);
}

}  // namespace
}  // namespace msql::core
