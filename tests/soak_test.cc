// Randomized end-to-end soak: a deterministic stream of mixed MSQL
// inputs (retrievals, vital updates, multitransactions, joins) against
// the paper federation with probabilistic failures armed, checking that
// (a) the coordinator never breaks an invariant, and (b) local engines
// stay internally consistent throughout.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/rng.h"
#include "core/fixtures.h"
#include "core/mdbs_system.h"

namespace msql::core {
namespace {

constexpr const char* kAirlines[] = {"continental", "delta", "united"};

class SoakTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SoakTest, MixedWorkloadUnderFailures) {
  Rng rng(GetParam());
  PaperFederationOptions options;
  options.flights_per_airline = 16;
  options.seats_per_airline = 200;  // enough inventory for many bookings
  options.cars_per_company = 200;
  auto sys = std::move(BuildPaperFederation(options)).value();
  for (const char* db : kAirlines) {
    (*sys->GetEngine(PaperServiceOf(db)))
        ->SetFailureProbability(0.05, GetParam() ^ 0xF00D);
  }

  int successes = 0, aborts = 0, others = 0;
  for (int step = 0; step < 60; ++step) {
    std::string input;
    uint64_t shape = rng.NextBelow(5);
    switch (shape) {
      case 0:
        input =
            "USE continental delta united\n"
            "SELECT rate% FROM flight% WHERE sour% = 'Houston'";
        break;
      case 1:
        input =
            "USE continental VITAL delta united VITAL\n"
            "UPDATE flight% SET rate% = rate% * 1.0\n"
            "WHERE dest% = 'San Antonio'";
        break;
      case 2:
        input =
            "USE continental VITAL delta VITAL united VITAL\n"
            "UPDATE flight% SET rate% = rate% * 1.0";
        break;
      case 3:
        input =
            "BEGIN MULTITRANSACTION\n"
            "USE continental delta\n"
            "LET fitab.snu.sstat.clname BE\n"
            "  f838.seatnu.seatstatus.clientname "
            "fnu747.snu.sstat.passname\n"
            "UPDATE fitab SET sstat = 'TAKEN', clname = 'soak'\n"
            "WHERE snu = (SELECT MIN(snu) FROM fitab WHERE "
            "sstat = 'FREE');\n"
            "COMMIT continental delta END MULTITRANSACTION";
        break;
      default:
        input =
            "USE avis continental\n"
            "SELECT cars.code FROM avis.cars, continental.flights "
            "WHERE cars.rate < flights.rate";
        break;
    }
    auto report = sys->Execute(input);
    ASSERT_TRUE(report.ok()) << "step " << step << ": "
                             << report.status() << "\n" << input;
    switch (report->outcome) {
      case GlobalOutcome::kSuccess: ++successes; break;
      case GlobalOutcome::kAborted: ++aborts; break;
      default: ++others; break;
    }
    // Coordinator invariant, checkable on the all-VITAL update (shape
    // 2): SUCCESS means every subquery committed, ABORTED means none
    // did — vital outcomes never diverge under those two verdicts.
    if (shape == 2) {
      for (const auto& [name, task] : report->run.tasks) {
        if (report->outcome == GlobalOutcome::kSuccess) {
          EXPECT_EQ(task.state, dol::DolTaskState::kCommitted)
              << "step " << step << " task " << name;
        } else if (report->outcome == GlobalOutcome::kAborted) {
          EXPECT_NE(task.state, dol::DolTaskState::kCommitted)
              << "step " << step << " task " << name;
        }
      }
    }
  }
  // The failure probability makes aborts likely but not certain; at
  // least assert the soak made real progress in both directions.
  EXPECT_GT(successes, 0);
  EXPECT_EQ(successes + aborts + others, 60);

  // Local engines are still fully functional and internally consistent:
  // every table answers COUNT(*) and a full scan without error, and no
  // transaction is left holding locks (a fresh writer succeeds).
  for (const char* db :
       {"continental", "delta", "united", "avis", "national"}) {
    auto engine = *sys->GetEngine(PaperServiceOf(db));
    engine->SetFailureProbability(0.0, 0);
    auto database = engine->GetDatabaseConst(db);
    ASSERT_TRUE(database.ok());
    auto s = *engine->OpenSession(db);
    for (const auto& table : (*database)->TableNames()) {
      auto rs = engine->Execute(s, "SELECT COUNT(*) FROM " + table);
      ASSERT_TRUE(rs.ok()) << db << "." << table << ": " << rs.status();
      EXPECT_GE(rs->rows[0][0].AsInteger(), 0);
      auto write = engine->Execute(
          s, "DELETE FROM " + table + " WHERE 1 = 2");
      EXPECT_TRUE(write.ok()) << db << "." << table
                              << " still locked: " << write.status();
    }
    ASSERT_TRUE(engine->CloseSession(s).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace msql::core
