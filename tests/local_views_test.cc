// Local (LDBS-level) views and the IMPORT VIEW path of the §3.1
// grammar: schema inference, materialization, DDL undo, and export to
// the multidatabase level.
#include <gtest/gtest.h>

#include <memory>

#include "core/mdbs_system.h"
#include "relational/engine.h"
#include "relational/schema_infer.h"
#include "relational/sql/parser.h"

namespace msql::relational {
namespace {

class LocalViewsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<LocalEngine>(
        "svc", CapabilityProfile::IngresLike());
    ASSERT_TRUE(engine_->CreateDatabase("db").ok());
    session_ = *engine_->OpenSession("db");
    Exec("CREATE TABLE cars (code INTEGER, cartype TEXT, rate REAL, "
         "carst TEXT)");
    Exec("INSERT INTO cars VALUES (1, 'suv', 40.0, 'available'), "
         "(2, 'van', 30.0, 'rented'), (3, 'suv', 55.0, 'available')");
  }

  ResultSet Exec(std::string_view sql) {
    auto result = engine_->Execute(session_, sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return result.ok() ? std::move(*result) : ResultSet{};
  }

  std::unique_ptr<LocalEngine> engine_;
  SessionId session_ = 0;
};

TEST_F(LocalViewsTest, CreateScanDrop) {
  Exec("CREATE VIEW avail AS SELECT code, rate FROM cars "
       "WHERE carst = 'available'");
  ResultSet rs = Exec("SELECT * FROM avail ORDER BY code");
  EXPECT_EQ(rs.columns, (std::vector<std::string>{"code", "rate"}));
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[1][0], Value::Integer(3));
  Exec("DROP VIEW avail");
  EXPECT_FALSE(engine_->Execute(session_, "SELECT * FROM avail").ok());
}

TEST_F(LocalViewsTest, ViewReflectsBaseTableChanges) {
  Exec("CREATE VIEW avail AS SELECT code FROM cars "
       "WHERE carst = 'available'");
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM avail").rows[0][0],
            Value::Integer(2));
  Exec("UPDATE cars SET carst = 'available' WHERE code = 2");
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM avail").rows[0][0],
            Value::Integer(3));
}

TEST_F(LocalViewsTest, ViewJoinsAndFilters) {
  Exec("CREATE VIEW suvs AS SELECT code, rate FROM cars "
       "WHERE cartype = 'suv'");
  // A view can join against a base table.
  ResultSet rs = Exec(
      "SELECT suvs.code FROM suvs, cars "
      "WHERE suvs.code = cars.code AND cars.carst = 'available' "
      "ORDER BY suvs.code");
  ASSERT_EQ(rs.rows.size(), 2u);
  // And the outer query can aggregate over it.
  EXPECT_EQ(Exec("SELECT MAX(rate) FROM suvs").rows[0][0],
            Value::Real(55.0));
}

TEST_F(LocalViewsTest, ViewWithComputedColumns) {
  Exec("CREATE VIEW pricing AS SELECT code, rate * 2 AS weekend_rate, "
       "COUNT(*) AS n FROM cars GROUP BY code, rate");
  ResultSet rs = Exec("SELECT weekend_rate FROM pricing WHERE code = 1");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Real(80.0));
}

TEST_F(LocalViewsTest, ViewsAreReadOnly) {
  Exec("CREATE VIEW avail AS SELECT code FROM cars");
  EXPECT_FALSE(
      engine_->Execute(session_, "UPDATE avail SET code = 9").ok());
  EXPECT_FALSE(
      engine_->Execute(session_, "DELETE FROM avail").ok());
  EXPECT_FALSE(
      engine_->Execute(session_, "INSERT INTO avail VALUES (9)").ok());
}

TEST_F(LocalViewsTest, NameCollisionsRejected) {
  EXPECT_FALSE(engine_
                   ->Execute(session_,
                             "CREATE VIEW cars AS SELECT code FROM cars")
                   .ok());
  Exec("CREATE VIEW v AS SELECT code FROM cars");
  EXPECT_FALSE(engine_
                   ->Execute(session_,
                             "CREATE VIEW v AS SELECT rate FROM cars")
                   .ok());
  EXPECT_FALSE(engine_
                   ->Execute(session_,
                             "CREATE TABLE v (x INTEGER)")
                   .ok());
}

TEST_F(LocalViewsTest, BrokenDefinitionRejectedAtCreation) {
  EXPECT_FALSE(engine_
                   ->Execute(session_,
                             "CREATE VIEW bad AS SELECT ghost FROM cars")
                   .ok());
  EXPECT_FALSE(engine_
                   ->Execute(session_,
                             "CREATE VIEW bad AS SELECT code FROM ghost")
                   .ok());
}

TEST_F(LocalViewsTest, ViewDdlRollsBackOnIngresLikeEngines) {
  ASSERT_TRUE(engine_->Begin(session_).ok());
  Exec("CREATE VIEW v AS SELECT code FROM cars");
  ASSERT_TRUE(engine_->Rollback(session_).ok());
  EXPECT_FALSE(engine_->Execute(session_, "SELECT * FROM v").ok());

  Exec("CREATE VIEW v AS SELECT code FROM cars");
  ASSERT_TRUE(engine_->Begin(session_).ok());
  Exec("DROP VIEW v");
  ASSERT_TRUE(engine_->Rollback(session_).ok());
  EXPECT_TRUE(engine_->Execute(session_, "SELECT * FROM v").ok());
}

TEST_F(LocalViewsTest, DescribeViewInfersSchema) {
  Exec("CREATE VIEW pricing AS SELECT code, rate * 2 AS wk, "
       "UPPER(cartype) AS ty, COUNT(*) AS n FROM cars "
       "GROUP BY code, rate, cartype");
  auto schema = engine_->DescribeView("db", "pricing");
  ASSERT_TRUE(schema.ok()) << schema.status();
  ASSERT_EQ(schema->num_columns(), 4u);
  EXPECT_EQ(schema->column(0).type, Type::kInteger);  // code
  EXPECT_EQ(schema->column(1).type, Type::kReal);     // rate * 2
  EXPECT_EQ(schema->column(2).type, Type::kText);     // UPPER(...)
  EXPECT_EQ(schema->column(3).type, Type::kInteger);  // COUNT(*)
}

TEST(SchemaInferTest, ExpressionTypes) {
  auto schema = *TableSchema::Create(
      "t", {{"i", Type::kInteger, 0}, {"r", Type::kReal, 0},
            {"s", Type::kText, 0}});
  SchemaResolver resolve =
      [&](std::string_view) -> Result<const TableSchema*> {
    return &schema;
  };
  auto infer = [&](const std::string& items) {
    auto stmt = ParseSql("SELECT " + items + " FROM t");
    EXPECT_TRUE(stmt.ok()) << stmt.status();
    return InferSelectSchema(
        "v", static_cast<const SelectStmt&>(**stmt), resolve);
  };
  auto s1 = infer("i + i, i + r, i = r, NOT (i = r), s LIKE 'x%'");
  ASSERT_TRUE(s1.ok()) << s1.status();
  EXPECT_EQ(s1->column(0).type, Type::kInteger);
  EXPECT_EQ(s1->column(1).type, Type::kReal);
  EXPECT_EQ(s1->column(2).type, Type::kBoolean);
  EXPECT_EQ(s1->column(3).type, Type::kBoolean);
  EXPECT_EQ(s1->column(4).type, Type::kBoolean);

  auto s2 = infer("SUM(i), AVG(i), MIN(s), LENGTH(s), "
                  "(SELECT MAX(r) FROM t)");
  ASSERT_TRUE(s2.ok()) << s2.status();
  EXPECT_EQ(s2->column(0).type, Type::kInteger);
  EXPECT_EQ(s2->column(1).type, Type::kReal);
  EXPECT_EQ(s2->column(2).type, Type::kText);
  EXPECT_EQ(s2->column(3).type, Type::kInteger);
  EXPECT_EQ(s2->column(4).type, Type::kReal);

  auto star = infer("*");
  ASSERT_TRUE(star.ok());
  EXPECT_EQ(star->num_columns(), 3u);

  EXPECT_FALSE(infer("ghost").ok());
}

// --- IMPORT VIEW end to end --------------------------------------------------

TEST(ImportViewTest, ViewExportsToTheFederation) {
  core::MultidatabaseSystem sys;
  ASSERT_TRUE(
      sys.AddService("svc", "site1", CapabilityProfile::IngresLike()).ok());
  auto engine = *sys.GetEngine("svc");
  ASSERT_TRUE(engine->CreateDatabase("d").ok());
  ASSERT_TRUE(sys.RunLocalSql(
                     "svc", "d",
                     "CREATE TABLE secret (id INTEGER, who TEXT, "
                     "salary REAL);"
                     "INSERT INTO secret VALUES (1, 'ann', 10.0), "
                     "(2, 'bob', 20.0);"
                     "CREATE VIEW pub AS SELECT id, who FROM secret")
                  .ok());
  ASSERT_TRUE(sys.Execute("INCORPORATE SERVICE svc SITE site1 CONNECTMODE "
                          "CONNECT COMMITMODE NOCOMMIT CREATE NOCOMMIT "
                          "INSERT NOCOMMIT DROP NOCOMMIT")
                  .ok());
  // Import only the public view — not the secret base table.
  ASSERT_TRUE(
      sys.Execute("IMPORT DATABASE d FROM SERVICE svc VIEW pub").ok());
  EXPECT_TRUE(sys.gdd().HasTable("d", "pub"));
  EXPECT_FALSE(sys.gdd().HasTable("d", "secret"));

  // Multidatabase queries read through the view.
  auto report = sys.Execute("USE d SELECT who FROM pub WHERE id = 2");
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->multitable.size(), 1u);
  ASSERT_EQ(report->multitable.elements[0].table.rows.size(), 1u);
  EXPECT_EQ(report->multitable.elements[0].table.rows[0][0],
            Value::Text("bob"));

  // Partial view import.
  ASSERT_TRUE(sys.Execute("IMPORT DATABASE d FROM SERVICE svc VIEW pub "
                          "COLUMN id")
                  .ok());
  EXPECT_EQ((*sys.gdd().GetTable("d", "pub"))->num_columns(), 1u);

  // Unknown view fails.
  EXPECT_FALSE(
      sys.Execute("IMPORT DATABASE d FROM SERVICE svc VIEW ghost").ok());
}

}  // namespace
}  // namespace msql::relational
