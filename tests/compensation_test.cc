// Experiment E5 (§3.3): the four-path execution matrix when Continental
// does not provide 2PC and a COMP clause supplies its semantic undo.
//
//   Continental | United      | Required action            | Outcome
//   ------------+-------------+----------------------------+---------
//   committed   | prepared    | commit United              | SUCCESS
//   committed   | aborted     | compensate Continental     | ABORTED
//   aborted     | prepared    | roll back United           | ABORTED
//   aborted     | aborted     | nothing                    | ABORTED
#include <gtest/gtest.h>

#include <memory>

#include "core/fixtures.h"
#include "core/mdbs_system.h"

namespace msql::core {
namespace {

using relational::FailPoint;

constexpr const char* kCompensatedRaise =
    "USE continental VITAL delta united VITAL\n"
    "UPDATE flight% SET rate% = rate% * 1.1\n"
    "WHERE sour% = 'Houston' AND dest% = 'San Antonio'\n"
    "COMP continental\n"
    "UPDATE flights SET rate = rate / 1.1\n"
    "WHERE source = 'Houston' AND destination = 'San Antonio'";

class CompensationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PaperFederationOptions options;
    options.continental_autocommit_only = true;  // the §3.3 premise
    auto sys = BuildPaperFederation(options);
    ASSERT_TRUE(sys.ok()) << sys.status();
    sys_ = std::move(*sys);
    cont_before_ = ContinentalFares();
    united_before_ = UnitedFares();
  }

  double Fares(const std::string& db, const std::string& sql) {
    auto engine = *sys_->GetEngine(PaperServiceOf(db));
    auto s = *engine->OpenSession(db);
    auto rs = engine->Execute(s, sql);
    EXPECT_TRUE(rs.ok()) << rs.status();
    double out = rs->rows[0][0].NumericAsReal();
    EXPECT_TRUE(engine->CloseSession(s).ok());
    return out;
  }
  double ContinentalFares() {
    return Fares("continental",
                 "SELECT SUM(rate) FROM flights WHERE source = 'Houston' "
                 "AND destination = 'San Antonio'");
  }
  double UnitedFares() {
    return Fares("united",
                 "SELECT SUM(rates) FROM flight WHERE sour = 'Houston' "
                 "AND dest = 'San Antonio'");
  }

  std::unique_ptr<MultidatabaseSystem> sys_;
  double cont_before_ = 0;
  double united_before_ = 0;
};

TEST_F(CompensationTest, Path1BothSucceedCommitsUnited) {
  auto report = sys_->Execute(kCompensatedRaise);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kSuccess);
  EXPECT_NEAR(ContinentalFares(), cont_before_ * 1.1, 1e-6);
  EXPECT_NEAR(UnitedFares(), united_before_ * 1.1, 1e-6);
  // Continental ran compensable-autocommit, united two-phase.
  EXPECT_EQ(report->run.FindTask("t_continental")->state,
            dol::DolTaskState::kCommitted);
  EXPECT_EQ(report->run.FindTask("t_united")->state,
            dol::DolTaskState::kCommitted);
}

TEST_F(CompensationTest, Path2UnitedAbortsCompensatesContinental) {
  (*sys_->GetEngine(PaperServiceOf("united")))
      ->InjectFailure(FailPoint::kNextStatement);
  auto report = sys_->Execute(kCompensatedRaise);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kAborted);
  // Continental committed, then its COMP clause ran: fares restored
  // (semantically — 10% up then divided back down).
  EXPECT_NEAR(ContinentalFares(), cont_before_, 1e-6);
  EXPECT_NEAR(UnitedFares(), united_before_, 1e-6);
  EXPECT_EQ(report->run.FindTask("t_continental")->state,
            dol::DolTaskState::kCompensated);
  EXPECT_EQ(report->run.FindTask("t_united")->state,
            dol::DolTaskState::kAborted);
}

TEST_F(CompensationTest, Path3ContinentalAbortsRollsBackUnited) {
  (*sys_->GetEngine(PaperServiceOf("continental")))
      ->InjectFailure(FailPoint::kNextStatement);
  auto report = sys_->Execute(kCompensatedRaise);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kAborted);
  EXPECT_NEAR(ContinentalFares(), cont_before_, 1e-6);
  EXPECT_NEAR(UnitedFares(), united_before_, 1e-6);  // rolled back from P
  EXPECT_EQ(report->run.FindTask("t_continental")->state,
            dol::DolTaskState::kAborted);
  EXPECT_EQ(report->run.FindTask("t_united")->state,
            dol::DolTaskState::kAborted);
}

TEST_F(CompensationTest, Path4BothAbortNothingToRepair) {
  (*sys_->GetEngine(PaperServiceOf("continental")))
      ->InjectFailure(FailPoint::kNextStatement);
  (*sys_->GetEngine(PaperServiceOf("united")))
      ->InjectFailure(FailPoint::kNextStatement);
  auto report = sys_->Execute(kCompensatedRaise);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kAborted);
  EXPECT_NEAR(ContinentalFares(), cont_before_, 1e-6);
  EXPECT_NEAR(UnitedFares(), united_before_, 1e-6);
}

TEST_F(CompensationTest, WithoutCompSingleNo2pcVitalUsesLastResource) {
  // Without the COMP clause, continental (the only no-2PC vital) is
  // scheduled last: clean runs still succeed...
  auto report = sys_->Execute(
      "USE continental VITAL delta united VITAL\n"
      "UPDATE flight% SET rate% = rate% * 1.1\n"
      "WHERE sour% = 'Houston' AND dest% = 'San Antonio'");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kSuccess);
  EXPECT_NEAR(ContinentalFares(), cont_before_ * 1.1, 1e-6);
}

TEST_F(CompensationTest, LastResourceFailureStillAtomic) {
  // ...and if the last resource itself fails, the prepared vitals roll
  // back — atomicity holds without compensation.
  (*sys_->GetEngine(PaperServiceOf("continental")))
      ->InjectFailure(FailPoint::kNextStatement);
  auto report = sys_->Execute(
      "USE continental VITAL delta united VITAL\n"
      "UPDATE flight% SET rate% = rate% * 1.1\n"
      "WHERE sour% = 'Houston' AND dest% = 'San Antonio'");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kAborted);
  EXPECT_NEAR(ContinentalFares(), cont_before_, 1e-6);
  EXPECT_NEAR(UnitedFares(), united_before_, 1e-6);
}

TEST_F(CompensationTest, TwoNo2pcVitalsRefusedEndToEnd) {
  // Downgrade united too (re-INCORPORATE it as autocommit-only).
  auto report_or = sys_->Execute(
      "INCORPORATE SERVICE united_svc SITE site_united CONNECTMODE "
      "CONNECT COMMITMODE COMMIT CREATE COMMIT INSERT COMMIT DROP COMMIT");
  ASSERT_TRUE(report_or.ok());
  auto report = sys_->Execute(
      "USE continental VITAL united VITAL\n"
      "UPDATE flight% SET rate% = rate% * 1.1");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kRefused);
  EXPECT_EQ(report->detail.code(), StatusCode::kRefused);
  // Nothing was touched anywhere.
  EXPECT_NEAR(ContinentalFares(), cont_before_, 1e-6);
  EXPECT_NEAR(UnitedFares(), united_before_, 1e-6);
}

TEST_F(CompensationTest, GeneratedPlanContainsCompensationBlock) {
  auto report = sys_->Execute(kCompensatedRaise);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->dol_text.find("COMPENSATION {"), std::string::npos)
      << report->dol_text;
}

}  // namespace
}  // namespace msql::core
