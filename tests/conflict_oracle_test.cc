// Differential oracle for the static conflict analyzer (DESIGN.md §13):
// randomized mixed workloads run through the federation server with the
// per-service lock managers' audit trails armed, then every *runtime*
// concurrency event is checked against the *static* prediction:
//
//   - soundness: every observed waits-for edge (session parked behind
//     another) joins two sessions whose summaries Classify() as
//     contended, and every deadlock victim was parked behind a session
//     its summary carries a predicted lock-order inversion against;
//   - superset: every table lock a service actually granted (S/X, from
//     the LockManager audit log) is covered by some admitted session's
//     predicted access set with the same or stronger mode;
//   - scheduling: with conflict_aware admission on, the same workload
//     commits the same seats exactly once with no more deadlock victims
//     than the baseline, and the deferral counters show the avoided
//     pairs.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/conflict_analyzer.h"
#include "common/rng.h"
#include "core/fixtures.h"
#include "core/mdbs_system.h"
#include "core/session_scheduler.h"
#include "relational/txn.h"

namespace msql::core {
namespace {

using analysis::AccessSummary;
using analysis::Classify;
using analysis::ConflictKind;
using analysis::PredictedMode;
using analysis::ResourcesOverlap;
using analysis::TaskAccess;

std::string SeatMt(const std::string& client) {
  return "BEGIN MULTITRANSACTION\n"
         "USE continental delta\n"
         "LET fitab.snu.sstat.clname BE\n"
         "  f838.seatnu.seatstatus.clientname\n"
         "  fnu747.snu.sstat.passname\n"
         "UPDATE fitab SET sstat = 'TAKEN', clname = '" +
         client +
         "'\n"
         "WHERE snu = (SELECT MIN(snu) FROM fitab WHERE sstat = 'FREE');\n"
         "COMMIT\n"
         "  continental AND delta\n"
         "END MULTITRANSACTION";
}

std::string OrderedSeatMt(bool continental_first,
                          const std::string& client) {
  std::string continental =
      "USE continental\n"
      "UPDATE f838 SET seatstatus = 'TAKEN', clientname = '" +
      client +
      "'\n"
      "WHERE seatnu = (SELECT MIN(seatnu) FROM f838 "
      "WHERE seatstatus = 'FREE');\n";
  std::string delta =
      "USE delta\n"
      "UPDATE fnu747 SET sstat = 'TAKEN', passname = '" + client +
      "'\n"
      "WHERE snu = (SELECT MIN(snu) FROM fnu747 WHERE sstat = 'FREE');\n";
  return "BEGIN MULTITRANSACTION\n" +
         (continental_first ? continental + delta : delta + continental) +
         "COMMIT\n"
         "  continental AND delta\n"
         "END MULTITRANSACTION";
}

int64_t Count(MultidatabaseSystem& sys, const std::string& db,
              const std::string& sql) {
  auto engine = *sys.GetEngine(PaperServiceOf(db));
  auto session = *engine->OpenSession(db);
  auto rs = engine->Execute(session, sql);
  EXPECT_TRUE(rs.ok()) << rs.status();
  int64_t out = rs.ok() ? rs->rows[0][0].AsInteger() : 0;
  EXPECT_TRUE(engine->CloseSession(session).ok());
  return out;
}

int64_t TakenOn(MultidatabaseSystem& sys) {
  return Count(sys, "continental",
               "SELECT COUNT(*) FROM f838 WHERE seatstatus = 'TAKEN'");
}

int64_t TakenDelta(MultidatabaseSystem& sys) {
  return Count(sys, "delta",
               "SELECT COUNT(*) FROM fnu747 WHERE sstat = 'TAKEN'");
}

std::string Lower(std::string text) {
  for (char& c : text) c = static_cast<char>(std::tolower(c));
  return text;
}

struct OracleRun {
  std::unique_ptr<MultidatabaseSystem> sys;
  std::vector<SessionResult> results;
  std::vector<bool> is_seat_mt;
  /// Per-service (resource, mode) grants from the lock audit trail.
  std::map<std::string,
           std::vector<std::pair<std::string, relational::LockManager::Mode>>>
      audited;
  int64_t base_cont = 0;
  int64_t base_delta = 0;
  int64_t makespan = 0;
  int deadlock_victims = 0;
  int64_t lock_waits = 0;
  int64_t deferrals = 0;
  int64_t avoided = 0;
};

OracleRun RunAuditedWorkload(uint64_t seed, int sessions,
                             bool conflict_aware) {
  OracleRun run;
  PaperFederationOptions options;
  options.seats_per_airline = 2 * sessions;
  auto built = BuildPaperFederation(options);
  EXPECT_TRUE(built.ok()) << built.status();
  if (!built.ok()) return run;
  run.sys = std::move(*built);
  run.base_cont = TakenOn(*run.sys);
  run.base_delta = TakenDelta(*run.sys);
  for (const auto& name : run.sys->environment().ServiceNames()) {
    auto lam = *run.sys->environment().GetLam(name);
    lam->engine()->lock_manager().set_audit(true);
  }

  ServerConfig config;
  config.conflict_aware = conflict_aware;
  FederationServer server(run.sys.get(), config);
  Rng rng(seed);
  for (int i = 0; i < sessions; ++i) {
    const std::string client = "o" + std::to_string(seed) + "_" +
                               std::to_string(i) +
                               (conflict_aware ? "a" : "b");
    const double roll = rng.NextDouble();
    if (roll < 0.5) {
      server.Submit(SeatMt(client));
      run.is_seat_mt.push_back(true);
    } else if (roll < 0.75) {
      server.Submit(OrderedSeatMt(rng.NextBool(0.5), client));
      run.is_seat_mt.push_back(true);
    } else {
      server.Submit("USE continental\nSELECT flnu FROM flights");
      run.is_seat_mt.push_back(false);
    }
  }
  auto results = server.RunAll();
  EXPECT_TRUE(results.ok()) << results.status();
  if (!results.ok()) return run;
  run.results = std::move(*results);
  run.makespan = server.virtual_now();
  for (const SessionResult& r : run.results) {
    run.lock_waits += r.lock_waits;
    run.deferrals += r.admission_deferrals;
    run.avoided += r.avoided_deadlocks;
    if (r.deadlock_victim) ++run.deadlock_victims;
  }
  for (const auto& name : run.sys->environment().ServiceNames()) {
    auto lam = *run.sys->environment().GetLam(name);
    run.audited[name] = lam->engine()->lock_manager().audit_log();
    lam->engine()->lock_manager().set_audit(false);
  }
  return run;
}

/// Soundness: runtime waits-for edges and deadlock victims were all
/// statically predicted by the pairwise classifier.
void CheckPredictionsCoverRuntime(const OracleRun& run) {
  for (const SessionResult& r : run.results) {
    if (r.observed_blockers.empty()) continue;
    ASSERT_NE(r.summary, nullptr)
        << "session " << r.session_id << " parked without a summary";
    bool victim_edge_predicted = false;
    for (uint64_t blocker : r.observed_blockers) {
      ASSERT_GE(blocker, 1u);
      ASSERT_LE(blocker, run.results.size());
      const SessionResult& other = run.results[blocker - 1];
      ASSERT_NE(other.summary, nullptr)
          << "blocker " << blocker << " has no summary";
      auto conflict = Classify(*r.summary, *other.summary);
      EXPECT_NE(conflict.kind, ConflictKind::kNone)
          << "session " << r.session_id << " waited for " << blocker
          << " but the analyzer classified the pair conflict-free";
      victim_edge_predicted |= conflict.deadlock_risk;
    }
    if (r.deadlock_victim) {
      EXPECT_TRUE(victim_edge_predicted)
          << "session " << r.session_id
          << " was a deadlock victim but no observed blocker carried a "
             "predicted lock-order inversion";
    }
  }
}

/// Superset: every granted table lock appears in some session's
/// predicted access set with the same or stronger mode.
void CheckPredictionsCoverGrants(const OracleRun& run) {
  using Mode = relational::LockManager::Mode;
  std::map<std::string, std::vector<const TaskAccess*>> predicted;
  for (const SessionResult& r : run.results) {
    if (!r.summary) continue;
    for (const TaskAccess& access : r.summary->accesses) {
      predicted[access.service].push_back(&access);
    }
  }
  for (const auto& [service, grants] : run.audited) {
    for (const auto& [resource, mode] : grants) {
      // Database-node intention locks are implied parents of the
      // predicted table locks; only table-level S/X grants are checked.
      if (mode != Mode::kShared && mode != Mode::kExclusive) continue;
      if (resource.find('.') == std::string::npos) continue;
      const std::string key = Lower(resource);
      bool covered = false;
      for (const TaskAccess* access : predicted[service]) {
        if (!ResourcesOverlap(access->resource, key)) continue;
        if (mode == Mode::kExclusive &&
            access->mode != PredictedMode::kExclusive) {
          continue;
        }
        covered = true;
        break;
      }
      EXPECT_TRUE(covered)
          << "service " << service << " granted "
          << (mode == Mode::kExclusive ? "X" : "S") << " on " << resource
          << ", which no session's predicted access set covers";
    }
  }
}

/// Exactly-once seat accounting, as in the stress suite.
void CheckSeatAccounting(const OracleRun& run) {
  int64_t committed_mts = 0;
  int64_t partial_mts = 0;
  for (size_t i = 0; i < run.results.size(); ++i) {
    const SessionResult& r = run.results[i];
    ASSERT_TRUE(r.report.has_value() || !r.status.ok())
        << "session " << r.session_id << " has neither report nor error";
    if (!r.report.has_value() || !run.is_seat_mt[i]) continue;
    if (r.report->outcome == GlobalOutcome::kSuccess) ++committed_mts;
    if (r.report->outcome == GlobalOutcome::kIncorrect) ++partial_mts;
  }
  EXPECT_EQ(partial_mts, 0);
  EXPECT_EQ(TakenOn(*run.sys) - run.base_cont, committed_mts);
  EXPECT_EQ(TakenDelta(*run.sys) - run.base_delta, committed_mts);
}

class ConflictOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConflictOracleTest, RuntimeConflictsAreStaticallyPredicted) {
  OracleRun run = RunAuditedWorkload(GetParam(), 80,
                                     /*conflict_aware=*/false);
  ASSERT_FALSE(run.results.empty());
  // The workload must actually contend, or the oracle checks nothing.
  EXPECT_GT(run.lock_waits, 0);
  CheckPredictionsCoverRuntime(run);
  CheckPredictionsCoverGrants(run);
  CheckSeatAccounting(run);
}

TEST_P(ConflictOracleTest, ConflictAwareAdmissionAvoidsPredictedDeadlocks) {
  OracleRun baseline = RunAuditedWorkload(GetParam(), 80,
                                          /*conflict_aware=*/false);
  OracleRun aware = RunAuditedWorkload(GetParam(), 80,
                                       /*conflict_aware=*/true);
  ASSERT_FALSE(baseline.results.empty());
  ASSERT_FALSE(aware.results.empty());
  // The predictions stay sound under the altered admission order...
  CheckPredictionsCoverRuntime(aware);
  CheckPredictionsCoverGrants(aware);
  // ...the work still happens exactly once...
  CheckSeatAccounting(aware);
  // ...and the deadlocks the analyzer predicted were scheduled around
  // instead of suffered.
  EXPECT_LE(aware.deadlock_victims, baseline.deadlock_victims);
  EXPECT_GT(aware.deferrals, 0);
  EXPECT_GT(aware.avoided, 0);
  for (const SessionResult& r : aware.results) {
    EXPECT_FALSE(r.deadlock_victim && r.avoided_deadlocks > 0)
        << "session " << r.session_id
        << " was deferred for safety yet still became a victim";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConflictOracleTest,
                         ::testing::Values(7u, 21u, 1993u));

}  // namespace
}  // namespace msql::core
