// Differential tests for the cost-based distributed optimizer: on every
// seed and query, the cost-based path (statistics catalog + transfer
// cost model + semi-join movement) must return exactly the answer the
// provable paper-heuristic fallback returns. The fallback stays
// reachable through MultidatabaseSystem::set_cost_based_optimizer(false)
// and is exercised here as the oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/fixtures.h"
#include "core/mdbs_system.h"

namespace msql::core {
namespace {

/// Rows of a join answer as a sorted multiset of display strings —
/// coordinator-side evaluation order is not part of the contract.
std::vector<std::string> SortedRows(const relational::ResultSet& rs) {
  std::vector<std::string> out;
  for (const auto& row : rs.rows) {
    std::string line;
    for (const auto& v : row) line += v.ToDisplayString() + "|";
    out.push_back(std::move(line));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// One random multidatabase join over the paper federation's schemas.
std::string RandomJoinQuery(Rng* rng) {
  auto rate_literal = [&] {
    return std::to_string(rng->NextInRange(50, 400));
  };
  switch (rng->NextBelow(4)) {
    case 0: {
      std::string q =
          "USE avis continental\n"
          "SELECT cars.code, flights.flnu "
          "FROM avis.cars, continental.flights "
          "WHERE cars.rate ";
      q += rng->NextBool(0.5) ? "=" : "<";
      q += " flights.rate";
      if (rng->NextBool(0.5)) q += " AND cars.carst = 'available'";
      if (rng->NextBool(0.5)) q += " AND flights.rate < " + rate_literal();
      return q;
    }
    case 1: {
      std::string q =
          "USE avis delta\n"
          "SELECT cars.code, flight.fnu FROM avis.cars, delta.flight "
          "WHERE cars.rate ";
      q += rng->NextBool(0.5) ? "=" : "<";
      q += " flight.rate";
      if (rng->NextBool(0.5)) q += " AND cars.rate > " + rate_literal();
      return q;
    }
    case 2: {
      std::string q =
          "USE continental delta\n"
          "SELECT flights.flnu, flight.fnu "
          "FROM continental.flights, delta.flight "
          "WHERE flights.rate = flight.rate";
      if (rng->NextBool(0.5)) q += " AND flight.rate < " + rate_literal();
      return q;
    }
    default:
      return "USE avis continental delta\n"
             "SELECT COUNT(*) FROM avis.cars, continental.flights, "
             "delta.flight WHERE cars.rate < flights.rate "
             "AND flights.rate = flight.rate";
  }
}

TEST(DistOptDiffTest, CostBasedAgreesWithHeuristicFallbackAcrossSeeds) {
  for (uint64_t seed : {7u, 21u, 1993u}) {
    PaperFederationOptions options;
    options.seed = seed;
    auto cost_sys = BuildPaperFederation(options);
    auto heur_sys = BuildPaperFederation(options);
    ASSERT_TRUE(cost_sys.ok()) << cost_sys.status();
    ASSERT_TRUE(heur_sys.ok()) << heur_sys.status();
    ASSERT_TRUE((*cost_sys)->cost_based_optimizer());  // on by default
    (*heur_sys)->set_cost_based_optimizer(false);
    for (const char* db :
         {"continental", "delta", "united", "avis", "national"}) {
      auto analyzed =
          (*cost_sys)->Execute("ANALYZE DATABASE " + std::string(db));
      ASSERT_TRUE(analyzed.ok()) << db << " -> " << analyzed.status();
    }

    Rng rng(seed);
    for (int q = 0; q < 8; ++q) {
      std::string sql = RandomJoinQuery(&rng);
      auto cost = (*cost_sys)->Execute(sql);
      auto heur = (*heur_sys)->Execute(sql);
      ASSERT_EQ(cost.ok(), heur.ok())
          << "seed " << seed << ": " << sql << "\ncost: " << cost.status()
          << "\nheuristic: " << heur.status();
      if (!cost.ok()) continue;
      EXPECT_EQ(cost->outcome, heur->outcome) << "seed " << seed << ": "
                                              << sql;
      EXPECT_EQ(cost->join_result.columns, heur->join_result.columns);
      EXPECT_EQ(SortedRows(cost->join_result),
                SortedRows(heur->join_result))
          << "seed " << seed << ": " << sql;
      // The cost breakdown travels with the report only on the
      // cost-based path, and ANALYZE has run for every table.
      EXPECT_NE(cost->cost_text.find("mode=cost-based"), std::string::npos)
          << sql << "\n" << cost->cost_text;
      EXPECT_TRUE(heur->cost_text.empty()) << heur->cost_text;
    }
  }
}

TEST(DistOptDiffTest, WithoutAnalyzeCostModeFallsBackPerQuery) {
  // Cost-based mode is on by default but statistics do not exist until
  // ANALYZE runs, so the very first join must take (and report) the
  // heuristic fallback — behavior-identical to the paper path.
  auto sys = BuildPaperFederation();
  ASSERT_TRUE(sys.ok()) << sys.status();
  auto report = (*sys)->Execute(
      "USE avis continental\n"
      "SELECT cars.code, flights.flnu FROM avis.cars, continental.flights "
      "WHERE cars.rate < flights.rate");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kSuccess);
  EXPECT_NE(report->cost_text.find("mode=heuristic"), std::string::npos)
      << report->cost_text;
  EXPECT_NE(report->cost_text.find("run ANALYZE"), std::string::npos);

  // After ANALYZE the same query reports a costed plan.
  ASSERT_TRUE((*sys)->Execute("ANALYZE DATABASE avis").ok());
  ASSERT_TRUE((*sys)->Execute("ANALYZE DATABASE continental").ok());
  auto costed = (*sys)->Execute(
      "USE avis continental\n"
      "SELECT cars.code, flights.flnu FROM avis.cars, continental.flights "
      "WHERE cars.rate < flights.rate");
  ASSERT_TRUE(costed.ok()) << costed.status();
  EXPECT_NE(costed->cost_text.find("mode=cost-based"), std::string::npos)
      << costed->cost_text;
  EXPECT_EQ(SortedRows(report->join_result), SortedRows(costed->join_result));
}

TEST(DistOptDiffTest, CommittedWriteChurnReengagesHeuristicUntilReanalyze) {
  auto sys = BuildPaperFederation();
  ASSERT_TRUE(sys.ok()) << sys.status();
  ASSERT_TRUE((*sys)->Execute("ANALYZE DATABASE avis").ok());
  ASSERT_TRUE((*sys)->Execute("ANALYZE DATABASE continental").ok());
  const std::string sql =
      "USE avis continental\n"
      "SELECT cars.code, flights.flnu FROM avis.cars, continental.flights "
      "WHERE cars.rate < flights.rate";
  auto fresh = (*sys)->Execute(sql);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_NE(fresh->cost_text.find("mode=cost-based"), std::string::npos)
      << fresh->cost_text;

  // With a tight churn budget, one committed DML batch over avis.cars
  // (4 rows) pushes its stats past max(floor=1, 0.2 × row_count) and the
  // optimizer must stop trusting them.
  (*sys)->gdd().set_stats_churn_limit(0.2, 1);
  auto dml = (*sys)->Execute("USE avis UPDATE cars SET rate = rate * 1.01");
  ASSERT_TRUE(dml.ok()) << dml.status();
  ASSERT_EQ(dml->outcome, GlobalOutcome::kSuccess);
  EXPECT_FALSE((*sys)->gdd().TableStatsFresh("avis", "cars"));

  auto stale = (*sys)->Execute(sql);
  ASSERT_TRUE(stale.ok()) << stale.status();
  EXPECT_NE(stale->cost_text.find("mode=heuristic"), std::string::npos)
      << stale->cost_text;
  EXPECT_NE(stale->cost_text.find("run ANALYZE"), std::string::npos)
      << stale->cost_text;
  // The fallback is a planning decision only — answers still agree.
  EXPECT_EQ(SortedRows(stale->join_result), SortedRows(fresh->join_result));

  // Re-ANALYZE resets the churn counters and re-engages the cost model.
  ASSERT_TRUE((*sys)->Execute("ANALYZE DATABASE avis").ok());
  EXPECT_TRUE((*sys)->gdd().TableStatsFresh("avis", "cars"));
  auto again = (*sys)->Execute(sql);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_NE(again->cost_text.find("mode=cost-based"), std::string::npos)
      << again->cost_text;
  EXPECT_EQ(SortedRows(again->join_result), SortedRows(fresh->join_result));
}

/// Skewed two-database federation: `alpha.small` holds 3 rows with 3
/// distinct keys, `beta.big` holds `big_rows` rows keyed 0..big_rows-1.
Result<std::unique_ptr<MultidatabaseSystem>> BuildSkewedPair(int big_rows) {
  auto sys = std::make_unique<MultidatabaseSystem>();
  for (const char* svc : {"alpha_svc", "beta_svc"}) {
    MSQL_RETURN_IF_ERROR(sys->AddService(
        svc, std::string("site_") + svc,
        relational::CapabilityProfile::IngresLike()));
  }
  MSQL_ASSIGN_OR_RETURN(auto* alpha, sys->GetEngine("alpha_svc"));
  MSQL_RETURN_IF_ERROR(alpha->CreateDatabase("alpha"));
  MSQL_RETURN_IF_ERROR(sys->RunLocalSql(
      "alpha_svc", "alpha",
      "CREATE TABLE small (k INTEGER, tag TEXT);"
      "INSERT INTO small VALUES (1, 'a'), (2, 'b'), (3, 'c')"));
  MSQL_ASSIGN_OR_RETURN(auto* beta, sys->GetEngine("beta_svc"));
  MSQL_RETURN_IF_ERROR(beta->CreateDatabase("beta"));
  MSQL_RETURN_IF_ERROR(
      sys->RunLocalSql("beta_svc", "beta",
                       "CREATE TABLE big (k INTEGER, v REAL)"));
  for (int start = 0; start < big_rows; start += 500) {
    std::string insert = "INSERT INTO big VALUES ";
    for (int i = start; i < std::min(start + 500, big_rows); ++i) {
      if (i > start) insert += ", ";
      insert += "(" + std::to_string(i) + ", " + std::to_string(i) + ".5)";
    }
    MSQL_RETURN_IF_ERROR(sys->RunLocalSql("beta_svc", "beta", insert));
  }
  for (const char* db : {"alpha", "beta"}) {
    auto inc = sys->Execute(
        "INCORPORATE SERVICE " + std::string(db) + "_svc SITE site_" + db +
        "_svc CONNECTMODE CONNECT COMMITMODE NOCOMMIT CREATE NOCOMMIT "
        "INSERT NOCOMMIT DROP NOCOMMIT");
    MSQL_RETURN_IF_ERROR(inc.status());
    auto imp = sys->Execute("IMPORT DATABASE " + std::string(db) +
                            " FROM SERVICE " + db + "_svc");
    MSQL_RETURN_IF_ERROR(imp.status());
  }
  return sys;
}

TEST(DistOptDiffTest, SemiJoinReductionPreservesAnswersAndSavesBytes) {
  constexpr int kBigRows = 5000;
  const std::string sql =
      "USE alpha beta\n"
      "SELECT small.tag, big.v FROM alpha.small, beta.big "
      "WHERE small.k = big.k";

  auto heur_sys = BuildSkewedPair(kBigRows);
  ASSERT_TRUE(heur_sys.ok()) << heur_sys.status();
  (*heur_sys)->set_cost_based_optimizer(false);
  auto heur = (*heur_sys)->Execute(sql);
  ASSERT_TRUE(heur.ok()) << heur.status();
  ASSERT_EQ(heur->outcome, GlobalOutcome::kSuccess);
  ASSERT_EQ(heur->join_result.rows.size(), 3u);

  auto cost_sys = BuildSkewedPair(kBigRows);
  ASSERT_TRUE(cost_sys.ok()) << cost_sys.status();
  ASSERT_TRUE((*cost_sys)->Execute("ANALYZE DATABASE alpha").ok());
  ASSERT_TRUE((*cost_sys)->Execute("ANALYZE DATABASE beta").ok());
  auto cost = (*cost_sys)->Execute(sql);
  ASSERT_TRUE(cost.ok()) << cost.status();
  EXPECT_EQ(cost->outcome, GlobalOutcome::kSuccess);
  EXPECT_EQ(SortedRows(cost->join_result), SortedRows(heur->join_result));
  // 3 provider keys against 5000 distinct remote keys: the optimizer
  // must choose the key-filter transfer and move far fewer bytes.
  EXPECT_NE(cost->cost_text.find("semi-join keys"), std::string::npos)
      << cost->cost_text;
  EXPECT_LT(cost->run.bytes, heur->run.bytes / 10)
      << "cost-based moved " << cost->run.bytes << " bytes vs heuristic "
      << heur->run.bytes << "\n" << cost->cost_text;
  // The installed key table was dropped at the remote site.
  auto beta_engine = (*cost_sys)->GetEngine("beta_svc");
  ASSERT_TRUE(beta_engine.ok());
  auto beta_db = (*beta_engine)->GetDatabaseConst("beta");
  ASSERT_TRUE(beta_db.ok());
  EXPECT_FALSE((*beta_db)->HasTable("mdbs_key_beta"));
}

}  // namespace
}  // namespace msql::core
