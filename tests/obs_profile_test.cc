// Query profiler (DESIGN.md §11): per-site attribution built from the
// input's span subtree, critical-path identification of the bounding
// site, 2PC latency rollup, and golden determinism of the rendered
// profile under a fixed seed.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/fixtures.h"
#include "core/mdbs_system.h"
#include "dol/engine.h"
#include "netsim/fault_injector.h"
#include "obs/profile.h"

namespace msql::core {
namespace {

using netsim::FaultPlan;
using netsim::FaultRule;

constexpr const char* kMultipleQuery =
    "USE avis national\n"
    "LET car.type.status BE cars.cartype.carst vehicle.vty.vstat\n"
    "SELECT %code, type, ~rate\n"
    "FROM car\n"
    "WHERE status = 'available'";

constexpr const char* kFareRaise =
    "USE continental VITAL delta united VITAL\n"
    "UPDATE flight% SET rate% = rate% * 1.1\n"
    "WHERE sour% = 'Houston' AND dest% = 'San Antonio'";

std::unique_ptr<MultidatabaseSystem> ProfiledFederation() {
  auto sys = BuildPaperFederation();
  EXPECT_TRUE(sys.ok()) << sys.status();
  (*sys)->environment().tracer().set_enabled(true);
  (*sys)->environment().metrics().set_enabled(true);
  (*sys)->set_collect_profiles(true);
  return std::move(*sys);
}

// The ISSUE.md acceptance scenario: a paper-scope multiple query with
// one artificially slow LAM must name that site on the critical path.
TEST(ObsProfileTest, SlowLamBoundsTheCriticalPath) {
  auto sys = ProfiledFederation();
  FaultPlan plan;
  plan.rules.push_back(FaultRule::Spike("national_svc", 30000));
  sys->environment().fault_injector().SetPlan(plan);
  auto report = sys->Execute(kMultipleQuery);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->outcome, GlobalOutcome::kSuccess);
  ASSERT_FALSE(report->profile_text.empty());
  EXPECT_NE(report->profile_text.find("bounding site: national_svc"),
            std::string::npos)
      << report->profile_text;
  // The bounding task is national's subquery task.
  EXPECT_NE(report->profile_text.find("t_national"), std::string::npos)
      << report->profile_text;
  // Both sites appear in the attribution table.
  EXPECT_NE(report->profile_text.find("avis_svc"), std::string::npos);
  EXPECT_NE(report->profile_text.find("national_svc"), std::string::npos);
}

// The profile's site table is an exact decomposition of the run
// accounting: attempts sum to the rpc.calls counter delta, messages and
// bytes sum to the run totals, and execute time is the makespan.
TEST(ObsProfileTest, SiteAttributionSumsToRunAndMetricsTotals) {
  auto sys = ProfiledFederation();
  auto report = sys->Execute(kMultipleQuery);
  ASSERT_TRUE(report.ok()) << report.status();

  obs::ProfileInputs inputs;
  inputs.root = 0;  // whole trace = this single input
  inputs.outcome = std::string(GlobalOutcomeName(report->outcome));
  inputs.makespan_micros = report->run.makespan_micros;
  inputs.messages = report->run.messages;
  inputs.bytes = report->run.bytes;
  auto profile =
      obs::BuildQueryProfile(sys->environment().tracer(), inputs);

  ASSERT_FALSE(profile.sites.empty());
  int64_t attempts = 0, messages = 0, bytes = 0, verb_calls = 0;
  for (const auto& site : profile.sites) {
    attempts += site.attempts;
    messages += site.messages;
    bytes += site.bytes_to_site + site.bytes_from_site;
    EXPECT_GT(site.lam_micros, 0) << site.service;
    EXPECT_LE(site.lam_micros, site.rpc_micros) << site.service;
    int64_t site_verb_calls = 0;
    for (const auto& [verb, n] : site.verb_calls) site_verb_calls += n;
    EXPECT_EQ(site_verb_calls, site.calls) << site.service;
    verb_calls += site_verb_calls;
  }
  const auto& metrics = sys->environment().metrics();
  EXPECT_EQ(attempts, metrics.Get("rpc.calls"));
  EXPECT_EQ(messages, report->run.messages);
  EXPECT_EQ(bytes, report->run.bytes);
  EXPECT_GT(verb_calls, 0);
  EXPECT_EQ(profile.execute_micros, report->run.makespan_micros);
  // Clean run: no retries, faults or timeouts anywhere.
  for (const auto& site : profile.sites) {
    EXPECT_EQ(site.retries, 0) << site.service;
    EXPECT_EQ(site.faults, 0) << site.service;
    EXPECT_EQ(site.timeouts, 0) << site.service;
  }
  // The critical path starts at the input root and ends inside some
  // service; its steps never travel backwards in time.
  ASSERT_GE(profile.critical_path.size(), 2u);
  for (size_t i = 1; i < profile.critical_path.size(); ++i) {
    EXPECT_GE(profile.critical_path[i].sim_start_micros,
              profile.critical_path[i - 1].sim_start_micros);
    EXPECT_LE(profile.critical_path[i].sim_end_micros,
              profile.critical_path[i - 1].sim_end_micros);
  }
  EXPECT_FALSE(profile.bounding_service.empty());
}

// A 2PC update across three airlines rolls its prepare/commit rounds
// into the profile (delta and united prepare; §3.2's fare raise).
TEST(ObsProfileTest, TwoPcRoundsAreProfiled) {
  auto sys = ProfiledFederation();
  auto report = sys->Execute(kFareRaise);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->outcome, GlobalOutcome::kSuccess);

  obs::ProfileInputs inputs;
  inputs.root = 0;
  auto profile =
      obs::BuildQueryProfile(sys->environment().tracer(), inputs);
  EXPECT_GT(profile.two_pc.prepares, 0);
  EXPECT_GT(profile.two_pc.prepare_micros, 0);
  EXPECT_GT(profile.two_pc.commits, 0);
  EXPECT_GT(profile.two_pc.commit_micros, 0);
  EXPECT_EQ(profile.two_pc.reprobes, 0);
  EXPECT_NE(report->profile_text.find("2pc: prepare"), std::string::npos)
      << report->profile_text;
}

// Golden profile: two fresh federations under the same seed and fault
// plan render byte-identical profile text and JSON (host time is
// excluded by default — nothing nondeterministic is left).
TEST(ObsProfileTest, ProfileTextIsByteIdenticalUnderFixedSeed) {
  std::string first_text, second_text, first_json, second_json;
  for (int run = 0; run < 2; ++run) {
    auto sys = ProfiledFederation();
    FaultPlan plan;
    plan.rules.push_back(FaultRule::Spike("national_svc", 30000));
    sys->environment().fault_injector().SetPlan(plan);
    auto report = sys->Execute(kMultipleQuery);
    ASSERT_TRUE(report.ok()) << report.status();
    obs::ProfileInputs inputs;
    inputs.root = 0;
    inputs.outcome = std::string(GlobalOutcomeName(report->outcome));
    auto profile =
        obs::BuildQueryProfile(sys->environment().tracer(), inputs);
    (run == 0 ? first_text : second_text) = report->profile_text;
    (run == 0 ? first_json : second_json) =
        obs::RenderProfileJson(profile);
  }
  EXPECT_GT(first_text.size(), 200u);
  EXPECT_EQ(first_text, second_text);
  EXPECT_EQ(first_json, second_json);
  EXPECT_EQ(first_text.find("host_us"), std::string::npos);
  // JSON shape smoke check.
  EXPECT_EQ(first_json.rfind("{", 0), 0u);
  EXPECT_NE(first_json.find("\"sites\":["), std::string::npos);
  EXPECT_NE(first_json.find("\"critical_path\":["), std::string::npos);
}

// Profiles are normalized to the input's own start: the second input of
// a session reports the same attribution as the first even though it
// runs later on the session timeline.
TEST(ObsProfileTest, ProfileIsIndependentOfTheSessionSimOffset) {
  auto sys = ProfiledFederation();
  auto first = sys->Execute(kMultipleQuery);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = sys->Execute(kMultipleQuery);
  ASSERT_TRUE(second.ok()) << second.status();
  ASSERT_FALSE(first->profile_text.empty());
  EXPECT_EQ(first->profile_text, second->profile_text);
}

// Off by default: without set_collect_profiles the report carries no
// profile text even when tracing is on.
TEST(ObsProfileTest, ProfilingIsOffByDefault) {
  auto sys_or = BuildPaperFederation();
  ASSERT_TRUE(sys_or.ok()) << sys_or.status();
  auto sys = std::move(*sys_or);
  sys->environment().tracer().set_enabled(true);
  sys->environment().metrics().set_enabled(true);
  auto report = sys->Execute(kMultipleQuery);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->profile_text.empty());
}

// Counter deltas isolate one input's growth from the session counters.
TEST(ObsProfileTest, CounterDeltasCoverOnlyTheProfiledInput) {
  auto sys = ProfiledFederation();
  auto first = sys->Execute(kMultipleQuery);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = sys->Execute(kMultipleQuery);
  ASSERT_TRUE(second.ok()) << second.status();
  // Both profiles report the same dol.runs delta (exactly this input),
  // not the cumulative session counter.
  for (const std::string* text :
       {&first->profile_text, &second->profile_text}) {
    EXPECT_NE(text->find("dol.runs +1"), std::string::npos) << *text;
  }
}

}  // namespace
}  // namespace msql::core
