# bench_check: schema-validates the committed bench baselines under
# bench/baselines/ and — when a bench has been re-run in this build tree
# (a fresh BENCH_*.json under ${BINARY_DIR}/bench) — compares its
# deterministic simulated-clock metrics against the baseline, failing on
# a >25% regression. Wall-clock metrics are never compared (host time is
# noisy); every compared metric lives on the netsim clock and is exact
# for a fixed seed. Baselines are the benches' `--quick` outputs;
# comparisons are guarded on the workload-scale fields, so a full-scale
# re-run simply skips entries whose scale differs from the baseline.
#
# Run via ctest: `ctest -R bench_check` (label `bench`). Invoked as
#   cmake -DSOURCE_DIR=... -DBINARY_DIR=... -P bench_check.cmake

if(NOT DEFINED SOURCE_DIR OR NOT DEFINED BINARY_DIR)
  message(FATAL_ERROR "bench_check: pass -DSOURCE_DIR and -DBINARY_DIR")
endif()

set(BASELINE_DIR "${SOURCE_DIR}/bench/baselines")
set(FRESH_DIR "${BINARY_DIR}/bench")
set(CHECK_FAILURES "")

# Records one failure and keeps going, so a single run reports them all.
macro(fail message)
  list(APPEND CHECK_FAILURES "${message}")
  message(STATUS "FAIL: ${message}")
endmacro()

# Reads baseline (required) and fresh (optional) copies of one file.
macro(load_pair filename base_var fresh_var)
  set(${base_var} "")
  set(${fresh_var} "")
  if(EXISTS "${BASELINE_DIR}/${filename}")
    file(READ "${BASELINE_DIR}/${filename}" ${base_var})
  else()
    fail("missing baseline bench/baselines/${filename}")
  endif()
  if(EXISTS "${FRESH_DIR}/${filename}")
    file(READ "${FRESH_DIR}/${filename}" ${fresh_var})
  endif()
endmacro()

# Schema: the member path (ARGN) must exist in ${json}.
macro(require filename json)
  string(JSON _value ERROR_VARIABLE _err GET "${json}" ${ARGN})
  if(_err)
    string(REPLACE ";" "." _path "${ARGN}")
    fail("${filename}: missing member ${_path}")
  endif()
endmacro()

# Sets ${skip_var} when the guard member (ARGN) differs between baseline
# and fresh — the two runs used different workload scales/modes, so
# their metrics are not comparable.
macro(guard filename base fresh skip_var)
  string(JSON _gb ERROR_VARIABLE _e1 GET "${base}" ${ARGN})
  string(JSON _gf ERROR_VARIABLE _e2 GET "${fresh}" ${ARGN})
  if(_e1 OR _e2 OR NOT _gb STREQUAL _gf)
    set(${skip_var} TRUE)
  endif()
endmacro()

# Fails when the fresh value of the integer metric at ARGN exceeds the
# baseline by more than 25%. Lower is better for every compared metric;
# improvements never fail. Zero baselines are skipped (no meaningful
# ratio).
macro(compare filename base fresh)
  string(JSON _b ERROR_VARIABLE _e1 GET "${base}" ${ARGN})
  string(JSON _f ERROR_VARIABLE _e2 GET "${fresh}" ${ARGN})
  if(NOT _e1 AND NOT _e2 AND _b GREATER 0)
    math(EXPR _limit "(${_b} * 5) / 4")
    if(_f GREATER _limit)
      string(REPLACE ";" "." _path "${ARGN}")
      fail("${filename}: ${_path} regressed ${_b} -> ${_f} (>25%)")
    endif()
  endif()
endmacro()

# -- E16 concurrency --------------------------------------------------------

load_pair(BENCH_concurrency.json base fresh)
if(base)
  require(BENCH_concurrency.json "${base}" bench)
  require(BENCH_concurrency.json "${base}" runs 0 sessions)
  require(BENCH_concurrency.json "${base}" runs 0 virtual_makespan_micros)
  require(BENCH_concurrency.json "${base}" runs 0 p50_makespan_micros)
  require(BENCH_concurrency.json "${base}" runs 0 p99_makespan_micros)
  require(BENCH_concurrency.json "${base}" runs 0 failures)
  if(fresh)
    set(skip FALSE)
    guard(BENCH_concurrency.json "${base}" "${fresh}" skip runs 0 sessions)
    if(NOT skip)
      compare(BENCH_concurrency.json "${base}" "${fresh}"
              runs 0 virtual_makespan_micros)
      compare(BENCH_concurrency.json "${base}" "${fresh}"
              runs 0 p99_makespan_micros)
    endif()
  endif()
endif()

# -- E17 conflict-aware scheduling ------------------------------------------

load_pair(BENCH_conflict_sched.json base fresh)
if(base)
  require(BENCH_conflict_sched.json "${base}" bench)
  require(BENCH_conflict_sched.json "${base}" seed)
  foreach(run 0 1)
    require(BENCH_conflict_sched.json "${base}" runs ${run} conflict_aware)
    require(BENCH_conflict_sched.json "${base}" runs ${run}
            deadlock_victims)
    require(BENCH_conflict_sched.json "${base}" runs ${run}
            completion_makespan_micros)
  endforeach()
  if(fresh)
    foreach(run 0 1)
      set(skip FALSE)
      guard(BENCH_conflict_sched.json "${base}" "${fresh}" skip
            runs ${run} sessions)
      guard(BENCH_conflict_sched.json "${base}" "${fresh}" skip
            runs ${run} conflict_aware)
      if(NOT skip)
        compare(BENCH_conflict_sched.json "${base}" "${fresh}"
                runs ${run} completion_makespan_micros)
      endif()
    endforeach()
  endif()
endif()

# -- E18 distributed optimizer ----------------------------------------------

load_pair(BENCH_distopt.json base fresh)
if(base)
  require(BENCH_distopt.json "${base}" bench)
  foreach(run 0 1)
    require(BENCH_distopt.json "${base}" runs ${run} cost_based)
    require(BENCH_distopt.json "${base}" runs ${run} bytes_moved)
    require(BENCH_distopt.json "${base}" runs ${run} makespan_micros)
  endforeach()
  if(fresh)
    foreach(run 0 1)
      set(skip FALSE)
      guard(BENCH_distopt.json "${base}" "${fresh}" skip runs ${run} big_rows)
      guard(BENCH_distopt.json "${base}" "${fresh}" skip
            runs ${run} cost_based)
      if(NOT skip)
        compare(BENCH_distopt.json "${base}" "${fresh}"
                runs ${run} bytes_moved)
        compare(BENCH_distopt.json "${base}" "${fresh}"
                runs ${run} makespan_micros)
      endif()
    endforeach()
  endif()
endif()

# -- E19 storage engine -----------------------------------------------------

load_pair(BENCH_storage.json base fresh)
if(base)
  require(BENCH_storage.json "${base}" bench)
  require(BENCH_storage.json "${base}" rows)
  require(BENCH_storage.json "${base}" page_reads)
  require(BENCH_storage.json "${base}" page_writes)
  require(BENCH_storage.json "${base}" wal_appends)
  require(BENCH_storage.json "${base}" recovered)
  if(fresh)
    set(skip FALSE)
    guard(BENCH_storage.json "${base}" "${fresh}" skip rows)
    guard(BENCH_storage.json "${base}" "${fresh}" skip pool_pages)
    if(NOT skip)
      compare(BENCH_storage.json "${base}" "${fresh}" page_reads)
      compare(BENCH_storage.json "${base}" "${fresh}" page_writes)
      compare(BENCH_storage.json "${base}" "${fresh}" wal_appends)
    endif()
  endif()
endif()

# -- E20 federation monitor -------------------------------------------------

load_pair(BENCH_monitor.json base fresh)
if(base)
  require(BENCH_monitor.json "${base}" bench)
  require(BENCH_monitor.json "${base}" seed)
  require(BENCH_monitor.json "${base}" overhead sessions)
  require(BENCH_monitor.json "${base}" overhead virtual_makespan_micros)
  require(BENCH_monitor.json "${base}" overhead windows_closed)
  foreach(run 0 1)
    require(BENCH_monitor.json "${base}" chaos ${run} adaptive)
    require(BENCH_monitor.json "${base}" chaos ${run}
            completion_makespan_micros)
    require(BENCH_monitor.json "${base}" chaos ${run} retried_sessions)
  endforeach()
  # The headline claim of E20 is encoded in the baseline itself:
  # adaptive admission must not be worse than fixed admission.
  string(JSON _fixed GET "${base}" chaos 0 completion_makespan_micros)
  string(JSON _adaptive GET "${base}" chaos 1 completion_makespan_micros)
  if(_adaptive GREATER _fixed)
    fail("BENCH_monitor.json baseline: adaptive completion makespan "
         "${_adaptive} worse than fixed ${_fixed}")
  endif()
  if(fresh)
    set(skip FALSE)
    guard(BENCH_monitor.json "${base}" "${fresh}" skip overhead sessions)
    if(NOT skip)
      compare(BENCH_monitor.json "${base}" "${fresh}"
              overhead virtual_makespan_micros)
    endif()
    foreach(run 0 1)
      set(skip FALSE)
      guard(BENCH_monitor.json "${base}" "${fresh}" skip
            chaos ${run} sessions)
      guard(BENCH_monitor.json "${base}" "${fresh}" skip
            chaos ${run} adaptive)
      if(NOT skip)
        compare(BENCH_monitor.json "${base}" "${fresh}"
                chaos ${run} completion_makespan_micros)
      endif()
    endforeach()
  endif()
endif()

# -- verdict ----------------------------------------------------------------

if(CHECK_FAILURES)
  list(LENGTH CHECK_FAILURES n)
  message(FATAL_ERROR "bench_check: ${n} failure(s); see FAIL lines above")
endif()
message(STATUS "bench_check: all baselines valid, no regressions")
