// DOL language (parser/printer round-trip, experiment E7) and engine
// semantics (tasks, parallel timing, conditions, commit/abort/
// compensate/transfer).
#include <gtest/gtest.h>

#include <memory>

#include "dol/engine.h"
#include "dol/parser.h"
#include "netsim/environment.h"
#include "relational/engine.h"

namespace msql::dol {
namespace {

using netsim::Environment;
using netsim::LinkParams;
using relational::CapabilityProfile;
using relational::LocalEngine;

TEST(DolParserTest, Section43ProgramParses) {
  // The paper's §4.3 listing, adapted to the implemented grammar (OPEN's
  // AT names the service; real SQL in the braces; block-ELSE syntax).
  const char* text = R"(
DOLBEGIN
  OPEN continental AT cont_svc AS cont;
  OPEN delta AT delta_svc AS delta;
  OPEN united AT united_svc AS unit;
  TASK t1 NOCOMMIT FOR cont { UPDATE flights SET rate = rate * 1.1 }
  ENDTASK;
  TASK t2 FOR delta { UPDATE flight SET rate = rate * 1.1 }
  ENDTASK;
  TASK t3 NOCOMMIT FOR unit { UPDATE flight SET rates = rates * 1.1 }
  ENDTASK;
  IF (t1=P) AND (t3=P) THEN
  BEGIN
    COMMIT t1, t3;
    DOLSTATUS = 0;
  END;
  ELSE
  BEGIN
    ABORT t1, t3;
    DOLSTATUS = 1;
  END;
  CLOSE cont delta unit;
DOLEND
)";
  auto program = ParseDol(text);
  ASSERT_TRUE(program.ok()) << program.status();
  ASSERT_EQ(program->statements.size(), 8u);
  EXPECT_EQ(program->statements[0]->kind(), DolStmtKind::kOpen);
  EXPECT_EQ(program->statements[3]->kind(), DolStmtKind::kTask);
  const auto& t1 = static_cast<const TaskStmt&>(*program->statements[3]);
  EXPECT_TRUE(t1.nocommit);
  EXPECT_EQ(t1.body_sql, "UPDATE flights SET rate = rate * 1.1");
  const auto& t2 = static_cast<const TaskStmt&>(*program->statements[4]);
  EXPECT_FALSE(t2.nocommit);
  EXPECT_EQ(program->statements[6]->kind(), DolStmtKind::kIf);
}

TEST(DolParserTest, RoundTripFixpoint) {
  const char* text = R"(
DOLBEGIN
  OPEN a AT a_svc AS ca;
  PARBEGIN
    TASK t1 NOCOMMIT FOR ca { UPDATE t SET x = 1 WHERE y = 'z' }
      COMPENSATION { UPDATE t SET x = 0 WHERE y = 'z' }
    ENDTASK;
    TASK t2 FOR ca { SELECT a, b FROM t }
    ENDTASK;
  PAREND;
  TRANSFER t2 TO ca TABLE tmp (a INTEGER, b TEXT(8));
  IF (t1=P) OR NOT (t2=C) THEN
  BEGIN
    COMMIT t1;
    COMPENSATE t1;
    DOLSTATUS = 2;
  END;
  CLOSE ca;
DOLEND
)";
  auto first = ParseDol(text);
  ASSERT_TRUE(first.ok()) << first.status();
  std::string rendered = first->ToDol();
  auto second = ParseDol(rendered);
  ASSERT_TRUE(second.ok()) << rendered << "\n" << second.status();
  EXPECT_EQ(second->ToDol(), rendered);
}

TEST(DolParserTest, Errors) {
  EXPECT_FALSE(ParseDol("OPEN a AT b AS c;").ok());  // missing DOLBEGIN
  EXPECT_FALSE(ParseDol("DOLBEGIN OPEN a AT b AS c;").ok());  // no DOLEND
  EXPECT_FALSE(
      ParseDol("DOLBEGIN TASK t FOR a { x ENDTASK; DOLEND").ok());
  EXPECT_FALSE(
      ParseDol("DOLBEGIN IF (t=Q) THEN DOLSTATUS = 0; DOLEND").ok());
  EXPECT_FALSE(ParseDol("DOLBEGIN CLOSE; DOLEND").ok());
}

// --- engine ----------------------------------------------------------------

class DolEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LinkParams link;
    link.latency_micros = 1000;
    link.micros_per_kb = 0;
    env_.network().set_default_link(link);
    AddEngine("asvc", "site_a", CapabilityProfile::IngresLike());
    AddEngine("bsvc", "site_b", CapabilityProfile::IngresLike());
  }

  void AddEngine(const std::string& service, const std::string& site,
                 CapabilityProfile profile) {
    auto engine = std::make_unique<LocalEngine>(service, profile);
    ASSERT_TRUE(engine->CreateDatabase("db").ok());
    auto s = *engine->OpenSession("db");
    ASSERT_TRUE(
        engine->Execute(s, "CREATE TABLE t (id INTEGER, v TEXT)").ok());
    ASSERT_TRUE(
        engine->Execute(s, "INSERT INTO t VALUES (1, 'a'), (2, 'b')").ok());
    ASSERT_TRUE(engine->CloseSession(s).ok());
    engines_[service] = engine.get();
    ASSERT_TRUE(env_.AddService(service, site, std::move(engine)).ok());
  }

  int64_t CountRows(const std::string& service) {
    auto s = *engines_[service]->OpenSession("db");
    auto rs = engines_[service]->Execute(s, "SELECT COUNT(*) FROM t");
    EXPECT_TRUE(engines_[service]->CloseSession(s).ok());
    return rs->rows[0][0].AsInteger();
  }

  DolRunResult Run(const std::string& text) {
    auto program = ParseDol(text);
    EXPECT_TRUE(program.ok()) << program.status();
    DolEngine engine(&env_);
    auto result = engine.Run(*program);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? std::move(*result) : DolRunResult{};
  }

  Environment env_;
  std::map<std::string, LocalEngine*> engines_;
};

TEST_F(DolEngineTest, AutocommitTaskCommits) {
  auto result = Run(R"(
DOLBEGIN
  OPEN db AT asvc AS a;
  TASK t1 FOR a { INSERT INTO t VALUES ( 3 , 'c' ) } ENDTASK;
  DOLSTATUS = 0;
  CLOSE a;
DOLEND)");
  EXPECT_EQ(result.dol_status, 0);
  EXPECT_EQ(result.FindTask("t1")->state, DolTaskState::kCommitted);
  EXPECT_EQ(CountRows("asvc"), 3);
}

TEST_F(DolEngineTest, NocommitTaskParksPrepared) {
  auto result = Run(R"(
DOLBEGIN
  OPEN db AT asvc AS a;
  TASK t1 NOCOMMIT FOR a { DELETE FROM t } ENDTASK;
  IF t1=P THEN BEGIN ABORT t1; END;
  CLOSE a;
DOLEND)");
  EXPECT_EQ(result.FindTask("t1")->state, DolTaskState::kAborted);
  EXPECT_EQ(CountRows("asvc"), 2);  // rolled back
}

TEST_F(DolEngineTest, CommitOfPreparedTaskPersists) {
  auto result = Run(R"(
DOLBEGIN
  OPEN db AT asvc AS a;
  TASK t1 NOCOMMIT FOR a { DELETE FROM t WHERE id = 1 } ENDTASK;
  IF t1=P THEN BEGIN COMMIT t1; DOLSTATUS = 0; END;
  ELSE BEGIN DOLSTATUS = 1; END;
  CLOSE a;
DOLEND)");
  EXPECT_EQ(result.dol_status, 0);
  EXPECT_EQ(result.FindTask("t1")->state, DolTaskState::kCommitted);
  EXPECT_EQ(CountRows("asvc"), 1);
}

TEST_F(DolEngineTest, FailingSqlAbortsTask) {
  auto result = Run(R"(
DOLBEGIN
  OPEN db AT asvc AS a;
  TASK t1 FOR a { DELETE FROM ghost } ENDTASK;
  IF t1=A THEN BEGIN DOLSTATUS = 7; END;
  CLOSE a;
DOLEND)");
  EXPECT_EQ(result.dol_status, 7);
  EXPECT_EQ(result.FindTask("t1")->state, DolTaskState::kAborted);
  EXPECT_FALSE(result.FindTask("t1")->last_status.ok());
}

TEST_F(DolEngineTest, PrepareRefusedOnAutocommitOnlyService) {
  AddEngine("csvc", "site_c", CapabilityProfile::SybaseLike());
  auto result = Run(R"(
DOLBEGIN
  OPEN db AT csvc AS c;
  TASK t1 NOCOMMIT FOR c { DELETE FROM t } ENDTASK;
  CLOSE c;
DOLEND)");
  EXPECT_EQ(result.FindTask("t1")->state, DolTaskState::kAborted);
  EXPECT_EQ(CountRows("csvc"), 2);  // nothing leaked
}

TEST_F(DolEngineTest, FailedOpenPoisonsChannel) {
  ASSERT_TRUE(env_.network().SetSiteDown("site_a", true).ok());
  auto result = Run(R"(
DOLBEGIN
  OPEN db AT asvc AS a;
  TASK t1 FOR a { SELECT * FROM t } ENDTASK;
  IF t1=A THEN BEGIN DOLSTATUS = 1; END;
  CLOSE a;
DOLEND)");
  EXPECT_EQ(result.dol_status, 1);
  EXPECT_EQ(result.FindTask("t1")->state, DolTaskState::kAborted);
  EXPECT_EQ(result.FindTask("t1")->last_status.code(),
            StatusCode::kUnavailable);
}

TEST_F(DolEngineTest, ParallelTasksOverlapOnTheClock) {
  const char* parallel_text = R"(
DOLBEGIN
  OPEN db AT asvc AS a;
  OPEN db AT bsvc AS b;
  PARBEGIN
    TASK t1 FOR a { SELECT * FROM t } ENDTASK;
    TASK t2 FOR b { SELECT * FROM t } ENDTASK;
  PAREND;
  CLOSE a b;
DOLEND)";
  const char* sequential_text = R"(
DOLBEGIN
  OPEN db AT asvc AS a;
  OPEN db AT bsvc AS b;
  TASK t1 FOR a { SELECT * FROM t } ENDTASK;
  TASK t2 FOR b { SELECT * FROM t } ENDTASK;
  CLOSE a b;
DOLEND)";
  auto par = Run(parallel_text);
  auto seq = Run(sequential_text);
  EXPECT_LT(par.makespan_micros, seq.makespan_micros);
  // Both tasks in the parallel run started at the same instant.
  EXPECT_EQ(par.FindTask("t1")->start_micros,
            par.FindTask("t2")->start_micros);
  // Same message count either way: parallelism wins time, not traffic.
  EXPECT_EQ(par.messages, seq.messages);
}

TEST_F(DolEngineTest, CompensationSemanticallyUndoes) {
  auto result = Run(R"(
DOLBEGIN
  OPEN db AT asvc AS a;
  TASK t1 FOR a { UPDATE t SET v = 'changed' WHERE id = 1 }
    COMPENSATION { UPDATE t SET v = 'a' WHERE id = 1 }
  ENDTASK;
  IF t1=C THEN BEGIN COMPENSATE t1; END;
  CLOSE a;
DOLEND)");
  EXPECT_EQ(result.FindTask("t1")->state, DolTaskState::kCompensated);
  auto s = *engines_["asvc"]->OpenSession("db");
  auto rs = engines_["asvc"]->Execute(s, "SELECT v FROM t WHERE id = 1");
  EXPECT_EQ(rs->rows[0][0].AsText(), "a");
}

TEST_F(DolEngineTest, CompensateWithoutBlockIsProgramError) {
  auto program = ParseDol(R"(
DOLBEGIN
  OPEN db AT asvc AS a;
  TASK t1 FOR a { DELETE FROM t WHERE id = 1 } ENDTASK;
  COMPENSATE t1;
  CLOSE a;
DOLEND)");
  ASSERT_TRUE(program.ok());
  DolEngine engine(&env_);
  auto result = engine.Run(*program);
  EXPECT_EQ(result.status().code(), StatusCode::kTransactionError);
}

TEST_F(DolEngineTest, AbortOfCommittedTaskIsProgramError) {
  auto program = ParseDol(R"(
DOLBEGIN
  OPEN db AT asvc AS a;
  TASK t1 FOR a { DELETE FROM t WHERE id = 1 } ENDTASK;
  ABORT t1;
  CLOSE a;
DOLEND)");
  ASSERT_TRUE(program.ok());
  DolEngine engine(&env_);
  EXPECT_EQ(engine.Run(*program).status().code(),
            StatusCode::kTransactionError);
}

TEST_F(DolEngineTest, TransferShipsPartialResult) {
  auto result = Run(R"(
DOLBEGIN
  OPEN db AT asvc AS a;
  OPEN db AT bsvc AS b;
  TASK t1 FOR a { SELECT id, v FROM t WHERE id = 1 } ENDTASK;
  TRANSFER t1 TO b TABLE tmp_a (id INTEGER, v TEXT);
  TASK q FOR b { SELECT COUNT ( * ) FROM tmp_a } ENDTASK;
  TASK drop1 FOR b { DROP TABLE tmp_a } ENDTASK;
  CLOSE a b;
DOLEND)");
  const TaskOutcome* q = result.FindTask("q");
  ASSERT_NE(q, nullptr);
  ASSERT_EQ(q->state, DolTaskState::kCommitted);
  EXPECT_EQ(q->result.rows[0][0].AsInteger(), 1);
}

TEST_F(DolEngineTest, ConditionLogicOverStates) {
  auto result = Run(R"(
DOLBEGIN
  OPEN db AT asvc AS a;
  TASK good FOR a { SELECT * FROM t } ENDTASK;
  TASK bad FOR a { SELECT * FROM ghost } ENDTASK;
  IF (good=C) AND (bad=A) THEN BEGIN DOLSTATUS = 10; END;
  IF (good=C) OR (bad=C) THEN BEGIN DOLSTATUS = 11; END;
  IF NOT (bad=C) THEN BEGIN DOLSTATUS = 12; END;
  CLOSE a;
DOLEND)");
  EXPECT_EQ(result.dol_status, 12);  // last matching IF wins
}

TEST_F(DolEngineTest, UnknownTaskInConditionIsError) {
  auto program = ParseDol(R"(
DOLBEGIN
  IF ghost=C THEN BEGIN DOLSTATUS = 1; END;
DOLEND)");
  ASSERT_TRUE(program.ok());
  DolEngine engine(&env_);
  EXPECT_EQ(engine.Run(*program).status().code(), StatusCode::kNotFound);
}

TEST_F(DolEngineTest, DuplicateTaskAndAliasRejected) {
  auto dup_alias = ParseDol(R"(
DOLBEGIN
  OPEN db AT asvc AS a;
  OPEN db AT bsvc AS a;
DOLEND)");
  ASSERT_TRUE(dup_alias.ok());
  DolEngine engine(&env_);
  EXPECT_EQ(engine.Run(*dup_alias).status().code(),
            StatusCode::kInvalidArgument);
}

// Regression: one engine must be reusable across Run calls — every
// piece of per-run state (channels, tasks, compensations, counters,
// DOLSTATUS) is reset at entry, so run 2 sees none of run 1.
TEST_F(DolEngineTest, EngineIsReusableAcrossRuns) {
  const char* text = R"(
DOLBEGIN
  OPEN db AT asvc AS a;
  TASK t1 FOR a { INSERT INTO t VALUES ( 9 , 'x' ) } ENDTASK;
  IF t1=C THEN BEGIN DOLSTATUS = 5; END;
  CLOSE a;
DOLEND)";
  auto program = ParseDol(text);
  ASSERT_TRUE(program.ok()) << program.status();
  DolEngine engine(&env_);
  auto first = engine.Run(*program);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = engine.Run(*program);
  ASSERT_TRUE(second.ok()) << second.status();
  // Identical per-run results: same status, same single task, same
  // traffic and timing — nothing accumulated from run 1.
  EXPECT_EQ(second->dol_status, first->dol_status);
  EXPECT_EQ(second->tasks.size(), 1u);
  EXPECT_EQ(second->messages, first->messages);
  EXPECT_EQ(second->bytes, first->bytes);
  EXPECT_EQ(second->makespan_micros, first->makespan_micros);
  EXPECT_EQ(second->retries, 0);
  EXPECT_EQ(second->reprobes, 0);
  EXPECT_EQ(CountRows("asvc"), 4);  // both inserts really ran
}

// Regression: DolRunResult.messages/bytes were computed as deltas of
// the *global* network counters, so any unrelated traffic on the same
// environment between or during runs was billed to the run. They are
// now summed from per-call accounting.
TEST_F(DolEngineTest, RunTrafficIgnoresUnrelatedEnvironmentCalls) {
  const char* text = R"(
DOLBEGIN
  OPEN db AT asvc AS a;
  TASK t1 FOR a { SELECT * FROM t } ENDTASK;
  CLOSE a;
DOLEND)";
  auto program = ParseDol(text);
  ASSERT_TRUE(program.ok()) << program.status();
  DolEngine engine(&env_);
  auto first = engine.Run(*program);
  ASSERT_TRUE(first.ok()) << first.status();
  // Stray coordinator traffic outside any run (health probes, another
  // engine's calls) must not appear in the next run's accounting.
  netsim::LamRequest ping;
  ping.type = netsim::LamRequestType::kPing;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(env_.Call("bsvc", ping, 0).ok());
  }
  auto second = engine.Run(*program);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->messages, first->messages);
  EXPECT_EQ(second->bytes, first->bytes);
  EXPECT_GT(second->messages, 0);
}

}  // namespace
}  // namespace msql::dol
