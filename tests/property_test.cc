// Property-style sweeps over system invariants: rollback-identity of
// the local engines, the formal vital-set outcome rule end-to-end,
// translator output round-tripping through the DOL parser, and
// multitable merging.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "core/fixtures.h"
#include "core/mdbs_system.h"
#include "dol/engine.h"
#include "dol/parser.h"
#include "netsim/fault_injector.h"
#include "msql/multitable.h"
#include "msql/parser.h"
#include "relational/engine.h"
#include "translator/translator.h"

namespace msql {
namespace {

using core::BuildPaperFederation;
using core::GlobalOutcome;
using core::PaperServiceOf;
using relational::CapabilityProfile;
using relational::FailPoint;
using relational::LocalEngine;
using relational::ResultSet;
using relational::SessionId;

// ---------------------------------------------------------------------------
// Property 1: any transactional workload followed by ROLLBACK is the
// identity on database state.
// ---------------------------------------------------------------------------

class RollbackIdentityTest : public ::testing::TestWithParam<uint64_t> {};

ResultSet Snapshot(LocalEngine* engine, SessionId s) {
  auto rs = engine->Execute(s, "SELECT * FROM t ORDER BY id, tag");
  EXPECT_TRUE(rs.ok()) << rs.status();
  return rs.ok() ? std::move(*rs) : ResultSet{};
}

TEST_P(RollbackIdentityTest, RandomWorkloadThenRollbackIsIdentity) {
  Rng rng(GetParam());
  LocalEngine engine("svc", CapabilityProfile::IngresLike());
  ASSERT_TRUE(engine.CreateDatabase("db").ok());
  SessionId s = *engine.OpenSession("db");
  ASSERT_TRUE(
      engine.Execute(s, "CREATE TABLE t (id INTEGER, tag TEXT)").ok());
  // Seed 20 committed rows.
  std::string seed_sql = "INSERT INTO t VALUES ";
  for (int i = 0; i < 20; ++i) {
    if (i > 0) seed_sql += ", ";
    seed_sql += "(" + std::to_string(i) + ", 'seed')";
  }
  ASSERT_TRUE(engine.Execute(s, seed_sql).ok());
  ResultSet before = Snapshot(&engine, s);

  // Random workload inside one transaction: 30 mixed operations.
  ASSERT_TRUE(engine.Begin(s).ok());
  for (int op = 0; op < 30; ++op) {
    int id = static_cast<int>(rng.NextBelow(25));
    switch (rng.NextBelow(3)) {
      case 0:
        ASSERT_TRUE(engine
                        .Execute(s, "INSERT INTO t VALUES (" +
                                        std::to_string(100 + op) +
                                        ", 'new')")
                        .ok());
        break;
      case 1:
        ASSERT_TRUE(engine
                        .Execute(s, "UPDATE t SET tag = 'touched' "
                                    "WHERE id = " + std::to_string(id))
                        .ok());
        break;
      default:
        ASSERT_TRUE(engine
                        .Execute(s, "DELETE FROM t WHERE id = " +
                                        std::to_string(id))
                        .ok());
        break;
    }
  }
  ASSERT_TRUE(engine.Rollback(s).ok());
  ResultSet after = Snapshot(&engine, s);
  EXPECT_EQ(before, after) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RollbackIdentityTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 17u, 99u,
                                           12345u));

// ---------------------------------------------------------------------------
// Property 2: the vital-set outcome rule, end to end. For the paper's
// fare raise (continental VITAL, delta plain, united VITAL) under every
// combination of per-airline statement failures:
//   outcome  = ABORTED  iff a vital subquery failed, else SUCCESS;
//   vitals   changed    iff outcome == SUCCESS;
//   delta    changed    iff delta itself did not fail (regardless).
// ---------------------------------------------------------------------------

class VitalMatrixTest : public ::testing::TestWithParam<int> {};

TEST_P(VitalMatrixTest, OutcomeFollowsTheFormalRule) {
  int mask = GetParam();
  bool fail_cont = (mask & 1) != 0;
  bool fail_delta = (mask & 2) != 0;
  bool fail_united = (mask & 4) != 0;

  auto sys = std::move(BuildPaperFederation()).value();
  auto fares = [&](const std::string& db, const std::string& sql) {
    auto engine = *sys->GetEngine(PaperServiceOf(db));
    auto s = *engine->OpenSession(db);
    auto rs = engine->Execute(s, sql);
    double out = rs->rows[0][0].NumericAsReal();
    EXPECT_TRUE(engine->CloseSession(s).ok());
    return out;
  };
  const std::string cont_q =
      "SELECT SUM(rate) FROM flights WHERE source = 'Houston' AND "
      "destination = 'San Antonio'";
  const std::string delta_q =
      "SELECT SUM(rate) FROM flight WHERE source = 'Houston' AND "
      "dest = 'San Antonio'";
  const std::string united_q =
      "SELECT SUM(rates) FROM flight WHERE sour = 'Houston' AND "
      "dest = 'San Antonio'";
  double cont0 = fares("continental", cont_q);
  double delta0 = fares("delta", delta_q);
  double united0 = fares("united", united_q);

  if (fail_cont) {
    (*sys->GetEngine(PaperServiceOf("continental")))
        ->InjectFailure(FailPoint::kNextStatement);
  }
  if (fail_delta) {
    (*sys->GetEngine(PaperServiceOf("delta")))
        ->InjectFailure(FailPoint::kNextStatement);
  }
  if (fail_united) {
    (*sys->GetEngine(PaperServiceOf("united")))
        ->InjectFailure(FailPoint::kNextStatement);
  }
  auto report = sys->Execute(
      "USE continental VITAL delta united VITAL\n"
      "UPDATE flight% SET rate% = rate% * 1.1\n"
      "WHERE sour% = 'Houston' AND dest% = 'San Antonio'");
  ASSERT_TRUE(report.ok()) << report.status();

  bool vital_failed = fail_cont || fail_united;
  EXPECT_EQ(report->outcome, vital_failed ? GlobalOutcome::kAborted
                                          : GlobalOutcome::kSuccess)
      << "mask " << mask;
  double factor = vital_failed ? 1.0 : 1.1;
  EXPECT_NEAR(fares("continental", cont_q), cont0 * factor, 1e-6);
  EXPECT_NEAR(fares("united", united_q), united0 * factor, 1e-6);
  // Delta is autocommitted: its change depends only on its own failure.
  EXPECT_NEAR(fares("delta", delta_q),
              delta0 * (fail_delta ? 1.0 : 1.1), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AllFailureMasks, VitalMatrixTest,
                         ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Property 3: every generated DOL plan round-trips through the DOL
// parser (print ∘ parse ∘ print is a fixpoint).
// ---------------------------------------------------------------------------

class PlanRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PlanRoundTripTest, TranslatedPlanReparsesToAFixpoint) {
  auto sys = std::move(BuildPaperFederation()).value();
  auto report = sys->Execute(GetParam());
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_FALSE(report->dol_text.empty());
  // The generated program must parse; after one print/parse cycle the
  // text reaches a fixpoint (brace bodies are re-rendered from tokens,
  // so the very first print may differ in whitespace only).
  auto first = dol::ParseDol(report->dol_text);
  ASSERT_TRUE(first.ok()) << report->dol_text << "\n" << first.status();
  EXPECT_EQ(first->statements.size(),
            dol::ParseDol(report->dol_text)->statements.size());
  std::string text2 = first->ToDol();
  auto second = dol::ParseDol(text2);
  ASSERT_TRUE(second.ok()) << text2 << "\n" << second.status();
  EXPECT_EQ(second->ToDol(), text2);
}

INSTANTIATE_TEST_SUITE_P(
    Queries, PlanRoundTripTest,
    ::testing::Values(
        "USE avis national\n"
        "LET car.code BE cars.code vehicle.vcode\n"
        "SELECT code FROM car",
        "USE continental VITAL delta united VITAL\n"
        "UPDATE flight% SET rate% = rate% * 1.0",
        "USE continental VITAL united VITAL\n"
        "UPDATE flight% SET rate% = rate% * 1.0\n"
        "COMP continental UPDATE flights SET rate = rate / 1.0",
        "USE avis continental\n"
        "SELECT cars.code FROM avis.cars, continental.flights "
        "WHERE cars.rate < flights.rate",
        "BEGIN MULTITRANSACTION\n"
        "USE continental delta UPDATE flight% SET rate = rate * 1.0;\n"
        "COMMIT continental delta END MULTITRANSACTION"));

// ---------------------------------------------------------------------------
// Property 4: multitable merging.
// ---------------------------------------------------------------------------

TEST(MultitableMergeTest, AlignedColumnsMerge) {
  auto sys = std::move(BuildPaperFederation()).value();
  auto report = sys->Execute(
      "USE avis national\n"
      "LET car.type BE cars.cartype vehicle.vty\n"
      "SELECT %code, type FROM car");
  ASSERT_TRUE(report.ok()) << report.status();
  auto merged = report->multitable.Merge();
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_EQ(merged->columns,
            (std::vector<std::string>{"mdb", "code", "type"}));
  EXPECT_EQ(merged->rows.size(), report->multitable.TotalRows());
  // Every row's first value names its source element.
  size_t avis_rows = 0;
  for (const auto& row : merged->rows) {
    if (row[0].AsText() == "avis") ++avis_rows;
  }
  EXPECT_EQ(avis_rows, report->multitable.Find("avis")->table.rows.size());
}

TEST(MultitableMergeTest, MisalignedColumnsRefuse) {
  auto sys = std::move(BuildPaperFederation()).value();
  // ~rate keeps a rate column at avis only: columns differ.
  auto report = sys->Execute(
      "USE avis national\n"
      "LET car.type.status BE cars.cartype.carst vehicle.vty.vstat\n"
      "SELECT %code, type, ~rate FROM car WHERE status = 'available'");
  ASSERT_TRUE(report.ok());
  auto merged = report->multitable.Merge();
  EXPECT_EQ(merged.status().code(), StatusCode::kInvalidArgument);
}

TEST(MultitableMergeTest, EmptyMultitableMergesToHeaderOnly) {
  lang::Multitable empty;
  auto merged = empty.Merge();
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->columns, (std::vector<std::string>{"mdb"}));
  EXPECT_TRUE(merged->rows.empty());
}

// ---------------------------------------------------------------------------
// Property 5: concurrent local activity aborts global subqueries
// through the whole stack (lock conflicts surface as vital aborts).
// ---------------------------------------------------------------------------

TEST(ConcurrencyTest, LocalLockHolderAbortsVitalGlobalQuery) {
  auto sys = std::move(BuildPaperFederation()).value();
  // A local client holds an exclusive lock on continental.flights.
  auto engine = *sys->GetEngine(PaperServiceOf("continental"));
  SessionId local = *engine->OpenSession("continental");
  ASSERT_TRUE(engine->Begin(local).ok());
  ASSERT_TRUE(
      engine->Execute(local, "UPDATE flights SET rate = rate").ok());

  auto report = sys->Execute(
      "USE continental VITAL united VITAL\n"
      "UPDATE flight% SET rate% = rate% * 1.1");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kAborted);
  EXPECT_EQ(report->run.FindTask("t_continental")->last_status.code(),
            StatusCode::kAborted);

  // Once the local client commits, the global query goes through.
  ASSERT_TRUE(engine->Commit(local).ok());
  auto retry = sys->Execute(
      "USE continental VITAL united VITAL\n"
      "UPDATE flight% SET rate% = rate% * 1.1");
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->outcome, GlobalOutcome::kSuccess);
}

// ---------------------------------------------------------------------------
// Property 6: the §3.2.1 outcome rule holds under arbitrary seeded
// fault schedules, and a plan seed fully determines the run.
//   - never kSuccess while a VITAL task did not commit;
//   - never kAborted while a VITAL task did commit;
//   - faults confined to NON-VITAL services never change the outcome;
//   - two runs from identical seeds produce identical traces.
// ---------------------------------------------------------------------------

constexpr const char* kChaosFareRaise =
    "USE continental VITAL delta united VITAL\n"
    "UPDATE flight% SET rate% = rate% * 1.1\n"
    "WHERE sour% = 'Houston' AND dest% = 'San Antonio'";

/// A small random fault schedule over `services`, derived from `seed`.
netsim::FaultPlan RandomFaultPlan(uint64_t seed,
                                  const std::vector<std::string>& services) {
  using netsim::FaultAction;
  using netsim::LamRequestType;
  static const LamRequestType kVerbs[] = {
      LamRequestType::kOpenSession, LamRequestType::kExecute,
      LamRequestType::kBegin,       LamRequestType::kPrepare,
      LamRequestType::kCommit,      LamRequestType::kRollback};
  static const FaultAction kActions[] = {
      FaultAction::kReject, FaultAction::kLostRequest,
      FaultAction::kLostResponse, FaultAction::kLatencySpike};

  Rng rng(seed);
  netsim::FaultPlan plan;
  plan.seed = seed ^ 0x9E3779B97F4A7C15ULL;
  int n_rules = static_cast<int>(1 + rng.NextBelow(3));
  for (int i = 0; i < n_rules; ++i) {
    netsim::FaultRule rule;
    rule.service = services[rng.NextBelow(services.size())];
    rule.request_type = kVerbs[rng.NextBelow(6)];
    rule.action = kActions[rng.NextBelow(4)];
    if (rule.action == FaultAction::kLatencySpike) {
      rule.extra_latency_micros = 1000 * rng.NextInRange(1, 10);
    }
    rule.from_match = static_cast<int>(1 + rng.NextBelow(2));
    rule.count = static_cast<int>(1 + rng.NextBelow(2));
    plan.rules.push_back(rule);
  }
  return plan;
}

dol::RetryPolicy RandomRetryPolicy(uint64_t seed) {
  Rng rng(seed + 1);
  if (rng.NextBelow(2) == 0) return dol::RetryPolicy::None();
  return dol::RetryPolicy::WithAttempts(
      static_cast<int>(2 + rng.NextBelow(2)));
}

struct ChaosRun {
  GlobalOutcome outcome = GlobalOutcome::kSuccess;
  dol::DolTaskState continental = dol::DolTaskState::kNotRun;
  dol::DolTaskState united = dol::DolTaskState::kNotRun;
  std::string trace;
};

ChaosRun RunChaosFareRaise(uint64_t seed,
                           const std::vector<std::string>& services) {
  auto sys = std::move(BuildPaperFederation()).value();
  sys->set_retry_policy(RandomRetryPolicy(seed));
  sys->environment().fault_injector().SetPlan(
      RandomFaultPlan(seed, services));
  auto report = sys->Execute(kChaosFareRaise);
  EXPECT_TRUE(report.ok()) << "seed " << seed << ": " << report.status();
  ChaosRun out;
  if (!report.ok()) return out;
  out.outcome = report->outcome;
  out.continental = report->run.FindTask("t_continental")->state;
  out.united = report->run.FindTask("t_united")->state;
  out.trace = report->run.ToString();
  return out;
}

class ChaosInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosInvariantTest, OutcomeNeverContradictsVitalTaskStates) {
  const std::vector<std::string> all = {"continental_svc", "delta_svc",
                                        "united_svc"};
  ChaosRun run = RunChaosFareRaise(GetParam(), all);

  bool cont_committed = run.continental == dol::DolTaskState::kCommitted;
  bool united_committed = run.united == dol::DolTaskState::kCommitted;
  if (run.outcome == GlobalOutcome::kSuccess) {
    EXPECT_TRUE(cont_committed && united_committed)
        << "kSuccess with an uncommitted vital (seed " << GetParam()
        << ")\n" << run.trace;
  }
  if (run.outcome == GlobalOutcome::kAborted) {
    EXPECT_FALSE(cont_committed || united_committed)
        << "kAborted with a committed vital (seed " << GetParam()
        << ")\n" << run.trace;
  }

  // The schedule is a pure function of the seed: a second federation and
  // a second run reproduce the identical trace, timings included.
  ChaosRun again = RunChaosFareRaise(GetParam(), all);
  EXPECT_EQ(again.trace, run.trace) << "seed " << GetParam();
  EXPECT_EQ(again.outcome, run.outcome);
}

TEST_P(ChaosInvariantTest, NonVitalOnlyFaultsNeverChangeTheOutcome) {
  uint64_t seed = GetParam();
  auto sys = std::move(BuildPaperFederation()).value();
  auto fares = [&]() {
    auto engine = *sys->GetEngine(PaperServiceOf("united"));
    auto s = *engine->OpenSession("united");
    auto rs = engine->Execute(
        s, "SELECT SUM(rates) FROM flight WHERE sour = 'Houston' AND "
           "dest = 'San Antonio'");
    double out = rs->rows[0][0].NumericAsReal();
    EXPECT_TRUE(engine->CloseSession(s).ok());
    return out;
  };
  double united0 = fares();
  sys->set_retry_policy(RandomRetryPolicy(seed));
  sys->environment().fault_injector().SetPlan(
      RandomFaultPlan(seed, {"delta_svc"}));
  auto report = sys->Execute(kChaosFareRaise);
  ASSERT_TRUE(report.ok()) << report.status();
  // Whatever happened to delta, the vitals were untouched by faults and
  // the run is a success with both raises applied.
  EXPECT_EQ(report->outcome, GlobalOutcome::kSuccess)
      << "seed " << seed << "\n" << report->run.ToString();
  EXPECT_NEAR(fares(), united0 * 1.1, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosInvariantTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 10u, 77u, 404u, 1993u,
                                           20260807u));

TEST(ConcurrencyTest, RunTraceDescribesTasks) {
  auto sys = std::move(BuildPaperFederation()).value();
  auto report = sys->Execute(
      "USE continental VITAL united VITAL\n"
      "UPDATE flight% SET rate% = rate% * 1.0");
  ASSERT_TRUE(report.ok());
  std::string trace = report->run.ToString();
  EXPECT_NE(trace.find("t_continental: COMMITTED"), std::string::npos)
      << trace;
  EXPECT_NE(trace.find("DOLSTATUS=0"), std::string::npos);
  EXPECT_NE(trace.find("messages="), std::string::npos);
}

}  // namespace
}  // namespace msql
