// Experiment E6 (§3.4): the travel-agent multitransaction with function
// replication and preference-ordered acceptable termination states.
#include <gtest/gtest.h>

#include <memory>

#include "core/fixtures.h"
#include "core/mdbs_system.h"

namespace msql::core {
namespace {

using relational::FailPoint;

/// The paper's §3.4 multitransaction, adapted to the fixture's value
/// conventions (cars are 'available'; seat updates also stamp the
/// rental period columns cfrom/cto — FROM/TO are reserved words here).
constexpr const char* kTravelAgent =
    "BEGIN MULTITRANSACTION\n"
    "USE continental delta\n"
    "LET fitab.snu.sstat.clname BE\n"
    "  f838.seatnu.seatstatus.clientname\n"
    "  fnu747.snu.sstat.passname\n"
    "UPDATE fitab SET sstat = 'TAKEN', clname = 'wenders'\n"
    "WHERE snu = (SELECT MIN(snu) FROM fitab WHERE sstat = 'FREE');\n"
    "USE avis national\n"
    "LET cartab.ccode.cstat BE\n"
    "  cars.code.carst\n"
    "  vehicle.vcode.vstat\n"
    "UPDATE cartab SET cstat = 'TAKEN', cfrom = '07-04-92',\n"
    "  cto = '04-16-93', client = 'wenders'\n"
    "WHERE ccode = (SELECT MIN(ccode) FROM cartab WHERE "
    "cstat = 'available');\n"
    "COMMIT\n"
    "  continental AND national\n"
    "  delta AND avis\n"
    "END MULTITRANSACTION";

class MultiTransactionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto sys = BuildPaperFederation();
    ASSERT_TRUE(sys.ok()) << sys.status();
    sys_ = std::move(*sys);
  }

  int64_t Count(const std::string& db, const std::string& sql) {
    auto engine = *sys_->GetEngine(PaperServiceOf(db));
    auto s = *engine->OpenSession(db);
    auto rs = engine->Execute(s, sql);
    EXPECT_TRUE(rs.ok()) << rs.status();
    int64_t out = rs->rows[0][0].AsInteger();
    EXPECT_TRUE(engine->CloseSession(s).ok());
    return out;
  }

  int64_t WendersSeats(const std::string& db, const std::string& table,
                       const std::string& name_col) {
    return Count(db, "SELECT COUNT(*) FROM " + table + " WHERE " +
                         name_col + " = 'wenders'");
  }

  std::unique_ptr<MultidatabaseSystem> sys_;
};

TEST_F(MultiTransactionTest, PreferredStateWinsWhenAllSucceed) {
  auto report = sys_->Execute(kTravelAgent);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kSuccess);
  // Preferred state: continental AND national committed...
  EXPECT_EQ(WendersSeats("continental", "f838", "clientname"), 1);
  EXPECT_EQ(Count("national",
                  "SELECT COUNT(*) FROM vehicle WHERE client = 'wenders'"),
            1);
  // ...and the replicated alternatives rolled back.
  EXPECT_EQ(WendersSeats("delta", "fnu747", "passname"), 0);
  EXPECT_EQ(Count("avis",
                  "SELECT COUNT(*) FROM cars WHERE client = 'wenders'"),
            0);
  // Task states confirm the protocol.
  EXPECT_EQ(report->run.FindTask("t_continental")->state,
            dol::DolTaskState::kCommitted);
  EXPECT_EQ(report->run.FindTask("t_delta")->state,
            dol::DolTaskState::kAborted);
  EXPECT_EQ(report->run.FindTask("t_avis")->state,
            dol::DolTaskState::kAborted);
  EXPECT_EQ(report->run.FindTask("t_national")->state,
            dol::DolTaskState::kCommitted);
}

TEST_F(MultiTransactionTest, FallsBackToSecondState) {
  // Continental's reservation fails → the preferred state is
  // unreachable; delta AND avis must win.
  (*sys_->GetEngine(PaperServiceOf("continental")))
      ->InjectFailure(FailPoint::kNextStatement);
  auto report = sys_->Execute(kTravelAgent);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kSuccess);
  EXPECT_EQ(WendersSeats("continental", "f838", "clientname"), 0);
  EXPECT_EQ(WendersSeats("delta", "fnu747", "passname"), 1);
  EXPECT_EQ(Count("avis",
                  "SELECT COUNT(*) FROM cars WHERE client = 'wenders'"),
            1);
  EXPECT_EQ(Count("national",
                  "SELECT COUNT(*) FROM vehicle WHERE client = 'wenders'"),
            0);
}

TEST_F(MultiTransactionTest, NationalFailureAlsoSelectsSecondState) {
  (*sys_->GetEngine(PaperServiceOf("national")))
      ->InjectFailure(FailPoint::kNextStatement);
  auto report = sys_->Execute(kTravelAgent);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kSuccess);
  EXPECT_EQ(WendersSeats("delta", "fnu747", "passname"), 1);
  EXPECT_EQ(WendersSeats("continental", "f838", "clientname"), 0);
}

TEST_F(MultiTransactionTest, NoReachableStateAbortsEverything) {
  // Continental and avis both fail: neither {continental, national} nor
  // {delta, avis} is reachable → everything is undone.
  (*sys_->GetEngine(PaperServiceOf("continental")))
      ->InjectFailure(FailPoint::kNextStatement);
  (*sys_->GetEngine(PaperServiceOf("avis")))
      ->InjectFailure(FailPoint::kNextStatement);
  auto report = sys_->Execute(kTravelAgent);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kAborted);
  EXPECT_EQ(report->dol_status, 1);
  EXPECT_EQ(WendersSeats("continental", "f838", "clientname"), 0);
  EXPECT_EQ(WendersSeats("delta", "fnu747", "passname"), 0);
  EXPECT_EQ(Count("avis",
                  "SELECT COUNT(*) FROM cars WHERE client = 'wenders'"),
            0);
  EXPECT_EQ(Count("national",
                  "SELECT COUNT(*) FROM vehicle WHERE client = 'wenders'"),
            0);
}

TEST_F(MultiTransactionTest, ReservationPicksLowestFreeSeat) {
  // The MIN(snu) scalar subquery must select the lowest FREE seat.
  auto min_free = Count("continental",
                        "SELECT MIN(seatnu) FROM f838 WHERE "
                        "seatstatus = 'FREE'");
  auto report = sys_->Execute(kTravelAgent);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(Count("continental",
                  "SELECT seatnu FROM f838 WHERE clientname = 'wenders'"),
            min_free);
}

TEST_F(MultiTransactionTest, SequentialRunsConsumeSeats) {
  // Two bookings take two different seats on the preferred airline.
  ASSERT_TRUE(sys_->Execute(kTravelAgent).ok());
  auto report = sys_->Execute(kTravelAgent);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->outcome, GlobalOutcome::kSuccess);
  EXPECT_EQ(WendersSeats("continental", "f838", "clientname"), 2);
  EXPECT_EQ(Count("national",
                  "SELECT COUNT(*) FROM vehicle WHERE client = 'wenders'"),
            2);
}

TEST_F(MultiTransactionTest, CompensationInsideMultitransaction) {
  // Downgrade national to autocommit-only: its subquery then needs a
  // COMP clause, after which the preferred state still works and a
  // fallback run compensates the committed national update.
  ASSERT_TRUE(sys_->Execute(
                      "INCORPORATE SERVICE national_svc SITE site_national "
                      "CONNECTMODE CONNECT COMMITMODE COMMIT CREATE COMMIT "
                      "INSERT COMMIT DROP COMMIT")
                  .ok());
  const std::string with_comp = std::string(
      "BEGIN MULTITRANSACTION\n"
      "USE continental delta\n"
      "LET fitab.snu.sstat.clname BE\n"
      "  f838.seatnu.seatstatus.clientname\n"
      "  fnu747.snu.sstat.passname\n"
      "UPDATE fitab SET sstat = 'TAKEN', clname = 'wenders'\n"
      "WHERE snu = (SELECT MIN(snu) FROM fitab WHERE sstat = 'FREE');\n"
      "USE avis national\n"
      "LET cartab.ccode.cstat BE cars.code.carst vehicle.vcode.vstat\n"
      "UPDATE cartab SET cstat = 'TAKEN', client = 'wenders'\n"
      "WHERE ccode = (SELECT MIN(ccode) FROM cartab WHERE "
      "cstat = 'available')\n"
      "COMP national\n"
      "UPDATE vehicle SET vstat = 'available', client = NULL\n"
      "WHERE client = 'wenders';\n"
      "COMMIT\n"
      "  delta AND avis\n"
      "END MULTITRANSACTION");
  // The only acceptable state excludes national: its committed update
  // must be compensated away.
  auto report = sys_->Execute(with_comp);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kSuccess);
  EXPECT_EQ(report->run.FindTask("t_national")->state,
            dol::DolTaskState::kCompensated);
  EXPECT_EQ(Count("national",
                  "SELECT COUNT(*) FROM vehicle WHERE client = 'wenders'"),
            0);
  EXPECT_EQ(Count("avis",
                  "SELECT COUNT(*) FROM cars WHERE client = 'wenders'"),
            1);
}

TEST_F(MultiTransactionTest, MissingCompOnNo2pcMemberRefused) {
  ASSERT_TRUE(sys_->Execute(
                      "INCORPORATE SERVICE national_svc SITE site_national "
                      "CONNECTMODE CONNECT COMMITMODE COMMIT CREATE COMMIT "
                      "INSERT COMMIT DROP COMMIT")
                  .ok());
  auto report = sys_->Execute(kTravelAgent);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kRefused);
}

}  // namespace
}  // namespace msql::core
