#include <gtest/gtest.h>

#include <set>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace msql {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::NotFound("missing table");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing table");
  EXPECT_EQ(s.ToString(), "NotFound: missing table");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Aborted("x"), Status::Aborted("x"));
  EXPECT_FALSE(Status::Aborted("x") == Status::Aborted("y"));
  EXPECT_FALSE(Status::Aborted("x") == Status::Refused("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::ParseError("bad token");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ConstructingFromOkStatusIsInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> Doubled(Result<int> in) {
  MSQL_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_EQ(Doubled(Status::Aborted("no")).status().code(),
            StatusCode::kAborted);
}

TEST(StringUtilTest, CaseConversions) {
  EXPECT_EQ(ToLower("AbC_9"), "abc_9");
  EXPECT_EQ(ToUpper("AbC_9"), "ABC_9");
  EXPECT_TRUE(EqualsIgnoreCase("Select", "sELECT"));
  EXPECT_FALSE(EqualsIgnoreCase("select", "selec"));
}

TEST(StringUtilTest, SplitAndJoin) {
  EXPECT_EQ(Split("a.b..c", '.'),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", '.'), (std::vector<std::string>{""}));
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(WildcardTest, BasicMatches) {
  EXPECT_TRUE(WildcardMatch("%code", "code"));
  EXPECT_TRUE(WildcardMatch("%code", "vcode"));
  EXPECT_FALSE(WildcardMatch("%code", "codes"));
  EXPECT_TRUE(WildcardMatch("flight%", "flight"));
  EXPECT_TRUE(WildcardMatch("flight%", "flights"));
  EXPECT_FALSE(WildcardMatch("flight%", "fl"));
  EXPECT_TRUE(WildcardMatch("rate%", "rates"));
  EXPECT_TRUE(WildcardMatch("sour%", "source"));
  EXPECT_TRUE(WildcardMatch("dest%", "destination"));
}

TEST(WildcardTest, CaseInsensitiveAndInnerPercent) {
  EXPECT_TRUE(WildcardMatch("FLIGHT%", "flights"));
  EXPECT_TRUE(WildcardMatch("f%8", "f838"));
  EXPECT_TRUE(WildcardMatch("%", ""));
  EXPECT_TRUE(WildcardMatch("%%", "anything"));
  EXPECT_FALSE(WildcardMatch("", "x"));
  EXPECT_TRUE(WildcardMatch("", ""));
}

TEST(WildcardTest, UnderscoreIsNotSpecial) {
  // The paper defines only '%'; '_' must match literally.
  EXPECT_TRUE(WildcardMatch("a_b", "a_b"));
  EXPECT_FALSE(WildcardMatch("a_b", "axb"));
}

/// Property sweep: a pattern always matches itself with '%' stripped
/// segments re-inserted, and never matches a string missing a literal.
class WildcardPropertyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WildcardPropertyTest, PatternMatchesItsOwnExpansion) {
  std::string pattern = GetParam();
  // Replace each '%' with "xyz" — must still match.
  std::string expanded;
  for (char c : pattern) {
    if (c == '%') expanded += "xyz";
    else expanded += c;
  }
  EXPECT_TRUE(WildcardMatch(pattern, expanded)) << pattern;
  // Replacing '%' with "" must also match.
  std::string collapsed;
  for (char c : pattern) {
    if (c != '%') collapsed += c;
  }
  EXPECT_TRUE(WildcardMatch(pattern, collapsed)) << pattern;
}

INSTANTIATE_TEST_SUITE_P(Patterns, WildcardPropertyTest,
                         ::testing::Values("%code", "flight%", "f%8",
                                           "%a%b%", "abc", "%", "a%b%c"));

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, RangesRespectBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
    int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

}  // namespace
}  // namespace msql
