// Differential property test for the local planner: randomized schemas,
// data and queries run on two identically-seeded engines — one with the
// planner (pushdown, probes, hash joins), one on the naive
// cross-product oracle. Every query must produce the identical row
// multiset (compared after a deterministic sort, since index probes may
// reorder unsorted output), and the two paths must agree on whether the
// query succeeds at all.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "relational/engine.h"

namespace msql::relational {
namespace {

struct Engines {
  std::unique_ptr<LocalEngine> planned;
  std::unique_ptr<LocalEngine> naive;
  SessionId planned_session = 0;
  SessionId naive_session = 0;

  void Exec(const std::string& sql) {
    auto a = planned->Execute(planned_session, sql);
    auto b = naive->Execute(naive_session, sql);
    ASSERT_TRUE(a.ok()) << sql << " -> " << a.status();
    ASSERT_TRUE(b.ok()) << sql << " -> " << b.status();
  }
};

/// Builds the two engines with an identical randomized schema + data:
/// 2-3 tables named t0.. with columns (k INTEGER, g TEXT, v REAL),
/// NULLs sprinkled into every column, and random single-column indexes.
void BuildFederatedPair(Rng* rng, Engines* out, int* num_tables) {
  out->planned = std::make_unique<LocalEngine>(
      "p", CapabilityProfile::IngresLike());
  out->naive = std::make_unique<LocalEngine>(
      "n", CapabilityProfile::IngresLike());
  out->naive->set_use_planner(false);
  ASSERT_TRUE(out->planned->CreateDatabase("db").ok());
  ASSERT_TRUE(out->naive->CreateDatabase("db").ok());
  out->planned_session = *out->planned->OpenSession("db");
  out->naive_session = *out->naive->OpenSession("db");

  *num_tables = static_cast<int>(rng->NextInRange(2, 3));
  for (int t = 0; t < *num_tables; ++t) {
    std::string name = "t" + std::to_string(t);
    out->Exec("CREATE TABLE " + name + " (k INTEGER, g TEXT, v REAL)");
    int rows = static_cast<int>(rng->NextInRange(0, 24));
    if (rows > 0) {
      std::string insert = "INSERT INTO " + name + " VALUES ";
      for (int r = 0; r < rows; ++r) {
        if (r > 0) insert += ", ";
        std::string k = rng->NextBool(0.15)
                            ? "NULL"
                            : std::to_string(rng->NextInRange(0, 6));
        std::string g =
            rng->NextBool(0.15)
                ? "NULL"
                : "'g" + std::to_string(rng->NextInRange(0, 3)) + "'";
        std::string v = rng->NextBool(0.15)
                            ? "NULL"
                            : std::to_string(rng->NextInRange(0, 9)) + ".5";
        insert += "(" + k + ", " + g + ", " + v + ")";
      }
      out->Exec(insert);
    }
    if (rng->NextBool(0.5)) {
      const char* col = rng->NextBool(0.5) ? "k" : "g";
      out->Exec("CREATE INDEX idx_" + name + "_" + col + " ON " + name +
                " (" + col + ")");
    }
  }
}

/// One random conjunct over the aliased tables a0..a{n-1}: equi joins,
/// pushable comparisons (indexable `= literal` included), non-pushable
/// cross-source comparisons, OR-of-equalities, IS NULL and LIKE.
std::string RandomConjunct(Rng* rng, int num_tables) {
  auto alias = [&](int t) { return "a" + std::to_string(t); };
  int t1 = static_cast<int>(rng->NextBelow(num_tables));
  int t2 = static_cast<int>(rng->NextBelow(num_tables));
  switch (rng->NextBelow(7)) {
    case 0:
      return alias(t1) + ".k = " + alias(t2) + ".k";
    case 1:
      return alias(t1) + ".k = " +
             std::to_string(rng->NextInRange(0, 6));
    case 2:
      return alias(t1) + ".g = 'g" +
             std::to_string(rng->NextInRange(0, 3)) + "'";
    case 3:
      return alias(t1) + ".v > " + alias(t2) + ".v";
    case 4:
      return "(" + alias(t1) + ".k = " +
             std::to_string(rng->NextInRange(0, 3)) + " OR " + alias(t1) +
             ".k = " + std::to_string(rng->NextInRange(3, 6)) + ")";
    case 5:
      return alias(t1) + ".k IS NOT NULL";
    default:
      return alias(t1) + ".g LIKE 'g%'";
  }
}

/// One random query over `num_tables` aliased sources.
std::string RandomQuery(Rng* rng, int num_tables) {
  int from_count = static_cast<int>(rng->NextInRange(1, num_tables));
  std::string from;
  for (int t = 0; t < from_count; ++t) {
    if (t > 0) from += ", ";
    from += "t" + std::to_string(t) + " a" + std::to_string(t);
  }

  bool grouped = rng->NextBool(0.25);
  std::string sql = "SELECT ";
  if (!grouped && rng->NextBool(0.3)) sql += "DISTINCT ";
  if (grouped) {
    sql += "a0.g, COUNT(*), COUNT(a0.k), AVG(a0.v) ";
  } else {
    sql += "a0.k, a0.g";
    if (from_count > 1) sql += ", a1.k, a1.v";
    sql += " ";
  }
  sql += "FROM " + from;

  int conjuncts = static_cast<int>(rng->NextInRange(0, 3));
  for (int c = 0; c < conjuncts; ++c) {
    sql += (c == 0 ? " WHERE " : " AND ");
    sql += RandomConjunct(rng, from_count);
  }
  if (grouped) {
    sql += " GROUP BY a0.g";
    if (rng->NextBool(0.5)) sql += " ORDER BY a0.g";
  } else if (rng->NextBool(0.4)) {
    sql += " ORDER BY a0.k";
  }
  return sql;
}

TEST(PlannerDiffTest, PlannedAndNaivePathsAgreeOnRandomizedWorkload) {
  constexpr int kSeeds = 25;
  constexpr int kQueriesPerSeed = 16;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Rng rng(seed * 0x51ed2701);
    Engines engines;
    int num_tables = 0;
    BuildFederatedPair(&rng, &engines, &num_tables);
    if (::testing::Test::HasFatalFailure()) return;
    for (int q = 0; q < kQueriesPerSeed; ++q) {
      std::string sql = RandomQuery(&rng, num_tables);
      auto planned =
          engines.planned->Execute(engines.planned_session, sql);
      auto naive = engines.naive->Execute(engines.naive_session, sql);
      ASSERT_EQ(planned.ok(), naive.ok())
          << "seed " << seed << ": " << sql << "\nplanned: "
          << planned.status() << "\nnaive: " << naive.status();
      if (!planned.ok()) continue;
      // Compare as multisets: index probes may legitimately reorder
      // output that the query does not ORDER.
      planned->SortRows();
      naive->SortRows();
      EXPECT_EQ(*planned, *naive) << "seed " << seed << ": " << sql;
    }
  }
}

TEST(PlannerDiffTest, EmptyTablesAgreeAndNeverEstimateZeroRows) {
  // Regression for the 0-row estimate bug: all-empty sources must still
  // plan (estimates clamp to >= 1), agree with the naive oracle, and
  // EXPLAIN must never advertise a cost-free `est 0 row(s)` source.
  Engines engines;
  engines.planned = std::make_unique<LocalEngine>(
      "p", CapabilityProfile::IngresLike());
  engines.naive = std::make_unique<LocalEngine>(
      "n", CapabilityProfile::IngresLike());
  engines.naive->set_use_planner(false);
  ASSERT_TRUE(engines.planned->CreateDatabase("db").ok());
  ASSERT_TRUE(engines.naive->CreateDatabase("db").ok());
  engines.planned_session = *engines.planned->OpenSession("db");
  engines.naive_session = *engines.naive->OpenSession("db");
  for (int t = 0; t < 3; ++t) {
    engines.Exec("CREATE TABLE t" + std::to_string(t) +
                 " (k INTEGER, g TEXT, v REAL)");
  }
  if (::testing::Test::HasFatalFailure()) return;

  Rng rng(0x19930721);
  for (int q = 0; q < 32; ++q) {
    std::string sql = RandomQuery(&rng, 3);
    auto planned = engines.planned->Execute(engines.planned_session, sql);
    auto naive = engines.naive->Execute(engines.naive_session, sql);
    ASSERT_EQ(planned.ok(), naive.ok()) << sql;
    if (!planned.ok()) continue;
    planned->SortRows();
    naive->SortRows();
    EXPECT_EQ(*planned, *naive) << sql;
    auto text = engines.planned->ExplainSql(engines.planned_session, sql);
    ASSERT_TRUE(text.ok()) << sql;
    EXPECT_EQ(text->find("est 0 row(s)"), std::string::npos)
        << sql << "\n" << *text;
  }
}

TEST(PlannerDiffTest, PlannedPathNeverScansMoreThanNaive) {
  // rows_scanned on the planned path is bounded by the naive path's:
  // probes can only shrink the fetch, never grow it.
  for (uint64_t seed = 100; seed < 110; ++seed) {
    Rng rng(seed);
    Engines engines;
    int num_tables = 0;
    BuildFederatedPair(&rng, &engines, &num_tables);
    if (::testing::Test::HasFatalFailure()) return;
    for (int q = 0; q < 8; ++q) {
      std::string sql = RandomQuery(&rng, num_tables);
      auto planned =
          engines.planned->Execute(engines.planned_session, sql);
      auto naive = engines.naive->Execute(engines.naive_session, sql);
      if (!planned.ok() || !naive.ok()) continue;
      EXPECT_LE(planned->rows_scanned, naive->rows_scanned)
          << "seed " << seed << ": " << sql;
    }
  }
}

}  // namespace
}  // namespace msql::relational
