// Query-graph decomposition of multidatabase joins (§4.3): largest
// local subqueries + modified global query Q'.
#include <gtest/gtest.h>

#include "mdbs/global_data_dictionary.h"
#include "msql/decomposer.h"
#include "relational/sql/parser.h"

namespace msql::lang {
namespace {

using relational::SelectStmt;
using relational::TableSchema;
using relational::Type;

class DecomposerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(gdd_.RegisterDatabase("avis", "avis_svc").ok());
    ASSERT_TRUE(gdd_.RegisterDatabase("continental", "cont_svc").ok());
    ASSERT_TRUE(
        gdd_.PutTable("avis", *TableSchema::Create(
                                  "cars", {{"code", Type::kInteger, 0},
                                           {"city", Type::kText, 0},
                                           {"rate", Type::kReal, 0}}))
            .ok());
    ASSERT_TRUE(gdd_.PutTable(
                        "continental",
                        *TableSchema::Create(
                            "flights", {{"flnu", Type::kInteger, 0},
                                        {"destination", Type::kText, 0},
                                        {"rate", Type::kReal, 0}}))
                    .ok());
    ASSERT_TRUE(gdd_.PutTable(
                        "continental",
                        *TableSchema::Create(
                            "f838", {{"seatnu", Type::kInteger, 0},
                                     {"seatstatus", Type::kText, 0}}))
                    .ok());
  }

  Result<Decomposition> Decompose(std::string_view sql) {
    auto stmt = relational::ParseSql(sql);
    if (!stmt.ok()) return stmt.status();
    return Decomposer(&gdd_).Decompose(
        static_cast<const SelectStmt&>(**stmt));
  }

  Result<Decomposition> DecomposeCostBased(std::string_view sql,
                                           const CostContext& ctx) {
    auto stmt = relational::ParseSql(sql);
    if (!stmt.ok()) return stmt.status();
    Decomposer decomposer(&gdd_);
    decomposer.set_cost_based(true);
    decomposer.set_cost_context(&ctx);
    return decomposer.Decompose(static_cast<const SelectStmt&>(**stmt));
  }

  /// Fresh-looking statistics for one table: every column `width` bytes
  /// wide with `distinct` distinct values.
  static TableCostStats MakeStats(int64_t rows, int64_t distinct,
                                  double width,
                                  std::initializer_list<const char*> cols) {
    TableCostStats ts;
    ts.row_count = rows;
    for (const char* c : cols) {
      ts.columns[c] = ColumnCostStats{distinct, width};
      ts.avg_row_bytes += width;
    }
    return ts;
  }

  mdbs::GlobalDataDictionary gdd_;
};

TEST_F(DecomposerTest, DetectsMultidatabaseFrom) {
  auto multi = relational::ParseSql(
      "SELECT 1 FROM avis.cars, continental.flights");
  ASSERT_TRUE(multi.ok());
  EXPECT_TRUE(Decomposer::IsMultidatabase(
      static_cast<const SelectStmt&>(**multi)));
  auto local = relational::ParseSql("SELECT 1 FROM cars, rentals");
  EXPECT_FALSE(Decomposer::IsMultidatabase(
      static_cast<const SelectStmt&>(**local)));
}

TEST_F(DecomposerTest, PushesLocalConjunctsDown) {
  auto d = Decompose(
      "SELECT cars.code, flights.flnu FROM avis.cars, continental.flights "
      "WHERE cars.city = flights.destination AND cars.rate < 50 "
      "AND flights.rate < 300");
  ASSERT_TRUE(d.ok()) << d.status();
  ASSERT_EQ(d->subqueries.size(), 2u);
  // Local filters ended up inside the right subqueries.
  std::string avis_sql, cont_sql;
  for (const auto& sub : d->subqueries) {
    if (sub.database == "avis") avis_sql = sub.select->ToSql();
    if (sub.database == "continental") cont_sql = sub.select->ToSql();
  }
  EXPECT_NE(avis_sql.find("cars.rate < 50"), std::string::npos) << avis_sql;
  EXPECT_EQ(avis_sql.find("300"), std::string::npos);
  EXPECT_NE(cont_sql.find("flights.rate < 300"), std::string::npos);
  // The cross-database join predicate stays in Q'.
  std::string global = d->global_query->ToSql();
  EXPECT_NE(global.find("mdbs_tmp_avis.cars__city = "
                        "mdbs_tmp_continental.flights__destination"),
            std::string::npos)
      << global;
  EXPECT_EQ(global.find("< 50"), std::string::npos);
}

TEST_F(DecomposerTest, ShipsOnlyNeededColumns) {
  auto d = Decompose(
      "SELECT cars.code FROM avis.cars, continental.flights "
      "WHERE cars.city = flights.destination");
  ASSERT_TRUE(d.ok()) << d.status();
  for (const auto& sub : d->subqueries) {
    if (sub.database == "avis") {
      // code (select) + city (join) but NOT rate.
      EXPECT_EQ(sub.temp_schema.num_columns(), 2u);
      EXPECT_TRUE(sub.temp_schema.HasColumn("cars__code"));
      EXPECT_TRUE(sub.temp_schema.HasColumn("cars__city"));
    } else {
      EXPECT_EQ(sub.temp_schema.num_columns(), 1u);
      EXPECT_TRUE(sub.temp_schema.HasColumn("flights__destination"));
    }
  }
}

TEST_F(DecomposerTest, CoordinatorHasMostTables) {
  auto d = Decompose(
      "SELECT cars.code FROM avis.cars, continental.flights, "
      "continental.f838 WHERE cars.code = f838.seatnu");
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->coordinator, "continental");  // two tables vs one
}

TEST_F(DecomposerTest, CoordinatorStableUnderFromPermutation) {
  // Regression guard: with one table per database the table-count
  // heuristic ties, and the tie must resolve to the first database
  // alphabetically — never to FROM (or USE-scope) clause order. Both
  // permutations elect avis.
  auto a = Decompose(
      "SELECT cars.code, flights.flnu FROM avis.cars, continental.flights "
      "WHERE cars.city = flights.destination");
  auto b = Decompose(
      "SELECT cars.code, flights.flnu FROM continental.flights, avis.cars "
      "WHERE cars.city = flights.destination");
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->coordinator, "avis");
  EXPECT_EQ(b->coordinator, "avis");
  // A genuine majority beats the alphabetical tie-break in every
  // permutation of the FROM clause.
  for (const char* sql :
       {"SELECT cars.code FROM avis.cars, continental.flights, "
        "continental.f838",
        "SELECT cars.code FROM continental.flights, avis.cars, "
        "continental.f838",
        "SELECT cars.code FROM continental.flights, continental.f838, "
        "avis.cars"}) {
    auto d = Decompose(sql);
    ASSERT_TRUE(d.ok()) << sql << " -> " << d.status();
    EXPECT_EQ(d->coordinator, "continental") << sql;
  }
}

TEST_F(DecomposerTest, CostBasedFallsBackWithoutFreshStats) {
  // Cost-based mode with no (or partial) statistics must behave exactly
  // like the paper-heuristic path and say why in the cost breakdown.
  CostContext ctx;
  auto d = DecomposeCostBased(
      "SELECT cars.code FROM avis.cars, continental.flights "
      "WHERE cars.city = flights.destination",
      ctx);
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_FALSE(d->cost_based);
  EXPECT_EQ(d->coordinator, "avis");  // the heuristic answer
  EXPECT_NE(d->cost_text.find("mode=heuristic"), std::string::npos)
      << d->cost_text;
  EXPECT_NE(d->cost_text.find("run ANALYZE"), std::string::npos);
  for (const auto& sub : d->subqueries) EXPECT_FALSE(sub.semi_join);

  // Statistics for only one of the two tables is still a gap.
  ctx.stats[{"avis", "cars"}] =
      MakeStats(10, 10, 8.0, {"code", "city", "rate"});
  auto partial = DecomposeCostBased(
      "SELECT cars.code FROM avis.cars, continental.flights "
      "WHERE cars.city = flights.destination",
      ctx);
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_FALSE(partial->cost_based);
  EXPECT_NE(partial->cost_text.find("continental.flights"),
            std::string::npos)
      << partial->cost_text;
}

TEST_F(DecomposerTest, CostBasedCoordinatorAvoidsExpensiveLink) {
  // Heuristically continental wins (two tables vs one), but its site
  // sits behind a link three orders of magnitude more expensive per KB,
  // so the optimizer moves the join to avis and says so.
  CostContext ctx;
  ctx.mdbs_site = "mdbs";
  ctx.site_of_db["avis"] = "site_a";
  ctx.site_of_db["continental"] = "site_c";
  ctx.links[{"site_c", "mdbs"}] = LinkCost{1000, 100000};
  ctx.stats[{"avis", "cars"}] =
      MakeStats(10, 10, 8.0, {"code", "city", "rate"});
  ctx.stats[{"continental", "flights"}] =
      MakeStats(10, 10, 8.0, {"flnu", "destination", "rate"});
  ctx.stats[{"continental", "f838"}] =
      MakeStats(10, 10, 8.0, {"seatnu", "seatstatus"});
  auto d = DecomposeCostBased(
      "SELECT cars.code FROM avis.cars, continental.flights, "
      "continental.f838 WHERE cars.code = f838.seatnu",
      ctx);
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_TRUE(d->cost_based);
  EXPECT_EQ(d->coordinator, "avis");
  EXPECT_NE(d->cost_text.find("mode=cost-based coordinator=avis"),
            std::string::npos)
      << d->cost_text;
  EXPECT_NE(d->cost_text.find("heuristic would pick continental"),
            std::string::npos)
      << d->cost_text;
}

TEST_F(DecomposerTest, CostBasedChoosesSemiJoinForSkewedRemote) {
  // A huge remote partial joined on a column with few distinct keys at
  // the coordinator: shipping the coordinator's DISTINCT keys out and
  // only the matching rows back beats shipping the whole thing.
  CostContext ctx;
  ctx.stats[{"avis", "cars"}] = MakeStats(10, 5, 8.0, {"code", "city"});
  ctx.stats[{"continental", "flights"}] =
      MakeStats(100000, 50000, 8.0, {"flnu", "destination"});
  auto d = DecomposeCostBased(
      "SELECT cars.code, flights.flnu FROM avis.cars, continental.flights "
      "WHERE cars.code = flights.flnu",
      ctx);
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_TRUE(d->cost_based);
  EXPECT_EQ(d->coordinator, "avis");
  const Decomposition::SubQuery* remote = nullptr;
  for (const auto& sub : d->subqueries) {
    if (sub.database == "continental") remote = &sub;
    if (sub.database == "avis") {
      EXPECT_FALSE(sub.semi_join);
    }
  }
  ASSERT_NE(remote, nullptr);
  ASSERT_TRUE(remote->semi_join);
  EXPECT_EQ(remote->key_provider_db, "avis");
  EXPECT_EQ(remote->key_table, "mdbs_key_continental");
  ASSERT_NE(remote->key_select, nullptr);
  std::string key_sql = remote->key_select->ToSql();
  EXPECT_NE(key_sql.find("DISTINCT"), std::string::npos) << key_sql;
  EXPECT_NE(key_sql.find("cars.code"), std::string::npos) << key_sql;
  // The reduced subquery joins against the installed key table.
  std::string reduced = remote->select->ToSql();
  EXPECT_NE(reduced.find("mdbs_key_continental"), std::string::npos)
      << reduced;
  EXPECT_NE(reduced.find("flights.flnu = mdbs_key_continental.k0"),
            std::string::npos)
      << reduced;
  EXPECT_NE(d->cost_text.find("semi-join keys cars.code"),
            std::string::npos)
      << d->cost_text;
}

TEST_F(DecomposerTest, UnqualifiedColumnsResolveWhenUnambiguous) {
  auto d = Decompose(
      "SELECT code, destination FROM avis.cars, continental.flights "
      "WHERE city = destination");
  ASSERT_TRUE(d.ok()) << d.status();
  std::string global = d->global_query->ToSql();
  EXPECT_NE(global.find("cars__code"), std::string::npos);
}

TEST_F(DecomposerTest, AmbiguousUnqualifiedColumnRejected) {
  // 'rate' exists in both databases.
  auto d = Decompose(
      "SELECT rate FROM avis.cars, continental.flights");
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DecomposerTest, UnqualifiedTableRejected) {
  auto d = Decompose("SELECT cars.code FROM cars, continental.flights");
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DecomposerTest, SubqueriesUnsupported) {
  auto d = Decompose(
      "SELECT cars.code FROM avis.cars, continental.flights "
      "WHERE cars.rate = (SELECT MIN(rate) FROM avis.cars)");
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DecomposerTest, StarExpandsToAllShippedColumns) {
  auto d = Decompose("SELECT * FROM avis.cars, continental.f838");
  ASSERT_TRUE(d.ok()) << d.status();
  // 3 cars columns + 2 f838 columns.
  EXPECT_EQ(d->global_query->items.size(), 5u);
}

TEST_F(DecomposerTest, AggregatesComputeGlobally) {
  auto d = Decompose(
      "SELECT COUNT(*), MIN(cars.rate) FROM avis.cars, "
      "continental.flights WHERE cars.city = flights.destination");
  ASSERT_TRUE(d.ok()) << d.status();
  std::string global = d->global_query->ToSql();
  EXPECT_NE(global.find("COUNT(*)"), std::string::npos);
  EXPECT_NE(global.find("MIN(mdbs_tmp_avis.cars__rate)"),
            std::string::npos)
      << global;
}

TEST_F(DecomposerTest, SingleDatabaseRejected) {
  auto d = Decompose(
      "SELECT flights.flnu FROM continental.flights, continental.f838");
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DecomposerTest, AliasedTablesKeepAliases) {
  auto d = Decompose(
      "SELECT c.code FROM avis.cars c, continental.flights f "
      "WHERE c.city = f.destination");
  ASSERT_TRUE(d.ok()) << d.status();
  for (const auto& sub : d->subqueries) {
    if (sub.database == "avis") {
      EXPECT_NE(sub.select->ToSql().find("cars c"), std::string::npos);
      EXPECT_TRUE(sub.temp_schema.HasColumn("c__code"));
    }
  }
}

}  // namespace
}  // namespace msql::lang
