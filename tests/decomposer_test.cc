// Query-graph decomposition of multidatabase joins (§4.3): largest
// local subqueries + modified global query Q'.
#include <gtest/gtest.h>

#include "mdbs/global_data_dictionary.h"
#include "msql/decomposer.h"
#include "relational/sql/parser.h"

namespace msql::lang {
namespace {

using relational::SelectStmt;
using relational::TableSchema;
using relational::Type;

class DecomposerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(gdd_.RegisterDatabase("avis", "avis_svc").ok());
    ASSERT_TRUE(gdd_.RegisterDatabase("continental", "cont_svc").ok());
    ASSERT_TRUE(
        gdd_.PutTable("avis", *TableSchema::Create(
                                  "cars", {{"code", Type::kInteger, 0},
                                           {"city", Type::kText, 0},
                                           {"rate", Type::kReal, 0}}))
            .ok());
    ASSERT_TRUE(gdd_.PutTable(
                        "continental",
                        *TableSchema::Create(
                            "flights", {{"flnu", Type::kInteger, 0},
                                        {"destination", Type::kText, 0},
                                        {"rate", Type::kReal, 0}}))
                    .ok());
    ASSERT_TRUE(gdd_.PutTable(
                        "continental",
                        *TableSchema::Create(
                            "f838", {{"seatnu", Type::kInteger, 0},
                                     {"seatstatus", Type::kText, 0}}))
                    .ok());
  }

  Result<Decomposition> Decompose(std::string_view sql) {
    auto stmt = relational::ParseSql(sql);
    if (!stmt.ok()) return stmt.status();
    return Decomposer(&gdd_).Decompose(
        static_cast<const SelectStmt&>(**stmt));
  }

  mdbs::GlobalDataDictionary gdd_;
};

TEST_F(DecomposerTest, DetectsMultidatabaseFrom) {
  auto multi = relational::ParseSql(
      "SELECT 1 FROM avis.cars, continental.flights");
  ASSERT_TRUE(multi.ok());
  EXPECT_TRUE(Decomposer::IsMultidatabase(
      static_cast<const SelectStmt&>(**multi)));
  auto local = relational::ParseSql("SELECT 1 FROM cars, rentals");
  EXPECT_FALSE(Decomposer::IsMultidatabase(
      static_cast<const SelectStmt&>(**local)));
}

TEST_F(DecomposerTest, PushesLocalConjunctsDown) {
  auto d = Decompose(
      "SELECT cars.code, flights.flnu FROM avis.cars, continental.flights "
      "WHERE cars.city = flights.destination AND cars.rate < 50 "
      "AND flights.rate < 300");
  ASSERT_TRUE(d.ok()) << d.status();
  ASSERT_EQ(d->subqueries.size(), 2u);
  // Local filters ended up inside the right subqueries.
  std::string avis_sql, cont_sql;
  for (const auto& sub : d->subqueries) {
    if (sub.database == "avis") avis_sql = sub.select->ToSql();
    if (sub.database == "continental") cont_sql = sub.select->ToSql();
  }
  EXPECT_NE(avis_sql.find("cars.rate < 50"), std::string::npos) << avis_sql;
  EXPECT_EQ(avis_sql.find("300"), std::string::npos);
  EXPECT_NE(cont_sql.find("flights.rate < 300"), std::string::npos);
  // The cross-database join predicate stays in Q'.
  std::string global = d->global_query->ToSql();
  EXPECT_NE(global.find("mdbs_tmp_avis.cars__city = "
                        "mdbs_tmp_continental.flights__destination"),
            std::string::npos)
      << global;
  EXPECT_EQ(global.find("< 50"), std::string::npos);
}

TEST_F(DecomposerTest, ShipsOnlyNeededColumns) {
  auto d = Decompose(
      "SELECT cars.code FROM avis.cars, continental.flights "
      "WHERE cars.city = flights.destination");
  ASSERT_TRUE(d.ok()) << d.status();
  for (const auto& sub : d->subqueries) {
    if (sub.database == "avis") {
      // code (select) + city (join) but NOT rate.
      EXPECT_EQ(sub.temp_schema.num_columns(), 2u);
      EXPECT_TRUE(sub.temp_schema.HasColumn("cars__code"));
      EXPECT_TRUE(sub.temp_schema.HasColumn("cars__city"));
    } else {
      EXPECT_EQ(sub.temp_schema.num_columns(), 1u);
      EXPECT_TRUE(sub.temp_schema.HasColumn("flights__destination"));
    }
  }
}

TEST_F(DecomposerTest, CoordinatorHasMostTables) {
  auto d = Decompose(
      "SELECT cars.code FROM avis.cars, continental.flights, "
      "continental.f838 WHERE cars.code = f838.seatnu");
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->coordinator, "continental");  // two tables vs one
}

TEST_F(DecomposerTest, UnqualifiedColumnsResolveWhenUnambiguous) {
  auto d = Decompose(
      "SELECT code, destination FROM avis.cars, continental.flights "
      "WHERE city = destination");
  ASSERT_TRUE(d.ok()) << d.status();
  std::string global = d->global_query->ToSql();
  EXPECT_NE(global.find("cars__code"), std::string::npos);
}

TEST_F(DecomposerTest, AmbiguousUnqualifiedColumnRejected) {
  // 'rate' exists in both databases.
  auto d = Decompose(
      "SELECT rate FROM avis.cars, continental.flights");
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DecomposerTest, UnqualifiedTableRejected) {
  auto d = Decompose("SELECT cars.code FROM cars, continental.flights");
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DecomposerTest, SubqueriesUnsupported) {
  auto d = Decompose(
      "SELECT cars.code FROM avis.cars, continental.flights "
      "WHERE cars.rate = (SELECT MIN(rate) FROM avis.cars)");
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DecomposerTest, StarExpandsToAllShippedColumns) {
  auto d = Decompose("SELECT * FROM avis.cars, continental.f838");
  ASSERT_TRUE(d.ok()) << d.status();
  // 3 cars columns + 2 f838 columns.
  EXPECT_EQ(d->global_query->items.size(), 5u);
}

TEST_F(DecomposerTest, AggregatesComputeGlobally) {
  auto d = Decompose(
      "SELECT COUNT(*), MIN(cars.rate) FROM avis.cars, "
      "continental.flights WHERE cars.city = flights.destination");
  ASSERT_TRUE(d.ok()) << d.status();
  std::string global = d->global_query->ToSql();
  EXPECT_NE(global.find("COUNT(*)"), std::string::npos);
  EXPECT_NE(global.find("MIN(mdbs_tmp_avis.cars__rate)"),
            std::string::npos)
      << global;
}

TEST_F(DecomposerTest, SingleDatabaseRejected) {
  auto d = Decompose(
      "SELECT flights.flnu FROM continental.flights, continental.f838");
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DecomposerTest, AliasedTablesKeepAliases) {
  auto d = Decompose(
      "SELECT c.code FROM avis.cars c, continental.flights f "
      "WHERE c.city = f.destination");
  ASSERT_TRUE(d.ok()) << d.status();
  for (const auto& sub : d->subqueries) {
    if (sub.database == "avis") {
      EXPECT_NE(sub.select->ToSql().find("cars c"), std::string::npos);
      EXPECT_TRUE(sub.temp_schema.HasColumn("c__code"));
    }
  }
}

}  // namespace
}  // namespace msql::lang
