// Simulated network, LAM wire protocol and RPC timing model.
#include <gtest/gtest.h>

#include <memory>

#include "netsim/environment.h"
#include "netsim/lam.h"
#include "netsim/network.h"
#include "relational/engine.h"

namespace msql::netsim {
namespace {

using relational::CapabilityProfile;
using relational::LocalEngine;
using relational::TxnState;

TEST(NetworkTest, DefaultAndExplicitLinks) {
  Network net;
  net.AddSite("a");
  net.AddSite("b");
  LinkParams fast;
  fast.latency_micros = 10;
  fast.micros_per_kb = 1;
  ASSERT_TRUE(net.SetLink("a", "b", fast).ok());
  EXPECT_EQ(net.GetLink("a", "b").latency_micros, 10);
  // Reverse direction falls back to the default.
  EXPECT_EQ(net.GetLink("b", "a").latency_micros,
            net.default_link().latency_micros);
}

TEST(NetworkTest, TransferAccountsBytesAndMessages) {
  Network net;
  net.AddSite("a");
  net.AddSite("b");
  LinkParams link;
  link.latency_micros = 100;
  link.micros_per_kb = 1024;  // 1 us per byte
  ASSERT_TRUE(net.SetLink("a", "b", link).ok());
  auto micros = net.TransferMicros("a", "b", 2048);
  ASSERT_TRUE(micros.ok());
  EXPECT_EQ(*micros, 100 + 2048);
  EXPECT_EQ(net.stats().messages_sent, 1);
  EXPECT_EQ(net.stats().bytes_sent, 2048);
}

TEST(NetworkTest, DownSitesAreUnavailable) {
  Network net;
  net.AddSite("a");
  net.AddSite("b");
  ASSERT_TRUE(net.SetSiteDown("b", true).ok());
  EXPECT_EQ(net.TransferMicros("a", "b", 10).status().code(),
            StatusCode::kUnavailable);
  ASSERT_TRUE(net.SetSiteDown("b", false).ok());
  EXPECT_TRUE(net.TransferMicros("a", "b", 10).ok());
  EXPECT_EQ(net.TransferMicros("a", "ghost", 10).status().code(),
            StatusCode::kUnavailable);
}

// Regression: SetSiteDown/SetLink used to silently no-op on unknown
// sites, so a typoed chaos script "partitioned" nothing and the test
// that relied on it exercised the healthy path.
TEST(NetworkTest, TogglingUnknownSitesIsAnError) {
  Network net;
  net.AddSite("a");
  EXPECT_EQ(net.SetSiteDown("ghost", true).code(), StatusCode::kNotFound);
  LinkParams link;
  EXPECT_EQ(net.SetLink("a", "ghost", link).code(), StatusCode::kNotFound);
  EXPECT_EQ(net.SetLink("ghost", "a", link).code(), StatusCode::kNotFound);
  EXPECT_TRUE(net.SetLink("a", "a", link).ok());
}

// Regression: the serialization charge was computed with truncating
// integer division, so sub-KB payloads (every LAM control message)
// transferred in zero simulated time.
TEST(NetworkTest, SubKilobytePayloadsAreNotFree) {
  Network net;
  net.AddSite("a");
  net.AddSite("b");
  LinkParams link;
  link.latency_micros = 0;
  link.micros_per_kb = 1000;
  ASSERT_TRUE(net.SetLink("a", "b", link).ok());
  auto one_byte = net.TransferMicros("a", "b", 1);
  ASSERT_TRUE(one_byte.ok());
  EXPECT_EQ(*one_byte, 1);  // ceil(1 * 1000 / 1024)
  auto half_kb = net.TransferMicros("a", "b", 512);
  ASSERT_TRUE(half_kb.ok());
  EXPECT_EQ(*half_kb, 500);  // ceil(512 * 1000 / 1024)
}

// Regression: bytes * micros_per_kb was multiplied in int64, which
// overflows for large payloads on slow links; the weighted product now
// goes through a 128-bit intermediate.
TEST(NetworkTest, HugeTransfersDoNotOverflow) {
  Network net;
  net.AddSite("a");
  net.AddSite("b");
  LinkParams link;
  link.latency_micros = 7;
  link.micros_per_kb = 2'000'000'000;  // pathological slow link
  ASSERT_TRUE(net.SetLink("a", "b", link).ok());
  // 5 GB * 2e9 us/KB = 1e19 weighted micros·bytes/KB — past INT64_MAX.
  auto micros = net.TransferMicros("a", "b", 5'000'000'000);
  ASSERT_TRUE(micros.ok());
  EXPECT_EQ(*micros, 7 + 9'765'625'000'000'000);
  EXPECT_EQ(net.TransferMicros("a", "b", -1).status().code(),
            StatusCode::kInvalidArgument);
}

std::unique_ptr<LocalEngine> SeededEngine() {
  auto engine = std::make_unique<LocalEngine>(
      "svc", CapabilityProfile::IngresLike());
  EXPECT_TRUE(engine->CreateDatabase("db").ok());
  auto s = *engine->OpenSession("db");
  EXPECT_TRUE(
      engine->Execute(s, "CREATE TABLE t (id INTEGER, v TEXT)").ok());
  EXPECT_TRUE(
      engine->Execute(s, "INSERT INTO t VALUES (1, 'a'), (2, 'b')").ok());
  EXPECT_TRUE(engine->CloseSession(s).ok());
  return engine;
}

TEST(LamTest, ExecuteRoundTrip) {
  Lam lam("svc", "site1", SeededEngine());
  LamRequest open;
  open.type = LamRequestType::kOpenSession;
  open.database = "db";
  LamResponse opened = lam.Handle(open);
  ASSERT_TRUE(opened.status.ok());
  ASSERT_NE(opened.session, 0u);

  LamRequest exec;
  exec.type = LamRequestType::kExecute;
  exec.session = opened.session;
  exec.sql = "SELECT v FROM t ORDER BY id";
  int64_t service_micros = 0;
  LamResponse result = lam.Handle(exec, &service_micros);
  ASSERT_TRUE(result.status.ok());
  ASSERT_EQ(result.result.rows.size(), 2u);
  EXPECT_GT(service_micros, 0);
}

TEST(LamTest, TransactionVerbsAndStateReporting) {
  Lam lam("svc", "site1", SeededEngine());
  LamRequest open;
  open.type = LamRequestType::kOpenSession;
  open.database = "db";
  auto session = lam.Handle(open).session;

  LamRequest begin{LamRequestType::kBegin, "", session, ""};
  EXPECT_TRUE(lam.Handle(begin).status.ok());
  LamRequest exec{LamRequestType::kExecute, "", session,
                  "DELETE FROM t WHERE id = 1"};
  LamResponse exec_resp = lam.Handle(exec);
  EXPECT_TRUE(exec_resp.status.ok());
  EXPECT_EQ(exec_resp.txn_state, TxnState::kActive);
  LamRequest prepare{LamRequestType::kPrepare, "", session, ""};
  EXPECT_EQ(lam.Handle(prepare).txn_state, TxnState::kPrepared);
  LamRequest rollback{LamRequestType::kRollback, "", session, ""};
  EXPECT_EQ(lam.Handle(rollback).txn_state, TxnState::kAborted);
}

TEST(LamTest, DescribeListsSchemas) {
  Lam lam("svc", "site1", SeededEngine());
  LamRequest describe;
  describe.type = LamRequestType::kDescribe;
  describe.database = "db";
  LamResponse resp = lam.Handle(describe);
  ASSERT_TRUE(resp.status.ok());
  ASSERT_EQ(resp.result.rows.size(), 2u);  // id, v
  EXPECT_EQ(resp.result.rows[0][0].AsText(), "t");
  EXPECT_EQ(resp.result.rows[0][1].AsText(), "id");
  EXPECT_EQ(resp.result.rows[0][2].AsText(), "INTEGER");
}

TEST(LamTest, DescribeUnknownDatabaseFails) {
  Lam lam("svc", "site1", SeededEngine());
  LamRequest describe;
  describe.type = LamRequestType::kDescribe;
  describe.database = "ghost";
  EXPECT_EQ(lam.Handle(describe).status.code(), StatusCode::kNotFound);
}

TEST(EnvironmentTest, CallModelsRoundTripTiming) {
  Environment env;
  LinkParams link;
  link.latency_micros = 500;
  link.micros_per_kb = 0;
  env.network().set_default_link(link);
  ASSERT_TRUE(env.AddService("svc", "site1", SeededEngine()).ok());

  LamRequest ping;
  ping.type = LamRequestType::kPing;
  auto outcome = env.Call("svc", ping, /*at_micros=*/1000);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->timing.start_micros, 1000);
  // request latency + service + response latency.
  EXPECT_EQ(outcome->timing.request_micros, 500);
  EXPECT_EQ(outcome->timing.response_micros, 500);
  EXPECT_EQ(outcome->timing.end_micros,
            1000 + 500 + outcome->timing.service_micros + 500);
}

TEST(EnvironmentTest, UnknownServiceAndDownSite) {
  Environment env;
  ASSERT_TRUE(env.AddService("svc", "site1", SeededEngine()).ok());
  LamRequest ping;
  ping.type = LamRequestType::kPing;
  EXPECT_EQ(env.Call("ghost", ping, 0).status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(env.network().SetSiteDown("site1", true).ok());
  EXPECT_EQ(env.Call("svc", ping, 0).status().code(),
            StatusCode::kUnavailable);
}

TEST(EnvironmentTest, DirectoryEntries) {
  Environment env;
  ASSERT_TRUE(env.AddService("svc", "site1", SeededEngine()).ok());
  auto entry = env.GetServiceEntry("svc");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ((*entry)->site_name, "site1");
  EXPECT_EQ(env.ServiceNames(), (std::vector<std::string>{"svc"}));
  EXPECT_TRUE(env.HasService("SVC"));  // case-insensitive
  EXPECT_FALSE(env.AddService("svc", "site2", SeededEngine()).ok());
}

TEST(EnvironmentTest, ResponseBytesScaleWithResultSize) {
  Environment env;
  LinkParams link;
  link.latency_micros = 0;
  link.micros_per_kb = 1024;  // 1 us per byte to make sizes visible
  env.network().set_default_link(link);
  ASSERT_TRUE(env.AddService("svc", "site1", SeededEngine()).ok());

  LamRequest open;
  open.type = LamRequestType::kOpenSession;
  open.database = "db";
  auto opened = env.Call("svc", open, 0);
  ASSERT_TRUE(opened.ok());

  LamRequest small;
  small.type = LamRequestType::kExecute;
  small.session = opened->response.session;
  small.sql = "SELECT v FROM t WHERE id = 1";
  LamRequest big = small;
  big.sql = "SELECT v FROM t";
  auto small_out = env.Call("svc", small, 0);
  auto big_out = env.Call("svc", big, 0);
  ASSERT_TRUE(small_out.ok());
  ASSERT_TRUE(big_out.ok());
  EXPECT_GT(big_out->timing.response_micros,
            small_out->timing.response_micros);
}

}  // namespace
}  // namespace msql::netsim
