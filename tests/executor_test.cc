// SQL execution against one local engine: scans, joins, aggregates,
// subqueries, DML, DDL.
#include <gtest/gtest.h>

#include <memory>

#include "relational/engine.h"

namespace msql::relational {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<LocalEngine>(
        "test_svc", CapabilityProfile::IngresLike());
    ASSERT_TRUE(engine_->CreateDatabase("db").ok());
    session_ = *engine_->OpenSession("db");
    Exec("CREATE TABLE cars (code INTEGER, cartype TEXT, rate REAL, "
         "carst TEXT)");
    Exec("INSERT INTO cars VALUES (1, 'suv', 40.0, 'available'), "
         "(2, 'van', 30.0, 'rented'), (3, 'suv', 55.0, 'available'), "
         "(4, 'sedan', NULL, 'available')");
    Exec("CREATE TABLE rentals (code INTEGER, client TEXT)");
    Exec("INSERT INTO rentals VALUES (2, 'jones'), (9, 'smith')");
  }

  ResultSet Exec(std::string_view sql) {
    auto result = engine_->Execute(session_, sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return result.ok() ? std::move(*result) : ResultSet{};
  }

  Status ExecErr(std::string_view sql) {
    auto result = engine_->Execute(session_, sql);
    EXPECT_FALSE(result.ok()) << sql;
    return result.ok() ? Status::OK() : result.status();
  }

  std::unique_ptr<LocalEngine> engine_;
  SessionId session_ = 0;
};

TEST_F(ExecutorTest, ScanWithFilter) {
  ResultSet rs = Exec("SELECT code FROM cars WHERE carst = 'available' "
                      "ORDER BY code");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][0], Value::Integer(1));
  EXPECT_EQ(rs.rows[2][0], Value::Integer(4));
}

TEST_F(ExecutorTest, ProjectionAliasesAndExpressions) {
  ResultSet rs = Exec(
      "SELECT code AS id, rate * 2 AS double_rate FROM cars "
      "WHERE code = 1");
  EXPECT_EQ(rs.columns, (std::vector<std::string>{"id", "double_rate"}));
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][1], Value::Real(80.0));
}

TEST_F(ExecutorTest, StarExpansion) {
  ResultSet rs = Exec("SELECT * FROM cars WHERE code = 1");
  EXPECT_EQ(rs.columns,
            (std::vector<std::string>{"code", "cartype", "rate", "carst"}));
}

TEST_F(ExecutorTest, NullSemanticsInFilters) {
  // rate = NULL is UNKNOWN, so row 4 never matches an ordinary compare.
  EXPECT_EQ(Exec("SELECT code FROM cars WHERE rate > 0").rows.size(), 3u);
  EXPECT_EQ(Exec("SELECT code FROM cars WHERE rate IS NULL").rows.size(),
            1u);
  EXPECT_EQ(
      Exec("SELECT code FROM cars WHERE NOT rate > 0").rows.size(), 0u);
}

TEST_F(ExecutorTest, CrossJoinWithPredicate) {
  ResultSet rs = Exec(
      "SELECT cars.code, rentals.client FROM cars, rentals "
      "WHERE cars.code = rentals.code");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][1], Value::Text("jones"));
}

TEST_F(ExecutorTest, JoinWithAliases) {
  ResultSet rs = Exec(
      "SELECT a.code FROM cars a, cars b WHERE a.code = b.code");
  EXPECT_EQ(rs.rows.size(), 4u);  // self-join on key
}

TEST_F(ExecutorTest, AmbiguousColumnRejected) {
  Status s = ExecErr("SELECT code FROM cars, rentals");
  EXPECT_NE(s.message().find("ambiguous"), std::string::npos);
}

TEST_F(ExecutorTest, Aggregates) {
  ResultSet rs = Exec(
      "SELECT COUNT(*), COUNT(rate), SUM(rate), MIN(rate), MAX(rate), "
      "AVG(rate) FROM cars");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Integer(4));
  EXPECT_EQ(rs.rows[0][1], Value::Integer(3));  // NULL skipped
  EXPECT_EQ(rs.rows[0][2], Value::Real(125.0));
  EXPECT_EQ(rs.rows[0][3], Value::Real(30.0));
  EXPECT_EQ(rs.rows[0][4], Value::Real(55.0));
  EXPECT_NEAR(rs.rows[0][5].AsReal(), 125.0 / 3, 1e-9);
}

TEST_F(ExecutorTest, AggregateOverEmptyInput) {
  ResultSet rs = Exec("SELECT COUNT(*), MAX(rate) FROM cars WHERE code > 99");
  ASSERT_EQ(rs.rows.size(), 1u);  // the global group always exists
  EXPECT_EQ(rs.rows[0][0], Value::Integer(0));
  EXPECT_TRUE(rs.rows[0][1].is_null());
}

TEST_F(ExecutorTest, GroupByHaving) {
  ResultSet rs = Exec(
      "SELECT cartype, COUNT(*) AS n FROM cars GROUP BY cartype "
      "HAVING COUNT(*) > 1 ORDER BY cartype");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Text("suv"));
  EXPECT_EQ(rs.rows[0][1], Value::Integer(2));
}

TEST_F(ExecutorTest, DistinctAndOrderDesc) {
  ResultSet rs = Exec(
      "SELECT DISTINCT cartype FROM cars ORDER BY cartype DESC");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][0], Value::Text("van"));
  EXPECT_EQ(rs.rows[2][0], Value::Text("sedan"));
}

TEST_F(ExecutorTest, ScalarSubqueryReservationIdiom) {
  // The §3.4 idiom: pick the FREE seat with the lowest number.
  ResultSet rs = Exec(
      "SELECT code FROM cars WHERE code = "
      "(SELECT MIN(code) FROM cars WHERE carst = 'available')");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Integer(1));
}

TEST_F(ExecutorTest, ScalarSubqueryEmptyIsNull) {
  ResultSet rs = Exec(
      "SELECT code FROM cars WHERE rate = "
      "(SELECT rate FROM cars WHERE code = 99)");
  EXPECT_EQ(rs.rows.size(), 0u);  // NULL comparison filters everything
}

TEST_F(ExecutorTest, InBetweenLike) {
  EXPECT_EQ(Exec("SELECT code FROM cars WHERE code IN (1, 3)").rows.size(),
            2u);
  EXPECT_EQ(Exec("SELECT code FROM cars WHERE code NOT IN (1, 3)")
                .rows.size(),
            2u);
  EXPECT_EQ(
      Exec("SELECT code FROM cars WHERE rate BETWEEN 30 AND 41").rows.size(),
      2u);
  EXPECT_EQ(Exec("SELECT code FROM cars WHERE cartype LIKE 's%'")
                .rows.size(),
            3u);
  EXPECT_EQ(Exec("SELECT code FROM cars WHERE cartype LIKE '_uv'")
                .rows.size(),
            2u);
}

TEST_F(ExecutorTest, InSubquery) {
  ResultSet rs = Exec(
      "SELECT client FROM rentals WHERE code IN "
      "(SELECT MAX(code) FROM rentals)");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Text("smith"));
}

TEST_F(ExecutorTest, ScalarFunctions) {
  ResultSet rs = Exec(
      "SELECT UPPER(cartype), LOWER('ABC'), LENGTH(cartype), ABS(0 - 2), "
      "ROUND(rate / 7, 1) FROM cars WHERE code = 1");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Text("SUV"));
  EXPECT_EQ(rs.rows[0][1], Value::Text("abc"));
  EXPECT_EQ(rs.rows[0][2], Value::Integer(3));
  EXPECT_EQ(rs.rows[0][3], Value::Integer(2));
  EXPECT_EQ(rs.rows[0][4], Value::Real(5.7));
}

TEST_F(ExecutorTest, UpdateComputesAgainstSnapshot) {
  // rate% = rate% * 1.1 on all rows; the subquery-free case.
  ResultSet rs = Exec("UPDATE cars SET rate = rate * 2 WHERE rate > 35");
  EXPECT_EQ(rs.rows_affected, 2);
  EXPECT_EQ(Exec("SELECT rate FROM cars WHERE code = 1").rows[0][0],
            Value::Real(80.0));
  // The NULL-rated row was untouched.
  EXPECT_TRUE(Exec("SELECT rate FROM cars WHERE code = 4")
                  .rows[0][0].is_null());
}

TEST_F(ExecutorTest, UpdateWithSelfSubquerySeesPreUpdateState) {
  // Mark the cheapest available car as rented.
  ResultSet rs = Exec(
      "UPDATE cars SET carst = 'rented' WHERE code = "
      "(SELECT MIN(code) FROM cars WHERE carst = 'available')");
  EXPECT_EQ(rs.rows_affected, 1);
  EXPECT_EQ(Exec("SELECT carst FROM cars WHERE code = 1").rows[0][0],
            Value::Text("rented"));
}

TEST_F(ExecutorTest, DeleteRows) {
  EXPECT_EQ(Exec("DELETE FROM rentals WHERE client = 'smith'")
                .rows_affected,
            1);
  EXPECT_EQ(Exec("SELECT * FROM rentals").rows.size(), 1u);
  EXPECT_EQ(Exec("DELETE FROM rentals").rows_affected, 1);
  EXPECT_EQ(Exec("SELECT * FROM rentals").rows.size(), 0u);
}

TEST_F(ExecutorTest, InsertPartialColumnsFillsNull) {
  Exec("INSERT INTO cars (code, cartype) VALUES (10, 'mini')");
  ResultSet rs = Exec("SELECT rate, carst FROM cars WHERE code = 10");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_TRUE(rs.rows[0][0].is_null());
  EXPECT_TRUE(rs.rows[0][1].is_null());
}

TEST_F(ExecutorTest, InsertFromSelect) {
  Exec("CREATE TABLE expensive (code INTEGER, rate REAL)");
  Exec("INSERT INTO expensive SELECT code, rate FROM cars WHERE rate > 35");
  EXPECT_EQ(Exec("SELECT * FROM expensive").rows.size(), 2u);
}

TEST_F(ExecutorTest, ErrorsForMissingObjects) {
  EXPECT_EQ(ExecErr("SELECT * FROM ghost").code(), StatusCode::kNotFound);
  EXPECT_EQ(ExecErr("SELECT ghost FROM cars").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ExecErr("UPDATE cars SET ghost = 1").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ExecErr("INSERT INTO cars (ghost) VALUES (1)").code(),
            StatusCode::kNotFound);
}

TEST_F(ExecutorTest, ArityAndTypeErrors) {
  EXPECT_FALSE(
      engine_->Execute(session_, "INSERT INTO cars VALUES (1)").ok());
  EXPECT_FALSE(engine_
                   ->Execute(session_,
                             "INSERT INTO cars VALUES ('x', 'y', 1.0, 'z')")
                   .ok());
  EXPECT_FALSE(
      engine_->Execute(session_, "SELECT code + cartype FROM cars").ok());
  EXPECT_FALSE(
      engine_->Execute(session_, "SELECT rate / 0 FROM cars").ok());
}

TEST_F(ExecutorTest, DdlLifecycle) {
  Exec("CREATE TABLE temp1 (x INTEGER)");
  EXPECT_FALSE(
      engine_->Execute(session_, "CREATE TABLE temp1 (x INTEGER)").ok());
  Exec("DROP TABLE temp1");
  EXPECT_EQ(ExecErr("DROP TABLE temp1").code(), StatusCode::kNotFound);
}

TEST_F(ExecutorTest, QualifiedTableMustMatchSessionDatabase) {
  EXPECT_EQ(Exec("SELECT code FROM db.cars WHERE code = 1").rows.size(),
            1u);
  EXPECT_EQ(ExecErr("SELECT code FROM other.cars").code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace msql::relational
