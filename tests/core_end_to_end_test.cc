// End-to-end pipeline tests (experiments E1 and E3): catalog bootstrap
// through MSQL text to multitables, joins, scope persistence and DDL.
#include <gtest/gtest.h>

#include <memory>

#include "core/fixtures.h"
#include "core/mdbs_system.h"

namespace msql::core {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto sys = BuildPaperFederation();
    ASSERT_TRUE(sys.ok()) << sys.status();
    sys_ = std::move(*sys);
  }

  ExecutionReport Exec(const std::string& msql) {
    auto report = sys_->Execute(msql);
    EXPECT_TRUE(report.ok()) << msql << " -> " << report.status();
    return report.ok() ? std::move(*report) : ExecutionReport{};
  }

  std::unique_ptr<MultidatabaseSystem> sys_;
};

TEST_F(EndToEndTest, Section2CarRentalMultitable) {
  auto report = Exec(
      "USE avis national\n"
      "LET car.type.status BE cars.cartype.carst vehicle.vty.vstat\n"
      "SELECT %code, type, ~rate FROM car WHERE status = 'available'");
  EXPECT_EQ(report.outcome, GlobalOutcome::kSuccess);
  ASSERT_EQ(report.multitable.size(), 2u);
  const auto* avis = report.multitable.Find("avis");
  const auto* national = report.multitable.Find("national");
  ASSERT_NE(avis, nullptr);
  ASSERT_NE(national, nullptr);
  // avis keeps the optional rate column, national loses it.
  EXPECT_EQ(avis->table.columns,
            (std::vector<std::string>{"code", "type", "rate"}));
  EXPECT_EQ(national->table.columns,
            (std::vector<std::string>{"code", "type"}));
  EXPECT_GT(avis->table.rows.size(), 0u);
  EXPECT_GT(national->table.rows.size(), 0u);
}

TEST_F(EndToEndTest, CatalogIsQueryableState) {
  // Fixture ran INCORPORATE + IMPORT through the MSQL front end; the AD
  // and GDD must reflect it.
  EXPECT_TRUE(sys_->auxiliary_directory().HasService("avis_svc"));
  EXPECT_TRUE(sys_->gdd().HasTable("continental", "flights"));
  EXPECT_TRUE(sys_->gdd().HasTable("continental", "f838"));
  EXPECT_EQ(sys_->gdd().DatabaseNames().size(), 5u);
  auto svc = sys_->auxiliary_directory().GetService("delta_svc");
  ASSERT_TRUE(svc.ok());
  EXPECT_TRUE((*svc)->SupportsTwoPhaseCommit());
}

TEST_F(EndToEndTest, ScopePersistsAcrossQueries) {
  ASSERT_EQ(Exec("USE avis SELECT code FROM cars").outcome,
            GlobalOutcome::kSuccess);
  // No USE: inherits the avis scope.
  auto second = Exec("SELECT cartype FROM cars");
  EXPECT_EQ(second.outcome, GlobalOutcome::kSuccess);
  ASSERT_EQ(second.multitable.size(), 1u);
  EXPECT_EQ(second.multitable.elements[0].database, "avis");
  // USE CURRENT extends rather than replaces.
  auto third = Exec(
      "USE CURRENT national\n"
      "LET car.code BE cars.code vehicle.vcode\n"
      "SELECT code FROM car");
  EXPECT_EQ(third.multitable.size(), 2u);
}

TEST_F(EndToEndTest, QueryWithoutScopeFails) {
  MultidatabaseSystem fresh;
  auto report = fresh.Execute("SELECT a FROM t");
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EndToEndTest, MultidatabaseJoinThroughCoordinator) {
  // Cross-database join: which avis cars and continental flights share a
  // rate? Exercises decomposition + TRANSFER + global query Q'.
  auto report = Exec(
      "USE avis continental\n"
      "SELECT cars.code, flights.flnu "
      "FROM avis.cars, continental.flights "
      "WHERE cars.rate < flights.rate AND cars.carst = 'available'");
  EXPECT_EQ(report.outcome, GlobalOutcome::kSuccess);
  EXPECT_TRUE(report.is_join);
  EXPECT_EQ(report.join_result.columns,
            (std::vector<std::string>{"code", "flnu"}));
  EXPECT_GT(report.join_result.rows.size(), 0u);
  // Temporary tables were dropped at the coordinator.
  auto engine = *sys_->GetEngine(PaperServiceOf("continental"));
  auto db = engine->GetDatabaseConst("continental");
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE((*db)->HasTable("mdbs_tmp_avis"));
  EXPECT_FALSE((*db)->HasTable("mdbs_tmp_continental"));
}

TEST_F(EndToEndTest, JoinResultMatchesManualComputation) {
  auto report = Exec(
      "USE avis continental\n"
      "SELECT COUNT(*) FROM avis.cars, continental.flights "
      "WHERE cars.rate < flights.rate");
  ASSERT_EQ(report.join_result.rows.size(), 1u);
  // Manual: every car rate is < every flight rate in the fixture?
  // Compute both sides locally and cross-check.
  auto avis_engine = *sys_->GetEngine(PaperServiceOf("avis"));
  auto cont_engine = *sys_->GetEngine(PaperServiceOf("continental"));
  auto s1 = *avis_engine->OpenSession("avis");
  auto s2 = *cont_engine->OpenSession("continental");
  auto cars = *avis_engine->Execute(s1, "SELECT rate FROM cars");
  auto flights = *cont_engine->Execute(s2, "SELECT rate FROM flights");
  int64_t expected = 0;
  for (const auto& c : cars.rows) {
    for (const auto& f : flights.rows) {
      if (!c[0].is_null() && !f[0].is_null() &&
          c[0].NumericAsReal() < f[0].NumericAsReal()) {
        ++expected;
      }
    }
  }
  EXPECT_EQ(report.join_result.rows[0][0].AsInteger(), expected);
}

TEST_F(EndToEndTest, MultidatabaseDdlCreatesEverywhereAndSyncsGdd) {
  auto report = Exec(
      "USE avis national CREATE TABLE bookings (bid INTEGER, who TEXT)");
  EXPECT_EQ(report.outcome, GlobalOutcome::kSuccess);
  // Both local engines have the table.
  for (const char* db : {"avis", "national"}) {
    auto engine = *sys_->GetEngine(PaperServiceOf(db));
    auto database = engine->GetDatabaseConst(db);
    ASSERT_TRUE(database.ok());
    EXPECT_TRUE((*database)->HasTable("bookings")) << db;
    EXPECT_TRUE(sys_->gdd().HasTable(db, "bookings")) << db;
  }
  // The new table is immediately usable by multiple queries.
  auto insert = Exec(
      "USE avis national INSERT INTO bookings VALUES (1, 'kim')");
  EXPECT_EQ(insert.outcome, GlobalOutcome::kSuccess);
  auto select = Exec("USE avis national SELECT who FROM bookings");
  EXPECT_EQ(select.multitable.size(), 2u);
  // DROP removes from engines and GDD.
  auto drop = Exec("USE avis national DROP TABLE bookings");
  EXPECT_EQ(drop.outcome, GlobalOutcome::kSuccess);
  EXPECT_FALSE(sys_->gdd().HasTable("avis", "bookings"));
}

TEST_F(EndToEndTest, ScriptExecution) {
  auto reports = sys_->ExecuteScript(
      "USE avis SELECT code FROM cars;\n"
      "USE national SELECT vcode FROM vehicle");
  ASSERT_TRUE(reports.ok()) << reports.status();
  ASSERT_EQ(reports->size(), 2u);
  EXPECT_EQ((*reports)[0].outcome, GlobalOutcome::kSuccess);
  EXPECT_EQ((*reports)[1].outcome, GlobalOutcome::kSuccess);
}

TEST_F(EndToEndTest, ImportSingleTableLimitsVisibility) {
  MultidatabaseSystem fresh;
  fresh.environment().network().set_default_link({});
  ASSERT_TRUE(fresh.AddService("svc", "site1",
                               relational::CapabilityProfile::IngresLike())
                  .ok());
  auto engine = *fresh.GetEngine("svc");
  ASSERT_TRUE(engine->CreateDatabase("d").ok());
  ASSERT_TRUE(fresh.RunLocalSql("svc", "d",
                                "CREATE TABLE a (x INTEGER);"
                                "CREATE TABLE b (y INTEGER);"
                                "INSERT INTO a VALUES (1)")
                  .ok());
  ASSERT_TRUE(fresh.Execute("INCORPORATE SERVICE svc SITE site1 "
                            "CONNECTMODE CONNECT COMMITMODE NOCOMMIT "
                            "CREATE NOCOMMIT INSERT NOCOMMIT DROP NOCOMMIT")
                  .ok());
  ASSERT_TRUE(
      fresh.Execute("IMPORT DATABASE d FROM SERVICE svc TABLE a").ok());
  // Table b exists locally but is invisible at the multidatabase level.
  auto visible = fresh.Execute("USE d SELECT x FROM a");
  ASSERT_TRUE(visible.ok()) << visible.status();
  EXPECT_EQ(visible->outcome, GlobalOutcome::kSuccess);
  // b is not in the GDD → d is non-pertinent → no subquery anywhere,
  // which the translator reports as an error (pertinent on no database).
  auto hidden = fresh.Execute("USE d SELECT y FROM b");
  EXPECT_FALSE(hidden.ok());
  EXPECT_EQ(hidden.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EndToEndTest, ReportCarriesDolProgramAndTiming) {
  auto report = Exec("USE avis SELECT code FROM cars");
  EXPECT_NE(report.dol_text.find("DOLBEGIN"), std::string::npos);
  EXPECT_NE(report.dol_text.find("TASK t_avis"), std::string::npos);
  EXPECT_GT(report.run.makespan_micros, 0);
  EXPECT_GT(report.run.messages, 0);
}

TEST_F(EndToEndTest, RetrievalOnDownNonVitalSiteYieldsPartialMultitable) {
  ASSERT_TRUE(
      sys_->environment().network().SetSiteDown("site_national", true).ok());
  auto report = Exec(
      "USE avis national\n"
      "LET car.code BE cars.code vehicle.vcode\n"
      "SELECT code FROM car");
  EXPECT_EQ(report.outcome, GlobalOutcome::kSuccess);
  ASSERT_EQ(report.multitable.size(), 1u);
  EXPECT_EQ(report.multitable.elements[0].database, "avis");
}

}  // namespace
}  // namespace msql::core
