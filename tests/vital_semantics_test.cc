// Experiment E4 (§3.2): end-to-end vital-set semantics of the 10% fare
// raise across three airlines, under injected failures.
#include <gtest/gtest.h>

#include <memory>

#include "core/fixtures.h"
#include "core/mdbs_system.h"

namespace msql::core {
namespace {

using relational::FailPoint;

constexpr const char* kFareRaise =
    "USE continental VITAL delta united VITAL\n"
    "UPDATE flight% SET rate% = rate% * 1.1\n"
    "WHERE sour% = 'Houston' AND dest% = 'San Antonio'";

class VitalSemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto sys = BuildPaperFederation();
    ASSERT_TRUE(sys.ok()) << sys.status();
    sys_ = std::move(*sys);
  }

  /// Sum of Houston→San Antonio fares on one airline (rate column name
  /// differs per airline — pass the local query).
  double Fares(const std::string& db, const std::string& sql) {
    auto engine = *sys_->GetEngine(PaperServiceOf(db));
    auto s = *engine->OpenSession(db);
    auto rs = engine->Execute(s, sql);
    EXPECT_TRUE(rs.ok()) << rs.status();
    double out = rs->rows[0][0].NumericAsReal();
    EXPECT_TRUE(engine->CloseSession(s).ok());
    return out;
  }

  double ContinentalFares() {
    return Fares("continental",
                 "SELECT SUM(rate) FROM flights WHERE source = 'Houston' "
                 "AND destination = 'San Antonio'");
  }
  double DeltaFares() {
    return Fares("delta",
                 "SELECT SUM(rate) FROM flight WHERE source = 'Houston' "
                 "AND dest = 'San Antonio'");
  }
  double UnitedFares() {
    return Fares("united",
                 "SELECT SUM(rates) FROM flight WHERE sour = 'Houston' "
                 "AND dest = 'San Antonio'");
  }

  std::unique_ptr<MultidatabaseSystem> sys_;
};

TEST_F(VitalSemanticsTest, CleanRunCommitsEverywhere) {
  double cont = ContinentalFares();
  double delta = DeltaFares();
  double united = UnitedFares();
  auto report = sys_->Execute(kFareRaise);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kSuccess);
  EXPECT_EQ(report->dol_status, 0);
  EXPECT_NEAR(ContinentalFares(), cont * 1.1, 1e-6);
  EXPECT_NEAR(DeltaFares(), delta * 1.1, 1e-6);
  EXPECT_NEAR(UnitedFares(), united * 1.1, 1e-6);
}

TEST_F(VitalSemanticsTest, VitalFailureRollsBackAllVitals) {
  double cont = ContinentalFares();
  double united = UnitedFares();
  double delta = DeltaFares();
  // United's update fails locally (conflict/deadlock stand-in).
  (*sys_->GetEngine(PaperServiceOf("united")))
      ->InjectFailure(FailPoint::kNextStatement);
  auto report = sys_->Execute(kFareRaise);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kAborted);
  EXPECT_EQ(report->dol_status, 1);
  // Continental was prepared, then rolled back. United never applied.
  EXPECT_NEAR(ContinentalFares(), cont, 1e-6);
  EXPECT_NEAR(UnitedFares(), united, 1e-6);
  // Delta is NON VITAL and autocommitted: its update SURVIVES the global
  // abort — exactly the §3.2.1 semantics.
  EXPECT_NEAR(DeltaFares(), delta * 1.1, 1e-6);
}

TEST_F(VitalSemanticsTest, NonVitalFailureDoesNotAffectOutcome) {
  double delta = DeltaFares();
  (*sys_->GetEngine(PaperServiceOf("delta")))
      ->InjectFailure(FailPoint::kNextStatement);
  auto report = sys_->Execute(kFareRaise);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kSuccess);
  // Delta unchanged, vitals raised.
  EXPECT_NEAR(DeltaFares(), delta, 1e-6);
}

TEST_F(VitalSemanticsTest, PrepareFailureAborts) {
  double cont = ContinentalFares();
  (*sys_->GetEngine(PaperServiceOf("continental")))
      ->InjectFailure(FailPoint::kNextPrepare);
  auto report = sys_->Execute(kFareRaise);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kAborted);
  EXPECT_NEAR(ContinentalFares(), cont, 1e-6);
  EXPECT_NEAR(UnitedFares(), UnitedFares(), 1e-6);
}

TEST_F(VitalSemanticsTest, CommitFailureAfterDecisionIsIncorrect) {
  double cont = ContinentalFares();
  double united = UnitedFares();
  // Both vitals prepare fine; continental's commit then fails — the
  // heuristic hazard: united committed, continental did not.
  (*sys_->GetEngine(PaperServiceOf("continental")))
      ->InjectFailure(FailPoint::kNextCommit);
  auto report = sys_->Execute(kFareRaise);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kIncorrect);
  EXPECT_EQ(report->dol_status, 2);
  EXPECT_NEAR(ContinentalFares(), cont, 1e-6);          // rolled back
  EXPECT_NEAR(UnitedFares(), united * 1.1, 1e-6);       // committed
}

TEST_F(VitalSemanticsTest, DownVitalSiteAborts) {
  double cont = ContinentalFares();
  ASSERT_TRUE(
      sys_->environment().network().SetSiteDown("site_united", true).ok());
  auto report = sys_->Execute(kFareRaise);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kAborted);
  EXPECT_NEAR(ContinentalFares(), cont, 1e-6);
}

TEST_F(VitalSemanticsTest, DownNonVitalSiteStillSucceeds) {
  ASSERT_TRUE(
      sys_->environment().network().SetSiteDown("site_delta", true).ok());
  auto report = sys_->Execute(kFareRaise);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kSuccess);
}

TEST_F(VitalSemanticsTest, AllVitalGivesAtomicTransaction) {
  // "when all databases are VITAL, we have traditional atomic
  // transactions" — one failure rolls everything back.
  double cont = ContinentalFares();
  double delta = DeltaFares();
  double united = UnitedFares();
  (*sys_->GetEngine(PaperServiceOf("delta")))
      ->InjectFailure(FailPoint::kNextStatement);
  auto report = sys_->Execute(
      "USE continental VITAL delta VITAL united VITAL\n"
      "UPDATE flight% SET rate% = rate% * 1.1\n"
      "WHERE sour% = 'Houston' AND dest% = 'San Antonio'");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kAborted);
  EXPECT_NEAR(ContinentalFares(), cont, 1e-6);
  EXPECT_NEAR(DeltaFares(), delta, 1e-6);
  EXPECT_NEAR(UnitedFares(), united, 1e-6);
}

TEST_F(VitalSemanticsTest, AllNonVitalAlwaysSucceeds) {
  (*sys_->GetEngine(PaperServiceOf("continental")))
      ->InjectFailure(FailPoint::kNextStatement);
  (*sys_->GetEngine(PaperServiceOf("delta")))
      ->InjectFailure(FailPoint::kNextStatement);
  auto report = sys_->Execute(
      "USE continental delta united\n"
      "UPDATE flight% SET rate% = rate% * 1.1");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kSuccess);
}

TEST_F(VitalSemanticsTest, VitalWithNoPertinentSubqueryRefused) {
  auto report = sys_->Execute(
      "USE avis VITAL continental\n"
      "SELECT rate FROM flight%");  // avis has no flight table
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, GlobalOutcome::kRefused);
}

}  // namespace
}  // namespace msql::core
