// MSQL front-end grammar: USE/VITAL/aliases, LET, COMP, INCORPORATE,
// IMPORT and multitransactions.
#include <gtest/gtest.h>

#include "msql/parser.h"

namespace msql::lang {
namespace {

Result<MsqlInput> ParseOne(std::string_view text) {
  return MsqlParser::ParseOne(text);
}

TEST(MsqlParserTest, Section2CarRentalQuery) {
  auto input = ParseOne(
      "USE avis national\n"
      "LET car.type.status BE cars.cartype.carst vehicle.vty.vstat\n"
      "SELECT %code, type, ~rate FROM car WHERE status = 'available'");
  ASSERT_TRUE(input.ok()) << input.status();
  ASSERT_EQ(input->kind, MsqlInput::Kind::kQuery);
  const MsqlQuery& q = *input->query;
  ASSERT_EQ(q.use.entries.size(), 2u);
  EXPECT_EQ(q.use.entries[0].database, "avis");
  EXPECT_FALSE(q.use.entries[0].vital);
  ASSERT_TRUE(q.let.has_value());
  ASSERT_EQ(q.let->bindings.size(), 1u);
  const LetBinding& binding = q.let->bindings[0];
  EXPECT_EQ(binding.variable_path,
            (std::vector<std::string>{"car", "type", "status"}));
  ASSERT_EQ(binding.targets.size(), 2u);
  EXPECT_EQ(binding.targets[1],
            (std::vector<std::string>{"vehicle", "vty", "vstat"}));
  EXPECT_EQ(q.body->kind(), relational::StatementKind::kSelect);
}

TEST(MsqlParserTest, Section32VitalDesignators) {
  auto input = ParseOne(
      "USE continental VITAL delta united VITAL\n"
      "UPDATE flight% SET rate% = rate% * 1.1\n"
      "WHERE sour% = 'Houston' AND dest% = 'San Antonio'");
  ASSERT_TRUE(input.ok()) << input.status();
  const MsqlQuery& q = *input->query;
  ASSERT_EQ(q.use.entries.size(), 3u);
  EXPECT_TRUE(q.use.entries[0].vital);
  EXPECT_FALSE(q.use.entries[1].vital);
  EXPECT_TRUE(q.use.entries[2].vital);
  EXPECT_EQ(q.body->kind(), relational::StatementKind::kUpdate);
}

TEST(MsqlParserTest, Section33CompClause) {
  auto input = ParseOne(
      "USE continental VITAL delta united VITAL\n"
      "UPDATE flight% SET rate% = rate% * 1.1\n"
      "WHERE sour% = 'Houston' AND dest% = 'San Antonio'\n"
      "COMP continental\n"
      "UPDATE flights SET rate = rate / 1.1\n"
      "WHERE source = 'Houston' AND destination = 'San Antonio'");
  ASSERT_TRUE(input.ok()) << input.status();
  const MsqlQuery& q = *input->query;
  ASSERT_EQ(q.comps.size(), 1u);
  EXPECT_EQ(q.comps[0].database, "continental");
  EXPECT_EQ(q.comps[0].action->kind(), relational::StatementKind::kUpdate);
}

TEST(MsqlParserTest, AliasesNeedParens) {
  auto input = ParseOne(
      "USE (continental c1) VITAL (continental c2)\n"
      "SELECT rate FROM flights");
  ASSERT_TRUE(input.ok()) << input.status();
  const MsqlQuery& q = *input->query;
  ASSERT_EQ(q.use.entries.size(), 2u);
  EXPECT_EQ(q.use.entries[0].alias, "c1");
  EXPECT_TRUE(q.use.entries[0].vital);
  EXPECT_EQ(q.use.entries[1].EffectiveName(), "c2");
}

TEST(MsqlParserTest, UseCurrentInheritsScope) {
  auto with_current = ParseOne("USE CURRENT avis SELECT code FROM cars");
  ASSERT_TRUE(with_current.ok());
  EXPECT_TRUE(with_current->query->use.current);
  ASSERT_EQ(with_current->query->use.entries.size(), 1u);

  auto bare = ParseOne("SELECT code FROM cars");
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare->query->use.current);
  EXPECT_TRUE(bare->query->use.entries.empty());
}

TEST(MsqlParserTest, MultipleLetBindings) {
  auto input = ParseOne(
      "USE a b\n"
      "LET t.x BE ta.xa tb.xb\n"
      "LET u.y BE ua.ya ub.yb\n"
      "SELECT x, y FROM t, u");
  ASSERT_TRUE(input.ok()) << input.status();
  EXPECT_EQ(input->query->let->bindings.size(), 2u);
}

TEST(MsqlParserTest, LetArityMismatchRejected) {
  auto input = ParseOne(
      "USE a b LET t.x.y BE ta.xa SELECT x FROM t");
  EXPECT_FALSE(input.ok());  // target has 2 parts for a 3-part variable
}

TEST(MsqlParserTest, LetWithoutTargetsRejected) {
  EXPECT_FALSE(ParseOne("USE a LET t.x BE SELECT x FROM t").ok());
}

TEST(MsqlParserTest, Incorporate) {
  auto input = ParseOne(
      "INCORPORATE SERVICE ora1 SITE site3 CONNECTMODE CONNECT "
      "COMMITMODE NOCOMMIT CREATE COMMIT INSERT NOCOMMIT DROP COMMIT");
  ASSERT_TRUE(input.ok()) << input.status();
  ASSERT_EQ(input->kind, MsqlInput::Kind::kIncorporate);
  const IncorporateStmt& inc = *input->incorporate;
  EXPECT_EQ(inc.service, "ora1");
  EXPECT_EQ(inc.site, "site3");
  EXPECT_TRUE(inc.connect_mode);
  EXPECT_FALSE(inc.autocommit_only);
  EXPECT_TRUE(inc.create_autocommits);
  EXPECT_FALSE(inc.insert_autocommits);
  EXPECT_TRUE(inc.drop_autocommits);
}

TEST(MsqlParserTest, IncorporateRequiresModes) {
  EXPECT_FALSE(ParseOne("INCORPORATE SERVICE s SITE x").ok());
  EXPECT_FALSE(
      ParseOne("INCORPORATE SERVICE s CONNECTMODE CONNECT").ok());
}

TEST(MsqlParserTest, ImportVariants) {
  auto whole = ParseOne("IMPORT DATABASE avis FROM SERVICE svc");
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(whole->kind, MsqlInput::Kind::kImport);
  EXPECT_FALSE(whole->import->table.has_value());

  auto table = ParseOne("IMPORT DATABASE avis FROM SERVICE svc TABLE cars");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(*table->import->table, "cars");

  auto partial = ParseOne(
      "IMPORT DATABASE avis FROM SERVICE svc TABLE cars COLUMN code rate");
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial->import->columns,
            (std::vector<std::string>{"code", "rate"}));
}

TEST(MsqlParserTest, AnalyzeVariants) {
  auto whole = ParseOne("ANALYZE DATABASE avis");
  ASSERT_TRUE(whole.ok()) << whole.status();
  EXPECT_EQ(whole->kind, MsqlInput::Kind::kAnalyze);
  EXPECT_EQ(whole->analyze->database, "avis");
  EXPECT_FALSE(whole->analyze->table.has_value());
  EXPECT_EQ(whole->analyze->ToMsql(), "ANALYZE DATABASE avis");

  auto table = ParseOne("ANALYZE DATABASE avis TABLE cars");
  ASSERT_TRUE(table.ok()) << table.status();
  ASSERT_TRUE(table->analyze->table.has_value());
  EXPECT_EQ(*table->analyze->table, "cars");
  EXPECT_EQ(table->analyze->ToMsql(), "ANALYZE DATABASE avis TABLE cars");

  EXPECT_FALSE(ParseOne("ANALYZE").ok());
  EXPECT_FALSE(ParseOne("ANALYZE DATABASE").ok());
  EXPECT_FALSE(ParseOne("ANALYZE avis").ok());
}

TEST(MsqlParserTest, ImportViewVariants) {
  auto view = ParseOne("IMPORT DATABASE d FROM SERVICE s VIEW pub");
  ASSERT_TRUE(view.ok()) << view.status();
  ASSERT_TRUE(view->import->view.has_value());
  EXPECT_EQ(*view->import->view, "pub");
  EXPECT_FALSE(view->import->table.has_value());

  auto partial = ParseOne(
      "IMPORT DATABASE d FROM SERVICE s VIEW pub COLUMN a b");
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial->import->columns,
            (std::vector<std::string>{"a", "b"}));
  // Rendering round-trips.
  auto again = ParseOne(partial->import->ToMsql());
  ASSERT_TRUE(again.ok()) << partial->import->ToMsql();
  EXPECT_EQ(again->import->ToMsql(), partial->import->ToMsql());
}

TEST(MsqlParserTest, UseClauseRendering) {
  auto q = ParseOne(
      "USE (continental c) VITAL delta SELECT rate FROM flights");
  ASSERT_TRUE(q.ok());
  std::string rendered = q->query->use.ToMsql();
  EXPECT_EQ(rendered, "USE (continental c) VITAL delta");
  auto current = ParseOne("USE CURRENT avis SELECT code FROM cars");
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current->query->use.ToMsql(), "USE CURRENT avis");
}

TEST(MsqlParserTest, Section34MultiTransaction) {
  auto input = ParseOne(
      "BEGIN MULTITRANSACTION\n"
      "USE continental delta\n"
      "LET fitab.snu.sstat.clname BE "
      "f838.seatnu.seatstatus.clientname fnu747.snu.sstat.passname\n"
      "UPDATE fitab SET sstat = 'TAKEN', clname = 'wenders'\n"
      "WHERE snu = (SELECT MIN(snu) FROM fitab WHERE sstat = 'FREE');\n"
      "USE avis national\n"
      "LET cartab.ccode.cstat BE cars.code.carst vehicle.vcode.vstat\n"
      "UPDATE cartab SET cstat = 'TAKEN', client = 'wenders'\n"
      "WHERE ccode = (SELECT MIN(ccode) FROM cartab WHERE "
      "cstat = 'available');\n"
      "COMMIT\n"
      "continental AND national\n"
      "delta AND avis\n"
      "END MULTITRANSACTION");
  ASSERT_TRUE(input.ok()) << input.status();
  ASSERT_EQ(input->kind, MsqlInput::Kind::kMultiTransaction);
  const MultiTransaction& mt = *input->multitransaction;
  ASSERT_EQ(mt.queries.size(), 2u);
  ASSERT_EQ(mt.acceptable_states.size(), 2u);
  EXPECT_EQ(mt.acceptable_states[0].databases,
            (std::vector<std::string>{"continental", "national"}));
  EXPECT_EQ(mt.acceptable_states[1].databases,
            (std::vector<std::string>{"delta", "avis"}));
}

TEST(MsqlParserTest, AcceptableStatesSplitOnMissingAnd) {
  // Four states, each a single database.
  auto input = ParseOne(
      "BEGIN MULTITRANSACTION\n"
      "USE a SELECT x FROM t;\n"
      "COMMIT a b c d END MULTITRANSACTION");
  ASSERT_TRUE(input.ok()) << input.status();
  EXPECT_EQ(input->multitransaction->acceptable_states.size(), 4u);
}

TEST(MsqlParserTest, MultiTransactionNeedsCommitAndStates) {
  EXPECT_FALSE(ParseOne(
      "BEGIN MULTITRANSACTION USE a SELECT x FROM t; "
      "END MULTITRANSACTION").ok());
  EXPECT_FALSE(ParseOne(
      "BEGIN MULTITRANSACTION USE a SELECT x FROM t; COMMIT "
      "END MULTITRANSACTION").ok());
}

TEST(MsqlParserTest, ScriptParsesManyItems) {
  auto items = MsqlParser::ParseScript(
      "USE a SELECT x FROM t;\n"
      "IMPORT DATABASE d FROM SERVICE s;\n"
      "USE b UPDATE t SET x = 1");
  ASSERT_TRUE(items.ok()) << items.status();
  EXPECT_EQ(items->size(), 3u);
}

TEST(MsqlParserTest, RoundTripToMsql) {
  const char* text =
      "USE continental VITAL delta united VITAL\n"
      "UPDATE flight% SET rate% = rate% * 1.1 "
      "WHERE sour% = 'Houston'\n"
      "COMP continental UPDATE flights SET rate = rate / 1.1";
  auto first = ParseOne(text);
  ASSERT_TRUE(first.ok());
  std::string rendered = first->query->ToMsql();
  auto second = ParseOne(rendered);
  ASSERT_TRUE(second.ok()) << rendered << " -> " << second.status();
  EXPECT_EQ(second->query->ToMsql(), rendered);
}

TEST(MsqlParserTest, EmptyUseRejected) {
  EXPECT_FALSE(ParseOne("USE SELECT a FROM t").ok());
}

}  // namespace
}  // namespace msql::lang
