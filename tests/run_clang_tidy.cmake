# Enforced clang-tidy over the analysis and core layers. Invoked as the
# `lint_clang_tidy` ctest:
#
#   cmake -DSOURCE_DIR=<repo> -DBINARY_DIR=<build> -P run_clang_tidy.cmake
#
# Uses the build tree's compile_commands.json (exported unconditionally
# by the top-level CMakeLists) and the repo's .clang-tidy config, and
# fails on any finding in src/analysis or src/core. The container image
# may lack clang-tidy entirely; then the script prints "clang-tidy not
# found", which the ctest registration turns into a SKIP instead of a
# failure (SKIP_REGULAR_EXPRESSION).

find_program(CLANG_TIDY NAMES clang-tidy clang-tidy-19 clang-tidy-18
                              clang-tidy-17 clang-tidy-16 clang-tidy-15)
if(NOT CLANG_TIDY)
  message(STATUS "clang-tidy not found; skipping lint")
  return()
endif()

if(NOT EXISTS "${BINARY_DIR}/compile_commands.json")
  message(FATAL_ERROR
    "no compile_commands.json in ${BINARY_DIR} — configure the build "
    "tree first (CMAKE_EXPORT_COMPILE_COMMANDS is on by default)")
endif()

file(GLOB_RECURSE TIDY_SOURCES
  "${SOURCE_DIR}/src/analysis/*.cc"
  "${SOURCE_DIR}/src/core/*.cc")
list(SORT TIDY_SOURCES)

set(FINDINGS 0)
foreach(src IN LISTS TIDY_SOURCES)
  execute_process(
    COMMAND "${CLANG_TIDY}" -p "${BINARY_DIR}" --quiet "${src}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0 OR out MATCHES "warning:|error:")
    message(STATUS "clang-tidy findings in ${src}:\n${out}${err}")
    math(EXPR FINDINGS "${FINDINGS} + 1")
  endif()
endforeach()

list(LENGTH TIDY_SOURCES TOTAL)
if(FINDINGS GREATER 0)
  message(FATAL_ERROR
    "clang-tidy reported findings in ${FINDINGS} of ${TOTAL} files")
endif()
message(STATUS "clang-tidy clean over ${TOTAL} files")
