// Chaos matrix over the §3.2 fare raise: every cell of
// {OPEN, EXECUTE, PREPARE, COMMIT-ACK} × {VITAL, NON-VITAL} ×
// {retry off, retry on} pins its exact GlobalOutcome. The only cell
// allowed to end kIncorrect is a post-prepare fault the coordinator is
// forbidden to resolve (lost commit ACK with re-probing disabled);
// with the retry policy on, the same fault resolves to kSuccess through
// a kQueryTxnState re-probe.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/fixtures.h"
#include "core/mdbs_system.h"
#include "dol/engine.h"
#include "netsim/fault_injector.h"

namespace msql::core {
namespace {

using dol::RetryPolicy;
using netsim::FaultAction;
using netsim::FaultPlan;
using netsim::FaultRule;
using netsim::LamRequestType;

constexpr const char* kFareRaise =
    "USE continental VITAL delta united VITAL\n"
    "UPDATE flight% SET rate% = rate% * 1.1\n"
    "WHERE sour% = 'Houston' AND dest% = 'San Antonio'";

// The VITAL fault target is united (2PC participant), the NON-VITAL
// target is delta (autocommitted subquery).
constexpr const char* kVitalSvc = "united_svc";
constexpr const char* kNonVitalSvc = "delta_svc";

class ChaosMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto sys = BuildPaperFederation();
    ASSERT_TRUE(sys.ok()) << sys.status();
    sys_ = std::move(*sys);
    cont_before_ = ContinentalFares();
    delta_before_ = DeltaFares();
    united_before_ = UnitedFares();
  }

  double Fares(const std::string& db, const std::string& sql) {
    auto engine = *sys_->GetEngine(PaperServiceOf(db));
    auto s = *engine->OpenSession(db);
    auto rs = engine->Execute(s, sql);
    EXPECT_TRUE(rs.ok()) << rs.status();
    double out = rs->rows[0][0].NumericAsReal();
    EXPECT_TRUE(engine->CloseSession(s).ok());
    return out;
  }
  double ContinentalFares() {
    return Fares("continental",
                 "SELECT SUM(rate) FROM flights WHERE source = 'Houston' "
                 "AND destination = 'San Antonio'");
  }
  double DeltaFares() {
    return Fares("delta",
                 "SELECT SUM(rate) FROM flight WHERE source = 'Houston' "
                 "AND dest = 'San Antonio'");
  }
  double UnitedFares() {
    return Fares("united",
                 "SELECT SUM(rates) FROM flight WHERE sour = 'Houston' "
                 "AND dest = 'San Antonio'");
  }

  ExecutionReport RunCell(const FaultPlan& plan, RetryPolicy policy) {
    sys_->set_retry_policy(policy);
    sys_->environment().fault_injector().SetPlan(plan);
    auto report = sys_->Execute(kFareRaise);
    EXPECT_TRUE(report.ok()) << report.status();
    return report.ok() ? *report : ExecutionReport{};
  }

  void ExpectVitalsUnchanged() {
    EXPECT_NEAR(ContinentalFares(), cont_before_, 1e-6);
    EXPECT_NEAR(UnitedFares(), united_before_, 1e-6);
  }
  void ExpectVitalsRaised() {
    EXPECT_NEAR(ContinentalFares(), cont_before_ * 1.1, 1e-6);
    EXPECT_NEAR(UnitedFares(), united_before_ * 1.1, 1e-6);
  }
  bool Degraded(const ExecutionReport& report, const std::string& svc) {
    for (const auto& s : report.degraded_services) {
      if (s == svc) return true;
    }
    return false;
  }

  // A two-call outage window: retry-off runs hit it once and fail;
  // retry-on runs (3 attempts) ride it out.
  static FaultPlan Outage(const std::string& svc, LamRequestType verb) {
    FaultPlan plan;
    plan.rules.push_back(FaultRule::Transient(svc, verb, /*k=*/2));
    return plan;
  }
  static FaultPlan LostAck(const std::string& svc, LamRequestType verb) {
    FaultPlan plan;
    plan.rules.push_back(
        FaultRule::NthCall(svc, verb, 1, FaultAction::kLostResponse));
    return plan;
  }
  static FaultPlan LostRequest(const std::string& svc,
                               LamRequestType verb) {
    FaultPlan plan;
    plan.rules.push_back(
        FaultRule::NthCall(svc, verb, 1, FaultAction::kLostRequest));
    return plan;
  }

  std::unique_ptr<MultidatabaseSystem> sys_;
  double cont_before_ = 0;
  double delta_before_ = 0;
  double united_before_ = 0;
};

// -- VITAL column -----------------------------------------------------------

TEST_F(ChaosMatrixTest, VitalOpenFaultNoRetryAborts) {
  auto report = RunCell(Outage(kVitalSvc, LamRequestType::kOpenSession),
                        RetryPolicy::None());
  EXPECT_EQ(report.outcome, GlobalOutcome::kAborted);
  EXPECT_EQ(report.dol_status, 1);
  ExpectVitalsUnchanged();
  // Satellite: the poisoned channel is no longer silent.
  ASSERT_EQ(report.run.failed_channels.size(), 1u);
  EXPECT_NE(report.run.ToString().find("OPEN FAILED"), std::string::npos);
}

TEST_F(ChaosMatrixTest, VitalOpenFaultWithRetrySucceeds) {
  auto report = RunCell(Outage(kVitalSvc, LamRequestType::kOpenSession),
                        RetryPolicy::WithAttempts(3));
  EXPECT_EQ(report.outcome, GlobalOutcome::kSuccess);
  EXPECT_GE(report.retries_performed, 2);
  ExpectVitalsRaised();
  EXPECT_NEAR(DeltaFares(), delta_before_ * 1.1, 1e-6);
}

TEST_F(ChaosMatrixTest, VitalExecuteFaultNoRetryAborts) {
  auto report = RunCell(Outage(kVitalSvc, LamRequestType::kExecute),
                        RetryPolicy::None());
  EXPECT_EQ(report.outcome, GlobalOutcome::kAborted);
  ExpectVitalsUnchanged();
}

TEST_F(ChaosMatrixTest, VitalExecuteFaultWithRetrySucceeds) {
  auto report = RunCell(Outage(kVitalSvc, LamRequestType::kExecute),
                        RetryPolicy::WithAttempts(3));
  EXPECT_EQ(report.outcome, GlobalOutcome::kSuccess);
  EXPECT_GE(report.retries_performed, 2);
  ExpectVitalsRaised();
}

TEST_F(ChaosMatrixTest, VitalPrepareFaultNoRetryAborts) {
  auto report = RunCell(Outage(kVitalSvc, LamRequestType::kPrepare),
                        RetryPolicy::None());
  EXPECT_EQ(report.outcome, GlobalOutcome::kAborted);
  ExpectVitalsUnchanged();
}

TEST_F(ChaosMatrixTest, VitalPrepareFaultWithRetrySucceeds) {
  auto report = RunCell(Outage(kVitalSvc, LamRequestType::kPrepare),
                        RetryPolicy::WithAttempts(3));
  EXPECT_EQ(report.outcome, GlobalOutcome::kSuccess);
  EXPECT_GE(report.retries_performed, 2);
  ExpectVitalsRaised();
}

TEST_F(ChaosMatrixTest, VitalLostCommitAckNoReprobeIsIncorrect) {
  // The genuinely unresolvable cell: united's commit was applied but
  // the ACK vanished, and the coordinator is not allowed to re-probe.
  // It must assume the worst, and since the other vital committed, the
  // execution is (correctly) declared incorrect.
  auto report = RunCell(LostAck(kVitalSvc, LamRequestType::kCommit),
                        RetryPolicy::None());
  EXPECT_EQ(report.outcome, GlobalOutcome::kIncorrect);
  EXPECT_EQ(report.dol_status, 2);
  // Ground truth: both vitals actually committed — the declared state
  // diverged from reality, which is exactly what kIncorrect flags.
  ExpectVitalsRaised();
}

TEST_F(ChaosMatrixTest, VitalLostCommitAckResolvedByReprobe) {
  // The headline recovery: the same lost ACK, but the policy re-probes
  // the transaction state (kQueryTxnState), observes kCommitted, and
  // the run ends a clean success instead of kIncorrect.
  auto report = RunCell(LostAck(kVitalSvc, LamRequestType::kCommit),
                        RetryPolicy::WithAttempts(3));
  EXPECT_EQ(report.outcome, GlobalOutcome::kSuccess);
  EXPECT_EQ(report.dol_status, 0);
  EXPECT_GE(report.reprobes_performed, 1);
  ExpectVitalsRaised();
  EXPECT_NEAR(DeltaFares(), delta_before_ * 1.1, 1e-6);
}

// -- NON-VITAL column -------------------------------------------------------

TEST_F(ChaosMatrixTest, NonVitalOpenFaultNoRetryDegradesOnly) {
  auto report = RunCell(Outage(kNonVitalSvc, LamRequestType::kOpenSession),
                        RetryPolicy::None());
  EXPECT_EQ(report.outcome, GlobalOutcome::kSuccess);
  ExpectVitalsRaised();
  EXPECT_NEAR(DeltaFares(), delta_before_, 1e-6);  // left out of the raise
  EXPECT_TRUE(Degraded(report, kNonVitalSvc));
  EXPECT_FALSE(report.detail.ok());  // degradation is reported...
  EXPECT_EQ(report.dol_status, 0);   // ...but the outcome is untouched
  EXPECT_EQ(report.run.failed_channels.size(), 1u);
}

TEST_F(ChaosMatrixTest, NonVitalOpenFaultWithRetryHeals) {
  auto report = RunCell(Outage(kNonVitalSvc, LamRequestType::kOpenSession),
                        RetryPolicy::WithAttempts(3));
  EXPECT_EQ(report.outcome, GlobalOutcome::kSuccess);
  EXPECT_TRUE(report.detail.ok()) << report.detail;
  EXPECT_TRUE(report.degraded_services.empty());
  ExpectVitalsRaised();
  EXPECT_NEAR(DeltaFares(), delta_before_ * 1.1, 1e-6);
}

TEST_F(ChaosMatrixTest, NonVitalExecuteFaultNoRetryDegradesOnly) {
  auto report = RunCell(Outage(kNonVitalSvc, LamRequestType::kExecute),
                        RetryPolicy::None());
  EXPECT_EQ(report.outcome, GlobalOutcome::kSuccess);
  ExpectVitalsRaised();
  EXPECT_NEAR(DeltaFares(), delta_before_, 1e-6);
  EXPECT_TRUE(Degraded(report, kNonVitalSvc));
}

TEST_F(ChaosMatrixTest, NonVitalExecuteFaultWithRetryHeals) {
  auto report = RunCell(Outage(kNonVitalSvc, LamRequestType::kExecute),
                        RetryPolicy::WithAttempts(3));
  EXPECT_EQ(report.outcome, GlobalOutcome::kSuccess);
  EXPECT_TRUE(report.degraded_services.empty());
  ExpectVitalsRaised();
  EXPECT_NEAR(DeltaFares(), delta_before_ * 1.1, 1e-6);
}

TEST_F(ChaosMatrixTest, NonVitalLostUpdateRequestDegradesEitherWay) {
  // Delta is autocommitted, so its "pre-commit" fault is the update
  // request vanishing. A timed-out kExecute may have been applied, so
  // the policy must NOT blindly re-send it — with retries on or off the
  // subquery is reported lost and the global outcome stays kSuccess.
  for (RetryPolicy policy :
       {RetryPolicy::None(), RetryPolicy::WithAttempts(3)}) {
    SetUp();
    auto report = RunCell(
        LostRequest(kNonVitalSvc, LamRequestType::kExecute), policy);
    EXPECT_EQ(report.outcome, GlobalOutcome::kSuccess);
    ExpectVitalsRaised();
    EXPECT_NEAR(DeltaFares(), delta_before_, 1e-6);
    EXPECT_TRUE(Degraded(report, kNonVitalSvc));
    EXPECT_EQ(report.retries_performed, 0);  // no blind re-send
  }
}

TEST_F(ChaosMatrixTest, NonVitalLostCommitAckNeverChangesOutcome) {
  // The autocommit ACK vanishes after delta applied the update: the
  // coordinator honestly reports the subquery lost (degraded) — it has
  // no oracle — but the §3.2.1 outcome is decided by the vitals alone.
  auto report = RunCell(LostAck(kNonVitalSvc, LamRequestType::kExecute),
                        RetryPolicy::WithAttempts(3));
  EXPECT_EQ(report.outcome, GlobalOutcome::kSuccess);
  ExpectVitalsRaised();
  // Ground truth: the update WAS committed locally.
  EXPECT_NEAR(DeltaFares(), delta_before_ * 1.1, 1e-6);
  EXPECT_TRUE(Degraded(report, kNonVitalSvc));
}

// -- Cross-cutting ----------------------------------------------------------

TEST_F(ChaosMatrixTest, RetryAndBackoffShowUpInMakespan) {
  auto clean = sys_->Execute(kFareRaise);
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_EQ(clean->outcome, GlobalOutcome::kSuccess);

  SetUp();  // fresh federation, same data
  auto faulted = RunCell(Outage(kVitalSvc, LamRequestType::kExecute),
                         RetryPolicy::WithAttempts(3));
  ASSERT_EQ(faulted.outcome, GlobalOutcome::kSuccess);
  // Two rejected sends plus two backoff waits are charged to the clock.
  EXPECT_GT(faulted.run.makespan_micros, clean->run.makespan_micros);
  EXPECT_EQ(faulted.retries_performed, 2);
}

TEST_F(ChaosMatrixTest, IdenticalSeedsProduceIdenticalTraces) {
  FaultPlan plan;
  plan.seed = 4242;
  plan.rules.push_back(FaultRule::Random("", std::nullopt, /*p=*/0.15));
  plan.rules.back().count = -1;

  auto report_a = RunCell(plan, RetryPolicy::WithAttempts(3));
  std::string trace_a = report_a.run.ToString();

  SetUp();  // identical federation (fixture seed is fixed)
  auto report_b = RunCell(plan, RetryPolicy::WithAttempts(3));
  EXPECT_EQ(report_b.run.ToString(), trace_a);
  EXPECT_EQ(report_b.outcome, report_a.outcome);
  EXPECT_EQ(report_b.retries_performed, report_a.retries_performed);
  EXPECT_EQ(report_b.reprobes_performed, report_a.reprobes_performed);
}

}  // namespace
}  // namespace msql::core
