// E16: concurrent federation server — N MSQL sessions interleaved on
// the shared simulated clock by the discrete-event scheduler, with
// inter-multitransaction locking at the LDBMSs (held across 2PC
// prepare), kBusy parking, waits-for deadlock detection and admission
// control.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/fixtures.h"
#include "core/mdbs_system.h"
#include "core/session_scheduler.h"
#include "dol/engine.h"

namespace msql::core {
namespace {

/// Two-airline seat reservation: takes the lowest FREE seat on each
/// airline for `client`. Conflicting sessions contend for the same
/// MIN(snu) row and the same table X locks, which are held across 2PC
/// prepare until the global decision.
std::string SeatMt(const std::string& client) {
  return "BEGIN MULTITRANSACTION\n"
         "USE continental delta\n"
         "LET fitab.snu.sstat.clname BE\n"
         "  f838.seatnu.seatstatus.clientname\n"
         "  fnu747.snu.sstat.passname\n"
         "UPDATE fitab SET sstat = 'TAKEN', clname = '" +
         client +
         "'\n"
         "WHERE snu = (SELECT MIN(snu) FROM fitab WHERE sstat = 'FREE');\n"
         "COMMIT\n"
         "  continental AND delta\n"
         "END MULTITRANSACTION";
}

/// Reserves a seat on both airlines in an explicit site order —
/// submitted in opposite orders by two sessions, the prepared
/// transactions acquire their table locks in reverse, producing a
/// cross-site deadlock no single LDBMS can see.
std::string OrderedSeatMt(bool continental_first,
                          const std::string& client) {
  std::string continental =
      "USE continental\n"
      "UPDATE f838 SET seatstatus = 'TAKEN', clientname = '" +
      client +
      "'\n"
      "WHERE seatnu = (SELECT MIN(seatnu) FROM f838 "
      "WHERE seatstatus = 'FREE');\n";
  std::string delta =
      "USE delta\n"
      "UPDATE fnu747 SET sstat = 'TAKEN', passname = '" + client +
      "'\n"
      "WHERE snu = (SELECT MIN(snu) FROM fnu747 WHERE sstat = 'FREE');\n";
  return "BEGIN MULTITRANSACTION\n" +
         (continental_first ? continental + delta : delta + continental) +
         "COMMIT\n"
         "  continental AND delta\n"
         "END MULTITRANSACTION";
}

class ConcurrencyTest : public ::testing::Test {
 protected:
  std::unique_ptr<MultidatabaseSystem> Build(int seats = 12) {
    PaperFederationOptions options;
    options.seats_per_airline = seats;
    auto sys = BuildPaperFederation(options);
    EXPECT_TRUE(sys.ok()) << sys.status();
    return std::move(*sys);
  }

  int64_t Count(MultidatabaseSystem& sys, const std::string& db,
                const std::string& sql) {
    auto engine = *sys.GetEngine(PaperServiceOf(db));
    auto session = *engine->OpenSession(db);
    auto rs = engine->Execute(session, sql);
    EXPECT_TRUE(rs.ok()) << rs.status();
    int64_t out = rs->rows[0][0].AsInteger();
    EXPECT_TRUE(engine->CloseSession(session).ok());
    return out;
  }

  int64_t TakenSeats(MultidatabaseSystem& sys, const std::string& client) {
    return Count(sys, "continental",
                 "SELECT COUNT(*) FROM f838 WHERE clientname = '" + client +
                     "'") +
           Count(sys, "delta",
                 "SELECT COUNT(*) FROM fnu747 WHERE passname = '" + client +
                     "'");
  }

  void ExpectNoHeldLocks(MultidatabaseSystem& sys) {
    for (const auto& name : sys.environment().ServiceNames()) {
      auto lam = sys.environment().GetLam(name);
      ASSERT_TRUE(lam.ok());
      EXPECT_EQ((*lam)->engine()->lock_manager().locked_resource_count(), 0)
          << "service " << name << " still holds locks";
    }
  }
};

// A single session through the server behaves exactly like the serial
// ExecuteScript path: same outcome, same DOL timeline, same final data.
TEST_F(ConcurrencyTest, SingleSessionMatchesSerialRun) {
  auto serial = Build();
  auto report = serial->Execute(SeatMt("wenders"));
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->outcome, GlobalOutcome::kSuccess);

  auto concurrent = Build();
  FederationServer server(concurrent.get());
  server.Submit(SeatMt("wenders"));
  auto results = server.RunAll();
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 1u);
  const SessionResult& r = (*results)[0];
  ASSERT_TRUE(r.status.ok()) << r.status;
  ASSERT_TRUE(r.report.has_value());
  EXPECT_EQ(r.report->outcome, GlobalOutcome::kSuccess);
  EXPECT_EQ(r.report->dol_status, report->dol_status);
  // Identical simulated timeline: the stepper replays the same calls.
  EXPECT_EQ(r.report->run.makespan_micros, report->run.makespan_micros);
  EXPECT_EQ(r.report->run.messages, report->run.messages);
  EXPECT_EQ(r.report->run.bytes, report->run.bytes);
  EXPECT_EQ(r.makespan_micros, report->run.makespan_micros);
  EXPECT_EQ(r.lock_waits, 0);
  EXPECT_EQ(TakenSeats(*concurrent, "wenders"),
            TakenSeats(*serial, "wenders"));
  ExpectNoHeldLocks(*concurrent);
}

// Two sessions contending for the same MIN(free) seat: the second
// parks on the first's prepared transaction, wakes at its commit, and
// takes the next seat — two distinct seats, no lost update.
TEST_F(ConcurrencyTest, ConflictingSessionsSerializeWithoutLostUpdates) {
  auto sys = Build();
  // The fixture seeds some seats as already TAKEN; measure the delta.
  const int64_t base_cont = Count(
      *sys, "continental",
      "SELECT COUNT(*) FROM f838 WHERE seatstatus = 'TAKEN'");
  const int64_t base_delta = Count(
      *sys, "delta", "SELECT COUNT(*) FROM fnu747 WHERE sstat = 'TAKEN'");
  FederationServer server(sys.get());
  server.Submit(SeatMt("alice"));
  server.Submit(SeatMt("bob"));
  auto results = server.RunAll();
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 2u);
  for (const SessionResult& r : *results) {
    ASSERT_TRUE(r.status.ok()) << r.status;
    ASSERT_TRUE(r.report.has_value());
    EXPECT_EQ(r.report->outcome, GlobalOutcome::kSuccess)
        << "session " << r.session_id << ": "
        << r.report->detail.ToString();
  }
  // Exactly one of the two waited on the other's locks.
  EXPECT_GE((*results)[0].lock_waits + (*results)[1].lock_waits, 1);
  EXPECT_EQ(TakenSeats(*sys, "alice"), 2);
  EXPECT_EQ(TakenSeats(*sys, "bob"), 2);
  // Distinct seats: both clients hold a seat, and exactly one new seat
  // per client was taken on each airline.
  EXPECT_EQ(Count(*sys, "continental",
                  "SELECT COUNT(*) FROM f838 WHERE seatstatus = 'TAKEN'"),
            base_cont + 2);
  EXPECT_EQ(Count(*sys, "delta",
                  "SELECT COUNT(*) FROM fnu747 WHERE sstat = 'TAKEN'"),
            base_delta + 2);
  ExpectNoHeldLocks(*sys);
}

// Opposite lock orders across two sites: a waits-for cycle no local
// DBMS can observe. The scheduler's detector aborts the larger session
// id; the survivor commits on both airlines.
TEST_F(ConcurrencyTest, CrossSiteDeadlockVictimAborted) {
  auto sys = Build();
  FederationServer server(sys.get());
  server.Submit(OrderedSeatMt(/*continental_first=*/true, "alpha"));
  server.Submit(OrderedSeatMt(/*continental_first=*/false, "beta"));
  auto results = server.RunAll();
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 2u);
  const SessionResult& survivor = (*results)[0];
  const SessionResult& victim = (*results)[1];
  ASSERT_TRUE(survivor.report.has_value()) << survivor.status;
  ASSERT_TRUE(victim.report.has_value()) << victim.status;
  EXPECT_EQ(survivor.report->outcome, GlobalOutcome::kSuccess)
      << survivor.report->detail.ToString();
  EXPECT_FALSE(survivor.deadlock_victim);
  EXPECT_EQ(victim.report->outcome, GlobalOutcome::kAborted)
      << victim.report->detail.ToString();
  EXPECT_TRUE(victim.deadlock_victim);
  // The survivor's reservation is fully applied; the victim's is fully
  // rolled back on both airlines.
  EXPECT_EQ(TakenSeats(*sys, "alpha"), 2);
  EXPECT_EQ(TakenSeats(*sys, "beta"), 0);
  ExpectNoHeldLocks(*sys);
}

// 16 sessions race for seats; every session commits, every client gets
// exactly one seat per airline, and the scheduler reports real lock
// waiting.
TEST_F(ConcurrencyTest, SixteenSessionsInterleaveSerializably) {
  auto sys = Build(/*seats=*/32);
  const int64_t base_cont = Count(
      *sys, "continental",
      "SELECT COUNT(*) FROM f838 WHERE seatstatus = 'TAKEN'");
  const int64_t base_delta = Count(
      *sys, "delta", "SELECT COUNT(*) FROM fnu747 WHERE sstat = 'TAKEN'");
  FederationServer server(sys.get());
  constexpr int kSessions = 16;
  for (int i = 0; i < kSessions; ++i) {
    server.Submit(SeatMt("client" + std::to_string(i)));
  }
  auto results = server.RunAll();
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), static_cast<size_t>(kSessions));
  int64_t total_waits = 0;
  for (const SessionResult& r : *results) {
    ASSERT_TRUE(r.status.ok()) << r.status;
    ASSERT_TRUE(r.report.has_value());
    EXPECT_EQ(r.report->outcome, GlobalOutcome::kSuccess)
        << "session " << r.session_id << ": "
        << r.report->detail.ToString();
    total_waits += r.lock_waits;
  }
  EXPECT_GE(total_waits, kSessions - 1);
  for (int i = 0; i < kSessions; ++i) {
    EXPECT_EQ(TakenSeats(*sys, "client" + std::to_string(i)), 2)
        << "client" << i;
  }
  EXPECT_EQ(Count(*sys, "continental",
                  "SELECT COUNT(*) FROM f838 WHERE seatstatus = 'TAKEN'"),
            base_cont + kSessions);
  EXPECT_EQ(Count(*sys, "delta",
                  "SELECT COUNT(*) FROM fnu747 WHERE sstat = 'TAKEN'"),
            base_delta + kSessions);
  ExpectNoHeldLocks(*sys);
}

// max_admitted = 1 degenerates to serial execution: later sessions are
// admitted only when their predecessors finish, and nobody ever waits
// on a lock.
TEST_F(ConcurrencyTest, AdmissionControlSerializes) {
  auto sys = Build();
  const int64_t base_cont = Count(
      *sys, "continental",
      "SELECT COUNT(*) FROM f838 WHERE seatstatus = 'TAKEN'");
  ServerConfig config;
  config.max_admitted = 1;
  FederationServer server(sys.get(), config);
  server.Submit(SeatMt("one"));
  server.Submit(SeatMt("two"));
  server.Submit(SeatMt("three"));
  auto results = server.RunAll();
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 3u);
  int64_t previous_finish = 0;
  for (const SessionResult& r : *results) {
    ASSERT_TRUE(r.report.has_value()) << r.status;
    EXPECT_EQ(r.report->outcome, GlobalOutcome::kSuccess);
    EXPECT_EQ(r.lock_waits, 0);
    EXPECT_GE(r.admit_micros, previous_finish);
    previous_finish = r.finish_micros;
  }
  EXPECT_EQ(Count(*sys, "continental",
                  "SELECT COUNT(*) FROM f838 WHERE seatstatus = 'TAKEN'"),
            base_cont + 3);
  ExpectNoHeldLocks(*sys);
}

// A capacity-limited LAM queues overlapping requests from concurrent
// sessions; the wait surfaces in the health registry.
TEST_F(ConcurrencyTest, ServiceConcurrencyLimitQueuesAndFeedsHealth) {
  auto sys = Build();
  ASSERT_TRUE(sys->environment()
                  .SetServiceConcurrency("continental_svc", 1)
                  .ok());
  sys->environment().health().Clear();  // drop the bootstrap history
  FederationServer server(sys.get());
  for (int i = 0; i < 4; ++i) {
    server.Submit("USE continental\nSELECT flnu FROM flights");
  }
  auto results = server.RunAll();
  ASSERT_TRUE(results.ok()) << results.status();
  for (const SessionResult& r : *results) {
    ASSERT_TRUE(r.report.has_value()) << r.status;
    EXPECT_EQ(r.report->outcome, GlobalOutcome::kSuccess);
  }
  const obs::SiteHealth* health =
      sys->environment().health().Get("continental_svc");
  ASSERT_NE(health, nullptr);
  EXPECT_GT(health->queue_waits(), 0);
  EXPECT_NE(sys->environment().health().RenderText().find("queue delay"),
            std::string::npos);
}

// Inputs the prepared path cannot serve (catalog DDL, view queries)
// fail the session with a status instead of running.
TEST_F(ConcurrencyTest, UnpreparableInputReportsError) {
  auto sys = Build();
  FederationServer server(sys.get());
  server.Submit("CREATE MULTIDATABASE trip OF continental delta");
  auto results = server.RunAll();
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 1u);
  EXPECT_FALSE((*results)[0].status.ok());
  EXPECT_FALSE((*results)[0].report.has_value());
}

// The server is reusable: a second batch on the same instance runs
// cleanly and the engines are back to serial service afterwards.
TEST_F(ConcurrencyTest, ServerReusableAcrossBatches) {
  auto sys = Build(/*seats=*/32);
  const int64_t base_cont = Count(
      *sys, "continental",
      "SELECT COUNT(*) FROM f838 WHERE seatstatus = 'TAKEN'");
  FederationServer server(sys.get());
  server.Submit(SeatMt("first1"));
  server.Submit(SeatMt("first2"));
  auto batch1 = server.RunAll();
  ASSERT_TRUE(batch1.ok());
  server.Submit(SeatMt("second1"));
  server.Submit(SeatMt("second2"));
  auto batch2 = server.RunAll();
  ASSERT_TRUE(batch2.ok());
  ASSERT_EQ(batch2->size(), 2u);
  for (const SessionResult& r : *batch2) {
    ASSERT_TRUE(r.report.has_value()) << r.status;
    EXPECT_EQ(r.report->outcome, GlobalOutcome::kSuccess);
  }
  ExpectNoHeldLocks(*sys);
  // Engines still serve the plain serial path.
  auto serial = sys->Execute(SeatMt("after"));
  ASSERT_TRUE(serial.ok()) << serial.status();
  EXPECT_EQ(serial->outcome, GlobalOutcome::kSuccess);
  EXPECT_EQ(Count(*sys, "continental",
                  "SELECT COUNT(*) FROM f838 WHERE seatstatus = 'TAKEN'"),
            base_cont + 5);
}

// Stepper regression: driving a prepared plan by hand through
// BeginRun/pending/Deliver reproduces DolEngine::Run outcome for
// outcome — same timeline, same traffic, same per-task verdicts.
TEST_F(ConcurrencyTest, ManualStepperLoopMatchesRun) {
  auto ran = Build();
  auto prepared_run = ran->Prepare(SeatMt("norma"));
  ASSERT_TRUE(prepared_run.ok()) << prepared_run.status();
  dol::DolEngine run_engine(&ran->environment());
  auto by_run = run_engine.Run(prepared_run->plan.program);
  ASSERT_TRUE(by_run.ok()) << by_run.status();

  auto stepped = Build();
  auto prepared_step = stepped->Prepare(SeatMt("norma"));
  ASSERT_TRUE(prepared_step.ok()) << prepared_step.status();
  dol::DolEngine step_engine(&stepped->environment());
  ASSERT_TRUE(
      step_engine.BeginRun(prepared_step->plan.program, 0).ok());
  int steps = 0;
  while (!step_engine.done()) {
    const dol::DolEngine::PendingRpc* rpc = step_engine.pending();
    ASSERT_NE(rpc, nullptr);
    step_engine.Deliver(stepped->environment().Call(
        rpc->service, rpc->request, rpc->at));
    ++steps;
  }
  auto by_step = step_engine.TakeResult();
  ASSERT_TRUE(by_step.ok()) << by_step.status();
  EXPECT_GT(steps, 4);

  EXPECT_EQ(by_step->dol_status, by_run->dol_status);
  EXPECT_EQ(by_step->makespan_micros, by_run->makespan_micros);
  EXPECT_EQ(by_step->messages, by_run->messages);
  EXPECT_EQ(by_step->bytes, by_run->bytes);
  ASSERT_EQ(by_step->tasks.size(), by_run->tasks.size());
  for (const auto& [name, outcome] : by_run->tasks) {
    const dol::TaskOutcome* twin = by_step->FindTask(name);
    ASSERT_NE(twin, nullptr) << name;
    EXPECT_EQ(twin->state, outcome.state) << name;
    EXPECT_EQ(twin->start_micros, outcome.start_micros) << name;
    EXPECT_EQ(twin->end_micros, outcome.end_micros) << name;
  }
  EXPECT_EQ(by_step->ToString(), by_run->ToString());
}

// Sessions interleaved by the server keep their spans nested under
// their own session root even though the tracer is single-stacked.
TEST_F(ConcurrencyTest, InterleavedSessionsKeepSeparateSpanTrees) {
  auto sys = Build();
  sys->environment().tracer().set_enabled(true);
  sys->environment().tracer().Clear();
  FederationServer server(sys.get());
  server.Submit(SeatMt("alice"));
  server.Submit(SeatMt("bob"));
  auto results = server.RunAll();
  ASSERT_TRUE(results.ok()) << results.status();
  const obs::Tracer& tracer = sys->environment().tracer();
  uint64_t root1 = 0;
  uint64_t root2 = 0;
  for (const obs::Span& span : tracer.spans()) {
    if (span.name == "session:1") root1 = span.id;
    if (span.name == "session:2") root2 = span.id;
  }
  ASSERT_NE(root1, 0u);
  ASSERT_NE(root2, 0u);
  // Every span belongs to exactly one session subtree; walking parents
  // from any span must end at its own session root, never cross over.
  int under1 = 0;
  int under2 = 0;
  for (const obs::Span& span : tracer.spans()) {
    uint64_t cursor = span.id;
    while (true) {
      const obs::Span* node = tracer.FindSpan(cursor);
      ASSERT_NE(node, nullptr);
      if (node->parent == 0) break;
      cursor = node->parent;
    }
    if (cursor == root1) ++under1;
    if (cursor == root2) ++under2;
  }
  EXPECT_GT(under1, 1);
  EXPECT_GT(under2, 1);
}

}  // namespace
}  // namespace msql::core
