// Lexer and SQL parser, including the MSQL extensions ('%', '~').
#include <gtest/gtest.h>

#include "relational/sql/lexer.h"
#include "relational/sql/parser.h"

namespace msql::relational {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a, 42 FROM t WHERE b >= 3.5");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 11u);  // 10 tokens + EOF
  EXPECT_EQ((*tokens)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[3].type, TokenType::kInteger);
  EXPECT_EQ((*tokens)[3].int_value, 42);
  EXPECT_EQ((*tokens)[8].type, TokenType::kGe);
  EXPECT_EQ((*tokens)[9].type, TokenType::kReal);
  EXPECT_DOUBLE_EQ((*tokens)[9].real_value, 3.5);
  EXPECT_EQ(tokens->back().type, TokenType::kEof);
}

TEST(LexerTest, StringEscapesAndComments) {
  auto tokens = Tokenize("-- comment line\n'o''hare' <> '' ");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "o'hare");
  EXPECT_EQ((*tokens)[1].type, TokenType::kNe);
  EXPECT_EQ((*tokens)[2].text, "");
}

TEST(LexerTest, PercentRequiresMsqlMode) {
  EXPECT_FALSE(Tokenize("SELECT %code").ok());
  LexerOptions msql;
  msql.percent_in_identifiers = true;
  auto tokens = Tokenize("SELECT %code, flight%", msql);
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "%code");
  EXPECT_EQ((*tokens)[3].text, "flight%");
}

TEST(LexerTest, BracesRequireDolMode) {
  EXPECT_FALSE(Tokenize("{ x }").ok());
  LexerOptions dol;
  dol.braces = true;
  auto tokens = Tokenize("{ x }", dol);
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kLBrace);
  EXPECT_EQ((*tokens)[2].type, TokenType::kRBrace);
}

TEST(LexerTest, ErrorsCarryPosition) {
  auto tokens = Tokenize("a\n  @");
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("line 2"), std::string::npos);
}

TEST(LexerTest, UnterminatedString) {
  EXPECT_FALSE(Tokenize("'abc").ok());
}

// --- parser ---------------------------------------------------------------

Result<StatementPtr> Parse(std::string_view sql) { return ParseSql(sql); }

TEST(ParserTest, SelectFull) {
  auto stmt = Parse(
      "SELECT DISTINCT a, b AS bee, t.c FROM t1 t, t2 "
      "WHERE a = 1 AND b <> 'x' GROUP BY a HAVING COUNT(*) > 1 "
      "ORDER BY a DESC, b");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& sel = static_cast<const SelectStmt&>(**stmt);
  EXPECT_TRUE(sel.distinct);
  ASSERT_EQ(sel.items.size(), 3u);
  EXPECT_EQ(sel.items[1].alias, "bee");
  ASSERT_EQ(sel.from.size(), 2u);
  EXPECT_EQ(sel.from[0].alias, "t");
  ASSERT_NE(sel.where, nullptr);
  ASSERT_EQ(sel.group_by.size(), 1u);
  ASSERT_NE(sel.having, nullptr);
  ASSERT_EQ(sel.order_by.size(), 2u);
  EXPECT_TRUE(sel.order_by[0].descending);
  EXPECT_FALSE(sel.order_by[1].descending);
}

TEST(ParserTest, SelectStarForms) {
  auto stmt = Parse("SELECT *, t.* FROM t");
  ASSERT_TRUE(stmt.ok());
  const auto& sel = static_cast<const SelectStmt&>(**stmt);
  EXPECT_TRUE(sel.items[0].is_star);
  EXPECT_EQ(sel.items[0].star_qualifier, "");
  EXPECT_TRUE(sel.items[1].is_star);
  EXPECT_EQ(sel.items[1].star_qualifier, "t");
}

TEST(ParserTest, ExpressionPrecedence) {
  auto stmt = Parse("SELECT a FROM t WHERE a + 2 * 3 = 7 OR NOT b < 1");
  ASSERT_TRUE(stmt.ok());
  // Precedence-aware rendering needs no parentheses here.
  std::string sql = (*stmt)->ToSql();
  EXPECT_NE(sql.find("a + 2 * 3 = 7"), std::string::npos) << sql;
  // But a reassociated tree keeps them.
  auto forced = Parse("SELECT a FROM t WHERE (a + 2) * 3 = 9");
  ASSERT_TRUE(forced.ok());
  EXPECT_NE((*forced)->ToSql().find("(a + 2) * 3 = 9"), std::string::npos);
}

TEST(ParserTest, ScalarSubqueryAndIn) {
  auto stmt = Parse(
      "SELECT a FROM t WHERE a = (SELECT MIN(a) FROM t) "
      "AND b IN (1, 2, 3) AND c NOT IN (SELECT c FROM u)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  std::string sql = (*stmt)->ToSql();
  EXPECT_NE(sql.find("(SELECT MIN(a) FROM t)"), std::string::npos);
  EXPECT_NE(sql.find("NOT IN"), std::string::npos);
}

TEST(ParserTest, BetweenLikeIsNull) {
  auto stmt = Parse(
      "SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b LIKE 'x%' "
      "AND c IS NOT NULL AND d IS NULL AND e NOT BETWEEN 2 AND 3");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  std::string sql = (*stmt)->ToSql();
  EXPECT_NE(sql.find("BETWEEN 1 AND 5"), std::string::npos);
  EXPECT_NE(sql.find("IS NOT NULL"), std::string::npos);
  EXPECT_NE(sql.find("NOT BETWEEN"), std::string::npos);
}

TEST(ParserTest, InsertForms) {
  auto values = Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  ASSERT_TRUE(values.ok());
  const auto& ins = static_cast<const InsertStmt&>(**values);
  EXPECT_EQ(ins.columns, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(ins.values_rows.size(), 2u);

  auto select_src = Parse("INSERT INTO t SELECT a FROM u");
  ASSERT_TRUE(select_src.ok());
  const auto& ins2 = static_cast<const InsertStmt&>(**select_src);
  EXPECT_NE(ins2.select_source, nullptr);
}

TEST(ParserTest, UpdateAndDelete) {
  auto upd = Parse("UPDATE t SET a = a + 1, b = 'z' WHERE c = 0");
  ASSERT_TRUE(upd.ok());
  const auto& u = static_cast<const UpdateStmt&>(**upd);
  EXPECT_EQ(u.assignments.size(), 2u);
  ASSERT_NE(u.where, nullptr);

  auto del = Parse("DELETE FROM t WHERE a IS NULL");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ((*del)->kind(), StatementKind::kDelete);
}

TEST(ParserTest, DdlAndTxnControl) {
  auto create = Parse("CREATE TABLE t (a INTEGER, b VARCHAR(20))");
  ASSERT_TRUE(create.ok());
  const auto& c = static_cast<const CreateTableStmt&>(**create);
  EXPECT_EQ(c.columns[1].width, 20);

  EXPECT_EQ((*Parse("DROP TABLE t"))->kind(), StatementKind::kDropTable);
  EXPECT_EQ((*Parse("CREATE DATABASE d"))->kind(),
            StatementKind::kCreateDatabase);
  EXPECT_EQ((*Parse("BEGIN"))->kind(), StatementKind::kBegin);
  EXPECT_EQ((*Parse("BEGIN TRANSACTION"))->kind(), StatementKind::kBegin);
  EXPECT_EQ((*Parse("COMMIT"))->kind(), StatementKind::kCommit);
  EXPECT_EQ((*Parse("ROLLBACK"))->kind(), StatementKind::kRollback);
  EXPECT_EQ((*Parse("PREPARE"))->kind(), StatementKind::kPrepare);
}

TEST(ParserTest, DbQualifiedTableNames) {
  auto stmt = Parse("SELECT a FROM avis.cars");
  ASSERT_TRUE(stmt.ok());
  const auto& sel = static_cast<const SelectStmt&>(**stmt);
  EXPECT_EQ(sel.from[0].database, "avis");
  EXPECT_EQ(sel.from[0].table, "cars");
}

TEST(ParserTest, TildeNeedsMsqlMode) {
  EXPECT_FALSE(Parse("SELECT ~rate FROM cars").ok());
  ParseOptions msql;
  msql.msql_extensions = true;
  auto stmt = ParseSql("SELECT ~rate FROM cars", msql);
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& sel = static_cast<const SelectStmt&>(**stmt);
  const auto& ref = static_cast<const ColumnRefExpr&>(*sel.items[0].expr);
  EXPECT_TRUE(ref.optional_column());
}

TEST(ParserTest, ErrorsAreParseErrors) {
  EXPECT_EQ(Parse("SELEC a FROM t").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(Parse("SELECT FROM t").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(Parse("SELECT a FROM t extra garbage ,").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(Parse("UPDATE t SET").status().code(), StatusCode::kParseError);
}

TEST(ParserTest, ScriptSplitsOnSemicolons) {
  auto script = ParseSqlScript("SELECT a FROM t; DELETE FROM t;;");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->size(), 2u);
}

/// Property: rendering a parsed statement and re-parsing it must reach a
/// fixpoint (ToSql ∘ Parse is idempotent).
class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, ToSqlParseFixpoint) {
  auto first = Parse(GetParam());
  ASSERT_TRUE(first.ok()) << first.status();
  std::string rendered = (*first)->ToSql();
  auto second = Parse(rendered);
  ASSERT_TRUE(second.ok()) << rendered << " -> " << second.status();
  EXPECT_EQ((*second)->ToSql(), rendered);
}

INSTANTIATE_TEST_SUITE_P(
    Statements, RoundTripTest,
    ::testing::Values(
        "SELECT a, b AS c FROM t WHERE a = 1 ORDER BY a DESC",
        "SELECT DISTINCT t.a FROM t1 t, t2 WHERE t.a = t2.b",
        "SELECT COUNT(*), MIN(a), AVG(b) FROM t GROUP BY c HAVING "
        "COUNT(*) > 2",
        "SELECT a FROM t WHERE a = (SELECT MAX(a) FROM t) AND b LIKE 'x%'",
        "SELECT a FROM t WHERE a IN (1, 2) AND b NOT BETWEEN 1 AND 9",
        "INSERT INTO t (a, b) VALUES (1, 'x''y'), (NULL, 'z')",
        "UPDATE t SET a = a * 1.1 WHERE b = 'Houston' AND c IS NULL",
        "DELETE FROM t WHERE NOT (a = 1 OR b = 2)",
        "CREATE TABLE t (a INTEGER, b TEXT(12), c REAL)",
        "DROP TABLE t"));

}  // namespace
}  // namespace msql::relational
