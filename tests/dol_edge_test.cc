// DOL engine and protocol edge cases beyond the main suite: transfer
// failure paths, parallel non-task statements, nested conditionals,
// session bookkeeping.
#include <gtest/gtest.h>

#include <memory>

#include "dol/engine.h"
#include "dol/parser.h"
#include "netsim/environment.h"
#include "relational/engine.h"

namespace msql::dol {
namespace {

using netsim::Environment;
using relational::CapabilityProfile;
using relational::LocalEngine;

class DolEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AddEngine("asvc", "site_a");
    AddEngine("bsvc", "site_b");
  }

  void AddEngine(const std::string& service, const std::string& site) {
    auto engine = std::make_unique<LocalEngine>(
        service, CapabilityProfile::IngresLike());
    ASSERT_TRUE(engine->CreateDatabase("db").ok());
    auto s = *engine->OpenSession("db");
    ASSERT_TRUE(
        engine->Execute(s, "CREATE TABLE t (id INTEGER, v TEXT)").ok());
    ASSERT_TRUE(
        engine->Execute(s, "INSERT INTO t VALUES (1, 'a'), (2, 'b')").ok());
    ASSERT_TRUE(engine->CloseSession(s).ok());
    engines_[service] = engine.get();
    ASSERT_TRUE(env_.AddService(service, site, std::move(engine)).ok());
  }

  Result<DolRunResult> Run(const std::string& text) {
    auto program = ParseDol(text);
    if (!program.ok()) return program.status();
    DolEngine engine(&env_);
    return engine.Run(*program);
  }

  Environment env_;
  std::map<std::string, LocalEngine*> engines_;
};

TEST_F(DolEdgeTest, TransferOfDmlTaskIsAnError) {
  auto result = Run(R"(
DOLBEGIN
  OPEN db AT asvc AS a;
  OPEN db AT bsvc AS b;
  TASK t1 FOR a { DELETE FROM t WHERE id = 99 } ENDTASK;
  TRANSFER t1 TO b TABLE x (id INTEGER);
DOLEND)");
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DolEdgeTest, TransferToDownTargetFails) {
  ASSERT_TRUE(env_.network().SetSiteDown("site_b", true).ok());
  auto result = Run(R"(
DOLBEGIN
  OPEN db AT asvc AS a;
  OPEN db AT bsvc AS b;
  TASK t1 FOR a { SELECT id FROM t } ENDTASK;
  TRANSFER t1 TO b TABLE x (id INTEGER);
DOLEND)");
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST_F(DolEdgeTest, TransferAppendIntoMissingTableFails) {
  auto result = Run(R"(
DOLBEGIN
  OPEN db AT asvc AS a;
  OPEN db AT bsvc AS b;
  TASK t1 FOR a { SELECT id FROM t } ENDTASK;
  TRANSFER t1 TO b TABLE ghost APPEND;
DOLEND)");
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(DolEdgeTest, EmptyResultTransfersCreateEmptyTable) {
  auto result = Run(R"(
DOLBEGIN
  OPEN db AT asvc AS a;
  OPEN db AT bsvc AS b;
  TASK t1 FOR a { SELECT id FROM t WHERE id = 99 } ENDTASK;
  TRANSFER t1 TO b TABLE empty_copy (id INTEGER);
  TASK q FOR b { SELECT COUNT ( * ) FROM empty_copy } ENDTASK;
DOLEND)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->FindTask("q")->result.rows[0][0].AsInteger(), 0);
}

TEST_F(DolEdgeTest, ParallelOpensOverlap) {
  auto par = Run(R"(
DOLBEGIN
  PARBEGIN
    OPEN db AT asvc AS a;
    OPEN db AT bsvc AS b;
  PAREND;
  CLOSE a b;
DOLEND)");
  auto seq = Run(R"(
DOLBEGIN
  OPEN db AT asvc AS a;
  OPEN db AT bsvc AS b;
  CLOSE a b;
DOLEND)");
  ASSERT_TRUE(par.ok());
  ASSERT_TRUE(seq.ok());
  EXPECT_LT(par->makespan_micros, seq->makespan_micros);
}

TEST_F(DolEdgeTest, NestedIfBranches) {
  auto result = Run(R"(
DOLBEGIN
  OPEN db AT asvc AS a;
  TASK t1 FOR a { SELECT id FROM t } ENDTASK;
  TASK t2 FOR a { SELECT id FROM ghost } ENDTASK;
  IF t1=C THEN
  BEGIN
    IF t2=C THEN BEGIN DOLSTATUS = 1; END;
    ELSE BEGIN DOLSTATUS = 2; END;
  END;
  ELSE BEGIN DOLSTATUS = 3; END;
DOLEND)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->dol_status, 2);
}

TEST_F(DolEdgeTest, StatusDefaultsToZero) {
  auto result = Run("DOLBEGIN DOLEND");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dol_status, 0);
  EXPECT_EQ(result->makespan_micros, 0);
  EXPECT_TRUE(result->tasks.empty());
}

TEST_F(DolEdgeTest, TaskOnClosedChannelAborts) {
  auto result = Run(R"(
DOLBEGIN
  OPEN db AT asvc AS a;
  CLOSE a;
  TASK t1 FOR a { SELECT id FROM t } ENDTASK;
  IF t1=A THEN BEGIN DOLSTATUS = 5; END;
DOLEND)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->dol_status, 5);
}

TEST_F(DolEdgeTest, CommitIsIdempotentOnCommittedTasks) {
  auto result = Run(R"(
DOLBEGIN
  OPEN db AT asvc AS a;
  TASK t1 FOR a { DELETE FROM t WHERE id = 1 } ENDTASK;
  COMMIT t1;
  COMMIT t1;
  DOLSTATUS = 0;
DOLEND)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->FindTask("t1")->state, DolTaskState::kCommitted);
}

TEST_F(DolEdgeTest, SessionLocksReleasedAfterProgram) {
  // A prepared task that the program forgets to resolve is still rolled
  // back when its session closes — no lock leaks into later programs.
  auto first = Run(R"(
DOLBEGIN
  OPEN db AT asvc AS a;
  TASK t1 NOCOMMIT FOR a { DELETE FROM t } ENDTASK;
  CLOSE a;
DOLEND)");
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = Run(R"(
DOLBEGIN
  OPEN db AT asvc AS a;
  TASK t2 FOR a { SELECT COUNT ( * ) FROM t } ENDTASK;
  CLOSE a;
DOLEND)");
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->FindTask("t2")->state, DolTaskState::kCommitted);
  // The unresolved prepared delete was rolled back at CLOSE.
  EXPECT_EQ(second->FindTask("t2")->result.rows[0][0].AsInteger(), 2);
}

TEST_F(DolEdgeTest, BytesAccountingGrowsWithResults) {
  auto small = Run(R"(
DOLBEGIN
  OPEN db AT asvc AS a;
  TASK t FOR a { SELECT id FROM t WHERE id = 1 } ENDTASK;
  CLOSE a;
DOLEND)");
  auto large = Run(R"(
DOLBEGIN
  OPEN db AT asvc AS a;
  TASK t FOR a { SELECT id, v FROM t } ENDTASK;
  CLOSE a;
DOLEND)");
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(large->bytes, small->bytes);
  EXPECT_EQ(large->messages, small->messages);
}

}  // namespace
}  // namespace msql::dol
