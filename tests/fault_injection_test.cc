// FaultInjector scheduling semantics and their integration with the
// simulated Environment: Nth-call triggers, transient recovery windows,
// seeded reproducibility, and the delivered/undelivered distinction
// between rejects, lost requests and lost responses.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "netsim/environment.h"
#include "netsim/fault_injector.h"
#include "netsim/lam.h"
#include "relational/engine.h"

namespace msql::netsim {
namespace {

using relational::CapabilityProfile;
using relational::LocalEngine;

TEST(FaultPlanTest, NthCallFiresExactlyOnce) {
  FaultInjector injector;
  FaultPlan plan;
  plan.rules.push_back(FaultRule::NthCall(
      "svc", LamRequestType::kPrepare, 2, FaultAction::kReject));
  injector.SetPlan(plan);

  // Other verbs never match the rule.
  EXPECT_EQ(injector.Decide("svc", LamRequestType::kExecute).action,
            FaultAction::kNone);
  // First prepare passes, second faults, third and later pass again.
  EXPECT_EQ(injector.Decide("svc", LamRequestType::kPrepare).action,
            FaultAction::kNone);
  FaultDecision second = injector.Decide("svc", LamRequestType::kPrepare);
  EXPECT_EQ(second.action, FaultAction::kReject);
  EXPECT_EQ(second.rule_index, 0);
  EXPECT_EQ(injector.Decide("svc", LamRequestType::kPrepare).action,
            FaultAction::kNone);
  EXPECT_EQ(injector.rule_fire_counts()[0], 1);
  EXPECT_EQ(injector.stats().faults_fired, 1);
}

TEST(FaultPlanTest, OtherServicesDoNotMatch) {
  FaultInjector injector;
  FaultPlan plan;
  plan.rules.push_back(FaultRule::NthCall(
      "svc_a", LamRequestType::kCommit, 1, FaultAction::kLostResponse));
  injector.SetPlan(plan);
  EXPECT_EQ(injector.Decide("svc_b", LamRequestType::kCommit).action,
            FaultAction::kNone);
  EXPECT_EQ(injector.Decide("svc_a", LamRequestType::kCommit).action,
            FaultAction::kLostResponse);
}

TEST(FaultPlanTest, TransientWindowRecovers) {
  FaultInjector injector;
  FaultPlan plan;
  plan.rules.push_back(
      FaultRule::Transient("svc", LamRequestType::kExecute, 3));
  injector.SetPlan(plan);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(injector.Decide("svc", LamRequestType::kExecute).action,
              FaultAction::kReject)
        << "call " << i;
  }
  // The outage window is over: the service has recovered.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(injector.Decide("svc", LamRequestType::kExecute).action,
              FaultAction::kNone);
  }
  EXPECT_EQ(injector.rule_fire_counts()[0], 3);
}

TEST(FaultPlanTest, WildcardServiceAndVerbMatchEverything) {
  FaultInjector injector;
  FaultPlan plan;
  FaultRule any = FaultRule::Transient("", std::nullopt, /*k=*/-1);
  any.count = -1;  // forever
  plan.rules.push_back(any);
  injector.SetPlan(plan);
  EXPECT_EQ(injector.Decide("alpha", LamRequestType::kPing).action,
            FaultAction::kReject);
  EXPECT_EQ(injector.Decide("beta", LamRequestType::kCommit).action,
            FaultAction::kReject);
  EXPECT_EQ(injector.Decide("gamma", LamRequestType::kExecute).action,
            FaultAction::kReject);
  EXPECT_EQ(injector.stats().faults_fired, 3);
}

TEST(FaultPlanTest, RuleOrdinalsAdvanceEvenWhenEarlierRuleFires) {
  // Rule windows are positions in the *matching call stream*, not in the
  // fault-free stream: rule B's 2nd-call window must fire on the second
  // call even though rule A consumed the first.
  FaultInjector injector;
  FaultPlan plan;
  plan.rules.push_back(
      FaultRule::NthCall("svc", std::nullopt, 1, FaultAction::kReject));
  plan.rules.push_back(FaultRule::NthCall("svc", std::nullopt, 2,
                                          FaultAction::kLostRequest));
  injector.SetPlan(plan);
  EXPECT_EQ(injector.Decide("svc", LamRequestType::kPing).action,
            FaultAction::kReject);
  EXPECT_EQ(injector.Decide("svc", LamRequestType::kPing).action,
            FaultAction::kLostRequest);
  EXPECT_EQ(injector.Decide("svc", LamRequestType::kPing).action,
            FaultAction::kNone);
}

TEST(FaultPlanTest, SeededRandomnessIsReproducible) {
  FaultPlan plan;
  plan.seed = 20260807;
  plan.rules.push_back(
      FaultRule::Random("svc", std::nullopt, /*p=*/0.4));
  plan.rules.back().count = -1;

  auto run = [&plan]() {
    FaultInjector injector;
    injector.SetPlan(plan);
    std::vector<FaultAction> decisions;
    for (int i = 0; i < 200; ++i) {
      decisions.push_back(
          injector.Decide("svc", LamRequestType::kExecute).action);
    }
    return decisions;
  };

  std::vector<FaultAction> first = run();
  std::vector<FaultAction> second = run();
  EXPECT_EQ(first, second);
  // p = 0.4 over 200 draws: some but not all calls fault.
  int fired = 0;
  for (FaultAction a : first) fired += (a != FaultAction::kNone);
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 200);

  // A different seed reshuffles the schedule.
  FaultPlan other = plan;
  other.seed = 99;
  FaultInjector injector;
  injector.SetPlan(other);
  std::vector<FaultAction> third;
  for (int i = 0; i < 200; ++i) {
    third.push_back(injector.Decide("svc", LamRequestType::kExecute).action);
  }
  EXPECT_NE(first, third);
}

TEST(FaultPlanTest, ClearStopsInjection) {
  FaultInjector injector;
  FaultPlan plan;
  plan.rules.push_back(
      FaultRule::Transient("svc", std::nullopt, /*k=*/100));
  injector.SetPlan(plan);
  EXPECT_TRUE(injector.active());
  EXPECT_EQ(injector.Decide("svc", LamRequestType::kPing).action,
            FaultAction::kReject);
  injector.Clear();
  EXPECT_FALSE(injector.active());
  EXPECT_EQ(injector.Decide("svc", LamRequestType::kPing).action,
            FaultAction::kNone);
}

// -- Environment integration -----------------------------------------------

std::unique_ptr<LocalEngine> SeededEngine() {
  auto engine = std::make_unique<LocalEngine>(
      "svc", CapabilityProfile::IngresLike());
  EXPECT_TRUE(engine->CreateDatabase("db").ok());
  auto s = *engine->OpenSession("db");
  EXPECT_TRUE(
      engine->Execute(s, "CREATE TABLE t (id INTEGER, v TEXT)").ok());
  EXPECT_TRUE(
      engine->Execute(s, "INSERT INTO t VALUES (1, 'a'), (2, 'b')").ok());
  EXPECT_TRUE(engine->CloseSession(s).ok());
  return engine;
}

class EnvironmentFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LinkParams link;
    link.latency_micros = 500;
    link.micros_per_kb = 0;
    env_.network().set_default_link(link);
    ASSERT_TRUE(env_.AddService("svc", "site1", SeededEngine()).ok());
    LamRequest open;
    open.type = LamRequestType::kOpenSession;
    open.database = "db";
    auto opened = env_.Call("svc", open, 0);
    ASSERT_TRUE(opened.ok());
    session_ = opened->response.session;
  }

  int64_t RowCount() {
    LamRequest count;
    count.type = LamRequestType::kExecute;
    count.session = session_;
    count.sql = "SELECT COUNT(*) FROM t";
    auto outcome = env_.Call("svc", count, 0);
    EXPECT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->response.status.ok());
    return outcome->response.result.rows[0][0].AsInteger();
  }

  Environment env_;
  relational::SessionId session_ = 0;
};

TEST_F(EnvironmentFaultTest, RejectIsImmediateAndUndelivered) {
  FaultPlan plan;
  plan.rules.push_back(FaultRule::NthCall(
      "svc", LamRequestType::kExecute, 1, FaultAction::kReject));
  env_.fault_injector().SetPlan(plan);

  LamRequest del;
  del.type = LamRequestType::kExecute;
  del.session = session_;
  del.sql = "DELETE FROM t WHERE id = 1";
  auto outcome = env_.Call("svc", del, 1000);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->response.status.code(), StatusCode::kUnavailable);
  // A reject is a definite answer, not a timeout: the caller learns
  // quickly (one round trip) and knows the request never ran.
  EXPECT_FALSE(outcome->timed_out);
  EXPECT_FALSE(outcome->request_delivered);
  EXPECT_EQ(outcome->timing.end_micros, 1000 + 500 + 500);
  EXPECT_EQ(RowCount(), 2);
}

TEST_F(EnvironmentFaultTest, LostRequestTimesOutWithoutExecuting) {
  FaultPlan plan;
  plan.rules.push_back(FaultRule::NthCall(
      "svc", LamRequestType::kExecute, 1, FaultAction::kLostRequest));
  env_.fault_injector().SetPlan(plan);
  env_.set_call_timeout_micros(30000);

  LamRequest del;
  del.type = LamRequestType::kExecute;
  del.session = session_;
  del.sql = "DELETE FROM t WHERE id = 1";
  auto outcome = env_.Call("svc", del, 2000);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->response.status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(outcome->timed_out);
  EXPECT_FALSE(outcome->request_delivered);
  EXPECT_EQ(outcome->timing.end_micros, 2000 + 30000);
  // The request vanished before the LDBMS: no state change.
  EXPECT_EQ(RowCount(), 2);
}

TEST_F(EnvironmentFaultTest, LostResponseExecutesButTimesOut) {
  FaultPlan plan;
  plan.rules.push_back(FaultRule::NthCall(
      "svc", LamRequestType::kExecute, 1, FaultAction::kLostResponse));
  env_.fault_injector().SetPlan(plan);

  LamRequest del;
  del.type = LamRequestType::kExecute;
  del.session = session_;
  del.sql = "DELETE FROM t WHERE id = 1";
  auto outcome = env_.Call("svc", del, 0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->response.status.code(), StatusCode::kUnavailable);
  // To the coordinator this is the same timeout as a lost request...
  EXPECT_TRUE(outcome->timed_out);
  EXPECT_EQ(outcome->timing.end_micros, env_.call_timeout_micros());
  // ...but the ground truth differs: the delete actually ran.
  EXPECT_TRUE(outcome->request_delivered);
  EXPECT_EQ(RowCount(), 1);
}

TEST_F(EnvironmentFaultTest, LatencySpikeSlowsTheRequestLeg) {
  auto clean = env_.Call(
      "svc", LamRequest{LamRequestType::kPing, "", 0, ""}, 0);
  ASSERT_TRUE(clean.ok());

  FaultPlan plan;
  FaultRule spike = FaultRule::Spike("svc", 7000);
  spike.count = -1;
  plan.rules.push_back(spike);
  env_.fault_injector().SetPlan(plan);

  auto slowed = env_.Call(
      "svc", LamRequest{LamRequestType::kPing, "", 0, ""}, 0);
  ASSERT_TRUE(slowed.ok());
  EXPECT_TRUE(slowed->response.status.ok());
  EXPECT_EQ(slowed->timing.request_micros,
            clean->timing.request_micros + 7000);
  EXPECT_EQ(slowed->timing.end_micros, clean->timing.end_micros + 7000);
}

TEST_F(EnvironmentFaultTest, StatsAccumulateAcrossCalls) {
  FaultPlan plan;
  plan.rules.push_back(FaultRule::NthCall(
      "svc", LamRequestType::kPing, 1, FaultAction::kReject));
  plan.rules.push_back(FaultRule::NthCall(
      "svc", LamRequestType::kPing, 2, FaultAction::kLostRequest));
  plan.rules.push_back(FaultRule::NthCall(
      "svc", LamRequestType::kPing, 3, FaultAction::kLostResponse));
  env_.fault_injector().SetPlan(plan);

  LamRequest ping{LamRequestType::kPing, "", 0, ""};
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(env_.Call("svc", ping, 0).ok());

  const FaultStats& stats = env_.fault_injector().stats();
  EXPECT_EQ(stats.calls_seen, 4);
  EXPECT_EQ(stats.faults_fired, 3);
  EXPECT_EQ(stats.rejects, 1);
  EXPECT_EQ(stats.lost_requests, 1);
  EXPECT_EQ(stats.lost_responses, 1);
  EXPECT_EQ(stats.latency_spikes, 0);
}

}  // namespace
}  // namespace msql::netsim
