// E9 (§3.2.2): commit-protocol heterogeneity at the local engines.
// Measures the raw cost of the protocols the AD records — autocommit vs
// explicit transaction vs full 2PC — and the two DDL behaviours (Ingres
// rollbackable vs Oracle commits-prior-work).
#include <benchmark/benchmark.h>

#include <memory>

#include "relational/engine.h"

namespace {

using msql::relational::CapabilityProfile;
using msql::relational::LocalEngine;
using msql::relational::SessionId;

std::unique_ptr<LocalEngine> SeededEngine(CapabilityProfile profile,
                                          int rows) {
  auto engine = std::make_unique<LocalEngine>("svc", std::move(profile));
  if (!engine->CreateDatabase("db").ok()) return nullptr;
  auto s = *engine->OpenSession("db");
  if (!engine->Execute(s, "CREATE TABLE t (id INTEGER, v REAL)").ok()) {
    return nullptr;
  }
  std::string insert = "INSERT INTO t VALUES ";
  for (int i = 0; i < rows; ++i) {
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(i) + ", 1.0)";
  }
  if (!engine->Execute(s, insert).ok()) return nullptr;
  if (!engine->CloseSession(s).ok()) return nullptr;
  return engine;
}

constexpr const char* kTouch = "UPDATE t SET v = v * 1.0 WHERE id < 64";

void BM_Local_Autocommit(benchmark::State& state) {
  auto engine = SeededEngine(CapabilityProfile::SybaseLike(), 256);
  SessionId s = *engine->OpenSession("db");
  for (auto _ : state) {
    auto result = engine->Execute(s, kTouch);
    if (!result.ok()) state.SkipWithError("update failed");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Local_Autocommit);

void BM_Local_ExplicitTxnCommit(benchmark::State& state) {
  auto engine = SeededEngine(CapabilityProfile::IngresLike(), 256);
  SessionId s = *engine->OpenSession("db");
  for (auto _ : state) {
    bool ok = engine->Begin(s).ok() && engine->Execute(s, kTouch).ok() &&
              engine->Commit(s).ok();
    if (!ok) state.SkipWithError("txn failed");
  }
}
BENCHMARK(BM_Local_ExplicitTxnCommit);

void BM_Local_TwoPhaseCommit(benchmark::State& state) {
  auto engine = SeededEngine(CapabilityProfile::IngresLike(), 256);
  SessionId s = *engine->OpenSession("db");
  for (auto _ : state) {
    bool ok = engine->Begin(s).ok() && engine->Execute(s, kTouch).ok() &&
              engine->Prepare(s).ok() && engine->Commit(s).ok();
    if (!ok) state.SkipWithError("2pc failed");
  }
}
BENCHMARK(BM_Local_TwoPhaseCommit);

void BM_Local_Rollback(benchmark::State& state) {
  auto engine = SeededEngine(CapabilityProfile::IngresLike(), 256);
  SessionId s = *engine->OpenSession("db");
  for (auto _ : state) {
    bool ok = engine->Begin(s).ok() && engine->Execute(s, kTouch).ok() &&
              engine->Rollback(s).ok();
    if (!ok) state.SkipWithError("rollback failed");
  }
}
BENCHMARK(BM_Local_Rollback);

/// Rollback cost grows with the undo log (rows touched).
void BM_Local_RollbackUndoDepth(benchmark::State& state) {
  int rows = static_cast<int>(state.range(0));
  auto engine = SeededEngine(CapabilityProfile::IngresLike(), rows);
  SessionId s = *engine->OpenSession("db");
  std::string touch_all = "UPDATE t SET v = v * 1.0";
  for (auto _ : state) {
    bool ok = engine->Begin(s).ok() &&
              engine->Execute(s, touch_all).ok() &&
              engine->Rollback(s).ok();
    if (!ok) state.SkipWithError("rollback failed");
  }
  state.counters["rows"] = rows;
}
BENCHMARK(BM_Local_RollbackUndoDepth)->Arg(64)->Arg(512)->Arg(4096);

/// Ingres-like DDL inside a transaction (rollbackable, undo-logged).
void BM_Local_DdlIngresLike(benchmark::State& state) {
  auto engine = SeededEngine(CapabilityProfile::IngresLike(), 16);
  SessionId s = *engine->OpenSession("db");
  for (auto _ : state) {
    bool ok = engine->Begin(s).ok() &&
              engine->Execute(s, "CREATE TABLE d2 (x INTEGER)").ok() &&
              engine->Rollback(s).ok();  // the rollback drops d2 again
    if (!ok) state.SkipWithError("ddl failed");
  }
}
BENCHMARK(BM_Local_DdlIngresLike);

/// Oracle-like DDL: commits prior work, then itself — the table must be
/// dropped explicitly afterwards to keep iterations re-runnable.
void BM_Local_DdlOracleLike(benchmark::State& state) {
  auto engine = SeededEngine(CapabilityProfile::OracleLike(), 16);
  SessionId s = *engine->OpenSession("db");
  for (auto _ : state) {
    bool ok = engine->Begin(s).ok() &&
              engine->Execute(s, "CREATE TABLE d2 (x INTEGER)").ok() &&
              engine->Rollback(s).ok() &&
              engine->Execute(s, "DROP TABLE d2").ok();
    if (!ok) {
      state.SkipWithError("ddl failed");
      return;
    }
  }
}
BENCHMARK(BM_Local_DdlOracleLike);

}  // namespace

BENCHMARK_MAIN();
