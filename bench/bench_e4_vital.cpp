// E4 (§3.2): cost of vital-set enforcement on the fare-raise update.
// Compares all-NON-VITAL (autocommit), mixed (the paper's query) and
// all-VITAL (atomic) plans: 2PC adds a prepare + decision round per
// vital database, visible in both simulated time and message count.
#include <benchmark/benchmark.h>

#include "core/fixtures.h"
#include "core/mdbs_system.h"

namespace {

using msql::core::BuildPaperFederation;
using msql::core::GlobalOutcome;
using msql::core::PaperFederationOptions;

/// The §3.2 update with a configurable vital set; *1.0 keeps the data
/// numerically stable across iterations.
std::string FareTouch(bool cont_vital, bool delta_vital,
                      bool united_vital) {
  std::string scope = "USE continental";
  if (cont_vital) scope += " VITAL";
  scope += " delta";
  if (delta_vital) scope += " VITAL";
  scope += " united";
  if (united_vital) scope += " VITAL";
  return scope +
         "\nUPDATE flight% SET rate% = rate% * 1.0\n"
         "WHERE sour% = 'Houston' AND dest% = 'San Antonio'";
}

void RunVitalBench(benchmark::State& state, const std::string& query) {
  PaperFederationOptions options;
  options.flights_per_airline = 32;
  auto sys = BuildPaperFederation(options);
  if (!sys.ok()) {
    state.SkipWithError(sys.status().ToString().c_str());
    return;
  }
  int64_t sim_micros = 0;
  int64_t messages = 0;
  int64_t iterations = 0;
  for (auto _ : state) {
    auto report = (*sys)->Execute(query);
    if (!report.ok() || report->outcome != GlobalOutcome::kSuccess) {
      state.SkipWithError("update failed");
      return;
    }
    sim_micros += report->run.makespan_micros;
    messages += report->run.messages;
    ++iterations;
  }
  state.counters["sim_ms"] = benchmark::Counter(
      static_cast<double>(sim_micros) / 1000.0 / iterations);
  state.counters["messages"] =
      benchmark::Counter(static_cast<double>(messages) / iterations);
}

void BM_Vital_None(benchmark::State& state) {
  RunVitalBench(state, FareTouch(false, false, false));
}
BENCHMARK(BM_Vital_None);

void BM_Vital_PaperMix(benchmark::State& state) {
  RunVitalBench(state, FareTouch(true, false, true));
}
BENCHMARK(BM_Vital_PaperMix);

void BM_Vital_All(benchmark::State& state) {
  RunVitalBench(state, FareTouch(true, true, true));
}
BENCHMARK(BM_Vital_All);

/// Retrieval with and without vital designators — reads never need 2PC,
/// so the gap should be nil (sanity ablation).
void BM_Vital_Retrieval(benchmark::State& state) {
  bool vital = state.range(0) != 0;
  std::string query = vital ? "USE continental VITAL delta united\n"
                              "SELECT rate% FROM flight%"
                            : "USE continental delta united\n"
                              "SELECT rate% FROM flight%";
  RunVitalBench(state, query);
}
BENCHMARK(BM_Vital_Retrieval)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
