// E8 (§4.3 / §5): "the optimization is likely to be related more to
// data flow control and parallelism than to database operations."
// Compares PARBEGIN (parallel) against sequential task execution of the
// same subqueries as the federation and the link latency grow: the
// parallel plan's simulated makespan should stay near-flat in the
// number of databases while the sequential one grows linearly.
#include <benchmark/benchmark.h>

#include "core/fixtures.h"
#include "core/mdbs_system.h"
#include "dol/engine.h"
#include "dol/parser.h"

namespace {

using msql::core::BuildSyntheticFederation;
using msql::core::SyntheticFederationOptions;

/// Hand-built DOL program running one SELECT per database, either inside
/// one PARBEGIN block or as a plain sequence.
std::string ScanProgram(int n, bool parallel) {
  std::string text = "DOLBEGIN\n";
  // The parallel plan overlaps the connection phase too; the sequential
  // baseline pays one round-trip per OPEN, like the §4.3 narrative.
  if (parallel) text += "PARBEGIN\n";
  for (int i = 0; i < n; ++i) {
    std::string db = "db" + std::to_string(i);
    text += "OPEN " + db + " AT " + db + "_svc AS " + db + ";\n";
  }
  if (parallel) text += "PAREND;\nPARBEGIN\n";
  for (int i = 0; i < n; ++i) {
    std::string db = "db" + std::to_string(i);
    text += "TASK t" + std::to_string(i) + " FOR " + db +
            " { SELECT fno, rate FROM flight" + std::to_string(i) +
            " WHERE source = 'Houston' } ENDTASK;\n";
  }
  if (parallel) text += "PAREND;\n";
  text += "CLOSE";
  for (int i = 0; i < n; ++i) text += " db" + std::to_string(i);
  text += ";\nDOLEND\n";
  return text;
}

void RunScan(benchmark::State& state, bool parallel) {
  int n = static_cast<int>(state.range(0));
  int64_t latency = state.range(1);
  SyntheticFederationOptions options;
  options.n_databases = n;
  options.rows_per_table = 64;
  options.link_latency_micros = latency;
  auto sys = BuildSyntheticFederation(options);
  if (!sys.ok()) {
    state.SkipWithError(sys.status().ToString().c_str());
    return;
  }
  auto program = msql::dol::ParseDol(ScanProgram(n, parallel));
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  int64_t sim_micros = 0;
  int64_t iterations = 0;
  for (auto _ : state) {
    msql::dol::DolEngine engine(&(*sys)->environment());
    auto result = engine.Run(*program);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    sim_micros += result->makespan_micros;
    ++iterations;
  }
  state.counters["sim_ms"] = benchmark::Counter(
      static_cast<double>(sim_micros) / 1000.0 / iterations);
  state.counters["dbs"] = n;
  state.counters["latency_us"] = static_cast<double>(latency);
}

void BM_Par_Parallel(benchmark::State& state) { RunScan(state, true); }
void BM_Par_Sequential(benchmark::State& state) { RunScan(state, false); }

BENCHMARK(BM_Par_Parallel)
    ->Args({2, 1000})
    ->Args({4, 1000})
    ->Args({8, 1000})
    ->Args({16, 1000})
    ->Args({8, 100})
    ->Args({8, 10000});
BENCHMARK(BM_Par_Sequential)
    ->Args({2, 1000})
    ->Args({4, 1000})
    ->Args({8, 1000})
    ->Args({16, 1000})
    ->Args({8, 100})
    ->Args({8, 10000});

}  // namespace

BENCHMARK_MAIN();
