// E12 (ablation): local access paths vs global latency. An index makes
// the *local* point lookup dramatically cheaper (host µs and modelled
// scan cost), but the *global* query latency barely moves — the
// round-trip latency dominates. This demonstrates the paper's §5 claim
// from the opposite direction: optimizing individual database
// operations is the wrong lever for a loosely coupled MDBS.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/mdbs_system.h"
#include "relational/engine.h"

namespace {

using msql::core::MultidatabaseSystem;
using msql::relational::CapabilityProfile;
using msql::relational::LocalEngine;
using msql::relational::SessionId;

constexpr int kRows = 4096;

std::unique_ptr<LocalEngine> BigEngine(bool with_index) {
  auto engine = std::make_unique<LocalEngine>(
      "svc", CapabilityProfile::IngresLike());
  if (!engine->CreateDatabase("db").ok()) return nullptr;
  auto s = *engine->OpenSession("db");
  if (!engine->Execute(s, "CREATE TABLE t (id INTEGER, v REAL)").ok()) {
    return nullptr;
  }
  for (int chunk = 0; chunk < kRows; chunk += 512) {
    std::string insert = "INSERT INTO t VALUES ";
    for (int i = 0; i < 512; ++i) {
      if (i > 0) insert += ", ";
      insert += "(" + std::to_string(chunk + i) + ", 1.0)";
    }
    if (!engine->Execute(s, insert).ok()) return nullptr;
  }
  if (with_index &&
      !engine->Execute(s, "CREATE INDEX idx ON t (id)").ok()) {
    return nullptr;
  }
  return engine;
}

/// Local point lookup, host time (scan vs probe).
void BM_LocalLookup(benchmark::State& state) {
  bool with_index = state.range(0) != 0;
  auto engine = BigEngine(with_index);
  SessionId s = *engine->OpenSession("db");
  int i = 0;
  int64_t scanned = 0;
  int64_t iterations = 0;
  for (auto _ : state) {
    auto rs = engine->Execute(
        s, "SELECT v FROM t WHERE id = " + std::to_string(i++ % kRows));
    if (!rs.ok()) state.SkipWithError("lookup failed");
    scanned += rs->rows_scanned;
    ++iterations;
  }
  state.counters["rows_scanned"] = benchmark::Counter(
      static_cast<double>(scanned) / iterations);
  state.counters["indexed"] = with_index ? 1 : 0;
}
BENCHMARK(BM_LocalLookup)->Arg(0)->Arg(1);

/// The same lookup through the full MDBS stack: simulated makespan is
/// dominated by the network round trips either way.
void BM_GlobalLookup(benchmark::State& state) {
  bool with_index = state.range(0) != 0;
  MultidatabaseSystem sys;
  auto engine = BigEngine(with_index);
  if (engine == nullptr) {
    state.SkipWithError("bootstrap failed");
    return;
  }
  if (!sys.environment()
           .AddService("svc", "site1", std::move(engine))
           .ok()) {
    state.SkipWithError("service failed");
    return;
  }
  auto r1 = sys.Execute(
      "INCORPORATE SERVICE svc SITE site1 CONNECTMODE CONNECT COMMITMODE "
      "NOCOMMIT CREATE NOCOMMIT INSERT NOCOMMIT DROP NOCOMMIT");
  auto r2 = sys.Execute("IMPORT DATABASE db FROM SERVICE svc");
  if (!r1.ok() || !r2.ok()) {
    state.SkipWithError("catalog failed");
    return;
  }
  int i = 0;
  int64_t sim_micros = 0;
  int64_t iterations = 0;
  for (auto _ : state) {
    auto report = sys.Execute("USE db SELECT v FROM t WHERE id = " +
                              std::to_string(i++ % kRows));
    if (!report.ok() ||
        report->outcome != msql::core::GlobalOutcome::kSuccess) {
      state.SkipWithError("query failed");
      return;
    }
    sim_micros += report->run.makespan_micros;
    ++iterations;
  }
  state.counters["sim_ms"] = benchmark::Counter(
      static_cast<double>(sim_micros) / 1000.0 / iterations);
  state.counters["indexed"] = with_index ? 1 : 0;
}
BENCHMARK(BM_GlobalLookup)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
