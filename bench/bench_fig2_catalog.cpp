// E2 (Figure 2): schema architecture — cost of INCORPORATE/IMPORT flows
// and of GDD lookups / wildcard expansion as the federation grows.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/fixtures.h"
#include "core/mdbs_system.h"
#include "mdbs/global_data_dictionary.h"
#include "msql/expander.h"
#include "msql/parser.h"
#include "relational/engine.h"

namespace {

using msql::core::MultidatabaseSystem;
using msql::relational::CapabilityProfile;

/// A fresh service with `n_tables` tables of `n_columns` columns each.
std::unique_ptr<MultidatabaseSystem> FederationWithSchema(int n_tables,
                                                          int n_columns) {
  auto sys = std::make_unique<MultidatabaseSystem>();
  if (!sys->AddService("svc", "site1", CapabilityProfile::IngresLike())
           .ok()) {
    return nullptr;
  }
  auto engine = *sys->GetEngine("svc");
  if (!engine->CreateDatabase("d").ok()) return nullptr;
  std::string ddl;
  for (int t = 0; t < n_tables; ++t) {
    ddl += "CREATE TABLE table" + std::to_string(t) + " (";
    for (int c = 0; c < n_columns; ++c) {
      if (c > 0) ddl += ", ";
      ddl += "col" + std::to_string(c) + " INTEGER";
    }
    ddl += ");";
  }
  if (!sys->RunLocalSql("svc", "d", ddl).ok()) return nullptr;
  return sys;
}

void BM_Incorporate(benchmark::State& state) {
  auto sys = FederationWithSchema(4, 4);
  for (auto _ : state) {
    auto report = sys->Execute(
        "INCORPORATE SERVICE svc SITE site1 CONNECTMODE CONNECT "
        "COMMITMODE NOCOMMIT CREATE NOCOMMIT INSERT NOCOMMIT "
        "DROP NOCOMMIT");
    if (!report.ok()) state.SkipWithError("incorporate failed");
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_Incorporate);

/// IMPORT DATABASE cost vs LCS size (tables × columns travel the wire).
void BM_ImportDatabase(benchmark::State& state) {
  int n_tables = static_cast<int>(state.range(0));
  auto sys = FederationWithSchema(n_tables, 8);
  auto incorporated = sys->Execute(
      "INCORPORATE SERVICE svc SITE site1 CONNECTMODE CONNECT "
      "COMMITMODE NOCOMMIT CREATE NOCOMMIT INSERT NOCOMMIT DROP NOCOMMIT");
  if (!incorporated.ok()) {
    state.SkipWithError("incorporate failed");
    return;
  }
  for (auto _ : state) {
    auto report = sys->Execute("IMPORT DATABASE d FROM SERVICE svc");
    if (!report.ok()) state.SkipWithError("import failed");
    benchmark::DoNotOptimize(report);
  }
  state.counters["tables"] = n_tables;
}
BENCHMARK(BM_ImportDatabase)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

/// GDD point lookups stay cheap as the dictionary grows.
void BM_GddLookup(benchmark::State& state) {
  int n_tables = static_cast<int>(state.range(0));
  auto sys = FederationWithSchema(n_tables, 8);
  auto r1 = sys->Execute(
      "INCORPORATE SERVICE svc SITE site1 CONNECTMODE CONNECT "
      "COMMITMODE NOCOMMIT CREATE NOCOMMIT INSERT NOCOMMIT DROP NOCOMMIT");
  auto r2 = sys->Execute("IMPORT DATABASE d FROM SERVICE svc");
  if (!r1.ok() || !r2.ok()) {
    state.SkipWithError("bootstrap failed");
    return;
  }
  const auto& gdd = sys->gdd();
  int i = 0;
  for (auto _ : state) {
    auto table =
        gdd.GetTable("d", "table" + std::to_string(i++ % n_tables));
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_GddLookup)->Arg(16)->Arg(256);

/// Wildcard table matching scans the dictionary: linear in #tables.
void BM_GddWildcardMatch(benchmark::State& state) {
  int n_tables = static_cast<int>(state.range(0));
  auto sys = FederationWithSchema(n_tables, 8);
  auto r1 = sys->Execute(
      "INCORPORATE SERVICE svc SITE site1 CONNECTMODE CONNECT "
      "COMMITMODE NOCOMMIT CREATE NOCOMMIT INSERT NOCOMMIT DROP NOCOMMIT");
  auto r2 = sys->Execute("IMPORT DATABASE d FROM SERVICE svc");
  if (!r1.ok() || !r2.ok()) {
    state.SkipWithError("bootstrap failed");
    return;
  }
  const auto& gdd = sys->gdd();
  for (auto _ : state) {
    auto tables = gdd.MatchTables("d", "table%");
    benchmark::DoNotOptimize(tables);
  }
  state.counters["tables"] = n_tables;
}
BENCHMARK(BM_GddWildcardMatch)->Arg(16)->Arg(64)->Arg(256);

/// Identifier expansion cost against a wide schema: the §4.3 phase the
/// GDD exists for.
void BM_ExpansionAgainstGdd(benchmark::State& state) {
  int n_columns = static_cast<int>(state.range(0));
  auto sys = FederationWithSchema(8, n_columns);
  auto r1 = sys->Execute(
      "INCORPORATE SERVICE svc SITE site1 CONNECTMODE CONNECT "
      "COMMITMODE NOCOMMIT CREATE NOCOMMIT INSERT NOCOMMIT DROP NOCOMMIT");
  auto r2 = sys->Execute("IMPORT DATABASE d FROM SERVICE svc");
  if (!r1.ok() || !r2.ok()) {
    state.SkipWithError("bootstrap failed");
    return;
  }
  auto input = msql::lang::MsqlParser::ParseOne(
      "USE d SELECT col0, %l7 FROM table3 WHERE col2 > 0");
  if (!input.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  msql::lang::Expander expander(&sys->gdd());
  for (auto _ : state) {
    auto expansion = expander.Expand(*input->query);
    if (!expansion.ok()) state.SkipWithError("expand failed");
    benchmark::DoNotOptimize(expansion);
  }
  state.counters["columns"] = n_columns;
}
BENCHMARK(BM_ExpansionAgainstGdd)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
