// E15: host-time overhead of the observability stack on the §3.2 fare
// touch, layer by layer: everything off (the baseline bench_fig1 runs
// at), metrics only, metrics+tracing, and the full profiler on top.
// Expected shape: metrics are near-free, tracing costs the span
// bookkeeping, and the profiler adds one subtree walk + text rendering
// per input. The health registry is always on and therefore part of
// every tier, including the baseline.
#include <benchmark/benchmark.h>

#include <string>

#include "core/fixtures.h"
#include "core/mdbs_system.h"

namespace {

using msql::core::BuildPaperFederation;
using msql::core::GlobalOutcome;
using msql::core::PaperFederationOptions;

/// *1.0 keeps the data numerically stable across iterations.
constexpr const char* kFareTouch =
    "USE continental VITAL delta united VITAL\n"
    "UPDATE flight% SET rate% = rate% * 1.0\n"
    "WHERE sour% = 'Houston' AND dest% = 'San Antonio'";

enum ObsTier : int {
  kOff = 0,
  kMetrics = 1,
  kMetricsTrace = 2,
  kFullProfile = 3,
};

/// Arg(0): observability tier (ObsTier).
void BM_ProfilerOverhead(benchmark::State& state) {
  int tier = static_cast<int>(state.range(0));
  PaperFederationOptions options;
  options.flights_per_airline = 32;
  auto sys = BuildPaperFederation(options);
  if (!sys.ok()) {
    state.SkipWithError(sys.status().ToString().c_str());
    return;
  }
  auto& env = (*sys)->environment();
  env.metrics().set_enabled(tier >= kMetrics);
  env.tracer().set_enabled(tier >= kMetricsTrace);
  (*sys)->set_collect_profiles(tier >= kFullProfile);
  (*sys)->query_log().set_enabled(tier >= kFullProfile);

  int64_t profile_bytes = 0;
  int64_t spans = 0;
  int64_t iterations = 0;
  for (auto _ : state) {
    auto report = (*sys)->Execute(kFareTouch);
    if (!report.ok() || report->outcome != GlobalOutcome::kSuccess) {
      state.SkipWithError("fare touch did not succeed");
      return;
    }
    profile_bytes += static_cast<int64_t>(report->profile_text.size());
    spans += static_cast<int64_t>(env.tracer().spans().size());
    ++iterations;
    // Keep per-iteration work flat: drop the session trace and log so
    // later iterations don't pay for earlier ones.
    state.PauseTiming();
    env.tracer().Clear();
    (*sys)->query_log().Clear();
    state.ResumeTiming();
  }
  double n = static_cast<double>(iterations);
  state.counters["profile_bytes"] =
      benchmark::Counter(static_cast<double>(profile_bytes) / n);
  state.counters["spans"] =
      benchmark::Counter(static_cast<double>(spans) / n);
}
BENCHMARK(BM_ProfilerOverhead)
    ->Arg(kOff)
    ->Arg(kMetrics)
    ->Arg(kMetricsTrace)
    ->Arg(kFullProfile)
    ->ArgName("tier");

}  // namespace

BENCHMARK_MAIN();
