// E10 (ablation): abort probability and cost of the vital set under
// per-site failure. With failure probability p per vital subquery and k
// vital databases, the global success probability is ~(1-p)^k — the
// sweep shows the measured success rate and the makespan of the failure
// paths (rollback work grows with k).
#include <benchmark/benchmark.h>

#include <string>

#include "core/fixtures.h"
#include "core/mdbs_system.h"

namespace {

using msql::core::BuildSyntheticFederation;
using msql::core::GlobalOutcome;
using msql::core::SyntheticFederationOptions;

std::string VitalUpdate(int n, int vital_count) {
  std::string scope = "USE";
  for (int i = 0; i < n; ++i) {
    scope += " db" + std::to_string(i);
    if (i < vital_count) scope += " VITAL";
  }
  return scope + "\nUPDATE flight% SET rate = rate * 1.0";
}

/// Sweep: n = 8 databases, vital_count = arg0, per-statement failure
/// probability (percent) = arg1.
void BM_VitalSweep(benchmark::State& state) {
  constexpr int kDatabases = 8;
  int vital_count = static_cast<int>(state.range(0));
  double fail_p = static_cast<double>(state.range(1)) / 100.0;

  SyntheticFederationOptions options;
  options.n_databases = kDatabases;
  options.rows_per_table = 16;
  auto sys = BuildSyntheticFederation(options);
  if (!sys.ok()) {
    state.SkipWithError(sys.status().ToString().c_str());
    return;
  }
  uint64_t seed = 1;
  for (int i = 0; i < kDatabases; ++i) {
    auto engine =
        *(**sys).GetEngine("db" + std::to_string(i) + "_svc");
    engine->SetFailureProbability(fail_p, seed++);
  }
  std::string query = VitalUpdate(kDatabases, vital_count);

  int64_t successes = 0;
  int64_t aborts = 0;
  int64_t sim_micros = 0;
  int64_t iterations = 0;
  for (auto _ : state) {
    auto report = (*sys)->Execute(query);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    switch (report->outcome) {
      case GlobalOutcome::kSuccess: ++successes; break;
      case GlobalOutcome::kAborted: ++aborts; break;
      default: break;  // kIncorrect possible when commit itself fails
    }
    sim_micros += report->run.makespan_micros;
    ++iterations;
  }
  state.counters["success_rate"] = benchmark::Counter(
      iterations > 0 ? static_cast<double>(successes) / iterations : 0);
  state.counters["abort_rate"] = benchmark::Counter(
      iterations > 0 ? static_cast<double>(aborts) / iterations : 0);
  state.counters["sim_ms"] = benchmark::Counter(
      static_cast<double>(sim_micros) / 1000.0 /
      (iterations > 0 ? iterations : 1));
  state.counters["vitals"] = vital_count;
}
BENCHMARK(BM_VitalSweep)
    ->Args({0, 5})
    ->Args({2, 5})
    ->Args({4, 5})
    ->Args({8, 5})
    ->Args({4, 0})
    ->Args({4, 20});

}  // namespace

BENCHMARK_MAIN();
