// E17: conflict-aware admission vs baseline scheduling. Runs the same
// deadlock-prone seat-booking workloads (paper federation; symmetric
// PARBEGIN seat MTs, opposite-order sequential seat MTs, and a slice of
// reads) through the FederationServer twice — conflict_aware off, then
// on — and compares deadlock victims, aborted sessions, lock waits,
// simulated makespan and wall time. Because the paper's model is that a
// user whose vital MT aborts simply resubmits it, the bench also
// measures makespan *to completion*: aborted seat MTs are resubmitted
// in follow-up rounds until every booking commits, and the per-round
// virtual makespans are summed. Results go to BENCH_conflict_sched.json.
//
// Usage: bench_e17_conflict_sched [--quick] [--out FILE] [--sessions N]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/fixtures.h"
#include "core/mdbs_system.h"
#include "core/session_scheduler.h"

namespace {

std::string SeatMt(const std::string& client) {
  return "BEGIN MULTITRANSACTION\n"
         "USE continental delta\n"
         "LET fitab.snu.sstat.clname BE\n"
         "  f838.seatnu.seatstatus.clientname\n"
         "  fnu747.snu.sstat.passname\n"
         "UPDATE fitab SET sstat = 'TAKEN', clname = '" +
         client +
         "'\n"
         "WHERE snu = (SELECT MIN(snu) FROM fitab WHERE sstat = 'FREE');\n"
         "COMMIT\n"
         "  continental AND delta\n"
         "END MULTITRANSACTION";
}

std::string OrderedSeatMt(bool continental_first,
                          const std::string& client) {
  std::string continental =
      "USE continental\n"
      "UPDATE f838 SET seatstatus = 'TAKEN', clientname = '" +
      client +
      "'\n"
      "WHERE seatnu = (SELECT MIN(seatnu) FROM f838 "
      "WHERE seatstatus = 'FREE');\n";
  std::string delta =
      "USE delta\n"
      "UPDATE fnu747 SET sstat = 'TAKEN', passname = '" + client +
      "'\n"
      "WHERE snu = (SELECT MIN(snu) FROM fnu747 WHERE sstat = 'FREE');\n";
  return "BEGIN MULTITRANSACTION\n" +
         (continental_first ? continental + delta : delta + continental) +
         "COMMIT\n"
         "  continental AND delta\n"
         "END MULTITRANSACTION";
}

struct RunStats {
  int sessions = 0;
  bool conflict_aware = false;
  double wall_ms = 0.0;
  int64_t virtual_makespan_micros = 0;
  int64_t lock_waits = 0;
  int64_t lock_wait_micros = 0;
  int64_t deadlock_victims = 0;
  int64_t lock_timeouts = 0;
  int64_t aborted = 0;
  int64_t committed = 0;
  int64_t deferrals = 0;
  int64_t avoided_deadlocks = 0;
  // To-completion view: aborted seat MTs are resubmitted round after
  // round until every booking commits (the paper's user-retry model).
  int retry_rounds = 0;
  int64_t retried_sessions = 0;
  int64_t completion_makespan_micros = 0;
};

bool RunOnce(uint64_t seed, int sessions, bool conflict_aware,
             RunStats* out) {
  msql::core::PaperFederationOptions options;
  options.seats_per_airline = 2 * sessions;
  auto built = msql::core::BuildPaperFederation(options);
  if (!built.ok()) {
    std::fprintf(stderr, "fixture: %s\n", built.status().ToString().c_str());
    return false;
  }
  auto sys = std::move(*built);

  msql::core::ServerConfig config;
  config.conflict_aware = conflict_aware;
  msql::core::FederationServer server(sys.get(), config);
  msql::Rng rng(seed);
  std::vector<std::string> texts;
  std::vector<bool> is_booking;
  for (int i = 0; i < sessions; ++i) {
    const std::string client = "c" + std::to_string(i);
    const double roll = rng.NextDouble();
    if (roll < 0.45) {
      texts.push_back(SeatMt(client));
      is_booking.push_back(true);
    } else if (roll < 0.80) {
      texts.push_back(OrderedSeatMt(rng.NextBool(0.5), client));
      is_booking.push_back(true);
    } else {
      texts.push_back("USE continental\nSELECT flnu FROM flights");
      is_booking.push_back(false);
    }
    server.Submit(texts.back());
  }

  const auto start = std::chrono::steady_clock::now();
  auto results = server.RunAll();
  const auto stop = std::chrono::steady_clock::now();
  if (!results.ok()) {
    std::fprintf(stderr, "RunAll: %s\n", results.status().ToString().c_str());
    return false;
  }

  out->sessions = sessions;
  out->conflict_aware = conflict_aware;
  out->wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  out->virtual_makespan_micros = server.virtual_now();
  for (const msql::core::SessionResult& r : *results) {
    out->lock_waits += r.lock_waits;
    out->lock_wait_micros += r.lock_wait_micros;
    out->deferrals += r.admission_deferrals;
    out->avoided_deadlocks += r.avoided_deadlocks;
    if (r.deadlock_victim) ++out->deadlock_victims;
    if (r.lock_timeout) ++out->lock_timeouts;
    if (r.report.has_value()) {
      if (r.report->outcome == msql::core::GlobalOutcome::kAborted) {
        ++out->aborted;
      }
      if (r.report->outcome == msql::core::GlobalOutcome::kSuccess) {
        ++out->committed;
      }
    }
  }

  // To-completion: resubmit every booking that did not commit (aborted,
  // deadlock victim, or errored) until they all make it, summing the
  // per-round virtual makespans. The virtual clock restarts at zero for
  // each batch, so the sum is the sequential wait a retrying user sees.
  out->completion_makespan_micros = out->virtual_makespan_micros;
  std::vector<std::string> pending;
  for (size_t i = 0; i < results->size(); ++i) {
    const msql::core::SessionResult& r = (*results)[i];
    if (!is_booking[i]) continue;
    const bool booked =
        r.report.has_value() &&
        r.report->outcome == msql::core::GlobalOutcome::kSuccess;
    if (!booked) pending.push_back(texts[i]);
  }
  constexpr int kMaxRounds = 50;
  while (!pending.empty() && out->retry_rounds < kMaxRounds) {
    ++out->retry_rounds;
    out->retried_sessions += static_cast<int64_t>(pending.size());
    msql::core::FederationServer retry_server(sys.get(), config);
    for (const std::string& text : pending) retry_server.Submit(text);
    auto retry = retry_server.RunAll();
    if (!retry.ok()) {
      std::fprintf(stderr, "retry round %d: %s\n", out->retry_rounds,
                   retry.status().ToString().c_str());
      return false;
    }
    out->completion_makespan_micros += retry_server.virtual_now();
    std::vector<std::string> next;
    for (size_t i = 0; i < retry->size(); ++i) {
      const msql::core::SessionResult& r = (*retry)[i];
      const bool booked =
          r.report.has_value() &&
          r.report->outcome == msql::core::GlobalOutcome::kSuccess;
      if (!booked) next.push_back(pending[i]);
    }
    pending = std::move(next);
  }
  if (!pending.empty()) {
    std::fprintf(stderr, "%zu bookings still unbooked after %d rounds\n",
                 pending.size(), kMaxRounds);
    return false;
  }
  return true;
}

void Print(const RunStats& s) {
  std::printf(
      "conflict_aware=%-5s sessions=%-4d wall=%8.1fms makespan=%9lldus "
      "victims=%-3lld timeouts=%-3lld aborted=%-3lld committed=%-4lld "
      "lock_waits=%-5lld deferrals=%-4lld avoided=%-4lld "
      "retries=%lld/%dr completion=%9lldus\n",
      s.conflict_aware ? "true" : "false", s.sessions, s.wall_ms,
      static_cast<long long>(s.virtual_makespan_micros),
      static_cast<long long>(s.deadlock_victims),
      static_cast<long long>(s.lock_timeouts),
      static_cast<long long>(s.aborted),
      static_cast<long long>(s.committed),
      static_cast<long long>(s.lock_waits),
      static_cast<long long>(s.deferrals),
      static_cast<long long>(s.avoided_deadlocks),
      static_cast<long long>(s.retried_sessions), s.retry_rounds,
      static_cast<long long>(s.completion_makespan_micros));
}

void Emit(std::ostream& json, const RunStats& s, bool last) {
  json << "    {\"sessions\": " << s.sessions << ", \"conflict_aware\": "
       << (s.conflict_aware ? "true" : "false")
       << ", \"wall_ms\": " << s.wall_ms
       << ", \"virtual_makespan_micros\": " << s.virtual_makespan_micros
       << ", \"lock_waits\": " << s.lock_waits
       << ", \"lock_wait_micros\": " << s.lock_wait_micros
       << ", \"deadlock_victims\": " << s.deadlock_victims
       << ", \"lock_timeouts\": " << s.lock_timeouts
       << ", \"aborted\": " << s.aborted
       << ", \"committed\": " << s.committed
       << ", \"deferrals\": " << s.deferrals
       << ", \"avoided_deadlocks\": " << s.avoided_deadlocks
       << ", \"retry_rounds\": " << s.retry_rounds
       << ", \"retried_sessions\": " << s.retried_sessions
       << ", \"completion_makespan_micros\": "
       << s.completion_makespan_micros << "}"
       << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_conflict_sched.json";
  int sessions = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc)
      sessions = std::atoi(argv[++i]);
  }
  std::vector<int> scales = {60, 120, 240};
  if (quick) scales = {60};
  if (sessions > 0) scales = {sessions};
  const uint64_t seed = 1993;

  std::vector<RunStats> stats;
  for (int scale : scales) {
    for (bool aware : {false, true}) {
      RunStats s;
      if (!RunOnce(seed, scale, aware, &s)) return 1;
      Print(s);
      stats.push_back(s);
    }
  }

  std::ofstream json(out_path);
  json << "{\n  \"bench\": \"e17_conflict_sched\",\n"
       << "  \"seed\": " << seed << ",\n  \"runs\": [\n";
  for (size_t i = 0; i < stats.size(); ++i) {
    Emit(json, stats[i], i + 1 == stats.size());
  }
  json << "  ]\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
