// E13: makespan and outcome distribution of the §3.2 fare touch under a
// transient-fault rate, with the retry/backoff policy on vs off. Each
// iteration reseeds the injector so the sweep averages over schedules
// while staying fully reproducible. Expected shape: without retries the
// success fraction decays quickly with the fault rate; with retries it
// stays near 1 while the paid backoff shows up as extra simulated time.
#include <benchmark/benchmark.h>

#include <string>

#include "core/fixtures.h"
#include "core/mdbs_system.h"
#include "dol/engine.h"
#include "netsim/fault_injector.h"

namespace {

using msql::core::BuildPaperFederation;
using msql::core::GlobalOutcome;
using msql::core::PaperFederationOptions;
using msql::dol::RetryPolicy;
using msql::netsim::FaultAction;
using msql::netsim::FaultPlan;
using msql::netsim::FaultRule;

/// *1.0 keeps the data numerically stable across iterations.
constexpr const char* kFareTouch =
    "USE continental VITAL delta united VITAL\n"
    "UPDATE flight% SET rate% = rate% * 1.0\n"
    "WHERE sour% = 'Houston' AND dest% = 'San Antonio'";

/// Every call to every service is rejected with probability `p`.
FaultPlan TransientNoise(double p, uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  FaultRule rule =
      FaultRule::Random("", std::nullopt, p, FaultAction::kReject);
  plan.rules.push_back(rule);
  return plan;
}

/// Arg(0): fault probability in percent. Arg(1): retry on/off.
void BM_FaultRecovery(benchmark::State& state) {
  double fault_pct = static_cast<double>(state.range(0));
  bool retry = state.range(1) != 0;

  PaperFederationOptions options;
  options.flights_per_airline = 32;
  auto sys = BuildPaperFederation(options);
  if (!sys.ok()) {
    state.SkipWithError(sys.status().ToString().c_str());
    return;
  }
  (*sys)->set_retry_policy(retry ? RetryPolicy::WithAttempts(4)
                                 : RetryPolicy::None());

  int64_t sim_micros = 0;
  int64_t retries = 0;
  int64_t reprobes = 0;
  int64_t success = 0, aborted = 0, incorrect = 0;
  int64_t iterations = 0;
  uint64_t seed = 0x5EED;
  for (auto _ : state) {
    (*sys)->environment().fault_injector().SetPlan(
        TransientNoise(fault_pct / 100.0, ++seed));
    auto report = (*sys)->Execute(kFareTouch);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    sim_micros += report->run.makespan_micros;
    retries += report->retries_performed;
    reprobes += report->reprobes_performed;
    switch (report->outcome) {
      case GlobalOutcome::kSuccess: ++success; break;
      case GlobalOutcome::kAborted: ++aborted; break;
      case GlobalOutcome::kIncorrect: ++incorrect; break;
      case GlobalOutcome::kRefused: break;
    }
    ++iterations;
  }
  double n = static_cast<double>(iterations);
  state.counters["sim_ms"] =
      benchmark::Counter(static_cast<double>(sim_micros) / 1000.0 / n);
  state.counters["retries"] =
      benchmark::Counter(static_cast<double>(retries) / n);
  state.counters["reprobes"] =
      benchmark::Counter(static_cast<double>(reprobes) / n);
  state.counters["success_frac"] =
      benchmark::Counter(static_cast<double>(success) / n);
  state.counters["aborted_frac"] =
      benchmark::Counter(static_cast<double>(aborted) / n);
  state.counters["incorrect_frac"] =
      benchmark::Counter(static_cast<double>(incorrect) / n);
}
BENCHMARK(BM_FaultRecovery)
    ->ArgsProduct({{0, 1, 2, 5, 10}, {0, 1}})
    ->ArgNames({"fault_pct", "retry"});

/// The in-doubt resolution path in isolation: every first commit ACK to
/// united vanishes; the reprobe either rescues the run (retry on) or
/// the run ends kIncorrect (retry off).
void BM_LostCommitAck(benchmark::State& state) {
  bool retry = state.range(0) != 0;
  PaperFederationOptions options;
  options.flights_per_airline = 32;
  auto sys = BuildPaperFederation(options);
  if (!sys.ok()) {
    state.SkipWithError(sys.status().ToString().c_str());
    return;
  }
  (*sys)->set_retry_policy(retry ? RetryPolicy::WithAttempts(4)
                                 : RetryPolicy::None());

  int64_t sim_micros = 0;
  int64_t success = 0;
  int64_t iterations = 0;
  for (auto _ : state) {
    FaultPlan plan;
    plan.rules.push_back(
        FaultRule::NthCall("united_svc", msql::netsim::LamRequestType::kCommit,
                           1, FaultAction::kLostResponse));
    (*sys)->environment().fault_injector().SetPlan(plan);
    auto report = (*sys)->Execute(kFareTouch);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    sim_micros += report->run.makespan_micros;
    success += report->outcome == GlobalOutcome::kSuccess ? 1 : 0;
    ++iterations;
  }
  double n = static_cast<double>(iterations);
  state.counters["sim_ms"] =
      benchmark::Counter(static_cast<double>(sim_micros) / 1000.0 / n);
  state.counters["success_frac"] =
      benchmark::Counter(static_cast<double>(success) / n);
}
BENCHMARK(BM_LostCommitAck)->Arg(0)->Arg(1)->ArgName("retry");

}  // namespace

BENCHMARK_MAIN();
