// E19: persistent storage engine under a dataset ~10x the buffer pool.
// A LocalEngine with paged storage (64-frame pool = 256KB) ingests
// ~20k rows (~2.5MB of WAL'd row payload) in small committed batches
// with periodic checkpoints, then serves indexed point SELECTs and
// selective UPDATEs. The pool must stay bounded (evictions, not
// growth), and a final simulated power cut must recover to the exact
// committed row count. Counters (page reads/writes, evictions, pin
// hits, WAL appends/flushes) and ru_maxrss go to BENCH_storage.json.
//
// Usage: bench_e19_storage [--quick] [--out FILE] [--rows N]
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "relational/engine.h"

namespace {

using msql::relational::CapabilityProfile;
using msql::relational::LocalEngine;
using msql::relational::SessionId;
using msql::relational::StorageConfig;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

long MaxRssKb() {
  struct rusage usage;
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

struct BenchStats {
  int rows = 0;
  size_t pool_pages = 0;
  double load_ms = 0.0;
  double point_select_ms = 0.0;
  double update_ms = 0.0;
  double recover_ms = 0.0;
  int64_t page_reads = 0;
  int64_t page_writes = 0;
  int64_t evictions = 0;
  int64_t pin_hits = 0;
  int64_t wal_appends = 0;
  int64_t wal_flushes = 0;
  uint64_t heap_bytes = 0;
  long max_rss_kb = 0;
  bool recovered_ok = false;
};

bool Fail(const msql::Status& status, const char* where) {
  std::fprintf(stderr, "%s: %s\n", where, status.ToString().c_str());
  return false;
}

bool RunBench(int rows, const std::string& root, BenchStats* out) {
  std::filesystem::remove_all(root);
  StorageConfig config;
  config.root_dir = root;
  config.buffer_pool_pages = 64;  // 256KB of pages vs ~2.5MB of rows
  out->rows = rows;
  out->pool_pages = config.buffer_pool_pages;

  LocalEngine engine("bench", CapabilityProfile::IngresLike());
  if (auto s = engine.AttachStorage(config); !s.ok())
    return Fail(s, "AttachStorage");
  if (auto s = engine.CreateDatabase("d"); !s.ok())
    return Fail(s, "CreateDatabase");
  auto session = engine.OpenSession("d");
  if (!session.ok()) return Fail(session.status(), "OpenSession");
  SessionId sid = *session;
  if (auto rs = engine.Execute(
          sid, "CREATE TABLE t (id INTEGER, grp INTEGER, pad CHAR(120));");
      !rs.ok())
    return Fail(rs.status(), "CREATE TABLE");
  if (auto rs = engine.Execute(sid, "CREATE INDEX t_id ON t (id);"); !rs.ok())
    return Fail(rs.status(), "CREATE INDEX");

  // Load: committed batches of 50, checkpoint every 4000 rows. Each row
  // carries a ~110-byte pad so the heap dwarfs the 64-page pool.
  const std::string pad(100, 'x');
  auto load_start = std::chrono::steady_clock::now();
  for (int i = 0; i < rows; ++i) {
    if (i % 50 == 0) {
      if (auto rs = engine.Execute(sid, "BEGIN;"); !rs.ok())
        return Fail(rs.status(), "BEGIN");
    }
    std::string sql = "INSERT INTO t VALUES (" + std::to_string(i) + ", " +
                      std::to_string(i % 97) + ", 'p" + std::to_string(i) +
                      "_" + pad + "');";
    if (auto rs = engine.Execute(sid, sql); !rs.ok())
      return Fail(rs.status(), "INSERT");
    if (i % 50 == 49 || i + 1 == rows) {
      if (auto rs = engine.Execute(sid, "COMMIT;"); !rs.ok())
        return Fail(rs.status(), "COMMIT");
    }
    if (i > 0 && i % 4000 == 0) {
      if (auto s = engine.Checkpoint(); !s.ok()) return Fail(s, "Checkpoint");
    }
  }
  out->load_ms = MsSince(load_start);

  // Indexed point reads across the whole key range: with a 10x-pool
  // dataset most probes miss the pool and must page in.
  const int kProbes = 2000;
  auto select_start = std::chrono::steady_clock::now();
  for (int p = 0; p < kProbes; ++p) {
    int id = static_cast<int>((static_cast<int64_t>(p) * 7919) % rows);
    auto rs = engine.Execute(
        sid, "SELECT grp FROM t WHERE id = " + std::to_string(id) + ";");
    if (!rs.ok()) return Fail(rs.status(), "point SELECT");
    if (rs->rows.size() != 1) {
      std::fprintf(stderr, "probe id=%d returned %zu rows\n", id,
                   rs->rows.size());
      return false;
    }
  }
  out->point_select_ms = MsSince(select_start);

  // Selective updates, batched in transactions.
  const int kUpdates = 500;
  auto update_start = std::chrono::steady_clock::now();
  for (int u = 0; u < kUpdates; ++u) {
    int id = static_cast<int>((static_cast<int64_t>(u) * 6007 + 13) % rows);
    if (u % 25 == 0) {
      if (auto rs = engine.Execute(sid, "BEGIN;"); !rs.ok())
        return Fail(rs.status(), "BEGIN");
    }
    auto rs = engine.Execute(sid, "UPDATE t SET grp = grp + 1 WHERE id = " +
                                      std::to_string(id) + ";");
    if (!rs.ok()) return Fail(rs.status(), "UPDATE");
    if (u % 25 == 24 || u + 1 == kUpdates) {
      if (auto rs2 = engine.Execute(sid, "COMMIT;"); !rs2.ok())
        return Fail(rs2.status(), "COMMIT");
    }
  }
  out->update_ms = MsSince(update_start);

  auto* storage = engine.storage();
  out->page_reads = storage->pool().page_reads();
  out->page_writes = storage->pool().page_writes();
  out->evictions = storage->pool().evictions();
  out->pin_hits = storage->pool().pin_hits();
  out->wal_appends = storage->wal().appends();
  out->wal_flushes = storage->wal().flushes();
  for (const auto& entry : std::filesystem::directory_iterator(root)) {
    if (entry.path().extension() == ".heap") {
      out->heap_bytes += entry.file_size();
    }
  }

  // Power cut and WAL replay: the committed state must come back whole.
  engine.SimulateCrash();
  auto recover_start = std::chrono::steady_clock::now();
  if (auto s = engine.Recover(); !s.ok()) return Fail(s, "Recover");
  out->recover_ms = MsSince(recover_start);
  auto post = engine.OpenSession("d");
  if (!post.ok()) return Fail(post.status(), "OpenSession post-recovery");
  auto count = engine.Execute(*post, "SELECT COUNT(*) FROM t;");
  if (!count.ok()) return Fail(count.status(), "COUNT post-recovery");
  int64_t recovered = count->rows[0][0].AsInteger();
  out->recovered_ok = recovered == rows;
  if (!out->recovered_ok) {
    std::fprintf(stderr, "recovered %lld rows, expected %d\n",
                 static_cast<long long>(recovered), rows);
  }
  out->max_rss_kb = MaxRssKb();
  std::filesystem::remove_all(root);
  return out->recovered_ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_storage.json";
  int rows = 20000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc)
      rows = std::atoi(argv[++i]);
  }
  if (quick) rows = 4000;

  BenchStats stats;
  const std::string root =
      (std::filesystem::temp_directory_path() / "msql_bench_e19").string();
  if (!RunBench(rows, root, &stats)) return 1;

  std::printf(
      "rows=%d pool_pages=%zu heap_bytes=%llu (%.1fx pool)\n"
      "load=%.1fms point_select=%.1fms update=%.1fms recover=%.1fms\n"
      "page_reads=%lld page_writes=%lld evictions=%lld pin_hits=%lld\n"
      "wal_appends=%lld wal_flushes=%lld max_rss=%ldKB recovered=%s\n",
      stats.rows, stats.pool_pages,
      static_cast<unsigned long long>(stats.heap_bytes),
      static_cast<double>(stats.heap_bytes) /
          (stats.pool_pages * msql::storage::kPageSize),
      stats.load_ms, stats.point_select_ms, stats.update_ms, stats.recover_ms,
      static_cast<long long>(stats.page_reads),
      static_cast<long long>(stats.page_writes),
      static_cast<long long>(stats.evictions),
      static_cast<long long>(stats.pin_hits),
      static_cast<long long>(stats.wal_appends),
      static_cast<long long>(stats.wal_flushes), stats.max_rss_kb,
      stats.recovered_ok ? "true" : "false");

  std::ofstream json(out_path);
  json << "{\n  \"bench\": \"e19_storage\",\n"
       << "  \"rows\": " << stats.rows << ",\n"
       << "  \"pool_pages\": " << stats.pool_pages << ",\n"
       << "  \"heap_bytes\": " << stats.heap_bytes << ",\n"
       << "  \"load_ms\": " << stats.load_ms << ",\n"
       << "  \"point_select_ms\": " << stats.point_select_ms << ",\n"
       << "  \"update_ms\": " << stats.update_ms << ",\n"
       << "  \"recover_ms\": " << stats.recover_ms << ",\n"
       << "  \"page_reads\": " << stats.page_reads << ",\n"
       << "  \"page_writes\": " << stats.page_writes << ",\n"
       << "  \"evictions\": " << stats.evictions << ",\n"
       << "  \"pin_hits\": " << stats.pin_hits << ",\n"
       << "  \"wal_appends\": " << stats.wal_appends << ",\n"
       << "  \"wal_flushes\": " << stats.wal_flushes << ",\n"
       << "  \"max_rss_kb\": " << stats.max_rss_kb << ",\n"
       << "  \"recovered\": " << (stats.recovered_ok ? "true" : "false")
       << "\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
