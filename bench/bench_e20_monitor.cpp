// E20: federation monitor overhead + alert-driven adaptive admission.
//
// Part A (overhead): the E16 read/update workload runs twice through the
// FederationServer — monitor detached, then attached (adaptive admission
// off) — and compares wall time. The monitor lives on the simulated
// clock, so the virtual makespan must be bit-identical between the two
// runs; the bench fails if it is not. The wall-clock ratio is printed to
// stdout only (host time is nondeterministic and stays out of the JSON).
//
// Part B (chaos): the E17 deadlock-prone seat-booking workload with a
// degraded site (latency spikes on continental's request legs stretch
// lock hold times, inflating contention and deadlock aborts). Aborted
// bookings are resubmitted round after round until every one commits —
// the paper's user-retry model — and the per-round virtual makespans are
// summed. Fixed admission is compared against adaptive admission, where
// the monitor's deadlock-victim SLO budget drives session shedding:
// while the budget is exhausted new admissions serialize, draining the
// pile-up instead of feeding it. The bench fails if any session never
// terminates.
//
// Results go to BENCH_monitor.json (simulated metrics only — the file is
// byte-identical run to run for a fixed seed).
//
// Usage: bench_e20_monitor [--quick] [--out FILE] [--sessions N]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/fixtures.h"
#include "core/mdbs_system.h"
#include "core/session_scheduler.h"
#include "netsim/fault_injector.h"
#include "obs/monitor.h"

namespace {

// -- Part A: monitor overhead on the E16 workload --------------------------

std::string ReadQuery(int db) {
  return "USE db" + std::to_string(db) + "\nSELECT fno FROM flight" +
         std::to_string(db);
}

std::string UpdateMt(int db) {
  const std::string n = std::to_string(db);
  return "BEGIN MULTITRANSACTION\n"
         "USE db" + n +
         "\nUPDATE flight" + n +
         " SET day = 'MON' WHERE fno = 1;\n"
         "COMMIT\n  db" + n + "\nEND MULTITRANSACTION";
}

struct OverheadStats {
  int sessions = 0;
  double wall_off_ms = 0.0;
  double wall_on_ms = 0.0;
  double ratio = 0.0;
  int64_t virtual_makespan_micros = 0;
  int64_t windows_closed = 0;
  int64_t alerts = 0;
};

bool RunOverhead(int sessions, OverheadStats* out) {
  msql::core::SyntheticFederationOptions options;
  options.n_databases = 8;
  options.rows_per_table = 32;

  int64_t makespans[2] = {0, 0};
  for (int pass = 0; pass < 2; ++pass) {
    const bool with_monitor = pass == 1;
    auto built = msql::core::BuildSyntheticFederation(options);
    if (!built.ok()) {
      std::fprintf(stderr, "fixture: %s\n",
                   built.status().ToString().c_str());
      return false;
    }
    auto sys = std::move(*built);

    msql::core::ServerConfig config;
    config.max_admitted = 256;
    msql::core::FederationServer server(sys.get(), config);

    msql::obs::MonitorConfig mon_config;
    // Narrow windows so the monitor closes many of them during the
    // batch — the overhead ratio measures real per-window sampling, not
    // an idle monitor.
    mon_config.window_micros = 10'000;
    mon_config.slo_max_error_rate = 0.5;
    msql::obs::Monitor monitor(mon_config, &sys->environment().metrics(),
                               &sys->environment().health());
    if (with_monitor) server.set_monitor(&monitor);

    msql::Rng rng(1993);
    for (int i = 0; i < sessions; ++i) {
      const int db = i % options.n_databases;
      if (rng.NextBool(0.02)) {
        server.Submit(UpdateMt(db));
      } else {
        server.Submit(ReadQuery(db));
      }
    }

    const auto start = std::chrono::steady_clock::now();
    auto results = server.RunAll();
    const auto stop = std::chrono::steady_clock::now();
    if (!results.ok()) {
      std::fprintf(stderr, "RunAll: %s\n",
                   results.status().ToString().c_str());
      return false;
    }
    const double wall_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    makespans[pass] = server.virtual_now();
    if (with_monitor) {
      monitor.Flush(server.virtual_now());
      out->wall_on_ms = wall_ms;
      out->windows_closed = monitor.windows_closed();
      out->alerts = static_cast<int64_t>(monitor.alerts().size());
    } else {
      out->wall_off_ms = wall_ms;
    }
  }
  if (makespans[0] != makespans[1]) {
    std::fprintf(stderr,
                 "monitor changed the simulation: makespan %lld != %lld\n",
                 static_cast<long long>(makespans[0]),
                 static_cast<long long>(makespans[1]));
    return false;
  }
  out->sessions = sessions;
  out->virtual_makespan_micros = makespans[0];
  out->ratio =
      out->wall_off_ms > 0.0 ? out->wall_on_ms / out->wall_off_ms : 0.0;
  return true;
}

// -- Part B: degraded-site chaos, fixed vs adaptive admission --------------

std::string OrderedSeatMt(bool continental_first, const std::string& client) {
  std::string continental =
      "USE continental\n"
      "UPDATE f838 SET seatstatus = 'TAKEN', clientname = '" + client +
      "'\n"
      "WHERE seatnu = (SELECT MIN(seatnu) FROM f838 "
      "WHERE seatstatus = 'FREE');\n";
  std::string delta =
      "USE delta\n"
      "UPDATE fnu747 SET sstat = 'TAKEN', passname = '" + client +
      "'\n"
      "WHERE snu = (SELECT MIN(snu) FROM fnu747 WHERE sstat = 'FREE');\n";
  return "BEGIN MULTITRANSACTION\n" +
         (continental_first ? continental + delta : delta + continental) +
         "COMMIT\n"
         "  continental AND delta\n"
         "END MULTITRANSACTION";
}

struct ChaosStats {
  int sessions = 0;
  bool adaptive = false;
  double wall_ms = 0.0;
  int64_t deadlock_victims = 0;
  int64_t aborted = 0;
  int64_t committed = 0;
  int64_t sessions_shed = 0;
  int64_t shed_engagements = 0;
  int retry_rounds = 0;
  int64_t retried_sessions = 0;
  int64_t completion_makespan_micros = 0;
};

msql::obs::MonitorConfig ChaosMonitorConfig() {
  msql::obs::MonitorConfig config;
  // Windows narrow enough that one batch spans many of them, so the
  // deadlock budget can exhaust (and recover) inside a single round.
  config.window_micros = 50'000;
  config.slo_max_deadlock_victims = 0;
  config.budget_horizon_windows = 8;
  config.slo_budget_fraction = 0.1;  // allowed = max(1, 0) = 1 window
  config.recover_after_clean_windows = 2;
  return config;
}

/// One batch + user-retry rounds until every booking commits. Returns
/// false on infrastructure failure or when a session never terminates.
bool RunChaos(uint64_t seed, int sessions, bool adaptive, ChaosStats* out) {
  msql::core::PaperFederationOptions options;
  options.seats_per_airline = 2 * sessions;
  auto built = msql::core::BuildPaperFederation(options);
  if (!built.ok()) {
    std::fprintf(stderr, "fixture: %s\n", built.status().ToString().c_str());
    return false;
  }
  auto sys = std::move(*built);

  // Degraded site: every request leg to continental is slowed. Longer
  // lock hold times at one site stretch the two-site bookings, widening
  // the window in which opposite-order bookings deadlock.
  msql::netsim::FaultPlan plan;
  plan.seed = seed;
  plan.rules.push_back(
      msql::netsim::FaultRule::Spike("continental_svc", 20'000));
  sys->environment().fault_injector().SetPlan(plan);

  msql::core::ServerConfig config;
  // Small enough that a backlog of unadmitted sessions exists while the
  // batch runs — the population the shedding signal can actually act on.
  config.max_admitted = 12;
  config.adaptive_admission = adaptive;

  msql::Rng rng(seed);
  std::vector<std::string> texts;
  for (int i = 0; i < sessions; ++i) {
    const std::string client = "c" + std::to_string(i);
    texts.push_back(OrderedSeatMt(rng.NextBool(0.5), client));
  }

  out->sessions = sessions;
  out->adaptive = adaptive;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::string> pending = texts;
  constexpr int kMaxRounds = 50;
  int round = 0;
  while (!pending.empty() && round < kMaxRounds) {
    ++round;
    if (round > 1) {
      out->retry_rounds = round - 1;
      out->retried_sessions += static_cast<int64_t>(pending.size());
    }
    // Fresh server + monitor per round: each batch restarts the virtual
    // clock at zero, and the monitor's windows are monotone in it.
    msql::core::FederationServer server(sys.get(), config);
    msql::obs::Monitor monitor(ChaosMonitorConfig(),
                               &sys->environment().metrics(),
                               &sys->environment().health());
    if (adaptive) server.set_monitor(&monitor);
    for (const std::string& text : pending) server.Submit(text);
    auto results = server.RunAll();
    if (!results.ok()) {
      std::fprintf(stderr, "round %d: %s\n", round,
                   results.status().ToString().c_str());
      return false;
    }
    out->completion_makespan_micros += server.virtual_now();
    out->shed_engagements += monitor.shed_engagements();
    std::vector<std::string> next;
    for (size_t i = 0; i < results->size(); ++i) {
      const msql::core::SessionResult& r = (*results)[i];
      if (!r.report.has_value()) {
        std::fprintf(stderr, "round %d session %zu: no report (%s)\n",
                     round, i, r.status.ToString().c_str());
        return false;
      }
      if (r.deadlock_victim) ++out->deadlock_victims;
      if (r.admission_shed) ++out->sessions_shed;
      if (r.report->outcome == msql::core::GlobalOutcome::kSuccess) {
        ++out->committed;
      } else {
        ++out->aborted;
        next.push_back(pending[i]);
      }
    }
    pending = std::move(next);
  }
  const auto stop = std::chrono::steady_clock::now();
  out->wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  sys->environment().fault_injector().Clear();
  if (!pending.empty()) {
    std::fprintf(stderr, "%zu bookings never completed in %d rounds\n",
                 pending.size(), kMaxRounds);
    return false;
  }
  return true;
}

void PrintChaos(const ChaosStats& s) {
  std::printf(
      "adaptive=%-5s sessions=%-4d wall=%8.1fms victims=%-4lld "
      "aborted=%-4lld committed=%-4lld shed=%-4lld engage=%-2lld "
      "retries=%lld/%dr completion=%9lldus\n",
      s.adaptive ? "true" : "false", s.sessions, s.wall_ms,
      static_cast<long long>(s.deadlock_victims),
      static_cast<long long>(s.aborted),
      static_cast<long long>(s.committed),
      static_cast<long long>(s.sessions_shed),
      static_cast<long long>(s.shed_engagements),
      static_cast<long long>(s.retried_sessions), s.retry_rounds,
      static_cast<long long>(s.completion_makespan_micros));
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_monitor.json";
  int sessions = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc)
      sessions = std::atoi(argv[++i]);
  }
  const uint64_t seed = 1993;
  const int overhead_sessions = quick ? 1000 : 5000;
  const int chaos_sessions = sessions > 0 ? sessions : (quick ? 60 : 120);

  OverheadStats overhead;
  if (!RunOverhead(overhead_sessions, &overhead)) return 1;
  std::printf(
      "overhead: sessions=%d wall_off=%.1fms wall_on=%.1fms ratio=%.3f "
      "(windows=%lld alerts=%lld)\n",
      overhead.sessions, overhead.wall_off_ms, overhead.wall_on_ms,
      overhead.ratio, static_cast<long long>(overhead.windows_closed),
      static_cast<long long>(overhead.alerts));

  std::vector<ChaosStats> chaos;
  for (bool adaptive : {false, true}) {
    ChaosStats s;
    if (!RunChaos(seed, chaos_sessions, adaptive, &s)) return 1;
    PrintChaos(s);
    chaos.push_back(s);
  }
  if (chaos[1].completion_makespan_micros <
      chaos[0].completion_makespan_micros) {
    std::printf("adaptive admission wins by %.1f%% on completion makespan\n",
                100.0 *
                    (chaos[0].completion_makespan_micros -
                     chaos[1].completion_makespan_micros) /
                    static_cast<double>(chaos[0].completion_makespan_micros));
  } else {
    std::printf("WARNING: adaptive admission did not improve completion "
                "makespan\n");
  }

  // Simulated metrics only: for a fixed seed this file is byte-identical
  // run to run (wall times and ratios live on stdout above).
  std::ofstream json(out_path);
  json << "{\n  \"bench\": \"e20_monitor\",\n  \"seed\": " << seed
       << ",\n  \"overhead\": {\"sessions\": " << overhead.sessions
       << ", \"virtual_makespan_micros\": "
       << overhead.virtual_makespan_micros
       << ", \"windows_closed\": " << overhead.windows_closed
       << ", \"alerts\": " << overhead.alerts << "},\n  \"chaos\": [\n";
  for (size_t i = 0; i < chaos.size(); ++i) {
    const ChaosStats& s = chaos[i];
    json << "    {\"adaptive\": " << (s.adaptive ? "true" : "false")
         << ", \"sessions\": " << s.sessions
         << ", \"deadlock_victims\": " << s.deadlock_victims
         << ", \"aborted\": " << s.aborted
         << ", \"committed\": " << s.committed
         << ", \"sessions_shed\": " << s.sessions_shed
         << ", \"shed_engagements\": " << s.shed_engagements
         << ", \"retry_rounds\": " << s.retry_rounds
         << ", \"retried_sessions\": " << s.retried_sessions
         << ", \"completion_makespan_micros\": "
         << s.completion_makespan_micros << "}"
         << (i + 1 < chaos.size() ? ",\n" : "\n");
  }
  json << "  ]\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
