// E16: concurrent federation server throughput. Submits 1k/10k/100k
// sessions (reads across the synthetic federation plus a slice of
// single-database update multitransactions for lock churn), runs them
// through the FederationServer scheduler, and reports wall-clock QPS
// plus p50/p99 session makespan on the simulated clock. Results are
// written to BENCH_concurrency.json.
//
// Usage: bench_e16_concurrency [--quick] [--out FILE]
//        [--max-sessions N] [--update-fraction F]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/fixtures.h"
#include "core/mdbs_system.h"
#include "core/session_scheduler.h"

namespace {

struct RunStats {
  int sessions = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  int64_t virtual_makespan_micros = 0;
  int64_t p50_makespan_micros = 0;
  int64_t p99_makespan_micros = 0;
  int64_t lock_waits = 0;
  int64_t failures = 0;
};

int64_t Percentile(std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

std::string ReadQuery(int db) {
  return "USE db" + std::to_string(db) + "\nSELECT fno FROM flight" +
         std::to_string(db);
}

std::string UpdateMt(int db) {
  const std::string n = std::to_string(db);
  return "BEGIN MULTITRANSACTION\n"
         "USE db" + n +
         "\nUPDATE flight" + n +
         " SET day = 'MON' WHERE fno = 1;\n"
         "COMMIT\n  db" + n + "\nEND MULTITRANSACTION";
}

bool RunScale(int sessions, double update_fraction, RunStats* out) {
  msql::core::SyntheticFederationOptions options;
  options.n_databases = 8;
  options.rows_per_table = 32;
  auto built = msql::core::BuildSyntheticFederation(options);
  if (!built.ok()) {
    std::fprintf(stderr, "fixture: %s\n", built.status().ToString().c_str());
    return false;
  }
  auto sys = std::move(*built);

  msql::core::ServerConfig config;
  // Bounded admission keeps at most this many compiled plans + DOL
  // engines live at once; the rest of the batch waits as plain text.
  config.max_admitted = 256;
  msql::core::FederationServer server(sys.get(), config);
  msql::Rng rng(1993);
  for (int i = 0; i < sessions; ++i) {
    const int db = i % options.n_databases;
    if (rng.NextBool(update_fraction)) {
      server.Submit(UpdateMt(db));
    } else {
      server.Submit(ReadQuery(db));
    }
  }

  const auto start = std::chrono::steady_clock::now();
  auto results = server.RunAll();
  const auto stop = std::chrono::steady_clock::now();
  if (!results.ok()) {
    std::fprintf(stderr, "RunAll: %s\n", results.status().ToString().c_str());
    return false;
  }

  std::vector<int64_t> makespans;
  makespans.reserve(results->size());
  out->sessions = sessions;
  out->lock_waits = 0;
  out->failures = 0;
  for (const msql::core::SessionResult& r : *results) {
    out->lock_waits += r.lock_waits;
    const bool ok =
        r.report.has_value() &&
        r.report->outcome == msql::core::GlobalOutcome::kSuccess;
    if (!ok) ++out->failures;
    makespans.push_back(r.makespan_micros);
  }
  std::sort(makespans.begin(), makespans.end());
  out->wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  out->qps = out->wall_ms > 0.0 ? sessions / (out->wall_ms / 1000.0) : 0.0;
  out->virtual_makespan_micros = server.virtual_now();
  out->p50_makespan_micros = Percentile(makespans, 0.50);
  out->p99_makespan_micros = Percentile(makespans, 0.99);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_concurrency.json";
  int max_sessions = 100000;
  double update_fraction = 0.02;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    if (std::strcmp(argv[i], "--max-sessions") == 0 && i + 1 < argc)
      max_sessions = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--update-fraction") == 0 && i + 1 < argc)
      update_fraction = std::atof(argv[++i]);
  }

  std::vector<int> scales = {1000, 10000, 100000};
  if (quick) scales = {1000};
  std::vector<RunStats> stats;
  for (int scale : scales) {
    if (scale > max_sessions) continue;
    RunStats s;
    if (!RunScale(scale, update_fraction, &s)) return 1;
    stats.push_back(s);
    std::printf(
        "sessions=%-7d wall=%9.1fms qps=%9.0f p50=%6lldus p99=%6lldus "
        "lock_waits=%lld failures=%lld\n",
        s.sessions, s.wall_ms, s.qps,
        static_cast<long long>(s.p50_makespan_micros),
        static_cast<long long>(s.p99_makespan_micros),
        static_cast<long long>(s.lock_waits),
        static_cast<long long>(s.failures));
  }

  std::ofstream json(out_path);
  json << "{\n  \"bench\": \"e16_concurrency\",\n"
       << "  \"update_fraction\": " << update_fraction << ",\n"
       << "  \"runs\": [\n";
  for (size_t i = 0; i < stats.size(); ++i) {
    const RunStats& s = stats[i];
    json << "    {\"sessions\": " << s.sessions
         << ", \"wall_ms\": " << s.wall_ms << ", \"qps\": " << s.qps
         << ", \"virtual_makespan_micros\": " << s.virtual_makespan_micros
         << ", \"p50_makespan_micros\": " << s.p50_makespan_micros
         << ", \"p99_makespan_micros\": " << s.p99_makespan_micros
         << ", \"lock_waits\": " << s.lock_waits
         << ", \"failures\": " << s.failures << "}"
         << (i + 1 < stats.size() ? ",\n" : "\n");
  }
  json << "  ]\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
