// Local join execution: planned (pushdown + hash joins) vs the naive
// cross product, on a 3-table equi-join chain with N rows per table.
//
// The naive odometer forms and tests all N^3 combined rows, so it is
// only measured up to N=100 (1e6 evaluations); the planned path touches
// ~N candidates per hash step and runs comfortably at N=1000. Counters:
// rows_evaluated (measured), naive_rows = N^3 (the cross-product size
// the naive path would evaluate), and ratio = naive_rows /
// rows_evaluated — the ">= 10x fewer rows evaluated" acceptance number.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <string>

#include "relational/engine.h"

namespace {

using msql::relational::CapabilityProfile;
using msql::relational::LocalEngine;
using msql::relational::SessionId;

std::unique_ptr<LocalEngine> ChainEngine(int rows_per_table,
                                         bool use_planner) {
  auto engine = std::make_unique<LocalEngine>(
      "svc", CapabilityProfile::IngresLike());
  engine->set_use_planner(use_planner);
  if (!engine->CreateDatabase("db").ok()) return nullptr;
  auto s = *engine->OpenSession("db");
  for (const char* name : {"t1", "t2", "t3"}) {
    std::string create = "CREATE TABLE " + std::string(name) +
                         " (id INTEGER, v REAL)";
    if (!engine->Execute(s, create).ok()) return nullptr;
    for (int chunk = 0; chunk < rows_per_table; chunk += 512) {
      std::string insert = "INSERT INTO " + std::string(name) + " VALUES ";
      int end = std::min(chunk + 512, rows_per_table);
      for (int i = chunk; i < end; ++i) {
        if (i > chunk) insert += ", ";
        insert += "(" + std::to_string(i) + ", " + std::to_string(i) +
                  ".5)";
      }
      if (!engine->Execute(s, insert).ok()) return nullptr;
    }
  }
  return engine;
}

const char kChainQuery[] =
    "SELECT t1.id, t3.v FROM t1, t2, t3 "
    "WHERE t1.id = t2.id AND t2.id = t3.id";

void RunChain(benchmark::State& state, bool use_planner) {
  int n = static_cast<int>(state.range(0));
  auto engine = ChainEngine(n, use_planner);
  if (engine == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  SessionId s = *engine->OpenSession("db");
  int64_t evaluated = 0;
  int64_t result_rows = 0;
  int64_t iterations = 0;
  for (auto _ : state) {
    auto rs = engine->Execute(s, kChainQuery);
    if (!rs.ok()) {
      state.SkipWithError("join failed");
      return;
    }
    evaluated = rs->rows_evaluated;
    result_rows = static_cast<int64_t>(rs->rows.size());
    ++iterations;
  }
  double naive_rows = static_cast<double>(n) * n * n;
  state.counters["rows_evaluated"] =
      benchmark::Counter(static_cast<double>(evaluated));
  state.counters["naive_rows"] = benchmark::Counter(naive_rows);
  state.counters["ratio"] = benchmark::Counter(
      evaluated > 0 ? naive_rows / static_cast<double>(evaluated) : 0.0);
  state.counters["result_rows"] =
      benchmark::Counter(static_cast<double>(result_rows));
  state.SetItemsProcessed(iterations * result_rows);
}

/// Naive cross product: rows_evaluated == N^3 by construction.
void BM_NaiveChainJoin(benchmark::State& state) {
  RunChain(state, /*use_planner=*/false);
}
BENCHMARK(BM_NaiveChainJoin)->Arg(8)->Arg(32)->Arg(64)->Arg(100)
    ->Unit(benchmark::kMillisecond);

/// Planned: two hash steps, ~N candidates each.
void BM_PlannedChainJoin(benchmark::State& state) {
  RunChain(state, /*use_planner=*/true);
}
BENCHMARK(BM_PlannedChainJoin)
    ->Arg(8)->Arg(32)->Arg(64)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

/// Pushdown + probe inside a join: selective predicate on an indexed
/// column of the big table, joined against a small table.
void BM_PlannedProbeJoin(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool with_index = state.range(1) != 0;
  auto engine = ChainEngine(n, /*use_planner=*/true);
  if (engine == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  SessionId s = *engine->OpenSession("db");
  if (with_index &&
      !engine->Execute(s, "CREATE INDEX idx1 ON t1 (id)").ok()) {
    state.SkipWithError("index failed");
    return;
  }
  int64_t scanned = 0;
  for (auto _ : state) {
    auto rs = engine->Execute(
        s,
        "SELECT t1.v, t2.v FROM t1, t2 WHERE t1.id = 7 AND "
        "t1.id = t2.id");
    if (!rs.ok()) {
      state.SkipWithError("probe join failed");
      return;
    }
    scanned = rs->rows_scanned;
  }
  state.counters["rows_scanned"] =
      benchmark::Counter(static_cast<double>(scanned));
}
BENCHMARK(BM_PlannedProbeJoin)
    ->Args({1000, 0})->Args({1000, 1})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
