// E6 (§3.4): multitransaction execution — cost of the travel-agent
// reservation against single queries, and sensitivity to how deep in
// the acceptable-state preference list the winning state sits.
#include <benchmark/benchmark.h>

#include "core/fixtures.h"
#include "core/mdbs_system.h"

namespace {

using msql::core::BuildPaperFederation;
using msql::core::GlobalOutcome;
using msql::core::PaperFederationOptions;
using msql::core::PaperServiceOf;
using msql::relational::FailPoint;

/// A non-consuming variant of the §3.4 multitransaction (touches the
/// chosen seat/car rows without flipping them to TAKEN, so iterations
/// do not run out of inventory).
constexpr const char* kTravelAgentTouch =
    "BEGIN MULTITRANSACTION\n"
    "USE continental delta\n"
    "LET fitab.snu.sstat.clname BE\n"
    "  f838.seatnu.seatstatus.clientname\n"
    "  fnu747.snu.sstat.passname\n"
    "UPDATE fitab SET sstat = 'FREE' "
    "WHERE snu = (SELECT MIN(snu) FROM fitab WHERE sstat = 'FREE');\n"
    "USE avis national\n"
    "LET cartab.ccode.cstat BE cars.code.carst vehicle.vcode.vstat\n"
    "UPDATE cartab SET cstat = 'available' "
    "WHERE ccode = (SELECT MIN(ccode) FROM cartab WHERE "
    "cstat = 'available');\n"
    "COMMIT\n"
    "  continental AND national\n"
    "  delta AND avis\n"
    "END MULTITRANSACTION";

void RunMt(benchmark::State& state, bool fail_continental) {
  PaperFederationOptions options;
  options.seats_per_airline = 64;
  options.cars_per_company = 64;
  auto sys = BuildPaperFederation(options);
  if (!sys.ok()) {
    state.SkipWithError(sys.status().ToString().c_str());
    return;
  }
  int64_t sim_micros = 0;
  int64_t messages = 0;
  int64_t iterations = 0;
  for (auto _ : state) {
    if (fail_continental) {
      (*(**sys).GetEngine(PaperServiceOf("continental")))
          ->InjectFailure(FailPoint::kNextStatement);
    }
    auto report = (*sys)->Execute(kTravelAgentTouch);
    if (!report.ok() || report->outcome != GlobalOutcome::kSuccess) {
      state.SkipWithError("multitransaction failed");
      return;
    }
    sim_micros += report->run.makespan_micros;
    messages += report->run.messages;
    ++iterations;
  }
  state.counters["sim_ms"] = benchmark::Counter(
      static_cast<double>(sim_micros) / 1000.0 / iterations);
  state.counters["messages"] =
      benchmark::Counter(static_cast<double>(messages) / iterations);
}

/// Preferred state reachable: continental AND national win.
void BM_Mt_PreferredState(benchmark::State& state) {
  RunMt(state, /*fail_continental=*/false);
}
BENCHMARK(BM_Mt_PreferredState);

/// Preferred state unreachable: falls through to delta AND avis.
void BM_Mt_FallbackState(benchmark::State& state) {
  RunMt(state, /*fail_continental=*/true);
}
BENCHMARK(BM_Mt_FallbackState);

/// Plan-size sensitivity: a multitransaction over n synthetic databases
/// with n single-db acceptable states (worst-case decision cascade).
void BM_Mt_StateCascade(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  msql::core::SyntheticFederationOptions options;
  options.n_databases = n;
  options.rows_per_table = 16;
  auto sys = msql::core::BuildSyntheticFederation(options);
  if (!sys.ok()) {
    state.SkipWithError(sys.status().ToString().c_str());
    return;
  }
  std::string mt = "BEGIN MULTITRANSACTION\n";
  for (int i = 0; i < n; ++i) {
    mt += "USE db" + std::to_string(i) + " UPDATE flight" +
          std::to_string(i) + " SET rate = rate * 1.0;\n";
  }
  mt += "COMMIT\n";
  // States in order dbn-1, ..., db0: all reachable; first wins.
  for (int i = n - 1; i >= 0; --i) {
    mt += "  db" + std::to_string(i) + "\n";
  }
  mt += "END MULTITRANSACTION";
  int64_t sim_micros = 0;
  int64_t iterations = 0;
  for (auto _ : state) {
    auto report = (*sys)->Execute(mt);
    if (!report.ok() || report->outcome != GlobalOutcome::kSuccess) {
      state.SkipWithError("multitransaction failed");
      return;
    }
    sim_micros += report->run.makespan_micros;
    ++iterations;
  }
  state.counters["sim_ms"] = benchmark::Counter(
      static_cast<double>(sim_micros) / 1000.0 / iterations);
}
BENCHMARK(BM_Mt_StateCascade)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
