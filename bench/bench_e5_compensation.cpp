// E5 (§3.3): the compensation paths. Measures the cost of each outcome
// path of the compensated fare raise when Continental lacks 2PC —
// success, compensate-Continental, rollback-United — against the
// all-2PC baseline.
#include <benchmark/benchmark.h>

#include "core/fixtures.h"
#include "core/mdbs_system.h"

namespace {

using msql::core::BuildPaperFederation;
using msql::core::GlobalOutcome;
using msql::core::PaperFederationOptions;
using msql::core::PaperServiceOf;
using msql::relational::FailPoint;

constexpr const char* kCompensatedTouch =
    "USE continental VITAL delta united VITAL\n"
    "UPDATE flight% SET rate% = rate% * 1.0\n"
    "WHERE sour% = 'Houston' AND dest% = 'San Antonio'\n"
    "COMP continental\n"
    "UPDATE flights SET rate = rate / 1.0\n"
    "WHERE source = 'Houston' AND destination = 'San Antonio'";

constexpr const char* kPlainTouch =
    "USE continental VITAL delta united VITAL\n"
    "UPDATE flight% SET rate% = rate% * 1.0\n"
    "WHERE sour% = 'Houston' AND dest% = 'San Antonio'";

enum class Inject { kNone, kUnitedStatement, kContinentalStatement };

void RunPath(benchmark::State& state, bool continental_no_2pc,
             const char* query, Inject inject,
             GlobalOutcome expected_outcome) {
  PaperFederationOptions options;
  options.flights_per_airline = 32;
  options.continental_autocommit_only = continental_no_2pc;
  auto sys = BuildPaperFederation(options);
  if (!sys.ok()) {
    state.SkipWithError(sys.status().ToString().c_str());
    return;
  }
  int64_t sim_micros = 0;
  int64_t messages = 0;
  int64_t iterations = 0;
  for (auto _ : state) {
    switch (inject) {
      case Inject::kNone:
        break;
      case Inject::kUnitedStatement:
        (*(**sys).GetEngine(PaperServiceOf("united")))
            ->InjectFailure(FailPoint::kNextStatement);
        break;
      case Inject::kContinentalStatement:
        (*(**sys).GetEngine(PaperServiceOf("continental")))
            ->InjectFailure(FailPoint::kNextStatement);
        break;
    }
    auto report = (*sys)->Execute(query);
    if (!report.ok() || report->outcome != expected_outcome) {
      state.SkipWithError("unexpected outcome");
      return;
    }
    sim_micros += report->run.makespan_micros;
    messages += report->run.messages;
    ++iterations;
  }
  state.counters["sim_ms"] = benchmark::Counter(
      static_cast<double>(sim_micros) / 1000.0 / iterations);
  state.counters["messages"] =
      benchmark::Counter(static_cast<double>(messages) / iterations);
}

/// Baseline: everything 2PC, clean run.
void BM_Comp_All2pc_Success(benchmark::State& state) {
  RunPath(state, /*continental_no_2pc=*/false, kPlainTouch, Inject::kNone,
          GlobalOutcome::kSuccess);
}
BENCHMARK(BM_Comp_All2pc_Success);

/// Path 1: Continental committed, United prepared → commit United.
void BM_Comp_Path1_Success(benchmark::State& state) {
  RunPath(state, /*continental_no_2pc=*/true, kCompensatedTouch,
          Inject::kNone, GlobalOutcome::kSuccess);
}
BENCHMARK(BM_Comp_Path1_Success);

/// Path 2: United aborted → Continental compensated.
void BM_Comp_Path2_Compensate(benchmark::State& state) {
  RunPath(state, /*continental_no_2pc=*/true, kCompensatedTouch,
          Inject::kUnitedStatement, GlobalOutcome::kAborted);
}
BENCHMARK(BM_Comp_Path2_Compensate);

/// Path 3: Continental aborted → United rolled back.
void BM_Comp_Path3_Rollback(benchmark::State& state) {
  RunPath(state, /*continental_no_2pc=*/true, kCompensatedTouch,
          Inject::kContinentalStatement, GlobalOutcome::kAborted);
}
BENCHMARK(BM_Comp_Path3_Rollback);

/// All-2PC abort path for comparison: rollback of prepared branches.
void BM_Comp_All2pc_Abort(benchmark::State& state) {
  RunPath(state, /*continental_no_2pc=*/false, kPlainTouch,
          Inject::kUnitedStatement, GlobalOutcome::kAborted);
}
BENCHMARK(BM_Comp_All2pc_Abort);

}  // namespace

BENCHMARK_MAIN();
