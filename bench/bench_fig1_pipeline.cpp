// E1 (Figure 1): the system-component pipeline — MSQL translator → DOL
// engine → LAMs → LDBMSs. Measures per-stage host cost and end-to-end
// cost as the federation grows, plus the simulated wall-clock the
// engine reports (sim_ms counter).
//
// `--trace-out FILE` additionally runs the n=4 end-to-end pipeline once
// with tracing enabled and writes the Chrome trace-event JSON (load in
// Perfetto). The measured benchmark loops always run untraced.
#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/fixtures.h"
#include "core/mdbs_system.h"
#include "msql/expander.h"
#include "msql/parser.h"
#include "obs/trace.h"
#include "translator/translator.h"

namespace {

using msql::core::BuildSyntheticFederation;
using msql::core::SyntheticFederationOptions;

std::string RetrievalQuery(int n_databases) {
  std::string scope = "USE";
  for (int i = 0; i < n_databases; ++i) {
    scope += " db" + std::to_string(i);
  }
  return scope + "\nSELECT fno, rate FROM flight% WHERE source = 'Houston'";
}

/// Stage 1: MSQL parsing only.
void BM_Stage_Parse(benchmark::State& state) {
  std::string query = RetrievalQuery(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto input = msql::lang::MsqlParser::ParseOne(query);
    if (!input.ok()) state.SkipWithError(input.status().ToString().c_str());
    benchmark::DoNotOptimize(input);
  }
}
BENCHMARK(BM_Stage_Parse)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

/// Stage 2: multiple-identifier substitution + disambiguation.
void BM_Stage_Expand(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  SyntheticFederationOptions options;
  options.n_databases = n;
  options.rows_per_table = 8;
  auto sys = BuildSyntheticFederation(options);
  if (!sys.ok()) {
    state.SkipWithError(sys.status().ToString().c_str());
    return;
  }
  auto input = msql::lang::MsqlParser::ParseOne(RetrievalQuery(n));
  msql::lang::Expander expander(&(*sys)->gdd());
  for (auto _ : state) {
    auto expansion = expander.Expand(*input->query);
    if (!expansion.ok()) {
      state.SkipWithError(expansion.status().ToString().c_str());
    }
    benchmark::DoNotOptimize(expansion);
  }
}
BENCHMARK(BM_Stage_Expand)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

/// Stage 3: translation to a DOL evaluation plan.
void BM_Stage_Translate(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  SyntheticFederationOptions options;
  options.n_databases = n;
  options.rows_per_table = 8;
  auto sys = BuildSyntheticFederation(options);
  if (!sys.ok()) {
    state.SkipWithError(sys.status().ToString().c_str());
    return;
  }
  auto input = msql::lang::MsqlParser::ParseOne(RetrievalQuery(n));
  msql::lang::Expander expander(&(*sys)->gdd());
  auto expansion = expander.Expand(*input->query);
  msql::translator::Translator translator(&(*sys)->auxiliary_directory(),
                                          &(*sys)->gdd());
  for (auto _ : state) {
    auto plan = translator.TranslateQuery(*expansion);
    if (!plan.ok()) state.SkipWithError(plan.status().ToString().c_str());
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_Stage_Translate)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

/// Full pipeline: parse → expand → translate → run through LAMs.
void BM_Pipeline_EndToEnd(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  SyntheticFederationOptions options;
  options.n_databases = n;
  options.rows_per_table = 64;
  auto sys = BuildSyntheticFederation(options);
  if (!sys.ok()) {
    state.SkipWithError(sys.status().ToString().c_str());
    return;
  }
  std::string query = RetrievalQuery(n);
  int64_t sim_micros = 0;
  int64_t messages = 0;
  int64_t iterations = 0;
  for (auto _ : state) {
    auto report = (*sys)->Execute(query);
    if (!report.ok() ||
        report->outcome != msql::core::GlobalOutcome::kSuccess) {
      state.SkipWithError("query failed");
      return;
    }
    sim_micros += report->run.makespan_micros;
    messages += report->run.messages;
    ++iterations;
  }
  state.counters["sim_ms"] = benchmark::Counter(
      static_cast<double>(sim_micros) / 1000.0 / iterations);
  state.counters["messages"] =
      benchmark::Counter(static_cast<double>(messages) / iterations);
}
BENCHMARK(BM_Pipeline_EndToEnd)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

/// Result-volume sensitivity: rows shipped per database.
void BM_Pipeline_ResultVolume(benchmark::State& state) {
  SyntheticFederationOptions options;
  options.n_databases = 4;
  options.rows_per_table = static_cast<int>(state.range(0));
  auto sys = BuildSyntheticFederation(options);
  if (!sys.ok()) {
    state.SkipWithError(sys.status().ToString().c_str());
    return;
  }
  std::string query = RetrievalQuery(4);
  int64_t sim_micros = 0;
  int64_t rows = 0;
  int64_t iterations = 0;
  for (auto _ : state) {
    auto report = (*sys)->Execute(query);
    if (!report.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    sim_micros += report->run.makespan_micros;
    rows += static_cast<int64_t>(report->multitable.TotalRows());
    ++iterations;
  }
  state.counters["sim_ms"] = benchmark::Counter(
      static_cast<double>(sim_micros) / 1000.0 / iterations);
  state.counters["rows"] =
      benchmark::Counter(static_cast<double>(rows) / iterations);
}
BENCHMARK(BM_Pipeline_ResultVolume)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

/// One traced n=4 end-to-end run, exported as Chrome trace JSON.
int WriteTrace(const std::string& path) {
  SyntheticFederationOptions options;
  options.n_databases = 4;
  options.rows_per_table = 64;
  auto sys = BuildSyntheticFederation(options);
  if (!sys.ok()) {
    std::fprintf(stderr, "federation bootstrap failed: %s\n",
                 sys.status().ToString().c_str());
    return 1;
  }
  (*sys)->environment().tracer().set_enabled(true);
  (*sys)->environment().metrics().set_enabled(true);
  auto report = (*sys)->Execute(RetrievalQuery(4));
  if (!report.ok()) {
    std::fprintf(stderr, "traced run failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  out << msql::obs::ExportChromeTrace((*sys)->environment().tracer());
  std::fprintf(stderr, "%zu spans written to %s — load in Perfetto\n",
               (*sys)->environment().tracer().spans().size(), path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!trace_out.empty()) {
    int status = WriteTrace(trace_out);
    if (status != 0) return status;
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
