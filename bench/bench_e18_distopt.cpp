// E18: cost-based distributed optimizer vs paper heuristics on a skewed
// federation. Two databases — `alpha.small` (a handful of rows) and
// `beta.big` (100x..1000x more rows) — are joined on a key column. The
// paper-heuristic path picks the coordinator alphabetically and ships
// the whole remote partial through the MDBS site; the cost-based path
// (after ANALYZE populates the statistics catalog) recognises the skew
// and installs a semi-join key filter at the remote site instead. The
// bench runs the same join both ways at several scales and compares
// simulated bytes moved and DOL makespan. Results go to
// BENCH_distopt.json.
//
// Usage: bench_e18_distopt [--quick] [--out FILE] [--rows N]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/mdbs_system.h"

namespace {

/// Skewed two-database federation: `alpha.small` holds `small_rows`
/// rows, `beta.big` holds `big_rows` rows keyed 0..big_rows-1.
msql::Result<std::unique_ptr<msql::core::MultidatabaseSystem>>
BuildSkewedPair(int small_rows, int big_rows) {
  auto sys = std::make_unique<msql::core::MultidatabaseSystem>();
  for (const char* svc : {"alpha_svc", "beta_svc"}) {
    MSQL_RETURN_IF_ERROR(sys->AddService(
        svc, std::string("site_") + svc,
        msql::relational::CapabilityProfile::IngresLike()));
  }
  MSQL_ASSIGN_OR_RETURN(auto* alpha, sys->GetEngine("alpha_svc"));
  MSQL_RETURN_IF_ERROR(alpha->CreateDatabase("alpha"));
  MSQL_RETURN_IF_ERROR(sys->RunLocalSql(
      "alpha_svc", "alpha", "CREATE TABLE small (k INTEGER, tag TEXT)"));
  std::string small_insert = "INSERT INTO small VALUES ";
  for (int i = 0; i < small_rows; ++i) {
    if (i > 0) small_insert += ", ";
    small_insert +=
        "(" + std::to_string(i) + ", 'tag" + std::to_string(i) + "')";
  }
  MSQL_RETURN_IF_ERROR(sys->RunLocalSql("alpha_svc", "alpha", small_insert));
  MSQL_ASSIGN_OR_RETURN(auto* beta, sys->GetEngine("beta_svc"));
  MSQL_RETURN_IF_ERROR(beta->CreateDatabase("beta"));
  MSQL_RETURN_IF_ERROR(sys->RunLocalSql(
      "beta_svc", "beta", "CREATE TABLE big (k INTEGER, v REAL)"));
  for (int start = 0; start < big_rows; start += 500) {
    std::string insert = "INSERT INTO big VALUES ";
    for (int i = start; i < std::min(start + 500, big_rows); ++i) {
      if (i > start) insert += ", ";
      insert += "(" + std::to_string(i) + ", " + std::to_string(i) + ".5)";
    }
    MSQL_RETURN_IF_ERROR(sys->RunLocalSql("beta_svc", "beta", insert));
  }
  for (const char* db : {"alpha", "beta"}) {
    auto inc = sys->Execute(
        "INCORPORATE SERVICE " + std::string(db) + "_svc SITE site_" + db +
        "_svc CONNECTMODE CONNECT COMMITMODE NOCOMMIT CREATE NOCOMMIT "
        "INSERT NOCOMMIT DROP NOCOMMIT");
    MSQL_RETURN_IF_ERROR(inc.status());
    auto imp = sys->Execute("IMPORT DATABASE " + std::string(db) +
                            " FROM SERVICE " + db + "_svc");
    MSQL_RETURN_IF_ERROR(imp.status());
  }
  return sys;
}

struct RunStats {
  int small_rows = 0;
  int big_rows = 0;
  bool cost_based = false;
  bool semi_join = false;
  double wall_ms = 0.0;
  int64_t bytes_moved = 0;
  int64_t makespan_micros = 0;
  size_t result_rows = 0;
};

bool RunOnce(int small_rows, int big_rows, bool cost_based, RunStats* out) {
  auto built = BuildSkewedPair(small_rows, big_rows);
  if (!built.ok()) {
    std::fprintf(stderr, "fixture: %s\n", built.status().ToString().c_str());
    return false;
  }
  auto sys = std::move(*built);
  sys->set_cost_based_optimizer(cost_based);
  if (cost_based) {
    for (const char* db : {"alpha", "beta"}) {
      auto analyzed = sys->Execute("ANALYZE DATABASE " + std::string(db));
      if (!analyzed.ok()) {
        std::fprintf(stderr, "ANALYZE %s: %s\n", db,
                     analyzed.status().ToString().c_str());
        return false;
      }
    }
  }

  const std::string sql =
      "USE alpha beta\n"
      "SELECT small.tag, big.v FROM alpha.small, beta.big "
      "WHERE small.k = big.k";
  const auto start = std::chrono::steady_clock::now();
  auto report = sys->Execute(sql);
  const auto stop = std::chrono::steady_clock::now();
  if (!report.ok()) {
    std::fprintf(stderr, "Execute: %s\n", report.status().ToString().c_str());
    return false;
  }
  if (report->outcome != msql::core::GlobalOutcome::kSuccess) {
    std::fprintf(stderr, "join did not commit\n");
    return false;
  }

  out->small_rows = small_rows;
  out->big_rows = big_rows;
  out->cost_based = cost_based;
  out->semi_join =
      report->cost_text.find("semi-join keys") != std::string::npos;
  out->wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  out->bytes_moved = static_cast<int64_t>(report->run.bytes);
  out->makespan_micros = report->run.makespan_micros;
  out->result_rows = report->join_result.rows.size();
  return true;
}

void Print(const RunStats& s) {
  std::printf(
      "cost_based=%-5s small=%-3d big=%-6d semi_join=%-5s rows=%-4zu "
      "bytes=%-9lld makespan=%9lldus wall=%7.1fms\n",
      s.cost_based ? "true" : "false", s.small_rows, s.big_rows,
      s.semi_join ? "true" : "false", s.result_rows,
      static_cast<long long>(s.bytes_moved),
      static_cast<long long>(s.makespan_micros), s.wall_ms);
}

void Emit(std::ostream& json, const RunStats& s, bool last) {
  json << "    {\"small_rows\": " << s.small_rows
       << ", \"big_rows\": " << s.big_rows
       << ", \"cost_based\": " << (s.cost_based ? "true" : "false")
       << ", \"semi_join\": " << (s.semi_join ? "true" : "false")
       << ", \"result_rows\": " << s.result_rows
       << ", \"bytes_moved\": " << s.bytes_moved
       << ", \"makespan_micros\": " << s.makespan_micros
       << ", \"wall_ms\": " << s.wall_ms << "}" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_distopt.json";
  int rows = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc)
      rows = std::atoi(argv[++i]);
  }
  constexpr int kSmallRows = 5;
  // 500 sits below the crossover (two extra semi-join hops cost more
  // than shipping ~9KB whole), so the optimizer keeps ship-whole there.
  std::vector<int> scales = {500, 5000, 20000};
  if (quick) scales = {5000};
  if (rows > 0) scales = {rows};

  std::vector<RunStats> stats;
  for (int big_rows : scales) {
    RunStats heur;
    RunStats cost;
    if (!RunOnce(kSmallRows, big_rows, /*cost_based=*/false, &heur)) return 1;
    if (!RunOnce(kSmallRows, big_rows, /*cost_based=*/true, &cost)) return 1;
    Print(heur);
    Print(cost);
    if (cost.result_rows != heur.result_rows) {
      std::fprintf(stderr, "answer mismatch: %zu vs %zu rows\n",
                   cost.result_rows, heur.result_rows);
      return 1;
    }
    const double byte_ratio =
        heur.bytes_moved > 0
            ? static_cast<double>(cost.bytes_moved) / heur.bytes_moved
            : 1.0;
    std::printf("  -> bytes ratio %.3f, makespan ratio %.3f\n", byte_ratio,
                heur.makespan_micros > 0
                    ? static_cast<double>(cost.makespan_micros) /
                          heur.makespan_micros
                    : 1.0);
    stats.push_back(heur);
    stats.push_back(cost);
  }

  std::ofstream json(out_path);
  json << "{\n  \"bench\": \"e18_distopt\",\n  \"runs\": [\n";
  for (size_t i = 0; i < stats.size(); ++i) {
    Emit(json, stats[i], i + 1 == stats.size());
  }
  json << "  ]\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
