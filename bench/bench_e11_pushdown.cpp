// E11 (ablation): predicate pushdown in multidatabase-join
// decomposition. With pushdown, selective single-database conjuncts run
// at the sources and only matching rows ship to the coordinator;
// without it, whole tables ship and filter there. The gap in bytes and
// simulated time quantifies the "data flow control" part of the
// paper's optimization claim.
#include <benchmark/benchmark.h>

#include "core/fixtures.h"
#include "core/mdbs_system.h"
#include "dol/engine.h"
#include "msql/decomposer.h"
#include "relational/sql/parser.h"
#include "translator/translator.h"

namespace {

using msql::core::BuildSyntheticFederation;
using msql::core::SyntheticFederationOptions;

void RunJoin(benchmark::State& state, bool push_down) {
  int rows = static_cast<int>(state.range(0));
  SyntheticFederationOptions options;
  options.n_databases = 2;
  options.rows_per_table = rows;
  auto sys = BuildSyntheticFederation(options);
  if (!sys.ok()) {
    state.SkipWithError(sys.status().ToString().c_str());
    return;
  }
  // Selective local filters on both sides + a cross-database predicate.
  auto stmt = msql::relational::ParseSql(
      "SELECT a.fno, b.fno FROM db0.flight0 a, db1.flight1 b "
      "WHERE a.source = 'Houston' AND b.source = 'Houston' "
      "AND a.rate < b.rate");
  if (!stmt.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  msql::lang::Decomposer decomposer(&(*sys)->gdd());
  decomposer.set_push_down_conjuncts(push_down);
  auto decomposition = decomposer.Decompose(
      static_cast<const msql::relational::SelectStmt&>(**stmt));
  if (!decomposition.ok()) {
    state.SkipWithError(decomposition.status().ToString().c_str());
    return;
  }
  msql::translator::Translator translator(&(*sys)->auxiliary_directory(),
                                          &(*sys)->gdd());
  auto plan = translator.TranslateDecomposedJoin(*decomposition);
  if (!plan.ok()) {
    state.SkipWithError(plan.status().ToString().c_str());
    return;
  }
  int64_t sim_micros = 0;
  int64_t bytes = 0;
  int64_t iterations = 0;
  for (auto _ : state) {
    msql::dol::DolEngine engine(&(*sys)->environment());
    auto run = engine.Run(plan->program);
    if (!run.ok() || run->dol_status != 0) {
      state.SkipWithError("join failed");
      return;
    }
    sim_micros += run->makespan_micros;
    bytes += run->bytes;
    ++iterations;
  }
  state.counters["sim_ms"] = benchmark::Counter(
      static_cast<double>(sim_micros) / 1000.0 / iterations);
  state.counters["kb_moved"] = benchmark::Counter(
      static_cast<double>(bytes) / 1024.0 / iterations);
  state.counters["rows"] = rows;
}

void BM_Join_WithPushdown(benchmark::State& state) {
  RunJoin(state, /*push_down=*/true);
}
void BM_Join_NoPushdown(benchmark::State& state) {
  RunJoin(state, /*push_down=*/false);
}

BENCHMARK(BM_Join_WithPushdown)->Arg(32)->Arg(128)->Arg(512);
BENCHMARK(BM_Join_NoPushdown)->Arg(32)->Arg(128)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
