#include "obs/health.h"

#include <algorithm>
#include <cstdio>

namespace msql::obs {

std::string_view HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kUnreachable: return "unreachable";
  }
  return "unknown";
}

void SiteHealth::Record(bool ok, bool timed_out, bool faulted,
                        int64_t latency_micros, int64_t queue_micros) {
  ++attempts_;
  if (queue_micros > 0) {
    ++queue_waits_;
    queue_delay_.Observe(queue_micros);
  }
  if (!ok) ++failures_;
  if (timed_out) ++timeouts_;
  if (faulted) ++faults_;
  consecutive_failures_ = ok ? 0 : consecutive_failures_ + 1;
  latency_.Observe(latency_micros);
  window_failed_[static_cast<size_t>(window_next_)] = !ok;
  window_next_ = (window_next_ + 1) % kWindow;
  window_size_ = std::min(window_size_ + 1, kWindow);
}

int SiteHealth::window_attempts() const { return window_size_; }

int SiteHealth::window_failures() const {
  int failed = 0;
  for (int i = 0; i < window_size_; ++i) {
    if (window_failed_[static_cast<size_t>(i)]) ++failed;
  }
  return failed;
}

HealthState SiteHealth::state() const {
  if (consecutive_failures_ >= kUnreachableAfter) {
    return HealthState::kUnreachable;
  }
  if (window_failures() > 0) return HealthState::kDegraded;
  return HealthState::kHealthy;
}

void HealthRegistry::Record(std::string_view service, std::string_view site,
                            bool ok, bool timed_out, bool faulted,
                            int64_t latency_micros, int64_t queue_micros) {
  auto it = sites_.find(service);
  if (it == sites_.end()) {
    it = sites_.emplace(std::string(service), Entry{}).first;
    it->second.site = std::string(site);
  }
  it->second.health.Record(ok, timed_out, faulted, latency_micros,
                           queue_micros);
}

const SiteHealth* HealthRegistry::Get(std::string_view service) const {
  auto it = sites_.find(service);
  return it == sites_.end() ? nullptr : &it->second.health;
}

std::string_view HealthRegistry::SiteOf(std::string_view service) const {
  auto it = sites_.find(service);
  return it == sites_.end() ? std::string_view() : it->second.site;
}

std::string HealthRegistry::RenderText() const {
  std::string out =
      "service          site             state        att  fail  t/o  flt"
      "  win(fail/att)  p50_us  p95_us  p99_us\n";
  if (sites_.empty()) {
    out += "(no calls recorded)\n";
    return out;
  }
  for (const auto& [service, entry] : sites_) {
    const SiteHealth& h = entry.health;
    char window[24];
    std::snprintf(window, sizeof(window), "%d/%d", h.window_failures(),
                  h.window_attempts());
    char line[256];
    std::snprintf(
        line, sizeof(line),
        "%-16s %-16s %-11s %5lld %5lld %4lld %4lld  %13s %7lld %7lld %7lld\n",
        service.c_str(), entry.site.c_str(),
        std::string(HealthStateName(h.state())).c_str(),
        static_cast<long long>(h.attempts()),
        static_cast<long long>(h.failures()),
        static_cast<long long>(h.timeouts()),
        static_cast<long long>(h.faults()), window,
        static_cast<long long>(h.latency().Quantile(0.5)),
        static_cast<long long>(h.latency().Quantile(0.95)),
        static_cast<long long>(h.latency().Quantile(0.99)));
    out += line;
  }
  bool any_queued = false;
  for (const auto& [service, entry] : sites_) {
    if (entry.health.queue_waits() > 0) any_queued = true;
  }
  if (any_queued) {
    out += "queue delay (admission wait at capacity-limited services):\n";
    for (const auto& [service, entry] : sites_) {
      const SiteHealth& h = entry.health;
      if (h.queue_waits() == 0) continue;
      char line[160];
      std::snprintf(line, sizeof(line),
                    "  %-16s waits %5lld  p50_us %7lld  p95_us %7lld  "
                    "p99_us %7lld\n",
                    service.c_str(),
                    static_cast<long long>(h.queue_waits()),
                    static_cast<long long>(h.queue_delay().Quantile(0.5)),
                    static_cast<long long>(h.queue_delay().Quantile(0.95)),
                    static_cast<long long>(h.queue_delay().Quantile(0.99)));
      out += line;
    }
  }
  return out;
}

}  // namespace msql::obs
