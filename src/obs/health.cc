#include "obs/health.h"

#include <algorithm>
#include <cstdio>

#include "obs/json_util.h"

namespace msql::obs {

std::string_view HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kUnreachable: return "unreachable";
  }
  return "unknown";
}

void SiteHealth::Record(bool ok, bool timed_out, bool faulted,
                        int64_t latency_micros, int64_t queue_micros) {
  ++attempts_;
  if (queue_micros > 0) {
    ++queue_waits_;
    queue_delay_.Observe(queue_micros);
  }
  if (!ok) ++failures_;
  if (timed_out) ++timeouts_;
  if (faulted) ++faults_;
  consecutive_failures_ = ok ? 0 : consecutive_failures_ + 1;
  latency_.Observe(latency_micros);
  window_failed_[static_cast<size_t>(window_next_)] = !ok;
  window_next_ = (window_next_ + 1) % kWindow;
  window_size_ = std::min(window_size_ + 1, kWindow);
}

int SiteHealth::window_attempts() const { return window_size_; }

int SiteHealth::window_failures() const {
  int failed = 0;
  for (int i = 0; i < window_size_; ++i) {
    if (window_failed_[static_cast<size_t>(i)]) ++failed;
  }
  return failed;
}

HealthState SiteHealth::state() const {
  if (consecutive_failures_ >= kUnreachableAfter) {
    return HealthState::kUnreachable;
  }
  if (window_failures() > 0) return HealthState::kDegraded;
  return HealthState::kHealthy;
}

void HealthRegistry::Record(std::string_view service, std::string_view site,
                            bool ok, bool timed_out, bool faulted,
                            int64_t latency_micros, int64_t queue_micros) {
  auto it = sites_.find(service);
  if (it == sites_.end()) {
    it = sites_.emplace(std::string(service), Entry{}).first;
    it->second.site = std::string(site);
  }
  it->second.health.Record(ok, timed_out, faulted, latency_micros,
                           queue_micros);
}

const SiteHealth* HealthRegistry::Get(std::string_view service) const {
  auto it = sites_.find(service);
  return it == sites_.end() ? nullptr : &it->second.health;
}

std::string_view HealthRegistry::SiteOf(std::string_view service) const {
  auto it = sites_.find(service);
  return it == sites_.end() ? std::string_view() : it->second.site;
}

HealthSnapshot HealthRegistry::Snapshot() const {
  HealthSnapshot snapshot;
  snapshot.services.reserve(sites_.size());
  for (const auto& [service, entry] : sites_) {
    const SiteHealth& h = entry.health;
    HealthSnapshot::Service s;
    s.service = service;
    s.site = entry.site;
    s.state = h.state();
    s.attempts = h.attempts();
    s.failures = h.failures();
    s.timeouts = h.timeouts();
    s.faults = h.faults();
    s.window_failures = h.window_failures();
    s.window_attempts = h.window_attempts();
    s.latency_p50 = h.latency().Quantile(0.5);
    s.latency_p95 = h.latency().Quantile(0.95);
    s.latency_p99 = h.latency().Quantile(0.99);
    s.queue_waits = h.queue_waits();
    s.queue_p50 = h.queue_delay().Quantile(0.5);
    s.queue_p95 = h.queue_delay().Quantile(0.95);
    s.queue_p99 = h.queue_delay().Quantile(0.99);
    if (s.state == HealthState::kDegraded) ++snapshot.degraded;
    if (s.state == HealthState::kUnreachable) ++snapshot.unreachable;
    snapshot.services.push_back(std::move(s));
  }
  return snapshot;
}

std::string HealthRegistry::RenderText() const {
  const HealthSnapshot snapshot = Snapshot();
  std::string out =
      "service          site             state        att  fail  t/o  flt"
      "  win(fail/att)  p50_us  p95_us  p99_us\n";
  if (snapshot.services.empty()) {
    out += "(no calls recorded)\n";
    return out;
  }
  for (const HealthSnapshot::Service& s : snapshot.services) {
    char window[24];
    std::snprintf(window, sizeof(window), "%d/%d", s.window_failures,
                  s.window_attempts);
    char line[256];
    std::snprintf(
        line, sizeof(line),
        "%-16s %-16s %-11s %5lld %5lld %4lld %4lld  %13s %7lld %7lld %7lld\n",
        s.service.c_str(), s.site.c_str(),
        std::string(HealthStateName(s.state)).c_str(),
        static_cast<long long>(s.attempts),
        static_cast<long long>(s.failures),
        static_cast<long long>(s.timeouts),
        static_cast<long long>(s.faults), window,
        static_cast<long long>(s.latency_p50),
        static_cast<long long>(s.latency_p95),
        static_cast<long long>(s.latency_p99));
    out += line;
  }
  bool any_queued = false;
  for (const HealthSnapshot::Service& s : snapshot.services) {
    if (s.queue_waits > 0) any_queued = true;
  }
  if (any_queued) {
    out += "queue delay (admission wait at capacity-limited services):\n";
    for (const HealthSnapshot::Service& s : snapshot.services) {
      if (s.queue_waits == 0) continue;
      char line[160];
      std::snprintf(line, sizeof(line),
                    "  %-16s waits %5lld  p50_us %7lld  p95_us %7lld  "
                    "p99_us %7lld\n",
                    s.service.c_str(),
                    static_cast<long long>(s.queue_waits),
                    static_cast<long long>(s.queue_p50),
                    static_cast<long long>(s.queue_p95),
                    static_cast<long long>(s.queue_p99));
      out += line;
    }
  }
  return out;
}

std::string HealthRegistry::RenderJson() const {
  const HealthSnapshot snapshot = Snapshot();
  std::string out = "{\"services\":[";
  for (size_t i = 0; i < snapshot.services.size(); ++i) {
    if (i > 0) out += ",";
    const HealthSnapshot::Service& s = snapshot.services[i];
    out += "{\"service\":";
    AppendJsonString(&out, s.service);
    out += ",\"site\":";
    AppendJsonString(&out, s.site);
    out += ",\"state\":";
    AppendJsonString(&out, HealthStateName(s.state));
    out += ",\"attempts\":" + std::to_string(s.attempts);
    out += ",\"failures\":" + std::to_string(s.failures);
    out += ",\"timeouts\":" + std::to_string(s.timeouts);
    out += ",\"faults\":" + std::to_string(s.faults);
    out += ",\"window_failures\":" + std::to_string(s.window_failures);
    out += ",\"window_attempts\":" + std::to_string(s.window_attempts);
    out += ",\"latency_p50_us\":" + std::to_string(s.latency_p50);
    out += ",\"latency_p95_us\":" + std::to_string(s.latency_p95);
    out += ",\"latency_p99_us\":" + std::to_string(s.latency_p99);
    out += ",\"queue_waits\":" + std::to_string(s.queue_waits);
    out += ",\"queue_p50_us\":" + std::to_string(s.queue_p50);
    out += ",\"queue_p95_us\":" + std::to_string(s.queue_p95);
    out += ",\"queue_p99_us\":" + std::to_string(s.queue_p99);
    out += "}";
  }
  out += "],\"degraded\":" + std::to_string(snapshot.degraded);
  out += ",\"unreachable\":" + std::to_string(snapshot.unreachable);
  out += "}";
  return out;
}

}  // namespace msql::obs
