#ifndef MSQL_OBS_TRACE_H_
#define MSQL_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace msql::obs {

/// One traced interval of federation work.
///
/// Every span carries *two* clocks: the simulated clock the netsim
/// timeline runs on (what the paper's cost model is about) and the host
/// monotonic clock (what the front end actually burns). The simulated
/// times are deterministic under a fixed seed; host times are not, so
/// exporters omit them unless asked (golden-trace tests rely on this).
struct Span {
  uint64_t id = 0;
  /// Enclosing span (0 = root).
  uint64_t parent = 0;
  std::string name;
  /// Taxonomy bucket: "frontend", "dol", "dol.task", "2pc", "channel",
  /// "rpc", "net", "lam" (DESIGN.md §9).
  std::string category;
  /// Simulated interval (absolute: run-relative time + the tracer's
  /// session offset).
  int64_t sim_start_micros = 0;
  int64_t sim_end_micros = 0;
  /// Host monotonic interval (steady_clock nanoseconds).
  int64_t host_start_nanos = 0;
  int64_t host_end_nanos = 0;
  /// Ordered key → value notes (attempt=2, fault=lost_response, ...).
  std::vector<std::pair<std::string, std::string>> annotations;

  /// Annotation value for `key`, or "" when absent.
  std::string_view Find(std::string_view key) const;
};

/// Span collector threaded through the whole federation pipeline.
///
/// Disabled by default: every method is a cheap early-out (the null
/// sink), so instrumented hot paths cost one predictable branch. All
/// execution is single-threaded, so the current-parent stack is enough
/// to nest spans across module boundaries without passing ids around:
/// a ScopedSpan pushes itself and everything started inside it becomes
/// its child.
class Tracer {
 public:
  Tracer() = default;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Drops all collected spans and resets ids, stack and offset.
  void Clear();

  /// Added to every recorded simulated time. The MDBS advances this by
  /// each run's makespan so consecutive inputs of one session lay out
  /// sequentially instead of piling up at sim time 0.
  void set_sim_offset_micros(int64_t offset) { sim_offset_micros_ = offset; }
  int64_t sim_offset_micros() const { return sim_offset_micros_; }

  /// Opens a span starting at simulated time `sim_start_micros`
  /// (run-relative; the offset is applied here). Parent is the top of
  /// the parent stack. Returns the span id, 0 when disabled.
  uint64_t StartSpan(std::string_view name, std::string_view category,
                     int64_t sim_start_micros);
  /// Closes `id` at simulated time `sim_end_micros` (run-relative).
  void EndSpan(uint64_t id, int64_t sim_end_micros);
  void Annotate(uint64_t id, std::string_view key, std::string_view value);
  void Annotate(uint64_t id, std::string_view key, int64_t value);

  void PushParent(uint64_t id);
  void PopParent();
  uint64_t current_parent() const {
    return parent_stack_.empty() ? 0 : parent_stack_.back();
  }

  /// Replaces the parent stack with `stack` and returns the previous
  /// one. The concurrent scheduler swaps each session's saved span
  /// context in around every resume (and out after), so spans recorded
  /// by interleaved sessions nest under their own session's spans even
  /// though the tracer itself is single-stacked.
  std::vector<uint64_t> ExchangeParentStack(std::vector<uint64_t> stack) {
    std::swap(parent_stack_, stack);
    return stack;
  }

  const std::vector<Span>& spans() const { return spans_; }
  /// The span with `id`, or nullptr (ids are 1-based indices).
  const Span* FindSpan(uint64_t id) const;

 private:
  Span* Mutable(uint64_t id);

  bool enabled_ = false;
  int64_t sim_offset_micros_ = 0;
  uint64_t next_id_ = 1;
  std::vector<Span> spans_;
  std::vector<uint64_t> parent_stack_;
};

/// RAII span: starts on construction (pushing itself as the current
/// parent), ends on destruction. Callers that know the simulated end
/// time set it with `set_sim_end` / `End`; otherwise the span closes at
/// its own start time (frontend phases live on the host clock only).
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string_view name,
             std::string_view category, int64_t sim_start_micros = 0);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  uint64_t id() const { return id_; }
  bool active() const { return tracer_ != nullptr && id_ != 0; }

  void Annotate(std::string_view key, std::string_view value);
  void Annotate(std::string_view key, int64_t value);

  /// Records the simulated end time the destructor will close with.
  void set_sim_end(int64_t sim_end_micros) { sim_end_micros_ = sim_end_micros; }
  /// Closes the span now (destructor becomes a no-op).
  void End(int64_t sim_end_micros);
  void End() { End(sim_end_micros_); }

 private:
  Tracer* tracer_ = nullptr;
  uint64_t id_ = 0;
  int64_t sim_end_micros_ = 0;
};

/// One named counter series rendered as a Perfetto counter track:
/// (simulated timestamp, value) points in ascending time order. The
/// monitor exports its per-window series this way so SLO signals line
/// up under the span lanes in the same trace.
struct CounterTrack {
  std::string name;
  std::vector<std::pair<int64_t, double>> points;
};

/// Options of the Chrome trace-event exporter.
struct ChromeTraceOptions {
  /// Include host-clock durations as args ("host_us"). Off by default:
  /// host times vary run to run and would break golden traces.
  bool include_host_time = false;
  /// Counter tracks appended after the span events (ph:"C", pid 1).
  std::vector<CounterTrack> counter_tracks;
};

/// Renders the collected spans as Chrome trace-event JSON (one complete
/// "X" event per span on the simulated clock), loadable in Perfetto /
/// chrome://tracing. Tracks: the coordinator is tid 1; every "dol.task"
/// span opens its own tid so parallel tasks render as parallel lanes,
/// and descendants inherit their task's lane. Deterministic for a fixed
/// seed (creation order, sim clock only) unless host time is included.
std::string ExportChromeTrace(const Tracer& tracer,
                              const ChromeTraceOptions& options = {});

/// Renders the spans under `root` (0 = all roots) as an indented text
/// tree with simulated intervals and annotations.
std::string ExportTextTree(const Tracer& tracer, uint64_t root = 0);

}  // namespace msql::obs

#endif  // MSQL_OBS_TRACE_H_
