#include "obs/metrics.h"

#include <algorithm>

namespace msql::obs {

namespace {

/// Bucket index of `value`: 0 for 0, else 1 + floor(log2(value)),
/// clamped to the last bucket.
int BucketOf(int64_t value) {
  if (value <= 0) return 0;
  int bucket = 1;
  while (value > 1 && bucket < Histogram::kBuckets - 1) {
    value >>= 1;
    ++bucket;
  }
  return bucket;
}

/// Inclusive upper bound of bucket `i` (0 for bucket 0).
int64_t BucketUpper(int i) {
  if (i <= 0) return 0;
  if (i >= 63) return INT64_MAX;
  return (int64_t{1} << i) - 1;
}

}  // namespace

void Histogram::Observe(int64_t value) {
  value = std::max<int64_t>(value, 0);
  buckets_[static_cast<size_t>(BucketOf(value))] += 1;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  ++count_;
  sum_ += value;
}

int64_t Histogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(count_ - 1));
  int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<size_t>(i)];
    if (seen > rank) return std::min(BucketUpper(i), max_);
  }
  return max_;
}

void MetricsRegistry::Clear() {
  counters_.clear();
  histograms_.clear();
}

void MetricsRegistry::Inc(std::string_view name, int64_t delta) {
  if (!enabled_) return;
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::Observe(std::string_view name, int64_t value) {
  if (!enabled_) return;
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  it->second.Observe(value);
}

int64_t MetricsRegistry::Get(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

const Histogram* MetricsRegistry::GetHistogram(std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string MetricsRegistry::Dump() const {
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += name + " = " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += name + ": count=" + std::to_string(h.count()) +
           " sum=" + std::to_string(h.sum()) +
           " min=" + std::to_string(h.min()) +
           " p50=" + std::to_string(h.Quantile(0.5)) +
           " p95=" + std::to_string(h.Quantile(0.95)) +
           " p99=" + std::to_string(h.Quantile(0.99)) +
           " max=" + std::to_string(h.max()) + "\n";
  }
  return out;
}

}  // namespace msql::obs
