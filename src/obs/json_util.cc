#include "obs/json_util.h"

#include <cmath>
#include <cstdint>
#include <cstdio>

namespace msql::obs {

void AppendJsonString(std::string* out, std::string_view text) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string FormatMetricNumber(double value) {
  if (!std::isfinite(value)) return "0";
  if (value == std::floor(value) && std::fabs(value) < 9e15) {
    return std::to_string(static_cast<int64_t>(value));
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.4f", value);
  return buf;
}

}  // namespace msql::obs
