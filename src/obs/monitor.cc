#include "obs/monitor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/json_util.h"

namespace msql::obs {

namespace {

/// Dashboard tables show at most this many recent windows / alerts.
constexpr size_t kDashboardWindows = 12;
constexpr size_t kDashboardAlerts = 8;

/// Relative floor under the EWMA deviation so a series that has been
/// perfectly flat (deviation 0) still needs a material move — not an
/// infinitesimal one — to fire.
constexpr double kEwmaRelativeFloor = 0.05;
constexpr double kEwmaAbsoluteFloor = 1e-9;

}  // namespace

std::string AlertEvent::ToJson() const {
  std::string out = "{\"event\":\"alert\"";
  out += ",\"at_micros\":" + std::to_string(at_micros);
  out += ",\"window\":" + std::to_string(window_seq);
  out += ",\"rule\":";
  AppendJsonString(&out, rule);
  out += ",\"kind\":";
  AppendJsonString(&out, kind);
  out += ",\"severity\":";
  AppendJsonString(&out, severity);
  out += fired ? ",\"fired\":true" : ",\"fired\":false";
  out += ",\"value\":" + FormatMetricNumber(value);
  out += ",\"limit\":" + FormatMetricNumber(limit);
  out += ",\"detail\":";
  AppendJsonString(&out, detail);
  out += "}";
  return out;
}

Monitor::Monitor(MonitorConfig config, const MetricsRegistry* metrics,
                 const HealthRegistry* health)
    : config_(config), metrics_(metrics), health_(health) {
  if (config_.window_micros <= 0) config_.window_micros = 1;
  if (config_.capacity <= 0) config_.capacity = 1;
  if (config_.budget_horizon_windows <= 0) config_.budget_horizon_windows = 1;
  rules_[kP99Latency] = Rule{};
  rules_[kP99Latency].name = "p99_latency_us";
  rules_[kP99Latency].enabled = config_.slo_p99_latency_micros > 0;
  rules_[kP99Latency].limit =
      static_cast<double>(config_.slo_p99_latency_micros);
  rules_[kErrorRate].name = "error_rate";
  rules_[kErrorRate].enabled = config_.slo_max_error_rate >= 0.0;
  rules_[kErrorRate].limit = config_.slo_max_error_rate;
  rules_[kDeadlocks].name = "deadlock_victims";
  rules_[kDeadlocks].enabled = config_.slo_max_deadlock_victims >= 0;
  rules_[kDeadlocks].limit =
      static_cast<double>(config_.slo_max_deadlock_victims);
  rules_[kPoolHitRate].name = "pool_hit_rate";
  rules_[kPoolHitRate].enabled = config_.slo_min_pool_hit_rate >= 0.0;
  rules_[kPoolHitRate].limit = config_.slo_min_pool_hit_rate;
  rules_[kPoolHitRate].upper_bound = false;
  rules_[kSitesReachable].name = "sites_unreachable";
  rules_[kSitesReachable].enabled = config_.slo_sites_reachable;
  rules_[kSitesReachable].limit = 0.0;
  ewma_.push_back(EwmaRule{});
  ewma_.back().name = "p99_latency_us";
  ewma_.push_back(EwmaRule{});
  ewma_.back().name = "error_rate";
}

void Monitor::Reset(int64_t start_micros) {
  window_start_ = start_micros;
  next_seq_ = 1;
  baselined_ = false;
  counters_before_.clear();
  acc_finished_ = acc_ok_ = acc_error_ = 0;
  acc_deadlock_ = acc_timeout_ = acc_shed_ = 0;
  acc_latency_ = Histogram{};
  gauges_.clear();
  windows_.clear();
  alerts_.clear();
  for (Rule& rule : rules_) {
    rule.last_value = 0.0;
    rule.horizon.clear();
    rule.violations_in_horizon = 0;
    rule.total_violations = 0;
    rule.threshold_fired = false;
    rule.budget_state = "ok";
  }
  for (EwmaRule& rule : ewma_) {
    rule.mean = 0.0;
    rule.deviation = 0.0;
    rule.samples = 0;
    rule.fired = false;
  }
  shedding_ = false;
  clean_streak_ = 0;
  shed_engagements_ = 0;
}

void Monitor::RecordSession(const SessionSample& sample) {
  AdvanceTo(sample.finish_micros);
  ++acc_finished_;
  if (sample.ok) {
    ++acc_ok_;
  } else {
    ++acc_error_;
  }
  if (sample.deadlock_victim) ++acc_deadlock_;
  if (sample.lock_timeout) ++acc_timeout_;
  if (sample.was_shed) ++acc_shed_;
  acc_latency_.Observe(std::max<int64_t>(0, sample.makespan_micros));
}

void Monitor::SetGauge(std::string_view name, double value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void Monitor::AdvanceTo(int64_t now) {
  while (NeedsSample(now)) {
    CloseWindow(window_start_ + config_.window_micros);
  }
}

void Monitor::Flush(int64_t now) {
  AdvanceTo(now);
  if (now > window_start_ && acc_finished_ > 0) CloseWindow(now);
}

int Monitor::allowed_in_horizon() const {
  const double allowed =
      config_.slo_budget_fraction *
      static_cast<double>(config_.budget_horizon_windows);
  return std::max(1, static_cast<int>(allowed));
}

void Monitor::CloseWindow(int64_t end_micros) {
  MonitorWindow w;
  w.seq = next_seq_++;
  w.start_micros = window_start_;
  w.end_micros = end_micros;
  window_start_ = end_micros;

  w.sessions_finished = acc_finished_;
  w.sessions_ok = acc_ok_;
  w.sessions_error = acc_error_;
  w.deadlock_victims = acc_deadlock_;
  w.lock_timeouts = acc_timeout_;
  w.sessions_shed = acc_shed_;
  if (acc_finished_ > 0) {
    w.p50_latency_micros = acc_latency_.Quantile(0.5);
    w.p99_latency_micros = acc_latency_.Quantile(0.99);
    w.error_rate = static_cast<double>(acc_error_) /
                   static_cast<double>(acc_finished_);
  }
  acc_finished_ = acc_ok_ = acc_error_ = 0;
  acc_deadlock_ = acc_timeout_ = acc_shed_ = 0;
  acc_latency_ = Histogram{};

  if (metrics_ != nullptr) {
    auto after = metrics_->CounterSnapshot();
    if (baselined_) {
      for (const auto& [name, value] : after) {
        auto it = counters_before_.find(name);
        const int64_t before =
            it == counters_before_.end() ? 0 : it->second;
        if (value != before) w.counter_deltas[name] = value - before;
      }
    }
    counters_before_ = std::move(after);
    baselined_ = true;
    auto delta = [&w](const char* name) {
      auto it = w.counter_deltas.find(name);
      return it == w.counter_deltas.end() ? 0 : it->second;
    };
    w.page_reads = delta("storage.page_reads");
    w.page_writes = delta("storage.page_writes");
    w.evictions = delta("storage.evictions");
    w.pin_hits = delta("storage.pin_hits");
  }
  const int64_t pool_traffic = w.pin_hits + w.page_reads;
  if (pool_traffic > 0) {
    w.pool_hit_rate =
        static_cast<double>(w.pin_hits) / static_cast<double>(pool_traffic);
  }

  if (health_ != nullptr) {
    const HealthSnapshot snapshot = health_->Snapshot();
    w.sites_total = static_cast<int>(snapshot.services.size());
    w.sites_degraded = snapshot.degraded;
    w.sites_unreachable = snapshot.unreachable;
  }
  w.gauges = std::map<std::string, double>(gauges_.begin(), gauges_.end());

  const bool empty_window = w.sessions_finished == 0;
  EvaluateRule(rules_[kP99Latency],
               static_cast<double>(w.p99_latency_micros), empty_window, w);
  EvaluateRule(rules_[kErrorRate], w.error_rate, empty_window, w);
  EvaluateRule(rules_[kDeadlocks],
               static_cast<double>(w.deadlock_victims), false, w);
  EvaluateRule(rules_[kPoolHitRate], w.pool_hit_rate, pool_traffic == 0, w);
  EvaluateRule(rules_[kSitesReachable],
               static_cast<double>(w.sites_unreachable), health_ == nullptr,
               w);
  EvaluateEwma(ewma_[0], static_cast<double>(w.p99_latency_micros),
               empty_window, w);
  EvaluateEwma(ewma_[1], w.error_rate, empty_window, w);

  bool any_violation = false;
  for (const Rule& rule : rules_) {
    if (!rule.horizon.empty() && rule.horizon.back()) any_violation = true;
  }
  UpdateShedState(w, any_violation);
  w.shedding = shedding_;

  windows_.push_back(std::move(w));
  while (windows_.size() > static_cast<size_t>(config_.capacity)) {
    windows_.pop_front();
  }
}

void Monitor::EvaluateRule(Rule& rule, double value, bool skipped,
                           const MonitorWindow& window) {
  if (!skipped) rule.last_value = value;
  const bool violated =
      rule.enabled && !skipped &&
      (rule.upper_bound ? value > rule.limit : value < rule.limit);
  rule.horizon.push_back(violated);
  if (violated) {
    ++rule.violations_in_horizon;
    ++rule.total_violations;
  }
  while (rule.horizon.size() >
         static_cast<size_t>(config_.budget_horizon_windows)) {
    if (rule.horizon.front()) --rule.violations_in_horizon;
    rule.horizon.pop_front();
  }
  if (!rule.enabled) return;

  if (violated && !rule.threshold_fired) {
    rule.threshold_fired = true;
    AlertEvent event;
    event.at_micros = window.end_micros;
    event.window_seq = window.seq;
    event.rule = "slo." + rule.name;
    event.kind = "threshold";
    event.severity = "warn";
    event.fired = true;
    event.value = value;
    event.limit = rule.limit;
    event.detail = rule.name + (rule.upper_bound ? " above " : " below ") +
                   FormatMetricNumber(rule.limit) + " in window " +
                   std::to_string(window.seq);
    Emit(std::move(event));
  } else if (!violated && !skipped && rule.threshold_fired) {
    rule.threshold_fired = false;
    AlertEvent event;
    event.at_micros = window.end_micros;
    event.window_seq = window.seq;
    event.rule = "slo." + rule.name;
    event.kind = "threshold";
    event.severity = "info";
    event.fired = false;
    event.value = value;
    event.limit = rule.limit;
    event.detail = rule.name + " back within slo";
    Emit(std::move(event));
  }

  const int allowed = allowed_in_horizon();
  std::string state = "ok";
  if (rule.violations_in_horizon > allowed) {
    state = "exhausted";
  } else if (rule.violations_in_horizon > 0) {
    state = "burning";
  }
  if (state != rule.budget_state) {
    AlertEvent event;
    event.at_micros = window.end_micros;
    event.window_seq = window.seq;
    event.rule = "budget." + rule.name;
    event.kind = "budget";
    event.severity = state == "exhausted" ? "critical"
                     : state == "burning" ? "warn"
                                          : "info";
    event.fired = state != "ok";
    event.value = static_cast<double>(rule.violations_in_horizon);
    event.limit = static_cast<double>(allowed);
    event.detail = "error budget " + state + ": " +
                   std::to_string(rule.violations_in_horizon) + " of " +
                   std::to_string(allowed) + " allowed violating windows in " +
                   std::to_string(config_.budget_horizon_windows) +
                   "-window horizon";
    rule.budget_state = state;
    Emit(std::move(event));
  }
}

void Monitor::EvaluateEwma(EwmaRule& rule, double value, bool skipped,
                           const MonitorWindow& window) {
  if (skipped) return;
  if (rule.samples == 0) {
    rule.mean = value;
    rule.deviation = 0.0;
    rule.samples = 1;
    return;
  }
  const double diff = std::fabs(value - rule.mean);
  const double floor = std::max(std::fabs(rule.mean) * kEwmaRelativeFloor,
                                kEwmaAbsoluteFloor);
  const double threshold =
      config_.ewma_drift_factor * std::max(rule.deviation, floor);
  if (rule.samples >= config_.ewma_min_windows) {
    if (diff > threshold && !rule.fired) {
      rule.fired = true;
      AlertEvent event;
      event.at_micros = window.end_micros;
      event.window_seq = window.seq;
      event.rule = "ewma." + rule.name;
      event.kind = "ewma";
      event.severity = "warn";
      event.fired = true;
      event.value = value;
      event.limit = rule.mean;
      event.detail = rule.name + " drifted from ewma mean " +
                     FormatMetricNumber(rule.mean) + " (deviation " +
                     FormatMetricNumber(rule.deviation) + ")";
      Emit(std::move(event));
    } else if (diff <= threshold && rule.fired) {
      rule.fired = false;
      AlertEvent event;
      event.at_micros = window.end_micros;
      event.window_seq = window.seq;
      event.rule = "ewma." + rule.name;
      event.kind = "ewma";
      event.severity = "info";
      event.fired = false;
      event.value = value;
      event.limit = rule.mean;
      event.detail = rule.name + " back near ewma mean";
      Emit(std::move(event));
    }
  }
  rule.mean += config_.ewma_alpha * (value - rule.mean);
  rule.deviation =
      (1.0 - config_.ewma_alpha) * rule.deviation + config_.ewma_alpha * diff;
  ++rule.samples;
}

void Monitor::UpdateShedState(const MonitorWindow& window,
                              bool any_violation) {
  bool any_exhausted = false;
  std::string exhausted_names;
  for (const Rule& rule : rules_) {
    if (rule.budget_state == "exhausted") {
      any_exhausted = true;
      if (!exhausted_names.empty()) exhausted_names += ",";
      exhausted_names += rule.name;
    }
  }
  if (!shedding_) {
    if (any_exhausted) {
      shedding_ = true;
      ++shed_engagements_;
      clean_streak_ = 0;
      AlertEvent event;
      event.at_micros = window.end_micros;
      event.window_seq = window.seq;
      event.rule = "admission.shed";
      event.kind = "admission";
      event.severity = "critical";
      event.fired = true;
      event.value = 1.0;
      event.limit = 0.0;
      event.detail = "slo budget exhausted (" + exhausted_names +
                     "): shedding new-session admission";
      Emit(std::move(event));
    }
    return;
  }
  if (any_violation) {
    clean_streak_ = 0;
    return;
  }
  ++clean_streak_;
  if (clean_streak_ >= config_.recover_after_clean_windows &&
      !any_exhausted) {
    shedding_ = false;
    AlertEvent event;
    event.at_micros = window.end_micros;
    event.window_seq = window.seq;
    event.rule = "admission.shed";
    event.kind = "admission";
    event.severity = "info";
    event.fired = false;
    event.value = 0.0;
    event.limit = 0.0;
    event.detail = std::to_string(clean_streak_) +
                   " clean windows: admission restored";
    Emit(std::move(event));
  }
}

void Monitor::Emit(AlertEvent event) {
  if (query_log_ != nullptr) query_log_->AppendEventJson(event.ToJson());
  alerts_.push_back(std::move(event));
}

std::vector<SloStatus> Monitor::SloStatuses() const {
  std::vector<SloStatus> out;
  out.reserve(kRuleCount);
  for (const Rule& rule : rules_) {
    SloStatus status;
    status.name = rule.name;
    status.enabled = rule.enabled;
    status.limit = rule.limit;
    status.last_value = rule.last_value;
    status.violations_in_horizon = rule.violations_in_horizon;
    status.allowed_in_horizon = allowed_in_horizon();
    status.total_violations = rule.total_violations;
    status.state = rule.budget_state;
    out.push_back(std::move(status));
  }
  return out;
}

std::string Monitor::RenderDashboardText() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "federation monitor  window=%lldus  horizon=%d  "
                "budget=%d/%d  shed=%s (engagements %lld)\n",
                static_cast<long long>(config_.window_micros),
                config_.budget_horizon_windows, allowed_in_horizon(),
                config_.budget_horizon_windows, shedding_ ? "ON" : "off",
                static_cast<long long>(shed_engagements_));
  out += line;
  std::snprintf(line, sizeof(line),
                "windows closed: %lld (ring %zu/%d)  alerts: %zu\n",
                static_cast<long long>(windows_closed()), windows_.size(),
                config_.capacity, alerts_.size());
  out += line;

  out += "slo                  state      last        limit"
         "  budget(viol/allow)  total\n";
  for (const SloStatus& slo : SloStatuses()) {
    if (!slo.enabled) {
      std::snprintf(line, sizeof(line), "  %-18s (off)\n", slo.name.c_str());
      out += line;
      continue;
    }
    char budget[24];
    std::snprintf(budget, sizeof(budget), "%d/%d", slo.violations_in_horizon,
                  slo.allowed_in_horizon);
    std::snprintf(line, sizeof(line),
                  "  %-18s %-9s %-11s %-11s %9s %10lld\n", slo.name.c_str(),
                  slo.state.c_str(), FormatMetricNumber(slo.last_value).c_str(),
                  FormatMetricNumber(slo.limit).c_str(), budget,
                  static_cast<long long>(slo.total_violations));
    out += line;
  }

  if (!windows_.empty()) {
    out += "recent windows:\n";
    out += "  seq       end_us  fin   ok  err  dlk  t/o  shd"
           "   p99_us  err_rate  hit_rate  unreach\n";
    size_t start = windows_.size() > kDashboardWindows
                       ? windows_.size() - kDashboardWindows
                       : 0;
    for (size_t i = start; i < windows_.size(); ++i) {
      const MonitorWindow& w = windows_[i];
      std::snprintf(line, sizeof(line),
                    "  %3lld %12lld %4lld %4lld %4lld %4lld %4lld %4lld"
                    " %8lld %9.4f %9.4f %8d%s\n",
                    static_cast<long long>(w.seq),
                    static_cast<long long>(w.end_micros),
                    static_cast<long long>(w.sessions_finished),
                    static_cast<long long>(w.sessions_ok),
                    static_cast<long long>(w.sessions_error),
                    static_cast<long long>(w.deadlock_victims),
                    static_cast<long long>(w.lock_timeouts),
                    static_cast<long long>(w.sessions_shed),
                    static_cast<long long>(w.p99_latency_micros),
                    w.error_rate, w.pool_hit_rate, w.sites_unreachable,
                    w.shedding ? "  SHED" : "");
      out += line;
    }
  }

  if (!alerts_.empty()) {
    out += "recent alerts:\n";
    size_t start = alerts_.size() > kDashboardAlerts
                       ? alerts_.size() - kDashboardAlerts
                       : 0;
    for (size_t i = start; i < alerts_.size(); ++i) {
      const AlertEvent& a = alerts_[i];
      out += "  [";
      out += a.fired ? "raise" : "clear";
      out += "] " + std::to_string(a.at_micros) + "us " + a.rule + " " +
             a.severity + " value=" + FormatMetricNumber(a.value) +
             " limit=" + FormatMetricNumber(a.limit) + " " + a.detail + "\n";
    }
  }
  return out;
}

std::string Monitor::RenderDashboardJson() const {
  std::string out = "{\"window_micros\":" +
                    std::to_string(config_.window_micros);
  out += ",\"horizon_windows\":" +
         std::to_string(config_.budget_horizon_windows);
  out += ",\"allowed_in_horizon\":" + std::to_string(allowed_in_horizon());
  out += ",\"windows_closed\":" + std::to_string(windows_closed());
  out += std::string(",\"shedding\":") + (shedding_ ? "true" : "false");
  out += ",\"shed_engagements\":" + std::to_string(shed_engagements_);
  out += ",\"slos\":[";
  bool first = true;
  for (const SloStatus& slo : SloStatuses()) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":";
    AppendJsonString(&out, slo.name);
    out += std::string(",\"enabled\":") + (slo.enabled ? "true" : "false");
    out += ",\"state\":";
    AppendJsonString(&out, slo.state);
    out += ",\"last_value\":" + FormatMetricNumber(slo.last_value);
    out += ",\"limit\":" + FormatMetricNumber(slo.limit);
    out += ",\"violations_in_horizon\":" +
           std::to_string(slo.violations_in_horizon);
    out += ",\"allowed_in_horizon\":" +
           std::to_string(slo.allowed_in_horizon);
    out += ",\"total_violations\":" + std::to_string(slo.total_violations);
    out += "}";
  }
  out += "],\"windows\":[";
  first = true;
  for (const MonitorWindow& w : windows_) {
    if (!first) out += ",";
    first = false;
    out += "{\"seq\":" + std::to_string(w.seq);
    out += ",\"start_micros\":" + std::to_string(w.start_micros);
    out += ",\"end_micros\":" + std::to_string(w.end_micros);
    out += ",\"finished\":" + std::to_string(w.sessions_finished);
    out += ",\"ok\":" + std::to_string(w.sessions_ok);
    out += ",\"errors\":" + std::to_string(w.sessions_error);
    out += ",\"deadlock_victims\":" + std::to_string(w.deadlock_victims);
    out += ",\"lock_timeouts\":" + std::to_string(w.lock_timeouts);
    out += ",\"shed\":" + std::to_string(w.sessions_shed);
    out += ",\"p50_latency_us\":" + std::to_string(w.p50_latency_micros);
    out += ",\"p99_latency_us\":" + std::to_string(w.p99_latency_micros);
    out += ",\"error_rate\":" + FormatMetricNumber(w.error_rate);
    out += ",\"page_reads\":" + std::to_string(w.page_reads);
    out += ",\"page_writes\":" + std::to_string(w.page_writes);
    out += ",\"evictions\":" + std::to_string(w.evictions);
    out += ",\"pin_hits\":" + std::to_string(w.pin_hits);
    out += ",\"pool_hit_rate\":" + FormatMetricNumber(w.pool_hit_rate);
    out += ",\"sites_degraded\":" + std::to_string(w.sites_degraded);
    out += ",\"sites_unreachable\":" + std::to_string(w.sites_unreachable);
    out += std::string(",\"shedding\":") + (w.shedding ? "true" : "false");
    out += ",\"gauges\":{";
    bool g_first = true;
    for (const auto& [name, value] : w.gauges) {
      if (!g_first) out += ",";
      g_first = false;
      AppendJsonString(&out, name);
      out += ":" + FormatMetricNumber(value);
    }
    out += "}}";
  }
  out += "],\"alerts\":[";
  first = true;
  for (const AlertEvent& alert : alerts_) {
    if (!first) out += ",";
    first = false;
    out += alert.ToJson();
  }
  out += "]}";
  return out;
}

std::string Monitor::AlertsJsonl() const {
  std::string out;
  for (const AlertEvent& alert : alerts_) {
    out += alert.ToJson();
    out += "\n";
  }
  return out;
}

std::vector<CounterTrack> Monitor::CounterTracks() const {
  std::vector<CounterTrack> tracks(6);
  tracks[0].name = "monitor.sessions_finished";
  tracks[1].name = "monitor.sessions_error";
  tracks[2].name = "monitor.deadlock_victims";
  tracks[3].name = "monitor.p99_latency_us";
  tracks[4].name = "monitor.pool_hit_rate";
  tracks[5].name = "monitor.shedding";
  for (const MonitorWindow& w : windows_) {
    const int64_t ts = w.end_micros;
    tracks[0].points.emplace_back(ts,
                                  static_cast<double>(w.sessions_finished));
    tracks[1].points.emplace_back(ts,
                                  static_cast<double>(w.sessions_error));
    tracks[2].points.emplace_back(ts,
                                  static_cast<double>(w.deadlock_victims));
    tracks[3].points.emplace_back(
        ts, static_cast<double>(w.p99_latency_micros));
    tracks[4].points.emplace_back(ts, w.pool_hit_rate);
    tracks[5].points.emplace_back(ts, w.shedding ? 1.0 : 0.0);
  }
  return tracks;
}

}  // namespace msql::obs
