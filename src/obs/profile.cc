#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iterator>

#include "obs/json_util.h"

namespace msql::obs {

namespace {

int64_t ParseInt(std::string_view text) {
  if (text.empty()) return 0;
  return std::strtoll(std::string(text).c_str(), nullptr, 10);
}

int64_t Duration(const Span& span) {
  return span.sim_end_micros - span.sim_start_micros;
}

/// Front-end phase a span contributes to ("" = not a phase: container
/// spans like msql.execute and msql.query hold phases, they aren't one).
std::string_view PhaseOf(const Span& span) {
  if (span.category != "frontend") return {};
  std::string_view name = span.name;
  if (name.rfind("msql.", 0) != 0) return {};
  name.remove_prefix(5);
  if (name == "execute" || name == "query" || name == "multitransaction" ||
      name == "analyze") {
    return {};
  }
  return name;
}

/// The paper's pipeline order; phases outside this list render after it
/// in first-appearance order.
constexpr std::string_view kPhaseOrder[] = {"parse",     "check",  "expand",
                                            "decompose", "translate",
                                            "verify"};

SiteProfile* SiteFor(std::vector<SiteProfile>* sites,
                     std::string_view service) {
  for (SiteProfile& site : *sites) {
    if (site.service == service) return &site;
  }
  sites->push_back(SiteProfile{});
  sites->back().service = std::string(service);
  return &sites->back();
}

std::string Micros(int64_t value) { return std::to_string(value) + "us"; }

}  // namespace

QueryProfile BuildQueryProfile(const Tracer& tracer,
                               const ProfileInputs& inputs) {
  QueryProfile profile;
  profile.outcome = inputs.outcome;
  profile.makespan_micros = inputs.makespan_micros;
  profile.messages = inputs.messages;
  profile.bytes = inputs.bytes;
  profile.retries = inputs.retries;
  profile.reprobes = inputs.reprobes;
  profile.tasks = inputs.tasks;

  const auto& spans = tracer.spans();
  const size_t n = spans.size();
  // Parents are always created before their children (the parent-stack
  // discipline), so one forward pass settles subtree membership and the
  // nearest-ancestor rpc service context of every span.
  std::vector<char> in_subtree(n + 1, inputs.root == 0 ? 1 : 0);
  std::vector<std::string_view> service_ctx(n + 1);
  const Span* root_span =
      inputs.root == 0 ? nullptr : tracer.FindSpan(inputs.root);
  if (inputs.root != 0 && root_span == nullptr) return profile;
  int64_t base = root_span != nullptr ? root_span->sim_start_micros
                 : (n > 0 ? spans.front().sim_start_micros : 0);

  std::vector<PhaseProfile> extra_phases;
  PhaseProfile ordered[std::size(kPhaseOrder)];
  for (size_t i = 0; i < std::size(kPhaseOrder); ++i) {
    ordered[i].name = std::string(kPhaseOrder[i]);
  }

  for (const Span& span : spans) {
    if (inputs.root != 0) {
      in_subtree[span.id] =
          span.id == inputs.root ||
          (span.parent != 0 && in_subtree[span.parent]);
    }
    service_ctx[span.id] = span.category == "rpc"
                               ? span.Find("service")
                               : service_ctx[span.parent];
    if (!in_subtree[span.id]) continue;

    if (std::string_view phase = PhaseOf(span); !phase.empty()) {
      PhaseProfile* slot = nullptr;
      for (PhaseProfile& p : ordered) {
        if (p.name == phase) slot = &p;
      }
      if (slot == nullptr) {
        for (PhaseProfile& p : extra_phases) {
          if (p.name == phase) slot = &p;
        }
      }
      if (slot == nullptr) {
        extra_phases.push_back(PhaseProfile{});
        extra_phases.back().name = std::string(phase);
        slot = &extra_phases.back();
      }
      slot->count += 1;
      slot->host_nanos += span.host_end_nanos - span.host_start_nanos;
    } else if (span.category == "rpc") {
      SiteProfile* site = SiteFor(&profile.sites, span.Find("service"));
      std::string verb = span.name.rfind("rpc:", 0) == 0
                             ? span.name.substr(4)
                             : span.name;
      bool first_attempt = span.Find("attempt") == "1";
      site->attempts += 1;
      site->verb_attempts[verb] += 1;
      if (first_attempt) {
        site->calls += 1;
        site->verb_calls[verb] += 1;
      } else {
        site->retries += 1;
      }
      if (!span.Find("fault").empty()) site->faults += 1;
      if (span.Find("timed_out") == "true") site->timeouts += 1;
      site->rpc_micros += Duration(span);
    } else if (span.category == "lam") {
      SiteFor(&profile.sites, span.Find("service"))->lam_micros +=
          Duration(span);
    } else if (span.category == "net") {
      // Message legs carry no service of their own: attribute them to
      // the enclosing rpc span's service.
      std::string_view service = service_ctx[span.parent];
      if (!service.empty()) {
        SiteProfile* site = SiteFor(&profile.sites, service);
        site->messages += 1;
        int64_t bytes = ParseInt(span.Find("bytes"));
        if (span.Find("dir") == "request") {
          site->bytes_to_site += bytes;
        } else {
          site->bytes_from_site += bytes;
        }
      }
    } else if (span.category == "2pc") {
      if (span.name == "2pc.prepare") {
        profile.two_pc.prepares += 1;
        profile.two_pc.prepare_micros += Duration(span);
      } else if (span.name == "2pc.commit") {
        profile.two_pc.commits += 1;
        profile.two_pc.commit_micros += Duration(span);
      } else if (span.name == "reprobe") {
        profile.two_pc.reprobes += 1;
        profile.two_pc.reprobe_micros += Duration(span);
      }
    } else if (span.category == "dol" && span.name == "dol.run") {
      profile.execute_micros += Duration(span);
    }
  }
  for (PhaseProfile& p : ordered) {
    if (p.count > 0) profile.phases.push_back(std::move(p));
  }
  for (PhaseProfile& p : extra_phases) {
    profile.phases.push_back(std::move(p));
  }
  std::sort(profile.sites.begin(), profile.sites.end(),
            [](const SiteProfile& a, const SiteProfile& b) {
              return a.service < b.service;
            });

  // Critical path: from the root, repeatedly descend into the child
  // whose interval ends last (ties: earliest-created child, which is
  // deterministic). The deepest service-attributed step names the site
  // bounding the makespan.
  std::map<uint64_t, std::vector<uint64_t>> children;
  uint64_t walk_root = inputs.root;
  for (const Span& span : spans) {
    if (!in_subtree[span.id]) continue;
    if (inputs.root == 0 && span.parent == 0 && walk_root == 0) {
      walk_root = span.id;
    }
    if (span.id != walk_root) children[span.parent].push_back(span.id);
  }
  uint64_t cursor = walk_root;
  while (cursor != 0) {
    const Span* span = tracer.FindSpan(cursor);
    if (span == nullptr) break;
    CriticalPathStep step;
    step.name = span->name;
    step.category = span->category;
    step.sim_start_micros = span->sim_start_micros - base;
    step.sim_end_micros = span->sim_end_micros - base;
    std::string_view service = span->Find("service");
    if (service.empty()) service = service_ctx[span->id];
    step.service = std::string(service);
    if (!step.service.empty()) profile.bounding_service = step.service;
    if (span->category == "dol.task") {
      profile.bounding_task = span->name.rfind("task:", 0) == 0
                                  ? span->name.substr(5)
                                  : span->name;
    }
    profile.critical_path.push_back(std::move(step));
    auto kids = children.find(cursor);
    if (kids == children.end()) break;
    uint64_t best = 0;
    int64_t best_end = INT64_MIN;
    for (uint64_t kid : kids->second) {
      const Span* child = tracer.FindSpan(kid);
      if (child != nullptr && child->sim_end_micros > best_end) {
        best = kid;
        best_end = child->sim_end_micros;
      }
    }
    cursor = best;
  }

  if (inputs.metrics != nullptr) {
    for (const auto& [name, value] : inputs.metrics->CounterSnapshot()) {
      auto it = inputs.counters_before.find(name);
      int64_t before = it == inputs.counters_before.end() ? 0 : it->second;
      if (value != before) profile.counter_deltas[name] = value - before;
    }
  }
  auto storage_delta = [&profile](std::string_view name) {
    auto it = profile.counter_deltas.find(std::string(name));
    return it == profile.counter_deltas.end() ? int64_t{0} : it->second;
  };
  profile.storage_io.page_reads = storage_delta("storage.page_reads");
  profile.storage_io.page_writes = storage_delta("storage.page_writes");
  profile.storage_io.evictions = storage_delta("storage.evictions");
  profile.storage_io.pin_hits = storage_delta("storage.pin_hits");
  profile.storage_io.wal_appends = storage_delta("storage.wal_appends");
  profile.storage_io.wal_flushes = storage_delta("storage.wal_flushes");
  return profile;
}

std::string RenderProfileText(const QueryProfile& profile,
                              const ProfileRenderOptions& options) {
  std::string out;
  out += "outcome=" + profile.outcome +
         " makespan=" + Micros(profile.makespan_micros) +
         " messages=" + std::to_string(profile.messages) +
         " bytes=" + std::to_string(profile.bytes) +
         " retries=" + std::to_string(profile.retries) +
         " reprobes=" + std::to_string(profile.reprobes) + "\n";
  out += "front end:";
  if (profile.phases.empty()) out += " (none)";
  for (size_t i = 0; i < profile.phases.size(); ++i) {
    const PhaseProfile& p = profile.phases[i];
    out += (i == 0 ? " " : ", ") + p.name + " x" + std::to_string(p.count);
    if (options.include_host_time) {
      out += " (" + std::to_string(p.host_nanos / 1000) + "host_us)";
    }
  }
  out += "  |  execute: " + Micros(profile.execute_micros) + " (sim)\n";
  if (!profile.sites.empty()) {
    out += "sites:\n";
    out += "  service            calls   att  retry  fault  t/o"
           "    rpc_us    lam_us  msgs  bytes_to  bytes_from\n";
    for (const SiteProfile& site : profile.sites) {
      char line[256];
      std::snprintf(line, sizeof(line),
                    "  %-16s %7lld %5lld %6lld %6lld %4lld %9lld %9lld"
                    " %5lld %9lld %11lld\n",
                    site.service.c_str(),
                    static_cast<long long>(site.calls),
                    static_cast<long long>(site.attempts),
                    static_cast<long long>(site.retries),
                    static_cast<long long>(site.faults),
                    static_cast<long long>(site.timeouts),
                    static_cast<long long>(site.rpc_micros),
                    static_cast<long long>(site.lam_micros),
                    static_cast<long long>(site.messages),
                    static_cast<long long>(site.bytes_to_site),
                    static_cast<long long>(site.bytes_from_site));
      out += line;
      out += "    verbs:";
      for (const auto& [verb, attempts] : site.verb_attempts) {
        auto calls_it = site.verb_calls.find(verb);
        int64_t calls = calls_it == site.verb_calls.end() ? 0
                                                          : calls_it->second;
        out += " " + verb + "=" + std::to_string(calls);
        if (attempts != calls) out += "/" + std::to_string(attempts);
      }
      out += "\n";
    }
  }
  out += "2pc: prepare x" + std::to_string(profile.two_pc.prepares) + " (" +
         Micros(profile.two_pc.prepare_micros) + "), commit x" +
         std::to_string(profile.two_pc.commits) + " (" +
         Micros(profile.two_pc.commit_micros) + "), reprobe x" +
         std::to_string(profile.two_pc.reprobes) + " (" +
         Micros(profile.two_pc.reprobe_micros) + ")\n";
  if (!profile.tasks.empty()) {
    out += "tasks:\n";
    for (const TaskProfile& task : profile.tasks) {
      out += "  " + task.name + "  " + task.state + "  [" +
             Micros(task.start_micros) + ", " + Micros(task.end_micros) +
             "]  " + task.service + "/" + task.database +
             (task.vital ? "  VITAL" : "") +
             "  rows=" + std::to_string(task.rows_returned) +
             " affected=" + std::to_string(task.rows_affected) +
             " scanned=" + std::to_string(task.rows_scanned) +
             " evaluated=" + std::to_string(task.rows_evaluated) + "\n";
    }
  }
  if (!profile.critical_path.empty()) {
    out += "critical path:\n";
    std::string indent = "  ";
    for (const CriticalPathStep& step : profile.critical_path) {
      out += indent + step.name + " [" + Micros(step.sim_start_micros) +
             ", " + Micros(step.sim_end_micros) + "]";
      if (!step.service.empty()) out += " service=" + step.service;
      out += "\n";
      indent += "  ";
    }
  }
  if (!profile.bounding_service.empty()) {
    out += "bounding site: " + profile.bounding_service;
    if (!profile.bounding_task.empty()) {
      out += " (task " + profile.bounding_task + ")";
    }
    out += "\n";
  }
  if (profile.storage_io.any()) {
    const StorageIoProfile& io = profile.storage_io;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "storage io: reads=%lld writes=%lld evictions=%lld"
                  " pin_hits=%lld hit_rate=%s wal_appends=%lld"
                  " wal_flushes=%lld\n",
                  static_cast<long long>(io.page_reads),
                  static_cast<long long>(io.page_writes),
                  static_cast<long long>(io.evictions),
                  static_cast<long long>(io.pin_hits),
                  FormatMetricNumber(io.hit_rate()).c_str(),
                  static_cast<long long>(io.wal_appends),
                  static_cast<long long>(io.wal_flushes));
    out += line;
  }
  if (!profile.counter_deltas.empty()) {
    out += "counters (delta):\n";
    for (const auto& [name, delta] : profile.counter_deltas) {
      out += "  " + name + " " + (delta >= 0 ? "+" : "") +
             std::to_string(delta) + "\n";
    }
  }
  return out;
}

std::string RenderProfileJson(const QueryProfile& profile) {
  std::string out = "{\"outcome\":";
  AppendJsonString(&out, profile.outcome);
  out += ",\"makespan_micros\":" + std::to_string(profile.makespan_micros);
  out += ",\"messages\":" + std::to_string(profile.messages);
  out += ",\"bytes\":" + std::to_string(profile.bytes);
  out += ",\"retries\":" + std::to_string(profile.retries);
  out += ",\"reprobes\":" + std::to_string(profile.reprobes);
  out += ",\"execute_micros\":" + std::to_string(profile.execute_micros);
  out += ",\"phases\":[";
  for (size_t i = 0; i < profile.phases.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"name\":";
    AppendJsonString(&out, profile.phases[i].name);
    out += ",\"count\":" + std::to_string(profile.phases[i].count) + "}";
  }
  out += "],\"sites\":[";
  for (size_t i = 0; i < profile.sites.size(); ++i) {
    if (i > 0) out += ",";
    const SiteProfile& site = profile.sites[i];
    out += "{\"service\":";
    AppendJsonString(&out, site.service);
    out += ",\"calls\":" + std::to_string(site.calls);
    out += ",\"attempts\":" + std::to_string(site.attempts);
    out += ",\"retries\":" + std::to_string(site.retries);
    out += ",\"faults\":" + std::to_string(site.faults);
    out += ",\"timeouts\":" + std::to_string(site.timeouts);
    out += ",\"rpc_micros\":" + std::to_string(site.rpc_micros);
    out += ",\"lam_micros\":" + std::to_string(site.lam_micros);
    out += ",\"messages\":" + std::to_string(site.messages);
    out += ",\"bytes_to_site\":" + std::to_string(site.bytes_to_site);
    out += ",\"bytes_from_site\":" + std::to_string(site.bytes_from_site);
    out += ",\"verbs\":{";
    bool first = true;
    for (const auto& [verb, attempts] : site.verb_attempts) {
      if (!first) out += ",";
      first = false;
      AppendJsonString(&out, verb);
      out += ":" + std::to_string(attempts);
    }
    out += "}}";
  }
  out += "],\"two_pc\":{\"prepares\":" +
         std::to_string(profile.two_pc.prepares) +
         ",\"prepare_micros\":" + std::to_string(profile.two_pc.prepare_micros) +
         ",\"commits\":" + std::to_string(profile.two_pc.commits) +
         ",\"commit_micros\":" + std::to_string(profile.two_pc.commit_micros) +
         ",\"reprobes\":" + std::to_string(profile.two_pc.reprobes) +
         ",\"reprobe_micros\":" +
         std::to_string(profile.two_pc.reprobe_micros) + "}";
  out += ",\"tasks\":[";
  for (size_t i = 0; i < profile.tasks.size(); ++i) {
    if (i > 0) out += ",";
    const TaskProfile& task = profile.tasks[i];
    out += "{\"name\":";
    AppendJsonString(&out, task.name);
    out += ",\"service\":";
    AppendJsonString(&out, task.service);
    out += ",\"database\":";
    AppendJsonString(&out, task.database);
    out += ",\"state\":";
    AppendJsonString(&out, task.state);
    out += std::string(",\"vital\":") + (task.vital ? "true" : "false");
    out += ",\"start_micros\":" + std::to_string(task.start_micros);
    out += ",\"end_micros\":" + std::to_string(task.end_micros);
    out += ",\"rows_returned\":" + std::to_string(task.rows_returned);
    out += ",\"rows_affected\":" + std::to_string(task.rows_affected);
    out += ",\"rows_scanned\":" + std::to_string(task.rows_scanned);
    out += ",\"rows_evaluated\":" + std::to_string(task.rows_evaluated);
    out += "}";
  }
  out += "],\"critical_path\":[";
  for (size_t i = 0; i < profile.critical_path.size(); ++i) {
    if (i > 0) out += ",";
    const CriticalPathStep& step = profile.critical_path[i];
    out += "{\"name\":";
    AppendJsonString(&out, step.name);
    out += ",\"start_micros\":" + std::to_string(step.sim_start_micros);
    out += ",\"end_micros\":" + std::to_string(step.sim_end_micros);
    if (!step.service.empty()) {
      out += ",\"service\":";
      AppendJsonString(&out, step.service);
    }
    out += "}";
  }
  out += "],\"bounding_service\":";
  AppendJsonString(&out, profile.bounding_service);
  out += ",\"bounding_task\":";
  AppendJsonString(&out, profile.bounding_task);
  if (profile.storage_io.any()) {
    const StorageIoProfile& io = profile.storage_io;
    out += ",\"storage_io\":{\"page_reads\":" +
           std::to_string(io.page_reads) +
           ",\"page_writes\":" + std::to_string(io.page_writes) +
           ",\"evictions\":" + std::to_string(io.evictions) +
           ",\"pin_hits\":" + std::to_string(io.pin_hits) +
           ",\"hit_rate\":" + FormatMetricNumber(io.hit_rate()) +
           ",\"wal_appends\":" + std::to_string(io.wal_appends) +
           ",\"wal_flushes\":" + std::to_string(io.wal_flushes) + "}";
  }
  out += ",\"counter_deltas\":{";
  bool first = true;
  for (const auto& [name, delta] : profile.counter_deltas) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":" + std::to_string(delta);
  }
  out += "}}";
  return out;
}

std::string RenderFrontendSummary(const Tracer& tracer,
                                  bool include_host_time) {
  // First-appearance order keeps the summary deterministic for a given
  // span stream.
  std::vector<PhaseProfile> phases;
  for (const Span& span : tracer.spans()) {
    if (span.category != "frontend") continue;
    PhaseProfile* slot = nullptr;
    for (PhaseProfile& p : phases) {
      if (p.name == span.name) slot = &p;
    }
    if (slot == nullptr) {
      phases.push_back(PhaseProfile{});
      phases.back().name = span.name;
      slot = &phases.back();
    }
    slot->count += 1;
    slot->host_nanos += span.host_end_nanos - span.host_start_nanos;
  }
  std::string out;
  for (const PhaseProfile& p : phases) {
    out += p.name + " x" + std::to_string(p.count);
    if (include_host_time) {
      out += " host_us=" + std::to_string(p.host_nanos / 1000);
    }
    out += "\n";
  }
  return out;
}

}  // namespace msql::obs
