#ifndef MSQL_OBS_MONITOR_H_
#define MSQL_OBS_MONITOR_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/trace.h"

namespace msql::obs {

/// Knobs of the federation monitor (DESIGN.md §16). Every duration is
/// simulated microseconds: the monitor lives entirely on the netsim
/// clock, so its windows, alerts and dashboards are deterministic under
/// a fixed seed. An SLO knob at its "disabled" sentinel (0 for
/// latencies, negative for rates/counts) turns that rule off.
struct MonitorConfig {
  /// Width of one sampling window.
  int64_t window_micros = 1'000'000;
  /// Closed windows retained in the ring buffer.
  int capacity = 128;

  // -- SLOs ---------------------------------------------------------------
  /// p99 of session makespans finishing inside one window (0 = off).
  int64_t slo_p99_latency_micros = 0;
  /// Share of sessions finishing inside one window that ended in an
  /// error/abort (< 0 = off). Windows with no finished sessions pass.
  double slo_max_error_rate = -1.0;
  /// Deadlock victims per window (< 0 = off).
  int64_t slo_max_deadlock_victims = -1;
  /// Buffer-pool hit rate pin_hits/(pin_hits + page_reads) per window
  /// (< 0 = off). Windows with no pool traffic pass.
  double slo_min_pool_hit_rate = -1.0;
  /// Every incorporated site must stay reachable: a window during
  /// which any service is in HealthState::kUnreachable violates.
  bool slo_sites_reachable = true;

  // -- Error budgets ------------------------------------------------------
  /// Sliding horizon (closed windows) each SLO's budget is counted
  /// over.
  int budget_horizon_windows = 32;
  /// Violating windows tolerated inside the horizon, as a fraction
  /// (allowed = max(1, floor(fraction * horizon))). Beyond that the
  /// budget is exhausted.
  double slo_budget_fraction = 0.1;

  // -- EWMA drift rules ---------------------------------------------------
  /// Smoothing factor of the running mean / mean-absolute-deviation.
  double ewma_alpha = 0.3;
  /// A sample further than factor * max(deviation, 5% of mean) from
  /// the mean fires a drift alert.
  double ewma_drift_factor = 3.0;
  /// Non-empty windows the EWMA must have seen before it may fire.
  int ewma_min_windows = 8;

  // -- Admission feedback -------------------------------------------------
  /// Consecutive windows without any SLO violation required before
  /// shedding is released.
  int recover_after_clean_windows = 2;
};

/// One closed sampling window: session outcomes accumulated while it
/// was current, counter growth against the previous window's snapshot,
/// gauge values and the health census at close time.
struct MonitorWindow {
  /// 1-based position in the monitor's lifetime (survives ring
  /// eviction).
  int64_t seq = 0;
  int64_t start_micros = 0;
  int64_t end_micros = 0;

  // Session outcomes finishing inside the window.
  int64_t sessions_finished = 0;
  int64_t sessions_ok = 0;
  int64_t sessions_error = 0;
  int64_t deadlock_victims = 0;
  int64_t lock_timeouts = 0;
  /// Finished sessions whose admission had been shed-delayed.
  int64_t sessions_shed = 0;
  /// Quantiles of the makespans finishing inside the window (log2
  /// bucket upper bounds, 0 when no session finished).
  int64_t p50_latency_micros = 0;
  int64_t p99_latency_micros = 0;
  /// sessions_error / sessions_finished (0 when none finished).
  double error_rate = 0.0;

  // Buffer pool traffic (storage.* counter growth inside the window).
  int64_t page_reads = 0;
  int64_t page_writes = 0;
  int64_t evictions = 0;
  int64_t pin_hits = 0;
  /// pin_hits / (pin_hits + page_reads); 1 when the window had no pool
  /// traffic.
  double pool_hit_rate = 1.0;

  // Health census at close time.
  int sites_total = 0;
  int sites_degraded = 0;
  int sites_unreachable = 0;

  /// Full counter growth (after − before) inside the window.
  std::map<std::string, int64_t> counter_deltas;
  /// Gauge values last set before the close.
  std::map<std::string, double> gauges;
  /// Shed state after this window's rules were evaluated.
  bool shedding = false;
};

/// One deterministic alert transition. `fired` distinguishes raise from
/// resolve; rules raise at most once until they resolve, so the stream
/// reads as a well-formed bracket sequence.
struct AlertEvent {
  /// Close time of the window that produced the transition.
  int64_t at_micros = 0;
  int64_t window_seq = 0;
  /// "slo.p99_latency", "budget.error_rate", "ewma.p99_latency",
  /// "admission.shed", ...
  std::string rule;
  /// Rule family: "threshold" | "budget" | "ewma" | "admission".
  std::string kind;
  /// "info" | "warn" | "critical".
  std::string severity;
  bool fired = true;
  /// Observed value and the limit it was judged against.
  double value = 0.0;
  double limit = 0.0;
  std::string detail;

  /// Single-line JSON object, keys in fixed order (numbers rendered
  /// with FormatMetricNumber, so the line is byte-deterministic).
  std::string ToJson() const;
};

/// Budget accounting of one SLO rule over the sliding horizon.
struct SloStatus {
  std::string name;
  bool enabled = false;
  /// Limit the per-window value is compared against.
  double limit = 0.0;
  /// Value observed in the most recently closed window (NaN-free: 0
  /// when the rule skipped the window).
  double last_value = 0.0;
  /// Violating windows inside the horizon / allowed by the budget.
  int violations_in_horizon = 0;
  int allowed_in_horizon = 0;
  int64_t total_violations = 0;
  /// "ok" (no violations in horizon), "burning" (some, within budget),
  /// "exhausted" (budget overrun).
  std::string state = "ok";
};

/// Continuous federation monitor: samples the metrics registry, the
/// health registry and the scheduler's session stream on the simulated
/// clock into fixed-width windows, keeps SLO error budgets, evaluates
/// deterministic alert rules (static thresholds + EWMA drift) and
/// drives the adaptive-admission feedback loop (DESIGN.md §16).
///
/// Everything is simulation-clock based: under a fixed seed the window
/// series, the alert stream, both dashboard renderings and the Perfetto
/// counter tracks are byte-identical run to run.
class Monitor {
 public:
  /// `metrics` and `health` may be null (those columns read as empty).
  /// Neither is owned; both must outlive the monitor.
  Monitor(MonitorConfig config, const MetricsRegistry* metrics,
          const HealthRegistry* health);

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  const MonitorConfig& config() const { return config_; }

  /// Alert events are additionally appended to `log`'s JSONL stream as
  /// they fire (null to stop). Not owned.
  void set_query_log(QueryLog* log) { query_log_ = log; }

  /// Drops all windows, alerts and rule state and restarts the window
  /// grid at `start_micros` (counter baseline re-snapshotted).
  void Reset(int64_t start_micros = 0);

  // -- Feeding ------------------------------------------------------------

  /// One finished session. Closes any windows the finish time has
  /// passed, then accumulates into the current one.
  struct SessionSample {
    int64_t finish_micros = 0;
    int64_t makespan_micros = 0;
    bool ok = false;
    bool deadlock_victim = false;
    bool lock_timeout = false;
    /// Admission of this session had been shed-delayed.
    bool was_shed = false;
  };
  void RecordSession(const SessionSample& sample);

  /// Instantaneous value sampled into each window at close time
  /// ("sessions.active", ...). Sticky until set again.
  void SetGauge(std::string_view name, double value);

  /// True when `now` has passed the current window's end — the cheap
  /// check callers gate AdvanceTo behind on hot paths.
  bool NeedsSample(int64_t now) const {
    return now >= window_start_ + config_.window_micros;
  }

  /// Closes every window whose end `now` has reached (evaluating SLOs,
  /// budgets, EWMA rules and the shed state machine per close).
  /// Monotone: earlier times are a no-op.
  void AdvanceTo(int64_t now);

  /// Closes the current window early at `now` if it saw any sessions —
  /// the end-of-batch flush so a final partial window is not lost.
  void Flush(int64_t now);

  // -- State --------------------------------------------------------------

  /// The admission feedback signal: true while an exhausted SLO budget
  /// has not yet been followed by `recover_after_clean_windows` clean
  /// windows.
  bool shedding() const { return shedding_; }
  /// Times shedding engaged over the monitor's lifetime.
  int64_t shed_engagements() const { return shed_engagements_; }
  /// All closed windows still in the ring (oldest first).
  const std::deque<MonitorWindow>& windows() const { return windows_; }
  int64_t windows_closed() const { return next_seq_ - 1; }
  const std::vector<AlertEvent>& alerts() const { return alerts_; }
  /// Budget accounting of every configured SLO, in declaration order.
  std::vector<SloStatus> SloStatuses() const;

  // -- Rendering ----------------------------------------------------------

  /// Deterministic operator dashboard: SLO budgets, shed state, recent
  /// windows and alert tail (the shell's `\watch`).
  std::string RenderDashboardText() const;
  /// The same dashboard as one JSON object.
  std::string RenderDashboardJson() const;
  /// Every alert event as JSON Lines.
  std::string AlertsJsonl() const;
  /// Per-window series as Perfetto counter tracks ("monitor.*"), one
  /// point per closed window at its end time — merged into
  /// ExportChromeTrace via ChromeTraceOptions::counter_tracks.
  std::vector<CounterTrack> CounterTracks() const;

 private:
  /// Index into rules_ (declaration order = dashboard order).
  enum RuleIndex {
    kP99Latency = 0,
    kErrorRate,
    kDeadlocks,
    kPoolHitRate,
    kSitesReachable,
    kRuleCount,
  };

  /// Static per-rule facts + evolving budget state.
  struct Rule {
    std::string name;
    bool enabled = false;
    double limit = 0.0;
    /// true: value must stay <= limit; false: value must stay >= limit.
    bool upper_bound = true;
    double last_value = 0.0;
    /// Violation verdicts of the horizon's windows (front = oldest).
    std::deque<bool> horizon;
    int violations_in_horizon = 0;
    int64_t total_violations = 0;
    /// Rule raised a threshold alert that has not resolved yet.
    bool threshold_fired = false;
    /// "ok" | "burning" | "exhausted" (budget alert dedup state).
    std::string budget_state = "ok";
  };

  /// EWMA drift tracker of one window series.
  struct EwmaRule {
    std::string name;
    double mean = 0.0;
    double deviation = 0.0;
    int samples = 0;
    bool fired = false;
  };

  void CloseWindow(int64_t end_micros);
  /// Applies one window's value to `rule`, emitting threshold and
  /// budget transitions.
  void EvaluateRule(Rule& rule, double value, bool skipped,
                    const MonitorWindow& window);
  void EvaluateEwma(EwmaRule& rule, double value, bool skipped,
                    const MonitorWindow& window);
  void UpdateShedState(const MonitorWindow& window, bool any_violation);
  void Emit(AlertEvent event);
  int allowed_in_horizon() const;

  MonitorConfig config_;
  const MetricsRegistry* metrics_;
  const HealthRegistry* health_;
  QueryLog* query_log_ = nullptr;

  int64_t window_start_ = 0;
  int64_t next_seq_ = 1;
  /// Counter baseline the next close diffs against.
  std::map<std::string, int64_t, std::less<>> counters_before_;
  bool baselined_ = false;

  // Current-window accumulators.
  int64_t acc_finished_ = 0;
  int64_t acc_ok_ = 0;
  int64_t acc_error_ = 0;
  int64_t acc_deadlock_ = 0;
  int64_t acc_timeout_ = 0;
  int64_t acc_shed_ = 0;
  Histogram acc_latency_;

  std::map<std::string, double, std::less<>> gauges_;
  std::deque<MonitorWindow> windows_;
  std::vector<AlertEvent> alerts_;
  Rule rules_[kRuleCount];
  std::vector<EwmaRule> ewma_;

  bool shedding_ = false;
  int clean_streak_ = 0;
  int64_t shed_engagements_ = 0;
};

}  // namespace msql::obs

#endif  // MSQL_OBS_MONITOR_H_
