#include "obs/query_log.h"

#include "obs/json_util.h"

namespace msql::obs {

namespace {

void AppendField(std::string* out, const char* key, std::string_view value) {
  if (out->back() != '{') *out += ",";
  AppendJsonString(out, key);
  *out += ":";
  AppendJsonString(out, value);
}

void AppendField(std::string* out, const char* key, int64_t value) {
  if (out->back() != '{') *out += ",";
  AppendJsonString(out, key);
  *out += ":" + std::to_string(value);
}

void AppendBoolField(std::string* out, const char* key, bool value) {
  if (out->back() != '{') *out += ",";
  AppendJsonString(out, key);
  *out += value ? ":true" : ":false";
}

void AppendStringArray(std::string* out, const char* key,
                       const std::vector<std::string>& values) {
  if (out->back() != '{') *out += ",";
  AppendJsonString(out, key);
  *out += ":[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) *out += ",";
    AppendJsonString(out, values[i]);
  }
  *out += "]";
}

}  // namespace

std::string QueryLogRecord::ToJson() const {
  std::string out = "{";
  AppendField(&out, "seq", seq);
  AppendField(&out, "kind", kind);
  AppendField(&out, "outcome", outcome);
  AppendField(&out, "dol_status", dol_status);
  AppendField(&out, "detail", detail);
  AppendField(&out, "sim_start_micros", sim_start_micros);
  AppendField(&out, "makespan_micros", makespan_micros);
  AppendField(&out, "messages", messages);
  AppendField(&out, "bytes", bytes);
  AppendField(&out, "retries", retries);
  AppendField(&out, "reprobes", reprobes);
  AppendField(&out, "rows_returned", rows_returned);
  AppendField(&out, "rows_transferred", rows_transferred);
  out += ",\"verdicts\":[";
  for (size_t i = 0; i < verdicts.size(); ++i) {
    if (i > 0) out += ",";
    const Verdict& v = verdicts[i];
    out += "{";
    AppendField(&out, "database", v.database);
    AppendField(&out, "service", v.service);
    AppendField(&out, "task", v.task);
    AppendBoolField(&out, "vital", v.vital);
    AppendField(&out, "state", v.state);
    out += "}";
  }
  out += "]";
  AppendStringArray(&out, "compensations", compensations);
  AppendStringArray(&out, "degraded_services", degraded_services);
  AppendStringArray(&out, "non_pertinent", non_pertinent);
  AppendStringArray(&out, "fired_triggers", fired_triggers);
  out += "}";
  return out;
}

void QueryLog::Clear() {
  records_.clear();
  events_.clear();
  order_.clear();
  next_seq_ = 1;
  sim_cursor_micros_ = 0;
}

const QueryLogRecord* QueryLog::Append(QueryLogRecord record) {
  if (!enabled_) return nullptr;
  record.seq = next_seq_++;
  record.sim_start_micros = sim_cursor_micros_;
  sim_cursor_micros_ += record.makespan_micros;
  records_.push_back(std::move(record));
  order_.emplace_back(false, records_.size() - 1);
  return &records_.back();
}

void QueryLog::AppendEventJson(std::string json_line) {
  if (!enabled_) return;
  events_.push_back(std::move(json_line));
  order_.emplace_back(true, events_.size() - 1);
}

std::string QueryLog::ToJsonl() const {
  std::string out;
  for (const auto& [is_event, index] : order_) {
    out += is_event ? events_[index] : records_[index].ToJson();
    out += "\n";
  }
  return out;
}

}  // namespace msql::obs
