#ifndef MSQL_OBS_METRICS_H_
#define MSQL_OBS_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace msql::obs {

/// Log2-bucketed histogram of non-negative int64 samples (simulated
/// microseconds, byte counts, attempt counts, ...). Bucket i holds
/// values in [2^(i-1), 2^i) with bucket 0 holding {0}; quantiles are
/// answered from bucket upper bounds, which is deterministic and good
/// to a factor of two — plenty for "where does the makespan go".
class Histogram {
 public:
  static constexpr int kBuckets = 63;

  void Observe(int64_t value);

  int64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return max_; }
  /// Upper bound of the bucket holding the q-quantile (q in [0, 1]).
  int64_t Quantile(double q) const;

 private:
  std::array<int64_t, kBuckets> buckets_{};
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

/// Federation-wide counters and histograms, keyed by dotted names
/// ("net.messages", "rpc.sim_micros"). Like the tracer this is a null
/// sink until enabled; unlike the tracer it stays cheap even when on —
/// a map lookup per update — because the benches keep it enabled.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void Clear();

  void Inc(std::string_view name, int64_t delta = 1);
  void Observe(std::string_view name, int64_t value);

  /// Counter value (0 when absent).
  int64_t Get(std::string_view name) const;
  /// Histogram by name (nullptr when absent).
  const Histogram* GetHistogram(std::string_view name) const;

  /// Copy of all counters at this instant. The profiler diffs two
  /// snapshots to attribute counter growth to one MSQL input.
  std::map<std::string, int64_t, std::less<>> CounterSnapshot() const {
    return counters_;
  }

  /// Sorted, deterministic text dump: counters, then histograms with
  /// count/sum/min/p50/p95/p99/max columns (quantiles are log2-bucket
  /// upper bounds — good to a factor of two).
  std::string Dump() const;

 private:
  bool enabled_ = false;
  std::map<std::string, int64_t, std::less<>> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace msql::obs

#endif  // MSQL_OBS_METRICS_H_
