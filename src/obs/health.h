#ifndef MSQL_OBS_HEALTH_H_
#define MSQL_OBS_HEALTH_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace msql::obs {

/// Derived availability of one incorporated service, computed from its
/// recent RPC history (DESIGN.md §11). The thresholds are deliberately
/// simple and deterministic:
///   - kUnreachable: the last `SiteHealth::kUnreachableAfter` calls all
///     failed — the coordinator should expect nothing from this LAM.
///   - kDegraded: at least one failure or timeout inside the rolling
///     window of the last `SiteHealth::kWindow` calls.
///   - kHealthy: everything else (including a site never called).
enum class HealthState { kHealthy, kDegraded, kUnreachable };

std::string_view HealthStateName(HealthState state);

/// Rolling per-service counters fed by the environment on every RPC.
class SiteHealth {
 public:
  /// Rolling window length (calls) the degraded verdict looks at.
  static constexpr int kWindow = 32;
  /// Consecutive failures after which the site is declared unreachable.
  static constexpr int kUnreachableAfter = 4;

  /// Records one finished call. `ok` is the coordinator's view (a
  /// timed-out call is not ok even if the LAM secretly executed it);
  /// `latency_micros` is the simulated time the coordinator waited.
  /// `queue_micros` is the time the request sat in the service's
  /// admission queue before a server picked it up (0 when the service
  /// has no concurrency limit or was idle) — the contention signal of
  /// a loaded federation, tracked separately from latency so a slow
  /// site and a busy site are distinguishable.
  void Record(bool ok, bool timed_out, bool faulted, int64_t latency_micros,
              int64_t queue_micros = 0);

  int64_t attempts() const { return attempts_; }
  int64_t failures() const { return failures_; }
  int64_t timeouts() const { return timeouts_; }
  int64_t faults() const { return faults_; }
  int64_t consecutive_failures() const { return consecutive_failures_; }
  int window_attempts() const;
  int window_failures() const;
  const Histogram& latency() const { return latency_; }
  /// Calls that waited in the admission queue, and the wait histogram.
  int64_t queue_waits() const { return queue_waits_; }
  const Histogram& queue_delay() const { return queue_delay_; }

  HealthState state() const;

 private:
  int64_t attempts_ = 0;
  int64_t failures_ = 0;
  int64_t timeouts_ = 0;
  int64_t faults_ = 0;
  int64_t consecutive_failures_ = 0;
  int64_t queue_waits_ = 0;
  Histogram latency_;
  Histogram queue_delay_;
  /// Ring buffer of the last kWindow call verdicts (true = failed).
  std::array<bool, kWindow> window_failed_{};
  int window_size_ = 0;
  int window_next_ = 0;
};

/// Point-in-time copy of the whole registry — the one struct the text
/// renderer, the JSON renderer and the federation monitor all consume,
/// so every consumer sees the same quantile/state arithmetic.
struct HealthSnapshot {
  struct Service {
    std::string service;
    std::string site;
    HealthState state = HealthState::kHealthy;
    int64_t attempts = 0;
    int64_t failures = 0;
    int64_t timeouts = 0;
    int64_t faults = 0;
    int window_failures = 0;
    int window_attempts = 0;
    int64_t latency_p50 = 0;
    int64_t latency_p95 = 0;
    int64_t latency_p99 = 0;
    int64_t queue_waits = 0;
    int64_t queue_p50 = 0;
    int64_t queue_p95 = 0;
    int64_t queue_p99 = 0;
  };
  /// Sorted by service name (the registry's iteration order).
  std::vector<Service> services;

  int degraded = 0;
  int unreachable = 0;
};

/// Per-site health monitor of the federation. Unlike the tracer and the
/// metrics registry this is always on: it costs a map lookup and a few
/// integer updates per RPC, and an operator's first question about a
/// misbehaving federation is "which backend is sick" — that answer must
/// not depend on having remembered to enable tracing beforehand.
class HealthRegistry {
 public:
  HealthRegistry() = default;

  HealthRegistry(const HealthRegistry&) = delete;
  HealthRegistry& operator=(const HealthRegistry&) = delete;

  void Clear() { sites_.clear(); }

  void Record(std::string_view service, std::string_view site, bool ok,
              bool timed_out, bool faulted, int64_t latency_micros,
              int64_t queue_micros = 0);

  /// Health of `service`, or nullptr when it was never called.
  const SiteHealth* Get(std::string_view service) const;
  /// site name recorded for `service` ("" when never called).
  std::string_view SiteOf(std::string_view service) const;

  /// Everything a consumer needs in one copy, sorted by service.
  HealthSnapshot Snapshot() const;

  /// Deterministic table (sorted by service): state, totals, rolling
  /// window and latency quantiles — the shell's `\health`.
  std::string RenderText() const;

  /// The same snapshot as one JSON object — the shell's
  /// `\health --json` (obs/json_util escaping, fixed key order).
  std::string RenderJson() const;

 private:
  struct Entry {
    std::string site;
    SiteHealth health;
  };
  std::map<std::string, Entry, std::less<>> sites_;
};

}  // namespace msql::obs

#endif  // MSQL_OBS_HEALTH_H_
