#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "obs/json_util.h"

namespace msql::obs {

namespace {

int64_t HostNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string_view Span::Find(std::string_view key) const {
  for (const auto& [k, v] : annotations) {
    if (k == key) return v;
  }
  return {};
}

void Tracer::Clear() {
  spans_.clear();
  parent_stack_.clear();
  next_id_ = 1;
  sim_offset_micros_ = 0;
}

Span* Tracer::Mutable(uint64_t id) {
  if (id == 0 || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

const Span* Tracer::FindSpan(uint64_t id) const {
  if (id == 0 || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

uint64_t Tracer::StartSpan(std::string_view name, std::string_view category,
                           int64_t sim_start_micros) {
  if (!enabled_) return 0;
  Span span;
  span.id = next_id_++;
  span.parent = current_parent();
  span.name = std::string(name);
  span.category = std::string(category);
  span.sim_start_micros = sim_offset_micros_ + sim_start_micros;
  span.sim_end_micros = span.sim_start_micros;
  span.host_start_nanos = HostNowNanos();
  span.host_end_nanos = span.host_start_nanos;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::EndSpan(uint64_t id, int64_t sim_end_micros) {
  if (!enabled_) return;
  Span* span = Mutable(id);
  if (span == nullptr) return;
  span->sim_end_micros =
      std::max(span->sim_start_micros, sim_offset_micros_ + sim_end_micros);
  span->host_end_nanos = HostNowNanos();
}

void Tracer::Annotate(uint64_t id, std::string_view key,
                      std::string_view value) {
  if (!enabled_) return;
  Span* span = Mutable(id);
  if (span == nullptr) return;
  span->annotations.emplace_back(std::string(key), std::string(value));
}

void Tracer::Annotate(uint64_t id, std::string_view key, int64_t value) {
  Annotate(id, key, std::string_view(std::to_string(value)));
}

void Tracer::PushParent(uint64_t id) {
  if (!enabled_ || id == 0) return;
  parent_stack_.push_back(id);
}

void Tracer::PopParent() {
  if (!parent_stack_.empty()) parent_stack_.pop_back();
}

ScopedSpan::ScopedSpan(Tracer* tracer, std::string_view name,
                       std::string_view category, int64_t sim_start_micros)
    : sim_end_micros_(sim_start_micros) {
  if (tracer == nullptr || !tracer->enabled()) return;
  tracer_ = tracer;
  id_ = tracer_->StartSpan(name, category, sim_start_micros);
  tracer_->PushParent(id_);
}

ScopedSpan::~ScopedSpan() { End(sim_end_micros_); }

void ScopedSpan::Annotate(std::string_view key, std::string_view value) {
  if (active()) tracer_->Annotate(id_, key, value);
}

void ScopedSpan::Annotate(std::string_view key, int64_t value) {
  if (active()) tracer_->Annotate(id_, key, value);
}

void ScopedSpan::End(int64_t sim_end_micros) {
  if (!active()) return;
  tracer_->EndSpan(id_, sim_end_micros);
  tracer_->PopParent();
  tracer_ = nullptr;
  id_ = 0;
}

std::string ExportChromeTrace(const Tracer& tracer,
                              const ChromeTraceOptions& options) {
  const auto& spans = tracer.spans();
  // Lane assignment: coordinator work is tid 1; each dol.task span opens
  // the next lane and its descendants inherit it. First-appearance order
  // keeps the numbering deterministic.
  std::map<uint64_t, int> lane_of;  // span id → tid
  std::vector<std::pair<int, std::string>> lane_names;
  int next_lane = 2;
  for (const Span& span : spans) {
    int lane = 1;
    if (span.parent != 0) {
      auto it = lane_of.find(span.parent);
      if (it != lane_of.end()) lane = it->second;
    }
    if (span.category == "dol.task") {
      lane = next_lane++;
      lane_names.emplace_back(lane, span.name);
    }
    lane_of[span.id] = lane;
  }

  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) out += ",\n";
    first = false;
    out += event;
  };
  {
    std::string meta =
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
        "\"args\":{\"name\":\"coordinator\"}}";
    emit(meta);
  }
  for (const auto& [lane, name] : lane_names) {
    std::string meta = "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                       "\"tid\":" + std::to_string(lane) + ",\"args\":{"
                       "\"name\":";
    AppendJsonString(&meta, name);
    meta += "}}";
    emit(meta);
  }
  for (const Span& span : spans) {
    std::string event = "{\"name\":";
    AppendJsonString(&event, span.name);
    event += ",\"cat\":";
    AppendJsonString(&event, span.category);
    event += ",\"ph\":\"X\",\"ts\":" + std::to_string(span.sim_start_micros);
    event += ",\"dur\":" +
             std::to_string(span.sim_end_micros - span.sim_start_micros);
    event += ",\"pid\":1,\"tid\":" + std::to_string(lane_of[span.id]);
    event += ",\"args\":{\"span\":" + std::to_string(span.id);
    if (span.parent != 0) {
      event += ",\"parent\":" + std::to_string(span.parent);
    }
    for (const auto& [key, value] : span.annotations) {
      event += ",";
      AppendJsonString(&event, key);
      event += ":";
      AppendJsonString(&event, value);
    }
    if (options.include_host_time) {
      event += ",\"host_us\":" +
               std::to_string((span.host_end_nanos - span.host_start_nanos) /
                              1000);
    }
    event += "}}";
    emit(event);
  }
  for (const CounterTrack& track : options.counter_tracks) {
    for (const auto& [ts, value] : track.points) {
      std::string event = "{\"name\":";
      AppendJsonString(&event, track.name);
      event += ",\"ph\":\"C\",\"ts\":" + std::to_string(ts);
      event += ",\"pid\":1,\"args\":{\"value\":" + FormatMetricNumber(value);
      event += "}}";
      emit(event);
    }
  }
  out += "\n]}\n";
  return out;
}

std::string ExportTextTree(const Tracer& tracer, uint64_t root) {
  const auto& spans = tracer.spans();
  std::map<uint64_t, std::vector<uint64_t>> children;
  std::vector<uint64_t> roots;
  for (const Span& span : spans) {
    if (span.id == root || (root == 0 && span.parent == 0)) {
      roots.push_back(span.id);
    } else {
      children[span.parent].push_back(span.id);
    }
  }
  std::string out;
  // Depth-first; children are already in creation (= start) order.
  struct Frame {
    uint64_t id;
    int depth;
  };
  std::vector<Frame> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.push_back({*it, 0});
  }
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    const Span* span = tracer.FindSpan(frame.id);
    if (span == nullptr) continue;
    out.append(static_cast<size_t>(frame.depth) * 2, ' ');
    out += span->name + " [" + std::to_string(span->sim_start_micros) +
           "us, " + std::to_string(span->sim_end_micros) + "us]";
    for (const auto& [key, value] : span->annotations) {
      out += " " + key + "=" + value;
    }
    out += "\n";
    auto kids = children.find(frame.id);
    if (kids != children.end()) {
      for (auto it = kids->second.rbegin(); it != kids->second.rend(); ++it) {
        stack.push_back({*it, frame.depth + 1});
      }
    }
  }
  return out;
}

}  // namespace msql::obs
