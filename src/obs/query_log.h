#ifndef MSQL_OBS_QUERY_LOG_H_
#define MSQL_OBS_QUERY_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace msql::obs {

/// One line of the structured audit log: what the federation decided
/// about one executed MSQL input (§3.2's global outcome model), plus
/// the simulated cost of getting there. All fields are derived from the
/// deterministic simulation — under a fixed seed the JSONL rendering is
/// byte-identical run to run, which is what the golden tests pin.
struct QueryLogRecord {
  /// 1-based position of this record in the session log.
  int64_t seq = 0;
  /// MSQL input kind ("query", "multitransaction", "incorporate", ...).
  std::string kind;
  /// Global outcome name (SUCCESS | ABORTED | INCORRECT | REFUSED).
  std::string outcome;
  /// DOLSTATUS the plan ended with.
  int dol_status = 0;
  /// Refusal / abort / degradation detail ("" for clean successes).
  std::string detail;
  /// Simulated start of this input on the session timeline (cumulative
  /// makespan of all earlier records — inputs execute sequentially).
  int64_t sim_start_micros = 0;
  int64_t makespan_micros = 0;
  int64_t messages = 0;
  int64_t bytes = 0;
  int64_t retries = 0;
  int64_t reprobes = 0;
  int64_t rows_returned = 0;
  int64_t rows_transferred = 0;

  /// How one scoped database's subquery ended (§3.2.1): the per-task
  /// verdict the global outcome was decided from.
  struct Verdict {
    std::string database;  // effective name in the USE scope
    std::string service;
    std::string task;      // DOL task name
    std::string state;     // DolTaskStateName value
    bool vital = false;
  };
  std::vector<Verdict> verdicts;

  /// Tasks whose COMP clause fired (state COMPENSATED).
  std::vector<std::string> compensations;
  /// Services whose NON-VITAL subqueries were lost to unavailability.
  std::vector<std::string> degraded_services;
  /// Scope databases discarded as non-pertinent.
  std::vector<std::string> non_pertinent;
  /// Interdatabase triggers fired by this input.
  std::vector<std::string> fired_triggers;

  /// Single-line JSON object (no trailing newline), keys in fixed order.
  std::string ToJson() const;
};

/// Session-scoped audit log. Disabled by default like the tracer; when
/// enabled, the MDBS appends one record per executed top-level input.
class QueryLog {
 public:
  QueryLog() = default;

  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void Clear();

  /// Appends `record` (when enabled), assigning its `seq` and
  /// `sim_start_micros` from the session cursor, which then advances by
  /// the record's makespan. Returns the stored record, or nullptr when
  /// the log is disabled.
  const QueryLogRecord* Append(QueryLogRecord record);

  /// Interleaves one pre-rendered single-line JSON object (no trailing
  /// newline) into the stream at the current position — the monitor's
  /// alert events enter the audit log this way, ordered against the
  /// query records around them. No-op while disabled.
  void AppendEventJson(std::string json_line);

  const std::vector<QueryLogRecord>& records() const { return records_; }
  /// Interleaved event lines, in append order.
  const std::vector<std::string>& events() const { return events_; }

  /// All records and interleaved events as JSON Lines (one object per
  /// line, in append order).
  std::string ToJsonl() const;

 private:
  bool enabled_ = false;
  int64_t next_seq_ = 1;
  int64_t sim_cursor_micros_ = 0;
  std::vector<QueryLogRecord> records_;
  std::vector<std::string> events_;
  /// Append order over both streams: (is_event, index into its vector).
  std::vector<std::pair<bool, size_t>> order_;
};

}  // namespace msql::obs

#endif  // MSQL_OBS_QUERY_LOG_H_
