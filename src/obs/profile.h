#ifndef MSQL_OBS_PROFILE_H_
#define MSQL_OBS_PROFILE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace msql::obs {

/// One front-end phase rollup (parse/check/expand/decompose/translate/
/// verify). Front-end spans are host-clock-only — their simulated
/// duration is zero by design — so the only duration here is host time,
/// which is nondeterministic and excluded from golden renderings.
struct PhaseProfile {
  std::string name;  // "parse", "check", ...
  int64_t count = 0;
  int64_t host_nanos = 0;
};

/// Everything one input cost at one service, summed from its rpc / lam /
/// net.send spans (DESIGN.md §11).
struct SiteProfile {
  std::string service;
  /// Logical RPCs (first-attempt rpc spans).
  int64_t calls = 0;
  /// Send attempts (every rpc span, re-sends included).
  int64_t attempts = 0;
  /// Re-sends (attempt > 1).
  int64_t retries = 0;
  /// Attempts that hit an injected fault.
  int64_t faults = 0;
  /// Attempts the coordinator timed out on.
  int64_t timeouts = 0;
  /// Simulated time the coordinator spent inside this site's rpc spans
  /// (round-trip wait, backoff excluded).
  int64_t rpc_micros = 0;
  /// Simulated LAM service time (the local DBMS actually working).
  int64_t lam_micros = 0;
  /// Message legs to/from this site.
  int64_t messages = 0;
  /// Request-leg bytes (coordinator → site).
  int64_t bytes_to_site = 0;
  /// Response-leg bytes (site → coordinator).
  int64_t bytes_from_site = 0;
  /// Verb → logical calls / send attempts.
  std::map<std::string, int64_t> verb_calls;
  std::map<std::string, int64_t> verb_attempts;
};

/// 2PC cost rollup: prepare / commit round latency and re-probes.
struct TwoPcProfile {
  int64_t prepares = 0;
  int64_t prepare_micros = 0;
  int64_t commits = 0;
  int64_t commit_micros = 0;
  int64_t reprobes = 0;
  int64_t reprobe_micros = 0;
};

/// Per-task accounting joined from the DOL run result and the local
/// planner's row counters (the span tree does not carry row counts, so
/// the caller supplies these).
struct TaskProfile {
  std::string name;
  std::string service;
  std::string database;
  std::string state;  // DolTaskStateName value
  bool vital = false;
  int64_t start_micros = 0;
  int64_t end_micros = 0;
  int64_t rows_returned = 0;
  int64_t rows_affected = 0;
  int64_t rows_scanned = 0;
  int64_t rows_evaluated = 0;
};

/// One hop of the critical-path walk (root → deepest-ending child).
struct CriticalPathStep {
  std::string name;
  std::string category;
  int64_t sim_start_micros = 0;
  int64_t sim_end_micros = 0;
  /// Service this span is attributed to ("" for coordinator-only work).
  std::string service;
};

/// Storage-engine work attributed to one input, derived from the
/// storage.* counter deltas — the I/O cost next to the RPC cost. All
/// zeros (any() false) for purely in-memory engines, in which case the
/// renderers omit the section so existing golden output is unchanged.
struct StorageIoProfile {
  int64_t page_reads = 0;
  int64_t page_writes = 0;
  int64_t evictions = 0;
  int64_t pin_hits = 0;
  int64_t wal_appends = 0;
  int64_t wal_flushes = 0;

  bool any() const {
    return page_reads != 0 || page_writes != 0 || evictions != 0 ||
           pin_hits != 0 || wal_appends != 0 || wal_flushes != 0;
  }
  /// pin_hits / (pin_hits + page_reads); 1 when the pool saw no pins.
  double hit_rate() const {
    const int64_t pins = pin_hits + page_reads;
    return pins == 0 ? 1.0
                     : static_cast<double>(pin_hits) /
                           static_cast<double>(pins);
  }
};

/// Full cost attribution of one executed MSQL input: the answer to
/// "where did the makespan go and which site bounded it" computed from
/// the input's span subtree plus metrics deltas.
struct QueryProfile {
  std::string outcome;
  int64_t makespan_micros = 0;
  int64_t messages = 0;
  int64_t bytes = 0;
  int64_t retries = 0;
  int64_t reprobes = 0;
  std::vector<PhaseProfile> phases;
  /// Simulated duration of the DOL run (the execute side of the
  /// front-end/execute split).
  int64_t execute_micros = 0;
  std::vector<SiteProfile> sites;
  TwoPcProfile two_pc;
  std::vector<TaskProfile> tasks;
  std::vector<CriticalPathStep> critical_path;
  /// Service bounding the makespan: the deepest service-attributed span
  /// on the critical path ("" when the path never leaves the
  /// coordinator).
  std::string bounding_service;
  /// DOL task on the critical path ("" when none).
  std::string bounding_task;
  /// Counter growth attributed to this input (after − before snapshot).
  std::map<std::string, int64_t> counter_deltas;
  /// storage.* slice of `counter_deltas`: buffer-pool and WAL work
  /// this input caused across the federation's persistent engines.
  StorageIoProfile storage_io;
};

/// What the caller (the MDBS) knows that the span tree does not.
struct ProfileInputs {
  /// Root span of the input (0 = profile the whole trace).
  uint64_t root = 0;
  std::string outcome;
  int64_t makespan_micros = 0;
  int64_t messages = 0;
  int64_t bytes = 0;
  int64_t retries = 0;
  int64_t reprobes = 0;
  /// Per-task rows/state joined from the run result (already sorted).
  std::vector<TaskProfile> tasks;
  /// Counter snapshot taken before the input ran; diffed against
  /// `metrics` to produce `counter_deltas`. `metrics` may be null.
  std::map<std::string, int64_t, std::less<>> counters_before;
  const MetricsRegistry* metrics = nullptr;
};

/// Computes the profile of the span subtree under `inputs.root`. All
/// simulated times are normalized to the root span's start, so the
/// rendering is independent of the session's sim offset.
QueryProfile BuildQueryProfile(const Tracer& tracer,
                               const ProfileInputs& inputs);

struct ProfileRenderOptions {
  /// Include host-clock durations for the front-end phases. Off by
  /// default: host times vary run to run and break golden output.
  bool include_host_time = false;
};

/// Deterministic text report (the shell's `\profile` / EXPLAIN ANALYZE).
std::string RenderProfileText(const QueryProfile& profile,
                              const ProfileRenderOptions& options = {});

/// The same profile as a single JSON object.
std::string RenderProfileJson(const QueryProfile& profile);

/// Aggregates every front-end span in the trace by phase (count + host
/// time) — the whole-session summary behind `msql_lint --profile`.
std::string RenderFrontendSummary(const Tracer& tracer,
                                  bool include_host_time);

}  // namespace msql::obs

#endif  // MSQL_OBS_PROFILE_H_
