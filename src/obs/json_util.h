#ifndef MSQL_OBS_JSON_UTIL_H_
#define MSQL_OBS_JSON_UTIL_H_

#include <string>
#include <string_view>

namespace msql::obs {

/// Appends `text` to `out` as a quoted JSON string. Minimal escaping:
/// the span/metric vocabulary is ASCII, but SQL fragments carried in
/// annotations and log records may hold quotes, backslashes and control
/// characters. Shared by the trace, profile and query-log exporters so
/// all observability JSON escapes identically.
void AppendJsonString(std::string* out, std::string_view text);

/// Renders `value` as a deterministic JSON number: integral values
/// print with no fraction, everything else as fixed 4-decimal notation
/// (never scientific). Shared by the monitor's dashboards/alerts and
/// the trace exporter's counter tracks so golden output is stable.
std::string FormatMetricNumber(double value);

}  // namespace msql::obs

#endif  // MSQL_OBS_JSON_UTIL_H_
