#ifndef MSQL_RELATIONAL_TXN_H_
#define MSQL_RELATIONAL_TXN_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relational/database.h"
#include "relational/table.h"

namespace msql::relational {

/// Local transaction lifecycle.
///
/// `kPrepared` is the visible prepared-to-commit state of §3.2.1: the
/// transaction has executed all its operations and holds its locks, and
/// the only legal transitions are Commit and Rollback. Engines whose
/// capability profile lacks 2PC never expose this state.
enum class TxnState { kActive, kPrepared, kCommitted, kAborted };

std::string_view TxnStateName(TxnState state);

/// One entry of a transaction's undo log. Records are appended in
/// execution order and applied in reverse on rollback.
struct UndoRecord {
  enum class Kind {
    kInsert,
    kDelete,
    kUpdate,
    kCreateTable,
    kDropTable,
    kCreateView,
    kDropView,
    kCreateIndex,
    kDropIndex,
  };

  Kind kind;
  std::string database;
  /// Table name — or view name for the view kinds.
  std::string table;
  RowId row_id = 0;
  Row before;  // kDelete / kUpdate: the removed / overwritten row
  std::unique_ptr<Table> dropped_table;  // kDropTable: full table image
  std::unique_ptr<SelectStmt> dropped_view;  // kDropView: definition
  std::string index_name;    // index kinds
  std::string index_column;  // kDropIndex: rebuild target
};

using TxnId = uint64_t;

/// A local transaction: identity, state, undo log and lock set.
class Transaction {
 public:
  explicit Transaction(TxnId id) : id_(id) {}

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TxnId id() const { return id_; }
  TxnState state() const { return state_; }
  void set_state(TxnState state) { state_ = state; }

  bool IsTerminated() const {
    return state_ == TxnState::kCommitted || state_ == TxnState::kAborted;
  }

  /// Appends an undo record.
  void RecordUndo(UndoRecord record) {
    undo_log_.push_back(std::move(record));
  }

  size_t undo_log_size() const { return undo_log_.size(); }

  /// Applies the undo log in reverse against `databases`, emptying it.
  /// Lock release is the caller's (LockManager's) job.
  Status ApplyUndo(
      const std::map<std::string, std::unique_ptr<Database>>& databases);

  /// Discards the undo log (at commit).
  void DiscardUndo() { undo_log_.clear(); }

  /// Lock bookkeeping (owned lock names, "db.table" keys).
  std::set<std::string>& held_locks() { return held_locks_; }

 private:
  TxnId id_;
  TxnState state_ = TxnState::kActive;
  std::vector<UndoRecord> undo_log_;
  std::set<std::string> held_locks_;
};

/// Table-granularity strict two-phase locking with a *no-wait* policy:
/// a conflicting request fails immediately with kAborted instead of
/// blocking. No-wait keeps the single-threaded simulation deterministic
/// and models the paper's "local conflicts, failure, deadlock" abort
/// sources (§3.2) without a waits-for graph.
class LockManager {
 public:
  enum class Mode { kShared, kExclusive };

  /// Acquires (or upgrades) a lock on `resource` for `txn`. On conflict
  /// returns kAborted and leaves the lock table unchanged.
  Status Acquire(Transaction* txn, const std::string& resource, Mode mode);

  /// Releases every lock held by `txn`.
  void ReleaseAll(Transaction* txn);

  /// Number of distinct locked resources (introspection for tests).
  size_t locked_resource_count() const { return locks_.size(); }

 private:
  struct LockEntry {
    Mode mode = Mode::kShared;
    std::set<TxnId> holders;
  };
  std::map<std::string, LockEntry> locks_;
};

}  // namespace msql::relational

#endif  // MSQL_RELATIONAL_TXN_H_
