#ifndef MSQL_RELATIONAL_TXN_H_
#define MSQL_RELATIONAL_TXN_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "relational/database.h"
#include "relational/table.h"

namespace msql::relational {

/// Local transaction lifecycle.
///
/// `kPrepared` is the visible prepared-to-commit state of §3.2.1: the
/// transaction has executed all its operations and holds its locks, and
/// the only legal transitions are Commit and Rollback. Engines whose
/// capability profile lacks 2PC never expose this state.
enum class TxnState { kActive, kPrepared, kCommitted, kAborted };

std::string_view TxnStateName(TxnState state);

/// One entry of a transaction's undo log. Records are appended in
/// execution order and applied in reverse on rollback.
struct UndoRecord {
  enum class Kind {
    kInsert,
    kDelete,
    kUpdate,
    kCreateTable,
    kDropTable,
    kCreateView,
    kDropView,
    kCreateIndex,
    kDropIndex,
  };

  Kind kind;
  std::string database;
  /// Table name — or view name for the view kinds.
  std::string table;
  RowId row_id = 0;
  Row before;  // kDelete / kUpdate: the removed / overwritten row
  std::unique_ptr<Table> dropped_table;  // kDropTable: full table image
  std::unique_ptr<SelectStmt> dropped_view;  // kDropView: definition
  std::string index_name;    // index kinds
  std::string index_column;  // kDropIndex: rebuild target
};

using TxnId = uint64_t;

/// A local transaction: identity, state, undo log and lock set.
class Transaction {
 public:
  explicit Transaction(TxnId id) : id_(id) {}

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TxnId id() const { return id_; }
  TxnState state() const { return state_; }
  void set_state(TxnState state) { state_ = state; }

  bool IsTerminated() const {
    return state_ == TxnState::kCommitted || state_ == TxnState::kAborted;
  }

  /// Appends an undo record.
  void RecordUndo(UndoRecord record) {
    undo_log_.push_back(std::move(record));
  }

  size_t undo_log_size() const { return undo_log_.size(); }

  /// Applies the undo log in reverse against `databases`, emptying it.
  /// Lock release is the caller's (LockManager's) job.
  ///
  /// `fail_after_records` injects a failure after that many records have
  /// been undone (tests of the partial-rollback path); on any failure —
  /// injected or real — the log keeps its unapplied prefix, so
  /// undo_log_size() > 0 identifies a partially rolled-back transaction.
  Status ApplyUndo(
      const std::map<std::string, std::unique_ptr<Database>>& databases,
      size_t fail_after_records = SIZE_MAX);

  /// Discards the undo log (at commit).
  void DiscardUndo() { undo_log_.clear(); }

  /// Lock bookkeeping (owned lock names, "db.table" keys).
  std::set<std::string>& held_locks() { return held_locks_; }

 private:
  TxnId id_;
  TxnState state_ = TxnState::kActive;
  std::vector<UndoRecord> undo_log_;
  std::set<std::string> held_locks_;
};

/// Hierarchical strict two-phase locking (database → table).
///
/// A table lock request on "db.table" first takes the matching
/// *intention* lock (IS for shared, IX for exclusive) on the database
/// node "db", then the S/X lock on the table itself — the classic
/// multi-granularity protocol, so a future database-level operation can
/// conflict with table traffic without enumerating tables. Resources
/// without a '.' are locked flat (no parent).
///
/// Conflict policy is selectable:
///   - kNoWait (default): a conflicting request fails immediately with
///     kAborted. Deterministic, no waits-for graph — the single-session
///     behavior of §3.2 ("local conflicts, failure, deadlock").
///   - kWait: a conflicting request fails with kBusy and records the
///     blocking transactions in `last_conflict()`; the caller (the
///     concurrent federation scheduler) parks the session and retries
///     when a blocker releases. The lock table itself never blocks —
///     waiting is cooperative, on the simulated clock.
class LockManager {
 public:
  enum class Mode {
    kIntentionShared,
    kIntentionExclusive,
    kShared,
    kExclusive,
  };
  enum class WaitPolicy { kNoWait, kWait };

  void set_wait_policy(WaitPolicy policy) { wait_policy_ = policy; }
  WaitPolicy wait_policy() const { return wait_policy_; }

  /// Acquires (or upgrades) a lock on `resource` for `txn`. On conflict
  /// leaves the lock table unchanged and returns kAborted (no-wait) or
  /// kBusy (wait), recording the holders that blocked the request.
  Status Acquire(Transaction* txn, const std::string& resource, Mode mode);

  /// Releases every lock held by `txn`.
  void ReleaseAll(Transaction* txn);

  /// Transactions that blocked the most recent failed Acquire (empty
  /// after a successful one). The scheduler turns these into waits-for
  /// edges for deadlock detection.
  const std::vector<TxnId>& last_conflict() const { return last_conflict_; }

  /// Number of distinct locked resources (introspection for tests);
  /// database-level intention nodes count too.
  size_t locked_resource_count() const { return locks_.size(); }

  /// True when `holding` may coexist with `requested` on one resource.
  static bool Compatible(Mode holding, Mode requested);

  /// Test-only audit trail: when enabled, every successful grant is
  /// appended as (resource, mode) — upgrades and re-grants included.
  /// The conflict-analyzer property tests compare this against the
  /// statically predicted access sets.
  void set_audit(bool on) {
    audit_ = on;
    if (!on) audit_log_.clear();
  }
  const std::vector<std::pair<std::string, Mode>>& audit_log() const {
    return audit_log_;
  }
  void clear_audit_log() { audit_log_.clear(); }

 private:
  struct LockEntry {
    /// Per-holder granted mode — holders of one resource can hold
    /// different modes (e.g. IS next to IX at the database node).
    std::map<TxnId, Mode> holders;
  };

  Status AcquireOne(Transaction* txn, const std::string& resource,
                    Mode mode);

  WaitPolicy wait_policy_ = WaitPolicy::kNoWait;
  std::vector<TxnId> last_conflict_;
  std::map<std::string, LockEntry> locks_;
  bool audit_ = false;
  std::vector<std::pair<std::string, Mode>> audit_log_;
};

}  // namespace msql::relational

#endif  // MSQL_RELATIONAL_TXN_H_
