#ifndef MSQL_RELATIONAL_PLANNER_H_
#define MSQL_RELATIONAL_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"
#include "relational/sql/ast.h"
#include "relational/value.h"

namespace msql::relational {

class Index;
class Table;

/// One FROM source as the planner sees it: name, shape, size and (for
/// base tables) index access. Views pass a null `table` — they are
/// materialized before planning, so `row_count` is exact but no index
/// paths exist.
struct PlannerSource {
  std::string effective_name;  // lower-cased alias-or-table name
  const TableSchema* schema = nullptr;
  size_t row_count = 0;
  const Table* table = nullptr;  // null for views
};

/// A single-source conjunct evaluated on that source's rows before the
/// join. Expression pointers borrow from the statement's WHERE tree and
/// are only valid while the statement outlives the plan.
struct PushedFilter {
  size_t source = 0;
  const Expr* conjunct = nullptr;
};

/// Index access path chosen for one source: fetch only the rows whose
/// indexed column equals `key` instead of scanning. The probe conjunct
/// is consumed — index lookup and predicate agree on Value::Compare
/// equality, so re-evaluating it would be redundant.
struct PlannedProbe {
  size_t source = 0;
  const Index* index = nullptr;
  std::string index_name;
  std::string column;
  Value key;
  const Expr* conjunct = nullptr;
};

/// One step of the join pipeline: bring `source` into the joined prefix.
/// With equi-keys the step is a build/probe hash join (build side = the
/// new source); without, a nested-loop cross step. `residual` holds the
/// conjuncts first decidable at this step (all referenced sources now
/// joined) that did not become hash keys.
struct JoinStep {
  size_t source = 0;
  struct EquiKey {
    size_t prefix_pos = 0;  // combined-row position on the joined side
    size_t source_pos = 0;  // combined-row position on the new source
    const Expr* conjunct = nullptr;
  };
  std::vector<EquiKey> keys;
  std::vector<const Expr*> residual;
  double estimated_rows = 0.0;  // of this source, after pushed filters
};

/// Physical plan for one SELECT: per-source access paths and filters,
/// a join order, and the leftover predicate. All Expr pointers borrow
/// from the planned statement.
struct SelectPlan {
  std::vector<std::string> source_names;
  std::vector<size_t> source_offsets;  // combined-row offset per source
  std::vector<size_t> source_widths;
  std::vector<double> estimated_rows;  // per source, after pushed filters

  std::vector<PushedFilter> filters;
  std::vector<PlannedProbe> probes;  // at most one per source
  std::vector<JoinStep> steps;       // steps[0] seeds the pipeline
  /// Conjuncts only decidable on the fully joined row: scalar
  /// subqueries, aggregates-free expressions spanning no resolvable
  /// source, etc. Evaluated with the statement's full binding so errors
  /// (ambiguity, unknown names) surface exactly as the naive path's.
  std::vector<const Expr*> final_residual;

  int64_t pushed_conjuncts = 0;
  int64_t equi_conjuncts = 0;

  /// Non-empty when the planner declined the statement (a WHERE conjunct
  /// references names it cannot attribute to sources); the executor then
  /// runs the naive cross-product join, which owns the error surfacing.
  std::string fallback_reason;

  size_t num_sources() const { return source_names.size(); }
  const PlannedProbe* ProbeFor(size_t source) const;

  /// Deterministic human-readable rendering (the `\plan` / EXPLAIN
  /// text). Stable across runs for golden tests.
  std::string Explain() const;
};

/// Rewrites a SELECT into a physical plan: splits the WHERE into
/// top-level AND conjuncts, pushes single-source conjuncts below the
/// join, selects per-source index probes from pushed `col = literal`
/// conjuncts, turns two-source `a.x = b.y` conjuncts into hash-join
/// keys, and orders joins greedily by estimated cardinality (smallest
/// estimated source first, preferring sources hash-connected to the
/// joined prefix). Pure analysis — no locks, no data access.
Result<SelectPlan> PlanSelect(const SelectStmt& stmt,
                              const std::vector<PlannerSource>& sources);

}  // namespace msql::relational

#endif  // MSQL_RELATIONAL_PLANNER_H_
