#ifndef MSQL_RELATIONAL_INDEX_H_
#define MSQL_RELATIONAL_INDEX_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/table.h"
#include "relational/value.h"

namespace msql::relational {

/// Ordered secondary index over one column: value → live RowIds.
///
/// Maintained eagerly by the owning Table on every insert/delete/update;
/// the executor consults it for single-table equality predicates. NULL
/// keys are indexed too (IS NULL cannot use it — only `=` probes do, and
/// `= NULL` never matches — but keeping them makes maintenance uniform).
///
/// The base class is the in-memory implementation (a std::map). Paged
/// tables substitute BtreeIndex (storage_engine.h), which overrides the
/// virtual surface with a page-backed B+-tree; the executor and planner
/// only use that surface (LookupIds / distinct_keys), so they work
/// against either.
class Index {
 public:
  Index(std::string name, size_t column_index)
      : name_(std::move(name)), column_index_(column_index) {}
  virtual ~Index() = default;

  Index(const Index&) = delete;
  Index& operator=(const Index&) = delete;

  const std::string& name() const { return name_; }
  size_t column_index() const { return column_index_; }

  virtual Status Insert(const Value& key, RowId id) {
    entries_[key].push_back(id);
    return Status::OK();
  }

  virtual Status Erase(const Value& key, RowId id) {
    auto it = entries_.find(key);
    if (it == entries_.end()) return Status::OK();
    auto& ids = it->second;
    for (size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] == id) {
        ids.erase(ids.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
    if (ids.empty()) entries_.erase(it);
    return Status::OK();
  }

  /// RowIds whose column equals `key` (empty when none).
  virtual Result<std::vector<RowId>> LookupIds(const Value& key) const {
    const std::vector<RowId>* ids = Lookup(key);
    if (ids == nullptr) return std::vector<RowId>{};
    return *ids;
  }

  /// In-memory probe returning a stable pointer (nullptr when none).
  /// Only meaningful on the base implementation — paged callers go
  /// through LookupIds.
  const std::vector<RowId>* Lookup(const Value& key) const {
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
  }

  virtual size_t distinct_keys() const { return entries_.size(); }

 protected:
  struct ValueLess {
    bool operator()(const Value& a, const Value& b) const {
      return a.Compare(b) < 0;
    }
  };
  std::string name_;
  size_t column_index_;
  std::map<Value, std::vector<RowId>, ValueLess> entries_;
};

}  // namespace msql::relational

#endif  // MSQL_RELATIONAL_INDEX_H_
