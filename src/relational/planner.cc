#include "relational/planner.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/string_util.h"
#include "relational/index.h"
#include "relational/table.h"

namespace msql::relational {

namespace {

/// Case-insensitive column lookup, matching RowBinding's resolution.
std::optional<size_t> FindColumnOf(const TableSchema& schema,
                                   const std::string& name) {
  const auto& cols = schema.columns();
  for (size_t i = 0; i < cols.size(); ++i) {
    if (EqualsIgnoreCase(cols[i].name, name)) return i;
  }
  return std::nullopt;
}

/// Sources a column reference can bind to (same matching rule as the
/// executor's RowBinding: qualifier against effective name, then the
/// column must exist).
std::vector<size_t> MatchSources(const ColumnRefExpr& ref,
                                 const std::vector<PlannerSource>& sources) {
  std::vector<size_t> out;
  for (size_t i = 0; i < sources.size(); ++i) {
    if (!ref.qualifier().empty() &&
        !EqualsIgnoreCase(sources[i].effective_name, ref.qualifier())) {
      continue;
    }
    if (FindColumnOf(*sources[i].schema, ref.name()).has_value()) {
      out.push_back(i);
    }
  }
  return out;
}

/// Per-conjunct classification computed once up front.
struct ConjunctInfo {
  const Expr* expr = nullptr;
  std::vector<size_t> source_set;  // sorted, unique
  bool has_subquery = false;
  // `a.x = b.y` shape with both sides bare single-source column refs on
  // distinct sources (hash-join candidate).
  bool is_equi_pair = false;
  size_t left_source = 0, right_source = 0;
  size_t left_pos = 0, right_pos = 0;  // combined-row positions
  bool consumed = false;
};

std::string FormatEst(double est) {
  return std::to_string(static_cast<long long>(std::llround(est)));
}

}  // namespace

const PlannedProbe* SelectPlan::ProbeFor(size_t source) const {
  for (const auto& p : probes) {
    if (p.source == source) return &p;
  }
  return nullptr;
}

std::string SelectPlan::Explain() const {
  if (!fallback_reason.empty()) {
    return "plan: naive cross-product fallback (" + fallback_reason + ")\n";
  }
  std::string out = "plan: " + std::to_string(num_sources()) +
                    " source(s), " + std::to_string(pushed_conjuncts) +
                    " pushed conjunct(s), " + std::to_string(equi_conjuncts) +
                    " equi-join key(s)\n";
  for (size_t i = 0; i < num_sources(); ++i) {
    out += "  source " + std::to_string(i) + " (" + source_names[i] + "): ";
    if (const PlannedProbe* probe = ProbeFor(i)) {
      out += "index probe " + probe->index_name + " [" + probe->column +
             " = " + probe->key.ToSqlLiteral() + "]";
    } else {
      out += "scan";
    }
    for (const auto& f : filters) {
      if (f.source == i) out += "; filter " + f.conjunct->ToSql();
    }
    out += "; est " + FormatEst(estimated_rows[i]) + " row(s)\n";
  }
  out += "join order:\n";
  for (size_t k = 0; k < steps.size(); ++k) {
    const JoinStep& step = steps[k];
    out += "  [" + std::to_string(k) + "] ";
    if (k == 0) {
      out += "start";
    } else if (!step.keys.empty()) {
      out += "hash join";
    } else {
      out += "nested loop";
    }
    out += " source " + std::to_string(step.source) + " (" +
           source_names[step.source] + ")";
    for (size_t j = 0; j < step.keys.size(); ++j) {
      out += (j == 0 ? " on " : " and ") + step.keys[j].conjunct->ToSql();
    }
    for (const auto* residual : step.residual) {
      out += "; residual " + residual->ToSql();
    }
    out += "\n";
  }
  for (const auto* residual : final_residual) {
    out += "final filter: " + residual->ToSql() + "\n";
  }
  return out;
}

Result<SelectPlan> PlanSelect(const SelectStmt& stmt,
                              const std::vector<PlannerSource>& sources) {
  SelectPlan plan;
  size_t offset = 0;
  for (const auto& src : sources) {
    plan.source_names.push_back(src.effective_name);
    plan.source_offsets.push_back(offset);
    plan.source_widths.push_back(src.schema->num_columns());
    offset += src.schema->num_columns();
  }

  // -- Conjunct classification -------------------------------------------
  std::vector<ConjunctInfo> conjuncts;
  if (stmt.where != nullptr) {
    std::vector<const Expr*> split;
    SplitConjuncts(*stmt.where, &split);
    for (const Expr* c : split) {
      ConjunctInfo info;
      info.expr = c;
      info.has_subquery = ContainsScalarSubquery(*c);
      if (info.has_subquery) {
        // Uncorrelated subqueries cannot see the outer row, but their
        // conjunct must still be judged on fully joined rows.
        conjuncts.push_back(std::move(info));
        continue;
      }
      std::vector<const ColumnRefExpr*> refs;
      CollectColumnRefs(*c, &refs);
      for (const ColumnRefExpr* ref : refs) {
        std::vector<size_t> matches = MatchSources(*ref, sources);
        if (matches.size() != 1) {
          // Unknown or ambiguous name: the naive path owns the (row-
          // dependent) error surfacing, so don't second-guess it.
          plan.fallback_reason = matches.empty()
                                     ? "unresolved column '" +
                                           ref->FullName() + "' in WHERE"
                                     : "ambiguous column '" +
                                           ref->FullName() + "' in WHERE";
          return plan;
        }
        info.source_set.push_back(matches[0]);
      }
      std::sort(info.source_set.begin(), info.source_set.end());
      info.source_set.erase(
          std::unique(info.source_set.begin(), info.source_set.end()),
          info.source_set.end());
      // Hash-join candidate: `colA = colB` across two sources.
      if (info.source_set.size() == 2 && c->kind() == ExprKind::kBinary) {
        const auto& b = static_cast<const BinaryExpr&>(*c);
        if (b.op() == BinaryOp::kEq &&
            b.left().kind() == ExprKind::kColumnRef &&
            b.right().kind() == ExprKind::kColumnRef) {
          const auto& lref = static_cast<const ColumnRefExpr&>(b.left());
          const auto& rref = static_cast<const ColumnRefExpr&>(b.right());
          size_t ls = MatchSources(lref, sources)[0];
          size_t rs = MatchSources(rref, sources)[0];
          info.is_equi_pair = true;
          info.left_source = ls;
          info.right_source = rs;
          info.left_pos = plan.source_offsets[ls] +
                          *FindColumnOf(*sources[ls].schema, lref.name());
          info.right_pos = plan.source_offsets[rs] +
                           *FindColumnOf(*sources[rs].schema, rref.name());
        }
      }
      conjuncts.push_back(std::move(info));
    }
  }

  // Distribute: single-source conjuncts push below the join; zero-source
  // (constants) and subquery conjuncts stay on the joined row.
  for (auto& info : conjuncts) {
    if (info.has_subquery || info.source_set.empty()) {
      plan.final_residual.push_back(info.expr);
      info.consumed = true;
    } else if (info.source_set.size() == 1) {
      plan.filters.push_back(PushedFilter{info.source_set[0], info.expr});
      ++plan.pushed_conjuncts;
      info.consumed = true;
    }
  }

  // -- Index probe selection ---------------------------------------------
  // First pushed `col = literal` conjunct per base table whose column is
  // indexed. A NULL literal never matches under SQL `=`, so it stays a
  // plain filter (which rejects every row) instead of becoming a probe
  // (which would wrongly return NULL-keyed rows).
  for (size_t i = 0; i < sources.size(); ++i) {
    if (sources[i].table == nullptr) continue;
    for (auto it = plan.filters.begin(); it != plan.filters.end(); ++it) {
      if (it->source != i || it->conjunct->kind() != ExprKind::kBinary) {
        continue;
      }
      const auto& b = static_cast<const BinaryExpr&>(*it->conjunct);
      if (b.op() != BinaryOp::kEq) continue;
      const Expr* col = &b.left();
      const Expr* lit = &b.right();
      if (col->kind() != ExprKind::kColumnRef) std::swap(col, lit);
      if (col->kind() != ExprKind::kColumnRef ||
          lit->kind() != ExprKind::kLiteral) {
        continue;
      }
      const auto& ref = static_cast<const ColumnRefExpr&>(*col);
      const Value& key = static_cast<const LiteralExpr&>(*lit).value();
      if (key.is_null()) continue;
      const Index* index = sources[i].table->FindIndexOnColumn(ref.name());
      if (index == nullptr) continue;
      PlannedProbe probe;
      probe.source = i;
      probe.index = index;
      probe.index_name = index->name();
      probe.column = ToLower(ref.name());
      probe.key = key;
      probe.conjunct = it->conjunct;
      plan.probes.push_back(std::move(probe));
      --plan.pushed_conjuncts;
      plan.filters.erase(it);
      break;
    }
  }

  // -- Cardinality estimates ---------------------------------------------
  // Textbook selectivities: a probe yields rows/distinct-keys, a pushed
  // equality keeps 1/10, any other pushed filter 1/3. Estimates are
  // clamped to >= 1 row post-filter: an empty or heavily filtered source
  // still pays per-step bookkeeping and must never look cost-free, or
  // `est 0 row(s)` propagates through joins that still scan the other
  // side.
  plan.estimated_rows.assign(sources.size(), 0.0);
  for (size_t i = 0; i < sources.size(); ++i) {
    double est = static_cast<double>(sources[i].row_count);
    if (const PlannedProbe* probe = plan.ProbeFor(i)) {
      est /= static_cast<double>(std::max<size_t>(1, probe->index->distinct_keys()));
    }
    for (const auto& f : plan.filters) {
      if (f.source != i) continue;
      bool is_eq = f.conjunct->kind() == ExprKind::kBinary &&
                   static_cast<const BinaryExpr&>(*f.conjunct).op() ==
                       BinaryOp::kEq;
      est /= is_eq ? 10.0 : 3.0;
    }
    plan.estimated_rows[i] = std::max(est, 1.0);
  }

  // -- Greedy join ordering ----------------------------------------------
  // Start from the smallest estimated source; repeatedly join the
  // smallest source hash-connected to the prefix (falling back to the
  // smallest remaining source as a nested-loop cross step). Each step
  // consumes every conjunct whose sources are now all joined: equi pairs
  // with one side on the new source become hash keys, the rest become
  // the step's residual filter.
  std::vector<bool> joined(sources.size(), false);
  // Static hash-connectivity degree: how many unconsumed equi-join
  // pairs touch source i. Used as the first tie-breaker so that, when
  // estimates tie, the plan anchors on the source with the most join
  // partners instead of whichever came first in the FROM clause.
  auto connectivity = [&](size_t i) -> int {
    int degree = 0;
    for (const auto& info : conjuncts) {
      if (info.consumed || !info.is_equi_pair) continue;
      if (info.left_source == info.right_source) continue;
      if (info.left_source == i || info.right_source == i) ++degree;
    }
    return degree;
  };
  auto smallest = [&](bool need_connection) -> int {
    int best = -1;
    for (size_t i = 0; i < sources.size(); ++i) {
      if (joined[i]) continue;
      if (need_connection) {
        bool connected = false;
        for (const auto& info : conjuncts) {
          if (info.consumed || !info.is_equi_pair) continue;
          size_t a = info.left_source, b = info.right_source;
          if ((a == i && joined[b]) || (b == i && joined[a])) {
            connected = true;
            break;
          }
        }
        if (!connected) continue;
      }
      if (best < 0) {
        best = static_cast<int>(i);
        continue;
      }
      // Primary: smallest estimate. Ties break by hash-connectivity
      // (higher degree first), then by source name — never by FROM
      // position, which would make plans (and rows_scanned) depend on
      // clause order.
      const double est_i = plan.estimated_rows[i];
      const double est_best = plan.estimated_rows[best];
      bool better = est_i < est_best;
      if (est_i == est_best) {
        const int deg_i = connectivity(i);
        const int deg_best = connectivity(static_cast<size_t>(best));
        better = deg_i > deg_best ||
                 (deg_i == deg_best &&
                  plan.source_names[i] <
                      plan.source_names[static_cast<size_t>(best)]);
      }
      if (better) best = static_cast<int>(i);
    }
    return best;
  };

  for (size_t n = 0; n < sources.size(); ++n) {
    int next = n == 0 ? smallest(false) : smallest(true);
    if (next < 0) next = smallest(false);  // disconnected: cross step
    JoinStep step;
    step.source = static_cast<size_t>(next);
    step.estimated_rows = plan.estimated_rows[step.source];
    joined[step.source] = true;
    for (auto& info : conjuncts) {
      if (info.consumed) continue;
      bool covered = true;
      for (size_t s : info.source_set) {
        if (!joined[s]) covered = false;
      }
      if (!covered) continue;
      if (info.is_equi_pair &&
          (info.left_source == step.source ||
           info.right_source == step.source) &&
          info.left_source != info.right_source && n > 0) {
        JoinStep::EquiKey key;
        key.conjunct = info.expr;
        if (info.left_source == step.source) {
          key.source_pos = info.left_pos;
          key.prefix_pos = info.right_pos;
        } else {
          key.source_pos = info.right_pos;
          key.prefix_pos = info.left_pos;
        }
        step.keys.push_back(key);
        ++plan.equi_conjuncts;
      } else {
        step.residual.push_back(info.expr);
      }
      info.consumed = true;
    }
    plan.steps.push_back(std::move(step));
  }

  return plan;
}

}  // namespace msql::relational
