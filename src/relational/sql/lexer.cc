#include "relational/sql/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace msql::relational {

std::string_view TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kIdentifier: return "identifier";
    case TokenType::kString: return "string";
    case TokenType::kInteger: return "integer";
    case TokenType::kReal: return "real";
    case TokenType::kLParen: return "'('";
    case TokenType::kRParen: return "')'";
    case TokenType::kComma: return "','";
    case TokenType::kSemicolon: return "';'";
    case TokenType::kDot: return "'.'";
    case TokenType::kEq: return "'='";
    case TokenType::kNe: return "'<>'";
    case TokenType::kLt: return "'<'";
    case TokenType::kLe: return "'<='";
    case TokenType::kGt: return "'>'";
    case TokenType::kGe: return "'>='";
    case TokenType::kPlus: return "'+'";
    case TokenType::kMinus: return "'-'";
    case TokenType::kStar: return "'*'";
    case TokenType::kSlash: return "'/'";
    case TokenType::kTilde: return "'~'";
    case TokenType::kLBrace: return "'{'";
    case TokenType::kRBrace: return "'}'";
    case TokenType::kEof: return "end of input";
  }
  return "unknown";
}

bool Token::IsKeyword(std::string_view kw) const {
  return type == TokenType::kIdentifier && EqualsIgnoreCase(text, kw);
}

std::string Token::Where() const {
  return "line " + std::to_string(line) + " col " + std::to_string(column);
}

namespace {

bool IsIdentStart(char c, bool allow_percent) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
         (allow_percent && c == '%');
}

bool IsIdentChar(char c, bool allow_percent) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         (allow_percent && c == '%');
}

class LexerImpl {
 public:
  LexerImpl(std::string_view text, const LexerOptions& options)
      : text_(text), options_(options) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      Token tok;
      tok.line = line_;
      tok.column = column_;
      if (AtEnd()) {
        tok.type = TokenType::kEof;
        tokens.push_back(std::move(tok));
        return tokens;
      }
      char c = Peek();
      if (IsIdentStart(c, options_.percent_in_identifiers)) {
        tok.type = TokenType::kIdentifier;
        while (!AtEnd() &&
               IsIdentChar(Peek(), options_.percent_in_identifiers)) {
          tok.text += Get();
        }
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        MSQL_RETURN_IF_ERROR(LexNumber(&tok));
      } else if (c == '\'') {
        MSQL_RETURN_IF_ERROR(LexString(&tok));
      } else {
        MSQL_RETURN_IF_ERROR(LexPunct(&tok));
      }
      tokens.push_back(std::move(tok));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  char PeekAt(size_t offset) const {
    return pos_ + offset < text_.size() ? text_[pos_ + offset] : '\0';
  }
  char Get() {
    char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Get();
      } else if (c == '-' && PeekAt(1) == '-') {
        while (!AtEnd() && Peek() != '\n') Get();
      } else {
        return;
      }
    }
  }

  Status LexNumber(Token* tok) {
    std::string digits;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      digits += Get();
    }
    bool is_real = false;
    if (!AtEnd() && Peek() == '.' &&
        std::isdigit(static_cast<unsigned char>(PeekAt(1)))) {
      is_real = true;
      digits += Get();  // '.'
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        digits += Get();
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      size_t save = 1;
      if (PeekAt(save) == '+' || PeekAt(save) == '-') ++save;
      if (std::isdigit(static_cast<unsigned char>(PeekAt(save)))) {
        is_real = true;
        digits += Get();  // e
        if (Peek() == '+' || Peek() == '-') digits += Get();
        while (!AtEnd() &&
               std::isdigit(static_cast<unsigned char>(Peek()))) {
          digits += Get();
        }
      }
    }
    tok->text = digits;
    if (is_real) {
      tok->type = TokenType::kReal;
      tok->real_value = std::stod(digits);
    } else {
      tok->type = TokenType::kInteger;
      try {
        tok->int_value = std::stoll(digits);
      } catch (...) {
        return Status::ParseError("integer literal out of range at " +
                                  tok->Where());
      }
    }
    return Status::OK();
  }

  Status LexString(Token* tok) {
    Get();  // opening quote
    tok->type = TokenType::kString;
    while (true) {
      if (AtEnd()) {
        return Status::ParseError("unterminated string literal at " +
                                  tok->Where());
      }
      char c = Get();
      if (c == '\'') {
        if (!AtEnd() && Peek() == '\'') {
          tok->text += '\'';
          Get();
        } else {
          return Status::OK();
        }
      } else {
        tok->text += c;
      }
    }
  }

  Status LexPunct(Token* tok) {
    char c = Get();
    switch (c) {
      case '(': tok->type = TokenType::kLParen; return Status::OK();
      case ')': tok->type = TokenType::kRParen; return Status::OK();
      case ',': tok->type = TokenType::kComma; return Status::OK();
      case ';': tok->type = TokenType::kSemicolon; return Status::OK();
      case '.': tok->type = TokenType::kDot; return Status::OK();
      case '=': tok->type = TokenType::kEq; return Status::OK();
      case '+': tok->type = TokenType::kPlus; return Status::OK();
      case '-': tok->type = TokenType::kMinus; return Status::OK();
      case '*': tok->type = TokenType::kStar; return Status::OK();
      case '/': tok->type = TokenType::kSlash; return Status::OK();
      case '~': tok->type = TokenType::kTilde; return Status::OK();
      case '<':
        if (!AtEnd() && Peek() == '=') {
          Get();
          tok->type = TokenType::kLe;
        } else if (!AtEnd() && Peek() == '>') {
          Get();
          tok->type = TokenType::kNe;
        } else {
          tok->type = TokenType::kLt;
        }
        return Status::OK();
      case '>':
        if (!AtEnd() && Peek() == '=') {
          Get();
          tok->type = TokenType::kGe;
        } else {
          tok->type = TokenType::kGt;
        }
        return Status::OK();
      case '!':
        if (!AtEnd() && Peek() == '=') {
          Get();
          tok->type = TokenType::kNe;
          return Status::OK();
        }
        return Status::ParseError("unexpected '!' at " + tok->Where());
      case '{':
        if (options_.braces) {
          tok->type = TokenType::kLBrace;
          return Status::OK();
        }
        return Status::ParseError("unexpected '{' at " + tok->Where());
      case '}':
        if (options_.braces) {
          tok->type = TokenType::kRBrace;
          return Status::OK();
        }
        return Status::ParseError("unexpected '}' at " + tok->Where());
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at " + tok->Where());
    }
  }

  std::string_view text_;
  LexerOptions options_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view text,
                                    const LexerOptions& options) {
  return LexerImpl(text, options).Run();
}

}  // namespace msql::relational
