#ifndef MSQL_RELATIONAL_SQL_AST_H_
#define MSQL_RELATIONAL_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "relational/value.h"

namespace msql::relational {

class Expr;
using ExprPtr = std::unique_ptr<Expr>;
struct SelectStmt;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kUnary,
  kBinary,
  kFunctionCall,
  kScalarSubquery,
  kInList,
  kBetween,
};

enum class UnaryOp { kNot, kNegate, kIsNull, kIsNotNull };

enum class BinaryOp {
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kAdd, kSub, kMul, kDiv,
  kLike,
};

/// Base class of all SQL expressions. Nodes are heap-allocated and owned
/// through ExprPtr; Clone() performs a deep copy, which the MSQL expander
/// relies on when generating one elementary query per database.
class Expr {
 public:
  explicit Expr(ExprKind kind) : kind_(kind) {}
  virtual ~Expr() = default;

  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  ExprKind kind() const { return kind_; }

  /// Deep copy.
  virtual ExprPtr Clone() const = 0;

  /// Renders the expression back to SQL text (parenthesized as needed).
  virtual std::string ToSql() const = 0;

 private:
  ExprKind kind_;
};

/// Constant value.
class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value value)
      : Expr(ExprKind::kLiteral), value_(std::move(value)) {}

  const Value& value() const { return value_; }

  ExprPtr Clone() const override {
    return std::make_unique<LiteralExpr>(value_);
  }
  std::string ToSql() const override { return value_.ToSqlLiteral(); }

 private:
  Value value_;
};

/// Reference to a column, optionally qualified by a table (or alias).
///
/// MSQL annotations live here too: `optional_column` records the `~`
/// designator (schema-heterogeneity: drop the column in databases that
/// lack it), and a name containing '%' makes this a *multiple identifier*
/// to be expanded against the GDD. After expansion/decomposition the
/// annotations are cleared and the node is plain SQL.
class ColumnRefExpr : public Expr {
 public:
  ColumnRefExpr(std::string qualifier, std::string name,
                bool optional_column = false)
      : Expr(ExprKind::kColumnRef),
        qualifier_(std::move(qualifier)),
        name_(std::move(name)),
        optional_column_(optional_column) {}

  /// Table name or alias; empty when unqualified.
  const std::string& qualifier() const { return qualifier_; }
  const std::string& name() const { return name_; }
  bool optional_column() const { return optional_column_; }

  void set_qualifier(std::string q) { qualifier_ = std::move(q); }
  void set_name(std::string n) { name_ = std::move(n); }
  void clear_optional() { optional_column_ = false; }

  /// 1-based source position of the name token; 0 when synthesized.
  int line() const { return line_; }
  int column() const { return column_; }
  void set_position(int line, int column) {
    line_ = line;
    column_ = column;
  }

  /// "qualifier.name" or "name".
  std::string FullName() const {
    return qualifier_.empty() ? name_ : qualifier_ + "." + name_;
  }

  ExprPtr Clone() const override {
    auto copy = std::make_unique<ColumnRefExpr>(qualifier_, name_,
                                                optional_column_);
    copy->set_position(line_, column_);
    return copy;
  }
  std::string ToSql() const override {
    return (optional_column_ ? "~" : "") + FullName();
  }

 private:
  std::string qualifier_;
  std::string name_;
  bool optional_column_;
  int line_ = 0;
  int column_ = 0;
};

/// NOT / unary minus / IS [NOT] NULL.
class UnaryExpr : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : Expr(ExprKind::kUnary), op_(op), operand_(std::move(operand)) {}

  UnaryOp op() const { return op_; }
  const Expr& operand() const { return *operand_; }
  Expr* mutable_operand() { return operand_.get(); }
  ExprPtr& operand_ptr() { return operand_; }

  ExprPtr Clone() const override {
    return std::make_unique<UnaryExpr>(op_, operand_->Clone());
  }
  std::string ToSql() const override;

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

/// Binary operator application.
class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kBinary),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}

  BinaryOp op() const { return op_; }
  const Expr& left() const { return *left_; }
  const Expr& right() const { return *right_; }
  Expr* mutable_left() { return left_.get(); }
  Expr* mutable_right() { return right_.get(); }
  ExprPtr& left_ptr() { return left_; }
  ExprPtr& right_ptr() { return right_; }

  ExprPtr Clone() const override {
    return std::make_unique<BinaryExpr>(op_, left_->Clone(),
                                        right_->Clone());
  }
  std::string ToSql() const override;

 private:
  BinaryOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// Function call: aggregates (COUNT/SUM/AVG/MIN/MAX, COUNT(*)) and scalar
/// functions (UPPER/LOWER/LENGTH/ABS/ROUND).
class FunctionCallExpr : public Expr {
 public:
  FunctionCallExpr(std::string name, std::vector<ExprPtr> args,
                   bool star = false)
      : Expr(ExprKind::kFunctionCall),
        name_(std::move(name)),
        args_(std::move(args)),
        star_(star) {}

  /// Upper-cased function name.
  const std::string& name() const { return name_; }
  const std::vector<ExprPtr>& args() const { return args_; }
  std::vector<ExprPtr>& mutable_args() { return args_; }
  /// True for COUNT(*).
  bool star() const { return star_; }

  /// True if `name` is one of the five SQL aggregate functions.
  static bool IsAggregateName(const std::string& upper_name);

  ExprPtr Clone() const override;
  std::string ToSql() const override;

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
  bool star_;
};

/// Scalar subquery: (SELECT ...) used as a value; must yield one column
/// and at most one row (zero rows yield NULL, as in the paper's
/// `WHERE snu = (SELECT MIN(snu) ...)` reservation idiom).
class ScalarSubqueryExpr : public Expr {
 public:
  explicit ScalarSubqueryExpr(std::unique_ptr<SelectStmt> select);
  ~ScalarSubqueryExpr() override;

  const SelectStmt& select() const { return *select_; }
  SelectStmt* mutable_select() { return select_.get(); }

  ExprPtr Clone() const override;
  std::string ToSql() const override;

 private:
  std::unique_ptr<SelectStmt> select_;
};

/// expr [NOT] IN (v1, v2, ...).
class InListExpr : public Expr {
 public:
  InListExpr(ExprPtr operand, std::vector<ExprPtr> list, bool negated)
      : Expr(ExprKind::kInList),
        operand_(std::move(operand)),
        list_(std::move(list)),
        negated_(negated) {}

  const Expr& operand() const { return *operand_; }
  Expr* mutable_operand() { return operand_.get(); }
  const std::vector<ExprPtr>& list() const { return list_; }
  std::vector<ExprPtr>& mutable_list() { return list_; }
  bool negated() const { return negated_; }

  ExprPtr Clone() const override;
  std::string ToSql() const override;

 private:
  ExprPtr operand_;
  std::vector<ExprPtr> list_;
  bool negated_;
};

/// expr [NOT] BETWEEN lo AND hi.
class BetweenExpr : public Expr {
 public:
  BetweenExpr(ExprPtr operand, ExprPtr lo, ExprPtr hi, bool negated)
      : Expr(ExprKind::kBetween),
        operand_(std::move(operand)),
        lo_(std::move(lo)),
        hi_(std::move(hi)),
        negated_(negated) {}

  const Expr& operand() const { return *operand_; }
  const Expr& lo() const { return *lo_; }
  const Expr& hi() const { return *hi_; }
  Expr* mutable_operand() { return operand_.get(); }
  Expr* mutable_lo() { return lo_.get(); }
  Expr* mutable_hi() { return hi_.get(); }
  bool negated() const { return negated_; }

  ExprPtr Clone() const override {
    return std::make_unique<BetweenExpr>(operand_->Clone(), lo_->Clone(),
                                         hi_->Clone(), negated_);
  }
  std::string ToSql() const override;

 private:
  ExprPtr operand_;
  ExprPtr lo_;
  ExprPtr hi_;
  bool negated_;
};

// ---------------------------------------------------------------------------
// Expression analysis utilities (used by the local query planner)
// ---------------------------------------------------------------------------

/// Splits a predicate into its top-level AND conjuncts, appended to
/// `out` in left-to-right source order. A non-AND expression is its own
/// single conjunct. Because SQL's three-valued AND is TRUE iff every
/// conjunct is TRUE, a filter point may evaluate the conjuncts
/// independently and keep a row only when all of them hold.
void SplitConjuncts(const Expr& e, std::vector<const Expr*>* out);

/// Collects every column reference in the tree, in evaluation order.
/// Does NOT descend into scalar subqueries — their names bind to the
/// subquery's own FROM scope, not the enclosing one.
void CollectColumnRefs(const Expr& e,
                       std::vector<const ColumnRefExpr*>* out);

/// True if the tree contains a scalar subquery node (at any depth).
bool ContainsScalarSubquery(const Expr& e);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StatementKind {
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
  kCreateTable,
  kDropTable,
  kCreateView,
  kDropView,
  kCreateIndex,
  kDropIndex,
  kCreateDatabase,
  kDropDatabase,
  kBegin,
  kCommit,
  kRollback,
  kPrepare,
};

/// Base class of SQL statements.
class Statement {
 public:
  explicit Statement(StatementKind kind) : kind_(kind) {}
  virtual ~Statement() = default;

  Statement(const Statement&) = delete;
  Statement& operator=(const Statement&) = delete;

  StatementKind kind() const { return kind_; }

  virtual std::unique_ptr<Statement> Clone() const = 0;
  virtual std::string ToSql() const = 0;

 private:
  StatementKind kind_;
};

using StatementPtr = std::unique_ptr<Statement>;

/// Reference to a table in FROM / INSERT / UPDATE / DELETE.
///
/// `database` is the optional MSQL database prefix (`avis.cars`); it is
/// empty in SQL shipped to a NOCONNECT LDBMS, which serves exactly one
/// database. A name containing '%' is a multiple identifier.
struct TableRef {
  std::string database;  // optional db qualifier
  std::string table;
  std::string alias;  // optional
  int line = 0;    // 1-based source position of the table token
  int column = 0;  // (0 when synthesized)

  std::string FullName() const {
    return database.empty() ? table : database + "." + table;
  }
  std::string ToSql() const {
    return FullName() + (alias.empty() ? "" : " " + alias);
  }
  /// Name the table is visible as in expressions: alias if present.
  const std::string& EffectiveName() const {
    return alias.empty() ? table : alias;
  }
  bool operator==(const TableRef& other) const {
    return database == other.database && table == other.table &&
           alias == other.alias;
  }
};

/// One item of a SELECT list: expression with optional alias, or `*` /
/// `qualifier.*`.
struct SelectItem {
  ExprPtr expr;          // null when is_star
  std::string alias;     // optional AS name
  bool is_star = false;  // SELECT * or qualifier.*
  std::string star_qualifier;

  SelectItem() = default;
  SelectItem(ExprPtr e, std::string a)
      : expr(std::move(e)), alias(std::move(a)) {}

  SelectItem CloneItem() const {
    SelectItem out;
    out.expr = expr ? expr->Clone() : nullptr;
    out.alias = alias;
    out.is_star = is_star;
    out.star_qualifier = star_qualifier;
    return out;
  }
  std::string ToSql() const;
};

/// ORDER BY element.
struct OrderItem {
  ExprPtr expr;
  bool descending = false;

  OrderItem() = default;
  OrderItem(ExprPtr e, bool desc) : expr(std::move(e)), descending(desc) {}
  OrderItem CloneItem() const {
    return OrderItem(expr->Clone(), descending);
  }
};

/// SELECT [DISTINCT] items FROM tables [WHERE] [GROUP BY [HAVING]]
/// [ORDER BY].
struct SelectStmt : public Statement {
  SelectStmt() : Statement(StatementKind::kSelect) {}

  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;  // may be null
  std::vector<ExprPtr> group_by;
  ExprPtr having;  // may be null
  std::vector<OrderItem> order_by;

  /// Typed deep copy (Statement::Clone wraps this).
  std::unique_ptr<SelectStmt> CloneSelect() const;
  StatementPtr Clone() const override { return CloneSelect(); }
  std::string ToSql() const override;
};

/// INSERT INTO table [(cols)] VALUES (...), (...) | SELECT ...
struct InsertStmt : public Statement {
  InsertStmt() : Statement(StatementKind::kInsert) {}

  TableRef table;
  std::vector<std::string> columns;  // empty = all, in schema order
  std::vector<std::vector<ExprPtr>> values_rows;
  std::unique_ptr<SelectStmt> select_source;  // alternative to VALUES

  StatementPtr Clone() const override;
  std::string ToSql() const override;
};

/// One SET clause of an UPDATE.
struct Assignment {
  /// Target column; may carry MSQL '%' before expansion.
  std::string column;
  ExprPtr value;

  Assignment() = default;
  Assignment(std::string c, ExprPtr v)
      : column(std::move(c)), value(std::move(v)) {}
  Assignment CloneAssignment() const {
    return Assignment(column, value->Clone());
  }
};

/// UPDATE table SET assignments [WHERE].
struct UpdateStmt : public Statement {
  UpdateStmt() : Statement(StatementKind::kUpdate) {}

  TableRef table;
  std::vector<Assignment> assignments;
  ExprPtr where;  // may be null

  StatementPtr Clone() const override;
  std::string ToSql() const override;
};

/// DELETE FROM table [WHERE].
struct DeleteStmt : public Statement {
  DeleteStmt() : Statement(StatementKind::kDelete) {}

  TableRef table;
  ExprPtr where;  // may be null

  StatementPtr Clone() const override;
  std::string ToSql() const override;
};

/// Column definition inside CREATE TABLE (type still by name; resolved at
/// execution).
struct ColumnSpec {
  std::string name;
  std::string type_name;
  int width = 0;

  bool operator==(const ColumnSpec& other) const {
    return name == other.name && type_name == other.type_name &&
           width == other.width;
  }
};

/// CREATE TABLE table (col TYPE[(width)], ...).
struct CreateTableStmt : public Statement {
  CreateTableStmt() : Statement(StatementKind::kCreateTable) {}

  TableRef table;
  std::vector<ColumnSpec> columns;

  StatementPtr Clone() const override;
  std::string ToSql() const override;
};

/// DROP TABLE table.
struct DropTableStmt : public Statement {
  DropTableStmt() : Statement(StatementKind::kDropTable) {}

  TableRef table;

  StatementPtr Clone() const override;
  std::string ToSql() const override;
};

/// CREATE VIEW name AS SELECT ... (local LDBS view; materialized when
/// scanned, exportable via IMPORT VIEW).
struct CreateViewStmt : public Statement {
  CreateViewStmt() : Statement(StatementKind::kCreateView) {}

  std::string name;
  std::unique_ptr<SelectStmt> definition;

  StatementPtr Clone() const override;
  std::string ToSql() const override;
};

/// DROP VIEW name.
struct DropViewStmt : public Statement {
  DropViewStmt() : Statement(StatementKind::kDropView) {}

  std::string name;

  StatementPtr Clone() const override;
  std::string ToSql() const override;
};

/// CREATE INDEX name ON table (column) — secondary equality index.
struct CreateIndexStmt : public Statement {
  CreateIndexStmt() : Statement(StatementKind::kCreateIndex) {}

  std::string name;
  TableRef table;
  std::string column;

  StatementPtr Clone() const override;
  std::string ToSql() const override;
};

/// DROP INDEX name ON table.
struct DropIndexStmt : public Statement {
  DropIndexStmt() : Statement(StatementKind::kDropIndex) {}

  std::string name;
  TableRef table;

  StatementPtr Clone() const override;
  std::string ToSql() const override;
};

/// CREATE DATABASE name.
struct CreateDatabaseStmt : public Statement {
  CreateDatabaseStmt() : Statement(StatementKind::kCreateDatabase) {}

  std::string name;

  StatementPtr Clone() const override;
  std::string ToSql() const override;
};

/// DROP DATABASE name.
struct DropDatabaseStmt : public Statement {
  DropDatabaseStmt() : Statement(StatementKind::kDropDatabase) {}

  std::string name;

  StatementPtr Clone() const override;
  std::string ToSql() const override;
};

/// BEGIN / COMMIT / ROLLBACK / PREPARE transaction-control statements.
struct TxnControlStmt : public Statement {
  explicit TxnControlStmt(StatementKind kind) : Statement(kind) {}

  StatementPtr Clone() const override {
    return std::make_unique<TxnControlStmt>(kind());
  }
  std::string ToSql() const override;
};

}  // namespace msql::relational

#endif  // MSQL_RELATIONAL_SQL_AST_H_
