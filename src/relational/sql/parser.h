#ifndef MSQL_RELATIONAL_SQL_PARSER_H_
#define MSQL_RELATIONAL_SQL_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relational/sql/ast.h"
#include "relational/sql/token.h"

namespace msql::relational {

/// Cursor over a token vector, shared by the SQL, MSQL and DOL parsers.
class TokenCursor {
 public:
  explicit TokenCursor(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  /// Token at current position + `offset` (clamped to the final kEof).
  const Token& Peek(size_t offset = 0) const {
    size_t i = pos_ + offset;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  /// Consumes and returns the current token.
  Token Get() {
    Token tok = Peek();
    if (pos_ < tokens_.size() - 1) ++pos_;
    return tok;
  }

  bool AtEnd() const { return Peek().type == TokenType::kEof; }

  /// Consumes the current token if it has the given type.
  bool Match(TokenType type) {
    if (Peek().type != type) return false;
    Get();
    return true;
  }

  /// Consumes the current token if it is the given keyword.
  bool MatchKeyword(std::string_view kw) {
    if (!Peek().IsKeyword(kw)) return false;
    Get();
    return true;
  }

  /// Requires and consumes a token of `type`; stores it in `out` if given.
  Status Expect(TokenType type, Token* out = nullptr);

  /// Requires and consumes the keyword `kw`.
  Status ExpectKeyword(std::string_view kw);

  /// Requires and consumes an identifier, returning its lower-cased text.
  Result<std::string> ExpectIdentifier(std::string_view what);

  /// Save/restore for speculative parsing.
  size_t position() const { return pos_; }
  void set_position(size_t pos) { pos_ = pos; }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

/// Parser dialect switches.
struct ParseOptions {
  /// Accept MSQL extensions inside statement bodies: '~' optional-column
  /// designators and '%' multiple identifiers (the '%' acceptance is a
  /// lexer option; this flag gates '~').
  bool msql_extensions = false;
};

/// Recursive-descent parser for the SQL dialect of the local engines.
///
/// Supported: SELECT (DISTINCT, multi-table FROM with aliases, WHERE,
/// GROUP BY/HAVING, ORDER BY, aggregates, scalar subqueries, IN,
/// BETWEEN, LIKE, IS [NOT] NULL), INSERT (VALUES and SELECT source),
/// UPDATE, DELETE, CREATE/DROP TABLE, CREATE/DROP DATABASE and the
/// transaction-control verbs BEGIN / COMMIT / ROLLBACK / PREPARE.
class SqlParser {
 public:
  SqlParser(TokenCursor* cursor, ParseOptions options)
      : cursor_(cursor), options_(options) {}

  /// Parses a single statement (without trailing ';').
  Result<StatementPtr> ParseStatement();

  /// Parses a SELECT statement (entry point also used by subqueries and
  /// the MSQL parser).
  Result<std::unique_ptr<SelectStmt>> ParseSelect();
  Result<std::unique_ptr<InsertStmt>> ParseInsert();
  Result<std::unique_ptr<UpdateStmt>> ParseUpdate();
  Result<std::unique_ptr<DeleteStmt>> ParseDelete();

  /// Parses an expression (entry point also used by the MSQL parser).
  Result<ExprPtr> ParseExpression();

  /// Parses `[db.]table [alias]`.
  Result<TableRef> ParseTableRef();

  /// True if `word` is reserved in this dialect (never an alias).
  static bool IsReservedWord(std::string_view word);

 private:
  Result<StatementPtr> ParseCreate();
  Result<StatementPtr> ParseDrop();
  Result<std::unique_ptr<CreateTableStmt>> ParseCreateTableBody();
  Result<SelectItem> ParseSelectItem();
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();
  Result<ExprPtr> ParseColumnOrFunction();

  TokenCursor* cursor_;
  ParseOptions options_;
};

/// Parses exactly one SQL statement from `text` (optional trailing ';').
Result<StatementPtr> ParseSql(std::string_view text,
                              const ParseOptions& options = {});

/// Parses a ';'-separated script.
Result<std::vector<StatementPtr>> ParseSqlScript(
    std::string_view text, const ParseOptions& options = {});

}  // namespace msql::relational

#endif  // MSQL_RELATIONAL_SQL_PARSER_H_
