#ifndef MSQL_RELATIONAL_SQL_LEXER_H_
#define MSQL_RELATIONAL_SQL_LEXER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "relational/sql/token.h"

namespace msql::relational {

/// Lexer dialect switches.
struct LexerOptions {
  /// When true, '%' is part of identifier tokens (MSQL implicit semantic
  /// variables such as %code and flight%); when false '%' is rejected
  /// outside string literals, as in plain SQL shipped to an LDBMS.
  bool percent_in_identifiers = false;
  /// When true, '{' ... '}' blocks are lexed (DOL task bodies and
  /// comments); when false braces are rejected.
  bool braces = false;
};

/// Tokenizes `text` under `options`. The result always ends with a kEof
/// token carrying the final source position.
Result<std::vector<Token>> Tokenize(std::string_view text,
                                    const LexerOptions& options = {});

}  // namespace msql::relational

#endif  // MSQL_RELATIONAL_SQL_LEXER_H_
