#include "relational/sql/ast.h"

#include "common/string_util.h"

namespace msql::relational {

namespace {

std::string_view BinaryOpSql(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kLike: return "LIKE";
  }
  return "?";
}

/// Binding strength of a binary operator (higher binds tighter).
int Precedence(BinaryOp op) {
  switch (op) {
    case BinaryOp::kOr: return 1;
    case BinaryOp::kAnd: return 2;
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kLike:
      return 3;
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
      return 4;
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
      return 5;
  }
  return 0;
}

bool IsAssociative(BinaryOp op) {
  return op == BinaryOp::kAnd || op == BinaryOp::kOr ||
         op == BinaryOp::kAdd || op == BinaryOp::kMul;
}

/// True if rendering `e` as an operand requires parentheses to be
/// unambiguous. Non-binary compound nodes (NOT, BETWEEN, IN, ...) are
/// always parenthesized for clarity; binary nodes follow precedence.
bool NeedsParens(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
    case ExprKind::kFunctionCall:
    case ExprKind::kScalarSubquery:
      return false;
    default:
      return true;
  }
}

std::string OperandSql(const Expr& e) {
  return NeedsParens(e) ? "(" + e.ToSql() + ")" : e.ToSql();
}

/// Operand rendering inside a binary expression of operator `parent`:
/// parenthesizes only when precedence (or non-associative equal
/// precedence on the right) demands it.
std::string BinaryOperandSql(const Expr& e, BinaryOp parent,
                             bool is_right) {
  if (e.kind() == ExprKind::kBinary) {
    const auto& child = static_cast<const BinaryExpr&>(e);
    int parent_prec = Precedence(parent);
    int child_prec = Precedence(child.op());
    bool parens;
    if (child_prec > parent_prec) {
      parens = false;
    } else if (child_prec < parent_prec) {
      parens = true;
    } else {
      parens = is_right &&
               !(child.op() == parent && IsAssociative(parent));
    }
    return parens ? "(" + e.ToSql() + ")" : e.ToSql();
  }
  return OperandSql(e);
}

}  // namespace

std::string UnaryExpr::ToSql() const {
  switch (op_) {
    case UnaryOp::kNot:
      return "NOT " + OperandSql(*operand_);
    case UnaryOp::kNegate:
      return "-" + OperandSql(*operand_);
    case UnaryOp::kIsNull:
      return OperandSql(*operand_) + " IS NULL";
    case UnaryOp::kIsNotNull:
      return OperandSql(*operand_) + " IS NOT NULL";
  }
  return "?";
}

std::string BinaryExpr::ToSql() const {
  return BinaryOperandSql(*left_, op_, /*is_right=*/false) + " " +
         std::string(BinaryOpSql(op_)) + " " +
         BinaryOperandSql(*right_, op_, /*is_right=*/true);
}

bool FunctionCallExpr::IsAggregateName(const std::string& upper_name) {
  return upper_name == "COUNT" || upper_name == "SUM" ||
         upper_name == "AVG" || upper_name == "MIN" || upper_name == "MAX";
}

ExprPtr FunctionCallExpr::Clone() const {
  std::vector<ExprPtr> args;
  args.reserve(args_.size());
  for (const auto& a : args_) args.push_back(a->Clone());
  return std::make_unique<FunctionCallExpr>(name_, std::move(args), star_);
}

std::string FunctionCallExpr::ToSql() const {
  std::string out = name_ + "(";
  if (star_) {
    out += "*";
  } else {
    for (size_t i = 0; i < args_.size(); ++i) {
      if (i > 0) out += ", ";
      out += args_[i]->ToSql();
    }
  }
  out += ")";
  return out;
}

ScalarSubqueryExpr::ScalarSubqueryExpr(std::unique_ptr<SelectStmt> select)
    : Expr(ExprKind::kScalarSubquery), select_(std::move(select)) {}

ScalarSubqueryExpr::~ScalarSubqueryExpr() = default;

ExprPtr ScalarSubqueryExpr::Clone() const {
  return std::make_unique<ScalarSubqueryExpr>(select_->CloneSelect());
}

std::string ScalarSubqueryExpr::ToSql() const {
  return "(" + select_->ToSql() + ")";
}

ExprPtr InListExpr::Clone() const {
  std::vector<ExprPtr> list;
  list.reserve(list_.size());
  for (const auto& e : list_) list.push_back(e->Clone());
  return std::make_unique<InListExpr>(operand_->Clone(), std::move(list),
                                      negated_);
}

std::string InListExpr::ToSql() const {
  std::string out = OperandSql(*operand_);
  out += negated_ ? " NOT IN (" : " IN (";
  for (size_t i = 0; i < list_.size(); ++i) {
    if (i > 0) out += ", ";
    out += list_[i]->ToSql();
  }
  out += ")";
  return out;
}

std::string BetweenExpr::ToSql() const {
  return OperandSql(*operand_) + (negated_ ? " NOT BETWEEN " : " BETWEEN ") +
         OperandSql(*lo_) + " AND " + OperandSql(*hi_);
}

std::string SelectItem::ToSql() const {
  if (is_star) {
    return star_qualifier.empty() ? "*" : star_qualifier + ".*";
  }
  std::string out = expr->ToSql();
  if (!alias.empty()) out += " AS " + alias;
  return out;
}

std::unique_ptr<SelectStmt> SelectStmt::CloneSelect() const {
  auto out = std::make_unique<SelectStmt>();
  out->distinct = distinct;
  out->items.reserve(items.size());
  for (const auto& item : items) out->items.push_back(item.CloneItem());
  out->from = from;
  out->where = where ? where->Clone() : nullptr;
  out->group_by.reserve(group_by.size());
  for (const auto& g : group_by) out->group_by.push_back(g->Clone());
  out->having = having ? having->Clone() : nullptr;
  out->order_by.reserve(order_by.size());
  for (const auto& o : order_by) out->order_by.push_back(o.CloneItem());
  return out;
}

std::string SelectStmt::ToSql() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i].ToSql();
  }
  if (!from.empty()) {
    out += " FROM ";
    for (size_t i = 0; i < from.size(); ++i) {
      if (i > 0) out += ", ";
      out += from[i].ToSql();
    }
  }
  if (where) out += " WHERE " + where->ToSql();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToSql();
    }
  }
  if (having) out += " HAVING " + having->ToSql();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToSql();
      if (order_by[i].descending) out += " DESC";
    }
  }
  return out;
}

StatementPtr InsertStmt::Clone() const {
  auto out = std::make_unique<InsertStmt>();
  out->table = table;
  out->columns = columns;
  out->values_rows.reserve(values_rows.size());
  for (const auto& row : values_rows) {
    std::vector<ExprPtr> cloned;
    cloned.reserve(row.size());
    for (const auto& e : row) cloned.push_back(e->Clone());
    out->values_rows.push_back(std::move(cloned));
  }
  if (select_source) out->select_source = select_source->CloneSelect();
  return out;
}

std::string InsertStmt::ToSql() const {
  std::string out = "INSERT INTO " + table.ToSql();
  if (!columns.empty()) {
    out += " (" + Join(columns, ", ") + ")";
  }
  if (select_source) {
    out += " " + select_source->ToSql();
    return out;
  }
  out += " VALUES ";
  for (size_t r = 0; r < values_rows.size(); ++r) {
    if (r > 0) out += ", ";
    out += "(";
    for (size_t i = 0; i < values_rows[r].size(); ++i) {
      if (i > 0) out += ", ";
      out += values_rows[r][i]->ToSql();
    }
    out += ")";
  }
  return out;
}

StatementPtr UpdateStmt::Clone() const {
  auto out = std::make_unique<UpdateStmt>();
  out->table = table;
  out->assignments.reserve(assignments.size());
  for (const auto& a : assignments) {
    out->assignments.push_back(a.CloneAssignment());
  }
  out->where = where ? where->Clone() : nullptr;
  return out;
}

std::string UpdateStmt::ToSql() const {
  std::string out = "UPDATE " + table.ToSql() + " SET ";
  for (size_t i = 0; i < assignments.size(); ++i) {
    if (i > 0) out += ", ";
    out += assignments[i].column + " = " + assignments[i].value->ToSql();
  }
  if (where) out += " WHERE " + where->ToSql();
  return out;
}

StatementPtr DeleteStmt::Clone() const {
  auto out = std::make_unique<DeleteStmt>();
  out->table = table;
  out->where = where ? where->Clone() : nullptr;
  return out;
}

std::string DeleteStmt::ToSql() const {
  std::string out = "DELETE FROM " + table.ToSql();
  if (where) out += " WHERE " + where->ToSql();
  return out;
}

StatementPtr CreateTableStmt::Clone() const {
  auto out = std::make_unique<CreateTableStmt>();
  out->table = table;
  out->columns = columns;
  return out;
}

std::string CreateTableStmt::ToSql() const {
  std::string out = "CREATE TABLE " + table.FullName() + " (";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns[i].name + " " + columns[i].type_name;
    if (columns[i].width > 0) {
      out += "(" + std::to_string(columns[i].width) + ")";
    }
  }
  out += ")";
  return out;
}

StatementPtr DropTableStmt::Clone() const {
  auto out = std::make_unique<DropTableStmt>();
  out->table = table;
  return out;
}

std::string DropTableStmt::ToSql() const {
  return "DROP TABLE " + table.FullName();
}

StatementPtr CreateViewStmt::Clone() const {
  auto out = std::make_unique<CreateViewStmt>();
  out->name = name;
  out->definition = definition->CloneSelect();
  return out;
}

std::string CreateViewStmt::ToSql() const {
  return "CREATE VIEW " + name + " AS " + definition->ToSql();
}

StatementPtr DropViewStmt::Clone() const {
  auto out = std::make_unique<DropViewStmt>();
  out->name = name;
  return out;
}

std::string DropViewStmt::ToSql() const { return "DROP VIEW " + name; }

StatementPtr CreateIndexStmt::Clone() const {
  auto out = std::make_unique<CreateIndexStmt>();
  out->name = name;
  out->table = table;
  out->column = column;
  return out;
}

std::string CreateIndexStmt::ToSql() const {
  return "CREATE INDEX " + name + " ON " + table.FullName() + " (" +
         column + ")";
}

StatementPtr DropIndexStmt::Clone() const {
  auto out = std::make_unique<DropIndexStmt>();
  out->name = name;
  out->table = table;
  return out;
}

std::string DropIndexStmt::ToSql() const {
  return "DROP INDEX " + name + " ON " + table.FullName();
}

StatementPtr CreateDatabaseStmt::Clone() const {
  auto out = std::make_unique<CreateDatabaseStmt>();
  out->name = name;
  return out;
}

std::string CreateDatabaseStmt::ToSql() const {
  return "CREATE DATABASE " + name;
}

StatementPtr DropDatabaseStmt::Clone() const {
  auto out = std::make_unique<DropDatabaseStmt>();
  out->name = name;
  return out;
}

std::string DropDatabaseStmt::ToSql() const {
  return "DROP DATABASE " + name;
}

namespace {

/// Invokes `fn` on every direct child expression of `e`. Scalar
/// subqueries contribute no children: their interiors belong to the
/// subquery's own scope.
template <typename Fn>
void ForEachChild(const Expr& e, Fn fn) {
  switch (e.kind()) {
    case ExprKind::kUnary:
      fn(static_cast<const UnaryExpr&>(e).operand());
      break;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      fn(b.left());
      fn(b.right());
      break;
    }
    case ExprKind::kFunctionCall:
      for (const auto& arg : static_cast<const FunctionCallExpr&>(e).args()) {
        fn(*arg);
      }
      break;
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(e);
      fn(in.operand());
      for (const auto& v : in.list()) fn(*v);
      break;
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const BetweenExpr&>(e);
      fn(bt.operand());
      fn(bt.lo());
      fn(bt.hi());
      break;
    }
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
    case ExprKind::kScalarSubquery:
      break;
  }
}

}  // namespace

void SplitConjuncts(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind() == ExprKind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(e);
    if (b.op() == BinaryOp::kAnd) {
      SplitConjuncts(b.left(), out);
      SplitConjuncts(b.right(), out);
      return;
    }
  }
  out->push_back(&e);
}

void CollectColumnRefs(const Expr& e,
                       std::vector<const ColumnRefExpr*>* out) {
  if (e.kind() == ExprKind::kColumnRef) {
    out->push_back(&static_cast<const ColumnRefExpr&>(e));
    return;
  }
  ForEachChild(e,
               [out](const Expr& child) { CollectColumnRefs(child, out); });
}

bool ContainsScalarSubquery(const Expr& e) {
  if (e.kind() == ExprKind::kScalarSubquery) return true;
  bool found = false;
  ForEachChild(e, [&found](const Expr& child) {
    if (!found) found = ContainsScalarSubquery(child);
  });
  return found;
}

std::string TxnControlStmt::ToSql() const {
  switch (kind()) {
    case StatementKind::kBegin: return "BEGIN";
    case StatementKind::kCommit: return "COMMIT";
    case StatementKind::kRollback: return "ROLLBACK";
    case StatementKind::kPrepare: return "PREPARE";
    default: return "?";
  }
}

}  // namespace msql::relational
