#ifndef MSQL_RELATIONAL_SQL_TOKEN_H_
#define MSQL_RELATIONAL_SQL_TOKEN_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace msql::relational {

/// Lexical token categories shared by the SQL, MSQL and DOL parsers.
enum class TokenType {
  kIdentifier,  // words; keywords are identifiers matched by the parsers
  kString,      // 'quoted literal' with '' escape
  kInteger,     // 42
  kReal,        // 3.14
  // Punctuation / operators.
  kLParen,      // (
  kRParen,      // )
  kComma,       // ,
  kSemicolon,   // ;
  kDot,         // .
  kEq,          // =
  kNe,          // <> or !=
  kLt,          // <
  kLe,          // <=
  kGt,          // >
  kGe,          // >=
  kPlus,        // +
  kMinus,       // -
  kStar,        // *
  kSlash,       // /
  kTilde,       // ~  (MSQL optional-column designator)
  kLBrace,      // {  (DOL task bodies / comments)
  kRBrace,      // }
  kEof,
};

/// Printable token-type name for diagnostics.
std::string_view TokenTypeName(TokenType type);

/// One lexical token with source position (1-based line/column).
struct Token {
  TokenType type = TokenType::kEof;
  /// Raw text for identifiers/strings; identifiers keep original case
  /// (parsers compare case-insensitively and canonicalize names).
  std::string text;
  int64_t int_value = 0;    // valid when type == kInteger
  double real_value = 0.0;  // valid when type == kReal
  int line = 1;
  int column = 1;

  /// True if this is an identifier equal to `kw` ignoring case.
  bool IsKeyword(std::string_view kw) const;

  /// Position string "line L col C" for error messages.
  std::string Where() const;
};

}  // namespace msql::relational

#endif  // MSQL_RELATIONAL_SQL_TOKEN_H_
