#include "relational/sql/parser.h"

#include <array>

#include "common/string_util.h"
#include "relational/sql/lexer.h"

namespace msql::relational {

Status TokenCursor::Expect(TokenType type, Token* out) {
  if (Peek().type != type) {
    return Status::ParseError("expected " + std::string(TokenTypeName(type)) +
                              " but found " +
                              std::string(TokenTypeName(Peek().type)) +
                              (Peek().text.empty() ? "" : " '" + Peek().text +
                                                              "'") +
                              " at " + Peek().Where());
  }
  Token tok = Get();
  if (out != nullptr) *out = std::move(tok);
  return Status::OK();
}

Status TokenCursor::ExpectKeyword(std::string_view kw) {
  if (!Peek().IsKeyword(kw)) {
    return Status::ParseError("expected keyword " + std::string(kw) +
                              " but found '" + Peek().text + "' at " +
                              Peek().Where());
  }
  Get();
  return Status::OK();
}

Result<std::string> TokenCursor::ExpectIdentifier(std::string_view what) {
  if (Peek().type != TokenType::kIdentifier) {
    return Status::ParseError("expected " + std::string(what) +
                              " but found " +
                              std::string(TokenTypeName(Peek().type)) +
                              " at " + Peek().Where());
  }
  return ToLower(Get().text);
}

bool SqlParser::IsReservedWord(std::string_view word) {
  static constexpr std::array<std::string_view, 38> kReserved = {
      "select", "distinct", "from",   "where",  "group",   "by",
      "having", "order",    "asc",    "desc",   "as",      "and",
      "or",     "not",      "in",     "between", "is",     "null",
      "like",   "insert",   "into",   "values", "update",  "set",
      "delete", "create",   "drop",   "table",  "database", "begin",
      "commit", "rollback", "prepare", "true",  "false",   "union",
      "comp",   "use",
  };
  for (auto kw : kReserved) {
    if (EqualsIgnoreCase(word, kw)) return true;
  }
  return false;
}

Result<StatementPtr> SqlParser::ParseStatement() {
  const Token& tok = cursor_->Peek();
  if (tok.type != TokenType::kIdentifier) {
    return Status::ParseError("expected a statement at " + tok.Where());
  }
  if (tok.IsKeyword("select")) {
    MSQL_ASSIGN_OR_RETURN(auto sel, ParseSelect());
    return StatementPtr(std::move(sel));
  }
  if (tok.IsKeyword("insert")) {
    MSQL_ASSIGN_OR_RETURN(auto ins, ParseInsert());
    return StatementPtr(std::move(ins));
  }
  if (tok.IsKeyword("update")) {
    MSQL_ASSIGN_OR_RETURN(auto upd, ParseUpdate());
    return StatementPtr(std::move(upd));
  }
  if (tok.IsKeyword("delete")) {
    MSQL_ASSIGN_OR_RETURN(auto del, ParseDelete());
    return StatementPtr(std::move(del));
  }
  if (tok.IsKeyword("create")) return ParseCreate();
  if (tok.IsKeyword("drop")) return ParseDrop();
  if (tok.IsKeyword("begin")) {
    cursor_->Get();
    // Accept optional "TRANSACTION" noise word.
    cursor_->MatchKeyword("transaction");
    return StatementPtr(
        std::make_unique<TxnControlStmt>(StatementKind::kBegin));
  }
  if (tok.IsKeyword("commit")) {
    cursor_->Get();
    return StatementPtr(
        std::make_unique<TxnControlStmt>(StatementKind::kCommit));
  }
  if (tok.IsKeyword("rollback")) {
    cursor_->Get();
    return StatementPtr(
        std::make_unique<TxnControlStmt>(StatementKind::kRollback));
  }
  if (tok.IsKeyword("prepare")) {
    cursor_->Get();
    return StatementPtr(
        std::make_unique<TxnControlStmt>(StatementKind::kPrepare));
  }
  return Status::ParseError("unknown statement verb '" + tok.text + "' at " +
                            tok.Where());
}

Result<std::unique_ptr<SelectStmt>> SqlParser::ParseSelect() {
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("select"));
  auto stmt = std::make_unique<SelectStmt>();
  stmt->distinct = cursor_->MatchKeyword("distinct");
  // Select list.
  while (true) {
    MSQL_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
    stmt->items.push_back(std::move(item));
    if (!cursor_->Match(TokenType::kComma)) break;
  }
  // FROM is optional only in MSQL multiple queries, where the expander
  // derives tables; require it for plain SQL too (the engine checks).
  if (cursor_->MatchKeyword("from")) {
    while (true) {
      MSQL_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
      stmt->from.push_back(std::move(ref));
      if (!cursor_->Match(TokenType::kComma)) break;
    }
  }
  if (cursor_->MatchKeyword("where")) {
    MSQL_ASSIGN_OR_RETURN(stmt->where, ParseExpression());
  }
  if (cursor_->Peek().IsKeyword("group")) {
    cursor_->Get();
    MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("by"));
    while (true) {
      MSQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpression());
      stmt->group_by.push_back(std::move(e));
      if (!cursor_->Match(TokenType::kComma)) break;
    }
    if (cursor_->MatchKeyword("having")) {
      MSQL_ASSIGN_OR_RETURN(stmt->having, ParseExpression());
    }
  }
  if (cursor_->Peek().IsKeyword("order")) {
    cursor_->Get();
    MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("by"));
    while (true) {
      MSQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpression());
      bool desc = false;
      if (cursor_->MatchKeyword("desc")) {
        desc = true;
      } else {
        cursor_->MatchKeyword("asc");
      }
      stmt->order_by.emplace_back(std::move(e), desc);
      if (!cursor_->Match(TokenType::kComma)) break;
    }
  }
  return stmt;
}

Result<SelectItem> SqlParser::ParseSelectItem() {
  SelectItem item;
  // `*` or `qualifier.*`.
  if (cursor_->Peek().type == TokenType::kStar) {
    cursor_->Get();
    item.is_star = true;
    return item;
  }
  if (cursor_->Peek().type == TokenType::kIdentifier &&
      cursor_->Peek(1).type == TokenType::kDot &&
      cursor_->Peek(2).type == TokenType::kStar) {
    item.star_qualifier = ToLower(cursor_->Get().text);
    cursor_->Get();  // '.'
    cursor_->Get();  // '*'
    item.is_star = true;
    return item;
  }
  MSQL_ASSIGN_OR_RETURN(item.expr, ParseExpression());
  if (cursor_->MatchKeyword("as")) {
    MSQL_ASSIGN_OR_RETURN(item.alias, cursor_->ExpectIdentifier("alias"));
  } else if (cursor_->Peek().type == TokenType::kIdentifier &&
             !IsReservedWord(cursor_->Peek().text)) {
    item.alias = ToLower(cursor_->Get().text);
  }
  return item;
}

Result<TableRef> SqlParser::ParseTableRef() {
  TableRef ref;
  const Token& head = cursor_->Peek();
  ref.line = head.line;
  ref.column = head.column;
  MSQL_ASSIGN_OR_RETURN(std::string first,
                        cursor_->ExpectIdentifier("table name"));
  if (cursor_->Match(TokenType::kDot)) {
    ref.database = std::move(first);
    const Token& table_tok = cursor_->Peek();
    ref.line = table_tok.line;
    ref.column = table_tok.column;
    MSQL_ASSIGN_OR_RETURN(ref.table,
                          cursor_->ExpectIdentifier("table name"));
  } else {
    ref.table = std::move(first);
  }
  if (cursor_->Peek().type == TokenType::kIdentifier &&
      !IsReservedWord(cursor_->Peek().text)) {
    ref.alias = ToLower(cursor_->Get().text);
  }
  return ref;
}

Result<std::unique_ptr<InsertStmt>> SqlParser::ParseInsert() {
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("insert"));
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("into"));
  auto stmt = std::make_unique<InsertStmt>();
  MSQL_ASSIGN_OR_RETURN(stmt->table, ParseTableRef());
  if (cursor_->Match(TokenType::kLParen)) {
    while (true) {
      MSQL_ASSIGN_OR_RETURN(std::string col,
                            cursor_->ExpectIdentifier("column name"));
      stmt->columns.push_back(std::move(col));
      if (!cursor_->Match(TokenType::kComma)) break;
    }
    MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kRParen));
  }
  if (cursor_->Peek().IsKeyword("select")) {
    MSQL_ASSIGN_OR_RETURN(stmt->select_source, ParseSelect());
    return stmt;
  }
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("values"));
  while (true) {
    MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kLParen));
    std::vector<ExprPtr> row;
    while (true) {
      MSQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpression());
      row.push_back(std::move(e));
      if (!cursor_->Match(TokenType::kComma)) break;
    }
    MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kRParen));
    stmt->values_rows.push_back(std::move(row));
    if (!cursor_->Match(TokenType::kComma)) break;
  }
  return stmt;
}

Result<std::unique_ptr<UpdateStmt>> SqlParser::ParseUpdate() {
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("update"));
  auto stmt = std::make_unique<UpdateStmt>();
  MSQL_ASSIGN_OR_RETURN(stmt->table, ParseTableRef());
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("set"));
  while (true) {
    MSQL_ASSIGN_OR_RETURN(std::string col,
                          cursor_->ExpectIdentifier("column name"));
    MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kEq));
    MSQL_ASSIGN_OR_RETURN(ExprPtr value, ParseExpression());
    stmt->assignments.emplace_back(std::move(col), std::move(value));
    if (!cursor_->Match(TokenType::kComma)) break;
  }
  if (cursor_->MatchKeyword("where")) {
    MSQL_ASSIGN_OR_RETURN(stmt->where, ParseExpression());
  }
  return stmt;
}

Result<std::unique_ptr<DeleteStmt>> SqlParser::ParseDelete() {
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("delete"));
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("from"));
  auto stmt = std::make_unique<DeleteStmt>();
  MSQL_ASSIGN_OR_RETURN(stmt->table, ParseTableRef());
  if (cursor_->MatchKeyword("where")) {
    MSQL_ASSIGN_OR_RETURN(stmt->where, ParseExpression());
  }
  return stmt;
}

Result<StatementPtr> SqlParser::ParseCreate() {
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("create"));
  if (cursor_->MatchKeyword("table")) {
    MSQL_ASSIGN_OR_RETURN(auto stmt, ParseCreateTableBody());
    return StatementPtr(std::move(stmt));
  }
  if (cursor_->MatchKeyword("view")) {
    auto stmt = std::make_unique<CreateViewStmt>();
    MSQL_ASSIGN_OR_RETURN(stmt->name, cursor_->ExpectIdentifier("view name"));
    MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("as"));
    MSQL_ASSIGN_OR_RETURN(stmt->definition, ParseSelect());
    return StatementPtr(std::move(stmt));
  }
  if (cursor_->MatchKeyword("index")) {
    auto stmt = std::make_unique<CreateIndexStmt>();
    MSQL_ASSIGN_OR_RETURN(stmt->name,
                          cursor_->ExpectIdentifier("index name"));
    MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("on"));
    MSQL_ASSIGN_OR_RETURN(stmt->table, ParseTableRef());
    MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kLParen));
    MSQL_ASSIGN_OR_RETURN(stmt->column,
                          cursor_->ExpectIdentifier("column name"));
    MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kRParen));
    return StatementPtr(std::move(stmt));
  }
  if (cursor_->MatchKeyword("database")) {
    auto stmt = std::make_unique<CreateDatabaseStmt>();
    MSQL_ASSIGN_OR_RETURN(stmt->name,
                          cursor_->ExpectIdentifier("database name"));
    return StatementPtr(std::move(stmt));
  }
  return Status::ParseError(
      "expected TABLE, VIEW or DATABASE after CREATE at " +
      cursor_->Peek().Where());
}

Result<std::unique_ptr<CreateTableStmt>> SqlParser::ParseCreateTableBody() {
  auto stmt = std::make_unique<CreateTableStmt>();
  MSQL_ASSIGN_OR_RETURN(stmt->table, ParseTableRef());
  MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kLParen));
  while (true) {
    ColumnSpec spec;
    MSQL_ASSIGN_OR_RETURN(spec.name,
                          cursor_->ExpectIdentifier("column name"));
    MSQL_ASSIGN_OR_RETURN(spec.type_name,
                          cursor_->ExpectIdentifier("type name"));
    spec.type_name = ToUpper(spec.type_name);
    if (cursor_->Match(TokenType::kLParen)) {
      Token width;
      MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kInteger, &width));
      spec.width = static_cast<int>(width.int_value);
      MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kRParen));
    }
    stmt->columns.push_back(std::move(spec));
    if (!cursor_->Match(TokenType::kComma)) break;
  }
  MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kRParen));
  return stmt;
}

Result<StatementPtr> SqlParser::ParseDrop() {
  MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("drop"));
  if (cursor_->MatchKeyword("table")) {
    auto stmt = std::make_unique<DropTableStmt>();
    MSQL_ASSIGN_OR_RETURN(stmt->table, ParseTableRef());
    return StatementPtr(std::move(stmt));
  }
  if (cursor_->MatchKeyword("view")) {
    auto stmt = std::make_unique<DropViewStmt>();
    MSQL_ASSIGN_OR_RETURN(stmt->name, cursor_->ExpectIdentifier("view name"));
    return StatementPtr(std::move(stmt));
  }
  if (cursor_->MatchKeyword("index")) {
    auto stmt = std::make_unique<DropIndexStmt>();
    MSQL_ASSIGN_OR_RETURN(stmt->name,
                          cursor_->ExpectIdentifier("index name"));
    MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("on"));
    MSQL_ASSIGN_OR_RETURN(stmt->table, ParseTableRef());
    return StatementPtr(std::move(stmt));
  }
  if (cursor_->MatchKeyword("database")) {
    auto stmt = std::make_unique<DropDatabaseStmt>();
    MSQL_ASSIGN_OR_RETURN(stmt->name,
                          cursor_->ExpectIdentifier("database name"));
    return StatementPtr(std::move(stmt));
  }
  return Status::ParseError(
      "expected TABLE, VIEW or DATABASE after DROP at " +
      cursor_->Peek().Where());
}

// --------------------------------------------------------------------------
// Expressions
// --------------------------------------------------------------------------

Result<ExprPtr> SqlParser::ParseExpression() { return ParseOr(); }

Result<ExprPtr> SqlParser::ParseOr() {
  MSQL_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (cursor_->MatchKeyword("or")) {
    MSQL_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(left),
                                        std::move(right));
  }
  return left;
}

Result<ExprPtr> SqlParser::ParseAnd() {
  MSQL_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (cursor_->MatchKeyword("and")) {
    MSQL_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(left),
                                        std::move(right));
  }
  return left;
}

Result<ExprPtr> SqlParser::ParseNot() {
  if (cursor_->MatchKeyword("not")) {
    MSQL_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
    return ExprPtr(
        std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(operand)));
  }
  return ParseComparison();
}

Result<ExprPtr> SqlParser::ParseComparison() {
  MSQL_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
  // IS [NOT] NULL.
  if (cursor_->Peek().IsKeyword("is")) {
    cursor_->Get();
    bool negated = cursor_->MatchKeyword("not");
    MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("null"));
    return ExprPtr(std::make_unique<UnaryExpr>(
        negated ? UnaryOp::kIsNotNull : UnaryOp::kIsNull, std::move(left)));
  }
  // [NOT] IN / BETWEEN / LIKE.
  bool negated = false;
  if (cursor_->Peek().IsKeyword("not") &&
      (cursor_->Peek(1).IsKeyword("in") ||
       cursor_->Peek(1).IsKeyword("between") ||
       cursor_->Peek(1).IsKeyword("like"))) {
    cursor_->Get();
    negated = true;
  }
  if (cursor_->MatchKeyword("in")) {
    MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kLParen));
    if (cursor_->Peek().IsKeyword("select")) {
      MSQL_ASSIGN_OR_RETURN(auto sub, ParseSelect());
      MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kRParen));
      // expr IN (subquery) is desugared at execution; keep as InList with
      // a single scalar-subquery? No: represent as a dedicated binary via
      // InListExpr with one ScalarSubqueryExpr marked; simplest faithful
      // form: IN-list containing the subquery expression.
      std::vector<ExprPtr> list;
      list.push_back(
          std::make_unique<ScalarSubqueryExpr>(std::move(sub)));
      return ExprPtr(std::make_unique<InListExpr>(
          std::move(left), std::move(list), negated));
    }
    std::vector<ExprPtr> list;
    while (true) {
      MSQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpression());
      list.push_back(std::move(e));
      if (!cursor_->Match(TokenType::kComma)) break;
    }
    MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kRParen));
    return ExprPtr(std::make_unique<InListExpr>(std::move(left),
                                                std::move(list), negated));
  }
  if (cursor_->MatchKeyword("between")) {
    MSQL_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
    MSQL_RETURN_IF_ERROR(cursor_->ExpectKeyword("and"));
    MSQL_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
    return ExprPtr(std::make_unique<BetweenExpr>(
        std::move(left), std::move(lo), std::move(hi), negated));
  }
  if (cursor_->MatchKeyword("like")) {
    MSQL_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
    ExprPtr like = std::make_unique<BinaryExpr>(
        BinaryOp::kLike, std::move(left), std::move(right));
    if (negated) {
      like = std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(like));
    }
    return like;
  }
  // Plain comparison operators.
  BinaryOp op;
  switch (cursor_->Peek().type) {
    case TokenType::kEq: op = BinaryOp::kEq; break;
    case TokenType::kNe: op = BinaryOp::kNe; break;
    case TokenType::kLt: op = BinaryOp::kLt; break;
    case TokenType::kLe: op = BinaryOp::kLe; break;
    case TokenType::kGt: op = BinaryOp::kGt; break;
    case TokenType::kGe: op = BinaryOp::kGe; break;
    default:
      return left;
  }
  cursor_->Get();
  MSQL_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
  return ExprPtr(std::make_unique<BinaryExpr>(op, std::move(left),
                                              std::move(right)));
}

Result<ExprPtr> SqlParser::ParseAdditive() {
  MSQL_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  while (true) {
    BinaryOp op;
    if (cursor_->Peek().type == TokenType::kPlus) {
      op = BinaryOp::kAdd;
    } else if (cursor_->Peek().type == TokenType::kMinus) {
      op = BinaryOp::kSub;
    } else {
      return left;
    }
    cursor_->Get();
    MSQL_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
    left = std::make_unique<BinaryExpr>(op, std::move(left),
                                        std::move(right));
  }
}

Result<ExprPtr> SqlParser::ParseMultiplicative() {
  MSQL_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
  while (true) {
    BinaryOp op;
    if (cursor_->Peek().type == TokenType::kStar) {
      op = BinaryOp::kMul;
    } else if (cursor_->Peek().type == TokenType::kSlash) {
      op = BinaryOp::kDiv;
    } else {
      return left;
    }
    cursor_->Get();
    MSQL_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
    left = std::make_unique<BinaryExpr>(op, std::move(left),
                                        std::move(right));
  }
}

Result<ExprPtr> SqlParser::ParseUnary() {
  if (cursor_->Match(TokenType::kMinus)) {
    MSQL_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    // Fold -literal for cleaner plans.
    if (operand->kind() == ExprKind::kLiteral) {
      const Value& v = static_cast<const LiteralExpr&>(*operand).value();
      if (v.is_integer()) {
        return ExprPtr(
            std::make_unique<LiteralExpr>(Value::Integer(-v.AsInteger())));
      }
      if (v.is_real()) {
        return ExprPtr(
            std::make_unique<LiteralExpr>(Value::Real(-v.AsReal())));
      }
    }
    return ExprPtr(
        std::make_unique<UnaryExpr>(UnaryOp::kNegate, std::move(operand)));
  }
  if (cursor_->Match(TokenType::kPlus)) {
    return ParseUnary();
  }
  return ParsePrimary();
}

Result<ExprPtr> SqlParser::ParsePrimary() {
  const Token& tok = cursor_->Peek();
  switch (tok.type) {
    case TokenType::kInteger: {
      Token t = cursor_->Get();
      return ExprPtr(
          std::make_unique<LiteralExpr>(Value::Integer(t.int_value)));
    }
    case TokenType::kReal: {
      Token t = cursor_->Get();
      return ExprPtr(
          std::make_unique<LiteralExpr>(Value::Real(t.real_value)));
    }
    case TokenType::kString: {
      Token t = cursor_->Get();
      return ExprPtr(
          std::make_unique<LiteralExpr>(Value::Text(std::move(t.text))));
    }
    case TokenType::kTilde: {
      if (!options_.msql_extensions) {
        return Status::ParseError("'~' optional-column designator is MSQL "
                                  "only, at " + tok.Where());
      }
      cursor_->Get();
      MSQL_ASSIGN_OR_RETURN(ExprPtr inner, ParseColumnOrFunction());
      if (inner->kind() != ExprKind::kColumnRef) {
        return Status::ParseError(
            "'~' must designate a column reference, at " + tok.Where());
      }
      auto* ref = static_cast<ColumnRefExpr*>(inner.get());
      auto optional = std::make_unique<ColumnRefExpr>(
          ref->qualifier(), ref->name(), /*optional_column=*/true);
      optional->set_position(ref->line(), ref->column());
      return ExprPtr(std::move(optional));
    }
    case TokenType::kLParen: {
      cursor_->Get();
      if (cursor_->Peek().IsKeyword("select")) {
        MSQL_ASSIGN_OR_RETURN(auto sub, ParseSelect());
        MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kRParen));
        return ExprPtr(
            std::make_unique<ScalarSubqueryExpr>(std::move(sub)));
      }
      MSQL_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpression());
      MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kRParen));
      return inner;
    }
    case TokenType::kIdentifier: {
      if (tok.IsKeyword("null")) {
        cursor_->Get();
        return ExprPtr(std::make_unique<LiteralExpr>(Value::Null_()));
      }
      if (tok.IsKeyword("true")) {
        cursor_->Get();
        return ExprPtr(std::make_unique<LiteralExpr>(Value::Boolean(true)));
      }
      if (tok.IsKeyword("false")) {
        cursor_->Get();
        return ExprPtr(
            std::make_unique<LiteralExpr>(Value::Boolean(false)));
      }
      if (IsReservedWord(tok.text)) {
        return Status::ParseError("reserved word '" + tok.text +
                                  "' cannot start an expression at " +
                                  tok.Where());
      }
      return ParseColumnOrFunction();
    }
    default:
      return Status::ParseError("unexpected token " +
                                std::string(TokenTypeName(tok.type)) +
                                " in expression at " + tok.Where());
  }
}

Result<ExprPtr> SqlParser::ParseColumnOrFunction() {
  Token first;
  MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kIdentifier, &first));
  std::string name = ToLower(first.text);
  // Function call?
  if (cursor_->Peek().type == TokenType::kLParen) {
    cursor_->Get();
    std::string fname = ToUpper(name);
    if (cursor_->Peek().type == TokenType::kStar) {
      cursor_->Get();
      MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kRParen));
      return ExprPtr(std::make_unique<FunctionCallExpr>(
          fname, std::vector<ExprPtr>{}, /*star=*/true));
    }
    std::vector<ExprPtr> args;
    if (cursor_->Peek().type != TokenType::kRParen) {
      while (true) {
        MSQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpression());
        args.push_back(std::move(e));
        if (!cursor_->Match(TokenType::kComma)) break;
      }
    }
    MSQL_RETURN_IF_ERROR(cursor_->Expect(TokenType::kRParen));
    return ExprPtr(
        std::make_unique<FunctionCallExpr>(fname, std::move(args)));
  }
  // Column reference, possibly qualified.
  if (cursor_->Peek().type == TokenType::kDot &&
      cursor_->Peek(1).type == TokenType::kIdentifier) {
    cursor_->Get();  // '.'
    Token col_tok = cursor_->Get();
    std::string col = ToLower(col_tok.text);
    auto ref = std::make_unique<ColumnRefExpr>(name, std::move(col));
    ref->set_position(col_tok.line, col_tok.column);
    return ExprPtr(std::move(ref));
  }
  auto ref = std::make_unique<ColumnRefExpr>("", std::move(name));
  ref->set_position(first.line, first.column);
  return ExprPtr(std::move(ref));
}

Result<StatementPtr> ParseSql(std::string_view text,
                              const ParseOptions& options) {
  LexerOptions lex_options;
  lex_options.percent_in_identifiers = options.msql_extensions;
  MSQL_ASSIGN_OR_RETURN(auto tokens, Tokenize(text, lex_options));
  TokenCursor cursor(std::move(tokens));
  SqlParser parser(&cursor, options);
  MSQL_ASSIGN_OR_RETURN(StatementPtr stmt, parser.ParseStatement());
  cursor.Match(TokenType::kSemicolon);
  if (!cursor.AtEnd()) {
    return Status::ParseError("trailing input after statement at " +
                              cursor.Peek().Where());
  }
  return stmt;
}

Result<std::vector<StatementPtr>> ParseSqlScript(
    std::string_view text, const ParseOptions& options) {
  LexerOptions lex_options;
  lex_options.percent_in_identifiers = options.msql_extensions;
  MSQL_ASSIGN_OR_RETURN(auto tokens, Tokenize(text, lex_options));
  TokenCursor cursor(std::move(tokens));
  SqlParser parser(&cursor, options);
  std::vector<StatementPtr> out;
  while (!cursor.AtEnd()) {
    MSQL_ASSIGN_OR_RETURN(StatementPtr stmt, parser.ParseStatement());
    out.push_back(std::move(stmt));
    while (cursor.Match(TokenType::kSemicolon)) {
    }
  }
  return out;
}

}  // namespace msql::relational
