#ifndef MSQL_RELATIONAL_SCHEMA_H_
#define MSQL_RELATIONAL_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relational/value.h"

namespace msql::relational {

/// One column of a table: name, type and display width.
///
/// Width is carried because the Global Data Dictionary stores "the names,
/// types and widths" of columns (§3.1); it has no semantic effect in the
/// engine beyond being IMPORTable metadata.
struct ColumnDef {
  std::string name;
  Type type = Type::kText;
  int width = 0;  // 0 = unspecified

  bool operator==(const ColumnDef& other) const {
    return name == other.name && type == other.type && width == other.width;
  }
};

/// Ordered set of columns with by-name lookup (case-insensitive; names
/// are canonicalized to lower case on construction).
class TableSchema {
 public:
  TableSchema() = default;

  /// Builds a schema; fails on duplicate column names.
  static Result<TableSchema> Create(std::string table_name,
                                    std::vector<ColumnDef> columns);

  const std::string& table_name() const { return table_name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }

  /// Index of `name` (case-insensitive), or nullopt.
  std::optional<size_t> FindColumn(std::string_view name) const;

  /// True if a column with this exact (case-insensitive) name exists.
  bool HasColumn(std::string_view name) const {
    return FindColumn(name).has_value();
  }

  /// Names of columns matching an MSQL '%' wildcard pattern.
  std::vector<std::string> MatchColumns(std::string_view pattern) const;

  /// Schema restricted to the named columns, in the given order.
  Result<TableSchema> Project(const std::vector<std::string>& names) const;

  /// "name(col TYPE, ...)" rendering for error messages and the GDD dump.
  std::string ToString() const;

  bool operator==(const TableSchema& other) const {
    return table_name_ == other.table_name_ && columns_ == other.columns_;
  }

 private:
  std::string table_name_;
  std::vector<ColumnDef> columns_;
};

}  // namespace msql::relational

#endif  // MSQL_RELATIONAL_SCHEMA_H_
