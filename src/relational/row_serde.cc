#include "relational/row_serde.h"

#include <cstring>

#include "storage/page.h"

namespace msql::relational {

namespace {
// Serde value tags.
constexpr char kTagNull = 0;
constexpr char kTagInteger = 1;
constexpr char kTagReal = 2;
constexpr char kTagText = 3;
constexpr char kTagBoolean = 4;

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  storage::StoreU32(buf, v);
  out->append(buf, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  storage::StoreU64(buf, v);
  out->append(buf, 8);
}

/// Monotone map from double to uint64 (IEEE-754 trick): flip all bits
/// of negatives, flip only the sign bit of non-negatives, then compare
/// as unsigned.
uint64_t OrderedDoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  if (bits & (uint64_t{1} << 63)) return ~bits;
  return bits | (uint64_t{1} << 63);
}

void AppendBigEndian64(std::string* out, uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}
}  // namespace

std::string SerializeRow(const Row& row) {
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(row.size()));
  for (const Value& v : row) {
    if (v.is_null()) {
      out.push_back(kTagNull);
    } else if (v.is_integer()) {
      out.push_back(kTagInteger);
      AppendU64(&out, static_cast<uint64_t>(v.AsInteger()));
    } else if (v.is_real()) {
      out.push_back(kTagReal);
      uint64_t bits;
      double d = v.AsReal();
      std::memcpy(&bits, &d, sizeof(bits));
      AppendU64(&out, bits);
    } else if (v.is_text()) {
      out.push_back(kTagText);
      AppendU32(&out, static_cast<uint32_t>(v.AsText().size()));
      out.append(v.AsText());
    } else {
      out.push_back(kTagBoolean);
      out.push_back(v.AsBoolean() ? 1 : 0);
    }
  }
  return out;
}

Result<Row> DeserializeRow(std::string_view bytes) {
  auto bad = [&]() {
    return Status::Corrupted("malformed serialized row (" +
                             std::to_string(bytes.size()) + " bytes)");
  };
  size_t pos = 0;
  if (bytes.size() < 4) return bad();
  uint32_t n = storage::LoadU32(bytes.data());
  pos = 4;
  Row row;
  row.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (pos >= bytes.size()) return bad();
    char tag = bytes[pos++];
    switch (tag) {
      case kTagNull:
        row.push_back(Value::Null_());
        break;
      case kTagInteger: {
        if (pos + 8 > bytes.size()) return bad();
        uint64_t v = storage::LoadU64(bytes.data() + pos);
        pos += 8;
        row.push_back(Value::Integer(static_cast<int64_t>(v)));
        break;
      }
      case kTagReal: {
        if (pos + 8 > bytes.size()) return bad();
        uint64_t bits = storage::LoadU64(bytes.data() + pos);
        pos += 8;
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        row.push_back(Value::Real(d));
        break;
      }
      case kTagText: {
        if (pos + 4 > bytes.size()) return bad();
        uint32_t len = storage::LoadU32(bytes.data() + pos);
        pos += 4;
        if (pos + len > bytes.size()) return bad();
        row.push_back(Value::Text(std::string(bytes.substr(pos, len))));
        pos += len;
        break;
      }
      case kTagBoolean: {
        if (pos >= bytes.size()) return bad();
        row.push_back(Value::Boolean(bytes[pos++] != 0));
        break;
      }
      default:
        return bad();
    }
  }
  if (pos != bytes.size()) return bad();
  return row;
}

std::string EncodeIndexKey(const Value& v) {
  std::string out;
  if (v.is_null()) {
    out.push_back(0x00);
  } else if (v.is_integer()) {
    out.push_back(0x01);
    // Bias the sign bit so two's-complement order becomes byte order.
    AppendBigEndian64(&out, static_cast<uint64_t>(v.AsInteger()) ^
                                (uint64_t{1} << 63));
  } else if (v.is_real()) {
    out.push_back(0x02);
    AppendBigEndian64(&out, OrderedDoubleBits(v.AsReal()));
  } else if (v.is_text()) {
    out.push_back(0x03);
    for (char c : v.AsText()) {
      out.push_back(c);
      if (c == '\0') out.push_back('\xff');  // escape embedded NULs
    }
    out.push_back('\0');
    out.push_back('\0');
  } else {
    out.push_back(0x04);
    out.push_back(v.AsBoolean() ? 1 : 0);
  }
  return out;
}

std::string EncodeIndexEntry(const Value& v, RowId id) {
  std::string out = EncodeIndexKey(v);
  AppendBigEndian64(&out, id);
  return out;
}

RowId DecodeIndexEntryRowId(std::string_view entry) {
  RowId id = 0;
  size_t start = entry.size() - 8;
  for (size_t i = 0; i < 8; ++i) {
    id = (id << 8) | static_cast<unsigned char>(entry[start + i]);
  }
  return id;
}

}  // namespace msql::relational
