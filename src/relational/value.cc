#include "relational/value.h"

#include <cmath>
#include <sstream>

#include "common/string_util.h"

namespace msql::relational {

std::string_view TypeName(Type type) {
  switch (type) {
    case Type::kNull:
      return "NULL";
    case Type::kInteger:
      return "INTEGER";
    case Type::kReal:
      return "REAL";
    case Type::kText:
      return "TEXT";
    case Type::kBoolean:
      return "BOOLEAN";
  }
  return "UNKNOWN";
}

Result<Type> TypeFromName(std::string_view name) {
  std::string upper = ToUpper(name);
  if (upper == "INTEGER" || upper == "INT" || upper == "BIGINT" ||
      upper == "SMALLINT") {
    return Type::kInteger;
  }
  if (upper == "REAL" || upper == "FLOAT" || upper == "DOUBLE" ||
      upper == "NUMERIC" || upper == "DECIMAL") {
    return Type::kReal;
  }
  if (upper == "TEXT" || upper == "CHAR" || upper == "VARCHAR" ||
      upper == "STRING") {
    return Type::kText;
  }
  if (upper == "BOOLEAN" || upper == "BOOL") {
    return Type::kBoolean;
  }
  return Status::InvalidArgument("unknown type name: " + std::string(name));
}

Type Value::type() const {
  if (is_null()) return Type::kNull;
  if (is_integer()) return Type::kInteger;
  if (is_real()) return Type::kReal;
  if (is_text()) return Type::kText;
  return Type::kBoolean;
}

double Value::NumericAsReal() const {
  return is_integer() ? static_cast<double>(AsInteger()) : AsReal();
}

bool Value::operator==(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (is_numeric() && other.is_numeric()) {
    if (is_integer() && other.is_integer()) {
      return AsInteger() == other.AsInteger();
    }
    return NumericAsReal() == other.NumericAsReal();
  }
  return rep_ == other.rep_;
}

int Value::Compare(const Value& other) const {
  // NULL sorts before everything.
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;
  if (is_numeric() && other.is_numeric()) {
    double a = NumericAsReal();
    double b = other.NumericAsReal();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (is_text() && other.is_text()) {
    return AsText().compare(other.AsText());
  }
  if (is_boolean() && other.is_boolean()) {
    return static_cast<int>(AsBoolean()) - static_cast<int>(other.AsBoolean());
  }
  // Heterogeneous: order by type id for a stable total order.
  return static_cast<int>(type()) - static_cast<int>(other.type());
}

std::string Value::ToSqlLiteral() const {
  if (is_null()) return "NULL";
  if (is_integer()) return std::to_string(AsInteger());
  if (is_real()) {
    std::ostringstream os;
    os << AsReal();
    std::string s = os.str();
    // Keep the literal recognizably REAL when it round-trips via SQL text.
    if (s.find('.') == std::string::npos &&
        s.find('e') == std::string::npos &&
        s.find("inf") == std::string::npos &&
        s.find("nan") == std::string::npos) {
      s += ".0";
    }
    return s;
  }
  if (is_boolean()) return AsBoolean() ? "TRUE" : "FALSE";
  // Text: single quotes, embedded quotes doubled.
  std::string out = "'";
  for (char c : AsText()) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

std::string Value::ToDisplayString() const {
  if (is_text()) return AsText();
  return ToSqlLiteral();
}

Result<Value> Value::CoerceTo(Type target) const {
  if (is_null()) return *this;  // NULL fits every column
  if (type() == target) return *this;
  if (target == Type::kReal && is_integer()) {
    return Value::Real(static_cast<double>(AsInteger()));
  }
  if (target == Type::kInteger && is_real()) {
    double v = AsReal();
    double rounded = std::nearbyint(v);
    if (rounded == v) return Value::Integer(static_cast<int64_t>(v));
    return Status::InvalidArgument("cannot store non-integral REAL " +
                                   ToSqlLiteral() + " into INTEGER column");
  }
  return Status::InvalidArgument(
      std::string("cannot coerce ") + std::string(TypeName(type())) +
      " value " + ToSqlLiteral() + " to " + std::string(TypeName(target)));
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToDisplayString();
}

}  // namespace msql::relational
