#ifndef MSQL_RELATIONAL_VALUE_H_
#define MSQL_RELATIONAL_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>

#include "common/result.h"

namespace msql::relational {

/// Column / value type of the local relational engines.
///
/// The Global Data Dictionary stores "names, types and widths" of columns
/// (§3.1); these are the types it knows about.
enum class Type {
  kNull,     // type of the NULL literal before coercion
  kInteger,  // 64-bit signed
  kReal,     // double precision
  kText,     // variable-length character string
  kBoolean,  // internal: result of predicates
};

/// "INTEGER", "REAL", "TEXT", "BOOLEAN" or "NULL".
std::string_view TypeName(Type type);

/// Parses a type name (case-insensitive); also accepts common SQL aliases
/// (INT, FLOAT, DOUBLE, CHAR, VARCHAR, STRING).
Result<Type> TypeFromName(std::string_view name);

/// A single SQL value with SQL-style NULL semantics.
///
/// Comparisons and arithmetic involving NULL yield NULL; predicates use
/// three-valued logic collapsed to "not true" at filter points, which is
/// the standard SQL behaviour the paper's LDBMSs (Oracle/Ingres) share.
class Value {
 public:
  /// NULL value.
  Value() : rep_(Null{}) {}

  static Value Null_() { return Value(); }
  static Value Integer(int64_t v) { return Value(Rep(v)); }
  static Value Real(double v) { return Value(Rep(v)); }
  static Value Text(std::string v) { return Value(Rep(std::move(v))); }
  static Value Boolean(bool v) { return Value(Rep(v)); }

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) noexcept = default;
  Value& operator=(Value&&) noexcept = default;

  Type type() const;

  bool is_null() const { return std::holds_alternative<Null>(rep_); }
  bool is_integer() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_real() const { return std::holds_alternative<double>(rep_); }
  bool is_text() const { return std::holds_alternative<std::string>(rep_); }
  bool is_boolean() const { return std::holds_alternative<bool>(rep_); }
  bool is_numeric() const { return is_integer() || is_real(); }

  int64_t AsInteger() const { return std::get<int64_t>(rep_); }
  double AsReal() const { return std::get<double>(rep_); }
  const std::string& AsText() const { return std::get<std::string>(rep_); }
  bool AsBoolean() const { return std::get<bool>(rep_); }

  /// Numeric value as double (integer is widened). Requires is_numeric().
  double NumericAsReal() const;

  /// Strict equality used by tests and result comparison: NULL == NULL is
  /// true here (unlike the SQL `=` operator, which is in expr_eval).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order for ORDER BY / MIN / MAX: NULL sorts first; integers and
  /// reals compare numerically; cross-type otherwise orders by type id.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  /// SQL literal rendering: NULL, 42, 3.14, 'text' (quotes doubled).
  std::string ToSqlLiteral() const;

  /// Display rendering without quotes (for result tables).
  std::string ToDisplayString() const;

  /// Coerces this value to a column of type `target`; integers widen to
  /// real, reals narrow to integer only if exact, anything stores into
  /// TEXT via display rendering? No — only NULL and exact-family
  /// conversions are allowed; mismatches are an error (loose typing would
  /// mask schema-heterogeneity bugs that MSQL is supposed to surface).
  Result<Value> CoerceTo(Type target) const;

 private:
  struct Null {
    bool operator==(const Null&) const { return true; }
  };
  using Rep = std::variant<Null, int64_t, double, std::string, bool>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace msql::relational

#endif  // MSQL_RELATIONAL_VALUE_H_
