#ifndef MSQL_RELATIONAL_RESULT_SET_H_
#define MSQL_RELATIONAL_RESULT_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/table.h"

namespace msql::relational {

/// Result of one SQL statement against one local database.
///
/// A SELECT fills `columns` and `rows`; DML fills `rows_affected`. This
/// is also the unit shipped from a LAM back to the DOL engine, and the
/// element type of an MSQL *multitable* (one ResultSet per contributing
/// database).
struct ResultSet {
  /// Column headers of a SELECT result (empty for DML/DDL).
  std::vector<std::string> columns;
  /// Result tuples, positionally aligned with `columns`.
  std::vector<Row> rows;
  /// Rows touched by INSERT/UPDATE/DELETE.
  int64_t rows_affected = 0;
  /// Rows the executor had to examine to produce this result (scan cost;
  /// diagnostics only — excluded from equality). Includes base-table
  /// rows scanned while materializing view sources.
  int64_t rows_scanned = 0;
  /// Row candidates the executor formed and tested: cross-product
  /// iterations on the naive path; per-source filter evaluations plus
  /// join candidate pairs on the planned path. Diagnostics only —
  /// excluded from equality and wire accounting.
  int64_t rows_evaluated = 0;
  /// Physical-plan rendering of the SELECT that produced this result.
  /// Filled only when the engine collects plans (`\plan`); excluded from
  /// equality and wire accounting.
  std::string plan_text;

  bool IsQueryResult() const { return !columns.empty(); }

  /// Fixed-width ASCII table rendering (used by examples and EXPERIMENTS
  /// transcripts).
  std::string ToString() const;

  /// Sorts rows lexicographically by Value::Compare, making result
  /// comparison deterministic in tests.
  void SortRows();

  bool operator==(const ResultSet& other) const;
};

}  // namespace msql::relational

#endif  // MSQL_RELATIONAL_RESULT_SET_H_
