#include "relational/schema_infer.h"

#include "common/string_util.h"

namespace msql::relational {

namespace {

/// Type of `qualifier.name` in `scope`'s FROM clause.
Result<Type> ResolveColumnType(const std::string& qualifier,
                               const std::string& name,
                               const SchemaResolver& resolve,
                               const SelectStmt* scope) {
  if (scope == nullptr) {
    return Status::InvalidArgument(
        "column reference '" + name + "' outside any FROM scope");
  }
  bool found = false;
  Type type = Type::kText;
  for (const auto& ref : scope->from) {
    if (!qualifier.empty() &&
        !EqualsIgnoreCase(ref.EffectiveName(), qualifier)) {
      continue;
    }
    MSQL_ASSIGN_OR_RETURN(const TableSchema* schema, resolve(ref.table));
    auto idx = schema->FindColumn(name);
    if (!idx.has_value()) continue;
    if (found) {
      return Status::InvalidArgument("ambiguous column reference '" +
                                     name + "'");
    }
    found = true;
    type = schema->column(*idx).type;
  }
  if (!found) {
    return Status::NotFound("unknown column '" + name + "'");
  }
  return type;
}

}  // namespace

std::string SelectItemOutputName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr != nullptr && item.expr->kind() == ExprKind::kColumnRef) {
    return static_cast<const ColumnRefExpr&>(*item.expr).name();
  }
  return item.expr != nullptr ? ToLower(item.expr->ToSql()) : "col";
}

Result<Type> InferExprType(const Expr& expr, const SchemaResolver& resolve,
                           const SelectStmt* scope) {
  switch (expr.kind()) {
    case ExprKind::kLiteral: {
      Type t = static_cast<const LiteralExpr&>(expr).value().type();
      return t == Type::kNull ? Type::kText : t;
    }
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      return ResolveColumnType(ref.qualifier(), ref.name(), resolve,
                               scope);
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(expr);
      if (u.op() == UnaryOp::kNegate) {
        return InferExprType(u.operand(), resolve, scope);
      }
      return Type::kBoolean;  // NOT / IS [NOT] NULL
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      switch (b.op()) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv: {
          MSQL_ASSIGN_OR_RETURN(Type left,
                                InferExprType(b.left(), resolve, scope));
          MSQL_ASSIGN_OR_RETURN(Type right,
                                InferExprType(b.right(), resolve, scope));
          return (left == Type::kInteger && right == Type::kInteger)
                     ? Type::kInteger
                     : Type::kReal;
        }
        default:
          return Type::kBoolean;  // comparisons, AND/OR, LIKE
      }
    }
    case ExprKind::kFunctionCall: {
      const auto& f = static_cast<const FunctionCallExpr&>(expr);
      const std::string& name = f.name();
      if (name == "COUNT" || name == "LENGTH") return Type::kInteger;
      if (name == "AVG" || name == "ROUND") return Type::kReal;
      if (name == "UPPER" || name == "LOWER") return Type::kText;
      if (name == "SUM" || name == "MIN" || name == "MAX" ||
          name == "ABS") {
        if (f.args().size() == 1) {
          return InferExprType(*f.args()[0], resolve, scope);
        }
        return Type::kReal;
      }
      return Status::ExecutionError("cannot infer type of function " +
                                    name);
    }
    case ExprKind::kScalarSubquery: {
      const auto& sub =
          static_cast<const ScalarSubqueryExpr&>(expr).select();
      MSQL_ASSIGN_OR_RETURN(TableSchema schema,
                            InferSelectSchema("subquery", sub, resolve));
      if (schema.num_columns() != 1) {
        return Status::InvalidArgument(
            "scalar subquery must have one output column");
      }
      return schema.column(0).type;
    }
    case ExprKind::kInList:
    case ExprKind::kBetween:
      return Type::kBoolean;
  }
  return Status::Internal("unhandled expression kind in inference");
}

Result<TableSchema> InferSelectSchema(std::string_view name,
                                      const SelectStmt& select,
                                      const SchemaResolver& resolve) {
  std::vector<ColumnDef> columns;
  for (const auto& item : select.items) {
    if (item.is_star) {
      bool matched = false;
      for (const auto& ref : select.from) {
        if (!item.star_qualifier.empty() &&
            !EqualsIgnoreCase(ref.EffectiveName(), item.star_qualifier)) {
          continue;
        }
        matched = true;
        MSQL_ASSIGN_OR_RETURN(const TableSchema* schema,
                              resolve(ref.table));
        for (const auto& col : schema->columns()) columns.push_back(col);
      }
      if (!matched) {
        return Status::NotFound("'*' qualifier '" + item.star_qualifier +
                                "' matches no FROM table");
      }
      continue;
    }
    ColumnDef def;
    def.name = SelectItemOutputName(item);
    MSQL_ASSIGN_OR_RETURN(def.type,
                          InferExprType(*item.expr, resolve, &select));
    columns.push_back(std::move(def));
  }
  return TableSchema::Create(std::string(name), std::move(columns));
}

}  // namespace msql::relational
