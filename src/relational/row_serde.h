#ifndef MSQL_RELATIONAL_ROW_SERDE_H_
#define MSQL_RELATIONAL_ROW_SERDE_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "relational/table.h"
#include "relational/value.h"

namespace msql::relational {

/// Row ↔ bytes for the paged heap. Self-describing: per value a type
/// tag, then a fixed (integer/real) or length-prefixed (text) payload,
/// so deserialization needs no schema.
std::string SerializeRow(const Row& row);
Result<Row> DeserializeRow(std::string_view bytes);

/// Order-preserving byte encoding of one index key value: for values
/// of a single column type (plus NULLs, which sort first), the
/// lexicographic order of encodings matches Value::Compare. Text is
/// 0x00-escaped and terminated so no encoding is a strict prefix of
/// another — a range scan over `v` never leaks keys of longer strings
/// that merely start with `v`.
std::string EncodeIndexKey(const Value& v);

/// EncodeIndexKey + the big-endian row id appended: the unique
/// composite key stored in the B+-tree (multimap semantics).
std::string EncodeIndexEntry(const Value& v, RowId id);

/// Row id back out of a composite entry's last 8 bytes.
RowId DecodeIndexEntryRowId(std::string_view entry);

}  // namespace msql::relational

#endif  // MSQL_RELATIONAL_ROW_SERDE_H_
