#include "relational/table.h"

#include "common/string_util.h"
#include "relational/index.h"
#include "relational/storage_engine.h"

namespace msql::relational {

Table::Table(TableSchema schema) : schema_(std::move(schema)) {}

Table::Table(TableSchema schema, TableStorage* storage)
    : schema_(std::move(schema)), storage_(storage) {}

Table::~Table() = default;

Result<std::unique_ptr<Table>> Table::CreatePaged(TableSchema schema,
                                                  TableStorage* storage) {
  std::unique_ptr<Table> table(new Table(std::move(schema), storage));
  MSQL_RETURN_IF_ERROR(table->LoadFromStorage());
  return table;
}

Status Table::LoadFromStorage() {
  std::vector<std::pair<RowId, uint16_t>> entries;
  MSQL_RETURN_IF_ERROR(storage_->heap()->ScanEntries(
      [&](uint64_t rowid, uint16_t flags) -> Status {
        entries.emplace_back(rowid, flags);
        return Status::OK();
      }));
  next_rowid_ = entries.empty() ? 0 : entries.back().first + 1;
  live_count_ = 0;
  free_slots_.clear();
  // Rowids without a live entry — tombstoned, or gaps left by discarded
  // transactions — are reusable.
  size_t next_entry = 0;
  for (RowId id = 0; id < next_rowid_; ++id) {
    bool live = false;
    if (next_entry < entries.size() && entries[next_entry].first == id) {
      live = entries[next_entry].second == 1;
      ++next_entry;
    }
    if (live) {
      ++live_count_;
    } else {
      free_slots_.insert(id);
    }
  }
  return Status::OK();
}

Result<Row> Table::Normalize(Row row) const {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match table '" +
        schema_.table_name() + "' with " +
        std::to_string(schema_.num_columns()) + " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    MSQL_ASSIGN_OR_RETURN(row[i], row[i].CoerceTo(schema_.column(i).type));
  }
  return row;
}

Result<Row> Table::ReadRow(RowId id) const {
  if (storage_ != nullptr) {
    if (!IsLive(id)) {
      return Status::Internal("read of dead slot " + std::to_string(id));
    }
    return storage_->ReadRow(id);
  }
  if (!IsLive(id)) {
    return Status::Internal("read of dead slot " + std::to_string(id));
  }
  return *slots_[id];
}

Result<RowId> Table::Insert(Row row) {
  MSQL_ASSIGN_OR_RETURN(Row normalized, Normalize(std::move(row)));
  if (storage_ != nullptr) {
    // Reuse the lowest tombstoned slot, as in-memory mode does.
    RowId id = free_slots_.empty() ? next_rowid_ : *free_slots_.begin();
    MSQL_RETURN_IF_ERROR(storage_->LoggedInsert(id, normalized));
    Status indexed = IndexInsert(normalized, id);
    if (!indexed.ok()) {
      // Compensate the heap write so the slot is not half-born; the
      // compensation is logged like any other mutation.
      (void)storage_->LoggedDelete(id, normalized);
      return indexed;
    }
    if (id == next_rowid_) {
      ++next_rowid_;
    } else {
      free_slots_.erase(id);
    }
    ++live_count_;
    return id;
  }
  RowId id;
  if (!free_slots_.empty()) {
    // Reuse the lowest tombstoned slot so slot_count() stays bounded by
    // the high-water mark of live rows, not by total inserts.
    id = *free_slots_.begin();
    free_slots_.erase(free_slots_.begin());
    slots_[id] = std::move(normalized);
  } else {
    slots_.emplace_back(std::move(normalized));
    id = static_cast<RowId>(slots_.size() - 1);
  }
  ++live_count_;
  MSQL_RETURN_IF_ERROR(IndexInsert(*slots_[id], id));
  return id;
}

Status Table::ResurrectRow(RowId id, Row row) {
  if (storage_ != nullptr) {
    if (IsLive(id)) {
      return Status::Internal("resurrect of live slot " + std::to_string(id));
    }
    MSQL_RETURN_IF_ERROR(storage_->LoggedInsert(id, row));
    free_slots_.erase(id);
    if (id >= next_rowid_) next_rowid_ = id + 1;
    ++live_count_;
    return IndexInsert(row, id);
  }
  if (id >= slots_.size()) {
    return Status::Internal("resurrect of unknown slot " + std::to_string(id));
  }
  if (slots_[id].has_value()) {
    return Status::Internal("resurrect of live slot " + std::to_string(id));
  }
  slots_[id] = std::move(row);
  free_slots_.erase(id);
  ++live_count_;
  return IndexInsert(*slots_[id], id);
}

Result<Row> Table::Delete(RowId id) {
  if (!IsLive(id)) {
    return Status::Internal("delete of dead slot " + std::to_string(id));
  }
  if (storage_ != nullptr) {
    MSQL_ASSIGN_OR_RETURN(Row old, storage_->ReadRow(id));
    MSQL_RETURN_IF_ERROR(storage_->LoggedDelete(id, old));
    free_slots_.insert(id);
    --live_count_;
    MSQL_RETURN_IF_ERROR(IndexErase(old, id));
    return old;
  }
  Row old = std::move(*slots_[id]);
  slots_[id].reset();
  free_slots_.insert(id);
  --live_count_;
  MSQL_RETURN_IF_ERROR(IndexErase(old, id));
  return old;
}

Result<Row> Table::Update(RowId id, Row new_row) {
  if (!IsLive(id)) {
    return Status::Internal("update of dead slot " + std::to_string(id));
  }
  MSQL_ASSIGN_OR_RETURN(Row normalized, Normalize(std::move(new_row)));
  if (storage_ != nullptr) {
    MSQL_ASSIGN_OR_RETURN(Row old, storage_->ReadRow(id));
    MSQL_RETURN_IF_ERROR(storage_->LoggedUpdate(id, old, normalized));
    MSQL_RETURN_IF_ERROR(IndexErase(old, id));
    MSQL_RETURN_IF_ERROR(IndexInsert(normalized, id));
    return old;
  }
  Row old = std::move(*slots_[id]);
  slots_[id] = std::move(normalized);
  MSQL_RETURN_IF_ERROR(IndexErase(old, id));
  MSQL_RETURN_IF_ERROR(IndexInsert(*slots_[id], id));
  return old;
}

std::vector<RowId> Table::ScanRowIds() const {
  std::vector<RowId> ids;
  ids.reserve(live_count_);
  if (storage_ != nullptr) {
    for (RowId id = 0; id < next_rowid_; ++id) {
      if (free_slots_.count(id) == 0) ids.push_back(id);
    }
    return ids;
  }
  for (RowId id = 0; id < slots_.size(); ++id) {
    if (slots_[id].has_value()) ids.push_back(id);
  }
  return ids;
}

Result<std::vector<Row>> Table::ScanRows() const {
  std::vector<Row> rows;
  rows.reserve(live_count_);
  if (storage_ != nullptr) {
    MSQL_RETURN_IF_ERROR(
        storage_->ScanLiveRows([&](RowId, Row row) -> Status {
          rows.push_back(std::move(row));
          return Status::OK();
        }));
    return rows;
  }
  for (const auto& slot : slots_) {
    if (slot.has_value()) rows.push_back(*slot);
  }
  return rows;
}

Status Table::CreateIndex(std::string_view index_name,
                          std::string_view column) {
  return CreateIndexInternal(index_name, column, /*log_ddl=*/true);
}

Status Table::RestoreIndex(std::string_view index_name,
                           std::string_view column) {
  return CreateIndexInternal(index_name, column, /*log_ddl=*/false);
}

Status Table::CreateIndexInternal(std::string_view index_name,
                                  std::string_view column, bool log_ddl) {
  std::string key = ToLower(index_name);
  if (indexes_.count(key) > 0) {
    return Status::AlreadyExists("index '" + key + "' already exists on '" +
                                 schema_.table_name() + "'");
  }
  auto col = schema_.FindColumn(column);
  if (!col.has_value()) {
    return Status::NotFound("column '" + std::string(column) +
                            "' not in table '" + schema_.table_name() + "'");
  }
  if (storage_ != nullptr) {
    MSQL_ASSIGN_OR_RETURN(
        std::unique_ptr<Index> index,
        storage_->manager()->BuildIndex(storage_, key,
                                        schema_.column(*col).name, *col,
                                        schema_.column(*col).type, log_ddl));
    indexes_.emplace(std::move(key), std::move(index));
    return Status::OK();
  }
  auto index = std::make_unique<Index>(key, *col);
  for (RowId id = 0; id < slots_.size(); ++id) {
    if (slots_[id].has_value()) {
      MSQL_RETURN_IF_ERROR(index->Insert((*slots_[id])[*col], id));
    }
  }
  indexes_.emplace(std::move(key), std::move(index));
  return Status::OK();
}

Result<std::string> Table::DropIndex(std::string_view index_name) {
  auto it = indexes_.find(ToLower(index_name));
  if (it == indexes_.end()) {
    return Status::NotFound("index '" + std::string(index_name) +
                            "' does not exist on '" + schema_.table_name() +
                            "'");
  }
  std::string column = schema_.column(it->second->column_index()).name;
  if (storage_ != nullptr) {
    MSQL_RETURN_IF_ERROR(storage_->manager()->OnDropIndex(
        storage_->db(), storage_->table(), it->first));
  }
  indexes_.erase(it);
  return column;
}

bool Table::HasIndex(std::string_view index_name) const {
  return indexes_.count(ToLower(index_name)) > 0;
}

std::vector<std::string> Table::IndexNames() const {
  std::vector<std::string> names;
  names.reserve(indexes_.size());
  for (const auto& [name, index] : indexes_) names.push_back(name);
  return names;
}

const Index* Table::FindIndexOnColumn(std::string_view column) const {
  auto col = schema_.FindColumn(column);
  if (!col.has_value()) return nullptr;
  for (const auto& [name, index] : indexes_) {
    if (index->column_index() == *col) return index.get();
  }
  return nullptr;
}

Status Table::IndexInsert(const Row& row, RowId id) {
  std::vector<Index*> done;
  for (const auto& [name, index] : indexes_) {
    Status status = index->Insert(row[index->column_index()], id);
    if (!status.ok()) {
      // Back out the entries already made so no index half-covers the
      // row (best effort; the transaction is about to abort anyway).
      for (Index* undo : done) {
        (void)undo->Erase(row[undo->column_index()], id);
      }
      return status;
    }
    done.push_back(index.get());
  }
  return Status::OK();
}

Status Table::IndexErase(const Row& row, RowId id) {
  Status first_error = Status::OK();
  for (const auto& [name, index] : indexes_) {
    Status status = index->Erase(row[index->column_index()], id);
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

}  // namespace msql::relational
