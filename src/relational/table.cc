#include "relational/table.h"

#include "common/string_util.h"
#include "relational/index.h"

namespace msql::relational {

Table::Table(TableSchema schema) : schema_(std::move(schema)) {}

Table::~Table() = default;

Result<Row> Table::Normalize(Row row) const {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match table '" +
        schema_.table_name() + "' with " +
        std::to_string(schema_.num_columns()) + " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    MSQL_ASSIGN_OR_RETURN(row[i], row[i].CoerceTo(schema_.column(i).type));
  }
  return row;
}

Result<RowId> Table::Insert(Row row) {
  MSQL_ASSIGN_OR_RETURN(Row normalized, Normalize(std::move(row)));
  slots_.emplace_back(std::move(normalized));
  ++live_count_;
  RowId id = static_cast<RowId>(slots_.size() - 1);
  IndexInsert(*slots_[id], id);
  return id;
}

Status Table::ResurrectRow(RowId id, Row row) {
  if (id >= slots_.size()) {
    return Status::Internal("resurrect of unknown slot " + std::to_string(id));
  }
  if (slots_[id].has_value()) {
    return Status::Internal("resurrect of live slot " + std::to_string(id));
  }
  slots_[id] = std::move(row);
  ++live_count_;
  IndexInsert(*slots_[id], id);
  return Status::OK();
}

Result<Row> Table::Delete(RowId id) {
  if (!IsLive(id)) {
    return Status::Internal("delete of dead slot " + std::to_string(id));
  }
  Row old = std::move(*slots_[id]);
  slots_[id].reset();
  --live_count_;
  IndexErase(old, id);
  return old;
}

Result<Row> Table::Update(RowId id, Row new_row) {
  if (!IsLive(id)) {
    return Status::Internal("update of dead slot " + std::to_string(id));
  }
  MSQL_ASSIGN_OR_RETURN(Row normalized, Normalize(std::move(new_row)));
  Row old = std::move(*slots_[id]);
  slots_[id] = std::move(normalized);
  IndexErase(old, id);
  IndexInsert(*slots_[id], id);
  return old;
}

std::vector<RowId> Table::ScanRowIds() const {
  std::vector<RowId> ids;
  ids.reserve(live_count_);
  for (RowId id = 0; id < slots_.size(); ++id) {
    if (slots_[id].has_value()) ids.push_back(id);
  }
  return ids;
}

std::vector<Row> Table::ScanRows() const {
  std::vector<Row> rows;
  rows.reserve(live_count_);
  for (const auto& slot : slots_) {
    if (slot.has_value()) rows.push_back(*slot);
  }
  return rows;
}

Status Table::CreateIndex(std::string_view index_name,
                          std::string_view column) {
  std::string key = ToLower(index_name);
  if (indexes_.count(key) > 0) {
    return Status::AlreadyExists("index '" + key + "' already exists on '" +
                                 schema_.table_name() + "'");
  }
  auto col = schema_.FindColumn(column);
  if (!col.has_value()) {
    return Status::NotFound("column '" + std::string(column) +
                            "' not in table '" + schema_.table_name() + "'");
  }
  auto index = std::make_unique<Index>(key, *col);
  for (RowId id = 0; id < slots_.size(); ++id) {
    if (slots_[id].has_value()) {
      index->Insert((*slots_[id])[*col], id);
    }
  }
  indexes_.emplace(std::move(key), std::move(index));
  return Status::OK();
}

Result<std::string> Table::DropIndex(std::string_view index_name) {
  auto it = indexes_.find(ToLower(index_name));
  if (it == indexes_.end()) {
    return Status::NotFound("index '" + std::string(index_name) +
                            "' does not exist on '" + schema_.table_name() +
                            "'");
  }
  std::string column = schema_.column(it->second->column_index()).name;
  indexes_.erase(it);
  return column;
}

bool Table::HasIndex(std::string_view index_name) const {
  return indexes_.count(ToLower(index_name)) > 0;
}

std::vector<std::string> Table::IndexNames() const {
  std::vector<std::string> names;
  names.reserve(indexes_.size());
  for (const auto& [name, index] : indexes_) names.push_back(name);
  return names;
}

const Index* Table::FindIndexOnColumn(std::string_view column) const {
  auto col = schema_.FindColumn(column);
  if (!col.has_value()) return nullptr;
  for (const auto& [name, index] : indexes_) {
    if (index->column_index() == *col) return index.get();
  }
  return nullptr;
}

void Table::IndexInsert(const Row& row, RowId id) {
  for (const auto& [name, index] : indexes_) {
    index->Insert(row[index->column_index()], id);
  }
}

void Table::IndexErase(const Row& row, RowId id) {
  for (const auto& [name, index] : indexes_) {
    index->Erase(row[index->column_index()], id);
  }
}

}  // namespace msql::relational
