#include "relational/database.h"

#include "common/string_util.h"
#include "relational/storage_engine.h"

namespace msql::relational {

Database::Database(std::string name) : name_(ToLower(name)) {}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

std::vector<std::string> Database::MatchTables(
    std::string_view pattern) const {
  std::vector<std::string> names;
  for (const auto& [name, table] : tables_) {
    if (WildcardMatch(pattern, name)) names.push_back(name);
  }
  return names;
}

bool Database::HasTable(std::string_view table) const {
  return tables_.count(ToLower(table)) > 0;
}

Result<Table*> Database::GetTable(std::string_view table) {
  auto it = tables_.find(ToLower(table));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + std::string(table) +
                            "' does not exist in database '" + name_ + "'");
  }
  return it->second.get();
}

Result<const Table*> Database::GetTableConst(std::string_view table) const {
  auto it = tables_.find(ToLower(table));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + std::string(table) +
                            "' does not exist in database '" + name_ + "'");
  }
  return static_cast<const Table*>(it->second.get());
}

Status Database::CreateTable(TableSchema schema) {
  std::string name = schema.table_name();
  if (tables_.count(name) > 0 || views_.count(name) > 0) {
    return Status::AlreadyExists("'" + name +
                                 "' already names a table or view in "
                                 "database '" + name_ + "'");
  }
  if (storage_mgr_ != nullptr) {
    MSQL_ASSIGN_OR_RETURN(TableStorage * storage,
                          storage_mgr_->CreateTableStorage(name_, schema));
    MSQL_ASSIGN_OR_RETURN(std::unique_ptr<Table> table,
                          Table::CreatePaged(std::move(schema), storage));
    tables_.emplace(std::move(name), std::move(table));
    return Status::OK();
  }
  tables_.emplace(name, std::make_unique<Table>(std::move(schema)));
  return Status::OK();
}

Result<std::unique_ptr<Table>> Database::DropTable(std::string_view table) {
  auto it = tables_.find(ToLower(table));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + std::string(table) +
                            "' does not exist in database '" + name_ + "'");
  }
  std::unique_ptr<Table> owned = std::move(it->second);
  tables_.erase(it);
  if (storage_mgr_ != nullptr && owned->paged()) {
    // Logs DROP TABLE and moves the storage into the transaction's DDL
    // delta; the Table keeps its (still valid) pointer for rollback.
    MSQL_RETURN_IF_ERROR(
        storage_mgr_->OnDropTable(name_, owned->schema().table_name()));
  }
  return owned;
}

Status Database::RestoreTable(std::unique_ptr<Table> table) {
  std::string name = table->schema().table_name();
  if (tables_.count(name) > 0) {
    return Status::Internal("restore of existing table '" + name + "'");
  }
  tables_.emplace(std::move(name), std::move(table));
  return Status::OK();
}

bool Database::HasView(std::string_view view) const {
  return views_.count(ToLower(view)) > 0;
}

std::vector<std::string> Database::ViewNames() const {
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const auto& [name, def] : views_) names.push_back(name);
  return names;
}

Status Database::CreateView(std::string_view view,
                            std::unique_ptr<SelectStmt> definition) {
  std::string key = ToLower(view);
  if (tables_.count(key) > 0 || views_.count(key) > 0) {
    return Status::AlreadyExists("'" + key +
                                 "' already names a table or view in '" +
                                 name_ + "'");
  }
  if (storage_mgr_ != nullptr) {
    // Views have no pages — the WAL record alone re-creates them.
    MSQL_RETURN_IF_ERROR(
        storage_mgr_->OnCreateView(name_, key, definition->ToSql()));
  }
  views_.emplace(std::move(key), std::move(definition));
  return Status::OK();
}

Result<std::unique_ptr<SelectStmt>> Database::DropView(
    std::string_view view) {
  auto it = views_.find(ToLower(view));
  if (it == views_.end()) {
    return Status::NotFound("view '" + std::string(view) +
                            "' does not exist in database '" + name_ + "'");
  }
  std::unique_ptr<SelectStmt> owned = std::move(it->second);
  views_.erase(it);
  if (storage_mgr_ != nullptr) {
    MSQL_RETURN_IF_ERROR(storage_mgr_->OnDropView(name_, ToLower(view)));
  }
  return owned;
}

Result<const SelectStmt*> Database::GetView(std::string_view view) const {
  auto it = views_.find(ToLower(view));
  if (it == views_.end()) {
    return Status::NotFound("view '" + std::string(view) +
                            "' does not exist in database '" + name_ + "'");
  }
  return static_cast<const SelectStmt*>(it->second.get());
}

}  // namespace msql::relational
