#ifndef MSQL_RELATIONAL_TABLE_H_
#define MSQL_RELATIONAL_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace msql::relational {

/// A row is a vector of values positionally aligned with a TableSchema.
using Row = std::vector<Value>;

/// Stable identifier of a row inside one table (slot index). Row ids are
/// never reused within a table's lifetime, which lets transaction undo
/// records name rows unambiguously.
using RowId = uint64_t;

/// Heap-organized table: slot array with tombstones.
///
/// Mutations go through the RowId-based primitives so that the
/// transaction manager can record precise undo information (the inverse
/// primitive). There is no buffer manager or persistence — the paper's
/// semantics live entirely above the storage layer.
class Table {
 public:
  // Constructor and destructor are out of line: indexes_ holds the
  // incomplete Index type.
  explicit Table(TableSchema schema);
  ~Table();

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const { return schema_; }

  /// Number of live (non-deleted) rows.
  size_t live_row_count() const { return live_count_; }

  /// Upper bound on RowIds ever allocated (for iteration).
  RowId slot_count() const { return slots_.size(); }

  /// True if `id` names a live row.
  bool IsLive(RowId id) const {
    return id < slots_.size() && slots_[id].has_value();
  }

  /// The live row at `id`. Requires IsLive(id).
  const Row& GetRow(RowId id) const { return *slots_[id]; }

  /// Appends a row after coercing each value to its column type.
  /// Fails if the arity or a value type does not match.
  Result<RowId> Insert(Row row);

  /// Re-occupies a previously deleted slot with its original content
  /// (transaction undo of a delete). Fails if the slot is live.
  Status ResurrectRow(RowId id, Row row);

  /// Tombstones a live row, returning its content for the undo log.
  Result<Row> Delete(RowId id);

  /// Replaces a live row's content, returning the before-image.
  Result<Row> Update(RowId id, Row new_row);

  /// All live RowIds in slot order (deterministic scan order).
  std::vector<RowId> ScanRowIds() const;

  /// All live rows in slot order (copy).
  std::vector<Row> ScanRows() const;

  // -- Secondary indexes ------------------------------------------------

  /// Creates an index named `index_name` over `column`, populated from
  /// the current rows. Fails on duplicate name or unknown column.
  Status CreateIndex(std::string_view index_name, std::string_view column);

  /// Drops the index (its column name is returned so DDL undo can
  /// rebuild it).
  Result<std::string> DropIndex(std::string_view index_name);

  bool HasIndex(std::string_view index_name) const;
  std::vector<std::string> IndexNames() const;

  /// An index over the named column, or nullptr.
  const class Index* FindIndexOnColumn(std::string_view column) const;

 private:
  /// Checks arity and coerces values to the schema's column types.
  Result<Row> Normalize(Row row) const;

  void IndexInsert(const Row& row, RowId id);
  void IndexErase(const Row& row, RowId id);

  TableSchema schema_;
  std::vector<std::optional<Row>> slots_;
  size_t live_count_ = 0;
  std::map<std::string, std::unique_ptr<class Index>> indexes_;
};

}  // namespace msql::relational

#endif  // MSQL_RELATIONAL_TABLE_H_
