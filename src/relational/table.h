#ifndef MSQL_RELATIONAL_TABLE_H_
#define MSQL_RELATIONAL_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace msql::relational {

class TableStorage;

/// A row is a vector of values positionally aligned with a TableSchema.
using Row = std::vector<Value>;

/// Stable identifier of a row inside one table (slot index). A slot is
/// only reused after its row has been tombstoned, and transaction undo
/// applies in reverse order, so undo records still name rows
/// unambiguously: any undo touching a reused slot is preceded by the
/// undo of the operations that reused it.
using RowId = uint64_t;

/// Heap-organized table: slot array with tombstones.
///
/// Mutations go through the RowId-based primitives so that the
/// transaction manager can record precise undo information (the inverse
/// primitive).
///
/// Two storage modes share this interface:
///   - in-memory (default): rows live in `slots_`, indexes are
///     std::map-backed — the original engine, still what most tests and
///     the netsim fixtures use;
///   - paged: rows live in a TableStorage heap file behind the engine's
///     buffer pool, every mutation is WAL-logged, and indexes are paged
///     B+-trees. Only rowid bookkeeping (free list, live count) stays
///     resident, so memory is bounded by the pool, not the data.
/// GetRow's const-reference accessor only exists in-memory; paged
/// callers use ReadRow, which materializes one row.
class Table {
 public:
  // Constructor and destructor are out of line: indexes_ holds the
  // incomplete Index type.
  explicit Table(TableSchema schema);
  ~Table();

  /// Builds a paged table over `storage`, rebuilding the rowid
  /// bookkeeping from the heap's directory (used both by CREATE TABLE
  /// and by recovery, where the heap already has rows).
  static Result<std::unique_ptr<Table>> CreatePaged(TableSchema schema,
                                                    TableStorage* storage);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const { return schema_; }

  bool paged() const { return storage_ != nullptr; }
  TableStorage* storage() const { return storage_; }

  /// Number of live (non-deleted) rows.
  size_t live_row_count() const { return live_count_; }

  /// Upper bound on RowIds ever allocated (for iteration).
  RowId slot_count() const {
    return storage_ != nullptr ? next_rowid_
                               : static_cast<RowId>(slots_.size());
  }

  /// Tombstoned slots currently available for reuse by Insert.
  size_t free_slot_count() const { return free_slots_.size(); }

  /// True if `id` names a live row.
  bool IsLive(RowId id) const {
    if (storage_ != nullptr) {
      return id < next_rowid_ && free_slots_.count(id) == 0;
    }
    return id < slots_.size() && slots_[id].has_value();
  }

  /// The live row at `id`. Requires IsLive(id) and an in-memory table.
  const Row& GetRow(RowId id) const { return *slots_[id]; }

  /// The live row at `id`, materialized (works in both modes).
  Result<Row> ReadRow(RowId id) const;

  /// Appends a row after coercing each value to its column type.
  /// Fails if the arity or a value type does not match.
  Result<RowId> Insert(Row row);

  /// Re-occupies a previously deleted slot with its original content
  /// (transaction undo of a delete). Fails if the slot is live.
  Status ResurrectRow(RowId id, Row row);

  /// Tombstones a live row, returning its content for the undo log.
  Result<Row> Delete(RowId id);

  /// Replaces a live row's content, returning the before-image.
  Result<Row> Update(RowId id, Row new_row);

  /// All live RowIds in slot order (deterministic scan order).
  std::vector<RowId> ScanRowIds() const;

  /// All live rows in slot order (copy; paged tables materialize —
  /// executor fallback only, index probes stay bounded).
  Result<std::vector<Row>> ScanRows() const;

  // -- Secondary indexes ------------------------------------------------

  /// Creates an index named `index_name` over `column`, populated from
  /// the current rows. Fails on duplicate name or unknown column.
  Status CreateIndex(std::string_view index_name, std::string_view column);

  /// Re-creates a paged index without logging DDL (crash recovery —
  /// the catalog record that mandates it is already in the WAL).
  Status RestoreIndex(std::string_view index_name, std::string_view column);

  /// Drops the index (its column name is returned so DDL undo can
  /// rebuild it).
  Result<std::string> DropIndex(std::string_view index_name);

  bool HasIndex(std::string_view index_name) const;
  std::vector<std::string> IndexNames() const;

  /// An index over the named column, or nullptr.
  const class Index* FindIndexOnColumn(std::string_view column) const;

 private:
  Table(TableSchema schema, TableStorage* storage);

  /// Checks arity and coerces values to the schema's column types.
  Result<Row> Normalize(Row row) const;

  /// Rebuilds next_rowid_/free_slots_/live_count_ from the heap.
  Status LoadFromStorage();

  Status CreateIndexInternal(std::string_view index_name,
                             std::string_view column, bool log_ddl);

  Status IndexInsert(const Row& row, RowId id);
  Status IndexErase(const Row& row, RowId id);

  TableSchema schema_;
  TableStorage* storage_ = nullptr;  // non-owning; null = in-memory
  std::vector<std::optional<Row>> slots_;
  /// Tombstoned slots eligible for reuse, lowest first (deterministic).
  /// Without this, update/delete-heavy sessions grow `slots_`
  /// monotonically: unbounded memory and ever-slower slot iteration.
  /// Paged tables use it the same way over heap tombstones.
  std::set<RowId> free_slots_;
  /// Paged mode: first never-allocated rowid.
  RowId next_rowid_ = 0;
  size_t live_count_ = 0;
  std::map<std::string, std::unique_ptr<class Index>> indexes_;
};

}  // namespace msql::relational

#endif  // MSQL_RELATIONAL_TABLE_H_
