#include "relational/result_set.h"

#include <algorithm>

namespace msql::relational {

namespace {
bool RowLess(const Row& a, const Row& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}
}  // namespace

std::string ResultSet::ToString() const {
  if (!IsQueryResult()) {
    return "(" + std::to_string(rows_affected) + " rows affected)\n";
  }
  // Compute column widths.
  std::vector<size_t> widths(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) widths[i] = columns[i].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows.size());
  for (const auto& row : rows) {
    std::vector<std::string> cells;
    cells.reserve(columns.size());
    for (size_t i = 0; i < columns.size(); ++i) {
      std::string cell = i < row.size() ? row[i].ToDisplayString() : "";
      widths[i] = std::max(widths[i], cell.size());
      cells.push_back(std::move(cell));
    }
    rendered.push_back(std::move(cells));
  }
  auto pad = [](const std::string& s, size_t w) {
    std::string out = s;
    out.resize(w, ' ');
    return out;
  };
  std::string out;
  std::string rule;
  for (size_t i = 0; i < columns.size(); ++i) {
    out += (i == 0 ? "| " : " | ") + pad(columns[i], widths[i]);
    rule += (i == 0 ? "+-" : "-+-") + std::string(widths[i], '-');
  }
  out += " |\n";
  rule += "-+\n";
  out = rule + out + rule;
  for (const auto& cells : rendered) {
    for (size_t i = 0; i < cells.size(); ++i) {
      out += (i == 0 ? "| " : " | ") + pad(cells[i], widths[i]);
    }
    out += " |\n";
  }
  out += rule;
  out += "(" + std::to_string(rows.size()) + " rows)\n";
  return out;
}

void ResultSet::SortRows() { std::sort(rows.begin(), rows.end(), RowLess); }

bool ResultSet::operator==(const ResultSet& other) const {
  return columns == other.columns && rows == other.rows &&
         rows_affected == other.rows_affected;
}

}  // namespace msql::relational
