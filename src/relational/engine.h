#ifndef MSQL_RELATIONAL_ENGINE_H_
#define MSQL_RELATIONAL_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "relational/database.h"
#include "relational/executor.h"
#include "relational/result_set.h"
#include "relational/storage_engine.h"
#include "relational/txn.h"

namespace msql::relational {

/// Commit-protocol and connection capabilities of one LDBMS.
///
/// This is the heterogeneity the paper's semantics hinge on (§3.1,
/// §3.2.2): whether the system exposes a prepared-to-commit state
/// (COMMITMODE NOCOMMIT vs automatic commit), whether it serves multiple
/// databases (CONNECTMODE), and what DDL does to open transactions —
/// "one of the DBMSs allows DDL commands to be rolled back while another
/// automatically commits them together with all previously issued
/// uncommitted statements".
struct CapabilityProfile {
  std::string dbms_family = "generic";
  /// Visible prepared-to-commit state (user-controlled 2PC).
  bool supports_two_phase_commit = true;
  /// CONNECT (several databases per service) vs NOCONNECT (one default).
  bool supports_multiple_databases = true;
  /// DDL statements can be rolled back inside a transaction.
  bool ddl_rollbackable = true;
  /// DDL commits all previously issued uncommitted statements, then
  /// itself (mutually exclusive with ddl_rollbackable in practice).
  bool ddl_commits_prior_work = false;

  /// Ingres-like: 2PC, DDL rollbackable.
  static CapabilityProfile IngresLike();
  /// Oracle-like: 2PC, DDL auto-commits itself and prior work.
  static CapabilityProfile OracleLike();
  /// Sybase-like (as configured in the paper's prototype): automatic
  /// commit only — no visible prepared state.
  static CapabilityProfile SybaseLike();
};

/// Points where a failure can be injected to exercise the §3.2/§3.3
/// recovery paths ("local conflicts, failure, deadlock, etc.").
/// kNextUndo fires halfway through the next rollback's undo application,
/// leaving the database detectably half-rolled-back (kCorrupted).
enum class FailPoint {
  kNone,
  kNextStatement,
  kNextPrepare,
  kNextCommit,
  kNextUndo,
};

using SessionId = uint64_t;

/// Cumulative counters (read by benches and the netsim cost model).
struct EngineStats {
  int64_t statements_executed = 0;
  int64_t rows_read = 0;
  int64_t rows_written = 0;
  int64_t commits = 0;
  int64_t rollbacks = 0;
  int64_t prepares = 0;
  int64_t injected_failures = 0;
};

/// One autonomous local DBMS: databases, sessions, transactions, SQL
/// execution — the thing a LAM wraps.
///
/// Error containment: any failing statement aborts the enclosing local
/// transaction (the paper's LDBMSs "may be forced to abort their local
/// subqueries"); the session then returns to idle/autocommit until the
/// next BEGIN.
class LocalEngine {
 public:
  LocalEngine(std::string service_name, CapabilityProfile profile);

  LocalEngine(const LocalEngine&) = delete;
  LocalEngine& operator=(const LocalEngine&) = delete;

  const std::string& service_name() const { return service_name_; }
  const CapabilityProfile& profile() const { return profile_; }
  const EngineStats& stats() const { return stats_; }

  // -- Persistence --------------------------------------------------------

  /// Turns this engine durable: every database created afterwards is
  /// paged (bounded by the configured buffer pool) and WAL-logged.
  /// Must be called before any database exists. Call Recover() next
  /// when the root may already hold a WAL from a previous incarnation.
  Status AttachStorage(StorageConfig config);

  /// The storage manager, or nullptr for a purely in-memory engine.
  StorageManager* storage() { return storage_.get(); }

  /// WAL flush + bounded page writeback + checkpoint record.
  Status Checkpoint(size_t max_pages = SIZE_MAX);

  /// Power-cut simulation: sessions, locks, the in-memory catalog, the
  /// buffer pool and the unflushed WAL tail all vanish. Requires
  /// attached storage (an in-memory engine cannot survive this).
  void SimulateCrash();

  /// Replays the WAL: rebuilds databases/tables/views/indexes, redoes
  /// committed and prepared work, and re-instates prepared transactions
  /// (sessions, undo logs, exclusive locks) so the 2PC coordinator can
  /// still resolve them. Clears corruption marks — a half-rolled-back
  /// transaction was active at the crash, so its effects are discarded.
  Status Recover();

  // -- Database administration ------------------------------------------

  Status CreateDatabase(std::string_view name);
  Status DropDatabase(std::string_view name);
  bool HasDatabase(std::string_view name) const;
  Result<Database*> GetDatabase(std::string_view name);
  Result<const Database*> GetDatabaseConst(std::string_view name) const;
  std::vector<std::string> DatabaseNames() const;

  // -- Sessions -----------------------------------------------------------

  /// Opens a session against `db_name`. For NOCONNECT engines, an empty
  /// name selects the single (default) database and a non-empty name
  /// must match it.
  Result<SessionId> OpenSession(std::string_view db_name);
  Status CloseSession(SessionId session);

  /// Output schema of a local view, derived statically from its
  /// definition (used by IMPORT VIEW to export Local Conceptual Schema
  /// information without materializing the view).
  Result<TableSchema> DescribeView(std::string_view db_name,
                                   std::string_view view) const;

  // -- Execution ----------------------------------------------------------

  /// Parses and executes one statement. Transaction-control verbs
  /// (BEGIN/COMMIT/ROLLBACK/PREPARE) are routed to the methods below.
  Result<ResultSet> Execute(SessionId session, std::string_view sql);

  /// Executes an already-parsed statement.
  Result<ResultSet> ExecuteStatement(SessionId session,
                                     const Statement& stmt);

  /// EXPLAIN: parses `sql` (which must be a SELECT) and returns the
  /// local planner's text rendering of its physical plan without
  /// running the join. Uses the session's open transaction when there
  /// is one, a short-lived read transaction otherwise.
  Result<std::string> ExplainSql(SessionId session, std::string_view sql);

  // -- Observability / planner switches -----------------------------------

  /// Points executor spans ("sql.plan"/"sql.join") and counters at the
  /// federation's tracer/metrics (null = no instrumentation).
  void SetObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
    tracer_ = tracer;
    metrics_ = metrics;
    if (storage_ != nullptr) {
      storage_->SetMetrics(metrics);
      storage_->SetTracer(tracer);
    }
  }

  /// When true, every SELECT result carries its plan text (`\plan`).
  void set_collect_plan_text(bool on) { collect_plan_text_ = on; }
  bool collect_plan_text() const { return collect_plan_text_; }

  /// Disables the local planner, reverting SELECT to the naive
  /// cross-product join — the differential-testing oracle.
  void set_use_planner(bool on) { use_planner_ = on; }
  bool use_planner() const { return use_planner_; }

  /// Starts an explicit transaction.
  Status Begin(SessionId session);
  /// Moves the explicit transaction to prepared-to-commit. Fails with
  /// kTransactionError on engines without 2PC support.
  Status Prepare(SessionId session);
  /// Commits (from active or prepared).
  Status Commit(SessionId session);
  /// Rolls back (from active or prepared).
  Status Rollback(SessionId session);

  /// State of the session's current/last transaction (kCommitted when
  /// the session has only done autocommit work).
  Result<TxnState> GetTxnState(SessionId session) const;

  /// True if the session has an open explicit transaction.
  Result<bool> InTransaction(SessionId session) const;

  // -- Corruption containment ----------------------------------------------

  /// True when a failed mid-rollback left `db_name` half-rolled-back.
  /// Statements against a corrupted database refuse with kCorrupted
  /// instead of reading inconsistent rows.
  bool IsCorrupted(std::string_view db_name) const;

  /// Databases currently marked corrupted (name order).
  std::vector<std::string> CorruptedDatabases() const;

  /// Clears the corruption marks (after an external repair — for
  /// storage-backed engines, Recover() rebuilds a consistent state from
  /// the WAL and calls this).
  void ClearCorruption() { corrupted_dbs_.clear(); }

  // -- Concurrency ---------------------------------------------------------

  /// The engine's lock table (wait-policy switch, introspection).
  LockManager& lock_manager() { return locks_; }
  const LockManager& lock_manager() const { return locks_; }

  /// Local sessions whose transactions blocked the most recent kBusy
  /// verdict (resolved from LockManager::last_conflict; empty when the
  /// blocking transactions already ended). The LAM forwards these to
  /// the coordinator, which turns them into waits-for edges.
  std::vector<SessionId> BlockingSessions() const;

  // -- Failure injection ---------------------------------------------------

  /// Arms a one-shot failure at the given point (engine-wide).
  void InjectFailure(FailPoint point) { fail_point_ = point; }

  /// Every statement/prepare/commit independently fails with
  /// probability `p` (deterministic given `seed`). p = 0 disables.
  void SetFailureProbability(double p, uint64_t seed);

 private:
  struct Session {
    SessionId id = 0;
    std::string db_name;
    std::unique_ptr<Transaction> txn;  // open explicit txn, or null
    bool explicit_txn = false;
    TxnState last_state = TxnState::kCommitted;
  };

  Result<Session*> FindSession(SessionId id);
  Result<const Session*> FindSessionConst(SessionId id) const;

  /// True (and consumes the arming) if a failure should fire at `point`.
  bool ShouldFail(FailPoint point);

  /// Finishes `txn` with rollback, releasing locks.
  Status AbortTxn(Session* session);
  /// Finishes `txn` with commit, releasing locks.
  Status CommitTxn(Session* session);

  Result<ResultSet> ExecuteInTxn(Session* session, const Statement& stmt);

  std::string service_name_;
  CapabilityProfile profile_;
  /// Declared before databases_ so paged tables and indexes (whose
  /// destructors discard their buffered pages) die before the pool.
  std::unique_ptr<StorageManager> storage_;
  std::map<std::string, std::unique_ptr<Database>> databases_;
  /// Databases poisoned by a failed rollback: name → diagnostic.
  std::map<std::string, std::string> corrupted_dbs_;
  std::map<SessionId, Session> sessions_;
  LockManager locks_;
  TxnId next_txn_id_ = 1;
  SessionId next_session_id_ = 1;
  EngineStats stats_;

  FailPoint fail_point_ = FailPoint::kNone;
  double failure_probability_ = 0.0;
  Rng failure_rng_{0};

  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  bool collect_plan_text_ = false;
  bool use_planner_ = true;
};

}  // namespace msql::relational

#endif  // MSQL_RELATIONAL_ENGINE_H_
