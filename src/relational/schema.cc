#include "relational/schema.h"

#include "common/string_util.h"

namespace msql::relational {

Result<TableSchema> TableSchema::Create(std::string table_name,
                                        std::vector<ColumnDef> columns) {
  TableSchema schema;
  schema.table_name_ = ToLower(table_name);
  for (auto& col : columns) {
    col.name = ToLower(col.name);
    if (schema.HasColumn(col.name)) {
      return Status::InvalidArgument("duplicate column '" + col.name +
                                     "' in table '" + schema.table_name_ +
                                     "'");
    }
    schema.columns_.push_back(std::move(col));
  }
  return schema;
}

std::optional<size_t> TableSchema::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

std::vector<std::string> TableSchema::MatchColumns(
    std::string_view pattern) const {
  std::vector<std::string> out;
  for (const auto& col : columns_) {
    if (WildcardMatch(pattern, col.name)) out.push_back(col.name);
  }
  return out;
}

Result<TableSchema> TableSchema::Project(
    const std::vector<std::string>& names) const {
  std::vector<ColumnDef> cols;
  for (const auto& name : names) {
    auto idx = FindColumn(name);
    if (!idx.has_value()) {
      return Status::NotFound("column '" + name + "' not in table '" +
                              table_name_ + "'");
    }
    cols.push_back(columns_[*idx]);
  }
  return TableSchema::Create(table_name_, std::move(cols));
}

std::string TableSchema::ToString() const {
  std::string out = table_name_ + "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += TypeName(columns_[i].type);
    if (columns_[i].width > 0) {
      out += "(" + std::to_string(columns_[i].width) + ")";
    }
  }
  out += ")";
  return out;
}

}  // namespace msql::relational
