#include "relational/executor.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "common/string_util.h"
#include "relational/index.h"
#include "relational/schema_infer.h"

namespace msql::relational {

namespace {

/// Output column name for a select item.
std::string OutputName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind() == ExprKind::kColumnRef) {
    return static_cast<const ColumnRefExpr&>(*item.expr).name();
  }
  return ToLower(item.expr->ToSql());
}

/// Group key / distinct key: rows compared by strict Value equality.
struct RowKeyLess {
  bool operator()(const Row& a, const Row& b) const {
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

/// Aggregate accumulator for one aggregate call in one group.
class AggAccumulator {
 public:
  explicit AggAccumulator(const FunctionCallExpr* call) : call_(call) {}

  /// COUNT(*): counts the row itself, NULLs and all — there is no
  /// argument to inspect, so NULL rows are never skipped.
  Status AccumulateStar() {
    ++count_;
    return Status::OK();
  }

  Status Accumulate(const Value& v) {
    if (v.is_null()) return Status::OK();  // SQL: aggregates skip NULLs
    ++count_;
    const std::string& name = call_->name();
    if (name == "COUNT") return Status::OK();
    if (name == "SUM" || name == "AVG") {
      if (!v.is_numeric()) {
        return Status::ExecutionError(name + " over non-numeric value");
      }
      if (v.is_real()) saw_real_ = true;
      sum_real_ += v.NumericAsReal();
      sum_int_ += v.is_integer() ? v.AsInteger() : 0;
      return Status::OK();
    }
    if (name == "MIN") {
      if (!has_minmax_ || v.Compare(minmax_) < 0) minmax_ = v;
      has_minmax_ = true;
      return Status::OK();
    }
    if (name == "MAX") {
      if (!has_minmax_ || v.Compare(minmax_) > 0) minmax_ = v;
      has_minmax_ = true;
      return Status::OK();
    }
    return Status::Internal("unknown aggregate " + name);
  }

  Value Finish() const {
    const std::string& name = call_->name();
    if (name == "COUNT") return Value::Integer(count_);
    if (count_ == 0) return Value::Null_();  // empty group → NULL
    if (name == "SUM") {
      return saw_real_ ? Value::Real(sum_real_) : Value::Integer(sum_int_);
    }
    if (name == "AVG") {
      return Value::Real(sum_real_ / static_cast<double>(count_));
    }
    return minmax_;  // MIN / MAX
  }

 private:
  const FunctionCallExpr* call_;
  int64_t count_ = 0;
  double sum_real_ = 0.0;
  int64_t sum_int_ = 0;
  bool saw_real_ = false;
  Value minmax_;
  bool has_minmax_ = false;
};

/// Looks for a top-level AND-conjunct `col = literal` (either operand
/// order) matching an index of `table`; fills `index`/`probe` when one
/// is found.
void FindIndexProbe(const Expr& where, const Table& table,
                    const Index** index, Value* probe) {
  if (where.kind() == ExprKind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(where);
    if (b.op() == BinaryOp::kAnd) {
      FindIndexProbe(b.left(), table, index, probe);
      if (*index == nullptr) FindIndexProbe(b.right(), table, index, probe);
      return;
    }
    if (b.op() == BinaryOp::kEq) {
      const Expr* col = &b.left();
      const Expr* lit = &b.right();
      if (col->kind() != ExprKind::kColumnRef) std::swap(col, lit);
      if (col->kind() != ExprKind::kColumnRef ||
          lit->kind() != ExprKind::kLiteral) {
        return;
      }
      const auto& ref = static_cast<const ColumnRefExpr&>(*col);
      const Index* found = table.FindIndexOnColumn(ref.name());
      if (found != nullptr) {
        *index = found;
        *probe = static_cast<const LiteralExpr&>(*lit).value();
      }
    }
  }
}

/// Hash-join key hashing, consistent with Value::Compare equality:
/// numerics normalize to double (collapsing -0.0 into 0.0) so that
/// hash-equal always agrees with Compare == 0 across INTEGER/REAL.
/// NULL keys never reach the hash table — SQL `=` is never TRUE on
/// NULL, so both sides drop NULL-keyed rows before hashing.
struct JoinKeyHash {
  size_t operator()(const Row& key) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const Value& v : key) {
      size_t e = 0;
      if (v.is_numeric()) {
        double d = v.NumericAsReal();
        if (d == 0.0) d = 0.0;  // -0.0 and 0.0 compare equal
        e = std::hash<double>{}(d);
      } else if (v.is_boolean()) {
        e = std::hash<bool>{}(v.AsBoolean());
      } else if (v.is_text()) {
        e = std::hash<std::string>{}(v.AsText());
      }
      h ^= e + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

struct JoinKeyEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

/// A row mid-join: the combined row (full SELECT width, NULL-padded in
/// the not-yet-joined slots) plus the per-source ordinal of each part.
/// Sorting the final rows by the ordinal tuple in FROM order reproduces
/// the naive odometer's output order exactly.
struct JoinedRow {
  Row row;
  std::vector<uint32_t> ord;
};

}  // namespace

Status Executor::CheckQualifier(const TableRef& ref) const {
  if (!ref.database.empty() &&
      !EqualsIgnoreCase(ref.database, db_->name())) {
    return Status::NotFound("table reference '" + ref.FullName() +
                            "' names database '" + ref.database +
                            "' but this session is connected to '" +
                            db_->name() + "'");
  }
  return Status::OK();
}

std::string Executor::LockKey(const std::string& table) const {
  return db_->name() + "." + table;
}

Status Executor::RejectViewTarget(const TableRef& ref) const {
  if (db_->HasView(ref.table)) {
    return Status::InvalidArgument("'" + ToLower(ref.table) +
                                   "' is a view; views cannot be "
                                   "modified");
  }
  return Status::OK();
}

Result<ResultSet> Executor::Execute(const Statement& stmt) {
  if (txn_->state() != TxnState::kActive) {
    return Status::TransactionError(
        "statement issued against a transaction in state " +
        std::string(TxnStateName(txn_->state())));
  }
  switch (stmt.kind()) {
    case StatementKind::kSelect:
      return ExecuteSelect(static_cast<const SelectStmt&>(stmt));
    case StatementKind::kInsert:
      return ExecuteInsert(static_cast<const InsertStmt&>(stmt));
    case StatementKind::kUpdate:
      return ExecuteUpdate(static_cast<const UpdateStmt&>(stmt));
    case StatementKind::kDelete:
      return ExecuteDelete(static_cast<const DeleteStmt&>(stmt));
    case StatementKind::kCreateTable:
      return ExecuteCreateTable(static_cast<const CreateTableStmt&>(stmt));
    case StatementKind::kDropTable:
      return ExecuteDropTable(static_cast<const DropTableStmt&>(stmt));
    case StatementKind::kCreateView:
      return ExecuteCreateView(static_cast<const CreateViewStmt&>(stmt));
    case StatementKind::kDropView:
      return ExecuteDropView(static_cast<const DropViewStmt&>(stmt));
    case StatementKind::kCreateIndex:
      return ExecuteCreateIndex(static_cast<const CreateIndexStmt&>(stmt));
    case StatementKind::kDropIndex:
      return ExecuteDropIndex(static_cast<const DropIndexStmt&>(stmt));
    default:
      return Status::InvalidArgument(
          "statement kind not executable at database level: " +
          stmt.ToSql());
  }
}

Result<Value> Executor::EvalScalarSubquery(const SelectStmt& stmt) {
  MSQL_ASSIGN_OR_RETURN(ResultSet rs, ExecuteSelect(stmt));
  if (rs.columns.size() != 1) {
    return Status::ExecutionError(
        "scalar subquery must produce exactly one column, got " +
        std::to_string(rs.columns.size()));
  }
  if (rs.rows.empty()) return Value::Null_();
  if (rs.rows.size() > 1) {
    return Status::ExecutionError(
        "scalar subquery produced more than one row");
  }
  return rs.rows[0][0];
}

Result<ResultSet> Executor::ExecuteSelect(const SelectStmt& stmt) {
  if (stmt.from.empty()) {
    return Status::ExecutionError("SELECT without FROM is not supported");
  }
  std::vector<ResolvedSource> sources;
  RowBinding binding;
  int64_t recursive_scanned = 0;
  MSQL_RETURN_IF_ERROR(
      ResolveSources(stmt, &sources, &binding, &recursive_scanned));

  ExprEvaluator evaluator(
      &binding, [this](const SelectStmt& sub) -> Result<Value> {
        return EvalScalarSubquery(sub);
      });

  // Expand '*' select items into explicit column references.
  std::vector<SelectItem> items;
  for (const auto& item : stmt.items) {
    if (!item.is_star) {
      items.push_back(item.CloneItem());
      continue;
    }
    bool matched = false;
    for (const auto& src : sources) {
      if (!item.star_qualifier.empty() &&
          !EqualsIgnoreCase(src.effective_name, item.star_qualifier)) {
        continue;
      }
      matched = true;
      for (const auto& col : src.schema.columns()) {
        SelectItem expanded;
        expanded.expr = std::make_unique<ColumnRefExpr>(src.effective_name,
                                                        col.name);
        expanded.alias = col.name;
        items.push_back(std::move(expanded));
      }
    }
    if (!matched) {
      return Status::NotFound("'*' qualifier '" + item.star_qualifier +
                              "' does not match any FROM table");
    }
  }
  if (items.empty()) {
    return Status::ExecutionError("empty select list");
  }

  // Materialize the filtered join: planned (pushdown + index probes +
  // hash joins) by default, the naive cross product when disabled or
  // when the planner declines the statement.
  int64_t rows_scanned = 0;
  int64_t rows_evaluated = 0;
  std::string plan_text;
  std::vector<Row> matched_rows;
  if (options_.metrics != nullptr) options_.metrics->Inc("sql.selects");
  bool planned = options_.use_planner;
  if (planned) {
    std::vector<PlannerSource> planner_sources;
    planner_sources.reserve(sources.size());
    for (const auto& src : sources) {
      PlannerSource ps;
      ps.effective_name = src.effective_name;
      ps.schema = &src.schema;
      ps.row_count = src.table != nullptr
                         ? src.table->live_row_count()
                         : src.rows.size();
      ps.table = src.table;
      planner_sources.push_back(std::move(ps));
    }
    SelectPlan plan;
    {
      obs::ScopedSpan plan_span(options_.tracer, "sql.plan", "sql");
      MSQL_ASSIGN_OR_RETURN(plan, PlanSelect(stmt, planner_sources));
      if (plan_span.active() && !plan.fallback_reason.empty()) {
        plan_span.Annotate("fallback", plan.fallback_reason);
      }
    }
    if (options_.collect_plan_text) plan_text = plan.Explain();
    if (plan.fallback_reason.empty()) {
      MSQL_ASSIGN_OR_RETURN(
          matched_rows,
          RunPlannedJoin(stmt, plan, &sources, evaluator, &rows_scanned,
                         &rows_evaluated));
    } else {
      if (options_.metrics != nullptr) {
        options_.metrics->Inc("sql.plan.fallbacks");
      }
      planned = false;
    }
  }
  if (!planned) {
    MSQL_ASSIGN_OR_RETURN(matched_rows,
                          RunNaiveJoin(stmt, &sources, evaluator,
                                       &rows_scanned, &rows_evaluated));
  }
  rows_scanned += recursive_scanned;
  if (options_.metrics != nullptr) {
    options_.metrics->Observe("sql.rows_evaluated", rows_evaluated);
  }

  // Decide between plain projection and aggregation.
  bool has_aggregate = !stmt.group_by.empty();
  for (const auto& item : items) {
    if (ContainsAggregate(*item.expr)) has_aggregate = true;
  }
  if (stmt.having != nullptr) has_aggregate = true;

  ResultSet out;
  out.rows_scanned = rows_scanned;
  out.rows_evaluated = rows_evaluated;
  out.plan_text = std::move(plan_text);
  for (const auto& item : items) out.columns.push_back(OutputName(item));

  // Pairs of (output row, source row used for ORDER BY evaluation).
  std::vector<std::pair<Row, Row>> produced;

  if (!has_aggregate) {
    for (const auto& src_row : matched_rows) {
      Row out_row;
      out_row.reserve(items.size());
      for (const auto& item : items) {
        MSQL_ASSIGN_OR_RETURN(Value v, evaluator.Eval(*item.expr, src_row));
        out_row.push_back(std::move(v));
      }
      produced.emplace_back(std::move(out_row), src_row);
    }
  } else {
    // Collect every aggregate call reachable from the statement.
    std::vector<const FunctionCallExpr*> agg_calls;
    for (const auto& item : items) CollectAggregates(*item.expr, &agg_calls);
    if (stmt.having != nullptr) CollectAggregates(*stmt.having, &agg_calls);
    for (const auto& ob : stmt.order_by) {
      CollectAggregates(*ob.expr, &agg_calls);
    }

    // Group rows. With no GROUP BY there is a single global group (which
    // exists even over zero input rows, per SQL).
    std::map<Row, std::vector<Row>, RowKeyLess> groups;
    if (stmt.group_by.empty()) {
      groups[Row{}] = std::move(matched_rows);
    } else {
      for (auto& src_row : matched_rows) {
        Row key;
        key.reserve(stmt.group_by.size());
        for (const auto& g : stmt.group_by) {
          MSQL_ASSIGN_OR_RETURN(Value v, evaluator.Eval(*g, src_row));
          key.push_back(std::move(v));
        }
        groups[std::move(key)].push_back(std::move(src_row));
      }
    }

    for (auto& [key, group_rows] : groups) {
      (void)key;
      // Compute each aggregate over the group.
      std::map<const Expr*, Value> agg_values;
      for (const FunctionCallExpr* call : agg_calls) {
        AggAccumulator acc(call);
        for (const auto& row : group_rows) {
          if (call->star()) {
            MSQL_RETURN_IF_ERROR(acc.AccumulateStar());
          } else {
            if (call->args().size() != 1) {
              return Status::ExecutionError(call->name() +
                                            " expects one argument");
            }
            MSQL_ASSIGN_OR_RETURN(Value v,
                                  evaluator.Eval(*call->args()[0], row));
            MSQL_RETURN_IF_ERROR(acc.Accumulate(v));
          }
        }
        agg_values.emplace(call, acc.Finish());
      }
      evaluator.set_aggregate_values(&agg_values);

      // Representative row for evaluating grouped columns; empty groups
      // (global aggregate over no rows) use an all-NULL row.
      Row representative;
      if (!group_rows.empty()) {
        representative = group_rows.front();
      } else {
        representative.assign(binding.size(), Value::Null_());
      }

      bool keep = true;
      if (stmt.having != nullptr) {
        MSQL_ASSIGN_OR_RETURN(
            keep, evaluator.EvalPredicate(*stmt.having, representative));
      }
      if (keep) {
        Row out_row;
        out_row.reserve(items.size());
        for (const auto& item : items) {
          MSQL_ASSIGN_OR_RETURN(Value v,
                                evaluator.Eval(*item.expr, representative));
          out_row.push_back(std::move(v));
        }
        produced.emplace_back(std::move(out_row), representative);
      }
      evaluator.set_aggregate_values(nullptr);
    }
  }

  // DISTINCT.
  if (stmt.distinct) {
    std::set<Row, RowKeyLess> seen;
    std::vector<std::pair<Row, Row>> unique;
    for (auto& pr : produced) {
      if (seen.insert(pr.first).second) unique.push_back(std::move(pr));
    }
    produced = std::move(unique);
  }

  // ORDER BY: keys evaluated against the source/representative row;
  // a bare column name that matches an output column sorts by output.
  if (!stmt.order_by.empty()) {
    struct Keyed {
      Row keys;
      std::vector<bool> desc;
      Row out_row;
    };
    std::vector<Keyed> keyed;
    keyed.reserve(produced.size());
    for (auto& pr : produced) {
      Keyed k;
      for (const auto& ob : stmt.order_by) {
        Value key_value;
        bool resolved = false;
        if (ob.expr->kind() == ExprKind::kColumnRef) {
          const auto& ref = static_cast<const ColumnRefExpr&>(*ob.expr);
          if (ref.qualifier().empty()) {
            for (size_t c = 0; c < out.columns.size(); ++c) {
              if (EqualsIgnoreCase(out.columns[c], ref.name())) {
                key_value = pr.first[c];
                resolved = true;
                break;
              }
            }
          }
        }
        if (!resolved) {
          MSQL_ASSIGN_OR_RETURN(key_value,
                                evaluator.Eval(*ob.expr, pr.second));
        }
        k.keys.push_back(std::move(key_value));
        k.desc.push_back(ob.descending);
      }
      k.out_row = std::move(pr.first);
      keyed.push_back(std::move(k));
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const Keyed& a, const Keyed& b) {
                       for (size_t i = 0; i < a.keys.size(); ++i) {
                         int c = a.keys[i].Compare(b.keys[i]);
                         if (c != 0) return a.desc[i] ? c > 0 : c < 0;
                       }
                       return false;
                     });
    out.rows.reserve(keyed.size());
    for (auto& k : keyed) out.rows.push_back(std::move(k.out_row));
  } else {
    out.rows.reserve(produced.size());
    for (auto& pr : produced) out.rows.push_back(std::move(pr.first));
  }
  return out;
}

Status Executor::ResolveSources(const SelectStmt& stmt,
                                std::vector<ResolvedSource>* sources,
                                RowBinding* binding,
                                int64_t* recursive_scanned) {
  for (const auto& ref : stmt.from) {
    MSQL_RETURN_IF_ERROR(CheckQualifier(ref));
    MSQL_RETURN_IF_ERROR(locks_->Acquire(txn_, LockKey(ref.table),
                                         LockManager::Mode::kShared));
    std::string eff = ToLower(ref.EffectiveName());
    ResolvedSource source;
    source.effective_name = eff;
    if (db_->HasView(ref.table)) {
      MSQL_ASSIGN_OR_RETURN(const SelectStmt* definition,
                            db_->GetView(ref.table));
      MSQL_ASSIGN_OR_RETURN(
          source.schema,
          InferSelectSchema(ToLower(ref.table), *definition,
                            [this](std::string_view t)
                                -> Result<const TableSchema*> {
                              MSQL_ASSIGN_OR_RETURN(
                                  const Table* base,
                                  db_->GetTableConst(t));
                              return &base->schema();
                            }));
      MSQL_ASSIGN_OR_RETURN(ResultSet materialized,
                            ExecuteSelect(*definition));
      if (materialized.columns.size() != source.schema.num_columns()) {
        return Status::Internal("view schema/materialization mismatch");
      }
      // Materializing the view cost real base-table scans; fold them
      // into this statement's accounting instead of dropping them.
      *recursive_scanned += materialized.rows_scanned;
      source.rows = std::move(materialized.rows);
    } else {
      MSQL_ASSIGN_OR_RETURN(const Table* table,
                            db_->GetTableConst(ref.table));
      source.schema = table->schema();
      // Rows are fetched by the join runner once an access path is
      // chosen (scan or index probe).
      source.table = table;
    }
    binding->AddTable(eff, source.schema);
    sources->push_back(std::move(source));
  }
  return Status::OK();
}

Result<std::vector<Row>> Executor::RunNaiveJoin(
    const SelectStmt& stmt, std::vector<ResolvedSource>* sources,
    const ExprEvaluator& evaluator, int64_t* rows_scanned,
    int64_t* rows_evaluated) {
  // Access-path selection as the original executor had it: only a
  // single-table query with a `col = literal` conjunct over an indexed
  // column probes the index; everything else scans.
  for (auto& src : *sources) {
    if (src.table == nullptr) continue;  // view, already materialized
    const Index* index = nullptr;
    Value probe;
    if (sources->size() == 1 && stmt.where != nullptr) {
      FindIndexProbe(*stmt.where, *src.table, &index, &probe);
    }
    if (index != nullptr) {
      MSQL_ASSIGN_OR_RETURN(std::vector<RowId> ids, index->LookupIds(probe));
      src.rows.reserve(ids.size());
      for (RowId id : ids) {
        MSQL_ASSIGN_OR_RETURN(Row row, src.table->ReadRow(id));
        src.rows.push_back(std::move(row));
      }
    } else {
      MSQL_ASSIGN_OR_RETURN(src.rows, src.table->ScanRows());
    }
  }
  for (const auto& src : *sources) {
    *rows_scanned += static_cast<int64_t>(src.rows.size());
  }

  // Nested loops over the cross product, one WHERE evaluation per
  // combined row.
  std::vector<Row> matched_rows;
  std::vector<size_t> idx(sources->size(), 0);
  bool done = false;
  for (const auto& src : *sources) {
    if (src.rows.empty()) done = true;  // empty cross product
  }
  while (!done) {
    Row combined;
    for (size_t i = 0; i < sources->size(); ++i) {
      const Row& part = (*sources)[i].rows[idx[i]];
      combined.insert(combined.end(), part.begin(), part.end());
    }
    ++*rows_evaluated;
    bool keep = true;
    if (stmt.where != nullptr) {
      MSQL_ASSIGN_OR_RETURN(keep,
                            evaluator.EvalPredicate(*stmt.where, combined));
    }
    if (keep) matched_rows.push_back(std::move(combined));
    // Advance the odometer.
    size_t level = sources->size();
    while (level > 0) {
      --level;
      if (++idx[level] < (*sources)[level].rows.size()) break;
      idx[level] = 0;
      if (level == 0) done = true;
    }
  }
  return matched_rows;
}

Result<std::vector<Row>> Executor::RunPlannedJoin(
    const SelectStmt& stmt, const SelectPlan& plan,
    std::vector<ResolvedSource>* sources, const ExprEvaluator& evaluator,
    int64_t* rows_scanned, int64_t* rows_evaluated) {
  obs::ScopedSpan join_span(options_.tracer, "sql.join", "sql");
  if (join_span.active()) {
    join_span.Annotate("sources",
                       static_cast<int64_t>(plan.num_sources()));
    join_span.Annotate("pushed_conjuncts", plan.pushed_conjuncts);
    join_span.Annotate("equi_keys", plan.equi_conjuncts);
  }
  if (options_.metrics != nullptr) {
    options_.metrics->Inc("sql.pushdown.conjuncts", plan.pushed_conjuncts);
  }

  // Fetch each source via its planned access path.
  for (size_t i = 0; i < sources->size(); ++i) {
    auto& src = (*sources)[i];
    if (src.table == nullptr) {  // view, already materialized
      *rows_scanned += static_cast<int64_t>(src.rows.size());
      continue;
    }
    if (const PlannedProbe* probe = plan.ProbeFor(i)) {
      if (options_.metrics != nullptr) {
        options_.metrics->Inc("sql.index_probes");
      }
      MSQL_ASSIGN_OR_RETURN(std::vector<RowId> ids,
                            probe->index->LookupIds(probe->key));
      src.rows.reserve(ids.size());
      for (RowId id : ids) {
        MSQL_ASSIGN_OR_RETURN(Row row, src.table->ReadRow(id));
        src.rows.push_back(std::move(row));
      }
    } else {
      MSQL_ASSIGN_OR_RETURN(src.rows, src.table->ScanRows());
    }
    *rows_scanned += static_cast<int64_t>(src.rows.size());
  }

  // An empty raw source empties the cross product before any predicate
  // runs — short-circuit exactly like the naive odometer does, so
  // predicate errors surface (or not) identically.
  for (const auto& src : *sources) {
    if (src.rows.empty()) return std::vector<Row>{};
  }

  // Pushed filters: evaluate single-source conjuncts on the source's
  // own rows, before any join.
  for (size_t i = 0; i < sources->size(); ++i) {
    bool has_filter = false;
    for (const auto& f : plan.filters) {
      if (f.source == i) has_filter = true;
    }
    if (!has_filter) continue;
    auto& src = (*sources)[i];
    RowBinding local;
    local.AddTable(src.effective_name, src.schema);
    ExprEvaluator local_eval(
        &local, [this](const SelectStmt& sub) -> Result<Value> {
          return EvalScalarSubquery(sub);
        });
    std::vector<Row> kept;
    kept.reserve(src.rows.size());
    for (auto& row : src.rows) {
      ++*rows_evaluated;
      bool keep = true;
      for (const auto& f : plan.filters) {
        if (f.source != i) continue;
        MSQL_ASSIGN_OR_RETURN(keep,
                              local_eval.EvalPredicate(*f.conjunct, row));
        if (!keep) break;
      }
      if (keep) kept.push_back(std::move(row));
    }
    src.rows = std::move(kept);
  }

  size_t total_width = 0;
  for (size_t w : plan.source_widths) total_width += w;

  // The join pipeline. Each step widens the joined prefix by one source:
  // hash build/probe when the planner found equi-keys, nested loops
  // otherwise. Rows stay at full combined width (NULL-padded in slots
  // not yet joined) so the statement's own binding evaluates residuals.
  std::vector<JoinedRow> prefix;
  for (size_t k = 0; k < plan.steps.size() && (k == 0 || !prefix.empty());
       ++k) {
    const JoinStep& step = plan.steps[k];
    const auto& src = (*sources)[step.source];
    const size_t off = plan.source_offsets[step.source];
    if (k == 0) {
      prefix.reserve(src.rows.size());
      for (size_t r = 0; r < src.rows.size(); ++r) {
        JoinedRow j;
        j.row.assign(total_width, Value::Null_());
        std::copy(src.rows[r].begin(), src.rows[r].end(),
                  j.row.begin() + static_cast<ptrdiff_t>(off));
        j.ord.assign(sources->size(), 0);
        j.ord[step.source] = static_cast<uint32_t>(r);
        prefix.push_back(std::move(j));
      }
      continue;
    }

    // Extends prefix row `p` with source row `r`, applies the step's
    // residual conjuncts, and appends survivors to `next`.
    std::vector<JoinedRow> next;
    auto emit = [&](const JoinedRow& p, size_t r) -> Status {
      ++*rows_evaluated;
      JoinedRow j;
      j.row = p.row;
      std::copy(src.rows[r].begin(), src.rows[r].end(),
                j.row.begin() + static_cast<ptrdiff_t>(off));
      j.ord = p.ord;
      j.ord[step.source] = static_cast<uint32_t>(r);
      bool keep = true;
      for (const Expr* res : step.residual) {
        MSQL_ASSIGN_OR_RETURN(keep, evaluator.EvalPredicate(*res, j.row));
        if (!keep) break;
      }
      if (keep) next.push_back(std::move(j));
      return Status::OK();
    };

    if (!step.keys.empty()) {
      if (options_.metrics != nullptr) {
        options_.metrics->Inc("sql.join.hash");
      }
      // Build on the new source, probe with the prefix.
      std::unordered_map<Row, std::vector<uint32_t>, JoinKeyHash, JoinKeyEq>
          built;
      built.reserve(src.rows.size());
      for (size_t r = 0; r < src.rows.size(); ++r) {
        Row key;
        key.reserve(step.keys.size());
        bool null_key = false;
        for (const auto& kk : step.keys) {
          const Value& v = src.rows[r][kk.source_pos - off];
          if (v.is_null()) {
            null_key = true;
            break;
          }
          key.push_back(v);
        }
        if (null_key) continue;
        built[std::move(key)].push_back(static_cast<uint32_t>(r));
      }
      for (const auto& p : prefix) {
        Row key;
        key.reserve(step.keys.size());
        bool null_key = false;
        for (const auto& kk : step.keys) {
          const Value& v = p.row[kk.prefix_pos];
          if (v.is_null()) {
            null_key = true;
            break;
          }
          key.push_back(v);
        }
        if (null_key) continue;
        auto it = built.find(key);
        if (it == built.end()) continue;
        for (uint32_t r : it->second) {
          MSQL_RETURN_IF_ERROR(emit(p, r));
        }
      }
    } else {
      if (options_.metrics != nullptr) {
        options_.metrics->Inc("sql.join.nested_loop");
      }
      for (const auto& p : prefix) {
        for (size_t r = 0; r < src.rows.size(); ++r) {
          MSQL_RETURN_IF_ERROR(emit(p, r));
        }
      }
    }
    prefix = std::move(next);
  }

  // Restore the naive output order (FROM-major odometer order), then
  // apply the conjuncts only decidable on fully joined rows.
  std::sort(prefix.begin(), prefix.end(),
            [](const JoinedRow& a, const JoinedRow& b) {
              return a.ord < b.ord;
            });
  std::vector<Row> matched_rows;
  matched_rows.reserve(prefix.size());
  for (auto& j : prefix) {
    bool keep = true;
    for (const Expr* res : plan.final_residual) {
      MSQL_ASSIGN_OR_RETURN(keep, evaluator.EvalPredicate(*res, j.row));
      if (!keep) break;
    }
    if (keep) matched_rows.push_back(std::move(j.row));
  }
  return matched_rows;
}

Result<std::string> Executor::ExplainSelect(const SelectStmt& stmt) {
  if (stmt.from.empty()) {
    return Status::ExecutionError("SELECT without FROM is not supported");
  }
  obs::ScopedSpan plan_span(options_.tracer, "sql.plan", "sql");
  std::vector<ResolvedSource> sources;
  RowBinding binding;
  int64_t recursive_scanned = 0;
  MSQL_RETURN_IF_ERROR(
      ResolveSources(stmt, &sources, &binding, &recursive_scanned));
  std::vector<PlannerSource> planner_sources;
  planner_sources.reserve(sources.size());
  for (const auto& src : sources) {
    PlannerSource ps;
    ps.effective_name = src.effective_name;
    ps.schema = &src.schema;
    ps.row_count = src.table != nullptr ? src.table->live_row_count()
                                        : src.rows.size();
    ps.table = src.table;
    planner_sources.push_back(std::move(ps));
  }
  MSQL_ASSIGN_OR_RETURN(SelectPlan plan, PlanSelect(stmt, planner_sources));
  return plan.Explain();
}

Result<ResultSet> Executor::ExecuteInsert(const InsertStmt& stmt) {
  MSQL_RETURN_IF_ERROR(CheckQualifier(stmt.table));
  MSQL_RETURN_IF_ERROR(RejectViewTarget(stmt.table));
  MSQL_RETURN_IF_ERROR(locks_->Acquire(txn_, LockKey(stmt.table.table),
                                       LockManager::Mode::kExclusive));
  MSQL_ASSIGN_OR_RETURN(Table * table, db_->GetTable(stmt.table.table));
  const TableSchema& schema = table->schema();

  // Resolve target column positions.
  std::vector<size_t> positions;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.num_columns(); ++i) positions.push_back(i);
  } else {
    for (const auto& col : stmt.columns) {
      auto idx = schema.FindColumn(col);
      if (!idx.has_value()) {
        return Status::NotFound("column '" + col + "' not in table '" +
                                schema.table_name() + "'");
      }
      positions.push_back(*idx);
    }
  }

  // Collect the rows to insert.
  std::vector<Row> new_rows;
  if (stmt.select_source != nullptr) {
    MSQL_ASSIGN_OR_RETURN(ResultSet src, ExecuteSelect(*stmt.select_source));
    for (auto& row : src.rows) new_rows.push_back(std::move(row));
  } else {
    RowBinding empty_binding;
    ExprEvaluator evaluator(
        &empty_binding, [this](const SelectStmt& sub) -> Result<Value> {
          return EvalScalarSubquery(sub);
        });
    Row no_row;
    for (const auto& exprs : stmt.values_rows) {
      Row row;
      row.reserve(exprs.size());
      for (const auto& e : exprs) {
        MSQL_ASSIGN_OR_RETURN(Value v, evaluator.Eval(*e, no_row));
        row.push_back(std::move(v));
      }
      new_rows.push_back(std::move(row));
    }
  }

  int64_t inserted = 0;
  for (auto& provided : new_rows) {
    if (provided.size() != positions.size()) {
      return Status::InvalidArgument(
          "INSERT provides " + std::to_string(provided.size()) +
          " values for " + std::to_string(positions.size()) + " columns");
    }
    Row full(schema.num_columns(), Value::Null_());
    for (size_t i = 0; i < positions.size(); ++i) {
      full[positions[i]] = std::move(provided[i]);
    }
    MSQL_ASSIGN_OR_RETURN(RowId id, table->Insert(std::move(full)));
    UndoRecord rec;
    rec.kind = UndoRecord::Kind::kInsert;
    rec.database = db_->name();
    rec.table = schema.table_name();
    rec.row_id = id;
    txn_->RecordUndo(std::move(rec));
    ++inserted;
  }
  ResultSet out;
  out.rows_affected = inserted;
  return out;
}

Result<ResultSet> Executor::ExecuteUpdate(const UpdateStmt& stmt) {
  MSQL_RETURN_IF_ERROR(CheckQualifier(stmt.table));
  MSQL_RETURN_IF_ERROR(RejectViewTarget(stmt.table));
  MSQL_RETURN_IF_ERROR(locks_->Acquire(txn_, LockKey(stmt.table.table),
                                       LockManager::Mode::kExclusive));
  MSQL_ASSIGN_OR_RETURN(Table * table, db_->GetTable(stmt.table.table));
  const TableSchema& schema = table->schema();

  std::string effective = ToLower(stmt.table.EffectiveName());
  RowBinding binding;
  binding.AddTable(effective, schema);
  ExprEvaluator evaluator(
      &binding, [this](const SelectStmt& sub) -> Result<Value> {
        return EvalScalarSubquery(sub);
      });

  // Resolve assignment targets.
  std::vector<size_t> targets;
  for (const auto& a : stmt.assignments) {
    auto idx = schema.FindColumn(a.column);
    if (!idx.has_value()) {
      return Status::NotFound("column '" + a.column + "' not in table '" +
                              schema.table_name() + "'");
    }
    targets.push_back(*idx);
  }

  // Phase 1: collect matching rows and compute their new images against
  // the pre-update state (scalar subqueries in WHERE/SET therefore see a
  // consistent snapshot).
  struct Planned {
    RowId id;
    Row new_row;
  };
  std::vector<Planned> planned;
  for (RowId id : table->ScanRowIds()) {
    MSQL_ASSIGN_OR_RETURN(Row row, table->ReadRow(id));
    bool keep = true;
    if (stmt.where != nullptr) {
      MSQL_ASSIGN_OR_RETURN(keep, evaluator.EvalPredicate(*stmt.where, row));
    }
    if (!keep) continue;
    Row new_row = row;
    for (size_t i = 0; i < stmt.assignments.size(); ++i) {
      MSQL_ASSIGN_OR_RETURN(Value v,
                            evaluator.Eval(*stmt.assignments[i].value, row));
      new_row[targets[i]] = std::move(v);
    }
    planned.push_back(Planned{id, std::move(new_row)});
  }

  // Phase 2: apply.
  for (auto& p : planned) {
    MSQL_ASSIGN_OR_RETURN(Row before, table->Update(p.id, std::move(p.new_row)));
    UndoRecord rec;
    rec.kind = UndoRecord::Kind::kUpdate;
    rec.database = db_->name();
    rec.table = schema.table_name();
    rec.row_id = p.id;
    rec.before = std::move(before);
    txn_->RecordUndo(std::move(rec));
  }
  ResultSet out;
  out.rows_affected = static_cast<int64_t>(planned.size());
  out.rows_scanned = static_cast<int64_t>(table->ScanRowIds().size());
  return out;
}

Result<ResultSet> Executor::ExecuteDelete(const DeleteStmt& stmt) {
  MSQL_RETURN_IF_ERROR(CheckQualifier(stmt.table));
  MSQL_RETURN_IF_ERROR(RejectViewTarget(stmt.table));
  MSQL_RETURN_IF_ERROR(locks_->Acquire(txn_, LockKey(stmt.table.table),
                                       LockManager::Mode::kExclusive));
  MSQL_ASSIGN_OR_RETURN(Table * table, db_->GetTable(stmt.table.table));
  const TableSchema& schema = table->schema();

  std::string effective = ToLower(stmt.table.EffectiveName());
  RowBinding binding;
  binding.AddTable(effective, schema);
  ExprEvaluator evaluator(
      &binding, [this](const SelectStmt& sub) -> Result<Value> {
        return EvalScalarSubquery(sub);
      });

  std::vector<RowId> victims;
  for (RowId id : table->ScanRowIds()) {
    MSQL_ASSIGN_OR_RETURN(Row row, table->ReadRow(id));
    bool keep = true;
    if (stmt.where != nullptr) {
      MSQL_ASSIGN_OR_RETURN(keep, evaluator.EvalPredicate(*stmt.where, row));
    }
    if (keep) victims.push_back(id);
  }
  for (RowId id : victims) {
    MSQL_ASSIGN_OR_RETURN(Row before, table->Delete(id));
    UndoRecord rec;
    rec.kind = UndoRecord::Kind::kDelete;
    rec.database = db_->name();
    rec.table = schema.table_name();
    rec.row_id = id;
    rec.before = std::move(before);
    txn_->RecordUndo(std::move(rec));
  }
  ResultSet out;
  out.rows_affected = static_cast<int64_t>(victims.size());
  out.rows_scanned = static_cast<int64_t>(table->ScanRowIds().size());
  return out;
}

Result<ResultSet> Executor::ExecuteCreateTable(const CreateTableStmt& stmt) {
  MSQL_RETURN_IF_ERROR(CheckQualifier(stmt.table));
  std::vector<ColumnDef> cols;
  cols.reserve(stmt.columns.size());
  for (const auto& spec : stmt.columns) {
    ColumnDef def;
    def.name = spec.name;
    MSQL_ASSIGN_OR_RETURN(def.type, TypeFromName(spec.type_name));
    def.width = spec.width;
    cols.push_back(std::move(def));
  }
  MSQL_ASSIGN_OR_RETURN(TableSchema schema,
                        TableSchema::Create(stmt.table.table, std::move(cols)));
  MSQL_RETURN_IF_ERROR(locks_->Acquire(txn_, LockKey(schema.table_name()),
                                       LockManager::Mode::kExclusive));
  MSQL_RETURN_IF_ERROR(db_->CreateTable(std::move(schema)));
  if (options_.record_ddl_undo) {
    UndoRecord rec;
    rec.kind = UndoRecord::Kind::kCreateTable;
    rec.database = db_->name();
    rec.table = ToLower(stmt.table.table);
    txn_->RecordUndo(std::move(rec));
  }
  ResultSet out;
  out.rows_affected = 0;
  return out;
}

Result<ResultSet> Executor::ExecuteDropTable(const DropTableStmt& stmt) {
  MSQL_RETURN_IF_ERROR(CheckQualifier(stmt.table));
  MSQL_RETURN_IF_ERROR(locks_->Acquire(txn_, LockKey(ToLower(stmt.table.table)),
                                       LockManager::Mode::kExclusive));
  MSQL_ASSIGN_OR_RETURN(auto dropped, db_->DropTable(stmt.table.table));
  if (options_.record_ddl_undo) {
    UndoRecord rec;
    rec.kind = UndoRecord::Kind::kDropTable;
    rec.database = db_->name();
    rec.table = dropped->schema().table_name();
    rec.dropped_table = std::move(dropped);
    txn_->RecordUndo(std::move(rec));
  }
  ResultSet out;
  out.rows_affected = 0;
  return out;
}

Result<ResultSet> Executor::ExecuteCreateView(const CreateViewStmt& stmt) {
  MSQL_RETURN_IF_ERROR(locks_->Acquire(txn_, LockKey(ToLower(stmt.name)),
                                       LockManager::Mode::kExclusive));
  // Validate the definition against the current schemas (so a broken
  // view is rejected at creation, not at first scan).
  MSQL_RETURN_IF_ERROR(
      InferSelectSchema(ToLower(stmt.name), *stmt.definition,
                        [this](std::string_view t)
                            -> Result<const TableSchema*> {
                          MSQL_ASSIGN_OR_RETURN(const Table* base,
                                                db_->GetTableConst(t));
                          return &base->schema();
                        })
          .status());
  MSQL_RETURN_IF_ERROR(
      db_->CreateView(stmt.name, stmt.definition->CloneSelect()));
  if (options_.record_ddl_undo) {
    UndoRecord rec;
    rec.kind = UndoRecord::Kind::kCreateView;
    rec.database = db_->name();
    rec.table = ToLower(stmt.name);
    txn_->RecordUndo(std::move(rec));
  }
  ResultSet out;
  out.rows_affected = 0;
  return out;
}

Result<ResultSet> Executor::ExecuteDropView(const DropViewStmt& stmt) {
  MSQL_RETURN_IF_ERROR(locks_->Acquire(txn_, LockKey(ToLower(stmt.name)),
                                       LockManager::Mode::kExclusive));
  MSQL_ASSIGN_OR_RETURN(auto dropped, db_->DropView(stmt.name));
  if (options_.record_ddl_undo) {
    UndoRecord rec;
    rec.kind = UndoRecord::Kind::kDropView;
    rec.database = db_->name();
    rec.table = ToLower(stmt.name);
    rec.dropped_view = std::move(dropped);
    txn_->RecordUndo(std::move(rec));
  }
  ResultSet out;
  out.rows_affected = 0;
  return out;
}

Result<ResultSet> Executor::ExecuteCreateIndex(const CreateIndexStmt& stmt) {
  MSQL_RETURN_IF_ERROR(CheckQualifier(stmt.table));
  MSQL_RETURN_IF_ERROR(RejectViewTarget(stmt.table));
  MSQL_RETURN_IF_ERROR(locks_->Acquire(txn_, LockKey(ToLower(stmt.table.table)),
                                       LockManager::Mode::kExclusive));
  MSQL_ASSIGN_OR_RETURN(Table * table, db_->GetTable(stmt.table.table));
  MSQL_RETURN_IF_ERROR(table->CreateIndex(stmt.name, stmt.column));
  if (options_.record_ddl_undo) {
    UndoRecord rec;
    rec.kind = UndoRecord::Kind::kCreateIndex;
    rec.database = db_->name();
    rec.table = table->schema().table_name();
    rec.index_name = ToLower(stmt.name);
    txn_->RecordUndo(std::move(rec));
  }
  ResultSet out;
  out.rows_affected = 0;
  return out;
}

Result<ResultSet> Executor::ExecuteDropIndex(const DropIndexStmt& stmt) {
  MSQL_RETURN_IF_ERROR(CheckQualifier(stmt.table));
  MSQL_RETURN_IF_ERROR(locks_->Acquire(txn_, LockKey(ToLower(stmt.table.table)),
                                       LockManager::Mode::kExclusive));
  MSQL_ASSIGN_OR_RETURN(Table * table, db_->GetTable(stmt.table.table));
  MSQL_ASSIGN_OR_RETURN(std::string column, table->DropIndex(stmt.name));
  if (options_.record_ddl_undo) {
    UndoRecord rec;
    rec.kind = UndoRecord::Kind::kDropIndex;
    rec.database = db_->name();
    rec.table = table->schema().table_name();
    rec.index_name = ToLower(stmt.name);
    rec.index_column = std::move(column);
    txn_->RecordUndo(std::move(rec));
  }
  ResultSet out;
  out.rows_affected = 0;
  return out;
}

}  // namespace msql::relational
