#ifndef MSQL_RELATIONAL_SCHEMA_INFER_H_
#define MSQL_RELATIONAL_SCHEMA_INFER_H_

#include <functional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "relational/schema.h"
#include "relational/sql/ast.h"

namespace msql::relational {

/// Resolves an effective FROM name to its schema (tables or views).
using SchemaResolver =
    std::function<Result<const TableSchema*>(std::string_view table)>;

/// Output column name of a select item (alias, column name, or the
/// lower-cased expression text) — the rule the executor labels result
/// columns with.
std::string SelectItemOutputName(const SelectItem& item);

/// Static type of `expr` when evaluated against the FROM scope described
/// by `binding_schemas` (effective name → schema). Used to derive view
/// schemas without materializing them:
///  * column refs take their column's declared type;
///  * arithmetic is INTEGER when all operands are, REAL otherwise;
///  * comparisons/logic are BOOLEAN; LIKE is BOOLEAN;
///  * COUNT/LENGTH → INTEGER, AVG/ROUND → REAL, SUM/MIN/MAX → operand
///    type, UPPER/LOWER → TEXT;
///  * scalar subqueries take their single output column's type.
Result<Type> InferExprType(const Expr& expr, const SchemaResolver& resolve,
                           const SelectStmt* scope);

/// Derives the output schema of a SELECT: one column per select item
/// ('*' expands against the resolved FROM schemas), named by
/// SelectItemOutputName and typed by InferExprType.
Result<TableSchema> InferSelectSchema(std::string_view name,
                                      const SelectStmt& select,
                                      const SchemaResolver& resolve);

}  // namespace msql::relational

#endif  // MSQL_RELATIONAL_SCHEMA_INFER_H_
