#include "relational/engine.h"

#include "common/string_util.h"
#include "relational/schema_infer.h"
#include "relational/sql/parser.h"

namespace msql::relational {

CapabilityProfile CapabilityProfile::IngresLike() {
  CapabilityProfile p;
  p.dbms_family = "ingres";
  p.supports_two_phase_commit = true;
  p.supports_multiple_databases = true;
  p.ddl_rollbackable = true;
  p.ddl_commits_prior_work = false;
  return p;
}

CapabilityProfile CapabilityProfile::OracleLike() {
  CapabilityProfile p;
  p.dbms_family = "oracle";
  p.supports_two_phase_commit = true;
  p.supports_multiple_databases = true;
  p.ddl_rollbackable = false;
  p.ddl_commits_prior_work = true;
  return p;
}

CapabilityProfile CapabilityProfile::SybaseLike() {
  CapabilityProfile p;
  p.dbms_family = "sybase";
  p.supports_two_phase_commit = false;
  p.supports_multiple_databases = false;
  p.ddl_rollbackable = false;
  p.ddl_commits_prior_work = false;
  return p;
}

LocalEngine::LocalEngine(std::string service_name, CapabilityProfile profile)
    : service_name_(ToLower(service_name)), profile_(std::move(profile)) {}

void LocalEngine::SetFailureProbability(double p, uint64_t seed) {
  failure_probability_ = p;
  failure_rng_ = Rng(seed);
}

Status LocalEngine::AttachStorage(StorageConfig config) {
  if (storage_ != nullptr) {
    return Status::InvalidArgument("service '" + service_name_ +
                                   "' already has storage attached");
  }
  if (!databases_.empty()) {
    return Status::InvalidArgument(
        "storage must be attached before any database exists on '" +
        service_name_ + "'");
  }
  auto mgr = std::make_unique<StorageManager>(std::move(config));
  MSQL_RETURN_IF_ERROR(mgr->Open());
  storage_ = std::move(mgr);
  if (metrics_ != nullptr) storage_->SetMetrics(metrics_);
  if (tracer_ != nullptr) storage_->SetTracer(tracer_);
  return Status::OK();
}

Status LocalEngine::Checkpoint(size_t max_pages) {
  if (storage_ == nullptr) {
    return Status::InvalidArgument("service '" + service_name_ +
                                   "' has no storage to checkpoint");
  }
  return storage_->Checkpoint(max_pages);
}

void LocalEngine::SimulateCrash() {
  // Process state vanishes: sessions, transactions, locks and the
  // in-memory catalog. Destroy databases before the storage crash so
  // paged index destructors still find the pool alive.
  sessions_.clear();
  LockManager::WaitPolicy policy = locks_.wait_policy();
  locks_ = LockManager();
  locks_.set_wait_policy(policy);
  databases_.clear();
  corrupted_dbs_.clear();
  fail_point_ = FailPoint::kNone;
  if (storage_ != nullptr) storage_->SimulateCrash();
}

Status LocalEngine::Recover() {
  if (storage_ == nullptr) {
    return Status::InvalidArgument("service '" + service_name_ +
                                   "' has no storage to recover from");
  }
  MSQL_ASSIGN_OR_RETURN(RecoveryReport report, storage_->Recover());

  // Rebuild the catalog. Databases stay detached from the storage
  // manager until fully rebuilt, so restoring tables/views/indexes is
  // not re-logged.
  for (auto& [db_name, info] : report.databases) {
    auto db = std::make_unique<Database>(db_name);
    for (auto& [table_name, tinfo] : info.tables) {
      MSQL_ASSIGN_OR_RETURN(
          std::unique_ptr<Table> table,
          Table::CreatePaged(std::move(tinfo.schema), tinfo.storage));
      for (const RecoveredIndexInfo& index : tinfo.indexes) {
        MSQL_RETURN_IF_ERROR(table->RestoreIndex(index.name, index.column));
      }
      MSQL_RETURN_IF_ERROR(db->RestoreTable(std::move(table)));
    }
    for (const RecoveredViewInfo& view : info.views) {
      MSQL_ASSIGN_OR_RETURN(StatementPtr stmt, ParseSql(view.sql));
      if (stmt->kind() != StatementKind::kSelect) {
        return Status::Corrupted("recovered view '" + view.name +
                                 "' does not parse as a SELECT");
      }
      std::unique_ptr<SelectStmt> select(
          static_cast<SelectStmt*>(stmt.release()));
      MSQL_RETURN_IF_ERROR(db->CreateView(view.name, std::move(select)));
    }
    db->AttachStorageManager(storage_.get());
    databases_[db_name] = std::move(db);
  }

  // Re-instate transactions that crashed prepared: their effects are
  // durable and their locks must still exclude other work until the
  // coordinator resolves them.
  for (PreparedTxnImage& img : report.prepared) {
    Session s;
    s.id = img.session_id;
    s.db_name = img.db;
    s.txn = std::make_unique<Transaction>(img.txn_id);
    for (UndoRecord& rec : img.undo) s.txn->RecordUndo(std::move(rec));
    s.txn->set_state(TxnState::kPrepared);
    s.explicit_txn = true;
    s.last_state = TxnState::kPrepared;
    for (const std::string& key : img.lock_keys) {
      MSQL_RETURN_IF_ERROR(
          locks_.Acquire(s.txn.get(), key, LockManager::Mode::kExclusive));
    }
    SessionId id = s.id;
    sessions_.emplace(id, std::move(s));
  }

  if (report.max_txn_id >= next_txn_id_) next_txn_id_ = report.max_txn_id + 1;
  if (report.max_session_id >= next_session_id_) {
    next_session_id_ = report.max_session_id + 1;
  }
  ClearCorruption();
  return Status::OK();
}

Status LocalEngine::CreateDatabase(std::string_view name) {
  std::string key = ToLower(name);
  if (databases_.count(key) > 0) {
    return Status::AlreadyExists("database '" + key +
                                 "' already exists on service '" +
                                 service_name_ + "'");
  }
  if (!profile_.supports_multiple_databases && !databases_.empty()) {
    return Status::InvalidArgument(
        "service '" + service_name_ +
        "' is NOCONNECT and already serves its single database");
  }
  auto db = std::make_unique<Database>(key);
  if (storage_ != nullptr) {
    MSQL_RETURN_IF_ERROR(storage_->OnCreateDatabase(key));
    db->AttachStorageManager(storage_.get());
  }
  databases_.emplace(key, std::move(db));
  return Status::OK();
}

Status LocalEngine::DropDatabase(std::string_view name) {
  std::string key = ToLower(name);
  if (databases_.erase(key) == 0) {
    return Status::NotFound("database '" + key + "' does not exist on '" +
                            service_name_ + "'");
  }
  if (storage_ != nullptr) {
    // After the Database (and its paged index objects) are gone, drop
    // the heap storages and log the DDL.
    MSQL_RETURN_IF_ERROR(storage_->OnDropDatabase(key));
  }
  return Status::OK();
}

bool LocalEngine::HasDatabase(std::string_view name) const {
  return databases_.count(ToLower(name)) > 0;
}

Result<Database*> LocalEngine::GetDatabase(std::string_view name) {
  auto it = databases_.find(ToLower(name));
  if (it == databases_.end()) {
    return Status::NotFound("database '" + std::string(name) +
                            "' does not exist on '" + service_name_ + "'");
  }
  return it->second.get();
}

Result<const Database*> LocalEngine::GetDatabaseConst(
    std::string_view name) const {
  auto it = databases_.find(ToLower(name));
  if (it == databases_.end()) {
    return Status::NotFound("database '" + std::string(name) +
                            "' does not exist on '" + service_name_ + "'");
  }
  return static_cast<const Database*>(it->second.get());
}

std::vector<std::string> LocalEngine::DatabaseNames() const {
  std::vector<std::string> out;
  out.reserve(databases_.size());
  for (const auto& [name, db] : databases_) out.push_back(name);
  return out;
}

Result<SessionId> LocalEngine::OpenSession(std::string_view db_name) {
  std::string key = ToLower(db_name);
  if (key.empty()) {
    if (!profile_.supports_multiple_databases && databases_.size() == 1) {
      key = databases_.begin()->first;
    } else {
      return Status::InvalidArgument(
          "a database name is required to open a session on CONNECT "
          "service '" + service_name_ + "'");
    }
  }
  if (databases_.count(key) == 0) {
    return Status::NotFound("database '" + key + "' does not exist on '" +
                            service_name_ + "'");
  }
  Session s;
  s.id = next_session_id_++;
  s.db_name = key;
  SessionId id = s.id;
  sessions_.emplace(id, std::move(s));
  return id;
}

Status LocalEngine::CloseSession(SessionId session) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Status::NotFound("no such session " + std::to_string(session));
  }
  // Abort any open transaction (a vanished client must not hold locks).
  if (it->second.txn != nullptr) {
    MSQL_RETURN_IF_ERROR(AbortTxn(&it->second));
  }
  sessions_.erase(it);
  return Status::OK();
}

Result<TableSchema> LocalEngine::DescribeView(std::string_view db_name,
                                              std::string_view view) const {
  MSQL_ASSIGN_OR_RETURN(const Database* db, GetDatabaseConst(db_name));
  MSQL_ASSIGN_OR_RETURN(const SelectStmt* definition, db->GetView(view));
  return InferSelectSchema(
      ToLower(view), *definition,
      [db](std::string_view t) -> Result<const TableSchema*> {
        MSQL_ASSIGN_OR_RETURN(const Table* base, db->GetTableConst(t));
        return &base->schema();
      });
}

Result<LocalEngine::Session*> LocalEngine::FindSession(SessionId id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("no such session " + std::to_string(id));
  }
  return &it->second;
}

Result<const LocalEngine::Session*> LocalEngine::FindSessionConst(
    SessionId id) const {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("no such session " + std::to_string(id));
  }
  return &it->second;
}

bool LocalEngine::ShouldFail(FailPoint point) {
  if (fail_point_ == point) {
    fail_point_ = FailPoint::kNone;
    ++stats_.injected_failures;
    return true;
  }
  if (failure_probability_ > 0.0 &&
      failure_rng_.NextBool(failure_probability_)) {
    ++stats_.injected_failures;
    return true;
  }
  return false;
}

Status LocalEngine::AbortTxn(Session* session) {
  Transaction* txn = session->txn.get();
  // kNextUndo is consumed directly (not via ShouldFail) so it never
  // perturbs the probabilistic failure stream seeded chaos tests pin.
  size_t fail_after = SIZE_MAX;
  if (fail_point_ == FailPoint::kNextUndo) {
    fail_point_ = FailPoint::kNone;
    ++stats_.injected_failures;
    fail_after = txn->undo_log_size() / 2;
  }
  const TxnId txn_id = txn->id();
  // Undo applied against paged tables must be logged as compensation
  // (transaction 0), not as new work of the dying transaction.
  if (storage_ != nullptr) storage_->SetUndoMode(true, txn_id);
  Status undo = txn->ApplyUndo(databases_, fail_after);
  if (storage_ != nullptr) {
    storage_->SetUndoMode(false);
    if (undo.ok()) {
      // Logs ABORT after the compensations, flushes and releases the
      // no-steal holds. A failure here is a durability failure: treat
      // it like a failed undo (the poison path below).
      undo = storage_->OnAbort(txn_id);
    }
    // On a failed undo the transaction stays unresolved in the WAL —
    // recovery discards it wholesale, completing the rollback.
  }
  locks_.ReleaseAll(txn);
  txn->set_state(TxnState::kAborted);
  session->last_state = TxnState::kAborted;
  session->txn.reset();
  session->explicit_txn = false;
  ++stats_.rollbacks;
  if (!undo.ok()) {
    // The database now holds a mix of done and undone effects of this
    // transaction. Poison it: every later statement refuses cleanly
    // instead of reading half-rolled-back rows.
    std::string diag = "rollback of transaction " + std::to_string(txn_id) +
                       " failed mid-undo (" + undo.message() + ")";
    corrupted_dbs_[session->db_name] = diag;
    return Status::Corrupted("database '" + session->db_name + "' on '" +
                             service_name_ + "': " + diag);
  }
  return undo;
}

Status LocalEngine::CommitTxn(Session* session) {
  Transaction* txn = session->txn.get();
  if (storage_ != nullptr) {
    // COMMIT record + WAL flush before any lock is released; read-only
    // transactions never logged BEGIN and skip the WAL entirely.
    MSQL_RETURN_IF_ERROR(storage_->OnCommit(txn->id()));
  }
  txn->DiscardUndo();
  locks_.ReleaseAll(txn);
  txn->set_state(TxnState::kCommitted);
  session->last_state = TxnState::kCommitted;
  session->txn.reset();
  session->explicit_txn = false;
  ++stats_.commits;
  return Status::OK();
}

Status LocalEngine::Begin(SessionId session_id) {
  MSQL_ASSIGN_OR_RETURN(Session * session, FindSession(session_id));
  if (session->txn != nullptr) {
    return Status::TransactionError("transaction already open on session " +
                                    std::to_string(session_id));
  }
  session->txn = std::make_unique<Transaction>(next_txn_id_++);
  session->explicit_txn = true;
  session->last_state = TxnState::kActive;
  return Status::OK();
}

Status LocalEngine::Prepare(SessionId session_id) {
  MSQL_ASSIGN_OR_RETURN(Session * session, FindSession(session_id));
  if (!profile_.supports_two_phase_commit) {
    return Status::TransactionError(
        "service '" + service_name_ +
        "' runs in automatic-commit mode and has no prepared-to-commit "
        "state");
  }
  if (session->txn == nullptr ||
      session->txn->state() != TxnState::kActive) {
    return Status::TransactionError(
        "PREPARE requires an active transaction");
  }
  if (ShouldFail(FailPoint::kNextPrepare)) {
    Status undo = AbortTxn(session);
    if (!undo.ok()) return undo;
    return Status::Aborted("injected failure at prepare on '" +
                           service_name_ + "'");
  }
  if (storage_ != nullptr) {
    // PREPARE must be durable before the promise is made; on failure
    // the transaction simply stays active.
    MSQL_RETURN_IF_ERROR(storage_->OnPrepare(session->txn->id(),
                                             session->id, session->db_name));
  }
  session->txn->set_state(TxnState::kPrepared);
  session->last_state = TxnState::kPrepared;
  ++stats_.prepares;
  return Status::OK();
}

Status LocalEngine::Commit(SessionId session_id) {
  MSQL_ASSIGN_OR_RETURN(Session * session, FindSession(session_id));
  if (session->txn == nullptr) {
    return Status::TransactionError("COMMIT without an open transaction");
  }
  if (ShouldFail(FailPoint::kNextCommit)) {
    Status undo = AbortTxn(session);
    if (!undo.ok()) return undo;
    return Status::Aborted("injected failure at commit on '" +
                           service_name_ + "'");
  }
  return CommitTxn(session);
}

Status LocalEngine::Rollback(SessionId session_id) {
  MSQL_ASSIGN_OR_RETURN(Session * session, FindSession(session_id));
  if (session->txn == nullptr) {
    return Status::TransactionError("ROLLBACK without an open transaction");
  }
  return AbortTxn(session);
}

Result<TxnState> LocalEngine::GetTxnState(SessionId session_id) const {
  MSQL_ASSIGN_OR_RETURN(const Session* session,
                        FindSessionConst(session_id));
  if (session->txn != nullptr) return session->txn->state();
  return session->last_state;
}

Result<bool> LocalEngine::InTransaction(SessionId session_id) const {
  MSQL_ASSIGN_OR_RETURN(const Session* session,
                        FindSessionConst(session_id));
  return session->txn != nullptr;
}

bool LocalEngine::IsCorrupted(std::string_view db_name) const {
  return corrupted_dbs_.count(ToLower(db_name)) > 0;
}

std::vector<std::string> LocalEngine::CorruptedDatabases() const {
  std::vector<std::string> out;
  out.reserve(corrupted_dbs_.size());
  for (const auto& [name, diag] : corrupted_dbs_) out.push_back(name);
  return out;
}

std::vector<SessionId> LocalEngine::BlockingSessions() const {
  std::vector<SessionId> out;
  for (TxnId blocker : locks_.last_conflict()) {
    for (const auto& [id, session] : sessions_) {
      if (session.txn != nullptr && session.txn->id() == blocker) {
        out.push_back(id);
        break;
      }
    }
  }
  return out;
}

Result<ResultSet> LocalEngine::Execute(SessionId session,
                                       std::string_view sql) {
  MSQL_ASSIGN_OR_RETURN(StatementPtr stmt, ParseSql(sql));
  return ExecuteStatement(session, *stmt);
}

Result<ResultSet> LocalEngine::ExecuteStatement(SessionId session_id,
                                                const Statement& stmt) {
  MSQL_ASSIGN_OR_RETURN(Session * session, FindSession(session_id));
  // A half-rolled-back database serves nothing until repaired: neither
  // reads (inconsistent rows) nor writes (compounding the damage).
  if (auto it = corrupted_dbs_.find(session->db_name);
      it != corrupted_dbs_.end()) {
    return Status::Corrupted("database '" + session->db_name + "' on '" +
                             service_name_ +
                             "' requires recovery: " + it->second);
  }
  switch (stmt.kind()) {
    case StatementKind::kBegin: {
      MSQL_RETURN_IF_ERROR(Begin(session_id));
      return ResultSet{};
    }
    case StatementKind::kCommit: {
      MSQL_RETURN_IF_ERROR(Commit(session_id));
      return ResultSet{};
    }
    case StatementKind::kRollback: {
      MSQL_RETURN_IF_ERROR(Rollback(session_id));
      return ResultSet{};
    }
    case StatementKind::kPrepare: {
      MSQL_RETURN_IF_ERROR(Prepare(session_id));
      return ResultSet{};
    }
    case StatementKind::kCreateDatabase: {
      const auto& cd = static_cast<const CreateDatabaseStmt&>(stmt);
      MSQL_RETURN_IF_ERROR(CreateDatabase(cd.name));
      return ResultSet{};
    }
    case StatementKind::kDropDatabase: {
      const auto& dd = static_cast<const DropDatabaseStmt&>(stmt);
      MSQL_RETURN_IF_ERROR(DropDatabase(dd.name));
      return ResultSet{};
    }
    default:
      break;
  }

  // A statement against a prepared (or otherwise non-active) transaction
  // is a protocol violation: refuse it without touching the transaction,
  // which keeps its prepared-to-commit promise intact.
  if (session->txn != nullptr &&
      session->txn->state() != TxnState::kActive) {
    return Status::TransactionError(
        "statement issued against a transaction in state " +
        std::string(TxnStateName(session->txn->state())));
  }

  // Injected statement failure: abort like a local conflict would.
  if (ShouldFail(FailPoint::kNextStatement)) {
    if (session->txn != nullptr) {
      MSQL_RETURN_IF_ERROR(AbortTxn(session));
    }
    return Status::Aborted("injected statement failure on '" +
                           service_name_ + "'");
  }

  bool is_ddl = stmt.kind() == StatementKind::kCreateTable ||
                stmt.kind() == StatementKind::kDropTable ||
                stmt.kind() == StatementKind::kCreateView ||
                stmt.kind() == StatementKind::kDropView ||
                stmt.kind() == StatementKind::kCreateIndex ||
                stmt.kind() == StatementKind::kDropIndex;

  // Oracle-like DDL: commit all prior uncommitted work first; the DDL
  // itself then runs in its own immediately-committed transaction.
  if (is_ddl && profile_.ddl_commits_prior_work &&
      session->txn != nullptr) {
    MSQL_RETURN_IF_ERROR(CommitTxn(session));
    // Session stays "in" the explicit transaction from the client's
    // point of view; a fresh local transaction opens for later work.
    MSQL_RETURN_IF_ERROR(Begin(session_id));
    MSQL_ASSIGN_OR_RETURN(session, FindSession(session_id));
  }

  bool autocommit = session->txn == nullptr;
  if (autocommit) {
    session->txn = std::make_unique<Transaction>(next_txn_id_++);
    session->explicit_txn = false;
    session->last_state = TxnState::kActive;
  }

  MSQL_ASSIGN_OR_RETURN(auto result, ExecuteInTxn(session, stmt));

  // DDL that cannot be rolled back commits immediately even inside an
  // explicit transaction on Oracle-like engines. The commit decision
  // keys off explicit_txn rather than the autocommit flag above: a
  // statement that parked on a busy lock left its implicit transaction
  // open, and its retry must still commit it even though the retry saw
  // session->txn != nullptr at entry.
  bool force_commit_now =
      is_ddl && profile_.ddl_commits_prior_work && session->explicit_txn;
  if (!session->explicit_txn || force_commit_now) {
    MSQL_RETURN_IF_ERROR(CommitTxn(session));
    if (force_commit_now) {
      MSQL_RETURN_IF_ERROR(Begin(session_id));
    }
  }
  return result;
}

Result<std::string> LocalEngine::ExplainSql(SessionId session_id,
                                            std::string_view sql) {
  MSQL_ASSIGN_OR_RETURN(Session * session, FindSession(session_id));
  MSQL_ASSIGN_OR_RETURN(StatementPtr stmt, ParseSql(sql));
  if (stmt->kind() != StatementKind::kSelect) {
    return Status::InvalidArgument("EXPLAIN requires a SELECT statement");
  }
  const auto& select = static_cast<const SelectStmt&>(*stmt);
  MSQL_ASSIGN_OR_RETURN(Database * db, GetDatabase(session->db_name));
  ExecutorOptions options;
  options.record_ddl_undo = profile_.ddl_rollbackable;
  options.use_planner = use_planner_;
  options.tracer = tracer_;
  options.metrics = metrics_;
  if (session->txn != nullptr) {
    if (session->txn->state() != TxnState::kActive) {
      return Status::TransactionError(
          "EXPLAIN issued against a transaction in state " +
          std::string(TxnStateName(session->txn->state())));
    }
    Executor executor(db, session->txn.get(), &locks_, options);
    return executor.ExplainSelect(select);
  }
  // No open transaction: plan under a short-lived read transaction
  // (view materialization still takes and releases shared locks).
  Transaction txn(next_txn_id_++);
  Executor executor(db, &txn, &locks_, options);
  Result<std::string> text = executor.ExplainSelect(select);
  locks_.ReleaseAll(&txn);
  return text;
}

Result<ResultSet> LocalEngine::ExecuteInTxn(Session* session,
                                            const Statement& stmt) {
  MSQL_ASSIGN_OR_RETURN(Database * db, GetDatabase(session->db_name));
  ExecutorOptions options;
  options.record_ddl_undo = profile_.ddl_rollbackable;
  options.use_planner = use_planner_;
  options.collect_plan_text = collect_plan_text_;
  options.tracer = tracer_;
  options.metrics = metrics_;
  Executor executor(db, session->txn.get(), &locks_, options);
  if (storage_ != nullptr) {
    storage_->SetCurrentTxn(session->txn->id(), session->id,
                            session->db_name);
  }
  auto result = executor.Execute(stmt);
  if (storage_ != nullptr) storage_->ClearCurrentTxn();
  ++stats_.statements_executed;
  if (!result.ok()) {
    // A would-block verdict is not a failure: the transaction stays
    // open (holding the locks it already has — hold-and-wait is what
    // makes deadlock real) and the whole statement is retried from
    // scratch once a blocker releases. Safe because the executor takes
    // every lock before its first mutation.
    if (result.status().code() == StatusCode::kBusy) {
      return result.status();
    }
    // Any other failure aborts the enclosing local transaction.
    Status undo = AbortTxn(session);
    if (!undo.ok()) return undo;
    return result.status();
  }
  if (result->IsQueryResult()) {
    stats_.rows_read += static_cast<int64_t>(result->rows.size());
  } else {
    stats_.rows_written += result->rows_affected;
  }
  return result;
}

}  // namespace msql::relational
