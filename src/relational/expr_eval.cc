#include "relational/expr_eval.h"

#include <cmath>

#include "common/string_util.h"

namespace msql::relational {

void RowBinding::AddTable(const std::string& table_name,
                          const TableSchema& schema) {
  for (const auto& col : schema.columns()) {
    entries_.push_back(Entry{table_name, col.name});
  }
}

void RowBinding::AddColumn(const std::string& table_name,
                           const std::string& column_name) {
  entries_.push_back(Entry{table_name, column_name});
}

Result<size_t> RowBinding::Resolve(std::string_view qualifier,
                                   std::string_view name) const {
  size_t found = entries_.size();
  bool ambiguous = false;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (!EqualsIgnoreCase(entries_[i].column, name)) continue;
    if (!qualifier.empty() &&
        !EqualsIgnoreCase(entries_[i].table, qualifier)) {
      continue;
    }
    if (found != entries_.size()) {
      ambiguous = true;
      break;
    }
    found = i;
  }
  if (ambiguous) {
    return Status::InvalidArgument("ambiguous column reference '" +
                                   std::string(name) + "'");
  }
  if (found == entries_.size()) {
    std::string full = qualifier.empty()
                           ? std::string(name)
                           : std::string(qualifier) + "." + std::string(name);
    return Status::NotFound("unknown column '" + full + "'");
  }
  return found;
}

bool RowBinding::CanResolve(std::string_view qualifier,
                            std::string_view name) const {
  for (const auto& entry : entries_) {
    if (EqualsIgnoreCase(entry.column, name) &&
        (qualifier.empty() || EqualsIgnoreCase(entry.table, qualifier))) {
      return true;
    }
  }
  return false;
}

std::string RowBinding::DescribeEntry(size_t i) const {
  return entries_[i].table + "." + entries_[i].column;
}

bool ExprEvaluator::LikeMatch(std::string_view pattern,
                              std::string_view text) {
  size_t p = 0, t = 0;
  size_t star = std::string_view::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '%' || pattern[p] == '_' || pattern[p] == text[t])) {
      if (pattern[p] == '%') {
        star = p;
        star_t = t;
        ++p;
      } else {
        ++p;
        ++t;
      }
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Value> ExprEvaluator::Eval(const Expr& e, const Row& row) const {
  switch (e.kind()) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(e).value();
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(e);
      MSQL_ASSIGN_OR_RETURN(size_t idx,
                            binding_->Resolve(ref.qualifier(), ref.name()));
      if (idx >= row.size()) {
        return Status::Internal("row binding index out of range for " +
                                ref.FullName());
      }
      return row[idx];
    }
    case ExprKind::kUnary:
      return EvalUnary(static_cast<const UnaryExpr&>(e), row);
    case ExprKind::kBinary:
      return EvalBinary(static_cast<const BinaryExpr&>(e), row);
    case ExprKind::kFunctionCall:
      return EvalFunction(static_cast<const FunctionCallExpr&>(e), row);
    case ExprKind::kScalarSubquery: {
      if (!subquery_fn_) {
        return Status::ExecutionError(
            "scalar subquery not supported in this context");
      }
      return subquery_fn_(
          static_cast<const ScalarSubqueryExpr&>(e).select());
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(e);
      MSQL_ASSIGN_OR_RETURN(Value operand, Eval(in.operand(), row));
      if (operand.is_null()) return Value::Null_();
      bool saw_null = false;
      for (const auto& item : in.list()) {
        MSQL_ASSIGN_OR_RETURN(Value v, Eval(*item, row));
        if (v.is_null()) {
          saw_null = true;
          continue;
        }
        MSQL_ASSIGN_OR_RETURN(Value eq,
                              EvalComparison(BinaryOp::kEq, operand, v));
        if (eq.is_boolean() && eq.AsBoolean()) {
          return Value::Boolean(!in.negated());
        }
      }
      if (saw_null) return Value::Null_();  // SQL: unknown membership
      return Value::Boolean(in.negated());
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const BetweenExpr&>(e);
      MSQL_ASSIGN_OR_RETURN(Value v, Eval(bt.operand(), row));
      MSQL_ASSIGN_OR_RETURN(Value lo, Eval(bt.lo(), row));
      MSQL_ASSIGN_OR_RETURN(Value hi, Eval(bt.hi(), row));
      if (v.is_null() || lo.is_null() || hi.is_null()) return Value::Null_();
      MSQL_ASSIGN_OR_RETURN(Value ge, EvalComparison(BinaryOp::kGe, v, lo));
      MSQL_ASSIGN_OR_RETURN(Value le, EvalComparison(BinaryOp::kLe, v, hi));
      bool inside = ge.is_boolean() && ge.AsBoolean() && le.is_boolean() &&
                    le.AsBoolean();
      return Value::Boolean(bt.negated() ? !inside : inside);
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> ExprEvaluator::EvalPredicate(const Expr& e,
                                          const Row& row) const {
  MSQL_ASSIGN_OR_RETURN(Value v, Eval(e, row));
  if (v.is_null()) return false;
  if (!v.is_boolean()) {
    return Status::ExecutionError("predicate does not evaluate to BOOLEAN: " +
                                  e.ToSql());
  }
  return v.AsBoolean();
}

Result<Value> ExprEvaluator::EvalUnary(const UnaryExpr& e,
                                       const Row& row) const {
  switch (e.op()) {
    case UnaryOp::kIsNull: {
      MSQL_ASSIGN_OR_RETURN(Value v, Eval(e.operand(), row));
      return Value::Boolean(v.is_null());
    }
    case UnaryOp::kIsNotNull: {
      MSQL_ASSIGN_OR_RETURN(Value v, Eval(e.operand(), row));
      return Value::Boolean(!v.is_null());
    }
    case UnaryOp::kNot: {
      MSQL_ASSIGN_OR_RETURN(Value v, Eval(e.operand(), row));
      if (v.is_null()) return Value::Null_();
      if (!v.is_boolean()) {
        return Status::ExecutionError("NOT applied to non-boolean");
      }
      return Value::Boolean(!v.AsBoolean());
    }
    case UnaryOp::kNegate: {
      MSQL_ASSIGN_OR_RETURN(Value v, Eval(e.operand(), row));
      if (v.is_null()) return Value::Null_();
      if (v.is_integer()) return Value::Integer(-v.AsInteger());
      if (v.is_real()) return Value::Real(-v.AsReal());
      return Status::ExecutionError("unary minus applied to non-numeric");
    }
  }
  return Status::Internal("unhandled unary op");
}

Result<Value> ExprEvaluator::EvalBinary(const BinaryExpr& e,
                                        const Row& row) const {
  // AND/OR implement SQL three-valued logic with short-circuit where the
  // outcome is already determined.
  if (e.op() == BinaryOp::kAnd || e.op() == BinaryOp::kOr) {
    MSQL_ASSIGN_OR_RETURN(Value left, Eval(e.left(), row));
    bool is_and = e.op() == BinaryOp::kAnd;
    if (left.is_boolean()) {
      if (is_and && !left.AsBoolean()) return Value::Boolean(false);
      if (!is_and && left.AsBoolean()) return Value::Boolean(true);
    } else if (!left.is_null()) {
      return Status::ExecutionError("AND/OR applied to non-boolean");
    }
    MSQL_ASSIGN_OR_RETURN(Value right, Eval(e.right(), row));
    if (right.is_boolean()) {
      if (is_and && !right.AsBoolean()) return Value::Boolean(false);
      if (!is_and && right.AsBoolean()) return Value::Boolean(true);
    } else if (!right.is_null()) {
      return Status::ExecutionError("AND/OR applied to non-boolean");
    }
    if (left.is_null() || right.is_null()) return Value::Null_();
    return Value::Boolean(is_and);  // TRUE AND TRUE / FALSE OR FALSE
  }
  MSQL_ASSIGN_OR_RETURN(Value left, Eval(e.left(), row));
  MSQL_ASSIGN_OR_RETURN(Value right, Eval(e.right(), row));
  switch (e.op()) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return EvalComparison(e.op(), left, right);
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
      return EvalArithmetic(e.op(), left, right);
    case BinaryOp::kLike: {
      if (left.is_null() || right.is_null()) return Value::Null_();
      if (!left.is_text() || !right.is_text()) {
        return Status::ExecutionError("LIKE requires text operands");
      }
      return Value::Boolean(LikeMatch(right.AsText(), left.AsText()));
    }
    default:
      return Status::Internal("unhandled binary op");
  }
}

Result<Value> ExprEvaluator::EvalComparison(BinaryOp op, const Value& left,
                                            const Value& right) const {
  if (left.is_null() || right.is_null()) return Value::Null_();
  bool comparable =
      (left.is_numeric() && right.is_numeric()) ||
      (left.is_text() && right.is_text()) ||
      (left.is_boolean() && right.is_boolean());
  if (!comparable) {
    return Status::ExecutionError(
        std::string("cannot compare ") + std::string(TypeName(left.type())) +
        " with " + std::string(TypeName(right.type())));
  }
  int c = left.Compare(right);
  switch (op) {
    case BinaryOp::kEq: return Value::Boolean(c == 0);
    case BinaryOp::kNe: return Value::Boolean(c != 0);
    case BinaryOp::kLt: return Value::Boolean(c < 0);
    case BinaryOp::kLe: return Value::Boolean(c <= 0);
    case BinaryOp::kGt: return Value::Boolean(c > 0);
    case BinaryOp::kGe: return Value::Boolean(c >= 0);
    default:
      return Status::Internal("not a comparison op");
  }
}

Result<Value> ExprEvaluator::EvalArithmetic(BinaryOp op, const Value& left,
                                            const Value& right) const {
  if (left.is_null() || right.is_null()) return Value::Null_();
  if (!left.is_numeric() || !right.is_numeric()) {
    return Status::ExecutionError("arithmetic requires numeric operands");
  }
  bool both_int = left.is_integer() && right.is_integer();
  if (both_int) {
    int64_t a = left.AsInteger();
    int64_t b = right.AsInteger();
    switch (op) {
      case BinaryOp::kAdd: return Value::Integer(a + b);
      case BinaryOp::kSub: return Value::Integer(a - b);
      case BinaryOp::kMul: return Value::Integer(a * b);
      case BinaryOp::kDiv:
        if (b == 0) return Status::ExecutionError("division by zero");
        return Value::Integer(a / b);
      default:
        return Status::Internal("not an arithmetic op");
    }
  }
  double a = left.NumericAsReal();
  double b = right.NumericAsReal();
  switch (op) {
    case BinaryOp::kAdd: return Value::Real(a + b);
    case BinaryOp::kSub: return Value::Real(a - b);
    case BinaryOp::kMul: return Value::Real(a * b);
    case BinaryOp::kDiv:
      if (b == 0.0) return Status::ExecutionError("division by zero");
      return Value::Real(a / b);
    default:
      return Status::Internal("not an arithmetic op");
  }
}

Result<Value> ExprEvaluator::EvalFunction(const FunctionCallExpr& e,
                                          const Row& row) const {
  const std::string& name = e.name();
  if (FunctionCallExpr::IsAggregateName(name)) {
    if (aggregate_values_ != nullptr) {
      auto it = aggregate_values_->find(&e);
      if (it != aggregate_values_->end()) return it->second;
    }
    return Status::ExecutionError("aggregate " + name +
                                  " used outside aggregating context");
  }
  // Scalar functions.
  std::vector<Value> args;
  args.reserve(e.args().size());
  for (const auto& a : e.args()) {
    MSQL_ASSIGN_OR_RETURN(Value v, Eval(*a, row));
    args.push_back(std::move(v));
  }
  auto need_args = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::ExecutionError(name + " expects " + std::to_string(n) +
                                    " argument(s)");
    }
    return Status::OK();
  };
  if (name == "UPPER" || name == "LOWER") {
    MSQL_RETURN_IF_ERROR(need_args(1));
    if (args[0].is_null()) return Value::Null_();
    if (!args[0].is_text()) {
      return Status::ExecutionError(name + " requires a text argument");
    }
    return Value::Text(name == "UPPER" ? ToUpper(args[0].AsText())
                                       : ToLower(args[0].AsText()));
  }
  if (name == "LENGTH") {
    MSQL_RETURN_IF_ERROR(need_args(1));
    if (args[0].is_null()) return Value::Null_();
    if (!args[0].is_text()) {
      return Status::ExecutionError("LENGTH requires a text argument");
    }
    return Value::Integer(static_cast<int64_t>(args[0].AsText().size()));
  }
  if (name == "ABS") {
    MSQL_RETURN_IF_ERROR(need_args(1));
    if (args[0].is_null()) return Value::Null_();
    if (args[0].is_integer()) {
      return Value::Integer(std::abs(args[0].AsInteger()));
    }
    if (args[0].is_real()) return Value::Real(std::fabs(args[0].AsReal()));
    return Status::ExecutionError("ABS requires a numeric argument");
  }
  if (name == "ROUND") {
    if (args.size() == 1) {
      if (args[0].is_null()) return Value::Null_();
      if (!args[0].is_numeric()) {
        return Status::ExecutionError("ROUND requires a numeric argument");
      }
      return Value::Real(std::round(args[0].NumericAsReal()));
    }
    MSQL_RETURN_IF_ERROR(need_args(2));
    if (args[0].is_null() || args[1].is_null()) return Value::Null_();
    if (!args[0].is_numeric() || !args[1].is_integer()) {
      return Status::ExecutionError("ROUND requires (numeric, integer)");
    }
    double scale = std::pow(10.0, static_cast<double>(args[1].AsInteger()));
    return Value::Real(std::round(args[0].NumericAsReal() * scale) /
                       scale);
  }
  return Status::ExecutionError("unknown function " + name);
}

bool ContainsAggregate(const Expr& e) {
  std::vector<const FunctionCallExpr*> aggs;
  CollectAggregates(e, &aggs);
  return !aggs.empty();
}

void CollectAggregates(const Expr& e,
                       std::vector<const FunctionCallExpr*>* out) {
  switch (e.kind()) {
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
      return;
    case ExprKind::kUnary:
      CollectAggregates(static_cast<const UnaryExpr&>(e).operand(), out);
      return;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      CollectAggregates(b.left(), out);
      CollectAggregates(b.right(), out);
      return;
    }
    case ExprKind::kFunctionCall: {
      const auto& f = static_cast<const FunctionCallExpr&>(e);
      if (FunctionCallExpr::IsAggregateName(f.name())) {
        out->push_back(&f);
        return;  // aggregates do not nest
      }
      for (const auto& a : f.args()) CollectAggregates(*a, out);
      return;
    }
    case ExprKind::kScalarSubquery:
      return;  // inner query aggregates are its own business
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(e);
      CollectAggregates(in.operand(), out);
      for (const auto& item : in.list()) CollectAggregates(*item, out);
      return;
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const BetweenExpr&>(e);
      CollectAggregates(bt.operand(), out);
      CollectAggregates(bt.lo(), out);
      CollectAggregates(bt.hi(), out);
      return;
    }
  }
}

}  // namespace msql::relational
