#ifndef MSQL_RELATIONAL_EXPR_EVAL_H_
#define MSQL_RELATIONAL_EXPR_EVAL_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relational/sql/ast.h"
#include "relational/table.h"

namespace msql::relational {

/// Name→position binding for expression evaluation over a (possibly
/// joined) row. Each entry maps an effective table name (alias if given)
/// and a column name to an index in the combined row.
class RowBinding {
 public:
  /// Appends all columns of `schema` under the effective table name
  /// `table_name` (already lower-cased by the caller).
  void AddTable(const std::string& table_name, const TableSchema& schema);

  /// Appends one synthetic column (used for output-alias visibility in
  /// ORDER BY/HAVING).
  void AddColumn(const std::string& table_name,
                 const std::string& column_name);

  /// Resolves `qualifier.name` (qualifier may be empty) to a row index.
  /// Unqualified names matching columns of several tables are ambiguous.
  Result<size_t> Resolve(std::string_view qualifier,
                         std::string_view name) const;

  /// True if the name resolves (unambiguously or not).
  bool CanResolve(std::string_view qualifier, std::string_view name) const;

  size_t size() const { return entries_.size(); }

  /// Entry i as "table.column".
  std::string DescribeEntry(size_t i) const;

 private:
  struct Entry {
    std::string table;
    std::string column;
  };
  std::vector<Entry> entries_;
};

/// Evaluates SQL expressions against bound rows.
///
/// Aggregate FunctionCall nodes are *not* computed here — the executor
/// precomputes them per group and supplies their values keyed by node
/// address via `aggregate_values`. A callback evaluates scalar
/// subqueries (the executor closes over the database and transaction).
class ExprEvaluator {
 public:
  using SubqueryFn = std::function<Result<Value>(const SelectStmt&)>;

  ExprEvaluator(const RowBinding* binding, SubqueryFn subquery_fn)
      : binding_(binding), subquery_fn_(std::move(subquery_fn)) {}

  /// Supplies precomputed aggregate values (per current group).
  void set_aggregate_values(const std::map<const Expr*, Value>* values) {
    aggregate_values_ = values;
  }

  /// Evaluates `e` against `row`.
  Result<Value> Eval(const Expr& e, const Row& row) const;

  /// Evaluates `e` and collapses three-valued logic at a filter point:
  /// returns true iff the result is boolean TRUE (NULL and FALSE filter
  /// the row out, as SQL prescribes).
  Result<bool> EvalPredicate(const Expr& e, const Row& row) const;

  /// SQL LIKE with '%' (any run) and '_' (any single char), matching
  /// case-sensitively as standard SQL does.
  static bool LikeMatch(std::string_view pattern, std::string_view text);

 private:
  Result<Value> EvalUnary(const UnaryExpr& e, const Row& row) const;
  Result<Value> EvalBinary(const BinaryExpr& e, const Row& row) const;
  Result<Value> EvalFunction(const FunctionCallExpr& e,
                             const Row& row) const;
  Result<Value> EvalComparison(BinaryOp op, const Value& left,
                               const Value& right) const;
  Result<Value> EvalArithmetic(BinaryOp op, const Value& left,
                               const Value& right) const;

  const RowBinding* binding_;
  SubqueryFn subquery_fn_;
  const std::map<const Expr*, Value>* aggregate_values_ = nullptr;
};

/// True if the expression tree contains an aggregate function call.
bool ContainsAggregate(const Expr& e);

/// Collects pointers to all aggregate FunctionCall nodes in `e`.
void CollectAggregates(const Expr& e, std::vector<const FunctionCallExpr*>* out);

}  // namespace msql::relational

#endif  // MSQL_RELATIONAL_EXPR_EVAL_H_
