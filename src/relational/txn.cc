#include "relational/txn.h"

namespace msql::relational {

std::string_view TxnStateName(TxnState state) {
  switch (state) {
    case TxnState::kActive: return "ACTIVE";
    case TxnState::kPrepared: return "PREPARED";
    case TxnState::kCommitted: return "COMMITTED";
    case TxnState::kAborted: return "ABORTED";
  }
  return "UNKNOWN";
}

Status Transaction::ApplyUndo(
    const std::map<std::string, std::unique_ptr<Database>>& databases) {
  for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it) {
    UndoRecord& rec = *it;
    auto db_it = databases.find(rec.database);
    if (db_it == databases.end()) {
      return Status::Internal("undo references unknown database '" +
                              rec.database + "'");
    }
    Database* db = db_it->second.get();
    switch (rec.kind) {
      case UndoRecord::Kind::kInsert: {
        MSQL_ASSIGN_OR_RETURN(Table * table, db->GetTable(rec.table));
        MSQL_ASSIGN_OR_RETURN(Row removed, table->Delete(rec.row_id));
        (void)removed;
        break;
      }
      case UndoRecord::Kind::kDelete: {
        MSQL_ASSIGN_OR_RETURN(Table * table, db->GetTable(rec.table));
        MSQL_RETURN_IF_ERROR(
            table->ResurrectRow(rec.row_id, std::move(rec.before)));
        break;
      }
      case UndoRecord::Kind::kUpdate: {
        MSQL_ASSIGN_OR_RETURN(Table * table, db->GetTable(rec.table));
        MSQL_ASSIGN_OR_RETURN(Row overwritten,
                              table->Update(rec.row_id, std::move(rec.before)));
        (void)overwritten;
        break;
      }
      case UndoRecord::Kind::kCreateTable: {
        MSQL_ASSIGN_OR_RETURN(auto dropped, db->DropTable(rec.table));
        (void)dropped;  // discard: the table was created by this txn
        break;
      }
      case UndoRecord::Kind::kDropTable: {
        MSQL_RETURN_IF_ERROR(db->RestoreTable(std::move(rec.dropped_table)));
        break;
      }
      case UndoRecord::Kind::kCreateView: {
        MSQL_ASSIGN_OR_RETURN(auto dropped, db->DropView(rec.table));
        (void)dropped;  // the view was created by this txn
        break;
      }
      case UndoRecord::Kind::kDropView: {
        MSQL_RETURN_IF_ERROR(
            db->CreateView(rec.table, std::move(rec.dropped_view)));
        break;
      }
      case UndoRecord::Kind::kCreateIndex: {
        MSQL_ASSIGN_OR_RETURN(Table * table, db->GetTable(rec.table));
        MSQL_RETURN_IF_ERROR(table->DropIndex(rec.index_name).status());
        break;
      }
      case UndoRecord::Kind::kDropIndex: {
        MSQL_ASSIGN_OR_RETURN(Table * table, db->GetTable(rec.table));
        MSQL_RETURN_IF_ERROR(
            table->CreateIndex(rec.index_name, rec.index_column));
        break;
      }
    }
  }
  undo_log_.clear();
  return Status::OK();
}

Status LockManager::Acquire(Transaction* txn, const std::string& resource,
                            Mode mode) {
  LockEntry& entry = locks_[resource];
  if (entry.holders.empty()) {
    entry.mode = mode;
    entry.holders.insert(txn->id());
    txn->held_locks().insert(resource);
    return Status::OK();
  }
  bool already_holder = entry.holders.count(txn->id()) > 0;
  if (already_holder) {
    if (mode == Mode::kShared || entry.mode == Mode::kExclusive) {
      return Status::OK();  // has what it needs
    }
    // Upgrade shared -> exclusive: legal only if sole holder.
    if (entry.holders.size() == 1) {
      entry.mode = Mode::kExclusive;
      return Status::OK();
    }
    return Status::Aborted("lock upgrade conflict on " + resource);
  }
  if (mode == Mode::kShared && entry.mode == Mode::kShared) {
    entry.holders.insert(txn->id());
    txn->held_locks().insert(resource);
    return Status::OK();
  }
  return Status::Aborted("lock conflict on " + resource);
}

void LockManager::ReleaseAll(Transaction* txn) {
  for (const auto& resource : txn->held_locks()) {
    auto it = locks_.find(resource);
    if (it == locks_.end()) continue;
    it->second.holders.erase(txn->id());
    if (it->second.holders.empty()) locks_.erase(it);
  }
  txn->held_locks().clear();
}

}  // namespace msql::relational
