#include "relational/txn.h"

namespace msql::relational {

std::string_view TxnStateName(TxnState state) {
  switch (state) {
    case TxnState::kActive: return "ACTIVE";
    case TxnState::kPrepared: return "PREPARED";
    case TxnState::kCommitted: return "COMMITTED";
    case TxnState::kAborted: return "ABORTED";
  }
  return "UNKNOWN";
}

namespace {

/// Applies the inverse of one undo record.
Status ApplyOneUndo(
    UndoRecord& rec,
    const std::map<std::string, std::unique_ptr<Database>>& databases) {
  auto db_it = databases.find(rec.database);
  if (db_it == databases.end()) {
    return Status::Internal("undo references unknown database '" +
                            rec.database + "'");
  }
  Database* db = db_it->second.get();
  switch (rec.kind) {
    case UndoRecord::Kind::kInsert: {
      MSQL_ASSIGN_OR_RETURN(Table * table, db->GetTable(rec.table));
      MSQL_ASSIGN_OR_RETURN(Row removed, table->Delete(rec.row_id));
      (void)removed;
      break;
    }
    case UndoRecord::Kind::kDelete: {
      MSQL_ASSIGN_OR_RETURN(Table * table, db->GetTable(rec.table));
      MSQL_RETURN_IF_ERROR(
        table->ResurrectRow(rec.row_id, std::move(rec.before)));
      break;
    }
    case UndoRecord::Kind::kUpdate: {
      MSQL_ASSIGN_OR_RETURN(Table * table, db->GetTable(rec.table));
      MSQL_ASSIGN_OR_RETURN(Row overwritten,
                          table->Update(rec.row_id, std::move(rec.before)));
      (void)overwritten;
      break;
    }
    case UndoRecord::Kind::kCreateTable: {
      MSQL_ASSIGN_OR_RETURN(auto dropped, db->DropTable(rec.table));
      (void)dropped;  // discard: the table was created by this txn
      break;
    }
    case UndoRecord::Kind::kDropTable: {
      MSQL_RETURN_IF_ERROR(db->RestoreTable(std::move(rec.dropped_table)));
      break;
    }
    case UndoRecord::Kind::kCreateView: {
      MSQL_ASSIGN_OR_RETURN(auto dropped, db->DropView(rec.table));
      (void)dropped;  // the view was created by this txn
      break;
    }
    case UndoRecord::Kind::kDropView: {
      MSQL_RETURN_IF_ERROR(
        db->CreateView(rec.table, std::move(rec.dropped_view)));
      break;
    }
    case UndoRecord::Kind::kCreateIndex: {
      MSQL_ASSIGN_OR_RETURN(Table * table, db->GetTable(rec.table));
      MSQL_RETURN_IF_ERROR(table->DropIndex(rec.index_name).status());
      break;
    }
    case UndoRecord::Kind::kDropIndex: {
      MSQL_ASSIGN_OR_RETURN(Table * table, db->GetTable(rec.table));
      MSQL_RETURN_IF_ERROR(
        table->CreateIndex(rec.index_name, rec.index_column));
      break;
    }
  }
  return Status::OK();
}

}  // namespace

Status Transaction::ApplyUndo(
    const std::map<std::string, std::unique_ptr<Database>>& databases,
    size_t fail_after_records) {
  size_t applied = 0;
  Status status = Status::OK();
  for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it) {
    if (applied >= fail_after_records) {
      status = Status::Internal(
          "injected undo failure after " + std::to_string(applied) +
          " of " + std::to_string(undo_log_.size()) + " undo records");
      break;
    }
    status = ApplyOneUndo(*it, databases);
    if (!status.ok()) break;
    ++applied;
  }
  if (!status.ok()) {
    // Drop the already-undone suffix so the log holds exactly the
    // records still pending — the caller's partial-rollback diagnostic.
    undo_log_.resize(undo_log_.size() - applied);
    return status;
  }
  undo_log_.clear();
  return Status::OK();
}

namespace {

/// The held mode already grants everything the request needs.
bool Covers(LockManager::Mode held, LockManager::Mode requested) {
  using Mode = LockManager::Mode;
  if (held == requested) return true;
  switch (held) {
    case Mode::kExclusive:
      return true;
    case Mode::kShared:
    case Mode::kIntentionExclusive:
      return requested == Mode::kIntentionShared;
    case Mode::kIntentionShared:
      return false;
  }
  return false;
}

/// Least mode granting both (no SIX mode here: {S, IX} escalates to X,
/// trading a little concurrency for a four-mode table).
LockManager::Mode Lub(LockManager::Mode a, LockManager::Mode b) {
  if (Covers(a, b)) return a;
  if (Covers(b, a)) return b;
  return LockManager::Mode::kExclusive;
}

}  // namespace

bool LockManager::Compatible(Mode holding, Mode requested) {
  switch (holding) {
    case Mode::kIntentionShared:
      return requested != Mode::kExclusive;
    case Mode::kIntentionExclusive:
      return requested == Mode::kIntentionShared ||
             requested == Mode::kIntentionExclusive;
    case Mode::kShared:
      return requested == Mode::kIntentionShared ||
             requested == Mode::kShared;
    case Mode::kExclusive:
      return false;
  }
  return false;
}

Status LockManager::Acquire(Transaction* txn, const std::string& resource,
                            Mode mode) {
  // Hierarchical resources ("db.table") take the database-level
  // intention lock first; a conflict there is the request's conflict.
  if (mode == Mode::kShared || mode == Mode::kExclusive) {
    size_t dot = resource.find('.');
    if (dot != std::string::npos && dot > 0) {
      Mode intent = mode == Mode::kShared ? Mode::kIntentionShared
                                          : Mode::kIntentionExclusive;
      MSQL_RETURN_IF_ERROR(
          AcquireOne(txn, resource.substr(0, dot), intent));
    }
  }
  return AcquireOne(txn, resource, mode);
}

Status LockManager::AcquireOne(Transaction* txn, const std::string& resource,
                               Mode mode) {
  LockEntry& entry = locks_[resource];
  auto self = entry.holders.find(txn->id());
  bool upgrade = self != entry.holders.end();
  if (upgrade && Covers(self->second, mode)) {
    last_conflict_.clear();
    return Status::OK();
  }
  Mode target = upgrade ? Lub(self->second, mode) : mode;
  last_conflict_.clear();
  for (const auto& [holder, held] : entry.holders) {
    if (holder == txn->id()) continue;
    if (!Compatible(held, target)) last_conflict_.push_back(holder);
  }
  if (!last_conflict_.empty()) {
    if (entry.holders.empty()) locks_.erase(resource);
    std::string what = upgrade ? "lock upgrade conflict on " + resource
                               : "lock conflict on " + resource;
    return wait_policy_ == WaitPolicy::kNoWait ? Status::Aborted(what)
                                               : Status::Busy(what);
  }
  entry.holders[txn->id()] = target;
  txn->held_locks().insert(resource);
  if (audit_) audit_log_.emplace_back(resource, target);
  return Status::OK();
}

void LockManager::ReleaseAll(Transaction* txn) {
  for (const auto& resource : txn->held_locks()) {
    auto it = locks_.find(resource);
    if (it == locks_.end()) continue;
    it->second.holders.erase(txn->id());
    if (it->second.holders.empty()) locks_.erase(it);
  }
  txn->held_locks().clear();
}

}  // namespace msql::relational
