#ifndef MSQL_RELATIONAL_DATABASE_H_
#define MSQL_RELATIONAL_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relational/sql/ast.h"
#include "relational/table.h"

namespace msql::relational {

class StorageManager;

/// A named collection of tables — one Local Conceptual Schema (LCS).
///
/// All names are canonicalized to lower case. DROP returns ownership of
/// the dropped table so the transaction manager can restore it if the
/// engine's capability profile makes DDL rollbackable (§3.2.2).
///
/// With a StorageManager attached, catalog changes are WAL-logged and
/// new tables are paged; without one the database is purely in-memory
/// (the original engine behavior).
class Database {
 public:
  explicit Database(std::string name);

  /// Routes subsequent DDL through `mgr` (nullptr to detach). Recovery
  /// attaches only after rebuilding the catalog, so the rebuild itself
  /// is not re-logged.
  void AttachStorageManager(StorageManager* mgr) { storage_mgr_ = mgr; }
  StorageManager* storage_manager() const { return storage_mgr_; }

  const std::string& name() const { return name_; }

  /// Tables in name order (deterministic iteration for IMPORT and tests).
  std::vector<std::string> TableNames() const;

  /// Table names matching an MSQL '%' wildcard pattern.
  std::vector<std::string> MatchTables(std::string_view pattern) const;

  bool HasTable(std::string_view table) const;

  /// Mutable/const access to a table.
  Result<Table*> GetTable(std::string_view table);
  Result<const Table*> GetTableConst(std::string_view table) const;

  /// Creates an empty table with the given schema.
  Status CreateTable(TableSchema schema);

  /// Removes the table and returns it (for DDL undo logs).
  Result<std::unique_ptr<Table>> DropTable(std::string_view table);

  /// Re-attaches a previously dropped table (DDL rollback).
  Status RestoreTable(std::unique_ptr<Table> table);

  // -- Views ----------------------------------------------------------------
  // Local (LDBS-level) views: named SELECT definitions, materialized at
  // query time. Their definitions are exportable through IMPORT VIEW.

  bool HasView(std::string_view view) const;
  std::vector<std::string> ViewNames() const;

  /// Registers a view; the name must not collide with a table or view.
  Status CreateView(std::string_view view,
                    std::unique_ptr<SelectStmt> definition);

  /// Removes the view, returning its definition (for DDL undo logs).
  Result<std::unique_ptr<SelectStmt>> DropView(std::string_view view);

  Result<const SelectStmt*> GetView(std::string_view view) const;

 private:
  std::string name_;
  StorageManager* storage_mgr_ = nullptr;  // non-owning; null = in-memory
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, std::unique_ptr<SelectStmt>> views_;
};

}  // namespace msql::relational

#endif  // MSQL_RELATIONAL_DATABASE_H_
